package cspm_test

import (
	"testing"

	"cspm"
)

func TestPublicShapeMatching(t *testing.T) {
	g := fig1(t)
	m := cspm.Mine(g)
	for _, p := range m.Patterns {
		shape, err := cspm.ShapeOf(p)
		if err != nil {
			t.Fatalf("mined pattern rejected by ShapeOf: %v", err)
		}
		if got := len(shape.Matches(g)); got < p.FL {
			t.Fatalf("pattern %s: %d matches < fL %d", p.Format(g.Vocab()), got, p.FL)
		}
	}
	if s := cspm.StarAt(g, 0); len(s.Leaves) != 3 {
		t.Fatalf("StarAt(v1) leaves = %d", len(s.Leaves))
	}
}

func TestPublicDynamicPipeline(t *testing.T) {
	topo := [][2]cspm.VertexID{{0, 1}, {1, 2}}
	var events []cspm.TemporalEvent
	for step := int64(0); step < 20; step++ {
		events = append(events,
			cspm.TemporalEvent{Vertex: 0, Value: "cause", Time: step * 10},
			cspm.TemporalEvent{Vertex: 1, Value: "effect", Time: step*10 + 3},
		)
	}
	d, err := cspm.DynamicFromEvents(3, topo, events, 10)
	if err != nil {
		t.Fatal(err)
	}
	g, slices, err := cspm.Flatten(d, cspm.DefaultFlatten())
	if err != nil {
		t.Fatal(err)
	}
	if len(slices) == 0 {
		t.Fatal("no slices produced")
	}
	m := cspm.Mine(g)
	cause, ok := g.Vocab().Lookup("cause")
	if !ok {
		t.Fatal("cause value missing")
	}
	effect, _ := g.Vocab().Lookup("effect")
	found := false
	for _, p := range m.Patterns {
		if len(p.CoreValues) == 1 && p.CoreValues[0] == cause {
			for _, lv := range p.LeafValues {
				if lv == effect {
					found = true
				}
			}
		}
	}
	if !found {
		t.Fatal("temporal cause->effect a-star not mined through the public API")
	}
}

func TestPublicClassification(t *testing.T) {
	mkGraph := func(class int, n int) *cspm.Graph {
		b := cspm.NewBuilder(n * 2)
		for i := 0; i < n; i++ {
			core := cspm.VertexID(2 * i)
			leaf := core + 1
			if class == 0 {
				_ = b.AddAttr(core, "p")
				_ = b.AddAttr(leaf, "q")
			} else {
				_ = b.AddAttr(core, "r")
				_ = b.AddAttr(leaf, "s")
			}
			_ = b.AddEdge(core, leaf)
			if core > 0 {
				_ = b.AddEdge(core, core-1)
			}
		}
		return b.Build()
	}
	// Reference corpus: both class motifs with the same wiring the class
	// graphs use (core-leaf pairs chained leaf→next core), plus one bridge.
	ref := cspm.NewBuilder(40)
	for i := cspm.VertexID(0); i < 20; i += 2 {
		_ = ref.AddAttr(i, "p")
		_ = ref.AddAttr(i+1, "q")
		_ = ref.AddEdge(i, i+1)
		if i > 0 {
			_ = ref.AddEdge(i, i-1)
		}
	}
	for i := cspm.VertexID(20); i < 40; i += 2 {
		_ = ref.AddAttr(i, "r")
		_ = ref.AddAttr(i+1, "s")
		_ = ref.AddEdge(i, i+1)
		if i > 20 {
			_ = ref.AddEdge(i, i-1)
		}
	}
	_ = ref.AddEdge(19, 20)
	refG := ref.Build()
	model := cspm.Mine(refG)
	f, err := cspm.NewFeaturizer(model, refG.Vocab(), 6)
	if err != nil {
		t.Fatal(err)
	}
	var graphs []*cspm.Graph
	var labels []int
	for i := 0; i < 12; i++ {
		graphs = append(graphs, mkGraph(i%2, 8))
		labels = append(labels, i%2)
	}
	clf, err := cspm.TrainClassifier(f, graphs, labels, cspm.ClassifyOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if acc := clf.Accuracy(graphs, labels); acc < 0.9 {
		t.Fatalf("training accuracy %.2f on trivially separable classes", acc)
	}
}

func TestPublicMineMultiCoreKrimp(t *testing.T) {
	g := fig1(t)
	m, err := cspm.MineMultiCoreKrimp(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Patterns) == 0 {
		t.Fatal("Krimp multi-core mining produced no patterns")
	}
	if _, err := cspm.MineMultiCoreKrimp(g, 0); err == nil {
		t.Fatal("zero support accepted")
	}
}
