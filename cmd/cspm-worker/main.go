// Command cspm-worker serves shard mining jobs to distributed cspm runs
// (cspm -remote, cspm.MineDistributed): it accepts self-contained component
// jobs over TCP, mines each against the shipped global context, and streams
// back checksummed shard-result blobs — the same bytes the shard cache
// stores. Workers are stateless; kill and restart them freely, the
// coordinator's retry and local fallback own the gap.
//
// Usage:
//
//	cspm-worker [-listen :7421] [-workers N]
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"cspm/internal/cli"
)

func main() {
	cfg := cli.WorkerConfig{}
	flag.StringVar(&cfg.Listen, "listen", ":7421", "host:port to serve shard jobs on")
	flag.IntVar(&cfg.Workers, "workers", 0, "max concurrently mining jobs (0 = all cores)")
	cfg.Log.Register(flag.CommandLine)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: cspm-worker [flags]")
		flag.PrintDefaults()
		os.Exit(2)
	}
	addr, stop, err := cli.StartWorker(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cspm-worker:", err)
		os.Exit(1)
	}
	defer stop()
	fmt.Fprintf(os.Stderr, "cspm-worker: serving shard jobs on %s\n", addr)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
}
