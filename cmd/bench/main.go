// Command bench runs the repository's paper-artifact and micro benchmarks
// with -benchmem and appends a machine-readable run to a BENCH_<n>.json
// trajectory file (see DESIGN.md's experiment index). Each invocation adds
// one run object, so successive entries track the performance trajectory
// across PRs:
//
//	go run ./cmd/bench -label post-change            # Table III + micros + distributed + serving → BENCH_1.json
//	go run ./cmd/bench -bench 'Table3' -benchtime 5x
//	go run ./cmd/bench -bench 'Serve' -out BENCH_5.json  # query-throughput-during-re-mine baseline
//
// The file holds a JSON array of runs; each run carries the environment,
// the label, and ns/op, B/op, allocs/op plus custom metrics per benchmark.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"strconv"
	"strings"
	"time"
)

// Result is one benchmark line.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Run is one bench invocation appended to the trajectory file.
type Run struct {
	Label     string   `json:"label"`
	Date      string   `json:"date"`
	GoVersion string   `json:"go_version,omitempty"`
	CPU       string   `json:"cpu,omitempty"`
	Bench     string   `json:"bench"`
	BenchTime string   `json:"benchtime"`
	Results   []Result `json:"results"`
}

// benchLine matches `BenchmarkName-8  \t 3 \t 123 ns/op \t 4 B/op ...`.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.*)$`)

func main() {
	bench := flag.String("bench", "Table3|Micro|Distributed|Serve", "go test -bench pattern")
	benchtime := flag.String("benchtime", "3x", "go test -benchtime value")
	out := flag.String("out", "BENCH_1.json", "trajectory file to append the run to")
	label := flag.String("label", "", "run label recorded in the JSON (default: timestamp)")
	count := flag.Int("count", 1, "go test -count value")
	flag.Parse()

	args := []string{"test", "-run", "^$",
		"-bench", *bench, "-benchmem",
		"-benchtime", *benchtime,
		"-count", strconv.Itoa(*count), "."}
	fmt.Fprintf(os.Stderr, "bench: go %s\n", strings.Join(args, " "))
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: go test failed: %v\n%s", err, raw)
		os.Exit(1)
	}
	os.Stdout.Write(raw)

	run := Run{
		Label:     *label,
		Date:      time.Now().UTC().Format(time.RFC3339),
		Bench:     *bench,
		BenchTime: *benchtime,
	}
	if run.Label == "" {
		run.Label = run.Date
	}
	sc := bufio.NewScanner(bytes.NewReader(raw))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "cpu:"):
			run.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case strings.HasPrefix(line, "goos:") || strings.HasPrefix(line, "goarch:") || strings.HasPrefix(line, "pkg:"):
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		res := Result{Name: m[1], Iterations: iters}
		for _, field := range strings.Split(m[3], "\t") {
			parts := strings.Fields(strings.TrimSpace(field))
			if len(parts) != 2 {
				continue
			}
			val, err := strconv.ParseFloat(parts[0], 64)
			if err != nil {
				continue
			}
			switch parts[1] {
			case "ns/op":
				res.NsPerOp = val
			case "B/op":
				res.BytesPerOp = val
			case "allocs/op":
				res.AllocsPerOp = val
			default:
				if res.Metrics == nil {
					res.Metrics = make(map[string]float64)
				}
				res.Metrics[parts[1]] = val
			}
		}
		run.Results = append(run.Results, res)
	}
	if len(run.Results) == 0 {
		fmt.Fprintln(os.Stderr, "bench: no benchmark lines parsed")
		os.Exit(1)
	}
	if ver, err := exec.Command("go", "version").Output(); err == nil {
		run.GoVersion = strings.TrimSpace(string(ver))
	}

	var runs []Run
	if prev, err := os.ReadFile(*out); err == nil && len(bytes.TrimSpace(prev)) > 0 {
		if err := json.Unmarshal(prev, &runs); err != nil {
			fmt.Fprintf(os.Stderr, "bench: %s exists but is not a run array: %v\n", *out, err)
			os.Exit(1)
		}
	}
	runs = append(runs, run)
	enc, err := json.MarshalIndent(runs, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(enc, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "bench: appended %d results to %s (run %q)\n", len(run.Results), *out, run.Label)
}
