// Command cspm mines attribute-stars from an attributed graph file and
// prints them ranked by code length (most informative first).
//
// Usage:
//
//	cspm [-variant partial|basic] [-multicore] [-shards K] [-shard-strategy auto|components|edgecut]
//	     [-cache] [-cache-dir DIR] [-remote host:port,...] [-remote-timeout D] [-remote-retries N]
//	     [-remote-no-fallback] [-top N] [-stats] [-multileaf] graph.txt
//
// The input format is line oriented: "v <id> <value>..." declares vertex
// attributes, "e <u> <v>" an undirected edge, "#" starts a comment. With
// "-" as the file name, the graph is read from stdin.
package main

import (
	"flag"
	"fmt"
	"os"

	"cspm/internal/cli"
)

func main() {
	cfg := cli.MineConfig{}
	flag.StringVar(&cfg.Variant, "variant", "partial", "search variant: partial or basic")
	flag.BoolVar(&cfg.MultiCore, "multicore", false, "mine multi-value coresets via SLIM first (§IV-F)")
	flag.IntVar(&cfg.Top, "top", 50, "print at most this many patterns (0 = all)")
	flag.BoolVar(&cfg.Stats, "stats", false, "print per-run statistics")
	flag.BoolVar(&cfg.MultiOnly, "multileaf", false, "print only patterns with ≥2 leaf values")
	flag.IntVar(&cfg.Shards, "shards", 0, "mine with this many concurrent shards (0/1 = unsharded)")
	flag.StringVar(&cfg.ShardStrategy, "shard-strategy", "auto", "shard partitioning: auto, components or edgecut")
	flag.BoolVar(&cfg.Cache, "cache", false, "mine incrementally through a shard-result cache")
	flag.StringVar(&cfg.CacheDir, "cache-dir", "", "persist shard results under this directory (implies -cache)")
	flag.StringVar(&cfg.Remote, "remote", "", "mine over these comma-separated cspm-worker addresses")
	flag.DurationVar(&cfg.RemoteTimeout, "remote-timeout", 0, "per-attempt wait for a remote shard result (0 = default)")
	flag.IntVar(&cfg.RemoteRetries, "remote-retries", 0, "re-submissions per shard job before local fallback")
	flag.BoolVar(&cfg.RemoteNoFallback, "remote-no-fallback", false, "fail instead of mining failed shard jobs locally")
	cfg.Log.Register(flag.CommandLine)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: cspm [flags] graph.txt (or - for stdin)")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if err := cli.MineFile(flag.Arg(0), os.Stdout, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "cspm:", err)
		os.Exit(1)
	}
}
