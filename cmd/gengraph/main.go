// Command gengraph writes one of the synthetic benchmark datasets to stdout
// in the text format cmd/cspm consumes.
//
// Usage:
//
//	gengraph -dataset dblp|dblptrend|usflight|pokec|planted|islands|alarms [-seed N] [-nodes N]
package main

import (
	"flag"
	"fmt"
	"os"

	"cspm/internal/cli"
)

func main() {
	name := flag.String("dataset", "dblp", "dblp, dblptrend, usflight, pokec, planted, islands or alarms")
	seed := flag.Int64("seed", 1, "generator seed")
	nodes := flag.Int("nodes", 0, "node count override (pokec), island count (islands)")
	var logCfg cli.LogConfig
	logCfg.Register(flag.CommandLine)
	flag.Parse()

	logger, err := logCfg.Logger(os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gengraph:", err)
		os.Exit(1)
	}
	g, err := cli.Generate(*name, *seed, *nodes)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gengraph:", err)
		os.Exit(1)
	}
	logger.Debug("dataset generated", "dataset", *name, "seed", *seed,
		"vertices", g.NumVertices(), "edges", g.NumEdges())
	header := fmt.Sprintf("dataset=%s seed=%d", *name, *seed)
	if err := cli.WriteGraph(os.Stdout, g, header); err != nil {
		fmt.Fprintln(os.Stderr, "gengraph:", err)
		os.Exit(1)
	}
}
