// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [-scale small|full] [-seed N] table1|table2|table3|fig5|fig6|table4|fig8|ablation|all
package main

import (
	"flag"
	"fmt"
	"os"

	"cspm/internal/experiments"
)

func main() {
	scaleName := flag.String("scale", "small", "small (seconds) or full (minutes to hours)")
	seed := flag.Int64("seed", 1, "experiment seed")
	flag.Parse()
	if flag.NArg() != 1 {
		usage()
	}
	scale := experiments.Small
	if *scaleName == "full" {
		scale = experiments.Full
	} else if *scaleName != "small" {
		usage()
	}
	which := flag.Arg(0)
	run := func(name string) {
		fmt.Printf("==== %s (scale=%s seed=%d)\n", name, *scaleName, *seed)
		switch name {
		case "table1":
			experiments.PrintTable1(os.Stdout, experiments.Table1())
		case "table2":
			experiments.PrintTable2(os.Stdout, experiments.Table2(scale, *seed))
		case "table3":
			experiments.PrintTable3(os.Stdout, experiments.Table3(experiments.Table3Options{Scale: scale, Seed: *seed}))
		case "fig5":
			experiments.PrintFig5(os.Stdout, experiments.Fig5(scale, *seed, 0))
		case "fig6":
			experiments.PrintFig6(os.Stdout, experiments.Fig6Patterns(scale, *seed, 8))
		case "table4":
			experiments.PrintTable4(os.Stdout, experiments.Table4(experiments.Table4Options{Scale: scale, Seed: *seed}))
		case "fig8":
			experiments.PrintFig8(os.Stdout, experiments.Fig8(scale, *seed))
		case "ablation":
			experiments.PrintAblation(os.Stdout, experiments.AblationModelCost(*seed))
		default:
			usage()
		}
		fmt.Println()
	}
	if which == "all" {
		for _, name := range []string{"table1", "table2", "table3", "fig5", "fig6", "table4", "fig8", "ablation"} {
			run(name)
		}
		return
	}
	run(which)
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: experiments [-scale small|full] [-seed N] table1|table2|table3|fig5|fig6|table4|fig8|ablation|all")
	os.Exit(2)
}
