// Command cspm-serve hosts a mined CSPM model behind a long-running
// HTTP/JSON API: reads are answered lock-free from an atomically swapped
// immutable snapshot, writes arrive as batched mutations, and a background
// loop incrementally re-mines the mutated graph (only dirty component
// groups, optionally fanned out to cspm-worker fleets) and publishes the
// next snapshot — so query latency never blocks on mining and a failed
// re-mine degrades to staleness, never to unavailability.
//
// Endpoints: GET /v1/patterns, POST /v1/complete, GET /v1/model,
// GET /v1/healthz, GET /v1/metrics, POST /v1/mutations, and
// GET /v1/watch — a long-poll that resolves with {generation, model_sha256}
// once a generation >= the client's is published (bounded wait; drains
// instantly on shutdown). Mutation batches may grow and shrink the vertex
// set (add_vertex/del_vertex) as well as edit attributes and edges.
//
// Usage:
//
//	cspm-serve [-listen :7480] [-shards K] [-cache-dir DIR] [-wal-dir DIR]
//	           [-standby] [-debounce D] [-remote host:port,...]
//	           [-remote-timeout D] [-remote-retries N] [-remote-no-fallback]
//	           graph.txt
//
// With "-" as the file name, the initial graph is read from stdin; with
// -standby and a checkpoint under -cache-dir the file may be omitted
// entirely. -wal-dir turns mutation acknowledgments durable: batches are
// fsync'd to a write-ahead log before the 202, and a restarted (or standby)
// server replays unfolded batches over the checkpoint instead of cold
// re-mining. On SIGINT/SIGTERM the server drains in-flight requests
// (force-closing them at -drain-timeout), checkpoints (when -cache-dir is
// set) and exits; a second SIGINT exits immediately.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cspm/internal/cli"
)

func main() {
	cfg := cli.ServeConfig{}
	flag.StringVar(&cfg.Listen, "listen", ":7480", "host:port to serve the /v1 API on")
	flag.IntVar(&cfg.Shards, "shards", 0, "max concurrently re-mining component groups (0 = all cores)")
	flag.StringVar(&cfg.CacheDir, "cache-dir", "", "persist shard results under this directory (warm start + shutdown flush)")
	flag.DurationVar(&cfg.Debounce, "debounce", 100*time.Millisecond, "coalescing window before a re-mine (0 = immediate)")
	flag.StringVar(&cfg.Remote, "remote", "", "re-mine over these comma-separated cspm-worker addresses")
	flag.DurationVar(&cfg.RemoteTimeout, "remote-timeout", 0, "per-attempt wait for a remote shard result (0 = default)")
	flag.IntVar(&cfg.RemoteRetries, "remote-retries", 0, "re-submissions per shard job before local fallback")
	flag.BoolVar(&cfg.RemoteNoFallback, "remote-no-fallback", false, "fail a re-mine instead of mining failed shard jobs locally")
	flag.StringVar(&cfg.WALDir, "wal-dir", "", "write-ahead-log directory: fsync mutation batches before acknowledging, replay them on restart")
	flag.BoolVar(&cfg.Standby, "standby", false, "refuse to cold-start: promote from the -cache-dir checkpoint / -wal-dir log or fail")
	drain := flag.Duration("drain-timeout", 15*time.Second, "max wait for in-flight requests on shutdown before force-closing them")
	flag.Parse()
	var in io.Reader
	switch {
	case flag.NArg() == 1:
		if path := flag.Arg(0); path == "-" {
			in = os.Stdin
		} else {
			f, err := os.Open(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "cspm-serve:", err)
				os.Exit(1)
			}
			defer f.Close()
			in = f
		}
	case flag.NArg() == 0 && cfg.Standby:
		// Promote purely from durable state: the checkpoint is the graph.
	default:
		fmt.Fprintln(os.Stderr, "usage: cspm-serve [flags] graph.txt (or - for stdin; omit with -standby)")
		flag.PrintDefaults()
		os.Exit(2)
	}
	addr, shutdown, err := cli.StartServe(in, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cspm-serve:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "cspm-serve: serving /v1 on %s\n", addr)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	if err := cli.AwaitShutdown(sig, *drain, shutdown, os.Exit, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "cspm-serve:", err)
		os.Exit(1)
	}
}
