// Command cspm-serve hosts a mined CSPM model behind a long-running
// HTTP/JSON API: reads are answered lock-free from an atomically swapped
// immutable snapshot, writes arrive as batched mutations, and a background
// loop incrementally re-mines the mutated graph (only dirty component
// groups, optionally fanned out to cspm-worker fleets) and publishes the
// next snapshot — so query latency never blocks on mining and a failed
// re-mine degrades to staleness, never to unavailability.
//
// Endpoints: GET /v1/patterns, POST /v1/complete, GET /v1/model,
// GET /v1/healthz, GET /v1/metrics, POST /v1/mutations.
//
// Usage:
//
//	cspm-serve [-listen :7480] [-shards K] [-cache-dir DIR] [-debounce D]
//	           [-remote host:port,...] [-remote-timeout D] [-remote-retries N]
//	           [-remote-no-fallback] graph.txt
//
// With "-" as the file name, the initial graph is read from stdin. On
// SIGINT/SIGTERM the server drains in-flight requests, persists the shard
// cache (when -cache-dir is set) and exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cspm/internal/cli"
)

func main() {
	cfg := cli.ServeConfig{}
	flag.StringVar(&cfg.Listen, "listen", ":7480", "host:port to serve the /v1 API on")
	flag.IntVar(&cfg.Shards, "shards", 0, "max concurrently re-mining component groups (0 = all cores)")
	flag.StringVar(&cfg.CacheDir, "cache-dir", "", "persist shard results under this directory (warm start + shutdown flush)")
	flag.DurationVar(&cfg.Debounce, "debounce", 100*time.Millisecond, "coalescing window before a re-mine (0 = immediate)")
	flag.StringVar(&cfg.Remote, "remote", "", "re-mine over these comma-separated cspm-worker addresses")
	flag.DurationVar(&cfg.RemoteTimeout, "remote-timeout", 0, "per-attempt wait for a remote shard result (0 = default)")
	flag.IntVar(&cfg.RemoteRetries, "remote-retries", 0, "re-submissions per shard job before local fallback")
	flag.BoolVar(&cfg.RemoteNoFallback, "remote-no-fallback", false, "fail a re-mine instead of mining failed shard jobs locally")
	drain := flag.Duration("drain-timeout", 15*time.Second, "max wait for in-flight requests on shutdown")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: cspm-serve [flags] graph.txt (or - for stdin)")
		flag.PrintDefaults()
		os.Exit(2)
	}
	var in *os.File = os.Stdin
	if path := flag.Arg(0); path != "-" {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cspm-serve:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	addr, shutdown, err := cli.StartServe(in, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cspm-serve:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "cspm-serve: serving /v1 on %s\n", addr)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Fprintln(os.Stderr, "cspm-serve: draining...")
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "cspm-serve:", err)
		os.Exit(1)
	}
}
