// Command cspm-serve hosts mined CSPM models behind a long-running
// multi-tenant HTTP/JSON API: reads are answered lock-free from atomically
// swapped immutable snapshots, writes arrive as batched mutations, and per-
// namespace background loops incrementally re-mine mutated graphs (only
// dirty component groups, optionally fanned out to cspm-worker fleets,
// bounded by a shared -mine-budget) and publish the next snapshot — so
// query latency never blocks on mining and a failed re-mine degrades to
// staleness, never to unavailability.
//
// Per-namespace endpoints (under /v2/graphs/{ns}): GET patterns,
// POST complete, GET model, GET healthz, GET metrics, POST mutations, and
// GET watch — a long-poll that resolves with {generation, model_sha256}
// once a generation >= the client's is published (bounded wait; drains
// instantly on shutdown). Mutation batches may grow and shrink the vertex
// set (add_vertex/del_vertex) as well as edit attributes and edges.
// Admin endpoints: GET /v2/graphs lists namespaces, POST /v2/graphs/{ns}
// creates one from an uploaded graph (empty body = empty graph),
// DELETE /v2/graphs/{ns} quarantines it (acknowledged WAL data is renamed
// aside, never unlinked). The flat /v1/* surface still serves the "default"
// namespace unchanged, marked with a Deprecation header.
//
// Usage:
//
//	cspm-serve [-listen :7480] [-shards K] [-cache-dir DIR] [-wal-dir DIR]
//	           [-root-dir DIR] [-max-namespaces N] [-mine-budget N]
//	           [-standby] [-follow URL] [-follow-poll D] [-proxy-writes]
//	           [-debounce D] [-remote host:port,...]
//	           [-remote-timeout D] [-remote-retries N] [-remote-no-fallback]
//	           [-log-level L] [-log-format text|json] [-debug-addr host:port]
//	           graph.txt
//
// The graph file seeds the "default" namespace; with "-" it is read from
// stdin, and it may be omitted with -standby (promote purely from durable
// state) or with -root-dir (start empty or from recovered namespaces and
// populate over /v2). -wal-dir turns the default namespace's mutation
// acknowledgments durable: batches are fsync'd to a write-ahead log before
// the 202, and a restarted (or standby) server replays unfolded batches
// over the checkpoint instead of cold re-mining. -root-dir generalises both
// -cache-dir and -wal-dir to one subtree per namespace and restores every
// namespace found under it at startup. On SIGINT/SIGTERM the server drains
// in-flight requests (force-closing them at -drain-timeout), checkpoints
// every tenant and exits; a second SIGINT exits immediately.
//
// -follow http://leader:port turns the process into a read REPLICA of a
// leader fleet member (requires -root-dir, omit the graph argument): every
// leader namespace is mirrored as a follower tenant that pulls each
// published generation over /replication/*, verifies every shipped artifact
// against the leader's MANIFEST SHA-256 commitments before swapping it in,
// and mirrors the leader's WAL tail so POST
// /v2/graphs/{ns}/replication/promote can turn it into a leader without
// losing an acknowledged batch. Replicas answer reads locally and reject
// mutations with 409 not_leader, or forward them with -proxy-writes.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cspm/internal/cli"
)

func main() {
	cfg := cli.ServeConfig{}
	flag.StringVar(&cfg.Listen, "listen", ":7480", "host:port to serve the /v1 API on")
	flag.IntVar(&cfg.Shards, "shards", 0, "max concurrently re-mining component groups (0 = all cores)")
	flag.StringVar(&cfg.CacheDir, "cache-dir", "", "persist shard results under this directory (warm start + shutdown flush)")
	flag.DurationVar(&cfg.Debounce, "debounce", 100*time.Millisecond, "coalescing window before a re-mine (0 = immediate)")
	flag.StringVar(&cfg.Remote, "remote", "", "re-mine over these comma-separated cspm-worker addresses")
	flag.DurationVar(&cfg.RemoteTimeout, "remote-timeout", 0, "per-attempt wait for a remote shard result (0 = default)")
	flag.IntVar(&cfg.RemoteRetries, "remote-retries", 0, "re-submissions per shard job before local fallback")
	flag.BoolVar(&cfg.RemoteNoFallback, "remote-no-fallback", false, "fail a re-mine instead of mining failed shard jobs locally")
	flag.StringVar(&cfg.WALDir, "wal-dir", "", "write-ahead-log directory: fsync mutation batches before acknowledging, replay them on restart")
	flag.StringVar(&cfg.RootDir, "root-dir", "", "multi-tenant persistence root: one WAL+checkpoint subtree per namespace (excludes -cache-dir/-wal-dir)")
	flag.IntVar(&cfg.MaxNamespaces, "max-namespaces", 0, "cap on concurrently hosted namespaces (0 = unlimited)")
	flag.IntVar(&cfg.MineBudget, "mine-budget", 0, "max namespaces mining or re-mining at once across the host (0 = unlimited)")
	flag.BoolVar(&cfg.Standby, "standby", false, "refuse to cold-start: promote from durable state (-root-dir, or -cache-dir/-wal-dir) or fail")
	flag.StringVar(&cfg.Follow, "follow", "", "replicate every namespace from this leader host URL (requires -root-dir; omit the graph argument)")
	flag.DurationVar(&cfg.FollowPoll, "follow-poll", 0, "replica pull pacing (0 = default)")
	flag.BoolVar(&cfg.ProxyWrites, "proxy-writes", false, "forward mutations hitting this replica to the -follow leader instead of rejecting them")
	flag.StringVar(&cfg.DebugAddr, "debug-addr", "", "serve net/http/pprof on this separate host:port (off when empty)")
	cfg.Log.Register(flag.CommandLine)
	drain := flag.Duration("drain-timeout", 15*time.Second, "max wait for in-flight requests on shutdown before force-closing them")
	flag.Parse()
	var in io.Reader
	switch {
	case flag.NArg() == 1:
		if path := flag.Arg(0); path == "-" {
			in = os.Stdin
		} else {
			f, err := os.Open(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "cspm-serve:", err)
				os.Exit(1)
			}
			defer f.Close()
			in = f
		}
	case flag.NArg() == 0 && (cfg.Standby || cfg.RootDir != "" || cfg.Follow != ""):
		// Promote purely from durable state, or start a (possibly empty)
		// multi-tenant host populated over the /v2 admin surface.
	default:
		fmt.Fprintln(os.Stderr, "usage: cspm-serve [flags] graph.txt (or - for stdin; omit with -standby or -root-dir)")
		flag.PrintDefaults()
		os.Exit(2)
	}
	addr, shutdown, err := cli.StartServe(in, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cspm-serve:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "cspm-serve: serving /v2/graphs (and the /v1 alias) on %s\n", addr)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	if err := cli.AwaitShutdown(sig, *drain, shutdown, os.Exit, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "cspm-serve:", err)
		os.Exit(1)
	}
}
