// End-to-end pin for the online serving subsystem through the public API
// and the typed client: a multi-tenant host answers completion queries on
// one namespace during that namespace's active background re-mine with zero
// failed requests, the other namespace is untouched, and after the re-mine
// the served model is bit-identical to Mine on the mutated graph — over the
// wire, through serveclient, on both the /v2 surface and the /v1 alias.
package cspm_test

import (
	"context"
	"net/http/httptest"
	"reflect"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cspm"
	"cspm/internal/serve"
	"cspm/internal/serveclient"
)

// serveTestGraph builds the initial two-island graph; mutated mirrors the
// post-mutation graph, built independently so the equivalence check does
// not share the server's rebuild code path.
func serveTestGraph(t *testing.T, mutated bool) *cspm.Graph {
	t.Helper()
	b := cspm.NewBuilder(8)
	type attr struct {
		v   cspm.VertexID
		val string
	}
	attrs := []attr{
		{0, "smoker"}, {1, "smoker"}, {1, "cancer"}, {2, "cancer"}, {3, "smoker"},
		{4, "icde"}, {5, "icde"}, {5, "sigmod"}, {6, "sigmod"}, {7, "icde"},
	}
	edges := [][2]cspm.VertexID{{0, 1}, {1, 2}, {2, 3}, {0, 2}, {4, 5}, {5, 6}, {6, 7}, {4, 6}}
	if mutated {
		// Mirrors the mutation batch posted in the test: add edge {0,3},
		// attach cancer to 3, drop edge {4,6}.
		attrs = append(attrs, attr{3, "cancer"})
		edges = append(edges[:7:7], [2]cspm.VertexID{0, 3})
	}
	for _, a := range attrs {
		if err := b.AddAttr(a.v, a.val); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range edges {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

// steadyGraph is the second tenant: a small clique whose model must not
// move while the first tenant re-mines.
func steadyGraph(t *testing.T) *cspm.Graph {
	t.Helper()
	b := cspm.NewBuilder(4)
	for v := cspm.VertexID(0); v < 4; v++ {
		if err := b.AddAttr(v, "steady"); err != nil {
			t.Fatal(err)
		}
	}
	for u := cspm.VertexID(0); u < 4; u++ {
		for v := u + 1; v < 4; v++ {
			if err := b.AddEdge(u, v); err != nil {
				t.Fatal(err)
			}
		}
	}
	return b.Build()
}

func TestPublicServeEquivalenceUnderLoad(t *testing.T) {
	host, err := cspm.NewServeHost(cspm.ServeHostOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer host.Close()
	hs := httptest.NewServer(host)
	defer hs.Close()
	client, err := serveclient.New(hs.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// The default namespace (the one /v1 aliases) carries the load; a second
	// namespace must sit completely still through it.
	g := serveTestGraph(t, false)
	if _, err := host.Create(cspm.DefaultServeNamespace, g, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := host.Create("steady", steadyGraph(t), nil); err != nil {
		t.Fatal(err)
	}
	steadyBefore, err := client.NamespaceInfo(ctx, "steady")
	if err != nil {
		t.Fatal(err)
	}

	def := client.Namespace(cspm.DefaultServeNamespace)
	// Hammer complete for the whole mutate-and-re-mine window, through the
	// typed client on both surfaces: zero failed requests is part of the
	// acceptance contract.
	var (
		wg       sync.WaitGroup
		stop     = make(chan struct{})
		served   atomic.Int64
		failures atomic.Int64
	)
	for w := 0; w < 3; w++ {
		wg.Add(1)
		surface := def
		if w == 0 {
			surface = client.V1() // the deprecated alias serves the same tenant
		}
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := surface.Complete(ctx, serve.CompleteRequest{
					Vertices: []cspm.VertexID{2, 6}, TopK: 3,
				})
				if err != nil || resp.Generation == 0 {
					failures.Add(1)
					return
				}
				served.Add(1)
			}
		}()
	}

	muts := []cspm.GraphMutation{
		{Op: "add_edge", U: 0, V: 3},
		{Op: "add_attr", U: 3, Value: "cancer"},
		{Op: "del_edge", U: 4, V: 6},
	}
	ack, err := def.Mutate(ctx, muts)
	if err != nil {
		t.Fatal(err)
	}
	if ack.Accepted != len(muts) {
		t.Fatalf("mutation ack accepted %d, want %d", ack.Accepted, len(muts))
	}
	watch, err := def.AwaitGeneration(ctx, 2)
	if err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	if failures.Load() > 0 {
		t.Fatalf("%d complete requests failed during the re-mine", failures.Load())
	}
	if served.Load() == 0 {
		t.Fatal("no queries served during the re-mine window")
	}

	// The served model must now be bit-identical to Mine on the mutated
	// graph — first through the public snapshot, then over the wire.
	want := cspm.Mine(serveTestGraph(t, true))
	srv, ok := host.Tenant(cspm.DefaultServeNamespace)
	if !ok {
		t.Fatal("default tenant vanished")
	}
	snap := srv.Snapshot()
	if snap.Model.BaselineDL != want.BaselineDL || snap.Model.FinalDL != want.FinalDL {
		t.Fatalf("served DLs (%v, %v) diverge from Mine(g') (%v, %v)",
			snap.Model.BaselineDL, snap.Model.FinalDL, want.BaselineDL, want.FinalDL)
	}
	if !reflect.DeepEqual(snap.Model.Patterns, want.Patterns) {
		t.Fatal("served patterns diverge from Mine(g')")
	}
	if watch.ModelSHA256 != snap.ModelSHA256 {
		t.Fatalf("watch commitment %s diverges from the served snapshot's %s",
			watch.ModelSHA256, snap.ModelSHA256)
	}

	model, err := def.Model(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if model.Generation != 2 || model.FinalDL != want.FinalDL ||
		model.BaselineDL != want.BaselineDL || model.Patterns != len(want.Patterns) {
		t.Fatalf("model endpoint reports %+v, want the Mine(g') stats", model)
	}

	// The ranked wire patterns must spell exactly Mine(g')'s list — and the
	// v1 alias must serve the identical page.
	for _, surface := range []*serveclient.NamespaceClient{def, client.V1()} {
		page, err := surface.Patterns(ctx, serveclient.PatternsOptions{Limit: 1000})
		if err != nil {
			t.Fatal(err)
		}
		if page.Total != len(want.Patterns) {
			t.Fatalf("patterns total=%d, want %d", page.Total, len(want.Patterns))
		}
		vocab := serveTestGraph(t, true).Vocab()
		for i, p := range page.Patterns {
			wantCore := attrNamesSorted(vocab, want.Patterns[i].CoreValues)
			wantLeaf := attrNamesSorted(vocab, want.Patterns[i].LeafValues)
			if !reflect.DeepEqual(p.Core, wantCore) || !reflect.DeepEqual(p.Leaf, wantLeaf) ||
				p.FL != want.Patterns[i].FL || p.FC != want.Patterns[i].FC ||
				p.CodeLen != want.Patterns[i].CodeLen {
				t.Fatalf("wire pattern %d = %+v, want (%v, %v, fl=%d, fc=%d, len=%v)",
					i, p, wantCore, wantLeaf, want.Patterns[i].FL, want.Patterns[i].FC, want.Patterns[i].CodeLen)
			}
		}
	}

	// The steady tenant never moved: same generation, same commitment.
	steadyAfter, err := client.NamespaceInfo(ctx, "steady")
	if err != nil {
		t.Fatal(err)
	}
	if steadyAfter.Generation != steadyBefore.Generation ||
		steadyAfter.ModelSHA256 != steadyBefore.ModelSHA256 {
		t.Fatalf("steady tenant moved during the neighbour's re-mine: %+v -> %+v",
			steadyBefore, steadyAfter)
	}
}

func attrNamesSorted(v *cspm.Vocab, ids []cspm.AttrID) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = v.Name(id)
	}
	sort.Strings(out)
	return out
}
