// End-to-end pin for the online serving subsystem through the public API:
// a running server answers /v1/complete during an active background
// re-mine with zero failed requests, and after the re-mine completes the
// served model is bit-identical to Mine on the mutated graph.
package cspm_test

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cspm"
)

// serveTestGraph builds the initial two-island graph; mutated mirrors the
// post-mutation graph, built independently so the equivalence check does
// not share the server's rebuild code path.
func serveTestGraph(t *testing.T, mutated bool) *cspm.Graph {
	t.Helper()
	b := cspm.NewBuilder(8)
	type attr struct {
		v   cspm.VertexID
		val string
	}
	attrs := []attr{
		{0, "smoker"}, {1, "smoker"}, {1, "cancer"}, {2, "cancer"}, {3, "smoker"},
		{4, "icde"}, {5, "icde"}, {5, "sigmod"}, {6, "sigmod"}, {7, "icde"},
	}
	edges := [][2]cspm.VertexID{{0, 1}, {1, 2}, {2, 3}, {0, 2}, {4, 5}, {5, 6}, {6, 7}, {4, 6}}
	if mutated {
		// Mirrors the mutation batch posted in the test: add edge {0,3},
		// attach cancer to 3, drop edge {4,6}.
		attrs = append(attrs, attr{3, "cancer"})
		edges = append(edges[:7:7], [2]cspm.VertexID{0, 3})
	}
	for _, a := range attrs {
		if err := b.AddAttr(a.v, a.val); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range edges {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func TestPublicServeEquivalenceUnderLoad(t *testing.T) {
	g := serveTestGraph(t, false)
	srv, err := cspm.NewServer(g, cspm.ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	hs := httptest.NewServer(srv)
	defer hs.Close()

	// Hammer /v1/complete for the whole mutate-and-re-mine window: zero
	// failed requests is part of the acceptance contract.
	var (
		wg       sync.WaitGroup
		stop     = make(chan struct{})
		served   atomic.Int64
		failures atomic.Int64
	)
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Post(hs.URL+"/v1/complete", "application/json",
					strings.NewReader(`{"vertices":[2,6],"top_k":3}`))
				if err != nil {
					failures.Add(1)
					return
				}
				var body struct {
					Generation uint64 `json:"generation"`
				}
				decErr := json.NewDecoder(resp.Body).Decode(&body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK || decErr != nil || body.Generation == 0 {
					failures.Add(1)
					return
				}
				served.Add(1)
			}
		}()
	}

	muts := []cspm.GraphMutation{
		{Op: "add_edge", U: 0, V: 3},
		{Op: "add_attr", U: 3, Value: "cancer"},
		{Op: "del_edge", U: 4, V: 6},
	}
	if err := srv.SubmitMutations(muts); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.AwaitGeneration(ctx, 2); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	if failures.Load() > 0 {
		t.Fatalf("%d /v1/complete requests failed during the re-mine", failures.Load())
	}
	if served.Load() == 0 {
		t.Fatal("no queries served during the re-mine window")
	}

	// The served model must now be bit-identical to Mine on the mutated
	// graph — first through the public snapshot, then over the wire.
	want := cspm.Mine(serveTestGraph(t, true))
	snap := srv.Snapshot()
	if snap.Model.BaselineDL != want.BaselineDL || snap.Model.FinalDL != want.FinalDL {
		t.Fatalf("served DLs (%v, %v) diverge from Mine(g') (%v, %v)",
			snap.Model.BaselineDL, snap.Model.FinalDL, want.BaselineDL, want.FinalDL)
	}
	if !reflect.DeepEqual(snap.Model.Patterns, want.Patterns) {
		t.Fatal("served patterns diverge from Mine(g')")
	}

	var model struct {
		Generation uint64  `json:"generation"`
		FinalDL    float64 `json:"final_dl"`
		BaselineDL float64 `json:"baseline_dl"`
		Patterns   int     `json:"patterns"`
	}
	resp, err := http.Get(hs.URL + "/v1/model")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&model); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if model.Generation != 2 || model.FinalDL != want.FinalDL ||
		model.BaselineDL != want.BaselineDL || model.Patterns != len(want.Patterns) {
		t.Fatalf("/v1/model reports %+v, want the Mine(g') stats", model)
	}

	// The ranked wire patterns must spell exactly Mine(g')'s list.
	var page struct {
		Total    int `json:"total"`
		Patterns []struct {
			Core    []string `json:"core"`
			Leaf    []string `json:"leaf"`
			FL      int      `json:"fl"`
			FC      int      `json:"fc"`
			CodeLen float64  `json:"code_len"`
		} `json:"patterns"`
	}
	resp, err = http.Get(hs.URL + "/v1/patterns?limit=1000")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if page.Total != len(want.Patterns) {
		t.Fatalf("/v1/patterns total=%d, want %d", page.Total, len(want.Patterns))
	}
	vocab := serveTestGraph(t, true).Vocab()
	for i, p := range page.Patterns {
		wantCore := attrNamesSorted(vocab, want.Patterns[i].CoreValues)
		wantLeaf := attrNamesSorted(vocab, want.Patterns[i].LeafValues)
		if !reflect.DeepEqual(p.Core, wantCore) || !reflect.DeepEqual(p.Leaf, wantLeaf) ||
			p.FL != want.Patterns[i].FL || p.FC != want.Patterns[i].FC ||
			p.CodeLen != want.Patterns[i].CodeLen {
			t.Fatalf("wire pattern %d = %+v, want (%v, %v, fl=%d, fc=%d, len=%v)",
				i, p, wantCore, wantLeaf, want.Patterns[i].FL, want.Patterns[i].FC, want.Patterns[i].CodeLen)
		}
	}
}

func attrNamesSorted(v *cspm.Vocab, ids []cspm.AttrID) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = v.Name(id)
	}
	sort.Strings(out)
	return out
}
