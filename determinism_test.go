// Determinism regression: the models the miner produces must be
// bit-identical regardless of the gain-evaluation worker count. Gain
// evaluation is a pure read of the inverted database and every worker runs
// the same float pipeline over the same operands, so serial and parallel
// runs must agree on every merge (PerIter), every pattern, and the final
// description lengths — to the last bit, not within a tolerance.
package cspm_test

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"cspm"
	"cspm/internal/dataset"
	"cspm/internal/experiments"
)

func sameBits(a, b float64) bool { return math.Float64bits(a) == math.Float64bits(b) }

func assertIdenticalModels(t *testing.T, name string, a, b *cspm.Model) {
	t.Helper()
	if !sameBits(a.BaselineDL, b.BaselineDL) {
		t.Fatalf("%s: BaselineDL bits differ: %v vs %v", name, a.BaselineDL, b.BaselineDL)
	}
	if !sameBits(a.FinalDL, b.FinalDL) {
		t.Fatalf("%s: FinalDL bits differ: %v vs %v", name, a.FinalDL, b.FinalDL)
	}
	if a.Iterations != b.Iterations {
		t.Fatalf("%s: merge counts differ: %d vs %d", name, a.Iterations, b.Iterations)
	}
	// The merge sequence: per-iteration gains and DL trajectories identify
	// each applied merge, so bit-equality here means the same merges in the
	// same order.
	if len(a.PerIter) != len(b.PerIter) {
		t.Fatalf("%s: PerIter lengths differ: %d vs %d", name, len(a.PerIter), len(b.PerIter))
	}
	for i := range a.PerIter {
		ai, bi := a.PerIter[i], b.PerIter[i]
		if !sameBits(ai.Gain, bi.Gain) || !sameBits(ai.TotalDL, bi.TotalDL) {
			t.Fatalf("%s: iteration %d diverged: gain %v vs %v, DL %v vs %v",
				name, i+1, ai.Gain, bi.Gain, ai.TotalDL, bi.TotalDL)
		}
		if ai.GainUpdates != bi.GainUpdates || ai.PossiblePairs != bi.PossiblePairs {
			t.Fatalf("%s: iteration %d stats diverged: %+v vs %+v", name, i+1, ai, bi)
		}
	}
	if !reflect.DeepEqual(a.Patterns, b.Patterns) {
		t.Fatalf("%s: pattern lists differ", name)
	}
}

func TestWorkersDeterminismPlanted(t *testing.T) {
	g, _ := dataset.Planted(dataset.DefaultPlanted())
	for _, variant := range []cspm.Variant{cspm.Partial, cspm.Basic} {
		serial := cspm.MineWithOptions(g, cspm.Options{Variant: variant, CollectStats: true, Workers: 1})
		parallel := cspm.MineWithOptions(g, cspm.Options{Variant: variant, CollectStats: true, Workers: 8})
		assertIdenticalModels(t, "planted/"+variant.String(), serial, parallel)
	}
}

func TestWorkersDeterminismMini(t *testing.T) {
	g := experiments.MiniGraph(1)
	serial := cspm.MineWithOptions(g, cspm.Options{CollectStats: true, Workers: 1})
	parallel := cspm.MineWithOptions(g, cspm.Options{CollectStats: true, Workers: 8})
	defaulted := cspm.MineWithOptions(g, cspm.Options{CollectStats: true}) // Workers 0 → all cores
	assertIdenticalModels(t, "mini/serial-vs-8", serial, parallel)
	assertIdenticalModels(t, "mini/serial-vs-default", serial, defaulted)
}

// TestShardedDeterminism extends the worker-count contract to sharded runs:
// for every (shards, workers) combination the full model — including the
// per-iteration merge trajectory with its shard assignments — must be
// bit-identical, because shard construction, per-shard searches, and the
// merge step are all pure functions of the graph and the shard count.
func TestShardedDeterminism(t *testing.T) {
	g := dataset.Islands(dataset.DefaultIslands())
	for _, shards := range []int{2, 3, 8} {
		ref := cspm.MineSharded(g, cspm.Options{CollectStats: true, Shards: shards, Workers: 1})
		for _, workers := range []int{2, 8, 0} { // 0 → all cores
			got := cspm.MineSharded(g, cspm.Options{CollectStats: true, Shards: shards, Workers: workers})
			name := fmt.Sprintf("islands/shards=%d/workers=%d", shards, workers)
			assertIdenticalModels(t, name, ref, got)
			for i := range ref.PerIter {
				if ref.PerIter[i].Shard != got.PerIter[i].Shard {
					t.Fatalf("%s: iteration %d ran on shard %d vs %d",
						name, i+1, got.PerIter[i].Shard, ref.PerIter[i].Shard)
				}
			}
		}
	}
	// The edge-cut fallback must be worker-deterministic too.
	flights := dataset.USFlight(1)
	ref := cspm.MineSharded(flights, cspm.Options{CollectStats: true, Shards: 4, Workers: 1})
	got := cspm.MineSharded(flights, cspm.Options{CollectStats: true, Shards: 4, Workers: 8})
	assertIdenticalModels(t, "usflight/edgecut", ref, got)
	if !sameBits(ref.RefinementGain, got.RefinementGain) {
		t.Fatalf("refinement gain differs across worker counts: %v vs %v",
			ref.RefinementGain, got.RefinementGain)
	}
}

func TestInvalidOptionsPanic(t *testing.T) {
	g := experiments.MiniGraph(1)
	for _, opts := range []cspm.Options{{Workers: -1}, {MaxIterations: -3}, {Shards: -2}, {ShardStrategy: cspm.ShardStrategy(7)}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("MineWithOptions accepted invalid %+v", opts)
				}
			}()
			cspm.MineWithOptions(g, opts)
		}()
	}
}
