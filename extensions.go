package cspm

// This file re-exports the extension packages implementing the paper's
// future-work directions (§VII): mining dynamic attributed graphs (2),
// graph classification on a-star features (1), and parallel gain
// evaluation (3, exposed as Options.Workers on the miner itself).

import (
	"cspm/internal/classify"
	"cspm/internal/dynamic"
	"cspm/internal/graph"
)

// Star-shape matching (paper §III–IV-A).
type (
	// Star is a core vertex with its leaves.
	Star = graph.Star
	// ExtendedStar is a star with attribute values on every vertex.
	ExtendedStar = graph.ExtendedStar
	// AStarShape is a vocabulary-bound (coreset, leafset) pattern usable
	// for occurrence matching.
	AStarShape = graph.AStarShape
)

// StarAt returns the star centred at v using all neighbours as leaves.
func StarAt(g *Graph, v VertexID) Star { return graph.StarAt(g, v) }

// NewAStarShape validates and sorts a (coreset, leafset) pattern.
func NewAStarShape(core, leaf []AttrID) (AStarShape, error) {
	return graph.NewAStarShape(core, leaf)
}

// ShapeOf converts a mined pattern into a matchable shape.
func ShapeOf(p AStar) (AStarShape, error) {
	return graph.NewAStarShape(p.CoreValues, p.LeafValues)
}

// Dynamic attributed graphs (future work 2).
type (
	// DynamicGraph is a sequence of attributed snapshots over fixed
	// vertices.
	DynamicGraph = dynamic.Graph
	// Snapshot is one time step of a DynamicGraph.
	Snapshot = dynamic.Snapshot
	// SliceID maps a flattened vertex back to its (vertex, time) origin.
	SliceID = dynamic.SliceID
	// TemporalEvent is a timestamped attribute observation.
	TemporalEvent = dynamic.Event
	// FlattenOptions controls the temporal-product encoding.
	FlattenOptions = dynamic.FlattenOptions
)

// DefaultFlatten is the recommended dynamic-graph encoding.
func DefaultFlatten() FlattenOptions { return dynamic.DefaultFlatten() }

// Flatten encodes a dynamic graph as a static attributed graph; mining the
// result yields temporal a-stars.
func Flatten(d *DynamicGraph, opts FlattenOptions) (*Graph, []SliceID, error) {
	return dynamic.Flatten(d, opts)
}

// DynamicFromEvents builds a dynamic graph from timestamped events over a
// static topology (the alarm-log shape).
func DynamicFromEvents(numVertices int, topology [][2]VertexID, events []TemporalEvent, windowSize int64) (*DynamicGraph, error) {
	return dynamic.FromEventStream(numVertices, topology, events, windowSize)
}

// Graph classification (future work 1).
type (
	// Featurizer converts graphs into a-star match-frequency vectors.
	Featurizer = classify.Featurizer
	// GraphClassifier is a softmax regression over a-star features.
	GraphClassifier = classify.Classifier
	// ClassifyOptions tunes classifier training.
	ClassifyOptions = classify.TrainOptions
)

// NewFeaturizer keeps a mined model's topK multi-leaf patterns as features.
func NewFeaturizer(model *Model, vocab *Vocab, topK int) (*Featurizer, error) {
	return classify.NewFeaturizer(model, vocab, topK)
}

// TrainClassifier fits a graph classifier on labelled graphs.
func TrainClassifier(f *Featurizer, graphs []*Graph, labels []int, opts ClassifyOptions) (*GraphClassifier, error) {
	return classify.Train(f, graphs, labels, opts)
}
