// Sharded-mining contract tests. The component strategy promises models
// bit-identical to Mine(g) — same DLs to the last bit, same merge count,
// same pattern list — for any shard count, because attribute-closed
// component groups make per-shard gains exactly the global ones and the
// canonical DL order makes reporting independent of merge interleaving (see
// DESIGN.md "Sharded mining"). The edge-cut fallback promises a valid
// compressing model with exact baseline accounting, not bit-equality.
package cspm_test

import (
	"math"
	"reflect"
	"testing"

	"cspm"
	"cspm/internal/dataset"
	"cspm/internal/experiments"
)

// assertShardedMatchesMine checks the bit-identical subset of the model that
// is interleaving-independent: DLs, entropy, merge count, and patterns.
// (PerIter ordering and lazy-reevaluation counts legitimately depend on how
// shard merge sequences interleave, so they are compared only between
// sharded runs — see determinism_test.go.)
func assertShardedMatchesMine(t *testing.T, name string, got, want *cspm.Model) {
	t.Helper()
	if !sameBits(got.BaselineDL, want.BaselineDL) {
		t.Fatalf("%s: BaselineDL bits differ: %v vs %v", name, got.BaselineDL, want.BaselineDL)
	}
	if !sameBits(got.FinalDL, want.FinalDL) {
		t.Fatalf("%s: FinalDL bits differ: %v vs %v", name, got.FinalDL, want.FinalDL)
	}
	if !sameBits(got.CondEntropy, want.CondEntropy) {
		t.Fatalf("%s: CondEntropy bits differ: %v vs %v", name, got.CondEntropy, want.CondEntropy)
	}
	if got.Iterations != want.Iterations {
		t.Fatalf("%s: merge counts differ: %d vs %d", name, got.Iterations, want.Iterations)
	}
	if !reflect.DeepEqual(got.Patterns, want.Patterns) {
		t.Fatalf("%s: pattern lists differ (%d vs %d patterns)", name, len(got.Patterns), len(want.Patterns))
	}
}

// TestShardedEquivalence is the property test of the exact strategy: across
// randomized multi-component graphs, MineSharded equals Mine bit-for-bit at
// every shard count.
func TestShardedEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		cfg := dataset.IslandsConfig{
			Seed:     seed,
			Islands:  3 + int(seed)%4,
			MinNodes: 20, MaxNodes: 90,
			AttrsPerIsland: 8 + int(seed),
			ExtraEdges:     1.0,
			AttrsPerNode:   3,
		}
		g := dataset.Islands(cfg)
		want := cspm.MineWithOptions(g, cspm.Options{CollectStats: true})
		for _, shards := range []int{1, 2, 8} {
			got := cspm.MineSharded(g, cspm.Options{CollectStats: true, Shards: shards})
			name := "seed" + string(rune('0'+seed)) + "/shards" + string(rune('0'+shards))
			assertShardedMatchesMine(t, name, got, want)
			if shards > 1 && got.ShardCount < 2 {
				t.Fatalf("%s: expected a sharded run, got ShardCount=%d", name, got.ShardCount)
			}
		}
		// The Basic variant shards through the same machinery.
		wantBasic := cspm.MineWithOptions(g, cspm.Options{Variant: cspm.Basic, CollectStats: true})
		gotBasic := cspm.MineSharded(g, cspm.Options{Variant: cspm.Basic, CollectStats: true, Shards: 4})
		assertShardedMatchesMine(t, "basic", gotBasic, wantBasic)
	}
}

// TestShardedEdgeCut covers the fallback on a single entangled component:
// the baseline must still be exact (it is a pure function of the initial
// lines), the model must compress, and the refinement pass must be
// reported.
func TestShardedEdgeCut(t *testing.T) {
	g := dataset.USFlight(1)
	want := cspm.MineWithOptions(g, cspm.Options{CollectStats: true})
	got := cspm.MineSharded(g, cspm.Options{CollectStats: true, Shards: 4})
	if got.ShardCount != 4 {
		t.Fatalf("ShardCount = %d, want 4", got.ShardCount)
	}
	if !sameBits(got.BaselineDL, want.BaselineDL) {
		t.Fatalf("edge-cut BaselineDL %v != Mine's %v", got.BaselineDL, want.BaselineDL)
	}
	if got.FinalDL >= got.BaselineDL {
		t.Fatalf("edge-cut did not compress: %v >= %v", got.FinalDL, got.BaselineDL)
	}
	// Greedy paths may differ across the cut, but not wildly: the sharded
	// model must land within 2% of the monolithic one, baseline-relative.
	if rel := math.Abs(got.FinalDL-want.FinalDL) / want.BaselineDL; rel > 0.02 {
		t.Fatalf("edge-cut diverged by %.2f%% of baseline", 100*rel)
	}
	if got.RefinementGain < 0 {
		t.Fatalf("refinement increased DL by %v bits", -got.RefinementGain)
	}
	refined := 0
	for _, it := range got.PerIter {
		if it.Refinement {
			refined++
			if it.Shard != -1 {
				t.Fatalf("refinement iteration carries shard id %d", it.Shard)
			}
		}
	}
	if got.RefinementGain > 0 && refined == 0 {
		t.Fatal("refinement gain reported without refinement iterations")
	}
	// Forcing the strategy on a multi-component graph also works: the
	// cut simply never crosses a component.
	ig := dataset.Islands(dataset.DefaultIslands())
	forced := cspm.MineSharded(ig, cspm.Options{CollectStats: true, Shards: 4, ShardStrategy: cspm.ShardEdgeCut})
	if forced.FinalDL > forced.BaselineDL {
		t.Fatal("forced edge-cut expanded DL")
	}
}

// TestShardedSingleShardDegenerates pins the K=1 path to the unsharded
// miner on a connected graph.
func TestShardedSingleShardDegenerates(t *testing.T) {
	g := experiments.MiniGraph(1)
	want := cspm.MineWithOptions(g, cspm.Options{CollectStats: true})
	got := cspm.MineSharded(g, cspm.Options{CollectStats: true, Shards: 1})
	assertShardedMatchesMine(t, "mini/shards1", got, want)
	if got.ShardCount != 1 {
		t.Fatalf("ShardCount = %d, want 1", got.ShardCount)
	}
}

func TestMineShardedValidates(t *testing.T) {
	g := experiments.MiniGraph(1)
	for _, opts := range []cspm.Options{
		{Shards: -1},
		{ShardStrategy: cspm.ShardStrategy(99)},
		{ShardStrategy: cspm.ShardStrategy(-1)},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("MineSharded accepted invalid %+v", opts)
				}
			}()
			cspm.MineSharded(g, opts)
		}()
	}
}
