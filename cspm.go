// Package cspm is the public API of the CSPM library, a Go implementation
// of "Discovering Representative Attribute-stars via Minimum Description
// Length" (ICDE 2022). It mines attribute-stars — patterns of the form
// (coreset, leafset) stating that vertices carrying the core values tend to
// have neighbours carrying the leaf values — from attributed graphs, with
// no parameters to tune: model selection is driven entirely by the MDL
// principle and conditional entropy.
//
// Quick start:
//
//	b := cspm.NewBuilder(3)
//	b.AddAttr(0, "smoker")
//	b.AddAttr(1, "smoker")
//	b.AddEdge(0, 1)
//	g := b.Build()
//	model := cspm.Mine(g)
//	for _, p := range model.MultiLeaf() {
//	    fmt.Println(p.Format(g.Vocab()), p.Confidence())
//	}
//
// The implementation packages live under internal/; this package re-exports
// the stable surface as type aliases, so all returned values are fully
// usable by downstream code.
package cspm

import (
	"io"

	"cspm/internal/completion"
	icspm "cspm/internal/cspm"
	"cspm/internal/graph"
	"cspm/internal/invdb"
	"cspm/internal/krimp"
	"cspm/internal/serve"
	"cspm/internal/shardcache"
	"cspm/internal/shardrpc"
	"cspm/internal/slim"
	"cspm/internal/tensor"
)

// Graph construction and inspection.
type (
	// Graph is an immutable attributed graph (vertices carry sets of
	// nominal attribute values, edges are undirected, no self-loops).
	Graph = graph.Graph
	// Builder accumulates vertices, edges and attributes into a Graph.
	Builder = graph.Builder
	// Vocab interns attribute-value strings to dense ids.
	Vocab = graph.Vocab
	// AttrID is an interned attribute value.
	AttrID = graph.AttrID
	// VertexID is a dense vertex identifier.
	VertexID = graph.VertexID
	// Stats summarises a graph (Table II columns).
	Stats = graph.Stats
)

// NewBuilder returns a Builder for a graph with n vertices.
func NewBuilder(n int) *Builder { return graph.NewBuilder(n) }

// Load parses the line-oriented text format ("v id val..." / "e u v").
func Load(r io.Reader) (*Graph, error) { return graph.Load(r) }

// Write serialises g in the format accepted by Load.
func Write(w io.Writer, g *Graph) error { return graph.Write(w, g) }

// Mining.
type (
	// Model is a mined set of a-stars ordered by ascending code length.
	Model = icspm.Model
	// AStar is one attribute-star pattern.
	AStar = icspm.AStar
	// Options tunes experiment knobs; the zero value is the paper's
	// parameter-free default (CSPM-Partial).
	Options = icspm.Options
	// Variant selects CSPM-Basic or CSPM-Partial.
	Variant = icspm.Variant
	// IterationStat records one merge iteration (Fig. 5 series).
	IterationStat = icspm.IterationStat
	// ShardStrategy selects how MineSharded partitions the graph.
	ShardStrategy = icspm.ShardStrategy
)

// Re-exported variant constants.
const (
	Partial = icspm.Partial
	Basic   = icspm.Basic
)

// Re-exported shard strategies.
const (
	// ShardAuto picks components when the graph decomposes, edge-cut
	// otherwise.
	ShardAuto = icspm.ShardAuto
	// ShardComponents shards by attribute-closed component groups; the
	// merged model is bit-identical to Mine's.
	ShardComponents = icspm.ShardComponents
	// ShardEdgeCut cuts one entangled component into balanced regions,
	// then refines sequentially across the cut.
	ShardEdgeCut = icspm.ShardEdgeCut
)

// Mine runs CSPM-Partial with single-value coresets — the parameter-free
// entry point (Algorithm 3).
func Mine(g *Graph) *Model { return icspm.Mine(g) }

// MineWithOptions runs CSPM with explicit options (variant selection,
// iteration caps, stats collection, ablations).
func MineWithOptions(g *Graph, opts Options) *Model {
	return icspm.MineWithOptions(g, opts)
}

// MineSharded partitions g into shards mined concurrently and merges the
// per-shard models with exact description-length accounting. Under the
// default component strategy the result is bit-identical to Mine(g) while
// wall time drops with shard parallelism; Options.Shards and
// Options.ShardStrategy tune the partitioning.
func MineSharded(g *Graph, opts Options) *Model {
	return icspm.MineSharded(g, opts)
}

// Incremental mining: a fingerprint-keyed shard-result cache turns repeated
// mining of evolving graphs into jobs that re-mine only changed components.
type (
	// ShardCache caches per-shard mining results keyed by component
	// fingerprints — in-memory LRU with an optional on-disk layer.
	ShardCache = shardcache.Cache
	// ShardCacheStats snapshots a cache's hit/miss/eviction counters.
	ShardCacheStats = shardcache.Stats
	// Miner bundles options with a ShardCache for repeated cached mining.
	Miner = icspm.Miner
	// ComponentFingerprint is the canonical content hash of one component
	// group (or of the graph-global attribute context).
	ComponentFingerprint = graph.Fingerprint
)

// NewShardCache returns a memory-only shard-result cache holding at most
// capacity entries (≤0 = unbounded).
func NewShardCache(capacity int) *ShardCache { return shardcache.New(capacity) }

// OpenShardCache returns a shard-result cache persisted under dir (one blob
// per fingerprint, surviving process restarts and LRU evictions), creating
// the directory if needed.
func OpenShardCache(capacity int, dir string) (*ShardCache, error) {
	return shardcache.Open(capacity, dir)
}

// MineShardedCached mines g like MineSharded's component strategy but
// replays component groups whose fingerprints hit in cache, re-mining only
// dirty groups. The result is bit-identical to Mine(g) for every cache
// state (with MineSharded's caveat that Options.MaxIterations caps each
// group independently rather than globally); Model.CacheHits/CacheMisses
// report what the run reused. A nil cache mines through a private
// ephemeral cache — same results, no reuse across calls.
func MineShardedCached(g *Graph, opts Options, cache *ShardCache) *Model {
	return icspm.MineShardedCached(g, opts, cache)
}

// NewMiner validates opts and returns a Miner whose Mine method runs
// MineShardedCached over a persistent cache (nil = fresh unbounded
// in-memory cache).
func NewMiner(opts Options, cache *ShardCache) (*Miner, error) {
	return icspm.NewMiner(opts, cache)
}

// Distributed mining: shard jobs fan out over a pluggable transport to
// worker processes (cmd/cspm-worker) and the collected results merge
// through the same exact path as cache replays.
type (
	// DistributedOptions tunes MineDistributed: search options plus the
	// transport, retry, timeout and fallback policy around them.
	DistributedOptions = icspm.DistributedOptions
	// DistributedError reports the shard jobs a MineDistributed run could
	// not collect when local fallback is disabled.
	DistributedError = icspm.DistributedError
	// ShardTransport moves shard jobs to workers and results back —
	// in-process loopback, TCP to cspm-worker processes, or a custom
	// implementation (the ShardJob/ShardResult aliases make the interface
	// satisfiable outside this module).
	ShardTransport = shardrpc.Transport
	// ShardJob is one self-contained shard mining job a transport carries.
	ShardJob = shardrpc.Job
	// ShardResult is a worker's checksummed response to one ShardJob.
	ShardResult = shardrpc.Result
)

// MineDistributed mines g by fanning one shard job per attribute-closed
// component group over a transport (nil = an in-process worker pool),
// retrying failed attempts and falling back to local mining, so the result
// is bit-identical to Mine(g) under any transport behaviour — or, with
// NoFallback set, a typed *DistributedError. See DESIGN.md "Distributed
// shard exchange".
func MineDistributed(g *Graph, opts DistributedOptions) (*Model, error) {
	return icspm.MineDistributed(g, opts)
}

// DialShardWorkers connects to cspm-worker processes at the given TCP
// addresses and returns the transport for DistributedOptions.Transport.
// Close it after mining.
func DialShardWorkers(addrs []string) (ShardTransport, error) {
	return shardrpc.Dial(addrs)
}

// Online serving: a long-running HTTP/JSON host for a mined model. Reads
// are answered from an atomically swapped immutable snapshot; mutations are
// ingested in batches and folded in by a background incremental re-mine.
type (
	// Server hosts a live graph plus its mined model behind the /v1 API
	// (patterns, completion, model stats, health, metrics, mutations).
	Server = serve.Server
	// ServerOptions configures a Server: search options, shard cache,
	// optional worker transport, the re-mine coalescing window, and the
	// durability contract (WALDir for fsync'd-before-ack mutation batches,
	// PersistDir for verified checkpoints, Standby for warm-spare
	// promotion).
	ServerOptions = serve.Options
	// ServerSnapshot is one immutable serving state: generation, graph,
	// model, and the completion scorer built over both.
	ServerSnapshot = serve.Snapshot
	// GraphMutation is one edit submitted to a Server's mutation log:
	// attribute or edge edits, or vertex add/remove ops that grow and
	// shrink the served graph (validated per batch with a running vertex
	// count; deletes shift later ids down by one).
	GraphMutation = serve.Mutation
	// ServerWatchResponse is the GET /v1/watch long-poll payload: the
	// published generation and its model commitment.
	ServerWatchResponse = serve.WatchResponse
	// ServerMetrics is the server's counters snapshot (/v1/metrics).
	ServerMetrics = serve.MetricsSnapshot
	// ServerRecoveryStats reports what NewServer recovered from durable
	// state: checkpoint generation, replayed WAL batches, quarantined
	// blobs, and whether any commitment failed verification.
	ServerRecoveryStats = serve.RecoveryStats
)

// NewServer validates opts, recovers any durable state (a verified
// checkpoint in PersistDir, unfolded WAL batches in WALDir), mines the
// recovered graph synchronously for the first snapshot, and starts the
// background re-mine loop. The returned Server is an http.Handler serving
// the /v1 API; Close it to stop the loop (and checkpoint when
// ServerOptions.PersistDir is set). With WALDir set, a nil error from
// SubmitMutations means the batch is durable — a crash never loses it.
// After each successful re-mine the served model is bit-identical to Mine
// on the mutated graph. g may be nil only when Standby is set and a
// committed checkpoint supplies the graph.
func NewServer(g *Graph, opts ServerOptions) (*Server, error) {
	return serve.NewServer(g, opts)
}

// Multi-tenant serving: one process hosting many named graphs behind the
// /v2/graphs/{ns} API, each an isolated Server with its own WAL and
// checkpoint subtree under a shared root, re-mines drawn from one bounded
// worker budget.
type (
	// ServeHost is the multi-tenant fleet member: a namespace registry plus
	// the HTTP surface (/v2/graphs admin verbs, /v2/graphs/{ns}/... per
	// tenant, and the deprecated flat /v1 alias of the "default"
	// namespace). It is an http.Handler.
	ServeHost = serve.Host
	// ServeHostOptions configures a ServeHost: the persist root every
	// namespace lives under, the tenant cap, the shared re-mine budget, and
	// the per-tenant Options template.
	ServeHostOptions = serve.HostOptions
	// ServeNamespaceInfo is one tenant's directory entry on the admin
	// surface.
	ServeNamespaceInfo = serve.NamespaceInfo
)

// DefaultServeNamespace is the namespace the deprecated flat /v1 surface
// aliases to.
const DefaultServeNamespace = serve.DefaultNamespace

// NewServeHost validates opts and, when RootDir is set, restores every
// namespace found under it (standby-style promotion from each tenant's
// checkpoint + WAL). Namespace trees with no durable state are quarantined,
// never served; any other recovery failure is fatal. Close the host to stop
// every tenant.
func NewServeHost(opts ServeHostOptions) (*ServeHost, error) {
	return serve.NewHost(opts)
}

// MineMultiCore runs the §IV-F general mode: multi-value coresets are first
// selected by SLIM on the vertex-attribute transaction database, then
// a-stars are mined over them. Still parameter-free.
func MineMultiCore(g *Graph) (*Model, error) {
	res := slim.Mine(slim.VertexTransactions(g), slim.Options{})
	coresets, positions := slim.ItemsetsAsCoresets(res)
	db, err := invdb.FromGraphWithCoresets(g, coresets, positions)
	if err != nil {
		return nil, err
	}
	return icspm.MineDB(db, g.Vocab(), Options{CollectStats: true}), nil
}

// Stepper exposes the CSPM-Partial search one merge at a time (anytime
// mining: every prefix of the merge sequence is a valid lossless model).
type Stepper = icspm.Stepper

// NewStepper seeds a step-wise mining run on g.
func NewStepper(g *Graph, opts Options) *Stepper { return icspm.NewStepper(g, opts) }

// ReadModelJSON loads a model serialised with Model.WriteJSON. Passing an
// existing graph's vocabulary keeps attribute ids aligned with that graph;
// nil interns a fresh vocabulary.
func ReadModelJSON(r io.Reader, vocab *Vocab) (*Model, error) {
	return icspm.ReadJSON(r, vocab)
}

// MineMultiCoreKrimp is the §IV-F alternative using Krimp for coreset
// selection. Unlike SLIM it is not parameter-free: Krimp's candidate miner
// needs an absolute support threshold.
func MineMultiCoreKrimp(g *Graph, minSupport int) (*Model, error) {
	res, err := krimp.Mine(slim.VertexTransactions(g), krimp.Options{MinSupport: minSupport})
	if err != nil {
		return nil, err
	}
	coresets, positions := slim.CodeTableAsCoresets(res.CT)
	db, err := invdb.FromGraphWithCoresets(g, coresets, positions)
	if err != nil {
		return nil, err
	}
	return icspm.MineDB(db, g.Vocab(), Options{CollectStats: true}), nil
}

// Node attribute completion (§VI-C).
type (
	// CompletionTask hides a fraction of vertices' attributes for the
	// completion benchmark.
	CompletionTask = completion.Task
	// Scorer ranks candidate attribute values with a mined model
	// (Algorithm 5).
	Scorer = completion.Scorer
	// CompletionMetrics holds Recall@K and NDCG@K.
	CompletionMetrics = completion.Metrics
	// Matrix is the dense score matrix exchanged with completion models.
	Matrix = tensor.Matrix
)

// NewCompletionTask hides testFraction of the attributed vertices.
func NewCompletionTask(g *Graph, testFraction float64, seed int64) (*CompletionTask, error) {
	return completion.NewTask(g, testFraction, seed)
}

// NewScorer builds an Algorithm 5 scorer from a mined model.
func NewScorer(model *Model, g *Graph) *Scorer { return completion.NewScorer(model, g) }

// Fuse multiplies normalised model scores with normalised CSPM scores
// (Fig. 7).
func Fuse(modelScores, cspmScores *Matrix, testNodes []VertexID) *Matrix {
	return completion.Fuse(modelScores, cspmScores, testNodes)
}

// EvaluateCompletion computes Recall@K / NDCG@K for a score matrix.
func EvaluateCompletion(task *CompletionTask, scores *Matrix, ks []int) CompletionMetrics {
	return completion.Evaluate(task, scores, ks)
}
