// Cached-mining contract tests. MineShardedCached promises the same
// bit-identical-to-Mine(g) contract as the component shard strategy for
// EVERY cache state — cold, partially warm, fully warm, disk-reloaded, or
// fed with entries from unrelated graphs — because replayed results are pure
// functions of the cached line multisets and dirty groups re-mine through
// the ordinary shard path (see DESIGN.md "Shard-result cache").
package cspm_test

import (
	"testing"

	"cspm"
	"cspm/internal/dataset"
)

func cachedTestGraph(seed int64) (*cspm.Graph, int) {
	cfg := dataset.IslandsConfig{
		Seed:     seed,
		Islands:  3 + int(seed)%4,
		MinNodes: 20, MaxNodes: 90,
		AttrsPerIsland: 8 + int(seed),
		ExtraEdges:     1.0,
		AttrsPerNode:   3,
	}
	return dataset.Islands(cfg), cfg.Islands
}

// TestCachedEquivalence is the property test of the acceptance criterion:
// across seeds × shard counts, a cold run, a warm replay, and a re-run over
// a cache poisoned with another graph's entries are all bit-identical to
// Mine(g), and the hit/miss counters account for every component group.
func TestCachedEquivalence(t *testing.T) {
	fg, _ := cachedTestGraph(9)
	for seed := int64(1); seed <= 5; seed++ {
		g, islands := cachedTestGraph(seed)
		want := cspm.MineWithOptions(g, cspm.Options{CollectStats: true})
		for _, shards := range []int{1, 2, 8} {
			opts := cspm.Options{CollectStats: true, Shards: shards}
			cache := cspm.NewShardCache(0)
			name := "seed" + string(rune('0'+seed)) + "/shards" + string(rune('0'+shards))

			cold := cspm.MineShardedCached(g, opts, cache)
			assertShardedMatchesMine(t, name+"/cold", cold, want)
			if cold.CacheHits != 0 || cold.CacheMisses != islands {
				t.Fatalf("%s: cold run counted %d hits, %d misses (want 0, %d)",
					name, cold.CacheHits, cold.CacheMisses, islands)
			}
			if cold.ShardCount != islands {
				t.Fatalf("%s: cold run mined %d shards, want %d", name, cold.ShardCount, islands)
			}

			warm := cspm.MineShardedCached(g, opts, cache)
			assertShardedMatchesMine(t, name+"/warm", warm, want)
			if warm.CacheHits != islands || warm.CacheMisses != 0 {
				t.Fatalf("%s: warm run counted %d hits, %d misses (want %d, 0)",
					name, warm.CacheHits, warm.CacheMisses, islands)
			}
			if warm.ShardCount != 0 {
				t.Fatalf("%s: warm run still mined %d shards", name, warm.ShardCount)
			}

			// A cache holding only another graph's entries ("poisoned") must
			// be inert: no key can match, so every group re-mines. Built
			// fresh per subtest — using it on g fills it with g's entries.
			foreign := cspm.NewShardCache(0)
			cspm.MineShardedCached(fg, cspm.Options{}, foreign)
			poisoned := cspm.MineShardedCached(g, opts, foreign)
			assertShardedMatchesMine(t, name+"/poisoned", poisoned, want)
			if poisoned.CacheHits != 0 {
				t.Fatalf("%s: foreign cache produced %d hits", name, poisoned.CacheHits)
			}
		}
	}
}

// TestCachedIncrementalMutation pins the incremental contract: after
// rewiring the edges of one island, a warm cache re-mines exactly that
// island and the result is bit-identical to mining the mutated graph from
// scratch.
func TestCachedIncrementalMutation(t *testing.T) {
	cfg := dataset.IslandsConfig{
		Seed: 3, Islands: 6, MinNodes: 20, MaxNodes: 60,
		AttrsPerIsland: 10, ExtraEdges: 1.0, AttrsPerNode: 3,
	}
	base := dataset.IslandsWithEdgeSeeds(cfg, nil)
	mutated := dataset.IslandsWithEdgeSeeds(cfg, []int64{0, 0, 4242}) // rewire island 2 only

	cache := cspm.NewShardCache(0)
	opts := cspm.Options{CollectStats: true}
	cspm.MineShardedCached(base, opts, cache)

	want := cspm.MineWithOptions(mutated, opts)
	got := cspm.MineShardedCached(mutated, opts, cache)
	assertShardedMatchesMine(t, "mutated", got, want)
	if got.CacheMisses != 1 || got.CacheHits != cfg.Islands-1 {
		t.Fatalf("mutating one island cost %d misses, %d hits (want 1, %d)",
			got.CacheMisses, got.CacheHits, cfg.Islands-1)
	}

	// The unmutated graph is still fully warm: mutation added entries, it
	// did not invalidate clean ones.
	still := cspm.MineShardedCached(base, opts, cache)
	if still.CacheMisses != 0 {
		t.Fatalf("base graph re-mine missed %d groups after mutation run", still.CacheMisses)
	}
}

// TestCachedDiskRoundTrip pins the on-disk layer: a fresh Cache over the
// same directory serves every group from disk, bit-identically, across
// simulated process restarts.
func TestCachedDiskRoundTrip(t *testing.T) {
	dir := t.TempDir()
	g, islands := cachedTestGraph(2)
	want := cspm.MineWithOptions(g, cspm.Options{CollectStats: true})

	c1, err := cspm.OpenShardCache(0, dir)
	if err != nil {
		t.Fatal(err)
	}
	cspm.MineShardedCached(g, cspm.Options{CollectStats: true}, c1)

	c2, err := cspm.OpenShardCache(0, dir)
	if err != nil {
		t.Fatal(err)
	}
	got := cspm.MineShardedCached(g, cspm.Options{CollectStats: true}, c2)
	assertShardedMatchesMine(t, "disk", got, want)
	if got.CacheHits != islands || got.CacheMisses != 0 {
		t.Fatalf("disk-backed rerun counted %d hits, %d misses (want %d, 0)",
			got.CacheHits, got.CacheMisses, islands)
	}
}

// TestCachedSingleComponent pins the degenerate shape: a connected graph is
// one attribute-closed group, cached as a single unit, still bit-identical.
func TestCachedSingleComponent(t *testing.T) {
	g := dataset.USFlight(1)
	want := cspm.MineWithOptions(g, cspm.Options{CollectStats: true})
	cache := cspm.NewShardCache(0)
	cold := cspm.MineShardedCached(g, cspm.Options{CollectStats: true}, cache)
	assertShardedMatchesMine(t, "usflight/cold", cold, want)
	warm := cspm.MineShardedCached(g, cspm.Options{CollectStats: true}, cache)
	assertShardedMatchesMine(t, "usflight/warm", warm, want)
	if warm.CacheHits != 1 || warm.ShardCount != 0 {
		t.Fatalf("warm single-component run: hits=%d shards=%d", warm.CacheHits, warm.ShardCount)
	}
}

// TestMinerFacade covers the public Miner bundle and nil-cache degradations.
func TestMinerFacade(t *testing.T) {
	if _, err := cspm.NewMiner(cspm.Options{Shards: -1}, nil); err == nil {
		t.Fatal("NewMiner accepted invalid options")
	}
	g, islands := cachedTestGraph(4)
	want := cspm.MineWithOptions(g, cspm.Options{CollectStats: true})
	miner, err := cspm.NewMiner(cspm.Options{CollectStats: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	assertShardedMatchesMine(t, "miner/cold", miner.Mine(g), want)
	warm := miner.Mine(g)
	assertShardedMatchesMine(t, "miner/warm", warm, want)
	if warm.CacheHits != islands {
		t.Fatalf("miner warm run hit %d groups, want %d", warm.CacheHits, islands)
	}
	if st := miner.Cache().Stats(); st.Hits == 0 || st.Entries != islands {
		t.Fatalf("miner cache stats %+v look wrong for %d islands", st, islands)
	}

	// nil cache mines through a private ephemeral cache: same bit-identical
	// contract (even on graphs where MineSharded would pick edge-cut), every
	// group a miss, nothing reused.
	direct := cspm.MineShardedCached(g, cspm.Options{CollectStats: true}, nil)
	assertShardedMatchesMine(t, "nilcache", direct, want)
	if direct.CacheHits != 0 || direct.CacheMisses != islands {
		t.Fatalf("nil-cache run counted %d hits, %d misses (want 0, %d)",
			direct.CacheHits, direct.CacheMisses, islands)
	}
	connected := dataset.USFlight(1)
	wantConn := cspm.MineWithOptions(connected, cspm.Options{CollectStats: true})
	assertShardedMatchesMine(t, "nilcache/connected",
		cspm.MineShardedCached(connected, cspm.Options{CollectStats: true}, nil), wantConn)
}
