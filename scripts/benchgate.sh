#!/usr/bin/env sh
# Bench-regression gate: compare a fresh `go test -bench` run against the
# committed baseline and fail on a geomean slowdown of the hot-path micro
# benchmarks beyond the threshold.
#
#   scripts/benchgate.sh bench_baseline.txt bench_new.txt [max_pct]
#
# When benchstat (golang.org/x/perf/cmd/benchstat) is installed — CI installs
# it — its full comparison table is printed and saved to benchstat.txt for
# the artifact upload. The pass/fail decision itself is computed here from
# the raw benchmark lines (mean ns/op per benchmark, geomean of new/old
# ratios over the /^BenchmarkMicro/ set), so the gate works identically with
# or without benchstat and cannot drift with its output format.
#
# The baseline is hardware-specific: regenerate it on the CI runner class
# whenever the benchmark set or the runner hardware changes, with
#   go test -run '^$' -bench 'Micro|Sharded' -benchmem -count 5 . > bench_baseline.txt
set -eu
BASE="${1:?usage: benchgate.sh baseline new [max_pct]}"
NEW="${2:?usage: benchgate.sh baseline new [max_pct]}"
MAXPCT="${3:-10}"

if command -v benchstat >/dev/null 2>&1; then
    benchstat "$BASE" "$NEW" | tee benchstat.txt || true
    echo
fi

awk -v maxpct="$MAXPCT" '
    FNR == 1 { file++ }
    /^BenchmarkMicro/ {
        name = $1
        sub(/-[0-9]+$/, "", name) # strip the GOMAXPROCS suffix
        for (i = 3; i <= NF; i++) {
            if ($i == "ns/op") {
                if (file == 1) { bsum[name] += $(i-1); bn[name]++ }
                else           { nsum[name] += $(i-1); nn[name]++ }
            }
        }
    }
    END {
        lr = 0; n = 0
        for (k in bsum) {
            if (!(k in nsum)) continue
            old = bsum[k] / bn[k]; new = nsum[k] / nn[k]
            if (old <= 0 || new <= 0) continue
            printf "%-55s %14.1f -> %14.1f ns/op  (%+7.2f%%)\n", k, old, new, 100 * (new / old - 1)
            lr += log(new / old); n++
        }
        if (n == 0) {
            print "benchgate: no hot-path micro benchmarks common to both files" > "/dev/stderr"
            exit 1
        }
        g = exp(lr / n)
        printf "geomean over %d hot-path micros: %+.2f%% (gate: +%s%%)\n", n, 100 * (g - 1), maxpct
        if (100 * (g - 1) > maxpct + 0) {
            printf "benchgate: hot-path micros slowed down beyond the +%s%% gate\n", maxpct > "/dev/stderr"
            exit 2
        }
    }
' "$BASE" "$NEW"
