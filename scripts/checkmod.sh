#!/usr/bin/env sh
# Module-metadata guard shared by every CI job: fail fast when go.mod
# declares dependencies without a committed go.sum (setup-go's module cache
# keys off it), then verify whatever is in the module cache.
set -eu
cd "$(dirname "$0")/.."
if grep -Eq '^require' go.mod && [ ! -f go.sum ]; then
  echo "go.mod declares dependencies but go.sum is missing — commit it" >&2
  exit 1
fi
go mod verify
