#!/usr/bin/env sh
# Combined statement-coverage gates for the mining core and the incremental
# subsystem. One full test run produces one profile over all gated packages;
# per-group percentages are computed straight from the profile's statement
# blocks, so adding a group costs no extra test time.
#
#   gates: internal/cspm + internal/invdb                  >= 93%  (the PR 2 level)
#          internal/graph + internal/shardcache
#            + internal/shardrpc + internal/serve
#              (incl. replication.go — the leader/replica
#               shipping, verify-before-swap and promotion
#               paths are inside the serve match)
#            + internal/serveclient (incl. fleet.go)
#            + internal/wal (and wal/crashfs)
#            + internal/dynamic
#            + internal/obs                                >= 85%  (subsystem bar:
#                                                          cache + transport +
#                                                          serving + replication +
#                                                          API client + durability
#                                                          + dynamic graphs +
#                                                          observability)
#
#   scripts/coverage.sh            # gate at the default thresholds
#   scripts/coverage.sh 90 80      # custom core / subsystem thresholds
set -eu
cd "$(dirname "$0")/.."
CORE_THRESHOLD="${1:-93.0}"
SUB_THRESHOLD="${2:-85.0}"
# Keep the test output: on failure it is the only diagnostic; on success the
# per-package coverage lines double as a breakdown.
go test -count=1 -coverprofile=coverage.out \
  -coverpkg=cspm/internal/cspm,cspm/internal/invdb,cspm/internal/graph,cspm/internal/shardcache,cspm/internal/shardrpc,cspm/internal/serve,cspm/internal/serveclient,cspm/internal/wal,cspm/internal/wal/crashfs,cspm/internal/dynamic,cspm/internal/obs ./...

# group_pct <file-path-regex>: statement coverage over the matching files.
# Blocks are deduped by position (the merged profile repeats blocks once per
# test binary); a block counts as covered if ANY repetition hit it — the same
# union `go tool cover -func` reports.
group_pct() {
  awk -v re="$1" '
    NR > 1 {
      split($1, a, ":")
      if (a[1] !~ re) next
      stmts[$1] = $2
      if ($3 + 0 > 0) hit[$1] = 1
    }
    END {
      total = covered = 0
      for (k in stmts) {
        total += stmts[k]
        if (k in hit) covered += stmts[k]
      }
      if (total == 0) { print "0.0"; exit }
      printf "%.1f", 100 * covered / total
    }
  ' coverage.out
}

gate() { # gate <label> <regex> <threshold>
  PCT=$(group_pct "$2")
  echo "$1 coverage: ${PCT}% (gate: $3%)"
  if ! awk -v t="$PCT" -v g="$3" 'BEGIN { exit (t + 0 >= g + 0) ? 0 : 1 }'; then
    echo "$1 coverage ${PCT}% fell below the $3% gate" >&2
    exit 1
  fi
}

gate "internal/cspm + internal/invdb" '^cspm/internal/(cspm|invdb)/' "$CORE_THRESHOLD"
gate "internal/graph + internal/shardcache + internal/shardrpc + internal/serve + internal/serveclient + internal/wal + internal/dynamic + internal/obs" '^cspm/internal/(graph|shardcache|shardrpc|serve|serveclient|wal|dynamic|obs)/' "$SUB_THRESHOLD"
