#!/usr/bin/env sh
# Combined statement-coverage gate for the mining core. Runs the full test
# suite with -coverpkg over internal/cspm + internal/invdb and fails when the
# combined percentage drops below the gate (default set to the level the
# sharded-mining PR established, minus a small buffer for line-count churn).
#
#   scripts/coverage.sh          # gate at the default threshold
#   scripts/coverage.sh 90.0     # custom threshold
set -eu
cd "$(dirname "$0")/.."
THRESHOLD="${1:-93.0}"
# Keep the test output: on failure it is the only diagnostic; on success the
# per-package coverage lines double as a breakdown.
go test -count=1 -coverprofile=coverage.out \
  -coverpkg=cspm/internal/cspm,cspm/internal/invdb ./...
TOTAL=$(go tool cover -func=coverage.out | awk '/^total:/ { gsub(/%/, "", $3); print $3 }')
echo "combined internal/cspm + internal/invdb coverage: ${TOTAL}% (gate: ${THRESHOLD}%)"
if ! awk -v t="$TOTAL" -v g="$THRESHOLD" 'BEGIN { exit (t + 0 >= g + 0) ? 0 : 1 }'; then
  echo "coverage ${TOTAL}% fell below the ${THRESHOLD}% gate" >&2
  exit 1
fi
