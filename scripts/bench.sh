#!/usr/bin/env sh
# Runs the Table III + micro benchmark suite with -benchmem and appends the
# parsed results to BENCH_1.json (see DESIGN.md's experiment index).
#
#   scripts/bench.sh                       # default pattern, BENCH_1.json
#   scripts/bench.sh -label post-change    # tag the run
#   scripts/bench.sh -bench 'Table3' -benchtime 5x -out BENCH_2.json
set -eu
cd "$(dirname "$0")/.."
exec go run ./cmd/bench "$@"
