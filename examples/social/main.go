// Social-network mining: the §VI-B(3) scenario. Generates a Pokec-like
// friendship network whose users carry music tastes, mines a-stars, and
// prints taste-correlation patterns such as ({rap}, {rock metal pop}).
package main

import (
	"flag"
	"fmt"

	"cspm"
	"cspm/internal/dataset"
)

func main() {
	nodes := flag.Int("nodes", 4000, "network size")
	seed := flag.Int64("seed", 1, "generator seed")
	top := flag.Int("top", 15, "patterns to print")
	flag.Parse()

	g := dataset.Pokec(dataset.PokecConfig{Nodes: *nodes, Seed: *seed, Genres: 914})
	fmt.Printf("Pokec-like network: %s\n\n", g.ComputeStats())

	model := cspm.Mine(g)
	fmt.Printf("mined %d a-stars in %d merge iterations (DL %.0f -> %.0f bits)\n\n",
		len(model.Patterns), model.Iterations, model.BaselineDL, model.FinalDL)

	fmt.Println("strongest taste correlations (user's taste -> friends' tastes):")
	for i, p := range model.MultiLeaf() {
		if i >= *top {
			break
		}
		fmt.Printf("  %-55s confidence %.2f\n", p.Format(g.Vocab()), p.Confidence())
	}

	// A mined model can drive recommendations: score the likeliest missing
	// taste of a user from the friends' tastes (Algorithm 5).
	task, err := cspm.NewCompletionTask(g, 0.05, *seed)
	if err != nil {
		panic(err)
	}
	trained := cspm.Mine(task.TrainGraph())
	scorer := cspm.NewScorer(trained, task.TrainGraph())
	scores := scorer.ScoreMatrix(task)
	m := cspm.EvaluateCompletion(task, scores, []int{3, 10})
	fmt.Printf("\ntaste completion with CSPM scores alone: recall@3=%.3f recall@10=%.3f\n",
		m.RecallAtK[3], m.RecallAtK[10])
}
