// Node attribute completion: the §VI-C scenario (Fig. 7 pipeline). Trains a
// GCN on a Cora-like citation network with 10% of the nodes' attributes
// hidden, then fuses its predictions with CSPM's a-star scores and reports
// the Recall/NDCG lift of Table IV.
package main

import (
	"flag"
	"fmt"

	"cspm"
	"cspm/internal/dataset"
	"cspm/internal/gnn"
)

func main() {
	seed := flag.Int64("seed", 1, "experiment seed")
	epochs := flag.Int("epochs", 80, "GCN training epochs")
	flag.Parse()

	cfg := dataset.Cora(*seed)
	cfg.Nodes /= 4 // demo scale; cmd/experiments table4 runs the full sweep
	cfg.Attrs /= 2
	g, _ := dataset.Citation(cfg)
	task, err := cspm.NewCompletionTask(g, 0.1, *seed)
	if err != nil {
		panic(err)
	}
	fmt.Printf("citation graph: %s\n", g.ComputeStats())
	fmt.Printf("hidden nodes: %d\n\n", len(task.TestNodes))

	// Step 1: mine a-stars on the training view (no test-attribute leakage).
	model := cspm.Mine(task.TrainGraph())
	fmt.Printf("CSPM: %d patterns, DL %.0f -> %.0f bits\n",
		len(model.Patterns), model.BaselineDL, model.FinalDL)

	// Step 2: train the neural baseline.
	gcn := gnn.NewGCN(gnn.Config{Hidden: 32, Epochs: *epochs, LR: 0.02, Seed: *seed})
	gcnScores := gcn.FitPredict(task)

	// Step 3: score with Algorithm 5 and fuse (Fig. 7).
	scorer := cspm.NewScorer(model, task.TrainGraph())
	fused := cspm.Fuse(gcnScores, scorer.ScoreMatrix(task), task.TestNodes)

	ks := []int{10, 20, 50}
	base := cspm.EvaluateCompletion(task, gcnScores, ks)
	plus := cspm.EvaluateCompletion(task, fused, ks)
	fmt.Printf("\n%-14s", "Method")
	for _, k := range ks {
		fmt.Printf(" Recall@%-3d", k)
	}
	fmt.Println()
	printRow := func(name string, m cspm.CompletionMetrics) {
		fmt.Printf("%-14s", name)
		for _, k := range ks {
			fmt.Printf(" %10.4f", m.RecallAtK[k])
		}
		fmt.Println()
	}
	printRow("GCN", base)
	printRow("CSPM+GCN", plus)
	fmt.Printf("\nimprovement@%d: %+.2f%%\n", ks[0],
		100*(plus.RecallAtK[ks[0]]-base.RecallAtK[ks[0]])/base.RecallAtK[ks[0]])
}
