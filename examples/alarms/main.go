// Telecom alarm analysis: the §VI-D scenario. Simulates a device network
// with a hidden fault-propagation rule library, mines alarm-correlation
// rules with CSPM and the ACOR baseline, and compares their coverage of the
// library (Fig. 8), then shows the alarm-compression effect of the rules.
package main

import (
	"flag"
	"fmt"

	"cspm/internal/alarm"
)

func main() {
	seed := flag.Int64("seed", 3, "simulation seed")
	flag.Parse()

	cfg := alarm.DefaultSim()
	cfg.Seed = *seed
	log, lib, err := alarm.Simulate(cfg)
	if err != nil {
		panic(err)
	}
	valid := lib.PairRules()
	fmt.Printf("simulated %d alarms on %d devices; hidden library: %d rules / %d pair rules\n\n",
		len(log.Events), log.Devices, len(lib.Rules), len(valid))

	cspmRules := alarm.CSPMRules(log, cfg.WindowSec)
	acorRules := alarm.ACORRules(log, cfg.WindowSec)

	fmt.Println("coverage of the hidden rule library (Fig. 8):")
	fmt.Printf("%8s %10s %10s\n", "topK", "CSPM", "ACOR")
	ks := []int{50, 100, 200, 400, 800, 1600}
	for _, k := range ks {
		fmt.Printf("%8d %10.3f %10.3f\n", k,
			alarm.Coverage(alarm.Rules(cspmRules), valid, k),
			alarm.Coverage(alarm.Rules(acorRules), valid, k))
	}

	fmt.Println("\ntop CSPM alarm rules (cause -> derived):")
	for i, r := range cspmRules {
		if i >= 10 {
			break
		}
		fmt.Printf("  %-8s -> %-8s score %.2f\n",
			alarm.TypeName(r.Rule.Cause), alarm.TypeName(r.Rule.Derived), r.Score)
	}

	// Alarm compression: count how many derived alarms the top rules would
	// suppress from the operator's console.
	topRules := make(map[int]bool)
	for i, r := range cspmRules {
		if i >= len(valid) {
			break
		}
		topRules[r.Rule.Derived] = true
	}
	suppressed := 0
	for _, e := range log.Events {
		if topRules[e.Type] {
			suppressed++
		}
	}
	fmt.Printf("\nalarm compression: the top %d rules suppress %d of %d alarms (%.1f%%)\n",
		len(valid), suppressed, len(log.Events), 100*float64(suppressed)/float64(len(log.Events)))
}
