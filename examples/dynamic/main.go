// Temporal mining on a dynamic attributed graph — the paper's future-work
// direction (2). Simulates a sensor network where "overheat" on a device is
// followed by "throttle" on its neighbours in the next time window, flattens
// the snapshot sequence into a temporal product graph, and mines it: CSPM
// surfaces the temporal a-star without being told anything about time.
package main

import (
	"flag"
	"fmt"
	"math/rand"

	"cspm"
)

func main() {
	devices := flag.Int("devices", 60, "sensor count")
	steps := flag.Int("steps", 40, "time steps")
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Parse()
	rng := rand.New(rand.NewSource(*seed))

	// Ring topology.
	topo := make([][2]cspm.VertexID, 0, *devices)
	for d := 0; d < *devices; d++ {
		topo = append(topo, [2]cspm.VertexID{cspm.VertexID(d), cspm.VertexID((d + 1) % *devices)})
	}
	// Event stream: overheats appear at random; each is followed by
	// throttle events on the two ring neighbours in the next window, plus
	// background telemetry noise.
	var events []cspm.TemporalEvent
	const window = 10
	for step := 0; step < *steps; step++ {
		base := int64(step * window)
		for d := 0; d < *devices; d++ {
			if rng.Float64() < 0.08 {
				events = append(events, cspm.TemporalEvent{
					Vertex: cspm.VertexID(d), Value: "overheat", Time: base + rng.Int63n(window),
				})
				for _, nb := range []int{(d + 1) % *devices, (d - 1 + *devices) % *devices} {
					if rng.Float64() < 0.9 {
						events = append(events, cspm.TemporalEvent{
							Vertex: cspm.VertexID(nb), Value: "throttle", Time: base + window + rng.Int63n(window),
						})
					}
				}
			}
			if rng.Float64() < 0.05 {
				events = append(events, cspm.TemporalEvent{
					Vertex: cspm.VertexID(d), Value: fmt.Sprintf("telemetry%d", rng.Intn(20)), Time: base + rng.Int63n(window),
				})
			}
		}
	}

	d, err := cspm.DynamicFromEvents(*devices, topo, events, window)
	if err != nil {
		panic(err)
	}
	g, slices, err := cspm.Flatten(d, cspm.DefaultFlatten())
	if err != nil {
		panic(err)
	}
	fmt.Printf("dynamic graph: %d devices × %d snapshots -> %d active slices, %s\n\n",
		*devices, len(d.Snapshots), len(slices), g.ComputeStats())

	model := cspm.Mine(g)
	fmt.Println("top temporal a-stars (value at t -> neighbourhood values at t/t+1):")
	shown := 0
	for _, p := range model.MultiLeaf() {
		fmt.Printf("  %-40s fL=%d fc=%d len=%.2f\n", p.Format(g.Vocab()), p.FL, p.FC, p.CodeLen)
		if shown++; shown >= 8 {
			break
		}
	}
	for _, p := range model.Patterns {
		name := p.Format(g.Vocab())
		if name == "({overheat}, {throttle})" || name == "({overheat}, {overheat throttle})" {
			fmt.Printf("\nplanted temporal rule recovered: %s (confidence %.2f)\n", name, p.Confidence())
			break
		}
	}
}
