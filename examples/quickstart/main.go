// Quickstart: mine attribute-stars from the paper's running example
// (Fig. 1) and print them ranked by informativeness.
package main

import (
	"fmt"
	"log"

	"cspm"
)

func main() {
	// The Fig. 1 graph: five vertices, attribute values a, b, c.
	b := cspm.NewBuilder(5)
	attrs := map[cspm.VertexID][]string{
		0: {"a"},      // v1
		1: {"a", "c"}, // v2
		2: {"c"},      // v3
		3: {"b"},      // v4
		4: {"a", "b"}, // v5
	}
	for v, vals := range attrs {
		for _, val := range vals {
			if err := b.AddAttr(v, val); err != nil {
				log.Fatal(err)
			}
		}
	}
	for _, e := range [][2]cspm.VertexID{{0, 1}, {0, 2}, {0, 3}, {2, 4}, {3, 4}} {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			log.Fatal(err)
		}
	}
	g := b.Build()

	// CSPM is parameter-free: one call, no thresholds.
	model := cspm.Mine(g)

	fmt.Printf("graph: %s\n", g.ComputeStats())
	fmt.Printf("description length: %.2f -> %.2f bits (ratio %.3f)\n\n",
		model.BaselineDL, model.FinalDL, model.CompressionRatio())
	fmt.Println("a-stars, most informative first (core values -> leaf values):")
	for _, p := range model.Patterns {
		fmt.Printf("  %-20s  appears %d/%d times  code %.3f bits\n",
			p.Format(g.Vocab()), p.FL, p.FC, p.CodeLen)
	}
	// The paper's worked merge (Fig. 4) shows up as ({a}, {b c}): vertices
	// with value a tend to have neighbours carrying b and c.
}
