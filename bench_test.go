// Benchmarks regenerating the paper's tables and figures (one bench per
// artifact; see DESIGN.md's experiment index) plus micro-benchmarks for the
// mining hot paths. Run with:
//
//	go test -bench=. -benchmem
//
// Absolute times are hardware-specific; the paper's claims live in the
// ratios (SLIM < CSPM-Basic, CSPM-Partial ≪ CSPM-Basic, CSPM fusion ≥ bare
// models, CSPM coverage ≥ ACOR).
package cspm_test

import (
	"context"
	"math/rand"
	"net/http/httptest"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"cspm"
	"cspm/internal/alarm"
	"cspm/internal/completion"
	"cspm/internal/dataset"
	"cspm/internal/experiments"
	"cspm/internal/gnn"
	"cspm/internal/intset"
	"cspm/internal/invdb"
	"cspm/internal/serve"
	"cspm/internal/serveclient"
	"cspm/internal/slim"
)

// --- Table II: dataset statistics -----------------------------------------

func BenchmarkTable2_DatasetStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table2(experiments.Small, 1)
	}
}

// --- Table III: runtime comparison ----------------------------------------
// One bench per (algorithm, dataset) cell so `-bench Table3` prints the
// table's rows as benchmark lines.

func table3Graph(b *testing.B, name string) *cspm.Graph {
	b.Helper()
	g, ok := experiments.BenchmarkGraphs(experiments.Small, 1)[name]
	if !ok {
		b.Fatalf("unknown dataset %s", name)
	}
	return g
}

func benchSLIM(b *testing.B, name string) {
	g := table3Graph(b, name)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		slim.MineGraph(g, slim.Options{})
	}
}

func benchCSPM(b *testing.B, name string, variant cspm.Variant) {
	g := table3Graph(b, name)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cspm.MineWithOptions(g, cspm.Options{Variant: variant})
	}
}

func BenchmarkTable3_SLIM_DBLP(b *testing.B)     { benchSLIM(b, experiments.DBLPName) }
func BenchmarkTable3_SLIM_USFlight(b *testing.B) { benchSLIM(b, experiments.USFlightName) }

// CSPM-Basic costs minutes per run on the Table II datasets (the very
// motivation for CSPM-Partial), so the Basic-vs-Partial ratio is measured on
// a scaled-down social graph; Partial also runs on it for the comparison.
func BenchmarkTable3_CSPMBasic_Mini(b *testing.B) {
	g := experiments.MiniGraph(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cspm.MineWithOptions(g, cspm.Options{Variant: cspm.Basic})
	}
}

func BenchmarkTable3_CSPMPartial_Mini(b *testing.B) {
	g := experiments.MiniGraph(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cspm.MineWithOptions(g, cspm.Options{Variant: cspm.Partial})
	}
}

func BenchmarkTable3_SLIM_Mini(b *testing.B) {
	g := experiments.MiniGraph(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		slim.MineGraph(g, slim.Options{})
	}
}

func BenchmarkTable3_CSPMPartial_DBLP(b *testing.B) {
	benchCSPM(b, experiments.DBLPName, cspm.Partial)
}
func BenchmarkTable3_CSPMPartial_DBLPTrend(b *testing.B) {
	benchCSPM(b, experiments.DBLPTrendName, cspm.Partial)
}
func BenchmarkTable3_CSPMPartial_USFlight(b *testing.B) {
	benchCSPM(b, experiments.USFlightName, cspm.Partial)
}
func BenchmarkTable3_CSPMPartial_Pokec(b *testing.B) {
	benchCSPM(b, experiments.PokecName, cspm.Partial)
}

// --- Fig. 5: gain-update ratio ---------------------------------------------
// The figure's data is the per-iteration stats; the bench measures the
// stats-collecting run and reports the mean update ratio as a custom metric.

func benchFig5(b *testing.B, name string, variant cspm.Variant) {
	benchFig5Graph(b, table3Graph(b, name), variant)
}

func benchFig5Graph(b *testing.B, g *cspm.Graph, variant cspm.Variant) {
	b.ResetTimer()
	var mean float64
	for i := 0; i < b.N; i++ {
		m := cspm.MineWithOptions(g, cspm.Options{Variant: variant, CollectStats: true})
		sum := 0.0
		for _, it := range m.PerIter {
			sum += it.UpdateRatio
		}
		if len(m.PerIter) > 0 {
			mean = sum / float64(len(m.PerIter))
		}
	}
	b.ReportMetric(mean, "mean-update-ratio")
}

func BenchmarkFig5_Basic_Mini(b *testing.B) {
	g := experiments.MiniGraph(1)
	benchFig5Graph(b, g, cspm.Basic)
}
func BenchmarkFig5_Partial_Mini(b *testing.B) {
	g := experiments.MiniGraph(1)
	benchFig5Graph(b, g, cspm.Partial)
}
func BenchmarkFig5_Partial_DBLP(b *testing.B) {
	benchFig5(b, experiments.DBLPName, cspm.Partial)
}

// --- Fig. 6 / §VI-B: example patterns --------------------------------------

func BenchmarkFig6_PatternExtraction(b *testing.B) {
	g := table3Graph(b, experiments.USFlightName)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := cspm.Mine(g)
		_ = m.MultiLeaf()
	}
}

// --- Table IV: node attribute completion -----------------------------------
// One bench per model on the (scaled) Cora task, reporting the fusion lift
// as a custom metric.

func benchTable4(b *testing.B, mk func() gnn.Model) {
	cfg := dataset.Cora(1)
	cfg.Nodes /= 4
	cfg.Attrs /= 2
	g, _ := dataset.Citation(cfg)
	task, err := completion.NewTask(g, 0.1, 1)
	if err != nil {
		b.Fatal(err)
	}
	model := cspm.Mine(task.TrainGraph())
	scorer := completion.NewScorer(model, task.TrainGraph())
	cspmScores := scorer.ScoreMatrix(task)
	b.ResetTimer()
	var lift float64
	for i := 0; i < b.N; i++ {
		scores := mk().FitPredict(task)
		base := completion.Evaluate(task, scores, []int{10})
		fused := completion.Evaluate(task, completion.Fuse(scores, cspmScores, task.TestNodes), []int{10})
		if base.RecallAtK[10] > 0 {
			lift = (fused.RecallAtK[10] - base.RecallAtK[10]) / base.RecallAtK[10]
		}
	}
	b.ReportMetric(100*lift, "fusion-lift-%")
}

func quickGNN() gnn.Config { return gnn.Config{Hidden: 16, Epochs: 30, LR: 0.02, Seed: 1} }

func BenchmarkTable4_NeighAggre(b *testing.B) {
	benchTable4(b, func() gnn.Model { return gnn.NeighAggre{} })
}
func BenchmarkTable4_VAE(b *testing.B) {
	benchTable4(b, func() gnn.Model { return gnn.NewVAE(quickGNN()) })
}
func BenchmarkTable4_GCN(b *testing.B) {
	benchTable4(b, func() gnn.Model { return gnn.NewGCN(quickGNN()) })
}
func BenchmarkTable4_GAT(b *testing.B) {
	benchTable4(b, func() gnn.Model { return gnn.NewGAT(quickGNN()) })
}
func BenchmarkTable4_GraphSage(b *testing.B) {
	benchTable4(b, func() gnn.Model { return gnn.NewGraphSage(quickGNN()) })
}
func BenchmarkTable4_SAT(b *testing.B) {
	benchTable4(b, func() gnn.Model { return gnn.NewSAT(quickGNN()) })
}

// --- Fig. 8: alarm-rule coverage -------------------------------------------

func fig8Log(b *testing.B) (*alarm.Log, *alarm.Library) {
	b.Helper()
	cfg := alarm.DefaultSim()
	cfg.Devices = 120
	cfg.Types = 1200
	cfg.Rules = 6
	cfg.DerivedPerRule = 6
	cfg.RootEvents = 900
	cfg.NoiseEvents = 500
	cfg.ChattyEvents = 1200
	cfg.RareEvents = 150
	cfg.Bursts = 150
	log, lib, err := alarm.Simulate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return log, lib
}

func BenchmarkFig8_CSPMRules(b *testing.B) {
	log, lib := fig8Log(b)
	valid := lib.PairRules()
	b.ResetTimer()
	var cov float64
	for i := 0; i < b.N; i++ {
		ranked := alarm.CSPMRules(log, 60)
		cov = alarm.Coverage(alarm.Rules(ranked), valid, 100)
	}
	b.ReportMetric(cov, "coverage@100")
}

func BenchmarkFig8_ACORRules(b *testing.B) {
	log, lib := fig8Log(b)
	valid := lib.PairRules()
	b.ResetTimer()
	var cov float64
	for i := 0; i < b.N; i++ {
		ranked := alarm.ACORRules(log, 60)
		cov = alarm.Coverage(alarm.Rules(ranked), valid, 100)
	}
	b.ReportMetric(cov, "coverage@100")
}

// --- Ablation: model-cost term (DESIGN.md A1) -------------------------------

func BenchmarkAblation_ModelCost(b *testing.B) {
	g, _ := dataset.Planted(dataset.DefaultPlanted())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cspm.MineWithOptions(g, cspm.Options{})
	}
}

func BenchmarkAblation_DataGainOnly(b *testing.B) {
	g, _ := dataset.Planted(dataset.DefaultPlanted())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cspm.MineWithOptions(g, cspm.Options{DisableModelCost: true})
	}
}

// --- Sharded mining (DESIGN.md "Sharded mining") ----------------------------
// One multi-component graph, equal total worker budgets: the Components rows
// must beat the Unsharded row. On a single-core runner the margin comes from
// smaller per-shard search structures (heaps, dictionaries, dedup sets) and
// from not oversubscribing evaluation goroutines; with real cores the
// concurrent shard searches widen it. The EdgeCut row exercises the fallback
// on a connected graph and reports the refinement's share as a metric.

const shardedBenchWorkers = 8

func BenchmarkSharded_Unsharded_W8(b *testing.B) {
	g := dataset.Islands(dataset.BenchIslands())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cspm.MineWithOptions(g, cspm.Options{Workers: shardedBenchWorkers})
	}
}

func benchSharded(b *testing.B, shards int) {
	g := dataset.Islands(dataset.BenchIslands())
	b.ResetTimer()
	var m *cspm.Model
	for i := 0; i < b.N; i++ {
		m = cspm.MineSharded(g, cspm.Options{Shards: shards, Workers: shardedBenchWorkers})
	}
	b.ReportMetric(float64(m.ShardCount), "shards")
}

func BenchmarkSharded_Components_S4W8(b *testing.B)  { benchSharded(b, 4) }
func BenchmarkSharded_Components_S12W8(b *testing.B) { benchSharded(b, 12) }

func BenchmarkSharded_EdgeCut_USFlight_S4W8(b *testing.B) {
	g := dataset.USFlight(1)
	b.ResetTimer()
	var refine float64
	for i := 0; i < b.N; i++ {
		m := cspm.MineSharded(g, cspm.Options{
			Shards: 4, Workers: shardedBenchWorkers, ShardStrategy: cspm.ShardEdgeCut,
		})
		refine = m.RefinementGain
	}
	b.ReportMetric(refine, "refinement-bits")
}

// --- Distributed shards (DESIGN.md "Distributed shard exchange") ------------
// The loopback-distributed scenario: the same archipelago as the Sharded
// rows, mined through MineDistributed's full job pipeline — component
// remap, gob encode, worker-pool mine, checksummed blob decode, exact merge
// — minus the sockets. The gap to BenchmarkSharded_Components is the
// serialisation tax a remote worker fleet pays per job.

func benchDistributed(b *testing.B, shards int) {
	g := dataset.Islands(dataset.BenchIslands())
	b.ResetTimer()
	var m *cspm.Model
	for i := 0; i < b.N; i++ {
		var err error
		m, err = cspm.MineDistributed(g, cspm.DistributedOptions{
			Options: cspm.Options{Shards: shards, Workers: shardedBenchWorkers},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(m.RemoteJobs), "jobs")
}

func BenchmarkDistributed_Loopback_S4W8(b *testing.B)  { benchDistributed(b, 4) }
func BenchmarkDistributed_Loopback_S12W8(b *testing.B) { benchDistributed(b, 12) }

// --- Shard-result cache (DESIGN.md "Shard-result cache") --------------------
// The incremental re-mining scenario of BENCH_3.json: rewire one of twelve
// islands (≈8% of the components) and mine the mutated graph. The Cold row
// re-mines everything through MineSharded; the WarmIncremental row serves
// the eleven clean islands from a cache warmed on the base graph and
// re-mines only the dirty one; WarmFull is the all-hits replay floor. Each
// iteration mutates to an edge seed the cache has never seen (graph
// generation runs off the clock), so the warm row always pays one real
// shard search and the Cold/WarmIncremental ratio is the incremental win.

func cacheBenchOpts() cspm.Options {
	return cspm.Options{Shards: 4, Workers: shardedBenchWorkers}
}

// cacheBenchVariant mutates island 0 of the BenchIslands archipelago to the
// i-th fresh edge seed; attributes — and with them the vocabulary and the
// global standard table — are identical across variants.
func cacheBenchVariant(i int) *cspm.Graph {
	return dataset.IslandsWithEdgeSeeds(dataset.BenchIslands(), []int64{1_000_000 + int64(i)})
}

func BenchmarkCache_ColdSharded_S4W8(b *testing.B) {
	var m *cspm.Model
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		g := cacheBenchVariant(i)
		b.StartTimer()
		m = cspm.MineSharded(g, cacheBenchOpts())
	}
	b.ReportMetric(float64(m.ShardCount), "shards")
}

func BenchmarkCache_WarmIncremental_S4W8(b *testing.B) {
	cache := cspm.NewShardCache(64)
	base := dataset.IslandsWithEdgeSeeds(dataset.BenchIslands(), nil)
	cspm.MineShardedCached(base, cacheBenchOpts(), cache)
	b.ResetTimer()
	var m *cspm.Model
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		g := cacheBenchVariant(i)
		b.StartTimer()
		m = cspm.MineShardedCached(g, cacheBenchOpts(), cache)
	}
	b.ReportMetric(float64(m.CacheHits), "hits")
	b.ReportMetric(float64(m.CacheMisses), "misses")
}

func BenchmarkCache_WarmFull_S4W8(b *testing.B) {
	cache := cspm.NewShardCache(64)
	g := dataset.IslandsWithEdgeSeeds(dataset.BenchIslands(), nil)
	cspm.MineShardedCached(g, cacheBenchOpts(), cache)
	b.ResetTimer()
	var m *cspm.Model
	for i := 0; i < b.N; i++ {
		m = cspm.MineShardedCached(g, cacheBenchOpts(), cache)
	}
	b.ReportMetric(float64(m.CacheHits), "hits")
}

// --- Micro-benchmarks: mining hot paths ------------------------------------

func BenchmarkMicro_MultiCoreDBLP(b *testing.B) {
	g := dataset.DBLP(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cspm.MineMultiCore(g); err != nil {
			b.Fatal(err)
		}
	}
}

// Serial-evaluation variant of the Table III Partial cell: the delta against
// BenchmarkTable3_CSPMPartial_DBLP (Workers 0 → one evaluator per core)
// isolates what parallel gain evaluation buys on this hardware.
func BenchmarkTable3_CSPMPartial_DBLP_Serial(b *testing.B) {
	g := table3Graph(b, experiments.DBLPName)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cspm.MineWithOptions(g, cspm.Options{Variant: cspm.Partial, Workers: 1})
	}
}

// BenchmarkMicro_EvalMergeSweep_DBLP measures raw merge-gain evaluation: one
// op evaluates every co-occurring leafset pair of the freshly built DBLP
// inverted database. This is the allocation-free hot path of DESIGN.md; the
// allocs/op column is the regression alarm (want 0).
func BenchmarkMicro_EvalMergeSweep_DBLP(b *testing.B) {
	g := dataset.DBLP(1)
	db := invdb.FromGraph(g)
	type pair struct{ x, y invdb.LeafsetID }
	seen := make(map[pair]struct{})
	var pairs []pair
	for c := 0; c < db.NumCoresets(); c++ {
		ids := db.LeafsetIDsOf(invdb.CoresetID(c))
		for i := 0; i < len(ids); i++ {
			for j := i + 1; j < len(ids); j++ {
				p := pair{ids[i], ids[j]}
				if _, ok := seen[p]; !ok {
					seen[p] = struct{}{}
					pairs = append(pairs, p)
				}
			}
		}
	}
	for _, p := range pairs { // warm the DB-owned scratch arena
		db.EvalMerge(p.x, p.y)
	}
	b.ReportMetric(float64(len(pairs)), "pairs/op")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range pairs {
			db.EvalMerge(p.x, p.y)
		}
	}
}

// BenchmarkMicro_IntersectCountAndDiffCount measures the fused kernel on a
// skewed (galloping) and a balanced (linear-merge) operand pair.
func BenchmarkMicro_IntersectCountAndDiffCount(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	mk := func(n, max int) intset.Set {
		vals := make([]uint32, n)
		for i := range vals {
			vals[i] = uint32(rng.Intn(max))
		}
		return intset.New(vals...)
	}
	small := mk(200, 1<<20)
	big := mk(40000, 1<<20)
	mid1 := mk(8000, 1<<20)
	mid2 := mk(9000, 1<<20)
	z := mk(4000, 1<<20)
	b.Run("gallop", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			intset.IntersectCountAndDiffCount(small, big, z)
		}
	})
	b.Run("linear", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			intset.IntersectCountAndDiffCount(mid1, mid2, z)
		}
	})
}

// --- Online serving (DESIGN.md "Online serving", BENCH_5.json) ------------

// startServeBench hosts an Islands graph as a multi-tenant host's default
// namespace behind real HTTP, queried through the typed client — the same
// stack a production caller uses.
func startServeBench(b *testing.B) (*cspm.Server, *serveclient.NamespaceClient) {
	b.Helper()
	cfg := dataset.DefaultIslands()
	cfg.Seed = 7
	g := dataset.Islands(cfg)
	host, err := cspm.NewServeHost(cspm.ServeHostOptions{})
	if err != nil {
		b.Fatal(err)
	}
	srv, err := host.Create(cspm.DefaultServeNamespace, g, nil)
	if err != nil {
		b.Fatal(err)
	}
	hs := httptest.NewServer(host)
	b.Cleanup(func() {
		hs.Close()
		host.Close()
	})
	client, err := serveclient.New(hs.URL, nil)
	if err != nil {
		b.Fatal(err)
	}
	return srv, client.Namespace(cspm.DefaultServeNamespace)
}

// serveCompleteOnce issues one completion query and fails the benchmark on
// any error — the zero-failed-requests serving contract is part of what
// is being measured.
func serveCompleteOnce(b *testing.B, nc *serveclient.NamespaceClient) {
	if _, err := nc.Complete(context.Background(), serve.CompleteRequest{
		Vertices: []cspm.VertexID{1, 17, 33}, TopK: 5,
	}); err != nil {
		b.Fatalf("complete: %v", err)
	}
}

// BenchmarkServe_Complete is the steady-state query baseline: completion
// scoring over HTTP against an idle snapshot.
func BenchmarkServe_Complete(b *testing.B) {
	_, nc := startServeBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		serveCompleteOnce(b, nc)
	}
}

// BenchmarkServe_CompleteDuringRemine measures the same queries while a
// mutator goroutine keeps toggling an island-local edge, so snapshot swaps
// (each an incremental warm re-mine of one dirty island) continuously
// overlap the measured reads. The custom metrics report how many re-mines
// the run absorbed; ns/op staying close to the idle baseline is the
// lock-free snapshot-swap claim.
func BenchmarkServe_CompleteDuringRemine(b *testing.B) {
	srv, nc := startServeBench(b)
	before := srv.Metrics()
	var queries atomic.Int64
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		ops := []string{"add_edge", "del_edge"}
		for i := 0; ; i++ {
			// Pace re-mines to query progress (at most one swap per measured
			// query): an unthrottled mutator would just measure the miner
			// starving the handlers for the scheduler, not serving overlap.
			q0 := queries.Load()
			if err := srv.SubmitMutations([]cspm.GraphMutation{{Op: ops[i%2], U: 1, V: 3}}); err != nil {
				panic(err)
			}
			ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
			err := srv.Flush(ctx)
			cancel()
			if err != nil {
				panic(err)
			}
			for queries.Load() == q0 {
				select {
				case <-stop:
					return
				default:
					runtime.Gosched()
				}
			}
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		serveCompleteOnce(b, nc)
		queries.Add(1)
	}
	b.StopTimer()
	close(stop)
	<-done
	after := srv.Metrics()
	b.ReportMetric(float64(after.Remines-before.Remines)/float64(b.N), "remines/op")
}

// BenchmarkServe_MutationAck measures the acknowledgment path of one
// mutation batch — exactly what a writer waits on — with and without the
// durability contract. The durable-wal case pays a WAL append + fsync per
// batch before the ack (DESIGN.md "Durability & crash recovery"); the gap
// between the two sub-benchmarks IS the cost of crash-safe acknowledgments.
// The re-mine loop is debounced out of the way so only the ack is measured.
func BenchmarkServe_MutationAck(b *testing.B) {
	for _, durable := range []bool{false, true} {
		name := "volatile"
		if durable {
			name = "durable-wal"
		}
		b.Run(name, func(b *testing.B) {
			cfg := dataset.DefaultIslands()
			cfg.Seed = 7
			g := dataset.Islands(cfg)
			opts := cspm.ServerOptions{Debounce: time.Hour}
			if durable {
				opts.WALDir = b.TempDir()
			}
			srv, err := cspm.NewServer(g, opts)
			if err != nil {
				b.Fatal(err)
			}
			defer srv.Close()
			ops := []string{"add_edge", "del_edge"}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := srv.SubmitMutations([]cspm.GraphMutation{{Op: ops[i%2], U: 1, V: 3}}); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if durable {
				b.ReportMetric(float64(srv.Metrics().WALAppends)/float64(b.N), "fsyncs/op")
			}
		})
	}
}

// BenchmarkServe_RemineLatency measures the mutate→publish path end to end:
// one island-local edge toggle per iteration, flushed through the
// incremental re-mine to a published snapshot. cache-hits/op counts the
// islands replayed instead of re-mined each swap.
func BenchmarkServe_RemineLatency(b *testing.B) {
	srv, _ := startServeBench(b)
	ops := []string{"add_edge", "del_edge"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := srv.SubmitMutations([]cspm.GraphMutation{{Op: ops[i%2], U: 1, V: 3}}); err != nil {
			b.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		err := srv.Flush(ctx)
		cancel()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(srv.Snapshot().Model.CacheHits), "cache-hits")
}

// BenchmarkReplica_CatchUp measures cold replica attachment end to end: a
// fresh -follow host pulls the leader's checkpoint over HTTP, verifies
// every shipped artifact against the MANIFEST's SHA-256 commitments,
// warm-mines from the verified shard blobs, and publishes the leader's
// generation. bytes-shipped/op is the wire cost of one attachment — the
// number a fleet operator multiplies by replica count per published
// generation.
func BenchmarkReplica_CatchUp(b *testing.B) {
	cfg := dataset.DefaultIslands()
	cfg.Seed = 7
	g := dataset.Islands(cfg)
	leader, err := cspm.NewServeHost(cspm.ServeHostOptions{RootDir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	srv, err := leader.Create(cspm.DefaultServeNamespace, g, nil)
	if err != nil {
		b.Fatal(err)
	}
	hs := httptest.NewServer(leader)
	b.Cleanup(func() {
		hs.Close()
		leader.Close()
	})
	// A few published generations first, so catch-up replicates a leader
	// with history, not just the seed checkpoint.
	ops := []string{"add_edge", "del_edge"}
	for i := 0; i < 4; i++ {
		if err := srv.SubmitMutations([]cspm.GraphMutation{{Op: ops[i%2], U: 1, V: 3}}); err != nil {
			b.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		err := srv.Flush(ctx)
		cancel()
		if err != nil {
			b.Fatal(err)
		}
	}
	want := srv.Snapshot().Generation
	before := srv.Metrics().ReplicationBytesShipped
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		replica, err := cspm.NewServeHost(cspm.ServeHostOptions{
			RootDir:    b.TempDir(),
			Follow:     hs.URL,
			FollowPoll: 5 * time.Millisecond,
		})
		if err != nil {
			b.Fatal(err)
		}
		rs, ok := replica.Tenant(cspm.DefaultServeNamespace)
		if !ok {
			b.Fatal("replica host did not mirror the namespace")
		}
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		err = rs.AwaitGeneration(ctx, want)
		cancel()
		if err != nil {
			b.Fatal(err)
		}
		replica.Close()
	}
	b.StopTimer()
	b.ReportMetric(float64(srv.Metrics().ReplicationBytesShipped-before)/float64(b.N), "bytes-shipped/op")
}
