// Package alarm reproduces the telecommunication alarm-correlation study of
// paper §VI-D. The original 6M-alarm dataset and the AABD rule library are
// proprietary, so the package simulates a device network whose faults
// propagate along edges according to a hidden rule library (the ground
// truth), mines correlation rules back from the resulting alarm log with
// CSPM and with the ACOR baseline, and scores both with the coverage ratio
// of Fig. 8.
package alarm

import (
	"fmt"
	"math/rand"
	"sort"

	"cspm/internal/graph"
)

// Event is one triggered alarm.
type Event struct {
	Device int
	Type   int // alarm type id
	Time   int64
}

// Rule is an AABD-style rule: a cause alarm triggering derived alarms on the
// same or adjacent devices.
type Rule struct {
	Cause   int
	Derived []int
}

// PairRule is the pairwise decomposition the coverage metric uses (the 11
// rules of the paper decompose into 121 pair rules).
type PairRule struct {
	Cause   int
	Derived int
}

// Library is the hidden ground-truth rule set.
type Library struct {
	Rules []Rule
}

// PairRules decomposes the library into (cause, derived) pairs.
func (l *Library) PairRules() []PairRule {
	var out []PairRule
	for _, r := range l.Rules {
		for _, d := range r.Derived {
			out = append(out, PairRule{Cause: r.Cause, Derived: d})
		}
	}
	return out
}

// Log is a simulated alarm log over a device topology.
type Log struct {
	Events   []Event // sorted by time
	Topology [][]int // adjacency lists over devices
	Devices  int
	Types    int
	Horizon  int64 // total simulated time
}

// SimConfig controls the simulator. Defaults follow the paper's rule-library
// scale shrunk to laptop size: 11 rules with 11 derived alarms each (121
// pair rules). The type alphabet is larger than the paper's 300 curated
// alarm categories because the simulator spells out the long tail of
// one-off event codes that production logs contain (DESIGN.md,
// substitution 3); those rare types are what separates MDL ranking from
// pairwise correlation in Fig. 8.
type SimConfig struct {
	Seed           int64
	Devices        int
	Types          int
	Rules          int
	DerivedPerRule int
	RootEvents     int     // cause-alarm occurrences
	NoiseEvents    int     // spurious alarms
	ChattyTypes    int     // background alarm types that fire constantly
	ChattyEvents   int     // total background-alarm occurrences
	RareEvents     int     // occurrences spread 1–3 each over the unused type tail
	Bursts         int     // one-off incidents co-firing a few rare types
	PropagateProb  float64 // chance each derived alarm actually fires
	WindowSec      int64   // correlation window used downstream
}

// DefaultSim returns the configuration used by tests and the Fig. 8 bench.
func DefaultSim() SimConfig {
	return SimConfig{
		Seed: 3, Devices: 400, Types: 3000, Rules: 11, DerivedPerRule: 11,
		RootEvents: 4000, NoiseEvents: 2000, ChattyTypes: 4, ChattyEvents: 3000,
		RareEvents: 400, Bursts: 400, PropagateProb: 0.6, WindowSec: 60,
	}
}

// Simulate produces an alarm log and the hidden library that generated it.
func Simulate(cfg SimConfig) (*Log, *Library, error) {
	if cfg.Rules*(1+cfg.DerivedPerRule) > cfg.Types {
		return nil, nil, fmt.Errorf("alarm: %d rules × %d derived exceed %d types",
			cfg.Rules, cfg.DerivedPerRule, cfg.Types)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	// Device topology: ring + random chords, so faults have neighbours to
	// propagate to and the graph is connected.
	topo := make([][]int, cfg.Devices)
	addEdge := func(u, v int) {
		topo[u] = append(topo[u], v)
		topo[v] = append(topo[v], u)
	}
	for d := 0; d < cfg.Devices; d++ {
		addEdge(d, (d+1)%cfg.Devices)
	}
	for e := 0; e < cfg.Devices/2; e++ {
		u, v := rng.Intn(cfg.Devices), rng.Intn(cfg.Devices)
		if u != v {
			addEdge(u, v)
		}
	}
	// Hidden library: cause types 0..Rules-1, derived types allocated after.
	lib := &Library{}
	next := cfg.Rules
	for r := 0; r < cfg.Rules; r++ {
		rule := Rule{Cause: r}
		for d := 0; d < cfg.DerivedPerRule; d++ {
			rule.Derived = append(rule.Derived, next)
			next++
		}
		lib.Rules = append(lib.Rules, rule)
	}
	horizon := int64(cfg.RootEvents) * 30 // average one root per 30s
	log := &Log{Topology: topo, Devices: cfg.Devices, Types: cfg.Types, Horizon: horizon}
	for e := 0; e < cfg.RootEvents; e++ {
		rule := lib.Rules[rng.Intn(len(lib.Rules))]
		dev := rng.Intn(cfg.Devices)
		at := rng.Int63n(horizon)
		log.Events = append(log.Events, Event{Device: dev, Type: rule.Cause, Time: at})
		for _, dt := range rule.Derived {
			if rng.Float64() > cfg.PropagateProb {
				continue
			}
			// Derived alarms fire on the device itself or a neighbour,
			// shortly after the cause.
			target := dev
			if rng.Float64() < 0.7 && len(topo[dev]) > 0 {
				target = topo[dev][rng.Intn(len(topo[dev]))]
			}
			delay := 1 + rng.Int63n(cfg.WindowSec/2)
			log.Events = append(log.Events, Event{Device: target, Type: dt, Time: at + delay})
		}
	}
	for e := 0; e < cfg.NoiseEvents; e++ {
		log.Events = append(log.Events, Event{
			Device: rng.Intn(cfg.Devices),
			Type:   rng.Intn(cfg.Types),
			Time:   rng.Int63n(horizon),
		})
	}
	// Long-tail noise: production alarm logs contain hundreds of alarm types
	// that fire only a handful of times. Chance co-occurrences among them
	// produce perfect pairwise correlation scores (both counts 1) — the
	// spurious signal that floods pairwise rankers — while their rarity
	// keeps their MDL codes long.
	if cfg.RareEvents > 0 {
		lo := cfg.Rules * (1 + cfg.DerivedPerRule)
		hi := cfg.Types - cfg.ChattyTypes
		if hi > lo {
			for e := 0; e < cfg.RareEvents; e++ {
				log.Events = append(log.Events, Event{
					Device: rng.Intn(cfg.Devices),
					Type:   lo + rng.Intn(hi-lo),
					Time:   rng.Int63n(horizon),
				})
			}
		}
	}
	// Chatty background alarms (heartbeat losses, threshold flaps): a small
	// set of types that fire everywhere all the time. Their pairwise
	// correlations are enormous — the spurious signal that drags down
	// pairwise rankers like ACOR in production data — while carrying no
	// causal rule.
	if cfg.ChattyTypes > 0 {
		base := cfg.Types - cfg.ChattyTypes // reuse the tail of the alphabet
		for e := 0; e < cfg.ChattyEvents; e++ {
			log.Events = append(log.Events, Event{
				Device: rng.Intn(cfg.Devices),
				Type:   base + rng.Intn(cfg.ChattyTypes),
				Time:   rng.Int63n(horizon),
			})
		}
	}
	// One-off incident bursts: a maintenance action or transient fault fires
	// a handful of rare alarm types together, once. Each burst pair
	// co-occurs with probability ~1 given either alarm — a perfect pairwise
	// correlation that carries no reusable rule. Pairwise rankers score
	// these at the top; MDL assigns them long codes because they are rare.
	if cfg.Bursts > 0 {
		lo := cfg.Rules * (1 + cfg.DerivedPerRule)
		hi := cfg.Types - cfg.ChattyTypes
		if hi > lo {
			for bIdx := 0; bIdx < cfg.Bursts; bIdx++ {
				dev := rng.Intn(cfg.Devices)
				at := rng.Int63n(horizon)
				k := 2 + rng.Intn(3)
				for j := 0; j < k; j++ {
					target := dev
					if rng.Float64() < 0.5 && len(topo[dev]) > 0 {
						target = topo[dev][rng.Intn(len(topo[dev]))]
					}
					log.Events = append(log.Events, Event{
						Device: target,
						Type:   lo + rng.Intn(hi-lo),
						Time:   at + rng.Int63n(10),
					})
				}
			}
		}
	}
	sort.Slice(log.Events, func(i, j int) bool {
		a, b := log.Events[i], log.Events[j]
		if a.Time != b.Time {
			return a.Time < b.Time
		}
		if a.Device != b.Device {
			return a.Device < b.Device
		}
		return a.Type < b.Type
	})
	return log, lib, nil
}

// TypeName renders an alarm type as the attribute-value string used in the
// mined graph.
func TypeName(t int) string { return fmt.Sprintf("ALM%03d", t) }

// WindowGraph converts the log into the attributed graph CSPM mines: one
// vertex per (device, window) slice carrying the alarm types the device
// raised in that window, with edges between adjacent devices in the same
// window (the paper models alarm data as a dynamic attributed graph; the
// window product graph is its static encoding).
func (l *Log) WindowGraph(windowSec int64) *graph.Graph {
	if windowSec <= 0 {
		windowSec = 60
	}
	windows := int(l.Horizon/windowSec) + 1
	// Only materialise (device, window) slices that raised at least one
	// alarm; map them densely.
	type slot struct{ dev, win int }
	index := make(map[slot]graph.VertexID)
	var slots []slot
	for _, e := range l.Events {
		s := slot{e.Device, int(e.Time / windowSec)}
		if _, ok := index[s]; !ok {
			index[s] = graph.VertexID(len(slots))
			slots = append(slots, s)
		}
	}
	_ = windows
	b := graph.NewBuilder(len(slots))
	for _, e := range l.Events {
		s := slot{e.Device, int(e.Time / windowSec)}
		_ = b.AddAttr(index[s], TypeName(e.Type))
	}
	for i, s := range slots {
		// Same window, adjacent devices.
		for _, nb := range l.Topology[s.dev] {
			if j, ok := index[slot{nb, s.win}]; ok && graph.VertexID(i) != j {
				_ = b.AddEdge(graph.VertexID(i), j)
			}
		}
		// Same device, consecutive windows (cause in window w can trigger
		// derived alarms in w+1).
		if j, ok := index[slot{s.dev, s.win + 1}]; ok {
			_ = b.AddEdge(graph.VertexID(i), j)
		}
	}
	return b.Build()
}

// Coverage computes the Fig. 8 metric: the fraction of valid pair rules
// found within the top-k of a ranked rule list.
func Coverage(ranked []PairRule, valid []PairRule, k int) float64 {
	if len(valid) == 0 {
		return 0
	}
	validSet := make(map[PairRule]struct{}, len(valid))
	for _, p := range valid {
		validSet[p] = struct{}{}
	}
	if k > len(ranked) {
		k = len(ranked)
	}
	hits := 0
	seen := make(map[PairRule]struct{})
	for _, p := range ranked[:k] {
		if _, dup := seen[p]; dup {
			continue
		}
		seen[p] = struct{}{}
		if _, ok := validSet[p]; ok {
			hits++
		}
	}
	return float64(hits) / float64(len(valid))
}
