package alarm

import (
	"math"
	"sort"
	"strconv"
	"strings"

	"cspm/internal/cspm"
	"cspm/internal/graph"
)

// RankedRule is a candidate pair rule with the score its miner assigned.
type RankedRule struct {
	Rule  PairRule
	Score float64 // higher ranks first
}

// CSPMRules mines the window graph with CSPM and decomposes the a-stars
// into ranked pair rules: the core value is the cause alarm, each leaf value
// a derived alarm (§VI-D: "a-stars mined by CSPM are split into pairs...
// rankings and scores of all alarm rules are maintained"). Pairs inherit the
// a-star's ranking (shorter code = higher score); a pair produced by several
// a-stars keeps its best score.
func CSPMRules(l *Log, windowSec int64) []RankedRule {
	g := l.WindowGraph(windowSec)
	model := cspm.Mine(g)
	votes := leadVotes(l, windowSec)
	best := make(map[PairRule]float64)
	for _, p := range model.Patterns {
		score := -p.CodeLen // ascending code length → descending score
		for _, cv := range p.CoreValues {
			cause, ok := parseType(g.Vocab(), cv)
			if !ok {
				continue
			}
			for _, lv := range p.LeafValues {
				derived, ok := parseType(g.Vocab(), lv)
				if !ok || derived == cause {
					continue
				}
				// The window graph is undirected, so the a-star alone cannot
				// say which alarm precedes which; orient the pair with the
				// same first-occurrence vote ACOR uses (timestamps are
				// available to both miners). Pairs whose vote contradicts
				// the core→leaf reading are dropped — they re-appear from
				// the oppositely-oriented a-star.
				if !votes.leads(cause, derived) {
					continue
				}
				pr := PairRule{Cause: cause, Derived: derived}
				if s, seen := best[pr]; !seen || score > s {
					best[pr] = score
				}
			}
		}
	}
	return sortRanked(best)
}

// pairStat aggregates windowed co-occurrence evidence for one unordered
// alarm-type pair (a < b).
type pairStat struct {
	co     int // co-occurrences within a window neighbourhood
	aLeads int // co-occurrences where a fired first
}

type voteTable map[[2]int]pairStat

// leads reports whether alarm a temporally precedes alarm b in the majority
// of their co-occurrences.
func (v voteTable) leads(a, b int) bool {
	if a == b {
		return false
	}
	key := [2]int{a, b}
	flipped := false
	if a > b {
		key = [2]int{b, a}
		flipped = true
	}
	st, ok := v[key]
	if !ok || st.co == 0 {
		return false
	}
	if flipped {
		// st.aLeads counts the smaller id leading; a (the larger id) leads
		// when the smaller does not strictly dominate. Ties emit both
		// directions.
		return 2*st.aLeads <= st.co
	}
	return 2*st.aLeads >= st.co
}

// leadVotes scans the log once and collects, per alarm-type pair, the
// windowed co-occurrence count and the temporal direction vote.
func leadVotes(l *Log, windowSec int64) voteTable {
	if windowSec <= 0 {
		windowSec = 60
	}
	type slot struct{ dev, win int }
	occ := make(map[int]map[slot]int64)
	for _, e := range l.Events {
		s := slot{e.Device, int(e.Time / windowSec)}
		if occ[e.Type] == nil {
			occ[e.Type] = make(map[slot]int64)
		}
		if t0, ok := occ[e.Type][s]; !ok || e.Time < t0 {
			occ[e.Type][s] = e.Time
		}
	}
	neighborSlots := func(s slot) []slot {
		out := []slot{s, {s.dev, s.win + 1}}
		for _, nb := range l.Topology[s.dev] {
			out = append(out, slot{nb, s.win}, slot{nb, s.win + 1})
		}
		return out
	}
	types := make([]int, 0, len(occ))
	for t := range occ {
		types = append(types, t)
	}
	sort.Ints(types)
	votes := make(voteTable)
	for _, a := range types {
		for _, b := range types {
			if a >= b {
				continue
			}
			st := pairStat{}
			for s, ta := range occ[a] {
				for _, ns := range neighborSlots(s) {
					if tb, ok := occ[b][ns]; ok {
						st.co++
						if ta <= tb {
							st.aLeads++
						}
						break
					}
				}
			}
			if st.co > 0 {
				votes[[2]int{a, b}] = st
			}
		}
	}
	return votes
}

// occCount is used by ACOR's normalisation: slots per alarm type.
func occCounts(l *Log, windowSec int64) map[int]int {
	type slot struct{ dev, win int }
	seen := make(map[int]map[slot]struct{})
	for _, e := range l.Events {
		s := slot{e.Device, int(e.Time / windowSec)}
		if seen[e.Type] == nil {
			seen[e.Type] = make(map[slot]struct{})
		}
		seen[e.Type][s] = struct{}{}
	}
	out := make(map[int]int, len(seen))
	for t, m := range seen {
		out[t] = len(m)
	}
	return out
}

func parseType(v *graph.Vocab, id graph.AttrID) (int, bool) {
	name := v.Name(id)
	if !strings.HasPrefix(name, "ALM") {
		return 0, false
	}
	t, err := strconv.Atoi(name[3:])
	if err != nil {
		return 0, false
	}
	return t, true
}

// ACORRules implements the ACOR baseline [9]: every alarm pair is scored
// independently by a correlation measure over co-occurrences within time
// windows on the same or adjacent devices. The cause direction is the
// temporally leading alarm of the pair.
func ACORRules(l *Log, windowSec int64) []RankedRule {
	if windowSec <= 0 {
		windowSec = 60
	}
	votes := leadVotes(l, windowSec)
	counts := occCounts(l, windowSec)
	best := make(map[PairRule]float64)
	for key, st := range votes {
		a, b := key[0], key[1]
		score := float64(st.co) / math.Sqrt(float64(counts[a])*float64(counts[b]))
		pr := PairRule{Cause: a, Derived: b}
		if 2*st.aLeads < st.co {
			pr = PairRule{Cause: b, Derived: a}
		}
		if s, seen := best[pr]; !seen || score > s {
			best[pr] = score
		}
	}
	return sortRanked(best)
}

func sortRanked(best map[PairRule]float64) []RankedRule {
	out := make([]RankedRule, 0, len(best))
	for pr, s := range best {
		out = append(out, RankedRule{Rule: pr, Score: s})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		if out[i].Rule.Cause != out[j].Rule.Cause {
			return out[i].Rule.Cause < out[j].Rule.Cause
		}
		return out[i].Rule.Derived < out[j].Rule.Derived
	})
	return out
}

// Rules extracts the bare pair rules from a ranked list.
func Rules(ranked []RankedRule) []PairRule {
	out := make([]PairRule, len(ranked))
	for i, r := range ranked {
		out[i] = r.Rule
	}
	return out
}

// CoverageCurve evaluates coverage at each k in ks for a ranked list.
func CoverageCurve(ranked []RankedRule, valid []PairRule, ks []int) []float64 {
	rules := Rules(ranked)
	out := make([]float64, len(ks))
	for i, k := range ks {
		out[i] = Coverage(rules, valid, k)
	}
	return out
}
