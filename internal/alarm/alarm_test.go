package alarm

import (
	"math/rand"
	"testing"
)

func smallSim() SimConfig {
	return SimConfig{
		Seed: 3, Devices: 120, Types: 1200, Rules: 6, DerivedPerRule: 6,
		RootEvents: 900, NoiseEvents: 500, ChattyTypes: 4, ChattyEvents: 1200,
		RareEvents: 150, Bursts: 150, PropagateProb: 0.6, WindowSec: 60,
	}
}

func TestSimulateShape(t *testing.T) {
	cfg := smallSim()
	log, lib, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(lib.Rules) != cfg.Rules {
		t.Fatalf("rules = %d, want %d", len(lib.Rules), cfg.Rules)
	}
	if got := len(lib.PairRules()); got != cfg.Rules*cfg.DerivedPerRule {
		t.Fatalf("pair rules = %d, want %d", got, cfg.Rules*cfg.DerivedPerRule)
	}
	if len(log.Events) < cfg.RootEvents+cfg.NoiseEvents {
		t.Fatalf("only %d events", len(log.Events))
	}
	for i := 1; i < len(log.Events); i++ {
		if log.Events[i].Time < log.Events[i-1].Time {
			t.Fatal("events unsorted")
		}
	}
}

func TestSimulateValidation(t *testing.T) {
	cfg := smallSim()
	cfg.Types = 10 // too few for the rules
	if _, _, err := Simulate(cfg); err == nil {
		t.Fatal("impossible config accepted")
	}
}

func TestWindowGraphShape(t *testing.T) {
	log, _, err := Simulate(smallSim())
	if err != nil {
		t.Fatal(err)
	}
	g := log.WindowGraph(60)
	if g.NumVertices() == 0 || g.NumEdges() == 0 {
		t.Fatal("empty window graph")
	}
	// Every vertex carries at least one alarm attribute.
	for v := 0; v < g.NumVertices(); v++ {
		if len(g.Attrs(uint32(v))) == 0 {
			t.Fatalf("vertex %d has no alarms", v)
		}
	}
}

func TestCoverage(t *testing.T) {
	valid := []PairRule{{0, 1}, {0, 2}, {3, 4}}
	ranked := []PairRule{{0, 1}, {9, 9}, {3, 4}, {0, 2}}
	if c := Coverage(ranked, valid, 1); c != 1.0/3 {
		t.Fatalf("coverage@1 = %v", c)
	}
	if c := Coverage(ranked, valid, 3); c != 2.0/3 {
		t.Fatalf("coverage@3 = %v", c)
	}
	if c := Coverage(ranked, valid, 100); c != 1 {
		t.Fatalf("coverage@100 = %v", c)
	}
	if c := Coverage(ranked, nil, 4); c != 0 {
		t.Fatal("empty valid set should give 0")
	}
	// Duplicate ranked entries must not double count.
	dup := []PairRule{{0, 1}, {0, 1}, {0, 2}}
	if c := Coverage(dup, valid, 3); c != 2.0/3 {
		t.Fatalf("coverage with duplicates = %v", c)
	}
}

func TestCSPMRecoverRules(t *testing.T) {
	log, lib, err := Simulate(smallSim())
	if err != nil {
		t.Fatal(err)
	}
	ranked := CSPMRules(log, 60)
	if len(ranked) == 0 {
		t.Fatal("no rules mined")
	}
	valid := lib.PairRules()
	// All valid rules must eventually be found, and a large share must rank
	// within the first few hundred.
	full := Coverage(Rules(ranked), valid, len(ranked))
	if full < 0.9 {
		t.Fatalf("full coverage = %v, want ≥ 0.9", full)
	}
	early := Coverage(Rules(ranked), valid, 150)
	if early < 0.5 {
		t.Fatalf("coverage@150 = %v, want ≥ 0.5", early)
	}
}

func TestACORRecoverRules(t *testing.T) {
	log, lib, err := Simulate(smallSim())
	if err != nil {
		t.Fatal(err)
	}
	ranked := ACORRules(log, 60)
	if len(ranked) == 0 {
		t.Fatal("no rules mined")
	}
	full := Coverage(Rules(ranked), lib.PairRules(), len(ranked))
	if full < 0.8 {
		t.Fatalf("ACOR full coverage = %v, want ≥ 0.8", full)
	}
}

// TestFig8Shape verifies the paper's qualitative claim: CSPM's coverage
// curve dominates ACOR's at moderate K (valid rules rank higher under the
// global MDL ranking than under ACOR's pairwise scores).
func TestFig8Shape(t *testing.T) {
	log, lib, err := Simulate(smallSim())
	if err != nil {
		t.Fatal(err)
	}
	valid := lib.PairRules()
	cspmCurve := CoverageCurve(CSPMRules(log, 60), valid, []int{50, 100, 200, 400})
	acorCurve := CoverageCurve(ACORRules(log, 60), valid, []int{50, 100, 200, 400})
	t.Logf("CSPM curve: %v", cspmCurve)
	t.Logf("ACOR curve: %v", acorCurve)
	wins := 0
	for i := range cspmCurve {
		if cspmCurve[i] >= acorCurve[i] {
			wins++
		}
	}
	if wins < 3 {
		t.Fatalf("CSPM dominated ACOR at only %d/4 cut-offs", wins)
	}
}

// Property battery for the coverage metric: bounds, monotonicity in K, and
// permutation sensitivity (moving a valid rule earlier never lowers
// coverage at any cutoff).
func TestCoverageProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 100; trial++ {
		nValid := 1 + rng.Intn(8)
		valid := make([]PairRule, nValid)
		for i := range valid {
			valid[i] = PairRule{Cause: i, Derived: 100 + i}
		}
		ranked := append([]PairRule(nil), valid...)
		for j := 0; j < 10; j++ {
			ranked = append(ranked, PairRule{Cause: 50 + j, Derived: 60 + j})
		}
		rng.Shuffle(len(ranked), func(i, j int) { ranked[i], ranked[j] = ranked[j], ranked[i] })
		prev := 0.0
		for k := 1; k <= len(ranked); k++ {
			c := Coverage(ranked, valid, k)
			if c < 0 || c > 1 {
				t.Fatalf("coverage %v out of range", c)
			}
			if c < prev {
				t.Fatalf("coverage decreased with K: %v -> %v", prev, c)
			}
			prev = c
		}
		if prev != 1 {
			t.Fatalf("full-list coverage = %v, want 1 (all valid present)", prev)
		}
	}
}

func TestLeadVotesDirection(t *testing.T) {
	// Alarm 0 always precedes alarm 1 on the same device/window.
	log := &Log{
		Topology: [][]int{{1}, {0}},
		Devices:  2, Types: 2, Horizon: 1000,
	}
	for i := int64(0); i < 10; i++ {
		log.Events = append(log.Events,
			Event{Device: 0, Type: 0, Time: i * 100},
			Event{Device: 0, Type: 1, Time: i*100 + 5},
		)
	}
	votes := leadVotes(log, 60)
	if !votes.leads(0, 1) {
		t.Fatal("alarm 0 should lead alarm 1")
	}
	if votes.leads(1, 0) {
		t.Fatal("alarm 1 must not lead alarm 0")
	}
	if votes.leads(0, 0) {
		t.Fatal("self-lead must be false")
	}
	if votes.leads(0, 7) {
		t.Fatal("never-co-occurring pair must not lead")
	}
}
