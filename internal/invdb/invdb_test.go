package invdb

import (
	"math"
	"math/rand"
	"testing"

	"cspm/internal/graph"
	"cspm/internal/intset"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// fig1 builds the paper's running example. Vertex ids: v1..v5 → 0..4.
func fig1(t *testing.T) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(5)
	for v, vals := range map[graph.VertexID][]string{
		0: {"a"}, 1: {"a", "c"}, 2: {"c"}, 3: {"b"}, 4: {"a", "b"},
	} {
		for _, val := range vals {
			if err := b.AddAttr(v, val); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, e := range [][2]graph.VertexID{{0, 1}, {0, 2}, {0, 3}, {2, 4}, {3, 4}} {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func attr(t *testing.T, g *graph.Graph, name string) graph.AttrID {
	t.Helper()
	id, ok := g.Vocab().Lookup(name)
	if !ok {
		t.Fatalf("attribute %q not in vocab", name)
	}
	return id
}

// lineOf fetches the line for (core value name, single leaf value name).
func lineOf(t *testing.T, db *DB, g *graph.Graph, core, leaf string) *Line {
	t.Helper()
	c := CoresetID(attr(t, g, core))
	ls, ok := db.Leafsets().byKey[leafsetKey([]graph.AttrID{attr(t, g, leaf)})]
	if !ok {
		return nil
	}
	return db.byCore[c].get(ls)
}

func TestFig1MappingTable(t *testing.T) {
	g := fig1(t)
	db := FromGraph(g)
	// Fig. 2(a): a → {v1,v2,v5}, b → {v4,v5}, c → {v2,v3}.
	want := map[string]intset.Set{
		"a": intset.New(0, 1, 4),
		"b": intset.New(3, 4),
		"c": intset.New(1, 2),
	}
	for name, pos := range want {
		got := db.CorePositions(CoresetID(attr(t, g, name)))
		if !got.Equal(pos) {
			t.Errorf("positions(%s) = %v, want %v", name, got, pos)
		}
	}
}

func TestFig1InitialLines(t *testing.T) {
	g := fig1(t)
	db := FromGraph(g)
	if db.NumLines() != 8 {
		t.Fatalf("NumLines = %d, want 8", db.NumLines())
	}
	// Manual expansion of Fig. 2(b)-style inverted database.
	want := map[[2]string]intset.Set{
		{"a", "a"}: intset.New(0, 1), // v1 (nbr v2), v2 (nbr v1)
		{"a", "b"}: intset.New(0, 4), // v1 (nbr v4), v5 (nbr v4)
		{"a", "c"}: intset.New(0, 4), // v1 (nbrs v2,v3), v5 (nbr v3)
		{"b", "a"}: intset.New(3),    // v4 (nbrs v1,v5)
		{"b", "b"}: intset.New(3, 4), // v4 (nbr v5), v5 (nbr v4)
		{"b", "c"}: intset.New(4),    // v5 (nbr v3)
		{"c", "a"}: intset.New(1, 2), // paper's highlighted record {{a},{c},{v2,v3}}
		{"c", "b"}: intset.New(2),    // v3 (nbr v5)
	}
	for key, pos := range want {
		ln := lineOf(t, db, g, key[0], key[1])
		if ln == nil {
			t.Errorf("line (core=%s, leaf=%s) missing", key[0], key[1])
			continue
		}
		if !ln.Pos.Equal(pos) {
			t.Errorf("line (core=%s, leaf=%s) positions = %v, want %v", key[0], key[1], ln.Pos, pos)
		}
	}
	// f_c = Σ fL per coreset (Eq. 8 note): a:6, b:4, c:3.
	for name, fc := range map[string]int{"a": 6, "b": 4, "c": 3} {
		if got := db.CoreFreq(CoresetID(attr(t, g, name))); got != fc {
			t.Errorf("CoreFreq(%s) = %d, want %d", name, got, fc)
		}
	}
}

func TestFig1DLBookkeeping(t *testing.T) {
	g := fig1(t)
	db := FromGraph(g)
	data, model := db.RecomputeDL()
	if !almost(data, db.DataDL()) || !almost(model, db.ModelDL()) {
		t.Fatalf("incremental DL (%v,%v) != recomputed (%v,%v)", db.DataDL(), db.ModelDL(), data, model)
	}
	if !almost(db.BaselineDL(), db.TotalDL()) {
		t.Fatal("baseline should equal total before merges")
	}
}

// TestFig4Merge replays the paper's worked merge of leafsets {b} and {c}
// (Fig. 4): totally merged under coreset {a} (case 2), one line totally
// merged under coreset {b} (case 3).
func TestFig4Merge(t *testing.T) {
	g := fig1(t)
	db := FromGraph(g)
	lsB := db.Leafsets().Single(attr(t, g, "b"))
	lsC := db.Leafsets().Single(attr(t, g, "c"))

	ev := db.EvalMerge(lsB, lsC)
	if ev.CoOccurs != 2 {
		t.Fatalf("CoOccurs = %d, want 2 (coresets a and b)", ev.CoOccurs)
	}
	// Data gain by hand: coreset a: fe 6→4, lines (2,2)→(merged 2);
	// coreset b: fe 4→3, lines (2,1)→(1,1).
	x6, x4, x3, x2 := 6*math.Log2(6), 8.0, 3*math.Log2(3), 2.0
	wantData := (x6 - x4) + (x2 - 2*x2) + (x4 - x3) + (0 - x2)
	if !almost(ev.DataGain, wantData) {
		t.Fatalf("DataGain = %v, want %v", ev.DataGain, wantData)
	}

	before := db.TotalDL()
	res := db.ApplyMerge(lsB, lsC)
	if !almost(res.Gain, before-db.TotalDL()) {
		t.Fatalf("reported gain %v != DL drop %v", res.Gain, before-db.TotalDL())
	}
	if !almost(res.Gain, ev.Gain) {
		t.Fatalf("EvalMerge gain %v != ApplyMerge gain %v", ev.Gain, res.Gain)
	}

	// Post-merge state per Fig. 4.
	lsBC := db.Leafsets().Union(lsB, lsC)
	a := CoresetID(attr(t, g, "a"))
	bCore := CoresetID(attr(t, g, "b"))
	if ln := db.byCore[a].get(lsBC); ln == nil || !ln.Pos.Equal(intset.New(0, 4)) {
		t.Errorf("({a},{b,c}) = %v, want positions {v1,v5}", ln)
	}
	if ln := db.byCore[a].get(lsB); ln != nil {
		t.Errorf("({a},{b}) should be totally merged, still has %v", ln.Pos)
	}
	if ln := db.byCore[a].get(lsC); ln != nil {
		t.Errorf("({a},{c}) should be totally merged, still has %v", ln.Pos)
	}
	if ln := db.byCore[bCore].get(lsBC); ln == nil || !ln.Pos.Equal(intset.New(4)) {
		t.Errorf("({b},{b,c}) = %v, want positions {v5}", ln)
	}
	if ln := db.byCore[bCore].get(lsB); ln == nil || !ln.Pos.Equal(intset.New(3)) {
		t.Errorf("({b},{b}) = %v, want positions {v4}", ln)
	}
	if ln := db.byCore[bCore].get(lsC); ln != nil {
		t.Errorf("({b},{c}) should be totally merged, still has %v", ln.Pos)
	}
	// Frequencies after: a: 4, b: 3, c: 3 (untouched).
	for name, fc := range map[string]int{"a": 4, "b": 3, "c": 3} {
		if got := db.CoreFreq(CoresetID(attr(t, g, name))); got != fc {
			t.Errorf("CoreFreq(%s) = %d, want %d", name, got, fc)
		}
	}
	// Leafset {c} is gone everywhere; {b} survives; result reports that.
	if len(res.Total) != 1 || res.Total[0] != lsC {
		t.Errorf("Total = %v, want [{c}]", res.Total)
	}
	if len(res.Part) != 1 || res.Part[0] != lsB {
		t.Errorf("Part = %v, want [{b}]", res.Part)
	}

	checkConsistency(t, db)
}

// checkConsistency verifies the structural invariants of the DB, including
// the compact-index ones: sorted id slices parallel to the line slices and
// in lockstep with the maps.
func checkConsistency(t *testing.T, db *DB) {
	t.Helper()
	data, model := db.RecomputeDL()
	if !almost(data, db.DataDL()) {
		t.Errorf("dataDL drifted: incremental %v, recomputed %v", db.DataDL(), data)
	}
	if !almost(model, db.ModelDL()) {
		t.Errorf("modelDL drifted: incremental %v, recomputed %v", db.ModelDL(), model)
	}
	lines := 0
	for c := range db.byCore {
		ix := &db.byCore[c]
		checkIndex(t, ix)
		sum := 0
		for ls, ln := range ix.m {
			if ln.FL() == 0 {
				t.Errorf("empty line survived at coreset %d", c)
			}
			if ln.Core != CoresetID(c) || ln.Leaf != ls {
				t.Errorf("index mismatch on line %+v", ln)
			}
			if db.byLeaf[ls].get(CoresetID(c)) != ln {
				t.Errorf("byLeaf missing line (%d,%d)", c, ls)
			}
			sum += ln.FL()
			lines++
		}
		if sum != db.coreFreq[c] {
			t.Errorf("coreFreq[%d] = %d, want Σ fL = %d", c, db.coreFreq[c], sum)
		}
	}
	if lines != db.numLines {
		t.Errorf("numLines = %d, want %d", db.numLines, lines)
	}
	for ls, ix := range db.byLeaf {
		if ix.size() == 0 {
			t.Errorf("leafset %d has empty coreset index", ls)
		}
		checkIndex(t, ix)
		for c, ln := range ix.m {
			if db.byCore[c].get(ls) != ln {
				t.Errorf("byCore missing line (%d,%d)", c, ls)
			}
		}
	}
}

// checkIndex asserts the lineIndex invariants: ids strictly ascending,
// slices parallel, and id→line agreement between map and slices.
func checkIndex[K ~int32](t *testing.T, ix *lineIndex[K]) {
	t.Helper()
	if len(ix.ids) != len(ix.lines) || len(ix.ids) != len(ix.m) {
		t.Errorf("index size mismatch: ids=%d lines=%d map=%d", len(ix.ids), len(ix.lines), len(ix.m))
		return
	}
	for i, id := range ix.ids {
		if i > 0 && ix.ids[i-1] >= id {
			t.Errorf("index ids not strictly ascending at %d: %v", i, ix.ids)
		}
		if ix.m[id] != ix.lines[i] {
			t.Errorf("index slice/map disagree at id %d", id)
		}
	}
}

func randomGraph(rng *rand.Rand, n, attrs int, edgeP, attrP float64) *graph.Graph {
	b := graph.NewBuilder(n)
	names := make([]string, attrs)
	for i := range names {
		names[i] = string(rune('a' + i))
	}
	for v := 0; v < n; v++ {
		got := false
		for _, name := range names {
			if rng.Float64() < attrP {
				_ = b.AddAttr(graph.VertexID(v), name)
				got = true
			}
		}
		if !got {
			_ = b.AddAttr(graph.VertexID(v), names[rng.Intn(len(names))])
		}
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < edgeP {
				_ = b.AddEdge(graph.VertexID(u), graph.VertexID(v))
			}
		}
	}
	return b.Build()
}

// TestPropertyMergeGainExact drives random merge sequences on random graphs
// and checks, at every step, that (1) EvalMerge's predicted gain equals the
// realised gain, (2) the realised gain equals the from-scratch DL
// difference, and (3) all structural invariants hold.
func TestPropertyMergeGainExact(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 12+rng.Intn(12), 3+rng.Intn(4), 0.25, 0.45)
		db := FromGraph(g)
		for step := 0; step < 30; step++ {
			active := db.ActiveLeafsets()
			if len(active) < 2 {
				break
			}
			x := active[rng.Intn(len(active))]
			y := active[rng.Intn(len(active))]
			if x == y {
				continue
			}
			ev := db.EvalMerge(x, y)
			if ev.CoOccurs == 0 {
				// Non-co-occurring pairs must be no-ops.
				res := db.ApplyMerge(x, y)
				if len(res.Shared) != 0 || res.Gain != 0 {
					t.Fatalf("seed %d: no-overlap merge changed state: %+v", seed, res)
				}
				continue
			}
			dataBefore, modelBefore := db.RecomputeDL()
			res := db.ApplyMerge(x, y)
			dataAfter, modelAfter := db.RecomputeDL()
			wantGain := (dataBefore + modelBefore) - (dataAfter + modelAfter)
			if !almost(res.Gain, wantGain) {
				t.Fatalf("seed %d step %d: ApplyMerge gain %v, recomputed %v", seed, step, res.Gain, wantGain)
			}
			if !almost(ev.Gain, res.Gain) {
				t.Fatalf("seed %d step %d: EvalMerge %v != ApplyMerge %v (x=%v y=%v)", seed, step, ev.Gain, res.Gain, db.leafsets.Values(x), db.leafsets.Values(y))
			}
			checkConsistency(t, db)
			if t.Failed() {
				t.FailNow()
			}
		}
	}
}

// TestSubsetUnionCollision exercises the z == y special case (x ⊂ y) that
// Eq. 9's derivation leaves implicit: build leafsets {a} and {a,b}, then
// merge them; the union is {a,b} itself.
func TestSubsetUnionCollision(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed * 31))
		g := randomGraph(rng, 14, 4, 0.3, 0.5)
		db := FromGraph(g)
		// Walk until some merge produces a multi-value leafset, then try to
		// merge one of its singletons into it.
		var multi LeafsetID = -1
		for step := 0; step < 20 && multi < 0; step++ {
			active := db.ActiveLeafsets()
			for _, x := range active {
				for _, y := range active {
					if x >= y {
						continue
					}
					if ev := db.EvalMerge(x, y); ev.Gain > 0 {
						res := db.ApplyMerge(x, y)
						if len(db.leafsets.Values(res.New)) >= 2 && len(db.CoresetsOf(res.New)) > 0 {
							multi = res.New
						}
						break
					}
				}
				if multi >= 0 {
					break
				}
			}
		}
		if multi < 0 {
			continue
		}
		sub := db.leafsets.Single(db.leafsets.Values(multi)[0])
		if len(db.CoresetsOf(sub)) == 0 {
			continue
		}
		ev := db.EvalMerge(sub, multi)
		dataBefore, modelBefore := db.RecomputeDL()
		res := db.ApplyMerge(sub, multi)
		dataAfter, modelAfter := db.RecomputeDL()
		wantGain := (dataBefore + modelBefore) - (dataAfter + modelAfter)
		if ev.CoOccurs > 0 && !almost(ev.Gain, res.Gain) {
			t.Fatalf("seed %d: subset-case EvalMerge %v != ApplyMerge %v", seed, ev.Gain, res.Gain)
		}
		if !almost(res.Gain, wantGain) {
			t.Fatalf("seed %d: subset-case gain %v != recomputed %v", seed, res.Gain, wantGain)
		}
		if res.New != multi {
			t.Fatalf("seed %d: union of subset should be the superset", seed)
		}
		checkConsistency(t, db)
	}
}

func TestMergeSelfAndMissing(t *testing.T) {
	g := fig1(t)
	db := FromGraph(g)
	ls := db.Leafsets().Single(attr(t, g, "a"))
	if res := db.ApplyMerge(ls, ls); res.Gain != 0 || len(res.Shared) != 0 {
		t.Fatal("self-merge should be a no-op")
	}
	if ev := db.EvalMerge(ls, ls); ev.Gain != 0 {
		t.Fatal("self-eval should be zero")
	}
}

func TestFromGraphWithCoresets(t *testing.T) {
	g := fig1(t)
	a := attr(t, g, "a")
	c := attr(t, g, "c")
	// One multi-value coreset {a,c} firing at v2 (vertex 1), plus {a} at its
	// mapping positions.
	db, err := FromGraphWithCoresets(g,
		[][]graph.AttrID{{a, c}, {a}},
		[]intset.Set{intset.New(1), intset.New(0, 1, 4)})
	if err != nil {
		t.Fatal(err)
	}
	if db.NumCoresets() != 2 {
		t.Fatalf("NumCoresets = %d, want 2", db.NumCoresets())
	}
	// Coreset {a,c} at v2: neighbour v1 carries a → one line with leaf {a}.
	if fc := db.CoreFreq(0); fc != 1 {
		t.Fatalf("CoreFreq({a,c}) = %d, want 1", fc)
	}
	if db.CoreCodeLen(0) <= db.CoreCodeLen(1) {
		t.Fatal("two-value coreset should cost more than one-value")
	}
	checkConsistency(t, db)
}

func TestFromGraphWithCoresetsLengthMismatch(t *testing.T) {
	g := fig1(t)
	if _, err := FromGraphWithCoresets(g, [][]graph.AttrID{{0}}, nil); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
}

func TestLeafsetTable(t *testing.T) {
	lt := NewLeafsetTable()
	ab := lt.Intern([]graph.AttrID{1, 2})
	ab2 := lt.Intern([]graph.AttrID{1, 2})
	if ab != ab2 {
		t.Fatal("interning is not idempotent")
	}
	c := lt.Single(3)
	u := lt.Union(ab, c)
	want := []graph.AttrID{1, 2, 3}
	got := lt.Values(u)
	if len(got) != len(want) {
		t.Fatalf("Union values = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Union values = %v, want %v", got, want)
		}
	}
	if lt.Union(ab, c) != u {
		t.Fatal("repeated union should intern to same id")
	}
	if lt.Size() != 3 {
		t.Fatalf("Size = %d, want 3", lt.Size())
	}
}

func TestCondEntropyDecreasesWithMerges(t *testing.T) {
	g := fig1(t)
	db := FromGraph(g)
	before := db.CondEntropy()
	lsB := db.Leafsets().Single(attr(t, g, "b"))
	lsC := db.Leafsets().Single(attr(t, g, "c"))
	db.ApplyMerge(lsB, lsC)
	if after := db.CondEntropy(); after >= before {
		t.Fatalf("conditional entropy should drop: %v -> %v", before, after)
	}
}
