package invdb

import (
	"math"
	"math/rand"
	"testing"

	"cspm/internal/graph"
	"cspm/internal/intset"
	"cspm/internal/mdl"
)

// islands builds two attribute-disjoint components: a triangle on values
// {a,b,c} and an edge on values {x,y}.
func islands(t *testing.T) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(5)
	for v, vals := range [][]string{{"a"}, {"b", "c"}, {"a", "c"}, {"x"}, {"x", "y"}} {
		for _, val := range vals {
			if err := b.AddAttr(graph.VertexID(v), val); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, e := range [][2]graph.VertexID{{0, 1}, {1, 2}, {0, 2}, {3, 4}} {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func TestFromGraphShardIdentityMatchesFromGraph(t *testing.T) {
	g := islands(t)
	whole := FromGraph(g)
	verts := make([]graph.VertexID, g.NumVertices())
	for v := range verts {
		verts[v] = graph.VertexID(v)
	}
	shard := FromGraphShard(g, mdl.NewStandardTable(g), verts)
	if got, want := shard.BaselineDL(), whole.BaselineDL(); math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("identity shard baseline %v != whole-graph baseline %v", got, want)
	}
	if shard.NumLines() != whole.NumLines() {
		t.Fatalf("line counts differ: %d vs %d", shard.NumLines(), whole.NumLines())
	}
	sd, sm := shard.CanonicalDL()
	wd, wm := whole.CanonicalDL()
	if math.Float64bits(sd) != math.Float64bits(wd) || math.Float64bits(sm) != math.Float64bits(wm) {
		t.Fatalf("canonical DLs differ: (%v,%v) vs (%v,%v)", sd, sm, wd, wm)
	}
}

func TestShardStatsUnionMatchesGlobal(t *testing.T) {
	g := islands(t)
	st := mdl.NewStandardTable(g)
	whole := FromGraph(g)
	a := FromGraphShard(g, st, []graph.VertexID{0, 1, 2})
	b := FromGraphShard(g, st, []graph.VertexID{3, 4})
	union := a.AppendLineStats(nil)
	union = b.AppendLineStats(union)
	ud, um := CanonicalDL(st, whole.CoreCodeLen, union)
	wd, wm := whole.CanonicalDL()
	if math.Float64bits(ud+um) != math.Float64bits(wd+wm) {
		t.Fatalf("union of shard stats prices %v, global %v", ud+um, wd+wm)
	}
	if ue, we := CanonicalCondEntropy(union), CanonicalCondEntropy(whole.AppendLineStats(nil)); math.Float64bits(ue) != math.Float64bits(we) {
		t.Fatalf("cond entropy differs: %v vs %v", ue, we)
	}
}

func TestCanonicalDLMatchesRecomputeAndIsOrderFree(t *testing.T) {
	g := islands(t)
	db := FromGraph(g)
	// Apply one compressing merge if available so the line set is nontrivial.
	ids := db.ActiveLeafsets()
merge:
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			if ev := db.EvalMerge(ids[i], ids[j]); ev.Gain > 0 {
				db.ApplyMerge(ids[i], ids[j])
				break merge
			}
		}
	}
	data, model := db.CanonicalDL()
	rd, rm := db.RecomputeDL()
	if math.Abs((data+model)-(rd+rm)) > 1e-9 {
		t.Fatalf("canonical %v far from recompute %v", data+model, rd+rm)
	}
	// Pure function of the multiset: shuffled stats yield identical bits.
	stats := db.AppendLineStats(nil)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 5; trial++ {
		rng.Shuffle(len(stats), func(i, j int) { stats[i], stats[j] = stats[j], stats[i] })
		d2, m2 := CanonicalDL(db.st, db.CoreCodeLen, stats)
		if math.Float64bits(d2) != math.Float64bits(data) || math.Float64bits(m2) != math.Float64bits(model) {
			t.Fatalf("trial %d: canonical DL depends on input order", trial)
		}
	}
}

func TestNormalizeLineStatsFoldsDuplicates(t *testing.T) {
	stats := []LineStat{
		{Core: 2, Leaf: []graph.AttrID{1}, FL: 3},
		{Core: 1, Leaf: []graph.AttrID{0, 2}, FL: 1},
		{Core: 2, Leaf: []graph.AttrID{1}, FL: 4},
		{Core: 1, Leaf: []graph.AttrID{0}, FL: 2},
	}
	out := NormalizeLineStats(stats)
	if len(out) != 3 {
		t.Fatalf("len = %d, want 3", len(out))
	}
	// The input must survive untouched: canonical computations are chained
	// over the same slice (CanonicalDL then CanonicalCondEntropy).
	if len(stats) != 4 || stats[0].Core != 2 || stats[0].FL != 3 || stats[2].FL != 4 {
		t.Fatalf("input slice mutated: %+v", stats)
	}
	if out[0].Core != 1 || len(out[0].Leaf) != 1 || out[0].FL != 2 {
		t.Fatalf("out[0] = %+v", out[0])
	}
	if out[1].Core != 1 || len(out[1].Leaf) != 2 {
		t.Fatalf("out[1] = %+v", out[1])
	}
	if out[2].Core != 2 || out[2].FL != 7 {
		t.Fatalf("duplicate not folded: %+v", out[2])
	}
}

func TestFromLineSetReconstructsDB(t *testing.T) {
	g := islands(t)
	src := FromGraph(g)
	st := src.StandardTable()
	var lines []RawLine
	for c := 0; c < src.NumCoresets(); c++ {
		ids := src.LeafsetIDsOf(CoresetID(c))
		for _, ls := range ids {
			ln := src.CoresetsOf(ls)[CoresetID(c)]
			lines = append(lines, RawLine{
				Core: CoresetID(c),
				Leaf: src.Leafsets().Values(ls),
				Pos:  ln.Pos.Clone(),
			})
		}
	}
	content := make([][]graph.AttrID, src.NumCoresets())
	pos := make([]intset.Set, src.NumCoresets())
	for c := range content {
		content[c] = src.CoreValues(CoresetID(c))
		pos[c] = src.CorePositions(CoresetID(c))
	}
	re := FromLineSet(st, content, pos, lines)
	if re.NumLines() != src.NumLines() {
		t.Fatalf("line counts differ: %d vs %d", re.NumLines(), src.NumLines())
	}
	rd, rm := re.CanonicalDL()
	sd, sm := src.CanonicalDL()
	if math.Float64bits(rd) != math.Float64bits(sd) || math.Float64bits(rm) != math.Float64bits(sm) {
		t.Fatalf("reconstructed DL (%v,%v) != source (%v,%v)", rd, rm, sd, sm)
	}
	// Split one line's positions across two RawLines: FromLineSet must fold.
	split := append([]RawLine(nil), lines...)
	first := split[0]
	if first.Pos.Len() >= 2 {
		half := first.Pos.Len() / 2
		split[0] = RawLine{Core: first.Core, Leaf: first.Leaf, Pos: first.Pos[:half].Clone()}
		split = append(split, RawLine{Core: first.Core, Leaf: first.Leaf, Pos: first.Pos[half:].Clone()})
		re2 := FromLineSet(st, content, pos, split)
		if re2.NumLines() != src.NumLines() {
			t.Fatalf("split lines not folded: %d vs %d", re2.NumLines(), src.NumLines())
		}
	}
}

func TestFromGraphShardPartialCut(t *testing.T) {
	g := islands(t)
	st := mdl.NewStandardTable(g)
	// Shard owning only {0,1} of the triangle {0,1,2}: just shard vertices
	// generate line positions, but vertex 2's values still appear as leaf
	// values of its neighbours' lines because leafsets are drawn from the
	// global adjacency — no boundary replication needed.
	shard := FromGraphShard(g, st, []graph.VertexID{0, 1})
	whole := FromGraph(g)
	stats := NormalizeLineStats(shard.AppendLineStats(nil))
	global := NormalizeLineStats(whole.AppendLineStats(nil))
	if len(stats) == 0 {
		t.Fatal("masked shard produced no lines")
	}
	index := make(map[string]int)
	for _, s := range global {
		index[statKey(s)] = s.FL
	}
	for _, s := range stats {
		want, ok := index[statKey(s)]
		if !ok {
			t.Fatalf("shard line %+v not in global DB", s)
		}
		if s.FL > want {
			t.Fatalf("shard line %+v exceeds global frequency %d", s, want)
		}
	}
}

func statKey(s LineStat) string {
	key := string(rune(s.Core)) + ":"
	for _, a := range s.Leaf {
		key += string(rune('A' + int(a)))
	}
	return key
}

// remapShard extracts the shard-job view of verts: per-local-vertex attrs
// (global ids) and local adjacency — exactly what the distributed miner
// ships to a worker.
func remapShard(g *graph.Graph, verts []graph.VertexID) (attrs [][]graph.AttrID, adj [][]graph.VertexID) {
	local := make(map[graph.VertexID]graph.VertexID, len(verts))
	for li, gv := range verts {
		local[gv] = graph.VertexID(li)
	}
	attrs = make([][]graph.AttrID, len(verts))
	adj = make([][]graph.VertexID, len(verts))
	for li, gv := range verts {
		attrs[li] = append([]graph.AttrID(nil), g.Attrs(gv)...)
		for _, u := range g.Neighbors(gv) {
			adj[li] = append(adj[li], local[u])
		}
	}
	return attrs, adj
}

func TestFromShardDataMatchesFromGraphShard(t *testing.T) {
	g := islands(t)
	st := mdl.NewStandardTable(g)
	for _, verts := range [][]graph.VertexID{
		{0, 1, 2},       // triangle component
		{3, 4},          // edge component
		{0, 1, 2, 3, 4}, // whole graph
	} {
		want := FromGraphShard(g, st, verts)
		attrs, adj := remapShard(g, verts)
		got := FromShardData(mdl.NewStandardTableFromFreqs(st.Freqs()), g.NumAttrValues(), attrs, adj)
		if got.NumLines() != want.NumLines() {
			t.Fatalf("verts %v: line counts differ: %d vs %d", verts, got.NumLines(), want.NumLines())
		}
		if math.Float64bits(got.BaselineDL()) != math.Float64bits(want.BaselineDL()) {
			t.Fatalf("verts %v: baseline %v != %v", verts, got.BaselineDL(), want.BaselineDL())
		}
		gi, gm := got.CanonicalDL()
		wi, wm := want.CanonicalDL()
		if math.Float64bits(gi) != math.Float64bits(wi) || math.Float64bits(gm) != math.Float64bits(wm) {
			t.Fatalf("verts %v: canonical DLs differ: (%v,%v) vs (%v,%v)", verts, gi, gm, wi, wm)
		}
	}
}
