package invdb

import (
	"cspm/internal/epoch"
	"cspm/internal/graph"
)

// EvalScratch is the per-evaluator scratch arena that makes EvalMergeScratch
// allocation-free in steady state: the leafset-union buffer and interning
// key buffer back the union-collision lookup, and the epoch-stamped
// attribute set replaces the per-call dedup map of the union spell-out
// cost. A scratch belongs to exactly one goroutine; parallel gain evaluators
// each own one (NewEvalScratch) and share the DB read-only, so scratches
// never synchronise. Buffers grow on demand and are never shrunk.
type EvalScratch struct {
	unionBuf []graph.AttrID // content(x) ∪ content(y) for the collision lookup
	keyBuf   []byte         // interning key encoding of unionBuf
	seenAttr epoch.Set      // dedup of unionSpellLen, keyed by AttrID
}

// NewEvalScratch returns an empty scratch arena for use with
// EvalMergeScratch. Buffers are sized lazily on first use.
func NewEvalScratch() *EvalScratch { return &EvalScratch{} }
