package invdb

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"cspm/internal/epoch"
	"cspm/internal/graph"
)

// TestEvalMergeScratchEquivalence drives random merge sequences and checks,
// for every candidate pair at every step, the three-way agreement the
// allocation-free rewrite must preserve: EvalMergeScratch with a private
// arena ≡ EvalMerge on the DB-owned arena (bit-identical floats — they are
// the same code path), and both ≡ the realised ApplyMerge gain ≡ the
// from-scratch RecomputeDL delta.
func TestEvalMergeScratchEquivalence(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 12+rng.Intn(12), 3+rng.Intn(4), 0.25, 0.45)
		db := FromGraph(g)
		sc := NewEvalScratch()
		for step := 0; step < 20; step++ {
			active := db.ActiveLeafsets()
			if len(active) < 2 {
				break
			}
			// Exhaustive pair sweep: scratch evaluation must agree with the
			// serial entry point everywhere, not just on applied merges.
			for _, x := range active {
				for _, y := range active {
					evS := db.EvalMergeScratch(x, y, sc)
					evD := db.EvalMerge(x, y)
					if evS != evD {
						t.Fatalf("seed %d step %d: EvalMergeScratch %+v != EvalMerge %+v", seed, step, evS, evD)
					}
				}
			}
			x := active[rng.Intn(len(active))]
			y := active[rng.Intn(len(active))]
			if x == y {
				continue
			}
			ev := db.EvalMergeScratch(x, y, sc)
			dataBefore, modelBefore := db.RecomputeDL()
			res := db.ApplyMerge(x, y)
			dataAfter, modelAfter := db.RecomputeDL()
			wantGain := (dataBefore + modelBefore) - (dataAfter + modelAfter)
			if !almost(res.Gain, wantGain) {
				t.Fatalf("seed %d step %d: ApplyMerge gain %v != RecomputeDL delta %v", seed, step, res.Gain, wantGain)
			}
			if ev.CoOccurs > 0 && !almost(ev.Gain, res.Gain) {
				t.Fatalf("seed %d step %d: EvalMergeScratch %v != ApplyMerge %v", seed, step, ev.Gain, res.Gain)
			}
			checkConsistency(t, db)
			if t.Failed() {
				t.FailNow()
			}
		}
	}
}

// TestEvalMergeScratchConcurrent runs many evaluators over one DB, each with
// its own arena, and checks every result is bit-identical to the serial one.
// Run with -race to validate the read-only contract of EvalMergeScratch.
func TestEvalMergeScratchConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	g := randomGraph(rng, 40, 6, 0.15, 0.4)
	db := FromGraph(g)
	// Advance the database a few merges so union collisions exist.
	for step := 0; step < 5; step++ {
		active := db.ActiveLeafsets()
		best, bx, by := 0.0, LeafsetID(-1), LeafsetID(-1)
		for _, x := range active {
			for _, y := range active {
				if x < y {
					if ev := db.EvalMerge(x, y); ev.Gain > best {
						best, bx, by = ev.Gain, x, y
					}
				}
			}
		}
		if bx < 0 {
			break
		}
		db.ApplyMerge(bx, by)
	}
	active := db.ActiveLeafsets()
	type pair struct{ x, y LeafsetID }
	var pairs []pair
	want := make(map[pair]MergeEval)
	for _, x := range active {
		for _, y := range active {
			p := pair{x, y}
			pairs = append(pairs, p)
			want[p] = db.EvalMerge(x, y)
		}
	}
	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sc := NewEvalScratch()
			for i := w; i < len(pairs); i += workers {
				p := pairs[i]
				if got := db.EvalMergeScratch(p.x, p.y, sc); got != want[p] {
					errs <- "concurrent eval diverged from serial"
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

// TestEvalMergeAllocationFree pins the tentpole property: steady-state gain
// evaluation performs zero heap allocations.
func TestEvalMergeAllocationFree(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randomGraph(rng, 50, 7, 0.15, 0.4)
	db := FromGraph(g)
	active := db.ActiveLeafsets()
	if len(active) < 4 {
		t.Skip("graph too sparse")
	}
	sc := NewEvalScratch()
	// Warm both arenas (buffers grow on first use).
	for _, x := range active {
		for _, y := range active {
			db.EvalMerge(x, y)
			db.EvalMergeScratch(x, y, sc)
		}
	}
	allocs := testing.AllocsPerRun(20, func() {
		for _, x := range active {
			for _, y := range active {
				db.EvalMergeScratch(x, y, sc)
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("EvalMergeScratch allocated %v times per sweep, want 0", allocs)
	}
	allocs = testing.AllocsPerRun(20, func() {
		for _, x := range active {
			for _, y := range active {
				db.EvalMerge(x, y)
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("EvalMerge allocated %v times per sweep, want 0", allocs)
	}
}

// TestEvalMergeGallopWalk pins the skewed shared-coreset walk: a hub
// leafset owning lines under ~40 coresets against a leafset owning 2, which
// exceeds indexGallopRatio and takes the galloping cursor instead of the
// linear merge. The gallop walk must produce the same evaluation the
// realised merge and the from-scratch DL confirm.
func TestEvalMergeGallopWalk(t *testing.T) {
	const spokes = 40
	b := graph.NewBuilder(spokes + 2)
	// Hub vertex 0 carries "m"; spokes 1..40 carry a unique a_i and connect
	// to the hub, so leafset {m} owns one line per spoke coreset.
	if err := b.AddAttr(0, "m"); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= spokes; i++ {
		if err := b.AddAttr(graph.VertexID(i), string(rune('A'+(i-1)%26))+string(rune('a'+(i-1)/26))); err != nil {
			t.Fatal(err)
		}
		if err := b.AddEdge(0, graph.VertexID(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Vertex 41 carries "q" and connects to spokes 1 and 2 only, so leafset
	// {q} owns lines under exactly two coresets, both shared with {m}.
	if err := b.AddAttr(spokes+1, "q"); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(spokes+1, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(spokes+1, 2); err != nil {
		t.Fatal(err)
	}
	g := b.Build()
	db := FromGraph(g)

	var lsM, lsQ LeafsetID = -1, -1
	for _, ls := range db.ActiveLeafsets() {
		vals := db.Leafsets().Values(ls)
		if len(vals) != 1 {
			continue
		}
		switch g.Vocab().Name(vals[0]) {
		case "m":
			lsM = ls
		case "q":
			lsQ = ls
		}
	}
	if lsM < 0 || lsQ < 0 {
		t.Fatal("hub graph did not produce the expected leafsets")
	}
	nm, nq := len(db.CoresetIDsOf(lsM)), len(db.CoresetIDsOf(lsQ))
	if nm <= indexGallopRatio*nq {
		t.Fatalf("index sizes %d vs %d do not exercise the gallop walk", nm, nq)
	}
	for _, pair := range [][2]LeafsetID{{lsQ, lsM}, {lsM, lsQ}} {
		ev := db.EvalMerge(pair[0], pair[1])
		if ev.CoOccurs != 2 {
			t.Fatalf("CoOccurs = %d, want 2 (spoke coresets 1 and 2)", ev.CoOccurs)
		}
	}
	ev := db.EvalMerge(lsQ, lsM)
	dataBefore, modelBefore := db.RecomputeDL()
	res := db.ApplyMerge(lsQ, lsM)
	dataAfter, modelAfter := db.RecomputeDL()
	wantGain := (dataBefore + modelBefore) - (dataAfter + modelAfter)
	if !almost(res.Gain, wantGain) {
		t.Fatalf("ApplyMerge gain %v != RecomputeDL delta %v", res.Gain, wantGain)
	}
	if !almost(ev.Gain, res.Gain) {
		t.Fatalf("gallop-walk EvalMerge %v != ApplyMerge %v", ev.Gain, res.Gain)
	}
	checkConsistency(t, db)
}

// TestScratchEpochWraparound forces the generation counter across the
// uint32 boundary and checks dedup stays sound.
func TestScratchEpochWraparound(t *testing.T) {
	var es epoch.Set
	es.SetGeneration(math.MaxUint32 - 1)
	es.Bump()
	if !es.Mark(3) || es.Mark(3) {
		t.Fatal("mark broken just below wraparound")
	}
	es.Bump() // wraps to 0 → must clear and restart at 1
	if es.Generation() != 1 {
		t.Fatalf("generation after wraparound = %d, want 1", es.Generation())
	}
	if !es.Mark(3) || es.Mark(3) {
		t.Fatal("stale stamp visible after wraparound")
	}
}
