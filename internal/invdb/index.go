package invdb

import "sort"

// lineIndex is one side of the inverted-database line index: a map for
// random access plus a sorted id slice with parallel line pointers, so the
// hot paths (EvalMerge's shared-coreset walk, the miner's co-occurring-pair
// enumeration) iterate in deterministic ascending order without allocating
// or sorting per call. Insert/remove shift the slices in O(n), which is
// cheap because index mutations happen only on committed merges while
// ordered reads happen on every gain evaluation.
//
// Invariants (checked by the invdb tests): ids is strictly ascending,
// len(ids) == len(lines) == len(m), and m[ids[i]] == lines[i] for all i.
type lineIndex[K ~int32] struct {
	m     map[K]*Line
	ids   []K
	lines []*Line
}

// get returns the line keyed by k, or nil.
func (ix *lineIndex[K]) get(k K) *Line {
	if ix == nil {
		return nil
	}
	return ix.m[k]
}

// size reports the number of lines in the index.
func (ix *lineIndex[K]) size() int {
	if ix == nil {
		return 0
	}
	return len(ix.ids)
}

func (ix *lineIndex[K]) insert(k K, ln *Line) {
	if ix.m == nil {
		ix.m = make(map[K]*Line)
	}
	ix.m[k] = ln
	i := sort.Search(len(ix.ids), func(i int) bool { return ix.ids[i] >= k })
	ix.ids = append(ix.ids, 0)
	ix.lines = append(ix.lines, nil)
	copy(ix.ids[i+1:], ix.ids[i:])
	copy(ix.lines[i+1:], ix.lines[i:])
	ix.ids[i] = k
	ix.lines[i] = ln
}

// indexGallopRatio is the size skew at which the shared-coreset walk of
// EvalMergeScratch switches from the linear merge to galloping over the
// larger index via intset.Seek (mirrors intset's gallopRatio).
const indexGallopRatio = 16

func (ix *lineIndex[K]) remove(k K) {
	delete(ix.m, k)
	i := sort.Search(len(ix.ids), func(i int) bool { return ix.ids[i] >= k })
	if i < len(ix.ids) && ix.ids[i] == k {
		ix.ids = append(ix.ids[:i], ix.ids[i+1:]...)
		ix.lines = append(ix.lines[:i], ix.lines[i+1:]...)
	}
}
