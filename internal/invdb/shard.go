// Sharded construction and canonical description-length accounting (see
// DESIGN.md "Sharded mining"). A shard database is a slice of the global
// inverted database: it keeps the GLOBAL attribute-id coreset space and the
// GLOBAL standard table — both are part of the gain function, so sharing
// them is what makes per-shard gains bit-identical to the global ones — but
// remaps its vertices to a dense local id space so position sets stay small.
//
// Canonical DL functions compute description lengths as pure functions of
// the line multiset, summing in a fixed (coreset id, leafset content) order.
// They exist because the DB's incremental accumulators depend on the float
// operation order of the merge history: two searches that reach the same
// final database through differently interleaved merges (a sharded run vs. a
// monolithic one) agree on every term but not necessarily on the last bits
// of the running sums. Reporting through the canonical order instead makes
// "bit-identical models" a meaningful contract across shard counts.
package invdb

import (
	"sort"

	"cspm/internal/graph"
	"cspm/internal/intset"
	"cspm/internal/mdl"
)

// FromGraphShard builds the inverted database of the shard owning verts
// (sorted ascending global vertex ids), using the provided standard table —
// typically the GLOBAL table, which shard gains must price against. Line
// positions are local indexes into verts; only shard vertices generate
// lines, but leafsets are drawn from the GLOBAL adjacency, so boundary
// vertices of an edge-cut shard contribute their attribute values to their
// neighbours' lines without being replicated into the shard.
func FromGraphShard(g *graph.Graph, st *mdl.StandardTable, verts []graph.VertexID) *DB {
	content, positions := singleValueShardCoresets(g.NumAttrValues(), len(verts),
		func(li int) []graph.AttrID { return g.Attrs(verts[li]) })
	return build(g, st, content, positions, verts)
}

// singleValueShardCoresets inverts per-local-vertex attribute lists into the
// single-value coreset space of a shard: one coreset per GLOBAL attribute
// value, firing at the local vertices carrying it (ascending li, so the
// position sets are sorted). Shared by FromGraphShard and FromShardData —
// the local/remote bit-identity contract depends on both feeding build the
// same inversion, so there is exactly one copy of it.
func singleValueShardCoresets(nA, n int, attrsOf func(li int) []graph.AttrID) (content [][]graph.AttrID, positions []intset.Set) {
	posBuf := make([][]uint32, nA)
	for li := 0; li < n; li++ {
		for _, a := range attrsOf(li) {
			posBuf[a] = append(posBuf[a], uint32(li))
		}
	}
	content = make([][]graph.AttrID, nA)
	positions = make([]intset.Set, nA)
	for a := 0; a < nA; a++ {
		content[a] = []graph.AttrID{graph.AttrID(a)}
		positions[a] = intset.FromSorted(posBuf[a])
	}
	return content, positions
}

// shardData adapts a shipped shard — per-local-vertex attribute lists and
// local adjacency rows — to the neighborhood interface build reads.
type shardData struct {
	attrs [][]graph.AttrID
	adj   [][]graph.VertexID
}

func (d shardData) Neighbors(v graph.VertexID) []graph.VertexID { return d.adj[v] }
func (d shardData) Attrs(v graph.VertexID) []graph.AttrID       { return d.attrs[v] }

// FromShardData builds the inverted database of a shard shipped without its
// graph: local vertex li carries attrs[li] (sorted GLOBAL attribute ids) and
// neighbours adj[li] (sorted local ids); nA is the size of the global
// attribute-id space and st the GLOBAL standard table. When attrs and adj
// are the rows of a sorted vertex slice verts remapped to local ids — and no
// edge leaves the slice, as with attribute-closed component groups — the
// result is identical to FromGraphShard(g, st, verts): both feed build the
// same positions, neighbour order and attribute values, in the same order.
func FromShardData(st *mdl.StandardTable, nA int, attrs [][]graph.AttrID, adj [][]graph.VertexID) *DB {
	content, positions := singleValueShardCoresets(nA, len(attrs),
		func(li int) []graph.AttrID { return attrs[li] })
	return build(shardData{attrs: attrs, adj: adj}, st, content, positions, nil)
}

// LineStat is the DL-relevant skeleton of one line: its coreset, leafset
// content, and frequency. Stats are exchanged between shards and the merge
// step, so they carry contents (global attribute ids), never shard-local
// leafset ids.
type LineStat struct {
	Core CoresetID
	Leaf []graph.AttrID
	FL   int
}

// AppendLineStats appends one LineStat per live line to dst and returns it.
// Leaf slices alias the leafset table: callers must treat them as read-only.
func (db *DB) AppendLineStats(dst []LineStat) []LineStat {
	for c := range db.byCore {
		ix := &db.byCore[c]
		for i, ln := range ix.lines {
			dst = append(dst, LineStat{Core: CoresetID(c), Leaf: db.leafsets.Values(ix.ids[i]), FL: ln.FL()})
		}
	}
	return dst
}

// NormalizeLineStats returns a copy of stats sorted into the canonical
// (coreset id, leafset content) order with duplicate (core, leaf) entries
// folded by summing their frequencies — duplicates arise when edge-cut
// shards split one global line's positions. The input is left untouched, so
// passing the same slice through several canonical computations is safe.
// The result is a pure function of the input multiset.
func NormalizeLineStats(stats []LineStat) []LineStat {
	stats = append([]LineStat(nil), stats...)
	sort.Slice(stats, func(i, j int) bool {
		if stats[i].Core != stats[j].Core {
			return stats[i].Core < stats[j].Core
		}
		return graph.CompareAttrs(stats[i].Leaf, stats[j].Leaf) < 0
	})
	out := stats[:0]
	for _, s := range stats {
		if n := len(out); n > 0 && out[n-1].Core == s.Core && graph.CompareAttrs(out[n-1].Leaf, s.Leaf) == 0 {
			out[n-1].FL += s.FL
			continue
		}
		out = append(out, s)
	}
	return out
}

// CanonicalDL computes the data and model description lengths of a line
// multiset in the canonical order. coreCode prices a line's coreset pointer
// (L(Code_c), Eq. 5); st prices leafset spell-outs. The integer frequencies
// f_c are derived from the stats themselves, so the result is a pure
// function of (st, coreCode, multiset) — independent of how many shards the
// lines came from or in which order their merges were applied.
func CanonicalDL(st *mdl.StandardTable, coreCode func(CoresetID) float64, stats []LineStat) (data, model float64) {
	return canonicalDL(st, coreCode, NormalizeLineStats(stats))
}

// canonicalDL is CanonicalDL over already-normalized stats.
func canonicalDL(st *mdl.StandardTable, coreCode func(CoresetID) float64, stats []LineStat) (data, model float64) {
	for i := 0; i < len(stats); {
		c := stats[i].Core
		j := i
		fc := 0
		for ; j < len(stats) && stats[j].Core == c; j++ {
			fc += stats[j].FL
		}
		data += mdl.XLogX(float64(fc))
		for k := i; k < j; k++ {
			data -= mdl.XLogX(float64(stats[k].FL))
			model += coreCode(c)
		}
		i = j
	}
	// Spell-out: every distinct leafset once, in ascending content order.
	leafs := make([][]graph.AttrID, 0, len(stats))
	for _, s := range stats {
		leafs = append(leafs, s.Leaf)
	}
	sort.Slice(leafs, func(i, j int) bool { return graph.CompareAttrs(leafs[i], leafs[j]) < 0 })
	for i, lf := range leafs {
		if i > 0 && graph.CompareAttrs(leafs[i-1], lf) == 0 {
			continue
		}
		model += st.SetLen(lf)
	}
	return data, model
}

// CanonicalCondEntropy computes H(Y|X) (Eq. 7) over a line multiset in the
// canonical order.
func CanonicalCondEntropy(stats []LineStat) float64 {
	return canonicalCondEntropy(NormalizeLineStats(stats))
}

// canonicalCondEntropy is CanonicalCondEntropy over already-normalized stats.
func canonicalCondEntropy(stats []LineStat) float64 {
	pairs := make([][2]int, 0, len(stats))
	for i := 0; i < len(stats); {
		c := stats[i].Core
		j := i
		fc := 0
		for ; j < len(stats) && stats[j].Core == c; j++ {
			fc += stats[j].FL
		}
		for k := i; k < j; k++ {
			pairs = append(pairs, [2]int{stats[k].FL, fc})
		}
		i = j
	}
	return mdl.CondEntropy(pairs)
}

// CanonicalSummary normalizes a line multiset once and returns its canonical
// data/model description lengths together with its conditional entropy — the
// bundle model extraction reports.
func CanonicalSummary(st *mdl.StandardTable, coreCode func(CoresetID) float64, stats []LineStat) (data, model, condEntropy float64) {
	norm := NormalizeLineStats(stats)
	data, model = canonicalDL(st, coreCode, norm)
	return data, model, canonicalCondEntropy(norm)
}

// CanonicalDL reports the DB's current description lengths through the
// canonical summation order (same totals as DataDL/ModelDL up to float
// association; bit-stable across merge interleavings).
func (db *DB) CanonicalDL() (data, model float64) {
	return CanonicalDL(db.st, db.CoreCodeLen, db.AppendLineStats(nil))
}

// RawLine is one line of an explicit line set: coreset, leafset content
// (sorted global attribute ids) and global position set. It is the exchange
// format of the edge-cut merge step, which reassembles a global database
// from per-shard mined lines.
type RawLine struct {
	Core CoresetID
	Leaf []graph.AttrID
	Pos  intset.Set
}

// FromLineSet reconstructs a DB around an explicit line set. coreContent and
// corePos describe the full coreset space (global ids); lines' leafsets are
// interned in canonical (core, leaf) order so ids — and every downstream
// tie-break — are a pure function of the input. Duplicate (core, leaf)
// entries (edge-cut shards splitting one line) are folded by position union.
// The DB's BaselineDL freezes at the reconstructed state; callers tracking a
// pre-merge baseline must carry it separately.
func FromLineSet(st *mdl.StandardTable, coreContent [][]graph.AttrID, corePos []intset.Set, lines []RawLine) *DB {
	db := &DB{
		st:          st,
		coreContent: coreContent,
		coreCode:    make([]float64, len(coreContent)),
		corePos:     corePos,
		coreFreq:    make([]int, len(coreContent)),
		leafsets:    NewLeafsetTable(),
		byCore:      make([]lineIndex[LeafsetID], len(coreContent)),
		byLeaf:      make(map[LeafsetID]*lineIndex[CoresetID]),
		scratch:     NewEvalScratch(),
	}
	for c := range coreContent {
		db.coreCode[c] = st.SetLen(coreContent[c])
	}
	sort.Slice(lines, func(i, j int) bool {
		if lines[i].Core != lines[j].Core {
			return lines[i].Core < lines[j].Core
		}
		return graph.CompareAttrs(lines[i].Leaf, lines[j].Leaf) < 0
	})
	for i := 0; i < len(lines); {
		ln := lines[i]
		pos := ln.Pos
		j := i + 1
		for ; j < len(lines) && lines[j].Core == ln.Core && graph.CompareAttrs(lines[j].Leaf, ln.Leaf) == 0; j++ {
			pos = pos.Union(lines[j].Pos)
		}
		i = j
		if pos.Len() == 0 {
			continue
		}
		ls := db.leafsets.Intern(append([]graph.AttrID(nil), ln.Leaf...))
		db.insertLine(&Line{Core: ln.Core, Leaf: ls, Pos: pos})
	}
	db.dataDL, db.modelDL = db.recomputeDL()
	db.baseDL = db.dataDL + db.modelDL
	return db
}
