package invdb

import (
	"encoding/binary"

	"cspm/internal/graph"
)

// LeafsetID identifies an interned leafset (a sorted set of attribute
// values). Leafsets are global entities: the same leafset may appear in
// lines under many coresets, and the merge step of CSPM operates on leafset
// pairs across all their shared coresets at once (paper §IV-E).
type LeafsetID int32

// LeafsetTable interns sorted attribute-value sets to dense LeafsetIDs.
type LeafsetTable struct {
	byKey   map[string]LeafsetID
	content [][]graph.AttrID
}

// NewLeafsetTable returns an empty table.
func NewLeafsetTable() *LeafsetTable {
	return &LeafsetTable{byKey: make(map[string]LeafsetID)}
}

// appendLeafsetKey appends the interning key encoding of vals to dst: the
// single source of truth shared by leafsetKey and lookup, so the allocating
// and allocation-free paths can never drift apart.
func appendLeafsetKey(dst []byte, vals []graph.AttrID) []byte {
	for _, v := range vals {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(v))
	}
	return dst
}

func leafsetKey(vals []graph.AttrID) string {
	return string(appendLeafsetKey(make([]byte, 0, 4*len(vals)), vals))
}

// Intern returns the id of the sorted value set vals, assigning a fresh id on
// first sight. vals must be sorted ascending and duplicate-free; the table
// takes ownership of the slice.
func (t *LeafsetTable) Intern(vals []graph.AttrID) LeafsetID {
	key := leafsetKey(vals)
	if id, ok := t.byKey[key]; ok {
		return id
	}
	id := LeafsetID(len(t.content))
	t.byKey[key] = id
	t.content = append(t.content, vals)
	return id
}

// lookup returns the id of the sorted value set vals without interning it.
// The interning key is encoded into *buf (grown as needed, reused across
// calls) and passed to the map as a string conversion the compiler keeps on
// the stack, so the lookup allocates nothing.
func (t *LeafsetTable) lookup(vals []graph.AttrID, buf *[]byte) (LeafsetID, bool) {
	b := appendLeafsetKey((*buf)[:0], vals)
	*buf = b
	id, ok := t.byKey[string(b)]
	return id, ok
}

// Single interns the one-element leafset {a}.
func (t *LeafsetTable) Single(a graph.AttrID) LeafsetID {
	return t.Intern([]graph.AttrID{a})
}

// Values returns the sorted content of leafset id. Callers must not modify
// the returned slice.
func (t *LeafsetTable) Values(id LeafsetID) []graph.AttrID { return t.content[id] }

// Size reports the number of distinct leafsets interned so far.
func (t *LeafsetTable) Size() int { return len(t.content) }

// Union interns the union of two leafsets and returns its id.
func (t *LeafsetTable) Union(a, b LeafsetID) LeafsetID {
	va, vb := t.content[a], t.content[b]
	out := make([]graph.AttrID, 0, len(va)+len(vb))
	i, j := 0, 0
	for i < len(va) && j < len(vb) {
		switch {
		case va[i] < vb[j]:
			out = append(out, va[i])
			i++
		case va[i] > vb[j]:
			out = append(out, vb[j])
			j++
		default:
			out = append(out, va[i])
			i++
			j++
		}
	}
	out = append(out, va[i:]...)
	out = append(out, vb[j:]...)
	return t.Intern(out)
}
