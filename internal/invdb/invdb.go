// Package invdb implements CSPM's inverted database representation
// (paper §IV-B): a table of lines (leafset SL, coreset Sc, positions), plus
// the mapping table of coreset positions. Mining a-stars reduces to merging
// pairs of leafsets; this package provides exact evaluation of the
// description-length gain of a merge (Eq. 9–15 generalised) and its
// application, maintaining the total DL incrementally.
//
// Gain evaluation is the miner's hot path and is allocation-free in steady
// state: lines are indexed with compact sorted slices (lineIndex), the
// fused intset kernels avoid materialising intersections, and per-call
// buffers live in EvalScratch arenas (see DESIGN.md).
package invdb

import (
	"fmt"
	"math"
	"sort"

	"cspm/internal/graph"
	"cspm/internal/intset"
	"cspm/internal/mdl"
)

// CoresetID identifies a coreset. In single-core-value mode (the paper's
// main setting) CoresetID equals the core AttrID; in multi-value mode
// coresets are itemsets selected by Krimp/SLIM (paper §IV-F).
type CoresetID int32

// Line is one row of the inverted database: the a-star (coreset, leafset)
// together with the set of core-vertex positions it covers. fL = |Pos|.
type Line struct {
	Core CoresetID
	Leaf LeafsetID
	Pos  intset.Set
}

// FL returns the line frequency fL.
func (ln *Line) FL() int { return ln.Pos.Len() }

// DB is the inverted database plus incremental description-length state.
// Mutating methods are not safe for concurrent use; EvalMergeScratch is a
// pure read and may run from many goroutines at once (each with its own
// EvalScratch) as long as no mutation is in flight.
type DB struct {
	st *mdl.StandardTable

	coreContent [][]graph.AttrID // coreset → attribute values
	coreCode    []float64        // Code_c length per coreset (Eq. 5)
	corePos     []intset.Set     // mapping table: vertices where coreset fires
	coreFreq    []int            // f_c: Σ fL over the coreset's lines (Eq. 8 note)

	leafsets *LeafsetTable
	byCore   []lineIndex[LeafsetID]              // coreset → leafset → line
	byLeaf   map[LeafsetID]*lineIndex[CoresetID] // leafset → coreset → line
	numLines int

	dataDL  float64 // Eq. 8 over current lines
	modelDL float64 // leafset spell-out costs + per-line coreset pointers
	baseDL  float64 // dataDL + modelDL right after construction

	scratch *EvalScratch // serial-eval arena, backs EvalMerge
	// ApplyMerge scratch: snapshot of the merged pair's shared lines, taken
	// before the indexes are mutated, plus the per-coreset intersection
	// buffer (cloned only when the intersection becomes a stored line).
	applyShared []CoresetID
	applyX      []*Line
	applyY      []*Line
	applyInter  intset.Set
}

// StandardTable returns the ST the DB was built with.
func (db *DB) StandardTable() *mdl.StandardTable { return db.st }

// Leafsets returns the interning table for leafsets.
func (db *DB) Leafsets() *LeafsetTable { return db.leafsets }

// NumCoresets reports the number of coresets (including ones without lines).
func (db *DB) NumCoresets() int { return len(db.coreContent) }

// NumLines reports the current number of inverted-database lines.
func (db *DB) NumLines() int { return db.numLines }

// NumActiveLeafsets reports leafsets that still own at least one line.
func (db *DB) NumActiveLeafsets() int { return len(db.byLeaf) }

// CoreValues returns the attribute values of coreset c.
func (db *DB) CoreValues(c CoresetID) []graph.AttrID { return db.coreContent[c] }

// CoreCodeLen returns L(Code_c) for coreset c.
func (db *DB) CoreCodeLen(c CoresetID) float64 { return db.coreCode[c] }

// CoreFreq returns f_c for coreset c.
func (db *DB) CoreFreq(c CoresetID) int { return db.coreFreq[c] }

// CorePositions returns the mapping-table positions of coreset c.
func (db *DB) CorePositions(c CoresetID) intset.Set { return db.corePos[c] }

// LinesOf returns the live lines of coreset c keyed by leafset. Callers must
// not modify the map.
func (db *DB) LinesOf(c CoresetID) map[LeafsetID]*Line { return db.byCore[c].m }

// LeafsetIDsOf returns the leafsets owning lines under coreset c, sorted
// ascending. The slice aliases the index: callers must not modify it and
// must not hold it across a mutation.
func (db *DB) LeafsetIDsOf(c CoresetID) []LeafsetID { return db.byCore[c].ids }

// CoresetsOf returns the live lines of leafset ls keyed by coreset, or nil
// if the leafset owns no lines. Callers must not modify the map.
func (db *DB) CoresetsOf(ls LeafsetID) map[CoresetID]*Line {
	if ix := db.byLeaf[ls]; ix != nil {
		return ix.m
	}
	return nil
}

// CoresetIDsOf returns the coresets under which leafset ls owns lines,
// sorted ascending. Same aliasing rules as LeafsetIDsOf.
func (db *DB) CoresetIDsOf(ls LeafsetID) []CoresetID {
	if ix := db.byLeaf[ls]; ix != nil {
		return ix.ids
	}
	return nil
}

// ActiveLeafsets returns the ids of all leafsets that currently own lines.
func (db *DB) ActiveLeafsets() []LeafsetID {
	return db.AppendActiveLeafsets(nil)
}

// AppendActiveLeafsets appends the active leafset ids to dst[:0] and
// returns it, reusing dst's capacity. Order is unspecified (map order).
func (db *DB) AppendActiveLeafsets(dst []LeafsetID) []LeafsetID {
	dst = dst[:0]
	for ls := range db.byLeaf {
		dst = append(dst, ls)
	}
	return dst
}

// DataDL returns the current L(I|M) per Eq. 8.
func (db *DB) DataDL() float64 { return db.dataDL }

// ModelDL returns the current L(M) under the reconstruction documented in
// DESIGN.md (leafset ST spell-out once per active leafset, plus one coreset
// pointer per line).
func (db *DB) ModelDL() float64 { return db.modelDL }

// TotalDL returns L(M) + L(I|M).
func (db *DB) TotalDL() float64 { return db.dataDL + db.modelDL }

// BaselineDL returns the total DL immediately after construction, before any
// merge; compression ratios are measured against it.
func (db *DB) BaselineDL() float64 { return db.baseDL }

// SingleValueCoresets builds the single-core-value coreset space of g: one
// coreset per attribute value, firing at the vertices carrying it (ascending
// order). Shared by FromGraph and the sharded miner's edge-cut reassembly so
// the coreset-space construction cannot drift between them.
func SingleValueCoresets(g *graph.Graph) (content [][]graph.AttrID, positions []intset.Set) {
	nA := g.NumAttrValues()
	content = make([][]graph.AttrID, nA)
	positions = make([]intset.Set, nA)
	posBuf := make([][]uint32, nA)
	for v := 0; v < g.NumVertices(); v++ {
		for _, a := range g.Attrs(graph.VertexID(v)) {
			posBuf[a] = append(posBuf[a], uint32(v))
		}
	}
	for a := 0; a < nA; a++ {
		content[a] = []graph.AttrID{graph.AttrID(a)}
		positions[a] = intset.FromSorted(posBuf[a]) // built in ascending v order
	}
	return content, positions
}

// FromGraph builds the single-core-value inverted database of g: one coreset
// per attribute value, one initial line per (core value, leaf value) pair
// with the core-vertex positions where they are adjacent (paper Fig. 2).
func FromGraph(g *graph.Graph) *DB {
	content, positions := SingleValueCoresets(g)
	return build(g, mdl.NewStandardTable(g), content, positions, nil)
}

// FromGraphWithCoresets builds the multi-value-coreset inverted database:
// coresets[i] fires at positions[i] (typically the Krimp/SLIM cover of the
// vertex-attribute transaction database, paper §IV-F step 1).
func FromGraphWithCoresets(g *graph.Graph, coresets [][]graph.AttrID, positions []intset.Set) (*DB, error) {
	if len(coresets) != len(positions) {
		return nil, fmt.Errorf("invdb: %d coresets but %d position sets", len(coresets), len(positions))
	}
	st := mdl.NewStandardTable(g)
	return build(g, st, coresets, positions, nil), nil
}

// neighborhood is the slice of graph state DB construction reads: sorted
// neighbour lists and sorted per-vertex attribute values. *graph.Graph
// satisfies it; the shard-job constructor substitutes shipped slices, so a
// worker that never saw the graph builds the same initial lines.
type neighborhood interface {
	Neighbors(v graph.VertexID) []graph.VertexID
	Attrs(v graph.VertexID) []graph.AttrID
}

// build assembles a DB from coreset contents and their firing positions.
// Positions are line-local vertex ids; globalOf maps them back to g's vertex
// ids for adjacency lookups (nil = identity, the unsharded case). The shard
// constructors pass a remapping so position sets stay dense per shard.
func build(g neighborhood, st *mdl.StandardTable, content [][]graph.AttrID, positions []intset.Set, globalOf []graph.VertexID) *DB {
	db := &DB{
		st:          st,
		coreContent: content,
		coreCode:    make([]float64, len(content)),
		corePos:     positions,
		coreFreq:    make([]int, len(content)),
		leafsets:    NewLeafsetTable(),
		byCore:      make([]lineIndex[LeafsetID], len(content)),
		byLeaf:      make(map[LeafsetID]*lineIndex[CoresetID]),
		scratch:     NewEvalScratch(),
	}
	for c := range content {
		db.coreCode[c] = st.SetLen(content[c])
	}
	// Initial lines: for every coreset position v and every attribute value l
	// on a neighbour of v, v is a position of line (coreset, {l}).
	lineBuf := make(map[uint64][]uint32)
	for c := range content {
		for _, vv := range db.corePos[c] {
			v := graph.VertexID(vv)
			if globalOf != nil {
				v = globalOf[vv]
			}
			for _, u := range g.Neighbors(v) {
				for _, l := range g.Attrs(u) {
					key := uint64(c)<<32 | uint64(uint32(l))
					buf := lineBuf[key]
					// Positions arrive in ascending v per key; collapse the
					// duplicates produced by multiple neighbours carrying l.
					if len(buf) == 0 || buf[len(buf)-1] != vv {
						lineBuf[key] = append(buf, vv)
					}
				}
			}
		}
	}
	// Intern leafsets and insert lines in sorted key order: leafset ids are
	// tie-breakers throughout the miner, so their assignment must be a pure
	// function of the graph, not of map iteration order.
	keys := make([]uint64, 0, len(lineBuf))
	for key := range lineBuf {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, key := range keys {
		c := CoresetID(key >> 32)
		l := graph.AttrID(uint32(key))
		ls := db.leafsets.Single(l)
		db.insertLine(&Line{Core: c, Leaf: ls, Pos: intset.FromSorted(lineBuf[key])})
	}
	db.dataDL, db.modelDL = db.recomputeDL()
	db.baseDL = db.dataDL + db.modelDL
	return db
}

// insertLine registers a line in both indexes and the frequency tally. It
// does not touch the DL accumulators.
func (db *DB) insertLine(ln *Line) {
	db.byCore[ln.Core].insert(ln.Leaf, ln)
	ix := db.byLeaf[ln.Leaf]
	if ix == nil {
		ix = &lineIndex[CoresetID]{}
		db.byLeaf[ln.Leaf] = ix
	}
	ix.insert(ln.Core, ln)
	db.coreFreq[ln.Core] += ln.FL()
	db.numLines++
}

// removeLine unregisters a line from both indexes. The caller has already
// accounted its positions in coreFreq.
func (db *DB) removeLine(ln *Line) {
	db.byCore[ln.Core].remove(ln.Leaf)
	ix := db.byLeaf[ln.Leaf]
	ix.remove(ln.Core)
	if ix.size() == 0 {
		delete(db.byLeaf, ln.Leaf)
	}
	db.numLines--
}

// recomputeDL recalculates the data and model description lengths from
// scratch. Used at construction and by tests to validate the incremental
// bookkeeping.
func (db *DB) recomputeDL() (data, model float64) {
	// Accumulate in sorted order: float sums must be a pure function of the
	// database content, not of map layout, so baselines are bit-identical
	// across DB instances built from the same graph. The index's sorted id
	// slices provide that order directly.
	for c := range db.byCore {
		ix := &db.byCore[c]
		data += mdl.XLogX(float64(db.coreFreq[c]))
		for _, ln := range ix.lines {
			model += db.coreCode[c]
			data -= mdl.XLogX(float64(ln.FL()))
		}
	}
	leafIDs := make([]LeafsetID, 0, len(db.byLeaf))
	for ls := range db.byLeaf {
		leafIDs = append(leafIDs, ls)
	}
	sort.Slice(leafIDs, func(i, j int) bool { return leafIDs[i] < leafIDs[j] })
	for _, ls := range leafIDs {
		model += db.st.SetLen(db.leafsets.Values(ls))
	}
	return data, model
}

// RecomputeDL exposes the from-scratch DL for verification.
func (db *DB) RecomputeDL() (data, model float64) { return db.recomputeDL() }

// CondEntropy reports H(Y|X) (Eq. 7) over the current lines, a diagnostic of
// how tightly leafsets are bound to their coresets.
func (db *DB) CondEntropy() float64 {
	pairs := make([][2]int, 0, db.numLines)
	for c := range db.byCore {
		for _, ln := range db.byCore[c].lines {
			pairs = append(pairs, [2]int{ln.FL(), db.coreFreq[c]})
		}
	}
	return mdl.CondEntropy(pairs)
}

// MergeEval is the exact outcome of merging leafset pair (X, Y) without
// applying it. Gain > 0 means the total DL would shrink by Gain bits.
type MergeEval struct {
	X, Y LeafsetID
	// Gain = DataGain + ModelGain; the miner selects on Gain by default and
	// on DataGain alone under the model-cost ablation.
	Gain      float64
	DataGain  float64
	ModelGain float64
	// CoOccurs is the number of coresets under which X and Y overlap; zero
	// means the pair can never compress (paper §V's observation).
	CoOccurs int
}

// EvalMerge computes the exact DL gain of merging leafsets x and y using the
// DB-owned scratch arena. See EvalMergeScratch for the concurrent variant.
func (db *DB) EvalMerge(x, y LeafsetID) MergeEval {
	return db.EvalMergeScratch(x, y, db.scratch)
}

// EvalMergeScratch computes the exact DL gain of merging leafsets x and y.
// It generalises Eq. 9–15: the three per-coreset merge cases (partly,
// totally, one-side totally merged) fall out of the same position
// arithmetic, and the cases where the union collides with an existing
// leafset (including x ⊆ y or y ⊆ x) are handled by simulating the actual
// line updates.
//
// The method reads the DB but never writes it; all transient state lives in
// sc, so concurrent calls with distinct scratches are safe. It allocates
// nothing once sc's buffers have warmed up, and the result is a pure
// function of (db, x, y) — independent of which scratch is passed.
func (db *DB) EvalMergeScratch(x, y LeafsetID, sc *EvalScratch) MergeEval {
	ev := MergeEval{X: x, Y: y}
	if x == y {
		return ev
	}
	ixx := db.byLeaf[x]
	ixy := db.byLeaf[y]
	if ixx.size() == 0 || ixy.size() == 0 {
		return ev
	}
	zID, zExists := db.lookupUnion(x, y, sc)
	zIsX := zExists && zID == x
	zIsY := zExists && zID == y

	var dataGain, modelGain float64
	removedX, removedY, zLinesAdded := 0, 0, 0
	// evalShared accounts one shared coreset. Callers invoke it in ascending
	// coreset order, keeping float accumulation (and therefore candidate
	// tie-breaking) reproducible across runs.
	evalShared := func(e CoresetID, lnx, lny *Line) {
		var lnz *Line
		if zExists && !zIsX && !zIsY {
			lnz = db.byCore[e].m[zID]
		}
		var xye, zDiff int
		if lnz != nil {
			// Fused kernel: |x∩y| and |(x∩y)\z| in one unmaterialised pass.
			xye, zDiff = intset.IntersectCountAndDiffCount(lnx.Pos, lny.Pos, lnz.Pos)
		} else {
			xye = lnx.Pos.IntersectCount(lny.Pos)
		}
		if xye == 0 {
			return
		}
		ev.CoOccurs++
		xe, ye := lnx.FL(), lny.FL()
		fe := float64(db.coreFreq[e])

		var oldTerms, newTerms float64
		var feAfter float64
		var removed, added int
		switch {
		case zIsY:
			// x ⊂ y: the union is y itself; only the x-line sheds overlap.
			oldTerms = mdl.XLogX(float64(xe)) + mdl.XLogX(float64(ye))
			newTerms = mdl.XLogX(float64(xe-xye)) + mdl.XLogX(float64(ye))
			feAfter = fe - float64(xye)
			if xe == xye {
				removed++
				removedX++
			}
		case zIsX:
			// y ⊂ x: symmetric.
			oldTerms = mdl.XLogX(float64(xe)) + mdl.XLogX(float64(ye))
			newTerms = mdl.XLogX(float64(xe)) + mdl.XLogX(float64(ye-xye))
			feAfter = fe - float64(xye)
			if ye == xye {
				removed++
				removedY++
			}
		default:
			zeBefore, zeAfter := 0, xye
			if lnz != nil {
				zeBefore = lnz.FL()
				zeAfter = zeBefore + zDiff
			}
			oldTerms = mdl.XLogX(float64(xe)) + mdl.XLogX(float64(ye)) + mdl.XLogX(float64(zeBefore))
			newTerms = mdl.XLogX(float64(xe-xye)) + mdl.XLogX(float64(ye-xye)) + mdl.XLogX(float64(zeAfter))
			feAfter = fe - float64(2*xye) + float64(zeAfter-zeBefore)
			if xe == xye {
				removed++
				removedX++
			}
			if ye == xye {
				removed++
				removedY++
			}
			if zeBefore == 0 {
				added++
				zLinesAdded++
			}
		}
		dataGain += (mdl.XLogX(fe) - mdl.XLogX(feAfter)) + (newTerms - oldTerms)
		modelGain += float64(removed-added) * db.coreCode[e]
	}
	// Walk the shared coresets. Balanced index sizes take the linear
	// merge-walk; badly skewed ones (a hub leafset against a small one)
	// gallop over the larger sorted id slice instead, preserving the old
	// small-side asymptotics.
	xids, yids := ixx.ids, ixy.ids
	if len(yids) > indexGallopRatio*len(xids) || len(xids) > indexGallopRatio*len(yids) {
		small, big := ixx, ixy
		swapped := false
		if len(yids) < len(xids) {
			small, big = ixy, ixx
			swapped = true
		}
		lo := 0
		for si, e := range small.ids {
			lo = intset.Seek(big.ids, e, lo)
			if lo >= len(big.ids) {
				break
			}
			if big.ids[lo] != e {
				continue
			}
			if swapped {
				evalShared(e, big.lines[lo], small.lines[si])
			} else {
				evalShared(e, small.lines[si], big.lines[lo])
			}
			lo++
			if lo >= len(big.ids) {
				break
			}
		}
	} else {
		i, j := 0, 0
		for i < len(xids) && j < len(yids) {
			switch {
			case xids[i] < yids[j]:
				i++
			case xids[i] > yids[j]:
				j++
			default:
				evalShared(xids[i], ixx.lines[i], ixy.lines[j])
				i++
				j++
			}
		}
	}
	if ev.CoOccurs == 0 {
		return ev
	}
	// Leafset spell-out costs: credit x/y if they lose their last line,
	// charge z if it gains its first.
	if removedX == len(xids) && !zIsX {
		modelGain += db.st.SetLen(db.leafsets.Values(x))
	}
	if removedY == len(yids) && !zIsY {
		modelGain += db.st.SetLen(db.leafsets.Values(y))
	}
	if !zIsX && !zIsY && zLinesAdded > 0 {
		if !zExists || db.byLeaf[zID].size() == 0 {
			modelGain -= db.unionSpellLen(x, y, sc)
		}
	}
	ev.DataGain = dataGain
	ev.ModelGain = modelGain
	ev.Gain = dataGain + modelGain
	if math.IsNaN(ev.Gain) {
		ev.Gain = math.Inf(-1)
	}
	return ev
}

// lookupUnion finds the interned id of content(x) ∪ content(y) without
// interning it, using sc's union and key buffers to stay allocation-free.
func (db *DB) lookupUnion(x, y LeafsetID, sc *EvalScratch) (LeafsetID, bool) {
	vx, vy := db.leafsets.Values(x), db.leafsets.Values(y)
	out := sc.unionBuf[:0]
	i, j := 0, 0
	for i < len(vx) && j < len(vy) {
		switch {
		case vx[i] < vy[j]:
			out = append(out, vx[i])
			i++
		case vx[i] > vy[j]:
			out = append(out, vy[j])
			j++
		default:
			out = append(out, vx[i])
			i++
			j++
		}
	}
	out = append(out, vx[i:]...)
	out = append(out, vy[j:]...)
	sc.unionBuf = out
	id, ok := db.leafsets.lookup(out, &sc.keyBuf)
	return id, ok
}

// unionSpellLen sums the ST lengths of the distinct values of x ∪ y, using
// sc's epoch-stamped attribute set instead of a per-call dedup map.
func (db *DB) unionSpellLen(x, y LeafsetID, sc *EvalScratch) float64 {
	sc.seenAttr.Bump()
	sum := 0.0
	for _, a := range db.leafsets.Values(x) {
		if sc.seenAttr.Mark(int(a)) {
			sum += db.st.Len(a)
		}
	}
	for _, a := range db.leafsets.Values(y) {
		if sc.seenAttr.Mark(int(a)) {
			sum += db.st.Len(a)
		}
	}
	return sum
}

// MergeResult reports what a committed merge did, feeding CSPM-Partial's
// rdict update (Algorithm 4).
type MergeResult struct {
	X, Y   LeafsetID
	New    LeafsetID   // the union leafset
	Gain   float64     // actual DL reduction in bits
	Total  []LeafsetID // members of {X, Y} whose lines all disappeared
	Part   []LeafsetID // members of {X, Y} that kept some lines
	Shared []CoresetID // coresets where the overlap was positive
}

// ApplyMerge commits the merge of leafsets x and y, updating lines, indexes,
// frequencies and the DL accumulators. It returns the realised result; if
// the pair no longer overlaps anywhere, it is a no-op with Gain 0.
func (db *DB) ApplyMerge(x, y LeafsetID) MergeResult {
	res := MergeResult{X: x, Y: y}
	if x == y {
		return res
	}
	ixx := db.byLeaf[x]
	ixy := db.byLeaf[y]
	if ixx.size() == 0 || ixy.size() == 0 {
		return res
	}
	// Snapshot the shared coresets and their line pointers first: the merge
	// mutates the indexes while it walks them. The snapshot buffers are
	// DB-owned scratch (ApplyMerge is sequential by contract).
	shared := db.applyShared[:0]
	linesX := db.applyX[:0]
	linesY := db.applyY[:0]
	xids, yids := ixx.ids, ixy.ids
	for i, j := 0, 0; i < len(xids) && j < len(yids); {
		switch {
		case xids[i] < yids[j]:
			i++
		case xids[i] > yids[j]:
			j++
		default:
			shared = append(shared, xids[i])
			linesX = append(linesX, ixx.lines[i])
			linesY = append(linesY, ixy.lines[j])
			i++
			j++
		}
	}
	db.applyShared, db.applyX, db.applyY = shared, linesX, linesY
	if len(shared) == 0 {
		return res
	}

	dlBeforeData, dlBeforeModel := db.dataDL, db.modelDL
	z := db.leafsets.Union(x, y)
	res.New = z
	zHadLines := db.byLeaf[z].size() > 0

	for si, e := range shared {
		lnx := linesX[si]
		lny := linesY[si]
		inter := lnx.Pos.IntersectInto(lny.Pos, db.applyInter)
		db.applyInter = inter
		xye := inter.Len()
		if xye == 0 {
			continue
		}
		res.Shared = append(res.Shared, e)
		feBefore := float64(db.coreFreq[e])
		dataDelta := -mdl.XLogX(feBefore)
		modelDelta := 0.0

		update := func(ln *Line, newPos intset.Set) {
			db.coreFreq[e] += newPos.Len() - ln.FL()
			dataDelta += mdl.XLogX(float64(ln.FL())) - mdl.XLogX(float64(newPos.Len()))
			ln.Pos = newPos
			if ln.FL() == 0 {
				db.removeLine(ln)
				modelDelta += db.coreCode[e]
			}
		}

		switch z {
		case y: // x ⊂ y: only the x-line sheds the overlap
			update(lnx, lnx.Pos.Diff(inter))
		case x: // y ⊂ x
			update(lny, lny.Pos.Diff(inter))
		default:
			update(lnx, lnx.Pos.Diff(inter))
			update(lny, lny.Pos.Diff(inter))
			if lnz := db.byCore[e].get(z); lnz != nil {
				newPos := lnz.Pos.Union(inter)
				db.coreFreq[e] += newPos.Len() - lnz.FL()
				dataDelta += mdl.XLogX(float64(lnz.FL())) - mdl.XLogX(float64(newPos.Len()))
				lnz.Pos = newPos
			} else {
				db.insertLine(&Line{Core: e, Leaf: z, Pos: inter.Clone()})
				dataDelta -= mdl.XLogX(float64(xye))
				modelDelta -= db.coreCode[e]
			}
		}
		dataDelta += mdl.XLogX(float64(db.coreFreq[e]))
		db.dataDL += dataDelta
		db.modelDL -= modelDelta // modelDelta accumulated as gain; DL moves opposite
	}
	if len(res.Shared) == 0 {
		return res
	}
	// Leafset spell-out adjustments.
	if db.byLeaf[x].size() == 0 && z != x {
		db.modelDL -= db.st.SetLen(db.leafsets.Values(x))
		res.Total = append(res.Total, x)
	} else {
		res.Part = append(res.Part, x)
	}
	if db.byLeaf[y].size() == 0 && z != y {
		db.modelDL -= db.st.SetLen(db.leafsets.Values(y))
		res.Total = append(res.Total, y)
	} else {
		res.Part = append(res.Part, y)
	}
	if !zHadLines && db.byLeaf[z].size() > 0 && z != x && z != y {
		db.modelDL += db.st.SetLen(db.leafsets.Values(z))
	}
	res.Gain = (dlBeforeData + dlBeforeModel) - (db.dataDL + db.modelDL)
	return res
}
