// Package shardcache stores per-shard mining results keyed by content
// fingerprints, turning repeated MineSharded runs over mostly-unchanged
// graphs into incremental jobs that only re-mine dirty component groups (see
// DESIGN.md "Shard-result cache").
//
// A cache entry holds exactly what the exact merge path consumes: the
// shard's line stats before any merge (baseline terms) and after its search
// (final terms), plus the run's iteration diagnostics. Both patterns and all
// canonical description lengths are pure functions of those line multisets,
// so replaying an entry is bit-identical to re-mining the group.
//
// The cache is an in-memory LRU with an optional on-disk layer: one gob blob
// per key under a directory, written atomically, loaded back on memory
// misses. Disk entries survive process restarts and LRU evictions, and the
// blob format doubles as the shard-result serialization format for
// distributed fan-out (ROADMAP "Distributed shards").
package shardcache

import (
	"bytes"
	"container/list"
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"cspm/internal/graph"
	"cspm/internal/invdb"
)

// Key identifies one cached shard result: the component group's canonical
// fingerprint, the global attribute-context fingerprint it was priced
// under, and a digest of the search options that shape the result (variant,
// iteration cap, ablations). Line stats store interned AttrIDs, are costed
// against the global standard table, and depend on how the search was run,
// so a result is reusable exactly when all three parts match.
type Key struct {
	Component graph.Fingerprint
	Global    graph.Fingerprint
	Search    graph.Fingerprint
}

// filename is the on-disk blob name of the key (192 hex chars + extension).
func (k Key) filename() string {
	return k.Component.String() + "-" + k.Global.String() + "-" + k.Search.String() + ".gob"
}

// Entry is one cached shard result. Callers must treat a returned entry and
// everything it references as read-only: entries are shared across lookups.
type Entry struct {
	Init       []invdb.LineStat // lines before any merge
	Final      []invdb.LineStat // lines after the shard's search
	Iterations int              // merges the shard's search applied
	GainEvals  int              // gain evaluations the search performed
}

// clone deep-copies e so cached state never aliases caller-owned slices
// (AppendLineStats leaf slices alias a DB's leafset table).
func (e *Entry) clone() *Entry {
	cp := &Entry{Iterations: e.Iterations, GainEvals: e.GainEvals}
	cp.Init = cloneStats(e.Init)
	cp.Final = cloneStats(e.Final)
	return cp
}

func cloneStats(stats []invdb.LineStat) []invdb.LineStat {
	out := make([]invdb.LineStat, len(stats))
	for i, s := range stats {
		out[i] = invdb.LineStat{Core: s.Core, Leaf: append([]graph.AttrID(nil), s.Leaf...), FL: s.FL}
	}
	return out
}

// Stats is a snapshot of the cache's lifetime counters.
type Stats struct {
	Hits          uint64 // lookups served from memory or disk
	Misses        uint64 // lookups that found nothing
	Evictions     uint64 // entries dropped from memory by the LRU bound
	PersistErrors uint64 // entries a Persist/PersistManifest failed to write
	Entries       int    // entries currently resident in memory
}

// Cache is a fingerprint-keyed shard-result cache: an LRU-bounded in-memory
// map with an optional on-disk layer. All methods are safe for concurrent
// use; blob encode/decode and file I/O run outside the mutex, so lookups of
// resident entries never stall behind another goroutine's disk traffic.
type Cache struct {
	mu        sync.Mutex
	capacity  int        // ≤0 = unbounded memory
	ll        *list.List // front = most recently used
	byKey     map[Key]*list.Element
	dir       string // "" = memory only; immutable after Open
	hits      uint64
	misses    uint64
	evictions uint64
	perErrs   uint64 // Persist/PersistManifest entry-write failures
}

// lruEntry is the list payload: the key rides along so eviction can index
// back into byKey.
type lruEntry struct {
	key   Key
	entry *Entry
}

// New returns a memory-only cache holding at most capacity entries
// (capacity ≤ 0 = unbounded).
func New(capacity int) *Cache {
	return &Cache{capacity: capacity, ll: list.New(), byKey: make(map[Key]*list.Element)}
}

// Open returns a cache backed by one gob blob per key under dir, creating
// the directory if needed. Memory still holds at most capacity entries; disk
// blobs survive evictions and process restarts.
func Open(capacity int, dir string) (*Cache, error) {
	if dir == "" {
		return nil, fmt.Errorf("shardcache: empty cache directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("shardcache: %w", err)
	}
	c := New(capacity)
	c.dir = dir
	return c, nil
}

// Dir reports the on-disk directory ("" for a memory-only cache).
func (c *Cache) Dir() string { return c.dir }

// Len reports the number of entries resident in memory.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns a snapshot of the lifetime counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{Hits: c.hits, Misses: c.misses, Evictions: c.evictions,
		PersistErrors: c.perErrs, Entries: c.ll.Len()}
}

// Get returns the entry stored under k, consulting memory first and then the
// disk layer. A disk hit is re-admitted to memory. The returned entry is
// shared: callers must not mutate it.
func (c *Cache) Get(k Key) (*Entry, bool) {
	c.mu.Lock()
	if el, ok := c.byKey[k]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		e := el.Value.(*lruEntry).entry
		c.mu.Unlock()
		return e, true
	}
	c.mu.Unlock()
	if c.dir != "" {
		if e, ok := c.loadDisk(k); ok {
			c.mu.Lock()
			if el, raced := c.byKey[k]; raced {
				// Another goroutine admitted the key while we read disk;
				// prefer the resident entry so all holders share one copy.
				c.ll.MoveToFront(el)
				e = el.Value.(*lruEntry).entry
			} else {
				c.admit(k, e)
			}
			c.hits++
			c.mu.Unlock()
			return e, true
		}
	}
	c.mu.Lock()
	c.misses++
	c.mu.Unlock()
	return nil, false
}

// Put stores a deep copy of e under k in memory (evicting LRU entries past
// the capacity bound) and, when a directory is configured, as a gob blob on
// disk.
func (c *Cache) Put(k Key, e *Entry) error {
	cp := e.clone()
	c.mu.Lock()
	if el, ok := c.byKey[k]; ok {
		el.Value.(*lruEntry).entry = cp
		c.ll.MoveToFront(el)
	} else {
		c.admit(k, cp)
	}
	c.mu.Unlock()
	if c.dir != "" {
		// cp is shared read-only once admitted, so encoding it unlocked is
		// safe.
		return c.storeDisk(k, cp)
	}
	return nil
}

// Persist writes every entry currently resident in memory as a blob under
// dir (creating it if needed), using the same atomic one-gob-blob-per-key
// format as the disk layer (temp file + rename, so a crash mid-write leaves
// either the old blob or none) — a memory-only cache can be flushed at
// shutdown and re-opened later with Open for a warm start. Entries already
// on disk are rewritten with identical bytes, which makes Persist an
// idempotent no-op-equivalent for a dir-backed cache flushing to its own
// directory. A failed entry is non-fatal: the rest still persist, the
// failure count feeds the PersistErrors stat, and the aggregated error of
// every failed entry is returned.
func (c *Cache) Persist(dir string) error {
	_, err := c.persistEntries(dir, false)
	return err
}

// persistEntries is the shared flush path behind Persist and
// PersistManifest. When withSums is set it returns each written blob's
// SHA-256 (hex) keyed by file name; failed entries are counted, skipped in
// the sums, and aggregated into the returned error.
func (c *Cache) persistEntries(dir string, withSums bool) (map[string]string, error) {
	if dir == "" {
		return nil, fmt.Errorf("shardcache: empty persist directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("shardcache: %w", err)
	}
	// Snapshot the resident set under the mutex, write outside it: entries
	// are shared read-only once admitted, so encoding unlocked is safe and
	// concurrent lookups never stall behind the flush.
	c.mu.Lock()
	snapshot := make(map[Key]*Entry, c.ll.Len())
	for el := c.ll.Front(); el != nil; el = el.Next() {
		le := el.Value.(*lruEntry)
		snapshot[le.key] = le.entry
	}
	c.mu.Unlock()
	var sums map[string]string
	if withSums {
		sums = make(map[string]string, len(snapshot))
	}
	var errs []error
	for k, e := range snapshot {
		blob, err := encodeEntry(e)
		if err == nil {
			err = writeFileAtomic(dir, k.filename(), blob, false)
		}
		if err != nil {
			errs = append(errs, err)
			continue
		}
		if withSums {
			sum := sha256.Sum256(blob)
			sums[k.filename()] = hex.EncodeToString(sum[:])
		}
	}
	if len(errs) > 0 {
		c.mu.Lock()
		c.perErrs += uint64(len(errs))
		c.mu.Unlock()
		return sums, fmt.Errorf("shardcache: %d of %d entries failed to persist: %w",
			len(errs), len(snapshot), errors.Join(errs...))
	}
	return sums, nil
}

// Purge drops every entry resident in memory. Disk blobs are untouched (use
// QuarantineDir to distrust those); the next lookups repopulate from disk or
// miss. Purge is how a server discards a cache whose recovered state failed
// checksum verification.
func (c *Cache) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.byKey = make(map[Key]*list.Element)
}

// Remove invalidates k in both layers, reporting whether anything existed.
func (c *Cache) Remove(k Key) bool {
	c.mu.Lock()
	removed := false
	if el, ok := c.byKey[k]; ok {
		c.ll.Remove(el)
		delete(c.byKey, k)
		removed = true
	}
	c.mu.Unlock()
	if c.dir != "" {
		if err := os.Remove(filepath.Join(c.dir, k.filename())); err == nil {
			removed = true
		}
	}
	return removed
}

// admit inserts a fresh entry at the LRU front and enforces the capacity
// bound. Caller holds c.mu.
func (c *Cache) admit(k Key, e *Entry) {
	c.byKey[k] = c.ll.PushFront(&lruEntry{key: k, entry: e})
	for c.capacity > 0 && c.ll.Len() > c.capacity {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.byKey, back.Value.(*lruEntry).key)
		c.evictions++
	}
}

// loadDisk decodes the blob of k, treating any read or decode failure as a
// miss: a truncated or tampered blob must never poison a mining run with a
// partial entry. Runs unlocked (c.dir is immutable).
func (c *Cache) loadDisk(k Key) (*Entry, bool) {
	f, err := os.Open(filepath.Join(c.dir, k.filename()))
	if err != nil {
		return nil, false
	}
	defer f.Close()
	e := &Entry{}
	if err := gob.NewDecoder(f).Decode(e); err != nil {
		return nil, false
	}
	return e, true
}

// storeDisk writes the blob of k into the cache's own directory. Runs
// unlocked (c.dir is immutable).
func (c *Cache) storeDisk(k Key, e *Entry) error {
	return storeBlob(c.dir, k, e)
}

// storeBlob writes the blob of k under dir atomically (temp file + rename),
// so a crash mid-write leaves either the old blob or none, and concurrent
// writers of one key leave one winner.
func storeBlob(dir string, k Key, e *Entry) error {
	blob, err := encodeEntry(e)
	if err != nil {
		return err
	}
	return writeFileAtomic(dir, k.filename(), blob, false)
}

// encodeEntry gob-encodes e into a byte slice, so callers can checksum the
// exact bytes that hit disk.
func encodeEntry(e *Entry) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(e); err != nil {
		return nil, fmt.Errorf("shardcache: %w", err)
	}
	return buf.Bytes(), nil
}

// writeFileAtomic writes data as dir/name via temp file + rename. With sync
// set it fsyncs the temp file before the rename and the directory after, so
// the rename is a durable commit point and not just an atomic one.
func writeFileAtomic(dir, name string, data []byte, sync bool) error {
	tmp, err := os.CreateTemp(dir, "put-*.tmp")
	if err != nil {
		return fmt.Errorf("shardcache: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("shardcache: %w", err)
	}
	if sync {
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
			return fmt.Errorf("shardcache: %w", err)
		}
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("shardcache: %w", err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, name)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("shardcache: %w", err)
	}
	if sync {
		if err := syncDir(dir); err != nil {
			return fmt.Errorf("shardcache: %w", err)
		}
	}
	return nil
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
