package shardcache

import (
	"bytes"
	"encoding/gob"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"cspm/internal/graph"
	"cspm/internal/invdb"
)

// goldenEntry is the canonical fixture value: every field non-zero (gob
// omits zero-valued fields, which would leave parts of the format unpinned)
// and leafsets of several lengths.
func goldenEntry() *Entry {
	return &Entry{
		Init: []invdb.LineStat{
			{Core: 0, Leaf: []graph.AttrID{1}, FL: 3},
			{Core: 0, Leaf: []graph.AttrID{2}, FL: 1},
			{Core: 1, Leaf: []graph.AttrID{0, 2}, FL: 2},
			{Core: 2, Leaf: []graph.AttrID{0, 1, 3}, FL: 5},
		},
		Final: []invdb.LineStat{
			{Core: 0, Leaf: []graph.AttrID{1, 2}, FL: 4},
			{Core: 2, Leaf: []graph.AttrID{0, 1, 3}, FL: 5},
		},
		Iterations: 7,
		GainEvals:  123,
	}
}

const goldenPath = "testdata/entry_v1.gob"

// TestEntryWireFormatGolden pins the gob blob format the disk cache layer
// and the shardrpc transport both exchange: the committed fixture must
// decode into exactly the canonical entry, and re-encoding that entry must
// reproduce the committed bytes bit for bit. Any change that breaks either
// direction — a renamed or retyped Entry/LineStat field, a different id
// width — breaks every persisted cache directory and mixed-version
// worker fleet, and must bump the format (new fixture, new version suffix)
// instead of mutating this one. Regenerate deliberately with
// UPDATE_WIRE_GOLDEN=1 go test ./internal/shardcache -run WireFormat.
func TestEntryWireFormatGolden(t *testing.T) {
	want := goldenEntry()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(want); err != nil {
		t.Fatal(err)
	}
	if os.Getenv("UPDATE_WIRE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d bytes to %s", buf.Len(), goldenPath)
	}
	committed, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("golden blob missing (regenerate with UPDATE_WIRE_GOLDEN=1): %v", err)
	}

	// Decode direction: the committed bytes still mean the canonical entry.
	got := &Entry{}
	if err := gob.NewDecoder(bytes.NewReader(committed)).Decode(got); err != nil {
		t.Fatalf("committed blob no longer decodes: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("committed blob decodes to a different entry:\ngot  %+v\nwant %+v", got, want)
	}

	// Encode direction: a fresh encoder reproduces the committed bytes, so
	// current writers still speak the committed format.
	if !bytes.Equal(buf.Bytes(), committed) {
		t.Fatalf("re-encoded entry differs from the committed blob (%d vs %d bytes): the wire format changed", buf.Len(), len(committed))
	}

	// Round trip through decode → encode is also byte-identical, pinning
	// that nothing (zero-field elision, slice nil-ness) is lost in transit.
	var again bytes.Buffer
	if err := gob.NewEncoder(&again).Encode(got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again.Bytes(), committed) {
		t.Fatal("decode→re-encode is not byte-identical")
	}
}
