package shardcache

import (
	"os"
	"path/filepath"
	"testing"

	"cspm/internal/graph"
	"cspm/internal/invdb"
)

func key(b byte) Key {
	var k Key
	k.Component[0] = b
	k.Global[31] = 0xee
	return k
}

func entry(n int) *Entry {
	e := &Entry{Iterations: n, GainEvals: 10 * n}
	for i := 0; i < n; i++ {
		e.Final = append(e.Final, invdb.LineStat{
			Core: invdb.CoresetID(i), Leaf: []graph.AttrID{graph.AttrID(i), graph.AttrID(i + 1)}, FL: i + 1,
		})
	}
	e.Init = cloneStats(e.Final)
	return e
}

func TestLRUEviction(t *testing.T) {
	c := New(2)
	c.Put(key(1), entry(1))
	c.Put(key(2), entry(2))
	if _, ok := c.Get(key(1)); !ok { // 1 now most recent
		t.Fatal("missing entry 1")
	}
	c.Put(key(3), entry(3)) // evicts 2, the least recent
	if _, ok := c.Get(key(2)); ok {
		t.Fatal("entry 2 survived eviction")
	}
	if _, ok := c.Get(key(1)); !ok {
		t.Fatal("entry 1 evicted out of LRU order")
	}
	if _, ok := c.Get(key(3)); !ok {
		t.Fatal("entry 3 missing after insert")
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("stats %+v, want 1 eviction over 2 entries", st)
	}
	// hits: 1(get1) + 1(get1) + 1(get3) = 3; misses: get2 = 1.
	if st.Hits != 3 || st.Misses != 1 {
		t.Fatalf("stats %+v, want 3 hits / 1 miss", st)
	}
}

func TestPutCopiesAndGetShares(t *testing.T) {
	c := New(0)
	e := entry(2)
	c.Put(key(9), e)
	e.Final[0].FL = 999
	e.Final[0].Leaf[0] = 999 // caller mutates its own slices after Put
	got, ok := c.Get(key(9))
	if !ok {
		t.Fatal("missing entry")
	}
	if got.Final[0].FL == 999 || got.Final[0].Leaf[0] == 999 {
		t.Fatal("Put aliased the caller's slices")
	}
}

func TestOverwriteSameKey(t *testing.T) {
	c := New(1)
	c.Put(key(1), entry(1))
	c.Put(key(1), entry(5))
	got, _ := c.Get(key(1))
	if got == nil || got.Iterations != 5 {
		t.Fatalf("overwrite not visible: %+v", got)
	}
	if st := c.Stats(); st.Evictions != 0 || st.Entries != 1 {
		t.Fatalf("overwrite evicted or duplicated: %+v", st)
	}
}

func TestRemove(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(0, dir)
	if err != nil {
		t.Fatal(err)
	}
	c.Put(key(1), entry(1))
	if !c.Remove(key(1)) {
		t.Fatal("Remove found nothing")
	}
	if _, ok := c.Get(key(1)); ok {
		t.Fatal("entry survived Remove")
	}
	if files, _ := filepath.Glob(filepath.Join(dir, "*.gob")); len(files) != 0 {
		t.Fatalf("disk blob survived Remove: %v", files)
	}
	if c.Remove(key(1)) {
		t.Fatal("second Remove claimed success")
	}
}

func TestDiskRoundTripAndEvictionSurvival(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(1, dir) // memory holds one entry
	if err != nil {
		t.Fatal(err)
	}
	want := entry(3)
	c.Put(key(1), want)
	c.Put(key(2), entry(4)) // evicts 1 from memory; disk blob remains
	if st := c.Stats(); st.Evictions != 1 {
		t.Fatalf("stats %+v, want one eviction", st)
	}
	got, ok := c.Get(key(1)) // served from disk, re-admitted
	if !ok {
		t.Fatal("evicted entry not recovered from disk")
	}
	if got.Iterations != want.Iterations || len(got.Final) != len(want.Final) ||
		got.Final[2].FL != want.Final[2].FL || got.Final[2].Leaf[1] != want.Final[2].Leaf[1] {
		t.Fatalf("disk round-trip mangled the entry: %+v", got)
	}

	// A second cache over the same directory sees the blobs (restart).
	c2, err := Open(0, dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c2.Get(key(2)); !ok {
		t.Fatal("fresh cache missed a persisted blob")
	}
	if st := c2.Stats(); st.Hits != 1 || st.Entries != 1 {
		t.Fatalf("fresh cache stats %+v", st)
	}
}

func TestCorruptBlobIsAMiss(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(0, dir)
	if err != nil {
		t.Fatal(err)
	}
	c.Put(key(7), entry(2))
	files, _ := filepath.Glob(filepath.Join(dir, "*.gob"))
	if len(files) != 1 {
		t.Fatalf("expected one blob, got %v", files)
	}
	if err := os.WriteFile(files[0], []byte("not a gob"), 0o644); err != nil {
		t.Fatal(err)
	}
	c2, _ := Open(0, dir)
	if _, ok := c2.Get(key(7)); ok {
		t.Fatal("corrupt blob served as a hit")
	}
	if st := c2.Stats(); st.Misses != 1 {
		t.Fatalf("stats %+v, want one miss", st)
	}
}

func TestOpenRejectsEmptyDirAndCreatesMissing(t *testing.T) {
	if _, err := Open(0, ""); err == nil {
		t.Fatal("Open accepted an empty directory")
	}
	nested := filepath.Join(t.TempDir(), "a", "b")
	if _, err := Open(0, nested); err != nil {
		t.Fatalf("Open did not create %s: %v", nested, err)
	}
	if fi, err := os.Stat(nested); err != nil || !fi.IsDir() {
		t.Fatalf("cache dir not created: %v", err)
	}
}

func TestUnboundedCapacity(t *testing.T) {
	c := New(0)
	for i := 0; i < 100; i++ {
		c.Put(key(byte(i)), entry(1))
	}
	if st := c.Stats(); st.Entries != 100 || st.Evictions != 0 {
		t.Fatalf("unbounded cache evicted: %+v", st)
	}
}

func TestPersistFlushesMemoryToDisk(t *testing.T) {
	mem := New(0)
	for i := byte(1); i <= 3; i++ {
		if err := mem.Put(key(i), entry(int(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := mem.Persist(""); err == nil {
		t.Fatal("Persist accepted an empty directory")
	}
	dir := filepath.Join(t.TempDir(), "nested", "cache") // Persist must mkdir
	if err := mem.Persist(dir); err != nil {
		t.Fatal(err)
	}
	blobs, err := filepath.Glob(filepath.Join(dir, "*.gob"))
	if err != nil {
		t.Fatal(err)
	}
	if len(blobs) != 3 {
		t.Fatalf("persisted %d blobs, want 3", len(blobs))
	}
	// A dir-backed cache over the flushed directory serves every entry.
	warm, err := Open(0, dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := byte(1); i <= 3; i++ {
		got, ok := warm.Get(key(i))
		if !ok {
			t.Fatalf("entry %d missing after persist", i)
		}
		if got.Iterations != int(i) || len(got.Final) != int(i) {
			t.Fatalf("entry %d round-tripped wrong: %+v", i, got)
		}
	}
	// Persisting a dir-backed cache to its own directory is an idempotent
	// rewrite of identical bytes.
	before, err := os.ReadFile(blobs[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := warm.Persist(dir); err != nil {
		t.Fatal(err)
	}
	after, err := os.ReadFile(blobs[0])
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Fatal("self-persist rewrote a blob with different bytes")
	}
}
