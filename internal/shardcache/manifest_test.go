package shardcache

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestManifestRoundtripAndVerify(t *testing.T) {
	dir := t.TempDir()
	c := New(0)
	for i := byte(1); i <= 3; i++ {
		if err := c.Put(key(i), entry(int(i))); err != nil {
			t.Fatal(err)
		}
	}
	man := &Manifest{
		Generation:      7,
		FoldedBatches:   4,
		FoldedMutations: 9,
		ModelSHA256:     strings.Repeat("a", 64),
		GraphSHA256:     strings.Repeat("b", 64),
		Vocab:           []string{"smoker", "cancer"},
	}
	if err := c.PersistManifest(dir, man); err != nil {
		t.Fatal(err)
	}
	if len(man.Blobs) != 3 {
		t.Fatalf("manifest lists %d blobs, want 3", len(man.Blobs))
	}

	got, err := LoadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Generation != 7 || got.FoldedBatches != 4 || got.FoldedMutations != 9 ||
		got.ModelSHA256 != man.ModelSHA256 || got.GraphSHA256 != man.GraphSHA256 ||
		len(got.Vocab) != 2 || got.Vocab[0] != "smoker" || len(got.Blobs) != 3 {
		t.Fatalf("manifest did not roundtrip: %+v", got)
	}

	// All blobs intact: nothing quarantined.
	q, err := VerifyBlobs(dir, got)
	if err != nil || len(q) != 0 {
		t.Fatalf("clean dir verified as %v, %v", q, err)
	}
	// Flip a byte in one blob: exactly that blob is quarantined, by rename.
	var victim string
	for name := range got.Blobs {
		victim = name
		break
	}
	path := filepath.Join(dir, victim)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	q, err = VerifyBlobs(dir, got)
	if err != nil || len(q) != 1 || q[0] != victim {
		t.Fatalf("tampered blob verification = %v, %v; want [%s]", q, err, victim)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("quarantined blob still present under its original name")
	}
	if _, err := os.Stat(path + QuarantineSuffix); err != nil {
		t.Fatalf("quarantined blob not preserved for post-mortem: %v", err)
	}
	// A quarantined (now missing) blob is a future miss, not an error.
	q, err = VerifyBlobs(dir, got)
	if err != nil || len(q) != 0 {
		t.Fatalf("re-verification over the missing blob = %v, %v", q, err)
	}
}

func TestLoadManifestMissingAndInvalid(t *testing.T) {
	dir := t.TempDir()
	if m, err := LoadManifest(dir); m != nil || err != nil {
		t.Fatalf("missing manifest = %v, %v; want nil, nil", m, err)
	}
	path := filepath.Join(dir, ManifestName)
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadManifest(dir); err == nil {
		t.Fatal("malformed manifest loaded")
	}
	if err := os.WriteFile(path, []byte(`{"version": 99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadManifest(dir); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("future-version manifest = %v, want a version error", err)
	}
}

func TestQuarantineDir(t *testing.T) {
	dir := t.TempDir()
	c := New(0)
	for i := byte(1); i <= 2; i++ {
		if err := c.Put(key(i), entry(int(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Persist(dir); err != nil {
		t.Fatal(err)
	}
	// Non-blob files are untouched by the sweep.
	if err := os.WriteFile(filepath.Join(dir, ManifestName), []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	n, err := QuarantineDir(dir)
	if err != nil || n != 2 {
		t.Fatalf("QuarantineDir = %d, %v; want 2, nil", n, err)
	}
	left, err := filepath.Glob(filepath.Join(dir, "*.gob"))
	if err != nil || len(left) != 0 {
		t.Fatalf("blobs left unquarantined: %v", left)
	}
	if _, err := os.Stat(filepath.Join(dir, ManifestName)); err != nil {
		t.Fatalf("non-blob file swept away: %v", err)
	}
	// An absent directory quarantines nothing rather than failing.
	if n, err := QuarantineDir(filepath.Join(dir, "nope")); n != 0 || err != nil {
		t.Fatalf("QuarantineDir on a missing dir = %d, %v", n, err)
	}
}

// TestPersistAggregatesPerEntryErrors: one unwritable entry must not abort
// the flush — every other entry persists, the error names the failure count,
// and the PersistErrors stat records it.
func TestPersistAggregatesPerEntryErrors(t *testing.T) {
	dir := t.TempDir()
	c := New(0)
	for i := byte(1); i <= 3; i++ {
		if err := c.Put(key(i), entry(int(i))); err != nil {
			t.Fatal(err)
		}
	}
	// Occupy one entry's blob name with a directory: the atomic rename onto
	// it fails for that entry alone.
	blocked := key(2).filename()
	if err := os.MkdirAll(filepath.Join(dir, blocked), 0o755); err != nil {
		t.Fatal(err)
	}
	err := c.Persist(dir)
	if err == nil || !strings.Contains(err.Error(), "1 of 3 entries failed to persist") {
		t.Fatalf("Persist over a blocked entry = %v, want the aggregated count", err)
	}
	if got := c.Stats().PersistErrors; got != 1 {
		t.Fatalf("PersistErrors stat = %d, want 1", got)
	}
	blobs, err := filepath.Glob(filepath.Join(dir, "*.gob"))
	if err != nil {
		t.Fatal(err)
	}
	persisted := 0
	for _, b := range blobs {
		if fi, err := os.Stat(b); err == nil && !fi.IsDir() {
			persisted++
		}
	}
	if persisted != 2 {
		t.Fatalf("persisted %d healthy entries, want 2", persisted)
	}
	// The failed entry is absent from a manifest's blob commitments too.
	man := &Manifest{}
	if err := c.PersistManifest(dir, man); err == nil {
		t.Fatal("PersistManifest over a blocked entry reported success")
	}
	if _, listed := man.Blobs[blocked]; listed || len(man.Blobs) != 2 {
		t.Fatalf("manifest lists %d blobs (blocked listed=%v), want 2 healthy", len(man.Blobs), listed)
	}
}
