package shardcache

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// ManifestName is the file a checkpointed cache directory is committed
// under. The manifest is written last, atomically: its presence means every
// blob it lists was already durable, so it is the commit point of a
// checkpoint (see DESIGN.md "Durability & crash recovery").
const ManifestName = "MANIFEST"

// QuarantineSuffix is appended to a blob whose content no longer matches its
// manifest checksum. Quarantined blobs are never loaded; they are kept for
// post-mortem inspection instead of deleted.
const QuarantineSuffix = ".quarantined"

// Manifest is the checksummed commitment a serve checkpoint writes next to
// the cache blobs. Recovered state is verified against it and never trusted
// merely because it was on disk.
type Manifest struct {
	Version int `json:"version"`
	// Generation is the published snapshot generation the checkpoint captured.
	Generation uint64 `json:"generation"`
	// FoldedBatches is the highest WAL batch sequence folded into the
	// checkpointed graph; recovery replays WAL records after it.
	FoldedBatches uint64 `json:"folded_batches"`
	// FoldedMutations counts individual mutations folded, for observability.
	FoldedMutations uint64 `json:"folded_mutations"`
	// ModelSHA256 commits to the mined model (hashed by attribute name, so it
	// is invariant under re-interning).
	ModelSHA256 string `json:"model_sha256"`
	// GraphSHA256 commits to the checkpointed graph file's exact bytes.
	GraphSHA256 string `json:"graph_sha256"`
	// Vocab is the attribute vocabulary in interning-id order. Recovery
	// re-interns the checkpoint graph in this order so content fingerprints —
	// and therefore every cache key — match the ones the blobs were written
	// under.
	Vocab []string `json:"vocab"`
	// Blobs maps cache blob file names to the SHA-256 (hex) of their bytes.
	Blobs map[string]string `json:"blobs"`
}

// ManifestVersion is the current manifest schema version.
const ManifestVersion = 1

// PersistManifest flushes every resident entry to dir (like Persist) and
// then commits m — with m.Blobs filled from the written bytes — as
// dir/MANIFEST via fsync'd temp file + rename, making the manifest a durable
// commit point. Entry failures are non-fatal and aggregated exactly as in
// Persist (failed entries are simply absent from m.Blobs); a manifest write
// failure is fatal, since without the commitment the checkpoint must not be
// trusted.
func (c *Cache) PersistManifest(dir string, m *Manifest) error {
	sums, perr := c.persistEntries(dir, true)
	m.Version = ManifestVersion
	m.Blobs = sums
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("shardcache: encode manifest: %w", err)
	}
	if err := writeFileAtomic(dir, ManifestName, append(data, '\n'), true); err != nil {
		return fmt.Errorf("shardcache: commit manifest: %w", err)
	}
	return perr
}

// LoadManifest reads dir/MANIFEST. A missing manifest is (nil, nil): the
// directory predates checkpointing or was never committed, which callers
// treat as "no durable checkpoint", not as corruption.
func LoadManifest(dir string) (*Manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("shardcache: read manifest: %w", err)
	}
	m := &Manifest{}
	if err := json.Unmarshal(data, m); err != nil {
		return nil, fmt.Errorf("shardcache: decode manifest: %w", err)
	}
	if m.Version != ManifestVersion {
		return nil, fmt.Errorf("shardcache: manifest version %d, want %d", m.Version, ManifestVersion)
	}
	return m, nil
}

// VerifyBlobs checks every blob listed in m against its recorded checksum
// and quarantines (renames with QuarantineSuffix) each mismatch so it can
// never be loaded. A listed blob that is missing is skipped — it simply
// becomes a future cache miss, which is safe. It returns the quarantined
// file names; an error only for I/O failures that prevent verification.
func VerifyBlobs(dir string, m *Manifest) ([]string, error) {
	var quarantined []string
	for name, want := range m.Blobs {
		path := filepath.Join(dir, name)
		data, err := os.ReadFile(path)
		if os.IsNotExist(err) {
			continue
		}
		if err != nil {
			return quarantined, fmt.Errorf("shardcache: verify %s: %w", name, err)
		}
		if hashHex(data) == want {
			continue
		}
		if err := os.Rename(path, path+QuarantineSuffix); err != nil {
			return quarantined, fmt.Errorf("shardcache: quarantine %s: %w", name, err)
		}
		quarantined = append(quarantined, name)
	}
	return quarantined, nil
}

// QuarantineDir quarantines every cache blob under dir, listed in a
// manifest or not — the degrade path when the checkpoint as a whole fails
// verification and no individual blob can be trusted. Returns how many blobs
// were quarantined.
func QuarantineDir(dir string) (int, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("shardcache: %w", err)
	}
	n := 0
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".gob") {
			continue
		}
		path := filepath.Join(dir, name)
		if err := os.Rename(path, path+QuarantineSuffix); err != nil {
			return n, fmt.Errorf("shardcache: quarantine %s: %w", name, err)
		}
		n++
	}
	return n, nil
}

func hashHex(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}
