package wal

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// Record payload versioning. The segment frame ([len][crc][seq][payload])
// never changes — old segments stay readable forever — so format evolution
// happens inside the payload: a versioned payload is
//
//	0x00 'W' 'A' 'L' <uvarint version> <body>
//
// and anything else decodes as version 1 with the payload as its body. The
// scheme relies on version-1 writers never having produced a payload whose
// first byte is 0x00 — true for this repo's only payload type (gob streams
// open with a non-zero message length) and a condition EncodePayload callers
// must preserve when introducing new payload kinds.

// payloadMagic marks a versioned payload. The leading 0x00 is what makes it
// unambiguous against legacy payloads.
var payloadMagic = []byte{0x00, 'W', 'A', 'L'}

// EncodePayload frames body as a version-v record payload. v must be >= 2:
// version 1 is the bare legacy form and is never written with a frame.
func EncodePayload(v uint64, body []byte) []byte {
	if v < 2 {
		panic(fmt.Sprintf("wal: EncodePayload version %d (versions < 2 are the bare legacy form)", v))
	}
	out := make([]byte, 0, len(payloadMagic)+binary.MaxVarintLen64+len(body))
	out = append(out, payloadMagic...)
	out = binary.AppendUvarint(out, v)
	return append(out, body...)
}

// DecodePayload splits a record payload into its format version and body.
// Payloads without the version magic are version 1, returned as-is; a
// payload that starts the magic but breaks off is corrupt, not legacy.
func DecodePayload(payload []byte) (v uint64, body []byte, err error) {
	if len(payload) == 0 || payload[0] != 0x00 {
		return 1, payload, nil
	}
	if !bytes.HasPrefix(payload, payloadMagic) {
		return 0, nil, fmt.Errorf("wal: payload starts 0x00 but is not a versioned record")
	}
	rest := payload[len(payloadMagic):]
	v, n := binary.Uvarint(rest)
	if n <= 0 || v < 2 {
		return 0, nil, fmt.Errorf("wal: versioned payload has a malformed version field")
	}
	return v, rest[n:], nil
}
