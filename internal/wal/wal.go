// Package wal implements the segmented, fsync'd write-ahead log behind the
// serving subsystem's durability contract (DESIGN.md "Durability & crash
// recovery"). Records are opaque payloads framed with a CRC and a dense
// sequence number; Append returns only after the record is durable, so the
// caller may acknowledge exactly what Append has returned for. Open replays
// every intact record, truncating a torn tail (a crash mid-append) instead
// of failing, and refusing with ErrCorrupt when damage sits in front of
// later intact records — that would mean losing acknowledged data, which
// recovery must never do silently. Segments rotate at a size threshold and
// Compact drops segments whose records have been folded into a durable
// checkpoint.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
)

const (
	// DefaultSegmentBytes is the rotation threshold when Options leaves it 0.
	DefaultSegmentBytes = 1 << 20
	// MaxRecordBytes bounds one record's payload; a framing length beyond it
	// is treated as tail damage, not an allocation request.
	MaxRecordBytes = 64 << 20
	// recordHeader is the on-disk frame prefix: uint32 payload length,
	// uint32 CRC-32C over (seq || payload), uint64 sequence number, all
	// little-endian, followed by the payload bytes.
	recordHeader = 16
	segSuffix    = ".wal"
)

// ErrCorrupt reports damage in front of later intact records (or a broken
// segment chain): acknowledged data is unreadable, so recovery refuses to
// continue rather than silently dropping it. A damaged final tail is NOT
// this error — torn tails are truncated and reported via TornTail.
var ErrCorrupt = errors.New("wal: corrupt record before log tail")

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Record is one replayed log entry: a dense 1-based sequence number and the
// payload bytes exactly as appended.
type Record struct {
	Seq     uint64
	Payload []byte
}

// Options configures Open. The zero value uses the real filesystem and the
// default segment size.
type Options struct {
	// FS is the filesystem the log runs on (nil = the real one). Tests
	// inject crashfs here to drive recovery through deterministic faults.
	FS FS
	// SegmentBytes rotates the active segment once it reaches this many
	// bytes (0 = DefaultSegmentBytes).
	SegmentBytes int64
}

// segment is one closed (no longer appended-to) log file.
type segment struct {
	name  string
	first uint64
	last  uint64 // 0 = empty segment
}

// Log is an append-only record log over segmented files. Append and Compact
// are safe for concurrent use; a Log is single-writer by construction (Open
// owns the directory).
type Log struct {
	fs       FS
	dir      string
	segBytes int64

	mu      sync.Mutex
	closed  []segment // fully scanned or rotated-away segments, oldest first
	cur     File      // active segment handle, nil until the first Append
	curName string    // "" = no active segment yet
	curSize int64
	nextSeq uint64 // seq the next Append assigns
	torn    bool   // Open truncated a torn tail
	err     error  // first append failure or close; sticky
}

// segName is the segment file name for the first sequence it holds.
func segName(first uint64) string { return fmt.Sprintf("%020d%s", first, segSuffix) }

// parseSegName extracts the first-sequence number a segment file was created
// for; ok is false for files that are not WAL segments.
func parseSegName(name string) (uint64, bool) {
	if !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	n, err := strconv.ParseUint(strings.TrimSuffix(name, segSuffix), 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// Open opens (creating if needed) the log under dir and replays every intact
// record in sequence order. A torn tail — a partial or checksum-failing
// record at the very end of the final segment — is truncated away and
// reported by TornTail; damage anywhere else returns ErrCorrupt. The
// returned records alias freshly allocated memory and are the caller's.
func Open(dir string, opts Options) (*Log, []Record, error) {
	fs := opts.FS
	if fs == nil {
		fs = OS()
	}
	segBytes := opts.SegmentBytes
	if segBytes <= 0 {
		segBytes = DefaultSegmentBytes
	}
	if err := fs.MkdirAll(dir); err != nil {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	names, err := fs.List(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log{fs: fs, dir: dir, segBytes: segBytes, nextSeq: 1}
	var segs []segment
	for _, name := range names {
		if first, ok := parseSegName(name); ok {
			segs = append(segs, segment{name: name, first: first})
		}
	}
	var recs []Record
	for i := range segs {
		seg := &segs[i]
		if i > 0 {
			// Each segment must pick up exactly where the previous ended: a
			// gap means a whole file of acknowledged records vanished.
			if prev := segs[i-1]; seg.first != prev.last+1 {
				return nil, nil, fmt.Errorf("%w: segment %s does not continue %s",
					ErrCorrupt, seg.name, prev.name)
			}
		}
		path := filepath.Join(dir, seg.name)
		f, err := fs.Open(path)
		if err != nil {
			return nil, nil, fmt.Errorf("wal: %w", err)
		}
		segRecs, good, torn, err := scanSegment(f, seg.first)
		f.Close()
		if err != nil {
			return nil, nil, err
		}
		last := seg.first - 1 + uint64(len(segRecs))
		if torn {
			if i != len(segs)-1 {
				// Damage with intact segments after it: acknowledged records
				// would be lost if we truncated here.
				return nil, nil, fmt.Errorf("%w: segment %s is damaged mid-log", ErrCorrupt, seg.name)
			}
			if err := fs.Truncate(path, good); err != nil {
				return nil, nil, fmt.Errorf("wal: truncating torn tail of %s: %w", seg.name, err)
			}
			l.torn = true
		}
		seg.last = last
		recs = append(recs, segRecs...)
	}
	if n := len(segs); n > 0 {
		active := segs[n-1]
		l.closed = segs[:n-1]
		l.curName = active.name
		l.curSize = sizeOf(recs, active)
		// For an empty trailing segment (crash between rotation and the first
		// append) last is first-1, so this still resumes at the sequence the
		// segment was created for.
		l.nextSeq = active.last + 1
	}
	return l, recs, nil
}

// sizeOf computes the byte size of the active segment from its replayed
// records (framing plus payload).
func sizeOf(all []Record, active segment) int64 {
	var size int64
	for _, r := range all {
		if r.Seq >= active.first {
			size += recordHeader + int64(len(r.Payload))
		}
	}
	return size
}

// scanSegment reads records starting at sequence want until the file ends or
// a frame fails to parse. good is the byte offset of the last intact record's
// end; torn reports whether damaged bytes follow it.
func scanSegment(f File, want uint64) (recs []Record, good int64, torn bool, err error) {
	var hdr [recordHeader]byte
	for {
		_, rerr := io.ReadFull(f, hdr[:])
		if rerr == io.EOF {
			return recs, good, false, nil
		}
		if rerr != nil { // ErrUnexpectedEOF or a real read error: partial header
			return recs, good, true, nil
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		seq := binary.LittleEndian.Uint64(hdr[8:16])
		if length > MaxRecordBytes || seq != want {
			return recs, good, true, nil
		}
		payload := make([]byte, length)
		if _, rerr := io.ReadFull(f, payload); rerr != nil {
			return recs, good, true, nil
		}
		crc := crc32.Update(crc32.Checksum(hdr[8:16], crcTable), crcTable, payload)
		if crc != sum {
			return recs, good, true, nil
		}
		recs = append(recs, Record{Seq: seq, Payload: payload})
		good += recordHeader + int64(length)
		want++
	}
}

// TornTail reports whether Open truncated a torn tail (a crash mid-append;
// the damaged record was never acknowledged).
func (l *Log) TornTail() bool { return l.torn }

// Dir returns the log's directory.
func (l *Log) Dir() string { return l.dir }

// NextSeq returns the sequence number the next Append will assign.
func (l *Log) NextSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextSeq
}

// Segments reports how many segment files the log currently spans.
func (l *Log) Segments() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := len(l.closed)
	if l.curName != "" {
		n++
	}
	return n
}

// Append frames payload, writes it to the active segment and fsyncs before
// returning the record's sequence number — the caller may acknowledge the
// record if and only if Append returned nil. Any write or sync failure
// wedges the log permanently (the on-disk tail is no longer trusted); every
// later Append returns the same error, and recovery via a fresh Open is the
// only way forward.
func (l *Log) Append(payload []byte) (uint64, error) {
	if len(payload) > MaxRecordBytes {
		return 0, fmt.Errorf("wal: record of %d bytes exceeds the %d byte bound", len(payload), MaxRecordBytes)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return 0, l.err
	}
	return l.appendLocked(payload)
}

// AppendAt appends payload under an EXPLICIT sequence number — the API a
// replica mirrors a leader's log through, where the leader already assigned
// every sequence and the mirror must reproduce it exactly (promotion replays
// the mirror against a checkpoint whose folded-batch count lives in the
// leader's numbering). seq == NextSeq appends normally; seq < NextSeq is a
// record the mirror already holds and is skipped (false, nil); seq > NextSeq
// is permitted only on a completely empty log — a fresh replica whose first
// shipped record continues the leader's checkpoint, not sequence 1 — because
// anywhere else the jump would write a gap that recovery must refuse as lost
// acknowledged data.
func (l *Log) AppendAt(seq uint64, payload []byte) (bool, error) {
	if seq == 0 {
		return false, fmt.Errorf("wal: sequence numbers are 1-based")
	}
	if len(payload) > MaxRecordBytes {
		return false, fmt.Errorf("wal: record of %d bytes exceeds the %d byte bound", len(payload), MaxRecordBytes)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return false, l.err
	}
	switch {
	case seq < l.nextSeq:
		return false, nil
	case seq == l.nextSeq:
	case l.nextSeq == 1 && l.curName == "" && len(l.closed) == 0:
		l.nextSeq = seq
	default:
		return false, fmt.Errorf("wal: append at sequence %d would leave a gap after %d", seq, l.nextSeq-1)
	}
	if _, err := l.appendLocked(payload); err != nil {
		return false, err
	}
	return true, nil
}

// appendLocked frames payload under l.nextSeq, writes and fsyncs it. Caller
// holds l.mu and has checked the sticky error and the payload bound.
func (l *Log) appendLocked(payload []byte) (uint64, error) {
	if l.cur == nil || l.curSize >= l.segBytes {
		if err := l.rollLocked(); err != nil {
			return 0, l.fail(err)
		}
	}
	buf := make([]byte, recordHeader+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint64(buf[8:16], l.nextSeq)
	copy(buf[recordHeader:], payload)
	crc := crc32.Update(crc32.Checksum(buf[8:16], crcTable), crcTable, payload)
	binary.LittleEndian.PutUint32(buf[4:8], crc)
	if _, err := l.cur.Write(buf); err != nil {
		return 0, l.fail(err)
	}
	if err := l.cur.Sync(); err != nil {
		return 0, l.fail(err)
	}
	seq := l.nextSeq
	l.nextSeq++
	l.curSize += int64(len(buf))
	return seq, nil
}

// fail wedges the log with its first error. Caller holds l.mu.
func (l *Log) fail(err error) error {
	l.err = fmt.Errorf("wal: log wedged: %w", err)
	return l.err
}

// rollLocked makes an active segment handle available: it reopens a resumable
// segment left by Open, or closes the full one and starts the next file
// (fsyncing the directory so the new entry survives a crash). Caller holds
// l.mu.
func (l *Log) rollLocked() error {
	if l.cur == nil && l.curName != "" && l.curSize < l.segBytes {
		f, err := l.fs.OpenAppend(filepath.Join(l.dir, l.curName))
		if err != nil {
			return err
		}
		l.cur = f
		return nil
	}
	if l.cur != nil {
		l.cur.Close()
		l.cur = nil
	}
	if l.curName != "" {
		first, _ := parseSegName(l.curName)
		l.closed = append(l.closed, segment{name: l.curName, first: first, last: l.nextSeq - 1})
		l.curName = ""
	}
	name := segName(l.nextSeq)
	f, err := l.fs.Create(filepath.Join(l.dir, name))
	if err != nil {
		return err
	}
	if err := l.fs.SyncDir(l.dir); err != nil {
		f.Close()
		return err
	}
	l.cur = f
	l.curName = name
	l.curSize = 0
	return nil
}

// Compact removes every closed segment whose records are all folded into a
// durable checkpoint (last sequence <= upTo). The active segment is never
// removed. Compact must only be called after the checkpoint covering upTo is
// itself durable — otherwise a crash would strand acknowledged batches with
// neither a checkpoint nor a log to recover them from.
func (l *Log) Compact(upTo uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	var keep []segment
	var errs []error
	removed := false
	for _, seg := range l.closed {
		if seg.last > 0 && seg.last <= upTo {
			if err := l.fs.Remove(filepath.Join(l.dir, seg.name)); err != nil {
				errs = append(errs, err)
				keep = append(keep, seg)
				continue
			}
			removed = true
			continue
		}
		keep = append(keep, seg)
	}
	l.closed = keep
	if removed {
		if err := l.fs.SyncDir(l.dir); err != nil {
			errs = append(errs, err)
		}
	}
	if len(errs) > 0 {
		return fmt.Errorf("wal: compact: %w", errors.Join(errs...))
	}
	return nil
}

// Close releases the active segment and wedges the log: every later Append
// fails. Close the log only after the final Compact.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	var err error
	if l.cur != nil {
		err = l.cur.Close()
		l.cur = nil
	}
	if l.err == nil {
		l.err = errors.New("wal: log closed")
	}
	return err
}
