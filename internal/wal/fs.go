package wal

import (
	"io"
	"os"
	"path/filepath"
	"sort"
)

// FS abstracts the handful of filesystem operations the WAL performs, so
// recovery tests can drive the log through a deterministic fault-injecting
// shim (package crashfs) instead of the real disk. A Log calls every method
// from at most one goroutine at a time; implementations need not add their
// own locking for the Log's sake.
type FS interface {
	// MkdirAll creates dir and any missing parents (no error if it exists).
	MkdirAll(dir string) error
	// List returns the base names of the regular files directly under dir,
	// sorted ascending. A missing directory lists as empty, not as an error.
	List(dir string) ([]string, error)
	// Open opens name for reading.
	Open(name string) (File, error)
	// Create creates (or truncates) name for writing.
	Create(name string) (File, error)
	// OpenAppend opens name for appending, creating it if absent.
	OpenAppend(name string) (File, error)
	// Truncate cuts name to size bytes.
	Truncate(name string, size int64) error
	// Remove deletes name.
	Remove(name string) error
	// SyncDir fsyncs the directory so entry creation and removal survive a
	// crash, not just the file contents.
	SyncDir(dir string) error
}

// File is the per-file surface the WAL needs: sequential reads, appends,
// and a durability barrier.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	// Sync blocks until previously written bytes are durable. A record is
	// acknowledged only after Sync returns nil (see DESIGN.md "Durability &
	// crash recovery").
	Sync() error
}

// OS returns the FS backed by the real filesystem.
func OS() FS { return osFS{} }

type osFS struct{}

func (osFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (osFS) List(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if e.Type().IsRegular() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

func (osFS) Open(name string) (File, error) { return os.Open(name) }

func (osFS) Create(name string) (File, error) {
	return os.OpenFile(name, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
}

func (osFS) OpenAppend(name string) (File, error) {
	return os.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

func (osFS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(filepath.Clean(dir))
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
