package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
)

// Namespace layout of a multi-tenant persist root. Every tenant owns an
// isolated subtree keyed by its namespace name:
//
//	<root>/<ns>/wal        — the tenant's mutation WAL segments
//	<root>/<ns>/checkpoint — the tenant's GRAPH / MANIFEST / cache blobs
//	<root>/.quarantine/    — namespace trees set aside, never unlinked
//
// The quarantine dir starts with a dot, so it can never collide with a live
// namespace (names are validated by ValidNamespace, which rejects leading
// dots). Deleting a namespace RENAMES its subtree under .quarantine instead
// of unlinking it: an acknowledged WAL record must survive an operator
// mistake the same way it survives a crash.

const (
	walSubdir        = "wal"
	checkpointSubdir = "checkpoint"
	// QuarantineDir is the subdirectory of the root that holds quarantined
	// namespace trees.
	QuarantineDir = ".quarantine"
	// MaxNamespaceLen bounds namespace names (they become directory names
	// and URL path segments).
	MaxNamespaceLen = 64
)

// namespaceRE is the shape of a valid namespace name: lowercase
// alphanumerics, dashes and underscores, starting with an alphanumeric.
// Lowercase-only sidesteps case-insensitive-filesystem aliasing ("Prod" and
// "prod" silently sharing a subtree); the leading-alphanumeric rule keeps
// names out of the dotfile and flag namespaces.
var namespaceRE = regexp.MustCompile(`^[a-z0-9][a-z0-9_-]*$`)

// ValidNamespace reports whether ns may name a tenant: it must match
// namespaceRE and fit MaxNamespaceLen. The rules are deliberately stricter
// than what the filesystem allows — a namespace is also a URL path segment
// and a log token.
func ValidNamespace(ns string) error {
	if ns == "" {
		return fmt.Errorf("wal: empty namespace")
	}
	if len(ns) > MaxNamespaceLen {
		return fmt.Errorf("wal: namespace %q longer than %d bytes", ns, MaxNamespaceLen)
	}
	if !namespaceRE.MatchString(ns) {
		return fmt.Errorf("wal: bad namespace %q (want lowercase [a-z0-9][a-z0-9_-]*)", ns)
	}
	return nil
}

// Layout derives the per-namespace directory tree under a persist root. The
// zero Root is invalid; callers gate on it before deriving paths.
type Layout struct {
	Root string
}

// NamespaceDir is the tenant's whole subtree.
func (l Layout) NamespaceDir(ns string) string { return filepath.Join(l.Root, ns) }

// WALDir is where the tenant's mutation WAL lives.
func (l Layout) WALDir(ns string) string { return filepath.Join(l.Root, ns, walSubdir) }

// CheckpointDir is where the tenant's verified checkpoints (and shard-cache
// blobs) live.
func (l Layout) CheckpointDir(ns string) string { return filepath.Join(l.Root, ns, checkpointSubdir) }

// Namespaces scans the root for tenant subtrees: directories whose names
// pass ValidNamespace, sorted. A missing root is an empty fleet, not an
// error (the first create materialises it). Entries that fail validation —
// the quarantine dir, strays — are skipped, never touched.
func (l Layout) Namespaces() ([]string, error) {
	entries, err := os.ReadDir(l.Root)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("wal: scan namespace root: %w", err)
	}
	var out []string
	for _, e := range entries {
		if !e.IsDir() || ValidNamespace(e.Name()) != nil {
			continue
		}
		out = append(out, e.Name())
	}
	sort.Strings(out)
	return out, nil
}

// Quarantine renames the namespace's subtree under <root>/.quarantine,
// picking the first free <ns>.<n> suffix so repeated create/delete cycles
// never clobber an earlier quarantined tree. It returns the destination
// path. Nothing is ever unlinked: a quarantined WAL still holds every
// acknowledged batch, and un-quarantining is a rename back.
func (l Layout) Quarantine(ns string) (string, error) {
	if err := ValidNamespace(ns); err != nil {
		return "", err
	}
	qdir := filepath.Join(l.Root, QuarantineDir)
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		return "", fmt.Errorf("wal: quarantine dir: %w", err)
	}
	src := l.NamespaceDir(ns)
	for n := 1; ; n++ {
		dst := filepath.Join(qdir, fmt.Sprintf("%s.%d", ns, n))
		if _, err := os.Stat(dst); err == nil {
			continue
		} else if !os.IsNotExist(err) {
			return "", fmt.Errorf("wal: quarantine probe: %w", err)
		}
		if err := os.Rename(src, dst); err != nil {
			return "", fmt.Errorf("wal: quarantine %s: %w", ns, err)
		}
		return dst, nil
	}
}
