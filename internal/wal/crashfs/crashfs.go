// Package crashfs is a deterministic fault-injecting implementation of
// wal.FS for recovery testing: an in-memory filesystem that models the page
// cache explicitly. Written bytes are *pending* until Sync promotes them to
// *durable*; a simulated crash drops every pending byte (optionally keeping
// a configurable torn prefix of the crashing operation, modelling a
// partially flushed write) and makes all further operations fail with
// ErrCrashed. Recover then exposes exactly the durable state — what a real
// process would find on disk after the kill — so a test can restart the
// system under test on it and assert recovery invariants at every injected
// crash point.
package crashfs

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"cspm/internal/wal"
)

// ErrCrashed is returned by every operation after the injected crash point.
var ErrCrashed = errors.New("crashfs: simulated crash")

// ErrSyncFailed is the injected fsync failure: the sync does not happen,
// but the process survives (the caller must treat the data as volatile).
var ErrSyncFailed = errors.New("crashfs: injected fsync failure")

// Config selects the injected fault. The zero value injects nothing.
// Mutating operations — Create, Write, Sync, Truncate, Rename, Remove,
// SyncDir — are counted across the whole Dir in call order, which is what
// makes a crash point reproducible: the Nth op of a deterministic workload
// is always the same op.
type Config struct {
	// CrashAtOp crashes on the Nth mutating operation, 1-based (0 = never).
	// The crashing operation does not take effect, except for the TornBytes
	// prefix of a crashing Write or Sync.
	CrashAtOp int
	// TornBytes is how many bytes of the crashing Write (or of the pending
	// data a crashing Sync was flushing) still reach durable state — a torn
	// write. 0 models a clean kill between operations.
	TornBytes int
	// FailSyncAt makes the Nth Sync call (1-based) return ErrSyncFailed
	// without syncing; the process survives (0 = never).
	FailSyncAt int
	// MaxReadChunk caps the bytes returned per Read call (0 = unlimited),
	// exercising short-read handling in the code under test.
	MaxReadChunk int
}

// file models one file: durable content (what survives a crash) plus
// pending bytes written but not yet fsynced.
type file struct {
	durable []byte
	pending []byte
}

func (f *file) view() []byte { // what the live process reads
	out := make([]byte, 0, len(f.durable)+len(f.pending))
	out = append(out, f.durable...)
	return append(out, f.pending...)
}

// Dir is an in-memory filesystem rooted at nothing in particular: names are
// the full paths the caller uses (wal joins dir + segment name). It
// implements wal.FS.
type Dir struct {
	mu      sync.Mutex
	cfg     Config
	files   map[string]*file
	ops     int
	syncs   int
	crashed bool
}

// New returns an empty Dir injecting cfg's fault.
func New(cfg Config) *Dir {
	return &Dir{cfg: cfg, files: make(map[string]*file)}
}

// Ops reports how many mutating operations have run (run a workload with a
// zero Config first to size a crash matrix).
func (d *Dir) Ops() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.ops
}

// Crashed reports whether the injected crash point was reached.
func (d *Dir) Crashed() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.crashed
}

// Recover returns the post-crash filesystem: every file's durable content,
// with no pending bytes and no faults configured — what a restarted process
// finds. The receiver keeps its crashed state; the returned Dir is
// independent.
func (d *Dir) Recover() *Dir {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := New(Config{})
	for name, f := range d.files {
		out.files[name] = &file{durable: append([]byte(nil), f.durable...)}
	}
	return out
}

// DurableBytes returns a copy of name's durable content (nil, false if the
// file does not exist) — for white-box assertions in tests.
func (d *Dir) DurableBytes(name string) ([]byte, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	f, ok := d.files[filepath.Clean(name)]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), f.durable...), true
}

// step counts one mutating operation and reports whether it is the crash
// point. Caller holds d.mu.
func (d *Dir) step() bool {
	d.ops++
	return d.cfg.CrashAtOp > 0 && d.ops == d.cfg.CrashAtOp
}

// crash drops every pending byte. Caller holds d.mu and has already
// promoted any torn prefix.
func (d *Dir) crash() {
	d.crashed = true
	for _, f := range d.files {
		f.pending = nil
	}
}

func (d *Dir) MkdirAll(dir string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.crashed {
		return ErrCrashed
	}
	return nil
}

func (d *Dir) List(dir string) ([]string, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.crashed {
		return nil, ErrCrashed
	}
	prefix := filepath.Clean(dir) + string(filepath.Separator)
	var names []string
	for name := range d.files {
		if rest, ok := strings.CutPrefix(name, prefix); ok && !strings.ContainsRune(rest, filepath.Separator) {
			names = append(names, rest)
		}
	}
	sort.Strings(names)
	return names, nil
}

func (d *Dir) Open(name string) (wal.File, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.crashed {
		return nil, ErrCrashed
	}
	f, ok := d.files[filepath.Clean(name)]
	if !ok {
		return nil, &fs.PathError{Op: "open", Path: name, Err: fs.ErrNotExist}
	}
	return &handle{d: d, f: f}, nil
}

func (d *Dir) Create(name string) (wal.File, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.crashed {
		return nil, ErrCrashed
	}
	if d.step() {
		d.crash()
		return nil, ErrCrashed
	}
	f := &file{}
	d.files[filepath.Clean(name)] = f
	return &handle{d: d, f: f, writable: true}, nil
}

func (d *Dir) OpenAppend(name string) (wal.File, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.crashed {
		return nil, ErrCrashed
	}
	f, ok := d.files[filepath.Clean(name)]
	if !ok {
		if d.step() { // creating counts like Create
			d.crash()
			return nil, ErrCrashed
		}
		f = &file{}
		d.files[filepath.Clean(name)] = f
	}
	return &handle{d: d, f: f, writable: true}, nil
}

func (d *Dir) Truncate(name string, size int64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.crashed {
		return ErrCrashed
	}
	if d.step() {
		d.crash()
		return ErrCrashed
	}
	f, ok := d.files[filepath.Clean(name)]
	if !ok {
		return &fs.PathError{Op: "truncate", Path: name, Err: fs.ErrNotExist}
	}
	if combined := f.view(); int64(len(combined)) > size {
		if int64(len(f.durable)) > size {
			f.durable = f.durable[:size]
			f.pending = nil
		} else {
			f.pending = f.pending[:size-int64(len(f.durable))]
		}
	}
	return nil
}

func (d *Dir) Remove(name string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.crashed {
		return ErrCrashed
	}
	if d.step() {
		d.crash()
		return ErrCrashed
	}
	name = filepath.Clean(name)
	if _, ok := d.files[name]; !ok {
		return &fs.PathError{Op: "remove", Path: name, Err: fs.ErrNotExist}
	}
	delete(d.files, name)
	return nil
}

func (d *Dir) SyncDir(dir string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.crashed {
		return ErrCrashed
	}
	if d.step() {
		d.crash()
		return ErrCrashed
	}
	return nil
}

// handle is one open file. Read position is per handle; writes append, as
// every writer in the system under test does.
type handle struct {
	d        *Dir
	f        *file
	pos      int
	writable bool
}

func (h *handle) Read(p []byte) (int, error) {
	h.d.mu.Lock()
	defer h.d.mu.Unlock()
	if h.d.crashed {
		return 0, ErrCrashed
	}
	data := h.f.view()
	if h.pos >= len(data) {
		return 0, io.EOF
	}
	if m := h.d.cfg.MaxReadChunk; m > 0 && len(p) > m {
		p = p[:m]
	}
	n := copy(p, data[h.pos:])
	h.pos += n
	return n, nil
}

func (h *handle) Write(p []byte) (int, error) {
	h.d.mu.Lock()
	defer h.d.mu.Unlock()
	if h.d.crashed {
		return 0, ErrCrashed
	}
	if !h.writable {
		return 0, fmt.Errorf("crashfs: write to read-only handle")
	}
	if h.d.step() {
		// Torn write: everything previously pending flushes (it was ahead of
		// this write in the file), plus the first TornBytes of this write —
		// a contiguous durable prefix, as a real partial page flush leaves.
		tear := min(h.d.cfg.TornBytes, len(p))
		h.f.durable = append(h.f.durable, h.f.pending...)
		h.f.durable = append(h.f.durable, p[:tear]...)
		h.f.pending = nil
		h.d.crash()
		return 0, ErrCrashed
	}
	h.f.pending = append(h.f.pending, p...)
	return len(p), nil
}

func (h *handle) Sync() error {
	h.d.mu.Lock()
	defer h.d.mu.Unlock()
	if h.d.crashed {
		return ErrCrashed
	}
	h.d.syncs++
	if h.d.cfg.FailSyncAt > 0 && h.d.syncs == h.d.cfg.FailSyncAt {
		h.d.ops++ // the attempt still counts as a mutating op
		return ErrSyncFailed
	}
	if h.d.step() {
		tear := min(h.d.cfg.TornBytes, len(h.f.pending))
		h.f.durable = append(h.f.durable, h.f.pending[:tear]...)
		h.f.pending = nil
		h.d.crash()
		return ErrCrashed
	}
	h.f.durable = append(h.f.durable, h.f.pending...)
	h.f.pending = nil
	return nil
}

func (h *handle) Close() error {
	h.d.mu.Lock()
	defer h.d.mu.Unlock()
	if h.d.crashed {
		return ErrCrashed
	}
	return nil
}
