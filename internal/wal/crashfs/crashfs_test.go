package crashfs

import (
	"bytes"
	"errors"
	"io"
	"path/filepath"
	"testing"

	"cspm/internal/wal"
)

// write is a helper: create name, write data, optionally sync, close.
func write(t *testing.T, d *Dir, name string, data []byte, sync bool) error {
	t.Helper()
	f, err := d.Create(name)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		return err
	}
	if sync {
		if err := f.Sync(); err != nil {
			return err
		}
	}
	return f.Close()
}

func TestPendingBytesDieInCrash(t *testing.T) {
	d := New(Config{CrashAtOp: 3}) // Create(1), Write(2), Create(3) crashes
	if err := write(t, d, "/x/a", []byte("doomed"), false); err != nil {
		t.Fatal(err)
	}
	// Crash on an op that touches a DIFFERENT file: /x/a's unsynced bytes
	// must die with the page cache. (A crash during a write to the same
	// file flushes its earlier pending bytes first — see TestTornWrite.)
	if _, err := d.Create("/x/b"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("crash-point create = %v, want ErrCrashed", err)
	}
	if !d.Crashed() {
		t.Fatal("Crashed() = false after the injected crash")
	}
	data, ok := d.Recover().DurableBytes("/x/a")
	if !ok || len(data) != 0 {
		t.Fatalf("recovered %q (exists=%v), want empty file: pending bytes must die", data, ok)
	}
}

func TestSyncPromotesToDurable(t *testing.T) {
	d := New(Config{CrashAtOp: 4}) // Create, Write, Sync, then crash on next op
	if err := write(t, d, "/x/a", []byte("committed"), true); err != nil {
		t.Fatal(err)
	}
	if err := d.Remove("/x/a"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("op 4 = %v, want ErrCrashed", err)
	}
	data, ok := d.Recover().DurableBytes("/x/a")
	if !ok || string(data) != "committed" {
		t.Fatalf("recovered %q, want %q: synced bytes must survive", data, "committed")
	}
}

func TestTornWrite(t *testing.T) {
	d := New(Config{CrashAtOp: 4, TornBytes: 3})
	if err := write(t, d, "/x/a", []byte("old-"), true); err != nil { // ops 1-3
		t.Fatal(err)
	}
	f, err := d.OpenAppend("/x/a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("torn-write")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("crashing write = %v, want ErrCrashed", err)
	}
	data, _ := d.Recover().DurableBytes("/x/a")
	if string(data) != "old-tor" {
		t.Fatalf("recovered %q, want %q: a torn write leaves a contiguous 3-byte prefix", data, "old-tor")
	}
}

func TestTornSyncFlushesPrefixOfPending(t *testing.T) {
	d := New(Config{CrashAtOp: 3, TornBytes: 2}) // Create(1), Write(2), Sync(3) crashes
	f, err := d.Create("/x/a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("pending")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("crashing sync = %v, want ErrCrashed", err)
	}
	data, _ := d.Recover().DurableBytes("/x/a")
	if string(data) != "pe" {
		t.Fatalf("recovered %q, want %q", data, "pe")
	}
}

func TestFailSyncAtSurvives(t *testing.T) {
	d := New(Config{FailSyncAt: 1})
	f, err := d.Create("/x/a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("volatile")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); !errors.Is(err, ErrSyncFailed) {
		t.Fatalf("injected sync failure = %v, want ErrSyncFailed", err)
	}
	if d.Crashed() {
		t.Fatal("a failed fsync is not a crash: the process survives")
	}
	// The failed sync promoted nothing; a later crash-free sync still works.
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	data, _ := d.Recover().DurableBytes("/x/a")
	if string(data) != "volatile" {
		t.Fatalf("recovered %q after the retried sync", data)
	}
}

func TestEveryOpFailsAfterCrash(t *testing.T) {
	d := New(Config{CrashAtOp: 1})
	if _, err := d.Create("/x/a"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("crash-point create = %v", err)
	}
	if _, err := d.Create("/x/b"); !errors.Is(err, ErrCrashed) {
		t.Fatal("post-crash Create succeeded")
	}
	if _, err := d.List("/x"); !errors.Is(err, ErrCrashed) {
		t.Fatal("post-crash List succeeded")
	}
	if _, err := d.Open("/x/a"); !errors.Is(err, ErrCrashed) {
		t.Fatal("post-crash Open succeeded")
	}
	if err := d.SyncDir("/x"); !errors.Is(err, ErrCrashed) {
		t.Fatal("post-crash SyncDir succeeded")
	}
}

func TestListIsDirScopedAndSorted(t *testing.T) {
	d := New(Config{})
	for _, name := range []string{"/w/b.wal", "/w/a.wal", "/other/c.wal", "/w/sub/d.wal"} {
		if err := write(t, d, name, nil, false); err != nil {
			t.Fatal(err)
		}
	}
	names, err := d.List("/w")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "a.wal" || names[1] != "b.wal" {
		t.Fatalf("List(/w) = %v, want [a.wal b.wal] (sorted, non-recursive)", names)
	}
	empty, err := d.List("/nope")
	if err != nil || len(empty) != 0 {
		t.Fatalf("List of a missing dir = %v, %v; want empty, nil", empty, err)
	}
}

func TestShortReads(t *testing.T) {
	d := New(Config{MaxReadChunk: 3})
	payload := []byte("0123456789")
	if err := write(t, d, "/x/a", payload, true); err != nil {
		t.Fatal(err)
	}
	f, err := d.Open("/x/a")
	if err != nil {
		t.Fatal(err)
	}
	// Every read returns at most 3 bytes; io.ReadFull-style callers must
	// loop. Read it all through io.ReadAll and one big ReadFull.
	got, err := io.ReadAll(f)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("chunked ReadAll = %q, %v", got, err)
	}
	f2, _ := d.Open("/x/a")
	buf := make([]byte, len(payload))
	if _, err := io.ReadFull(f2, buf); err != nil || !bytes.Equal(buf, payload) {
		t.Fatalf("chunked ReadFull = %q, %v", buf, err)
	}
}

func TestTruncate(t *testing.T) {
	d := New(Config{})
	if err := write(t, d, "/x/a", []byte("durable"), true); err != nil {
		t.Fatal(err)
	}
	f, _ := d.OpenAppend("/x/a")
	f.Write([]byte("-pending"))
	if err := d.Truncate("/x/a", 9); err != nil { // cuts into pending
		t.Fatal(err)
	}
	f.Sync()
	data, _ := d.Recover().DurableBytes("/x/a")
	if string(data) != "durable-p" {
		t.Fatalf("after truncate-into-pending: %q", data)
	}
	if err := d.Truncate("/x/a", 3); err != nil { // cuts into durable
		t.Fatal(err)
	}
	data, _ = d.Recover().DurableBytes("/x/a")
	if string(data) != "dur" {
		t.Fatalf("after truncate-into-durable: %q", data)
	}
}

func TestOpsCountIsDeterministic(t *testing.T) {
	workload := func(d *Dir) {
		write(t, d, "/x/a", []byte("one"), true)
		write(t, d, "/x/b", []byte("two"), false)
		d.SyncDir("/x")
		d.Remove("/x/b")
	}
	d1, d2 := New(Config{}), New(Config{})
	workload(d1)
	workload(d2)
	if d1.Ops() != d2.Ops() || d1.Ops() == 0 {
		t.Fatalf("identical workloads counted %d and %d ops", d1.Ops(), d2.Ops())
	}
	// Every op index in [1, N] is reachable as a crash point.
	for k := 1; k <= d1.Ops(); k++ {
		dk := New(Config{CrashAtOp: k})
		workload(dk)
		if !dk.Crashed() {
			t.Fatalf("crash at op %d/%d never fired", k, d1.Ops())
		}
	}
}

// TestDriveWAL wires crashfs under the real WAL as a smoke check of the FS
// contract: a clean (fault-free) crashfs run must behave exactly like disk.
func TestDriveWAL(t *testing.T) {
	d := New(Config{})
	dir := filepath.Join("/w", "wal")
	l, recs, err := wal.Open(dir, wal.Options{FS: d})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh crashfs WAL replayed %d records", len(recs))
	}
	for _, p := range []string{"a", "b", "c"} {
		if _, err := l.Append([]byte(p)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	l2, recs, err := wal.Open(dir, wal.Options{FS: d.Recover()})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(recs) != 3 || string(recs[2].Payload) != "c" {
		t.Fatalf("recovered %d records %+v, want the 3 synced appends", len(recs), recs)
	}
}
