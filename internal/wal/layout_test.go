package wal

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestValidNamespace(t *testing.T) {
	good := []string{"default", "a", "0", "prod-eu-1", "tenant_42", strings.Repeat("x", MaxNamespaceLen)}
	for _, ns := range good {
		if err := ValidNamespace(ns); err != nil {
			t.Errorf("ValidNamespace(%q) = %v, want nil", ns, err)
		}
	}
	bad := []string{
		"", ".", "..", ".hidden", "-lead", "_lead",
		"Upper", "sp ace", "sl/ash", "dot.ted", "back\\slash",
		strings.Repeat("x", MaxNamespaceLen+1),
		QuarantineDir,
	}
	for _, ns := range bad {
		if err := ValidNamespace(ns); err == nil {
			t.Errorf("ValidNamespace(%q) accepted", ns)
		}
	}
}

func TestLayoutPaths(t *testing.T) {
	l := Layout{Root: "/srv/cspm"}
	if got := l.NamespaceDir("prod"); got != filepath.Join("/srv/cspm", "prod") {
		t.Errorf("NamespaceDir = %q", got)
	}
	if got := l.WALDir("prod"); got != filepath.Join("/srv/cspm", "prod", "wal") {
		t.Errorf("WALDir = %q", got)
	}
	if got := l.CheckpointDir("prod"); got != filepath.Join("/srv/cspm", "prod", "checkpoint") {
		t.Errorf("CheckpointDir = %q", got)
	}
}

func TestLayoutNamespacesScan(t *testing.T) {
	l := Layout{Root: filepath.Join(t.TempDir(), "missing")}
	// A missing root is an empty fleet.
	if got, err := l.Namespaces(); err != nil || got != nil {
		t.Fatalf("missing root: (%v, %v), want (nil, nil)", got, err)
	}

	root := t.TempDir()
	l = Layout{Root: root}
	for _, ns := range []string{"beta", "alpha", "z9"} {
		if err := os.MkdirAll(l.WALDir(ns), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	// Strays that must be skipped: the quarantine dir, invalid names, files.
	if err := os.MkdirAll(filepath.Join(root, QuarantineDir, "alpha.1"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(root, "Not-Valid"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(root, "afile"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := l.Namespaces()
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"alpha", "beta", "z9"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Namespaces() = %v, want %v", got, want)
	}
}

// TestLayoutQuarantine pins the never-unlink contract: deleting renames the
// whole subtree (WAL bytes intact) and repeated delete cycles pick fresh
// suffixes instead of clobbering earlier trees.
func TestLayoutQuarantine(t *testing.T) {
	l := Layout{Root: t.TempDir()}
	payload := []byte("acked-batch-bytes")
	mkNS := func() {
		if err := os.MkdirAll(l.WALDir("prod"), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(l.WALDir("prod"), "00000000000000000001.wal"), payload, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	mkNS()
	dst1, err := l.Quarantine("prod")
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(dst1) != "prod.1" {
		t.Errorf("first quarantine at %q, want suffix .1", dst1)
	}
	if _, err := os.Stat(l.NamespaceDir("prod")); !os.IsNotExist(err) {
		t.Error("namespace dir still present after quarantine")
	}
	got, err := os.ReadFile(filepath.Join(dst1, "wal", "00000000000000000001.wal"))
	if err != nil || string(got) != string(payload) {
		t.Fatalf("quarantined WAL bytes = (%q, %v), want the acked payload intact", got, err)
	}

	// Second cycle: a re-created namespace quarantines beside, not over,
	// the first tree.
	mkNS()
	dst2, err := l.Quarantine("prod")
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(dst2) != "prod.2" {
		t.Errorf("second quarantine at %q, want suffix .2", dst2)
	}
	if _, err := os.Stat(dst1); err != nil {
		t.Errorf("first quarantined tree gone after second quarantine: %v", err)
	}

	// Quarantining a namespace that has no subtree fails cleanly.
	if _, err := l.Quarantine("ghost"); err == nil {
		t.Error("quarantine of a missing namespace succeeded")
	}
	if _, err := l.Quarantine("Bad Name"); err == nil {
		t.Error("quarantine accepted an invalid namespace")
	}
}
