package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// appendAll appends payloads and fails the test on any error.
func appendAll(t *testing.T, l *Log, payloads ...[]byte) []uint64 {
	t.Helper()
	var seqs []uint64
	for _, p := range payloads {
		seq, err := l.Append(p)
		if err != nil {
			t.Fatalf("Append(%q): %v", p, err)
		}
		seqs = append(seqs, seq)
	}
	return seqs
}

func requireRecords(t *testing.T, recs []Record, want ...string) {
	t.Helper()
	if len(recs) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(recs), len(want))
	}
	for i, r := range recs {
		if r.Seq != uint64(i+1) {
			t.Fatalf("record %d has seq %d, want %d (sequences must be dense)", i, r.Seq, i+1)
		}
		if string(r.Payload) != want[i] {
			t.Fatalf("record %d payload %q, want %q", i, r.Payload, want[i])
		}
	}
}

func TestOpenEmptyDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	l, recs, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if len(recs) != 0 || l.TornTail() || l.NextSeq() != 1 {
		t.Fatalf("fresh log: recs=%d torn=%v next=%d, want 0/false/1", len(recs), l.TornTail(), l.NextSeq())
	}
}

func TestAppendReplayRoundtrip(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	seqs := appendAll(t, l, []byte("alpha"), []byte("beta"), []byte(""), []byte("gamma"))
	for i, s := range seqs {
		if s != uint64(i+1) {
			t.Fatalf("append %d returned seq %d", i, s)
		}
	}
	l.Close()

	l2, recs, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	requireRecords(t, recs, "alpha", "beta", "", "gamma")
	if l2.TornTail() {
		t.Fatal("clean log reported a torn tail")
	}
	// The reopened log resumes the sequence.
	if got := appendAll(t, l2, []byte("delta"))[0]; got != 5 {
		t.Fatalf("resumed append got seq %d, want 5", got)
	}
}

func TestSegmentRotationAndCompaction(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments: every record rotates.
	l, _, err := Open(dir, Options{SegmentBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, []byte("a"), []byte("b"), []byte("c"), []byte("d"))
	if n := l.Segments(); n != 4 {
		t.Fatalf("after 4 appends at 1-byte segments: %d segments, want 4", n)
	}
	// Compacting up to 2 removes the two closed segments fully covered; the
	// segment holding record 4 is active and must survive even if covered.
	if err := l.Compact(2); err != nil {
		t.Fatal(err)
	}
	if n := l.Segments(); n != 2 {
		t.Fatalf("after Compact(2): %d segments, want 2", n)
	}
	if err := l.Compact(99); err != nil {
		t.Fatal(err)
	}
	if n := l.Segments(); n != 1 {
		t.Fatalf("Compact past the end must keep the active segment: %d segments", n)
	}
	l.Close()

	l2, recs, err := Open(dir, Options{SegmentBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	// Records 1-3 are gone (compacted); replay resumes mid-sequence.
	if len(recs) != 1 || recs[0].Seq != 4 || string(recs[0].Payload) != "d" {
		t.Fatalf("replay after compaction: %+v, want only seq 4 %q", recs, "d")
	}
	if got := appendAll(t, l2, []byte("e"))[0]; got != 5 {
		t.Fatalf("append after compacted reopen got seq %d, want 5", got)
	}
}

func TestTornTailTruncated(t *testing.T) {
	for _, cut := range []int{1, recordHeader - 1, recordHeader + 2} {
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			dir := t.TempDir()
			l, _, err := Open(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			appendAll(t, l, []byte("keep-me"), []byte("torn-record"))
			l.Close()
			// Tear the tail: drop the last cut bytes of the final record.
			seg := filepath.Join(dir, segName(1))
			data, err := os.ReadFile(seg)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(seg, data[:len(data)-cut], 0o644); err != nil {
				t.Fatal(err)
			}

			l2, recs, err := Open(dir, Options{})
			if err != nil {
				t.Fatalf("torn tail must recover, got %v", err)
			}
			defer l2.Close()
			if !l2.TornTail() {
				t.Fatal("TornTail() = false after truncating a damaged tail")
			}
			requireRecords(t, recs, "keep-me")
			// The torn record's sequence is reused: it was never acknowledged.
			if got := appendAll(t, l2, []byte("reborn"))[0]; got != 2 {
				t.Fatalf("append after torn-tail recovery got seq %d, want 2", got)
			}
		})
	}
}

func TestCorruptPayloadTailTruncated(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, []byte("good"), []byte("flipped"))
	l.Close()
	seg := filepath.Join(dir, segName(1))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF // flip a payload bit in the last record
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, recs, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("CRC-failing tail must truncate, got %v", err)
	}
	defer l2.Close()
	if !l2.TornTail() {
		t.Fatal("bit flip in the final record must report a torn tail")
	}
	requireRecords(t, recs, "good")
}

func TestMidLogCorruptionRefused(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{SegmentBytes: 1}) // one record per segment
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, []byte("one"), []byte("two"), []byte("three"))
	l.Close()
	// Damage the MIDDLE segment: records after it are intact, so truncating
	// would silently lose acknowledged data — Open must refuse.
	seg := filepath.Join(dir, segName(2))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[recordHeader] ^= 0xFF
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, Options{SegmentBytes: 1}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open over mid-log damage = %v, want ErrCorrupt", err)
	}
}

func TestSegmentGapRefused(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{SegmentBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, []byte("one"), []byte("two"), []byte("three"))
	l.Close()
	// Remove the middle segment: a whole file of acknowledged records gone.
	if err := os.Remove(filepath.Join(dir, segName(2))); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, Options{SegmentBytes: 1}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open over a segment gap = %v, want ErrCorrupt", err)
	}
}

func TestOversizeRecordRejected(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Append(make([]byte, MaxRecordBytes+1)); err == nil {
		t.Fatal("oversize append succeeded")
	}
	// The bound check happens before any write: the log is NOT wedged.
	if _, err := l.Append([]byte("still-fine")); err != nil {
		t.Fatalf("log wedged by an oversize append: %v", err)
	}
}

// failSyncFile wraps the OS file, failing the Nth Sync across the whole FS.
type failSyncFS struct {
	FS
	calls *int
	at    int
}

type failSyncFile struct {
	File
	fs *failSyncFS
}

func (f *failSyncFS) Create(name string) (File, error) {
	inner, err := f.FS.Create(name)
	return &failSyncFile{File: inner, fs: f}, err
}

func (f *failSyncFS) OpenAppend(name string) (File, error) {
	inner, err := f.FS.OpenAppend(name)
	return &failSyncFile{File: inner, fs: f}, err
}

func (f *failSyncFile) Sync() error {
	*f.fs.calls++
	if *f.fs.calls == f.fs.at {
		return errors.New("injected sync failure")
	}
	return f.File.Sync()
}

func TestFailedFsyncWedgesLog(t *testing.T) {
	dir := t.TempDir()
	calls := 0
	fs := &failSyncFS{FS: OS(), calls: &calls, at: 2}
	l, _, err := Open(dir, Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendAll(t, l, []byte("durable"))
	if _, err := l.Append([]byte("lost")); err == nil {
		t.Fatal("append with failed fsync succeeded — the caller would ack volatile data")
	}
	// Every later append fails with the same sticky error: the on-disk tail
	// is no longer trusted until a fresh Open re-establishes it.
	if _, err := l.Append([]byte("after")); err == nil || !strings.Contains(err.Error(), "wedged") {
		t.Fatalf("append after wedge = %v, want the sticky wedged error", err)
	}
	// Recovery via Open sees exactly the acknowledged prefix.
	l2, recs, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(recs) < 1 || string(recs[0].Payload) != "durable" {
		t.Fatalf("acknowledged record lost after wedge: %+v", recs)
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, []byte("x"))
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]byte("y")); err == nil {
		t.Fatal("append on a closed log succeeded")
	}
}

func TestNonSegmentFilesIgnored(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "MANIFEST"), []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	l, recs, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if len(recs) != 0 {
		t.Fatalf("non-segment files replayed as records: %+v", recs)
	}
}

func TestLargePayloadRoundtrip(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	big := bytes.Repeat([]byte{0xAB}, 1<<18)
	appendAll(t, l, big)
	l.Close()
	_, recs, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || !bytes.Equal(recs[0].Payload, big) {
		t.Fatal("large payload did not survive the roundtrip")
	}
}

func TestCompactEdgeCases(t *testing.T) {
	t.Run("upTo=0 removes nothing", func(t *testing.T) {
		dir := t.TempDir()
		l, _, err := Open(dir, Options{SegmentBytes: 1})
		if err != nil {
			t.Fatal(err)
		}
		appendAll(t, l, []byte("a"), []byte("b"), []byte("c"))
		if err := l.Compact(0); err != nil {
			t.Fatal(err)
		}
		if n := l.Segments(); n != 3 {
			t.Fatalf("Compact(0) left %d segments, want all 3", n)
		}
		l.Close()
		_, recs, err := Open(dir, Options{SegmentBytes: 1})
		if err != nil {
			t.Fatal(err)
		}
		requireRecords(t, recs, "a", "b", "c")
	})

	t.Run("upTo beyond last sealed segment keeps the active one", func(t *testing.T) {
		dir := t.TempDir()
		l, _, err := Open(dir, Options{SegmentBytes: 1})
		if err != nil {
			t.Fatal(err)
		}
		appendAll(t, l, []byte("a"), []byte("b"), []byte("c"))
		// upTo far past NextSeq-1: every sealed segment is covered, but the
		// active segment (holding record 3) must never be removed — a wedge
		// or crash before the next roll would otherwise lose its records.
		if err := l.Compact(1 << 40); err != nil {
			t.Fatal(err)
		}
		if n := l.Segments(); n != 1 {
			t.Fatalf("Compact far past the end left %d segments, want 1 (active)", n)
		}
		l.Close()
		_, recs, err := Open(dir, Options{SegmentBytes: 1})
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != 1 || recs[0].Seq != 3 || string(recs[0].Payload) != "c" {
			t.Fatalf("active-segment record lost: %+v, want only seq 3 %q", recs, "c")
		}
	})

	t.Run("only the active segment exists", func(t *testing.T) {
		dir := t.TempDir()
		l, _, err := Open(dir, Options{}) // default size: nothing ever rolls
		if err != nil {
			t.Fatal(err)
		}
		appendAll(t, l, []byte("a"), []byte("b"))
		for _, upTo := range []uint64{0, 1, 2, 99} {
			if err := l.Compact(upTo); err != nil {
				t.Fatalf("Compact(%d): %v", upTo, err)
			}
			if n := l.Segments(); n != 1 {
				t.Fatalf("Compact(%d) with only an active segment left %d segments, want 1", upTo, n)
			}
		}
		l.Close()
		_, recs, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		requireRecords(t, recs, "a", "b")
	})

	t.Run("partially covered sealed segment survives", func(t *testing.T) {
		dir := t.TempDir()
		// Two records per segment: seg1={1,2} seg2={3,4} seg3={5} (active).
		l, _, err := Open(dir, Options{SegmentBytes: 2 * (recordHeader + 1)})
		if err != nil {
			t.Fatal(err)
		}
		appendAll(t, l, []byte("1"), []byte("2"), []byte("3"), []byte("4"), []byte("5"))
		// upTo=3 covers seg1 fully but only half of seg2: record 4 is
		// unacknowledged by the caller's fold, so seg2 must survive.
		if err := l.Compact(3); err != nil {
			t.Fatal(err)
		}
		if n := l.Segments(); n != 2 {
			t.Fatalf("Compact(3) left %d segments, want 2 (half-covered + active)", n)
		}
		l.Close()
		_, recs, err := Open(dir, Options{SegmentBytes: 2 * (recordHeader + 1)})
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != 3 || recs[0].Seq != 3 {
			t.Fatalf("replay after partial compaction: %+v, want seqs 3..5", recs)
		}
	})
}

// appendAt asserts a single AppendAt call's outcome.
func appendAt(t *testing.T, l *Log, seq uint64, payload string, wantWrote bool) {
	t.Helper()
	wrote, err := l.AppendAt(seq, []byte(payload))
	if err != nil {
		t.Fatalf("AppendAt(%d, %q): %v", seq, payload, err)
	}
	if wrote != wantWrote {
		t.Fatalf("AppendAt(%d, %q) wrote=%v, want %v", seq, payload, wrote, wantWrote)
	}
}

func TestAppendAtMirrorsExplicitSequences(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// A fresh mirror may start mid-stream: the leader's checkpoint folded
	// everything below 7, so the first shipped record is 7.
	appendAt(t, l, 7, "seven", true)
	appendAt(t, l, 8, "eight", true)
	// Re-shipping an already-held record is a silent no-op, not an error.
	appendAt(t, l, 7, "seven-again", false)
	appendAt(t, l, 8, "eight-again", false)
	appendAt(t, l, 9, "nine", true)
	// A gap would fabricate a hole recovery must refuse as acknowledged loss.
	if _, err := l.AppendAt(11, []byte("gap")); err == nil {
		t.Fatal("AppendAt with a sequence gap succeeded")
	}
	if _, err := l.AppendAt(0, []byte("zero")); err == nil {
		t.Fatal("AppendAt(0) succeeded; sequences are 1-based")
	}
	if next := l.NextSeq(); next != 10 {
		t.Fatalf("NextSeq() = %d, want 10", next)
	}
	l.Close()

	l2, recs, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	want := []struct {
		seq uint64
		pay string
	}{{7, "seven"}, {8, "eight"}, {9, "nine"}}
	if len(recs) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(recs), len(want))
	}
	for i, w := range want {
		if recs[i].Seq != w.seq || string(recs[i].Payload) != w.pay {
			t.Fatalf("record %d = {%d %q}, want {%d %q}", i, recs[i].Seq, recs[i].Payload, w.seq, w.pay)
		}
	}
	// The sequence jump is only legal on a COMPLETELY empty log: after the
	// reopen the log holds records, so a jump is now a gap.
	if _, err := l2.AppendAt(20, []byte("jump")); err == nil {
		t.Fatal("AppendAt jump on a non-empty log succeeded")
	}
	// Normal Append interoperates: it continues the mirrored sequence.
	if got := appendAll(t, l2, []byte("ten"))[0]; got != 10 {
		t.Fatalf("Append after mirroring got seq %d, want 10", got)
	}
}

func TestAppendAtJumpOnlyWhenEmpty(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendAll(t, l, []byte("first"))
	// nextSeq is 2; 3 would leave a gap even though the log was "almost" new.
	if _, err := l.AppendAt(3, []byte("gap")); err == nil {
		t.Fatal("AppendAt(3) after one append succeeded")
	}
	// seq == NextSeq appends normally.
	appendAt(t, l, 2, "second", true)
	// Oversize payloads are rejected without wedging, same as Append.
	if _, err := l.AppendAt(3, make([]byte, MaxRecordBytes+1)); err == nil {
		t.Fatal("oversize AppendAt succeeded")
	}
	appendAt(t, l, 3, "third", true)
}
