package wal

import (
	"bytes"
	"testing"
)

func TestPayloadVersioningRoundtrip(t *testing.T) {
	body := []byte("batch-bytes")
	for _, v := range []uint64{2, 3, 1 << 40} {
		enc := EncodePayload(v, body)
		gv, gb, err := DecodePayload(enc)
		if err != nil {
			t.Fatalf("v%d: %v", v, err)
		}
		if gv != v || !bytes.Equal(gb, body) {
			t.Fatalf("v%d decoded to (v%d, %q)", v, gv, gb)
		}
	}
}

func TestPayloadVersioningLegacy(t *testing.T) {
	// Anything not starting 0x00 — including empty — is version 1, unchanged.
	for _, p := range [][]byte{nil, {}, []byte("gob..."), {0x2a, 0x00, 0x57}} {
		v, body, err := DecodePayload(p)
		if err != nil {
			t.Fatalf("%q: %v", p, err)
		}
		if v != 1 || !bytes.Equal(body, p) {
			t.Fatalf("%q decoded to (v%d, %q)", p, v, body)
		}
	}
}

func TestPayloadVersioningCorrupt(t *testing.T) {
	cases := [][]byte{
		{0x00},                      // bare magic byte
		{0x00, 'W', 'A'},            // truncated magic
		{0x00, 'W', 'A', 'L'},       // magic without version
		{0x00, 'W', 'A', 'X', 0x02}, // wrong magic
		append([]byte{0x00, 'W', 'A', 'L'}, 0x01),                              // version 1 framed
		append([]byte{0x00, 'W', 'A', 'L'}, bytes.Repeat([]byte{0xff}, 11)...), // overlong uvarint
	}
	for _, p := range cases {
		if _, _, err := DecodePayload(p); err == nil {
			t.Errorf("DecodePayload(%x) accepted corrupt input", p)
		}
	}
}

func TestEncodePayloadRejectsLegacyVersions(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("EncodePayload(1, ...) did not panic")
		}
	}()
	EncodePayload(1, []byte("x"))
}
