package cli

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"testing"
	"time"
)

// TestServeForcedDrainDeadline pins the hard shutdown bound: a client that
// never finishes its request cannot hold the drain open past the deadline —
// the connection is force-closed and shutdown still completes.
func TestServeForcedDrainDeadline(t *testing.T) {
	addr, shutdown, err := StartServe(strings.NewReader(twoIslandText), ServeConfig{
		Listen: "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	// A stuck client: headers promise a body that never arrives, so the
	// handler blocks reading it and the connection stays active forever.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "POST /v1/complete HTTP/1.1\r\nHost: %s\r\nContent-Type: application/json\r\nContent-Length: 1000\r\n\r\n", addr)
	// Wait until the handler actually has the request before draining.
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get("http://" + addr + "/v1/metrics")
		if err != nil {
			t.Fatal(err)
		}
		var met struct {
			Complete uint64 `json:"requests_complete"`
		}
		err = json.NewDecoder(resp.Body).Decode(&met)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if met.Complete > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("stuck request never reached the handler")
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- shutdown(ctx) }()
	select {
	case err := <-done:
		// The graceful drain must report that it gave up; the force-close
		// path then completed the rest of the shutdown regardless.
		if err == nil {
			t.Fatal("shutdown with a stuck connection reported a clean drain")
		}
	case <-time.After(20 * time.Second):
		t.Fatal("shutdown hung: the drain deadline was not enforced")
	}
	// The stuck connection was force-closed out from under the client.
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("stuck connection still open after forced shutdown")
	}
}

// TestAwaitShutdownGraceful: one signal triggers the drain with the
// configured deadline and the drain's result is returned as-is.
func TestAwaitShutdownGraceful(t *testing.T) {
	sig := make(chan os.Signal, 1)
	sig <- os.Interrupt
	var buf bytes.Buffer
	called := false
	err := AwaitShutdown(sig, time.Minute, func(ctx context.Context) error {
		called = true
		if dl, ok := ctx.Deadline(); !ok || time.Until(dl) > time.Minute {
			t.Errorf("drain context deadline = %v, %v; want within the drain timeout", dl, ok)
		}
		return nil
	}, func(code int) { t.Errorf("exit(%d) called on a graceful drain", code) }, &buf)
	if err != nil || !called {
		t.Fatalf("AwaitShutdown = %v (drain called=%v)", err, called)
	}
	if !strings.Contains(buf.String(), "draining") {
		t.Fatalf("no drain notice logged: %q", buf.String())
	}
}

// TestAwaitShutdownSecondSignalExits: a second signal must bypass a hung
// drain and exit immediately with the conventional SIGINT status.
func TestAwaitShutdownSecondSignalExits(t *testing.T) {
	sig := make(chan os.Signal, 2)
	exited := make(chan int, 1)
	release := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- AwaitShutdown(sig, time.Minute, func(context.Context) error {
			<-release // the drain hangs until the test releases it
			return nil
		}, func(code int) { exited <- code }, io.Discard)
	}()
	sig <- os.Interrupt
	sig <- os.Interrupt
	select {
	case code := <-exited:
		if code != 130 {
			t.Fatalf("second signal exited with %d, want 130", code)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("second signal did not trigger an immediate exit")
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}
