// Package cli implements the logic behind the cspm and gengraph commands so
// it can be tested without spawning processes. The main packages stay thin
// flag-parsing shells.
package cli

import (
	"bufio"
	"fmt"
	"io"
	"os"

	"cspm/internal/alarm"
	"cspm/internal/cspm"
	"cspm/internal/dataset"
	"cspm/internal/graph"
	"cspm/internal/invdb"
	"cspm/internal/shardcache"
	"cspm/internal/slim"
)

// MineConfig mirrors cmd/cspm's flags.
type MineConfig struct {
	Variant   string // "partial" or "basic"
	MultiCore bool
	Top       int
	Stats     bool
	MultiOnly bool
	// Shards > 1 mines through cspm.MineSharded with that many shards;
	// setting ShardStrategy to "components" or "edgecut" also opts into
	// sharded mining (with an automatic shard count when Shards is 0).
	// Shards ≤ 1 with ShardStrategy empty or "auto" mines unsharded.
	// Incompatible with MultiCore.
	Shards        int
	ShardStrategy string
	// Cache mines through cspm.MineShardedCached with a shard-result cache
	// (in-memory unless CacheDir names a directory to persist shard blobs
	// under; CacheDir implies Cache). A single cspm invocation only benefits
	// with CacheDir, where warm entries survive across runs. Incompatible
	// with MultiCore and with the edgecut shard strategy (cached mining is
	// component-grained).
	Cache    bool
	CacheDir string
}

// parseShardStrategy maps the flag spelling to the miner's constant.
func parseShardStrategy(s string) (cspm.ShardStrategy, error) {
	switch s {
	case "", "auto":
		return cspm.ShardAuto, nil
	case "components":
		return cspm.ShardComponents, nil
	case "edgecut":
		return cspm.ShardEdgeCut, nil
	default:
		return 0, fmt.Errorf("unknown shard strategy %q (want auto, components or edgecut)", s)
	}
}

// Mine reads a graph from r, mines it per cfg, and writes the ranked
// patterns to w.
func Mine(r io.Reader, w io.Writer, cfg MineConfig) error {
	// Validate EVERY option — flag spellings, ranges, combinations, and the
	// cache directory — before touching the (possibly huge) input, so typos
	// surface as instant usage errors, never as silent behaviour changes,
	// panics, or errors minutes into a graph load.
	strategy, err := parseShardStrategy(cfg.ShardStrategy)
	if err != nil {
		return err
	}
	variant := cspm.Partial
	switch cfg.Variant {
	case "", "partial":
	case "basic":
		variant = cspm.Basic
	default:
		return fmt.Errorf("unknown variant %q (want partial or basic)", cfg.Variant)
	}
	if cfg.Top < 0 {
		return fmt.Errorf("-top must be >= 0, got %d", cfg.Top)
	}
	sharded := cfg.Shards > 1 || strategy != cspm.ShardAuto
	if sharded && cfg.MultiCore {
		return fmt.Errorf("-multicore cannot be combined with sharded mining (multi-value coresets are mined globally)")
	}
	cached := cfg.Cache || cfg.CacheDir != ""
	if cached && cfg.MultiCore {
		return fmt.Errorf("-multicore cannot be combined with the shard cache (multi-value coresets are mined globally)")
	}
	if cached && strategy == cspm.ShardEdgeCut {
		return fmt.Errorf("-shard-strategy edgecut cannot be combined with the shard cache (cached mining is component-grained)")
	}
	shardOpts := cspm.Options{
		Variant: variant, CollectStats: true,
		Shards: cfg.Shards, ShardStrategy: strategy,
	}
	if err := shardOpts.Validate(); err != nil {
		return err
	}
	var cache *shardcache.Cache
	if cached {
		if cfg.CacheDir != "" {
			cache, err = shardcache.Open(0, cfg.CacheDir)
			if err != nil {
				return err
			}
		} else {
			cache = shardcache.New(0)
		}
	}
	g, err := graph.Load(r)
	if err != nil {
		return err
	}
	var model *cspm.Model
	switch {
	case cached:
		model = cspm.MineShardedCached(g, shardOpts, cache)
	case sharded:
		model = cspm.MineSharded(g, shardOpts)
	case cfg.MultiCore:
		res := slim.Mine(slim.VertexTransactions(g), slim.Options{})
		coresets, positions := slim.ItemsetsAsCoresets(res)
		db, err := invdb.FromGraphWithCoresets(g, coresets, positions)
		if err != nil {
			return err
		}
		model = cspm.MineDB(db, g.Vocab(), cspm.Options{CollectStats: true})
	case variant == cspm.Basic:
		model = cspm.MineWithOptions(g, cspm.Options{Variant: cspm.Basic, CollectStats: true})
	default:
		model = cspm.Mine(g)
	}
	if cfg.Stats {
		fmt.Fprintf(w, "# graph: %s\n", g.ComputeStats())
		fmt.Fprintf(w, "# baseline DL: %.1f bits, final DL: %.1f bits (ratio %.3f)\n",
			model.BaselineDL, model.FinalDL, model.CompressionRatio())
		fmt.Fprintf(w, "# iterations: %d, gain evaluations: %d\n", model.Iterations, model.GainEvals)
		if model.ShardCount > 0 {
			fmt.Fprintf(w, "# shards: %d, refinement gain: %.1f bits\n", model.ShardCount, model.RefinementGain)
		}
		if model.CacheHits+model.CacheMisses > 0 {
			fmt.Fprintf(w, "# cache: %d hits, %d misses, %d evictions\n",
				model.CacheHits, model.CacheMisses, model.CacheEvictions)
		}
	}
	patterns := model.Patterns
	if cfg.MultiOnly {
		patterns = model.MultiLeaf()
	}
	if cfg.Top > 0 && cfg.Top < len(patterns) {
		patterns = patterns[:cfg.Top]
	}
	for _, p := range patterns {
		fmt.Fprintf(w, "%-60s fL=%-6d fc=%-6d conf=%.3f len=%.3f\n",
			p.Format(g.Vocab()), p.FL, p.FC, p.Confidence(), p.CodeLen)
	}
	return nil
}

// MineFile opens path ("-" means stdin) and mines it.
func MineFile(path string, w io.Writer, cfg MineConfig) error {
	var in io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	return Mine(in, w, cfg)
}

// Generate builds one of the named synthetic datasets.
func Generate(name string, seed int64, nodes int) (*graph.Graph, error) {
	switch name {
	case "dblp":
		return dataset.DBLP(seed), nil
	case "dblptrend":
		return dataset.DBLPTrend(seed), nil
	case "usflight":
		return dataset.USFlight(seed), nil
	case "pokec":
		cfg := dataset.DefaultPokec()
		cfg.Seed = seed
		if nodes > 0 {
			cfg.Nodes = nodes
		}
		return dataset.Pokec(cfg), nil
	case "planted":
		cfg := dataset.DefaultPlanted()
		cfg.Seed = seed
		g, _ := dataset.Planted(cfg)
		return g, nil
	case "islands":
		cfg := dataset.DefaultIslands()
		cfg.Seed = seed
		if nodes > 0 {
			// Interpret the override as the island count.
			cfg.Islands = nodes
		}
		return dataset.Islands(cfg), nil
	case "alarms":
		cfg := alarm.DefaultSim()
		cfg.Seed = seed
		log, _, err := alarm.Simulate(cfg)
		if err != nil {
			return nil, err
		}
		return log.WindowGraph(cfg.WindowSec), nil
	default:
		return nil, fmt.Errorf("unknown dataset %q", name)
	}
}

// WriteGraph emits g with a stats header in the Load format.
func WriteGraph(w io.Writer, g *graph.Graph, header string) error {
	bw := bufio.NewWriter(w)
	if header != "" {
		if _, err := fmt.Fprintf(bw, "# %s %s\n", header, g.ComputeStats()); err != nil {
			return err
		}
	}
	if err := graph.Write(bw, g); err != nil {
		return err
	}
	return bw.Flush()
}
