// Package cli implements the logic behind the cspm and gengraph commands so
// it can be tested without spawning processes. The main packages stay thin
// flag-parsing shells.
package cli

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"strings"
	"time"

	"cspm/internal/alarm"
	"cspm/internal/cspm"
	"cspm/internal/dataset"
	"cspm/internal/graph"
	"cspm/internal/invdb"
	"cspm/internal/obs"
	"cspm/internal/serve"
	"cspm/internal/shardcache"
	"cspm/internal/shardrpc"
	"cspm/internal/slim"
)

// LogConfig mirrors the -log-level and -log-format flags every command
// shares. The zero value means "info" level in "text" format.
type LogConfig struct {
	Level  string // debug, info, warn or error ("" = info)
	Format string // text or json ("" = text)
}

// Register installs the shared logging flags on fs.
func (c *LogConfig) Register(fs *flag.FlagSet) {
	fs.StringVar(&c.Level, "log-level", "", "minimum log level: debug, info, warn or error (default info)")
	fs.StringVar(&c.Format, "log-format", "", "log output format: text or json (default text)")
}

// Logger validates the config and builds its logger writing to w.
func (c LogConfig) Logger(w io.Writer) (*slog.Logger, error) {
	return obs.NewLogger(w, c.Level, c.Format)
}

// MineConfig mirrors cmd/cspm's flags.
type MineConfig struct {
	Variant   string // "partial" or "basic"
	MultiCore bool
	Top       int
	Stats     bool
	MultiOnly bool
	// Shards > 1 mines through cspm.MineSharded with that many shards;
	// setting ShardStrategy to "components" or "edgecut" also opts into
	// sharded mining (with an automatic shard count when Shards is 0).
	// Shards ≤ 1 with ShardStrategy empty or "auto" mines unsharded.
	// Incompatible with MultiCore.
	Shards        int
	ShardStrategy string
	// Cache mines through cspm.MineShardedCached with a shard-result cache
	// (in-memory unless CacheDir names a directory to persist shard blobs
	// under; CacheDir implies Cache). A single cspm invocation only benefits
	// with CacheDir, where warm entries survive across runs. Incompatible
	// with MultiCore and with the edgecut shard strategy (cached mining is
	// component-grained).
	Cache    bool
	CacheDir string
	// Remote mines through cspm.MineDistributed over the comma-separated
	// cspm-worker addresses ("" = local mining). Like the cache it is
	// component-grained, so it is incompatible with MultiCore and the
	// edgecut strategy; it composes with Cache/CacheDir (hits skip the
	// workers). RemoteTimeout bounds each job attempt, RemoteRetries the
	// re-submissions before local fallback, and RemoteNoFallback turns
	// exhausted jobs into errors instead of mining them locally.
	Remote           string
	RemoteTimeout    time.Duration
	RemoteRetries    int
	RemoteNoFallback bool
	// Log configures the run's structured diagnostics on stderr.
	Log LogConfig
}

// parseRemoteAddrs validates the -remote flag: a comma-separated list of
// host:port worker addresses.
func parseRemoteAddrs(s string) ([]string, error) {
	var addrs []string
	for _, a := range strings.Split(s, ",") {
		a = strings.TrimSpace(a)
		if a == "" {
			return nil, fmt.Errorf("empty worker address in -remote %q", s)
		}
		if _, _, err := net.SplitHostPort(a); err != nil {
			return nil, fmt.Errorf("bad worker address %q (want host:port): %v", a, err)
		}
		addrs = append(addrs, a)
	}
	return addrs, nil
}

// parseShardStrategy maps the flag spelling to the miner's constant.
func parseShardStrategy(s string) (cspm.ShardStrategy, error) {
	switch s {
	case "", "auto":
		return cspm.ShardAuto, nil
	case "components":
		return cspm.ShardComponents, nil
	case "edgecut":
		return cspm.ShardEdgeCut, nil
	default:
		return 0, fmt.Errorf("unknown shard strategy %q (want auto, components or edgecut)", s)
	}
}

// Mine reads a graph from r, mines it per cfg, and writes the ranked
// patterns to w.
func Mine(r io.Reader, w io.Writer, cfg MineConfig) error {
	// Validate EVERY option — flag spellings, ranges, combinations, and the
	// cache directory — before touching the (possibly huge) input, so typos
	// surface as instant usage errors, never as silent behaviour changes,
	// panics, or errors minutes into a graph load.
	logger, err := cfg.Log.Logger(os.Stderr)
	if err != nil {
		return err
	}
	strategy, err := parseShardStrategy(cfg.ShardStrategy)
	if err != nil {
		return err
	}
	variant := cspm.Partial
	switch cfg.Variant {
	case "", "partial":
	case "basic":
		variant = cspm.Basic
	default:
		return fmt.Errorf("unknown variant %q (want partial or basic)", cfg.Variant)
	}
	if cfg.Top < 0 {
		return fmt.Errorf("-top must be >= 0, got %d", cfg.Top)
	}
	sharded := cfg.Shards > 1 || strategy != cspm.ShardAuto
	if sharded && cfg.MultiCore {
		return fmt.Errorf("-multicore cannot be combined with sharded mining (multi-value coresets are mined globally)")
	}
	cached := cfg.Cache || cfg.CacheDir != ""
	if cached && cfg.MultiCore {
		return fmt.Errorf("-multicore cannot be combined with the shard cache (multi-value coresets are mined globally)")
	}
	if cached && strategy == cspm.ShardEdgeCut {
		return fmt.Errorf("-shard-strategy edgecut cannot be combined with the shard cache (cached mining is component-grained)")
	}
	remote := cfg.Remote != ""
	var workerAddrs []string
	if remote {
		if workerAddrs, err = parseRemoteAddrs(cfg.Remote); err != nil {
			return err
		}
		if cfg.MultiCore {
			return fmt.Errorf("-multicore cannot be combined with -remote (multi-value coresets are mined globally)")
		}
		if strategy == cspm.ShardEdgeCut {
			return fmt.Errorf("-shard-strategy edgecut cannot be combined with -remote (distributed mining is component-grained)")
		}
	} else if cfg.RemoteTimeout != 0 || cfg.RemoteRetries != 0 || cfg.RemoteNoFallback {
		return fmt.Errorf("-remote-timeout, -remote-retries and -remote-no-fallback require -remote")
	}
	distOpts := cspm.DistributedOptions{
		Retries: cfg.RemoteRetries, Timeout: cfg.RemoteTimeout, NoFallback: cfg.RemoteNoFallback,
	}
	if err := distOpts.Validate(); err != nil {
		return err
	}
	shardOpts := cspm.Options{
		Variant: variant, CollectStats: true,
		Shards: cfg.Shards, ShardStrategy: strategy,
	}
	if err := shardOpts.Validate(); err != nil {
		return err
	}
	var cache *shardcache.Cache
	if cached {
		if cfg.CacheDir != "" {
			cache, err = shardcache.Open(0, cfg.CacheDir)
			if err != nil {
				return err
			}
		} else {
			cache = shardcache.New(0)
		}
	}
	// Dial the workers before the (possibly huge) graph load, so an
	// unreachable fleet fails as fast as a typo'd flag.
	var transport shardrpc.Transport
	if remote {
		if transport, err = shardrpc.Dial(workerAddrs); err != nil {
			return err
		}
		defer transport.Close()
	}
	g, err := graph.Load(r)
	if err != nil {
		return err
	}
	logger.Debug("graph loaded", "vertices", g.NumVertices(), "edges", g.NumEdges())
	mineStart := time.Now()
	var model *cspm.Model
	switch {
	case remote:
		distOpts.Options = shardOpts
		distOpts.Transport = transport
		distOpts.Cache = cache
		model, err = cspm.MineDistributed(g, distOpts)
		if err != nil {
			return err
		}
	case cached:
		model = cspm.MineShardedCached(g, shardOpts, cache)
	case sharded:
		model = cspm.MineSharded(g, shardOpts)
	case cfg.MultiCore:
		res := slim.Mine(slim.VertexTransactions(g), slim.Options{})
		coresets, positions := slim.ItemsetsAsCoresets(res)
		db, err := invdb.FromGraphWithCoresets(g, coresets, positions)
		if err != nil {
			return err
		}
		model = cspm.MineDB(db, g.Vocab(), cspm.Options{CollectStats: true})
	case variant == cspm.Basic:
		model = cspm.MineWithOptions(g, cspm.Options{Variant: cspm.Basic, CollectStats: true})
	default:
		model = cspm.Mine(g)
	}
	logger.Debug("mining finished", "patterns", len(model.Patterns),
		"seconds", time.Since(mineStart).Seconds(), "iterations", model.Iterations)
	if cfg.Stats {
		fmt.Fprintf(w, "# graph: %s\n", g.ComputeStats())
		fmt.Fprintf(w, "# baseline DL: %.1f bits, final DL: %.1f bits (ratio %.3f)\n",
			model.BaselineDL, model.FinalDL, model.CompressionRatio())
		fmt.Fprintf(w, "# iterations: %d, gain evaluations: %d\n", model.Iterations, model.GainEvals)
		if model.ShardCount > 0 {
			fmt.Fprintf(w, "# shards: %d, refinement gain: %.1f bits\n", model.ShardCount, model.RefinementGain)
		}
		if model.CacheHits+model.CacheMisses > 0 {
			fmt.Fprintf(w, "# cache: %d hits, %d misses, %d evictions\n",
				model.CacheHits, model.CacheMisses, model.CacheEvictions)
		}
		if model.RemoteJobs > 0 {
			fmt.Fprintf(w, "# remote: %d jobs, %d retries, %d fallbacks\n",
				model.RemoteJobs, model.RemoteRetries, model.LocalFallbacks)
		}
	}
	patterns := model.Patterns
	if cfg.MultiOnly {
		patterns = model.MultiLeaf()
	}
	if cfg.Top > 0 && cfg.Top < len(patterns) {
		patterns = patterns[:cfg.Top]
	}
	for _, p := range patterns {
		fmt.Fprintf(w, "%-60s fL=%-6d fc=%-6d conf=%.3f len=%.3f\n",
			p.Format(g.Vocab()), p.FL, p.FC, p.Confidence(), p.CodeLen)
	}
	return nil
}

// MineFile opens path ("-" means stdin) and mines it.
func MineFile(path string, w io.Writer, cfg MineConfig) error {
	var in io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	return Mine(in, w, cfg)
}

// Generate builds one of the named synthetic datasets.
func Generate(name string, seed int64, nodes int) (*graph.Graph, error) {
	switch name {
	case "dblp":
		return dataset.DBLP(seed), nil
	case "dblptrend":
		return dataset.DBLPTrend(seed), nil
	case "usflight":
		return dataset.USFlight(seed), nil
	case "pokec":
		cfg := dataset.DefaultPokec()
		cfg.Seed = seed
		if nodes > 0 {
			cfg.Nodes = nodes
		}
		return dataset.Pokec(cfg), nil
	case "planted":
		cfg := dataset.DefaultPlanted()
		cfg.Seed = seed
		g, _ := dataset.Planted(cfg)
		return g, nil
	case "islands":
		cfg := dataset.DefaultIslands()
		cfg.Seed = seed
		if nodes > 0 {
			// Interpret the override as the island count.
			cfg.Islands = nodes
		}
		return dataset.Islands(cfg), nil
	case "alarms":
		cfg := alarm.DefaultSim()
		cfg.Seed = seed
		log, _, err := alarm.Simulate(cfg)
		if err != nil {
			return nil, err
		}
		return log.WindowGraph(cfg.WindowSec), nil
	default:
		return nil, fmt.Errorf("unknown dataset %q", name)
	}
}

// WorkerConfig mirrors cmd/cspm-worker's flags.
type WorkerConfig struct {
	// Listen is the host:port to serve shard jobs on (":0" picks a free
	// port; the bound address is returned by StartWorker).
	Listen string
	// Workers caps concurrently mining jobs (0 = all cores).
	Workers int
	// Log configures the worker's structured diagnostics on stderr.
	Log LogConfig
}

// StartWorker validates cfg, binds the listener, and serves shard jobs in a
// background goroutine. It returns the bound address (resolving a ":0"
// port) and a stop function that shuts the worker down. All validation
// happens before the bind, mirroring Mine's validate-before-load contract.
func StartWorker(cfg WorkerConfig) (addr string, stop func(), err error) {
	logger, err := cfg.Log.Logger(os.Stderr)
	if err != nil {
		return "", nil, err
	}
	if cfg.Listen == "" {
		return "", nil, fmt.Errorf("-listen must name a host:port to serve on")
	}
	if _, _, err := net.SplitHostPort(cfg.Listen); err != nil {
		return "", nil, fmt.Errorf("bad -listen address %q (want host:port): %v", cfg.Listen, err)
	}
	if cfg.Workers < 0 {
		return "", nil, fmt.Errorf("-workers must be >= 0, got %d", cfg.Workers)
	}
	l, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		return "", nil, err
	}
	srv := shardrpc.NewServer(cspm.ExecuteShardJob, cfg.Workers)
	go srv.Serve(l)
	logger.Info("worker serving", "role", "worker", "addr", l.Addr().String(), "workers", cfg.Workers)
	return l.Addr().String(), func() { srv.Close() }, nil
}

// ServeConfig mirrors cmd/cspm-serve's flags.
type ServeConfig struct {
	// Listen is the host:port to serve the HTTP API on (":0" picks a
	// free port; the bound address is returned by StartServe).
	Listen string
	// Shards bounds how many dirty component groups re-mine concurrently
	// (0 = all cores), exactly as in cspm -shards.
	Shards int
	// CacheDir persists shard results under this directory: re-mines warm
	// from it at startup and the cache is flushed back on shutdown. ""
	// keeps the cache in memory only. Configures the single default
	// namespace; mutually exclusive with RootDir.
	CacheDir string
	// Debounce is the re-mine coalescing window (0 = re-mine immediately).
	Debounce time.Duration
	// Remote and its knobs mirror cspm -remote*: fan dirty groups out to
	// cspm-worker fleets instead of mining in-process. The transport is
	// shared by every namespace.
	Remote           string
	RemoteTimeout    time.Duration
	RemoteRetries    int
	RemoteNoFallback bool
	// WALDir enables the durability contract for the single default
	// namespace: mutation batches are fsync'd into a write-ahead log under
	// this directory before acknowledgment and replayed on restart. ""
	// serves without durable acknowledgment. Mutually exclusive with
	// RootDir (which gives every namespace its own WAL subtree).
	WALDir string
	// Standby refuses to cold-start. Without RootDir the default namespace
	// must find durable state (a checkpoint under CacheDir or batches under
	// WALDir) to promote; with RootDir the host must restore at least one
	// namespace from the root. Either way the initial graph may be omitted.
	Standby bool
	// RootDir turns the process into a multi-tenant fleet member: every
	// namespace owns a WAL + checkpoint subtree under this root, the
	// /v2/graphs admin surface can create and delete namespaces at runtime,
	// and startup restores every namespace found under the root. Mutually
	// exclusive with CacheDir and WALDir.
	RootDir string
	// MaxNamespaces caps live namespaces (0 = unlimited).
	MaxNamespaces int
	// MineBudget bounds how many namespaces may run a mining pass
	// concurrently (0 = unbounded), so one tenant's mutation storm queues
	// behind the budget instead of starving the rest.
	MineBudget int
	// Follow makes the process a read REPLICA of the leader host at this
	// base URL (e.g. "http://leader:8080"): every leader namespace is
	// mirrored as a follower tenant, verified against the leader's manifest
	// commitments, and served locally; mutations answer 409 not_leader (or
	// forward, with ProxyWrites). Requires RootDir; the graph argument must
	// be omitted. Mutually exclusive with Standby.
	Follow string
	// FollowPoll paces the replica's pull loops (0 = the serve default).
	FollowPoll time.Duration
	// ProxyWrites forwards mutations hitting this replica to the leader
	// instead of rejecting them.
	ProxyWrites bool
	// DebugAddr, when non-empty, serves net/http/pprof on a SEPARATE
	// listener (e.g. "localhost:6060"), so profiling never shares a port —
	// or an exposure surface — with the public API.
	DebugAddr string
	// Log configures the host's structured log on stderr.
	Log LogConfig
}

// StartServe validates cfg, reads the initial graph from r (nil skips the
// read: a -standby process promotes from durable state instead), builds the
// multi-tenant host, binds the listener and serves the API in a background
// goroutine. The graph (when given) seeds the "default" namespace — the one
// the flat /v1 surface aliases; with RootDir set, startup also restores
// every namespace found under the root, and the /v2/graphs admin surface
// can add and remove namespaces at runtime. It returns the bound address
// and a shutdown function that drains in-flight requests (bounded by ctx,
// force-closing leftovers when it expires), stops every tenant's re-mine
// loop, checkpoints, and closes any worker transport. All flag validation
// happens before the (possibly huge) graph read, mirroring Mine's
// validate-before-load contract.
func StartServe(r io.Reader, cfg ServeConfig) (addr string, shutdown func(context.Context) error, err error) {
	logger, err := cfg.Log.Logger(os.Stderr)
	if err != nil {
		return "", nil, err
	}
	if cfg.Listen == "" {
		return "", nil, fmt.Errorf("-listen must name a host:port to serve on")
	}
	if _, _, err := net.SplitHostPort(cfg.Listen); err != nil {
		return "", nil, fmt.Errorf("bad -listen address %q (want host:port): %v", cfg.Listen, err)
	}
	if cfg.DebugAddr != "" {
		if _, _, err := net.SplitHostPort(cfg.DebugAddr); err != nil {
			return "", nil, fmt.Errorf("bad -debug-addr %q (want host:port): %v", cfg.DebugAddr, err)
		}
	}
	if cfg.Debounce < 0 {
		return "", nil, fmt.Errorf("-debounce must be >= 0, got %v", cfg.Debounce)
	}
	if cfg.RootDir != "" && (cfg.CacheDir != "" || cfg.WALDir != "") {
		return "", nil, fmt.Errorf("-root-dir gives every namespace its own cache and WAL subtree; it is mutually exclusive with -cache-dir and -wal-dir")
	}
	if cfg.Follow != "" {
		if cfg.RootDir == "" {
			return "", nil, fmt.Errorf("-follow requires -root-dir (the replica mirrors checkpoints and WALs there)")
		}
		if cfg.Standby {
			return "", nil, fmt.Errorf("-follow and -standby are mutually exclusive (a replica IS a continuously-warmed standby)")
		}
		if r != nil {
			return "", nil, fmt.Errorf("-follow replicates every graph from the leader; omit the graph argument")
		}
	} else if cfg.FollowPoll != 0 || cfg.ProxyWrites {
		return "", nil, fmt.Errorf("-follow-poll and -proxy-writes require -follow")
	}
	if cfg.RootDir != "" {
		// Probe the root before the graph read: an unusable persistence
		// root must fail as fast as a typo'd flag.
		if err := os.MkdirAll(cfg.RootDir, 0o755); err != nil {
			return "", nil, fmt.Errorf("-root-dir: %v", err)
		}
	}
	var workerAddrs []string
	if cfg.Remote != "" {
		if workerAddrs, err = parseRemoteAddrs(cfg.Remote); err != nil {
			return "", nil, err
		}
	} else if cfg.RemoteTimeout != 0 || cfg.RemoteRetries != 0 || cfg.RemoteNoFallback {
		return "", nil, fmt.Errorf("-remote-timeout, -remote-retries and -remote-no-fallback require -remote")
	}
	// The tenant template carries everything shared across namespaces;
	// per-tenant state (cache, WAL and checkpoint dirs) is derived by the
	// host under RootDir, or passed explicitly for the legacy single-tenant
	// flags below.
	tenant := serve.Options{
		Mining:        cspm.Options{Shards: cfg.Shards, CollectStats: true},
		Debounce:      cfg.Debounce,
		RemoteTimeout: cfg.RemoteTimeout, RemoteRetries: cfg.RemoteRetries,
		RemoteNoFallback: cfg.RemoteNoFallback,
	}
	hostOpts := serve.HostOptions{
		RootDir:       cfg.RootDir,
		MaxNamespaces: cfg.MaxNamespaces,
		MineBudget:    cfg.MineBudget,
		Tenant:        tenant,
		Standby:       cfg.Standby && cfg.RootDir != "",
		Follow:        cfg.Follow,
		FollowPoll:    cfg.FollowPoll,
		ProxyWrites:   cfg.ProxyWrites,
		Logger:        logger,
	}
	if err := hostOpts.Validate(); err != nil {
		return "", nil, err
	}
	// Legacy single-tenant flags become the default namespace's override.
	var defOverride *serve.Options
	if cfg.CacheDir != "" || cfg.WALDir != "" || (cfg.Standby && cfg.RootDir == "") {
		o := tenant
		o.PersistDir = cfg.CacheDir
		o.WALDir = cfg.WALDir
		o.Standby = cfg.Standby
		if cfg.CacheDir != "" {
			// Disk-backed: re-mines warm-start from blobs persisted by
			// earlier runs, and writes reach disk eagerly (the shutdown flush
			// is then a cheap idempotent rewrite that also covers entries
			// admitted from disk after an eviction).
			if o.Cache, err = shardcache.Open(0, cfg.CacheDir); err != nil {
				return "", nil, err
			}
		}
		if err := o.Validate(); err != nil {
			return "", nil, err
		}
		defOverride = &o
	}
	var transport shardrpc.Transport
	if cfg.Remote != "" {
		// Dial before the graph load so an unreachable fleet fails as fast
		// as a typo'd flag.
		if transport, err = shardrpc.Dial(workerAddrs); err != nil {
			return "", nil, err
		}
		hostOpts.Tenant.Transport = transport
		if defOverride != nil {
			defOverride.Transport = transport
		}
	}
	closeTransport := func() {
		if transport != nil {
			transport.Close()
		}
	}
	// Bind before the graph load: an occupied or privileged port must fail
	// as fast as a typo'd flag, not after minutes of loading and mining.
	// Nothing is served off the listener until hs.Serve below.
	l, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		closeTransport()
		return "", nil, err
	}
	// The pprof side server binds its own listener so profiling is never
	// reachable through the public API port.
	var dsrv *http.Server
	if cfg.DebugAddr != "" {
		dl, derr := net.Listen("tcp", cfg.DebugAddr)
		if derr != nil {
			l.Close()
			closeTransport()
			return "", nil, fmt.Errorf("-debug-addr: %v", derr)
		}
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dsrv = &http.Server{Handler: dmux}
		go dsrv.Serve(dl)
		logger.Info("pprof debug server listening", "addr", dl.Addr().String())
	}
	closeDebug := func() {
		if dsrv != nil {
			dsrv.Close()
		}
	}
	var g *graph.Graph
	if r != nil {
		if g, err = graph.Load(r); err != nil {
			l.Close()
			closeDebug()
			closeTransport()
			return "", nil, err
		}
	}
	host, err := serve.NewHost(hostOpts)
	if err != nil {
		l.Close()
		closeDebug()
		closeTransport()
		return "", nil, err
	}
	// Seed the default namespace: from the given graph, from legacy durable
	// state (standby/WAL replay), or not at all (a root-dir host may have
	// recovered it already, or namespaces arrive purely via the admin API).
	if _, recovered := host.Tenant(serve.DefaultNamespace); !recovered {
		if g != nil || defOverride != nil {
			if _, err := host.Create(serve.DefaultNamespace, g, defOverride); err != nil {
				host.Close()
				l.Close()
				closeDebug()
				closeTransport()
				return "", nil, err
			}
		}
	} else if g != nil {
		host.Close()
		l.Close()
		closeDebug()
		closeTransport()
		return "", nil, fmt.Errorf("the %q namespace was restored from -root-dir; omit the graph argument (its acknowledged state wins) or create a new namespace over /v2", serve.DefaultNamespace)
	}
	hs := &http.Server{Handler: host}
	// Release watch long-polls the moment a graceful drain starts: Shutdown
	// waits for in-flight responses, and a watcher mid-poll would otherwise
	// hold the drain open until its timeout lapsed.
	hs.RegisterOnShutdown(host.Drain)
	go hs.Serve(l)
	shutdown = func(ctx context.Context) error {
		// Drain first (Shutdown waits for in-flight responses to complete),
		// then stop mining and flush every tenant's cache, then drop the
		// workers. The drain deadline is hard: when ctx expires before the
		// drain ends, remaining connections are force-closed so shutdown
		// always completes — a stuck client must not be able to hold the
		// checkpoints (and the process) hostage.
		drainErr := hs.Shutdown(ctx)
		if drainErr != nil {
			hs.Close()
		}
		closeErr := host.Close()
		closeDebug()
		closeTransport()
		if drainErr != nil {
			return drainErr
		}
		return closeErr
	}
	return l.Addr().String(), shutdown, nil
}

// AwaitShutdown is cspm-serve's signal protocol, factored out so it can be
// tested without spawning a process: block until the first signal, then
// drain gracefully within the drain timeout — and exit immediately (status
// 130, the conventional SIGINT code) on a second signal, so an operator's
// double Ctrl-C always works even when the drain or checkpoint hangs.
func AwaitShutdown(sig <-chan os.Signal, drain time.Duration, shutdown func(context.Context) error, exit func(int), logw io.Writer) error {
	<-sig
	fmt.Fprintln(logw, "cspm-serve: draining...")
	go func() {
		<-sig
		fmt.Fprintln(logw, "cspm-serve: second signal, exiting immediately")
		exit(130)
	}()
	ctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	return shutdown(ctx)
}

// WriteGraph emits g with a stats header in the Load format.
func WriteGraph(w io.Writer, g *graph.Graph, header string) error {
	bw := bufio.NewWriter(w)
	if header != "" {
		if _, err := fmt.Fprintf(bw, "# %s %s\n", header, g.ComputeStats()); err != nil {
			return err
		}
	}
	if err := graph.Write(bw, g); err != nil {
		return err
	}
	return bw.Flush()
}
