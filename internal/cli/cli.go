// Package cli implements the logic behind the cspm and gengraph commands so
// it can be tested without spawning processes. The main packages stay thin
// flag-parsing shells.
package cli

import (
	"bufio"
	"fmt"
	"io"
	"os"

	"cspm/internal/alarm"
	"cspm/internal/cspm"
	"cspm/internal/dataset"
	"cspm/internal/graph"
	"cspm/internal/invdb"
	"cspm/internal/slim"
)

// MineConfig mirrors cmd/cspm's flags.
type MineConfig struct {
	Variant   string // "partial" or "basic"
	MultiCore bool
	Top       int
	Stats     bool
	MultiOnly bool
}

// Mine reads a graph from r, mines it per cfg, and writes the ranked
// patterns to w.
func Mine(r io.Reader, w io.Writer, cfg MineConfig) error {
	g, err := graph.Load(r)
	if err != nil {
		return err
	}
	var model *cspm.Model
	switch {
	case cfg.MultiCore:
		res := slim.Mine(slim.VertexTransactions(g), slim.Options{})
		coresets, positions := slim.ItemsetsAsCoresets(res)
		db, err := invdb.FromGraphWithCoresets(g, coresets, positions)
		if err != nil {
			return err
		}
		model = cspm.MineDB(db, g.Vocab(), cspm.Options{CollectStats: true})
	case cfg.Variant == "basic":
		model = cspm.MineWithOptions(g, cspm.Options{Variant: cspm.Basic, CollectStats: true})
	case cfg.Variant == "partial" || cfg.Variant == "":
		model = cspm.Mine(g)
	default:
		return fmt.Errorf("unknown variant %q (want partial or basic)", cfg.Variant)
	}
	if cfg.Stats {
		fmt.Fprintf(w, "# graph: %s\n", g.ComputeStats())
		fmt.Fprintf(w, "# baseline DL: %.1f bits, final DL: %.1f bits (ratio %.3f)\n",
			model.BaselineDL, model.FinalDL, model.CompressionRatio())
		fmt.Fprintf(w, "# iterations: %d, gain evaluations: %d\n", model.Iterations, model.GainEvals)
	}
	patterns := model.Patterns
	if cfg.MultiOnly {
		patterns = model.MultiLeaf()
	}
	if cfg.Top > 0 && cfg.Top < len(patterns) {
		patterns = patterns[:cfg.Top]
	}
	for _, p := range patterns {
		fmt.Fprintf(w, "%-60s fL=%-6d fc=%-6d conf=%.3f len=%.3f\n",
			p.Format(g.Vocab()), p.FL, p.FC, p.Confidence(), p.CodeLen)
	}
	return nil
}

// MineFile opens path ("-" means stdin) and mines it.
func MineFile(path string, w io.Writer, cfg MineConfig) error {
	var in io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	return Mine(in, w, cfg)
}

// Generate builds one of the named synthetic datasets.
func Generate(name string, seed int64, nodes int) (*graph.Graph, error) {
	switch name {
	case "dblp":
		return dataset.DBLP(seed), nil
	case "dblptrend":
		return dataset.DBLPTrend(seed), nil
	case "usflight":
		return dataset.USFlight(seed), nil
	case "pokec":
		cfg := dataset.DefaultPokec()
		cfg.Seed = seed
		if nodes > 0 {
			cfg.Nodes = nodes
		}
		return dataset.Pokec(cfg), nil
	case "planted":
		cfg := dataset.DefaultPlanted()
		cfg.Seed = seed
		g, _ := dataset.Planted(cfg)
		return g, nil
	case "alarms":
		cfg := alarm.DefaultSim()
		cfg.Seed = seed
		log, _, err := alarm.Simulate(cfg)
		if err != nil {
			return nil, err
		}
		return log.WindowGraph(cfg.WindowSec), nil
	default:
		return nil, fmt.Errorf("unknown dataset %q", name)
	}
}

// WriteGraph emits g with a stats header in the Load format.
func WriteGraph(w io.Writer, g *graph.Graph, header string) error {
	bw := bufio.NewWriter(w)
	if header != "" {
		if _, err := fmt.Fprintf(bw, "# %s %s\n", header, g.ComputeStats()); err != nil {
			return err
		}
	}
	if err := graph.Write(bw, g); err != nil {
		return err
	}
	return bw.Flush()
}
