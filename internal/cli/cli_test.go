package cli

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

const fig1Text = `# paper Fig. 1
v 0 a
v 1 a c
v 2 c
v 3 b
v 4 a b
e 0 1
e 0 2
e 0 3
e 2 4
e 3 4
`

func TestMineDefault(t *testing.T) {
	var out bytes.Buffer
	if err := Mine(strings.NewReader(fig1Text), &out, MineConfig{}); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "({a}, {b c})") {
		t.Fatalf("expected merged pattern in output:\n%s", s)
	}
}

func TestMineStatsHeader(t *testing.T) {
	var out bytes.Buffer
	if err := Mine(strings.NewReader(fig1Text), &out, MineConfig{Stats: true}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "# baseline DL") {
		t.Fatal("stats header missing")
	}
}

func TestMineTopAndMultiOnly(t *testing.T) {
	var out bytes.Buffer
	if err := Mine(strings.NewReader(fig1Text), &out, MineConfig{Top: 1, MultiOnly: true}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(strings.TrimSpace(out.String()), "\n") + 1
	if lines != 1 {
		t.Fatalf("Top=1 printed %d lines:\n%s", lines, out.String())
	}
	if !strings.Contains(out.String(), "{") {
		t.Fatal("no pattern printed")
	}
}

func TestMineVariants(t *testing.T) {
	for _, v := range []string{"partial", "basic"} {
		var out bytes.Buffer
		if err := Mine(strings.NewReader(fig1Text), &out, MineConfig{Variant: v}); err != nil {
			t.Fatalf("%s: %v", v, err)
		}
	}
	if err := Mine(strings.NewReader(fig1Text), &bytes.Buffer{}, MineConfig{Variant: "bogus"}); err == nil {
		t.Fatal("bogus variant accepted")
	}
}

// twoIslandText is fig1 plus a disconnected second component with its own
// alphabet, so -shards has something to split.
const twoIslandText = fig1Text + `v 5 x
v 6 x y
v 7 y
e 5 6
e 6 7
e 5 7
`

func TestMineSharded(t *testing.T) {
	var unsharded, sharded bytes.Buffer
	if err := Mine(strings.NewReader(twoIslandText), &unsharded, MineConfig{Stats: true}); err != nil {
		t.Fatal(err)
	}
	if err := Mine(strings.NewReader(twoIslandText), &sharded, MineConfig{Stats: true, Shards: 2}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sharded.String(), "# shards: 2") {
		t.Fatalf("shard header missing:\n%s", sharded.String())
	}
	// Same patterns, same DLs: the component strategy is exact, so only the
	// extra shard header line may differ.
	trim := func(s string) string { return strings.ReplaceAll(s, "# shards: 2, refinement gain: 0.0 bits\n", "") }
	if trim(sharded.String()) != unsharded.String() {
		t.Fatalf("sharded output diverged:\n%s\nvs\n%s", sharded.String(), unsharded.String())
	}
	for _, cfg := range []MineConfig{
		{Shards: 2, ShardStrategy: "edgecut"},
		{Shards: 2, ShardStrategy: "components"},
		{ShardStrategy: "components"},
	} {
		if err := Mine(strings.NewReader(twoIslandText), &bytes.Buffer{}, cfg); err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
	}
	for _, cfg := range []MineConfig{
		{Shards: 2, ShardStrategy: "bogus"},
		{Shards: 1, ShardStrategy: "bogus"},       // strategy validated even when unsharded
		{Shards: 2, MultiCore: true},              // unsupported combination
		{Shards: 2, Variant: "bogus"},             // variant validated on the sharded path
		{Shards: -2, ShardStrategy: "components"}, // must error, not panic
	} {
		if err := Mine(strings.NewReader(twoIslandText), &bytes.Buffer{}, cfg); err == nil {
			t.Fatalf("invalid config %+v accepted", cfg)
		}
	}
}

func TestMineCached(t *testing.T) {
	var uncached, cached bytes.Buffer
	if err := Mine(strings.NewReader(twoIslandText), &uncached, MineConfig{Stats: true}); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := Mine(strings.NewReader(twoIslandText), &cached, MineConfig{Stats: true, CacheDir: dir}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(cached.String(), "misses") {
		t.Fatalf("cache stats line missing:\n%s", cached.String())
	}
	// Second run over the same directory must be fully warm and otherwise
	// print exactly the uncached output (cached mining is bit-exact).
	var warm bytes.Buffer
	if err := Mine(strings.NewReader(twoIslandText), &warm, MineConfig{Stats: true, CacheDir: dir}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(warm.String(), "# cache: 2 hits, 0 misses") {
		t.Fatalf("warm run not served from cache:\n%s", warm.String())
	}
	strip := func(s string) string {
		var keep []string
		for _, ln := range strings.Split(s, "\n") {
			// The iterations line also goes: its gain-evaluation count
			// legitimately varies with shard interleaving (see the sharded
			// exactness probe in the verify notes).
			if strings.HasPrefix(ln, "# shards:") || strings.HasPrefix(ln, "# cache:") ||
				strings.HasPrefix(ln, "# iterations:") {
				continue
			}
			keep = append(keep, ln)
		}
		return strings.Join(keep, "\n")
	}
	if strip(warm.String()) != strip(uncached.String()) {
		t.Fatalf("cached output diverged:\n%s\nvs\n%s", warm.String(), uncached.String())
	}
	// -cache without a directory also works (single-run in-memory cache).
	if err := Mine(strings.NewReader(twoIslandText), &bytes.Buffer{}, MineConfig{Cache: true}); err != nil {
		t.Fatal(err)
	}
}

// failingReader asserts option validation happens BEFORE the graph is read:
// any Read is the failure the small-fix satellite guards against.
type failingReader struct{ t *testing.T }

func (r failingReader) Read([]byte) (int, error) {
	r.t.Error("graph input was read before option validation finished")
	return 0, nil
}

func TestMineValidatesBeforeLoad(t *testing.T) {
	for _, cfg := range []MineConfig{
		{Variant: "bogus"},
		{ShardStrategy: "bogus"},
		{Top: -1},
		{Shards: -2},
		{Cache: true, MultiCore: true},
		{CacheDir: "/dev/null/not-a-dir", MultiCore: true}, // combination rejected before dir open
		{Cache: true, ShardStrategy: "edgecut"},
		{CacheDir: "/dev/null/not-a-dir"}, // unusable cache dir rejected pre-load
		{Remote: "not-an-address"},        // no port
		{Remote: "host:1,"},               // trailing empty worker
		{Remote: "host:1, ,host:2"},       // blank worker in the middle
		{Remote: "host:1", MultiCore: true},
		{Remote: "host:1", ShardStrategy: "edgecut"},
		{Remote: "host:1", RemoteRetries: -1},
		{Remote: "host:1", RemoteTimeout: -time.Second},
		{RemoteRetries: 2},                   // remote knobs require -remote
		{RemoteTimeout: time.Second},         //
		{RemoteNoFallback: true},             //
		{Remote: "host:1", Variant: "bogus"}, // variant still validated on the remote path
		{Remote: "127.0.0.1:1", Shards: -2},  // shard count validated before dialing
		{Remote: "127.0.0.1:1"},              // unreachable fleet rejected pre-load
	} {
		if err := Mine(failingReader{t}, &bytes.Buffer{}, cfg); err == nil {
			t.Fatalf("invalid config %+v accepted", cfg)
		}
	}
}

func TestMineRemote(t *testing.T) {
	addr, stop, err := StartWorker(WorkerConfig{Listen: "127.0.0.1:0", Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	var local, remote bytes.Buffer
	if err := Mine(strings.NewReader(twoIslandText), &local, MineConfig{Stats: true}); err != nil {
		t.Fatal(err)
	}
	if err := Mine(strings.NewReader(twoIslandText), &remote, MineConfig{Stats: true, Remote: addr}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(remote.String(), "# remote: 2 jobs, 0 retries, 0 fallbacks") {
		t.Fatalf("remote stats line missing:\n%s", remote.String())
	}
	// Bit-exact merge: only the scheduling-dependent header lines may
	// differ (same contract the cached CLI test pins).
	strip := func(s string) string {
		var keep []string
		for _, ln := range strings.Split(s, "\n") {
			if strings.HasPrefix(ln, "# shards:") || strings.HasPrefix(ln, "# remote:") ||
				strings.HasPrefix(ln, "# iterations:") {
				continue
			}
			keep = append(keep, ln)
		}
		return strings.Join(keep, "\n")
	}
	if strip(remote.String()) != strip(local.String()) {
		t.Fatalf("remote output diverged:\n%s\nvs\n%s", remote.String(), local.String())
	}
	// Remote composes with the persistent cache: a warm second run mines
	// nothing remotely.
	dir := t.TempDir()
	var cold, warm bytes.Buffer
	if err := Mine(strings.NewReader(twoIslandText), &cold, MineConfig{Stats: true, Remote: addr, CacheDir: dir}); err != nil {
		t.Fatal(err)
	}
	if err := Mine(strings.NewReader(twoIslandText), &warm, MineConfig{Stats: true, Remote: addr, CacheDir: dir}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(warm.String(), "# cache: 2 hits, 0 misses") || strings.Contains(warm.String(), "# remote:") {
		t.Fatalf("warm remote run not served from cache:\n%s", warm.String())
	}
}

func TestStartWorkerValidates(t *testing.T) {
	for _, cfg := range []WorkerConfig{
		{Listen: ""},
		{Listen: "no-port"},
		{Listen: "127.0.0.1:0", Workers: -1},
	} {
		if _, _, err := StartWorker(cfg); err == nil {
			t.Fatalf("invalid worker config %+v accepted", cfg)
		}
	}
}

func TestMineMultiCore(t *testing.T) {
	var out bytes.Buffer
	if err := Mine(strings.NewReader(fig1Text), &out, MineConfig{MultiCore: true}); err != nil {
		t.Fatal(err)
	}
	if out.Len() == 0 {
		t.Fatal("no output")
	}
}

func TestMineBadInput(t *testing.T) {
	if err := Mine(strings.NewReader("x nonsense\n"), &bytes.Buffer{}, MineConfig{}); err == nil {
		t.Fatal("malformed input accepted")
	}
}

func TestGenerateAll(t *testing.T) {
	for _, name := range []string{"dblp", "dblptrend", "usflight", "planted"} {
		g, err := Generate(name, 1, 0)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if g.NumVertices() == 0 {
			t.Fatalf("%s: empty graph", name)
		}
	}
	if _, err := Generate("pokec", 1, 500); err != nil {
		t.Fatal(err)
	}
	if _, err := Generate("nope", 1, 0); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestGeneratePokecNodesOverride(t *testing.T) {
	g, err := Generate("pokec", 1, 321)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 321 {
		t.Fatalf("nodes override ignored: %d", g.NumVertices())
	}
}

func TestWriteGraphRoundTrip(t *testing.T) {
	g, err := Generate("usflight", 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteGraph(&buf, g, "dataset=usflight"); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "# dataset=usflight") {
		t.Fatal("header missing")
	}
	// The emitted text must mine cleanly end to end.
	var out bytes.Buffer
	if err := Mine(strings.NewReader(buf.String()), &out, MineConfig{Top: 5}); err != nil {
		t.Fatal(err)
	}
	if out.Len() == 0 {
		t.Fatal("no patterns from generated dataset")
	}
}

// --- cspm-serve -----------------------------------------------------------

func TestStartServeValidatesBeforeLoad(t *testing.T) {
	for _, cfg := range []ServeConfig{
		{},                  // missing listen
		{Listen: "no-port"}, // not host:port
		{Listen: "127.0.0.1:0", Debounce: -time.Second},
		{Listen: "127.0.0.1:0", RemoteRetries: 1},           // remote knob without -remote
		{Listen: "127.0.0.1:0", RemoteTimeout: time.Second}, // remote knob without -remote
		{Listen: "127.0.0.1:0", RemoteNoFallback: true},     // remote knob without -remote
		{Listen: "127.0.0.1:0", Remote: "not-an-address"},
		{Listen: "127.0.0.1:0", Shards: -1},
		{Listen: "127.0.0.1:0", CacheDir: "/dev/null/not-a-dir"},
		{Listen: "127.0.0.1:0", Remote: "127.0.0.1:1"}, // unreachable fleet rejected pre-load
	} {
		addr, shutdown, err := StartServe(failingReader{t}, cfg)
		if err == nil {
			shutdown(context.Background())
			t.Fatalf("invalid config %+v accepted (bound %s)", cfg, addr)
		}
	}
	// An occupied port must also fail before the graph read: the listener
	// binds pre-load precisely so a doomed serve never mines.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if addr, shutdown, err := StartServe(failingReader{t}, ServeConfig{Listen: l.Addr().String()}); err == nil {
		shutdown(context.Background())
		t.Fatalf("occupied port accepted (bound %s)", addr)
	}
}

// serveGet fetches a JSON document from a running serve instance.
func serveGet(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

// TestServeEndToEnd drives the full cspm-serve lifecycle: serve a graph,
// mutate it over HTTP, watch the generation advance, then shut down
// gracefully with an in-flight request held open across the drain — the
// response must complete and the shard cache must be persisted.
func TestServeEndToEnd(t *testing.T) {
	dir := t.TempDir()
	addr, shutdown, err := StartServe(strings.NewReader(twoIslandText), ServeConfig{
		Listen:   "127.0.0.1:0",
		CacheDir: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + addr

	var health struct {
		Generation uint64 `json:"generation"`
	}
	if code := serveGet(t, base+"/v1/healthz", &health); code != http.StatusOK || health.Generation != 1 {
		t.Fatalf("healthz: code=%d gen=%d", code, health.Generation)
	}

	// Mutate over HTTP and wait for the snapshot swap.
	mutBody := `{"mutations":[{"op":"add_edge","u":0,"v":4},{"op":"add_attr","u":3,"value":"c"}]}`
	resp, err := http.Post(base+"/v1/mutations", "application/json", strings.NewReader(mutBody))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("mutations: status %d", resp.StatusCode)
	}
	deadline := time.Now().Add(30 * time.Second)
	for health.Generation < 2 {
		if time.Now().After(deadline) {
			t.Fatal("generation never reached 2")
		}
		serveGet(t, base+"/v1/healthz", &health)
	}

	// Hold a /v1/complete request open (headers sent, body pending), then
	// shut down: the drain must finish the response, not drop it.
	pr, pw := io.Pipe()
	type result struct {
		code int
		err  error
	}
	inflight := make(chan result, 1)
	go func() {
		req, err := http.NewRequest(http.MethodPost, base+"/v1/complete", pr)
		if err != nil {
			inflight <- result{err: err}
			return
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			inflight <- result{err: err}
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		inflight <- result{code: resp.StatusCode}
	}()
	// Wait until the handler has the request (its counter ticks) before
	// starting the drain.
	var met struct {
		Complete uint64 `json:"requests_complete"`
	}
	for met.Complete == 0 {
		if time.Now().After(deadline) {
			t.Fatal("in-flight request never reached the handler")
		}
		serveGet(t, base+"/v1/metrics", &met)
	}
	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		shutdownDone <- shutdown(ctx)
	}()
	// The listener is down once new connections start failing; our held
	// request must still be alive inside the drain window.
	for {
		if _, err := http.Get(base + "/v1/healthz"); err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("shutdown never closed the listener")
		}
	}
	if _, err := pw.Write([]byte(`{"vertices":[0]}`)); err != nil {
		t.Fatalf("writing body mid-drain: %v", err)
	}
	pw.Close()
	got := <-inflight
	if got.err != nil || got.code != http.StatusOK {
		t.Fatalf("in-flight request dropped by shutdown: code=%d err=%v", got.code, got.err)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	// The shard cache must have been persisted for the next warm start.
	blobs, err := filepath.Glob(filepath.Join(dir, "*.gob"))
	if err != nil {
		t.Fatal(err)
	}
	if len(blobs) == 0 {
		t.Fatal("shutdown left no shard blobs in -cache-dir")
	}
}

// TestServeMultiTenantRootDir drives the fleet mode end to end: seed the
// default namespace from a graph under -root-dir, create a second tenant
// over the /v2 admin surface, mutate it, then restart in standby and
// require both namespaces back at their exact generations.
func TestServeMultiTenantRootDir(t *testing.T) {
	// RootDir is mutually exclusive with the legacy single-tenant dirs, and
	// a graph argument must not fight a recovered default namespace.
	for _, cfg := range []ServeConfig{
		{Listen: "127.0.0.1:0", RootDir: "/tmp/x", CacheDir: "/tmp/y"},
		{Listen: "127.0.0.1:0", RootDir: "/tmp/x", WALDir: "/tmp/y"},
		{Listen: "127.0.0.1:0", RootDir: "/dev/null/not-a-dir"},
	} {
		if addr, shutdown, err := StartServe(failingReader{t}, cfg); err == nil {
			shutdown(context.Background())
			t.Fatalf("invalid config %+v accepted (bound %s)", cfg, addr)
		}
	}

	root := t.TempDir()
	addr, shutdown, err := StartServe(strings.NewReader(twoIslandText), ServeConfig{
		Listen:  "127.0.0.1:0",
		RootDir: root,
	})
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + addr

	// The graph argument seeded "default"; /v1 aliases it with the
	// deprecation marker while /v2 serves it under its name.
	resp, err := http.Get(base + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || resp.Header.Get("Deprecation") == "" {
		t.Fatalf("/v1/healthz: code=%d deprecation=%q", resp.StatusCode, resp.Header.Get("Deprecation"))
	}

	// Create a second tenant over the admin surface and mutate only it.
	resp, err = http.Post(base+"/v2/graphs/beta", "text/plain", strings.NewReader(fig1Text))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create beta: status %d", resp.StatusCode)
	}
	resp, err = http.Post(base+"/v2/graphs/beta/mutations", "application/json",
		strings.NewReader(`{"mutations":[{"op":"add_edge","u":1,"v":3}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("mutate beta: status %d", resp.StatusCode)
	}
	var watch struct {
		Generation uint64 `json:"generation"`
		SHA        string `json:"model_sha256"`
	}
	if code := serveGet(t, base+"/v2/graphs/beta/watch?generation=2&timeout=30s", &watch); code != http.StatusOK || watch.Generation < 2 {
		t.Fatalf("beta watch: code=%d gen=%d", code, watch.Generation)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	err = shutdown(ctx)
	cancel()
	if err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	// Standby restart from the root subtree alone: no graph argument, both
	// tenants restored at their published generations.
	addr, shutdown, err = StartServe(nil, ServeConfig{
		Listen:  "127.0.0.1:0",
		RootDir: root,
		Standby: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		shutdown(ctx)
	}()
	base = "http://" + addr
	var list struct {
		Namespaces []struct {
			Name       string `json:"name"`
			Generation uint64 `json:"generation"`
			SHA        string `json:"model_sha256"`
		} `json:"namespaces"`
	}
	if code := serveGet(t, base+"/v2/graphs", &list); code != http.StatusOK || len(list.Namespaces) != 2 {
		t.Fatalf("recovered list: code=%d namespaces=%+v", code, list.Namespaces)
	}
	for _, ns := range list.Namespaces {
		switch ns.Name {
		case "beta":
			if ns.Generation != watch.Generation || ns.SHA != watch.SHA {
				t.Fatalf("beta restored at gen %d sha %s, want gen %d sha %s",
					ns.Generation, ns.SHA, watch.Generation, watch.SHA)
			}
		case "default":
			if ns.Generation != 1 {
				t.Fatalf("default restored at gen %d, want 1", ns.Generation)
			}
		default:
			t.Fatalf("unexpected namespace %q restored", ns.Name)
		}
	}
	// A graph argument alongside a recovered default must be refused: the
	// acknowledged durable state wins over a cold file.
	if addr2, shutdown2, err := StartServe(strings.NewReader(fig1Text), ServeConfig{
		Listen:  "127.0.0.1:0",
		RootDir: root,
	}); err == nil {
		shutdown2(context.Background())
		t.Fatalf("graph argument over a recovered default accepted (bound %s)", addr2)
	}
}
