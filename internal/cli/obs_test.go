package cli

import (
	"bytes"
	"context"
	"flag"
	"net"
	"net/http"
	"strings"
	"testing"
)

func TestLogConfigFlagsAndValidation(t *testing.T) {
	var cfg LogConfig
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	cfg.Register(fs)
	if err := fs.Parse([]string{"-log-level", "debug", "-log-format", "json"}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	lg, err := cfg.Logger(&buf)
	if err != nil {
		t.Fatal(err)
	}
	lg.Debug("visible", "k", "v")
	if out := buf.String(); !strings.Contains(out, `"msg":"visible"`) {
		t.Fatalf("json debug logger output = %q", out)
	}
	for _, bad := range []LogConfig{
		{Level: "loud"},
		{Format: "xml"},
		{Level: "debug", Format: "yaml"},
	} {
		if _, err := bad.Logger(&buf); err == nil {
			t.Fatalf("invalid log config %+v accepted", bad)
		}
	}
}

// TestLogFlagsValidatedBeforeWork pins that a typo'd -log-level/-log-format
// fails every entry point instantly — before the input read, the bind, or
// any graph load.
func TestLogFlagsValidatedBeforeWork(t *testing.T) {
	if err := Mine(failingReader{t}, &bytes.Buffer{}, MineConfig{Log: LogConfig{Level: "loud"}}); err == nil {
		t.Fatal("Mine accepted a bad log level")
	}
	if err := Mine(failingReader{t}, &bytes.Buffer{}, MineConfig{Log: LogConfig{Format: "xml"}}); err == nil {
		t.Fatal("Mine accepted a bad log format")
	}
	if _, _, err := StartWorker(WorkerConfig{Listen: "127.0.0.1:0", Log: LogConfig{Level: "loud"}}); err == nil {
		t.Fatal("StartWorker accepted a bad log level")
	}
	for _, cfg := range []ServeConfig{
		{Listen: "127.0.0.1:0", Log: LogConfig{Level: "loud"}},
		{Listen: "127.0.0.1:0", Log: LogConfig{Format: "xml"}},
		{Listen: "127.0.0.1:0", DebugAddr: "no-port"},
	} {
		if addr, shutdown, err := StartServe(failingReader{t}, cfg); err == nil {
			shutdown(context.Background())
			t.Fatalf("invalid config %+v accepted (bound %s)", cfg, addr)
		}
	}
}

// TestServeDebugAddrServesPprof starts a serve with the pprof side listener
// and checks the profile index answers on it — and ONLY on it, never on the
// public API port.
func TestServeDebugAddrServesPprof(t *testing.T) {
	// Reserve a port for the debug listener, then release it for StartServe.
	// (Racy in principle; in practice the port stays free for the
	// microseconds between Close and the re-bind.)
	dl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	debugAddr := dl.Addr().String()
	dl.Close()

	addr, shutdown, err := StartServe(strings.NewReader(twoIslandText), ServeConfig{
		Listen:    "127.0.0.1:0",
		DebugAddr: debugAddr,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown(context.Background())

	resp, err := http.Get("http://" + debugAddr + "/debug/pprof/")
	if err != nil {
		t.Fatalf("pprof index unreachable on -debug-addr: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/pprof/ on debug addr = %d, want 200", resp.StatusCode)
	}
	// The public port must NOT expose pprof.
	resp, err = http.Get("http://" + addr + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /debug/pprof/ on the API port = %d, want 404", resp.StatusCode)
	}

	// An occupied debug port fails startup like an occupied API port.
	busy, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer busy.Close()
	if addr, shutdown, err := StartServe(failingReader{t}, ServeConfig{
		Listen:    "127.0.0.1:0",
		DebugAddr: busy.Addr().String(),
	}); err == nil {
		shutdown(context.Background())
		t.Fatalf("occupied -debug-addr accepted (bound %s)", addr)
	}
}
