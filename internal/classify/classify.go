// Package classify applies mined a-stars to graph classification — the
// paper's future-work item (1). A reference model's top patterns become a
// feature extractor: a graph is represented by how often each a-star
// matches in it (match counts normalised by vertex count), and a softmax
// regression on those features separates graph classes. Patterns are keyed
// by attribute-value *names*, so graphs with independently built
// vocabularies are featurised consistently.
package classify

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"cspm/internal/cspm"
	"cspm/internal/graph"
	"cspm/internal/tensor"
)

// patternShape is a vocabulary-independent a-star.
type patternShape struct {
	core []string
	leaf []string
}

// Featurizer turns graphs into fixed-length a-star match-frequency vectors.
type Featurizer struct {
	shapes []patternShape
}

// NewFeaturizer keeps the topK best-ranked multi-leaf patterns of a mined
// model as features (single-leaf lines are near-ubiquitous in the mining
// corpus and usually carry less class signal). When the model contains no
// multi-leaf patterns — nothing merged — all patterns are eligible. The
// model's vocabulary translates ids to names once.
func NewFeaturizer(model *cspm.Model, vocab *graph.Vocab, topK int) (*Featurizer, error) {
	if topK <= 0 {
		return nil, fmt.Errorf("classify: topK must be positive, got %d", topK)
	}
	multi := model.MultiLeaf()
	if len(multi) == 0 {
		multi = model.Patterns
	}
	if len(multi) == 0 {
		return nil, fmt.Errorf("classify: model has no patterns")
	}
	if topK > len(multi) {
		topK = len(multi)
	}
	f := &Featurizer{}
	for _, p := range multi[:topK] {
		shape := patternShape{}
		for _, a := range p.CoreValues {
			shape.core = append(shape.core, vocab.Name(a))
		}
		for _, a := range p.LeafValues {
			shape.leaf = append(shape.leaf, vocab.Name(a))
		}
		sort.Strings(shape.core)
		sort.Strings(shape.leaf)
		f.shapes = append(f.shapes, shape)
	}
	return f, nil
}

// Dim reports the feature-vector length.
func (f *Featurizer) Dim() int { return len(f.shapes) }

// Features returns the normalised match counts of every reference pattern
// in g. Patterns whose values are absent from g's vocabulary contribute 0.
func (f *Featurizer) Features(g *graph.Graph) []float64 {
	out := make([]float64, len(f.shapes))
	if g.NumVertices() == 0 {
		return out
	}
	for i, shape := range f.shapes {
		ids, ok := translate(g, shape)
		if !ok {
			continue
		}
		out[i] = float64(len(ids.Matches(g))) / float64(g.NumVertices())
	}
	return out
}

func translate(g *graph.Graph, shape patternShape) (graph.AStarShape, bool) {
	core := make([]graph.AttrID, 0, len(shape.core))
	for _, n := range shape.core {
		id, ok := g.Vocab().Lookup(n)
		if !ok {
			return graph.AStarShape{}, false
		}
		core = append(core, id)
	}
	leaf := make([]graph.AttrID, 0, len(shape.leaf))
	for _, n := range shape.leaf {
		id, ok := g.Vocab().Lookup(n)
		if !ok {
			return graph.AStarShape{}, false
		}
		leaf = append(leaf, id)
	}
	s, err := graph.NewAStarShape(core, leaf)
	if err != nil {
		return graph.AStarShape{}, false
	}
	return s, true
}

// Classifier is a softmax regression over a-star features.
type Classifier struct {
	feat    *Featurizer
	classes int
	w       *tensor.Parameter
	bias    *tensor.Parameter
}

// TrainOptions tunes the classifier fit.
type TrainOptions struct {
	Epochs int
	LR     float64
	Seed   int64
}

func (o TrainOptions) withDefaults() TrainOptions {
	if o.Epochs == 0 {
		o.Epochs = 300
	}
	if o.LR == 0 {
		o.LR = 0.05
	}
	return o
}

// Train fits a classifier on labelled graphs. Labels must be 0..C-1.
func Train(f *Featurizer, graphs []*graph.Graph, labels []int, opts TrainOptions) (*Classifier, error) {
	if len(graphs) != len(labels) || len(graphs) == 0 {
		return nil, fmt.Errorf("classify: %d graphs but %d labels", len(graphs), len(labels))
	}
	classes := 0
	for _, l := range labels {
		if l < 0 {
			return nil, fmt.Errorf("classify: negative label %d", l)
		}
		if l+1 > classes {
			classes = l + 1
		}
	}
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(opts.Seed))
	x := tensor.NewMatrix(len(graphs), f.Dim())
	for i, g := range graphs {
		copy(x.Row(i), f.Features(g))
	}
	wm := tensor.NewMatrix(f.Dim(), classes)
	tensor.Glorot(wm, rng)
	c := &Classifier{
		feat:    f,
		classes: classes,
		w:       tensor.NewParameter(wm),
		bias:    tensor.NewParameter(tensor.NewMatrix(1, classes)),
	}
	// One-vs-all sigmoid targets trained with the shared masked-BCE loss:
	// with mutually exclusive rows this optimises the same decision
	// boundaries as softmax cross-entropy and reuses the tested op.
	targets := tensor.NewMatrix(len(graphs), classes)
	for i, l := range labels {
		targets.Set(i, l, 1)
	}
	mask := make([]bool, len(graphs))
	for i := range mask {
		mask[i] = true
	}
	opt := tensor.NewAdam(opts.LR)
	opt.Register(c.w, c.bias)
	for e := 0; e < opts.Epochs; e++ {
		tape := tensor.NewTape()
		logits := tape.AddRowVec(tape.MatMul(tape.Const(x), tape.Param(c.w)), tape.Param(c.bias))
		loss := tape.MaskedBCE(logits, targets, mask)
		tape.Backward(loss)
		opt.Step()
	}
	return c, nil
}

// Predict returns the most likely class for g.
func (c *Classifier) Predict(g *graph.Graph) int {
	scores := c.Scores(g)
	best := 0
	for i, s := range scores {
		if s > scores[best] {
			best = i
		}
	}
	return best
}

// Scores returns the per-class logits for g.
func (c *Classifier) Scores(g *graph.Graph) []float64 {
	feats := c.feat.Features(g)
	out := make([]float64, c.classes)
	for j := 0; j < c.classes; j++ {
		s := c.bias.Value.At(0, j)
		for i, x := range feats {
			s += x * c.w.Value.At(i, j)
		}
		out[j] = s
	}
	return out
}

// Accuracy evaluates the classifier on labelled graphs.
func (c *Classifier) Accuracy(graphs []*graph.Graph, labels []int) float64 {
	if len(graphs) == 0 {
		return math.NaN()
	}
	hits := 0
	for i, g := range graphs {
		if c.Predict(g) == labels[i] {
			hits++
		}
	}
	return float64(hits) / float64(len(graphs))
}
