package classify

import (
	"math/rand"
	"testing"

	"cspm/internal/cspm"
	"cspm/internal/graph"
)

// classGraph generates a small graph of the given class: class 0 plants
// (coreA → leafX leafY) stars, class 1 plants (coreB → leafY leafZ) stars,
// over shared vocabulary and identical topology statistics.
func classGraph(rng *rand.Rand, class int) *graph.Graph {
	const stars = 12
	b := graph.NewBuilder(stars * 3)
	next := graph.VertexID(0)
	for s := 0; s < stars; s++ {
		core := next
		next++
		var coreVal string
		var leafVals [2]string
		if class == 0 {
			coreVal, leafVals = "coreA", [2]string{"leafX", "leafY"}
		} else {
			coreVal, leafVals = "coreB", [2]string{"leafY", "leafZ"}
		}
		// Label noise: occasionally swap in the other class's core.
		if rng.Float64() < 0.1 {
			if class == 0 {
				coreVal = "coreB"
			} else {
				coreVal = "coreA"
			}
		}
		_ = b.AddAttr(core, coreVal)
		for _, lv := range leafVals {
			leaf := next
			next++
			_ = b.AddAttr(leaf, lv)
			_ = b.AddEdge(core, leaf)
		}
		if core > 0 {
			_ = b.AddEdge(core, core-1)
		}
	}
	return b.Build()
}

// referenceModel mines a mixed corpus so both class patterns appear.
func referenceModel(t *testing.T) (*cspm.Model, *graph.Graph) {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	// One big graph containing both classes' stars.
	b := graph.NewBuilder(120)
	next := graph.VertexID(0)
	for s := 0; s < 20; s++ {
		for class := 0; class < 2; class++ {
			core := next
			next++
			if class == 0 {
				_ = b.AddAttr(core, "coreA")
			} else {
				_ = b.AddAttr(core, "coreB")
			}
			leaves := [2]string{"leafX", "leafY"}
			if class == 1 {
				leaves = [2]string{"leafY", "leafZ"}
			}
			for _, lv := range leaves {
				leaf := next
				next++
				_ = b.AddAttr(leaf, lv)
				_ = b.AddEdge(core, leaf)
			}
			if core > 0 {
				_ = b.AddEdge(core, core-1)
			}
		}
	}
	_ = rng
	g := b.Build()
	return cspm.Mine(g), g
}

func TestFeaturizerBasics(t *testing.T) {
	model, g := referenceModel(t)
	f, err := NewFeaturizer(model, g.Vocab(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if f.Dim() == 0 || f.Dim() > 8 {
		t.Fatalf("Dim = %d", f.Dim())
	}
	rng := rand.New(rand.NewSource(2))
	g0 := classGraph(rng, 0)
	feats := f.Features(g0)
	if len(feats) != f.Dim() {
		t.Fatalf("feature length %d != dim %d", len(feats), f.Dim())
	}
	nonzero := 0
	for _, x := range feats {
		if x < 0 {
			t.Fatalf("negative feature %v", x)
		}
		if x > 0 {
			nonzero++
		}
	}
	if nonzero == 0 {
		t.Fatal("class-0 graph matched no reference pattern")
	}
}

func TestFeaturizerUnknownVocabulary(t *testing.T) {
	model, g := referenceModel(t)
	f, err := NewFeaturizer(model, g.Vocab(), 5)
	if err != nil {
		t.Fatal(err)
	}
	// A graph with a disjoint vocabulary must featurise to all zeros.
	b := graph.NewBuilder(2)
	_ = b.AddAttr(0, "unrelated")
	_ = b.AddAttr(1, "values")
	_ = b.AddEdge(0, 1)
	for _, x := range f.Features(b.Build()) {
		if x != 0 {
			t.Fatalf("unknown-vocabulary graph got feature %v", x)
		}
	}
}

func TestFeaturizerValidation(t *testing.T) {
	model, g := referenceModel(t)
	if _, err := NewFeaturizer(model, g.Vocab(), 0); err == nil {
		t.Error("topK=0 accepted")
	}
}

func TestClassifyPlantedClasses(t *testing.T) {
	model, g := referenceModel(t)
	f, err := NewFeaturizer(model, g.Vocab(), 10)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	var train []*graph.Graph
	var trainY []int
	for i := 0; i < 30; i++ {
		class := i % 2
		train = append(train, classGraph(rng, class))
		trainY = append(trainY, class)
	}
	clf, err := Train(f, train, trainY, TrainOptions{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	var test []*graph.Graph
	var testY []int
	for i := 0; i < 20; i++ {
		class := i % 2
		test = append(test, classGraph(rng, class))
		testY = append(testY, class)
	}
	acc := clf.Accuracy(test, testY)
	if acc < 0.85 {
		t.Fatalf("test accuracy %.2f < 0.85 on separable classes", acc)
	}
}

func TestTrainValidation(t *testing.T) {
	model, g := referenceModel(t)
	f, _ := NewFeaturizer(model, g.Vocab(), 5)
	if _, err := Train(f, nil, nil, TrainOptions{}); err == nil {
		t.Error("empty training set accepted")
	}
	if _, err := Train(f, []*graph.Graph{g}, []int{-1}, TrainOptions{}); err == nil {
		t.Error("negative label accepted")
	}
	if _, err := Train(f, []*graph.Graph{g}, []int{0, 1}, TrainOptions{}); err == nil {
		t.Error("length mismatch accepted")
	}
}
