package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"reflect"
	"runtime"
	"sync"
	"testing"

	"cspm/internal/completion"
	icspm "cspm/internal/cspm"
	"cspm/internal/graph"
)

// TestConcurrentCompleteDuringRemine hammers POST /v1/complete from several
// goroutines while the main goroutine drives a staged sequence of mutation
// batches, each forcing a snapshot swap. Every response must be internally
// consistent: the generation it reports must match the scores it returned,
// byte for byte against the scores independently derived by mining that
// generation's graph offline. Run under -race this also keeps the atomic
// snapshot-swap contract honest.
func TestConcurrentCompleteDuringRemine(t *testing.T) {
	g := testGraph(t)
	s := newTestServer(t, g, Options{})
	hs := startHTTP(t, s)
	ctx := ctxShort(t)

	// Stage k publishes generation k+2. The cycle alternates islands and
	// undoes itself, so both dirty-group re-mining and cache replay happen
	// under load and the stage count can grow without inventing new state.
	cycle := [][]Mutation{
		{{Op: OpAddEdge, U: 0, V: 3}},
		{{Op: OpAddAttr, U: 3, Value: "cancer"}},
		{{Op: OpDelEdge, U: 0, V: 3}},
		{{Op: OpDelAttr, U: 3, Value: "cancer"}},
		{{Op: OpAddEdge, U: 4, V: 7}},
		{{Op: OpDelEdge, U: 4, V: 7}},
	}
	var batches [][]Mutation
	for round := 0; round < 8; round++ {
		batches = append(batches, cycle...)
	}
	const (
		target  = graph.VertexID(2)
		topK    = 1000
		hammers = 4
	)

	// Precompute the expected ranked candidates per generation by mining
	// each staged graph independently of the server.
	expect := make(map[uint64][]CandidateJSON)
	staged := g
	record := func(gen uint64) {
		model := icspm.Mine(staged)
		scorer := completion.NewScorer(model, staged)
		expect[gen] = rankRow(scorer.ScoreNode(target), staged.Vocab(), topK)
	}
	record(1)
	for i, batch := range batches {
		staged = Rebuild(staged, batch)
		record(uint64(i + 2))
	}

	type observed struct {
		gen    uint64
		values []CandidateJSON
	}
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		seen    []observed
		stop    = make(chan struct{})
		reqBody = func() []byte {
			raw, err := json.Marshal(CompleteRequest{Vertices: []graph.VertexID{target}, TopK: topK})
			if err != nil {
				t.Fatal(err)
			}
			return raw
		}()
	)
	for w := 0; w < hammers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Post(hs.URL+"/v1/complete", "application/json", bytes.NewReader(reqBody))
				if err != nil {
					mu.Lock()
					seen = append(seen, observed{gen: 0})
					mu.Unlock()
					return
				}
				var body CompleteResponse
				decErr := json.NewDecoder(resp.Body).Decode(&body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK || decErr != nil {
					mu.Lock()
					seen = append(seen, observed{gen: 0})
					mu.Unlock()
					return
				}
				mu.Lock()
				seen = append(seen, observed{gen: body.Generation, values: body.Results[0].Values})
				mu.Unlock()
			}
		}()
	}

	// Stage the batches sequentially — each waits for its generation so the
	// gen→graph mapping stays deterministic while queries overlap re-mines,
	// and for at least one response landed since the previous stage so the
	// observations genuinely interleave the swaps instead of trailing them.
	responses := func() int {
		mu.Lock()
		defer mu.Unlock()
		return len(seen)
	}
	for i, batch := range batches {
		before := responses()
		if err := s.SubmitMutations(batch); err != nil {
			t.Fatal(err)
		}
		if err := s.AwaitGeneration(ctx, uint64(i+2)); err != nil {
			t.Fatal(err)
		}
		for responses() == before {
			select {
			case <-ctx.Done():
				t.Fatal("timed out waiting for a query to land between snapshot swaps")
			default:
				runtime.Gosched()
			}
		}
	}
	close(stop)
	wg.Wait()

	if len(seen) == 0 {
		t.Fatal("no responses observed")
	}
	gens := make(map[uint64]int)
	for i, ob := range seen {
		if ob.gen == 0 {
			t.Fatal("a /v1/complete request failed during re-mining")
		}
		want, ok := expect[ob.gen]
		if !ok {
			t.Fatalf("response %d claims unknown generation %d", i, ob.gen)
		}
		if !reflect.DeepEqual(ob.values, want) {
			t.Fatalf("response %d: generation %d served scores of a different model:\n got %s\nwant %s",
				i, ob.gen, fmtCandidates(ob.values), fmtCandidates(want))
		}
		gens[ob.gen]++
	}
	t.Logf("%d consistent responses across generations %v", len(seen), gens)
}

func fmtCandidates(cs []CandidateJSON) string {
	var b bytes.Buffer
	for _, c := range cs {
		fmt.Fprintf(&b, "%s=%v ", c.Value, c.Score)
	}
	return b.String()
}
