package serve

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"
)

// FuzzMutationBatchDecode hammers the WAL payload decode path with
// adversarial bytes: decodeBatch must never panic, anything it accepts must
// re-encode to a payload that decodes back to the same batch, and batch
// validation over whatever came out must never panic either — a corrupted
// or hostile WAL segment degrades to a decode error, not a crashed server.
// The seed corpus covers the live v2 framing, a bare-gob v1 payload, a
// truncation, and malformed magic/version framings.
func FuzzMutationBatchDecode(f *testing.F) {
	valid, err := encodeBatch([]Mutation{
		{Op: OpAddVertex},
		{Op: OpAddEdge, U: 8, V: 0},
		{Op: OpAddAttr, U: 8, Value: "vldb"},
		{Op: OpDelVertex, U: 8},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	var v1 bytes.Buffer
	if err := gob.NewEncoder(&v1).Encode([]Mutation{{Op: OpAddAttr, U: 1, Value: "x"}}); err != nil {
		f.Fatal(err)
	}
	f.Add(v1.Bytes())
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{})
	f.Add([]byte{0x00, 'W', 'A', 'L'})          // magic with no version
	f.Add([]byte{0x00, 'W', 'A', 'L', 1})       // framed v1 is not a thing
	f.Add([]byte{0x00, 'W', 'A', 'L', 99})      // version from the future
	f.Add([]byte{0x00, 'X', 'A', 'L', 2, 0, 0}) // near-miss magic

	f.Fuzz(func(t *testing.T, payload []byte) {
		muts, err := decodeBatch(payload)
		if err != nil {
			return
		}
		// Round-trip invariance: an accepted batch re-encodes (always as the
		// current version) to a payload that decodes to the identical batch.
		re, err := encodeBatch(muts)
		if err != nil {
			t.Fatalf("re-encode of a decoded batch failed: %v", err)
		}
		again, err := decodeBatch(re)
		if err != nil {
			t.Fatalf("decode of a re-encoded batch failed: %v", err)
		}
		if !reflect.DeepEqual(again, muts) {
			t.Fatalf("round-trip changed the batch:\n got %+v\nwant %+v", again, muts)
		}
		// Validation must reject or accept, never panic, whatever the decoded
		// ops, ids and values look like.
		_, _ = validateBatch(muts, 8)
		_, _ = validateBatch(muts, 0)
	})
}
