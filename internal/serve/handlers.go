package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"time"

	"cspm/internal/completion"
	"cspm/internal/graph"
	"cspm/internal/obs"
)

// Wire types of the /v1 JSON API. Struct field ORDER is part of the
// contract — encoding/json emits fields in declaration order, and the
// golden fixtures under testdata/ pin the bytes — so new fields go at the
// end and nothing gets reordered.

// PatternJSON is one ranked a-star on the wire. Core and leaf values are
// spelled by name (ids are an internal detail that changes across
// generations).
type PatternJSON struct {
	Core       []string `json:"core"`
	Leaf       []string `json:"leaf"`
	FL         int      `json:"fl"`
	FC         int      `json:"fc"`
	Confidence float64  `json:"confidence"`
	CodeLen    float64  `json:"code_len"`
}

// PatternsResponse is the GET /v1/patterns payload: one page of the
// snapshot's ranked pattern list.
type PatternsResponse struct {
	Generation uint64        `json:"generation"`
	Total      int           `json:"total"`
	Offset     int           `json:"offset"`
	Limit      int           `json:"limit"`
	Patterns   []PatternJSON `json:"patterns"`
}

// ModelResponse is the GET /v1/model payload: the served model's summary
// statistics and run diagnostics.
type ModelResponse struct {
	Generation       uint64  `json:"generation"`
	Vertices         int     `json:"vertices"`
	Edges            int     `json:"edges"`
	AttrValues       int     `json:"attr_values"`
	BaselineDL       float64 `json:"baseline_dl"`
	FinalDL          float64 `json:"final_dl"`
	CompressionRatio float64 `json:"compression_ratio"`
	CondEntropy      float64 `json:"cond_entropy"`
	Patterns         int     `json:"patterns"`
	MultiLeaf        int     `json:"multi_leaf"`
	Iterations       int     `json:"iterations"`
	GainEvals        int     `json:"gain_evals"`
	CacheHits        int     `json:"cache_hits"`
	CacheMisses      int     `json:"cache_misses"`
	CacheEvictions   int     `json:"cache_evictions"`
	RemoteJobs       int     `json:"remote_jobs"`
	RemoteRetries    int     `json:"remote_retries"`
	LocalFallbacks   int     `json:"local_fallbacks"`
}

// CompleteRequest is the POST /v1/complete payload: vertices to score, how
// many candidates to return per vertex, and optionally per-vertex external
// model score rows (dense, length |A|, keyed by decimal vertex id) to fuse
// with the CSPM scores as in Fig. 7.
type CompleteRequest struct {
	Vertices    []graph.VertexID     `json:"vertices"`
	TopK        int                  `json:"top_k,omitempty"`
	ModelScores map[string][]float64 `json:"model_scores,omitempty"`
}

// CandidateJSON is one scored attribute value.
type CandidateJSON struct {
	Value string  `json:"value"`
	Score float64 `json:"score"`
}

// CompleteVertexJSON is one vertex's ranked completion candidates.
type CompleteVertexJSON struct {
	Vertex graph.VertexID  `json:"vertex"`
	Values []CandidateJSON `json:"values"`
}

// CompleteResponse is the POST /v1/complete payload. Generation names the
// snapshot every score in Results came from.
type CompleteResponse struct {
	Generation uint64               `json:"generation"`
	Results    []CompleteVertexJSON `json:"results"`
}

// MutationsRequest is the POST /v1/mutations payload.
type MutationsRequest struct {
	Mutations []Mutation `json:"mutations"`
}

// MutationsResponse acknowledges an accepted batch: how many mutations were
// appended, the total backlog the served snapshot does not cover yet, and
// the generation still being served (the re-mine is asynchronous). Batch and
// TraceID (PR 10) identify the batch for /debug/trace/{seq}: Batch is the
// WAL sequence on durable servers, and TraceID echoes the request's
// X-Request-Id (server-minted when the client sent none).
type MutationsResponse struct {
	Accepted   int    `json:"accepted"`
	Pending    int    `json:"pending"`
	Generation uint64 `json:"generation"`
	Batch      uint64 `json:"batch"`
	TraceID    string `json:"trace_id"`
}

// HealthResponse is the GET /v1/healthz payload.
type HealthResponse struct {
	Status             string  `json:"status"`
	Generation         uint64  `json:"generation"`
	SnapshotAgeSeconds float64 `json:"snapshot_age_seconds"`
	PendingMutations   int     `json:"pending_mutations"`
}

const (
	defaultPageLimit = 50
	maxPageLimit     = 1000
	defaultTopK      = 10
	maxTopK          = 1000
	// maxCompleteVertices bounds one completion request's scoring work.
	maxCompleteVertices = 1000
	// maxRequestBody bounds POST bodies: a long-running server must not
	// let one client materialise an unbounded JSON document in memory.
	maxRequestBody = 8 << 20
)

// tenantRoute is one endpoint of the per-namespace API surface. The table
// below is the single source of the route set: the standalone /v1 mux, the
// host's /v2/graphs/{ns} surface, and the deprecated /v1 alias all derive
// from it, so the three can never drift apart.
type tenantRoute struct {
	method  string
	suffix  string // path under the mount prefix, e.g. "/patterns"
	ep      endpoint
	handler func(*Server) http.HandlerFunc
}

// pattern renders the route as a ServeMux pattern under prefix.
func (rt tenantRoute) pattern(prefix string) string {
	return rt.method + " " + prefix + rt.suffix
}

var tenantRoutes = []tenantRoute{
	{"GET", "/patterns", epPatterns, func(s *Server) http.HandlerFunc { return s.handlePatterns }},
	{"POST", "/complete", epComplete, func(s *Server) http.HandlerFunc { return s.handleComplete }},
	{"GET", "/model", epModel, func(s *Server) http.HandlerFunc { return s.handleModel }},
	{"GET", "/healthz", epHealthz, func(s *Server) http.HandlerFunc { return s.handleHealthz }},
	{"GET", "/metrics", epMetrics, func(s *Server) http.HandlerFunc { return s.handleMetrics }},
	{"POST", "/mutations", epMutations, func(s *Server) http.HandlerFunc { return s.handleMutations }},
	{"GET", "/watch", epWatch, func(s *Server) http.HandlerFunc { return s.handleWatch }},
}

// routes builds the standalone /v1 mux (a Server embedded without a Host).
// Every handler runs under timed, which feeds the per-endpoint latency
// histograms in /v1/metrics; misses and method mismatches answer with the
// unified error envelope.
func (s *Server) routes() *http.ServeMux {
	rg := newRegistrar()
	for _, rt := range tenantRoutes {
		rg.handle(rt.pattern("/v1"), s.timed(rt.ep, rt.handler(s)))
	}
	return rg.finish()
}

// timed wraps a handler with the endpoint's latency histogram. For
// /v1/watch the recorded latency includes the long-poll wait by design —
// the histogram then doubles as a view of how long watchers actually hold
// their polls.
func (s *Server) timed(ep endpoint, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		h(w, r)
		s.met.latency[ep].observe(time.Since(start))
	}
}

// writeJSON emits one response object. Responses are small relative to the
// models behind them, so buffering through the encoder directly is fine.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// badRequest rejects a request with the unified error envelope.
func (s *Server) badRequest(w http.ResponseWriter, format string, args ...any) {
	s.met.badRequests.Add(1)
	writeError(w, http.StatusBadRequest, CodeBadRequest, format, args...)
}

// queryInt parses an integer query parameter with a default.
func queryInt(r *http.Request, name string, def int) (int, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, nil
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("bad %s %q: want an integer", name, raw)
	}
	return v, nil
}

func (s *Server) handlePatterns(w http.ResponseWriter, r *http.Request) {
	s.met.patternsReqs.Add(1)
	offset, err := queryInt(r, "offset", 0)
	if err != nil || offset < 0 {
		s.badRequest(w, "bad offset: want a non-negative integer")
		return
	}
	limit, err := queryInt(r, "limit", defaultPageLimit)
	if err != nil || limit <= 0 || limit > maxPageLimit {
		s.badRequest(w, "bad limit: want an integer in [1,%d]", maxPageLimit)
		return
	}
	snap := s.snap.Load()
	patterns := snap.Model.Patterns
	if r.URL.Query().Get("multileaf") == "1" {
		patterns = snap.MultiLeaf
	}
	resp := PatternsResponse{
		Generation: snap.Generation,
		Total:      len(patterns),
		Offset:     offset,
		Limit:      limit,
		Patterns:   []PatternJSON{},
	}
	vocab := snap.Graph.Vocab()
	for i := offset; i < len(patterns) && i < offset+limit; i++ {
		p := patterns[i]
		resp.Patterns = append(resp.Patterns, PatternJSON{
			Core:       attrNames(vocab, p.CoreValues),
			Leaf:       attrNames(vocab, p.LeafValues),
			FL:         p.FL,
			FC:         p.FC,
			Confidence: p.Confidence(),
			CodeLen:    p.CodeLen,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleComplete(w http.ResponseWriter, r *http.Request) {
	s.met.completeReqs.Add(1)
	var req CompleteRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody)).Decode(&req); err != nil {
		s.badRequest(w, "bad request body: %v", err)
		return
	}
	if len(req.Vertices) == 0 {
		s.badRequest(w, "vertices must name at least one vertex")
		return
	}
	if len(req.Vertices) > maxCompleteVertices {
		s.badRequest(w, "too many vertices: %d (max %d per request)", len(req.Vertices), maxCompleteVertices)
		return
	}
	topK := req.TopK
	if topK == 0 {
		topK = defaultTopK
	}
	if topK < 0 || topK > maxTopK {
		s.badRequest(w, "bad top_k: want an integer in [1,%d]", maxTopK)
		return
	}
	// One snapshot for the whole request: the generation answered below is
	// the generation every score was computed against, even if a re-mine
	// publishes mid-request.
	snap := s.snap.Load()
	n := snap.Graph.NumVertices()
	nA := snap.Graph.NumAttrValues()
	for _, v := range req.Vertices {
		if int(v) >= n {
			s.badRequest(w, "vertex %d outside range [0,%d)", v, n)
			return
		}
	}
	fuse, err := parseModelScores(req.ModelScores, n, nA)
	if err != nil {
		s.badRequest(w, "bad model_scores: %v", err)
		return
	}

	// Score and rank once per DISTINCT vertex; duplicated request entries
	// share the result. Fusion is row-granular (completion.FuseRows):
	// whole-graph matrices would cost |V|×|A| per request, and fusing a
	// duplicated vertex twice would square the CSPM weighting.
	vocab := snap.Graph.Vocab()
	ranked := make(map[graph.VertexID][]CandidateJSON, len(req.Vertices))
	for _, v := range req.Vertices {
		if _, done := ranked[v]; done {
			continue
		}
		row := snap.Scorer.ScoreNode(v)
		if mrow, ok := fuse[v]; ok {
			if f := completion.FuseRows(mrow, row); f != nil {
				row = f
			} else {
				row = mrow // no finite signal anywhere: rank the raw model row
			}
		}
		ranked[v] = rankRow(row, vocab, topK)
	}

	resp := CompleteResponse{Generation: snap.Generation}
	for _, v := range req.Vertices {
		resp.Results = append(resp.Results, CompleteVertexJSON{Vertex: v, Values: ranked[v]})
	}
	s.met.verticesScored.Add(uint64(len(req.Vertices)))
	writeJSON(w, http.StatusOK, resp)
}

// parseModelScores validates the optional fusion rows: decimal vertex keys
// in range, dense rows of exactly |A| finite scores (an Inf/NaN would slip
// through min-max normalisation and silently drop values from the ranking).
func parseModelScores(raw map[string][]float64, n, nA int) (map[graph.VertexID][]float64, error) {
	if len(raw) == 0 {
		return nil, nil
	}
	out := make(map[graph.VertexID][]float64, len(raw))
	for key, row := range raw {
		id, err := strconv.ParseUint(key, 10, 32)
		if err != nil || int(id) >= n {
			return nil, fmt.Errorf("key %q is not a vertex id in [0,%d)", key, n)
		}
		if len(row) != nA {
			return nil, fmt.Errorf("row for vertex %s has %d scores, want |A|=%d", key, len(row), nA)
		}
		for j, score := range row {
			if math.IsInf(score, 0) || math.IsNaN(score) {
				return nil, fmt.Errorf("row for vertex %s has non-finite score %v at %d", key, score, j)
			}
		}
		out[graph.VertexID(id)] = row
	}
	return out, nil
}

// rankRow returns the top-k finite scores of row as named candidates,
// ordered by descending score with ascending value name as the tie-break
// (deterministic across identical snapshots).
func rankRow(row []float64, vocab *graph.Vocab, k int) []CandidateJSON {
	out := make([]CandidateJSON, 0, len(row))
	for id, score := range row {
		if math.IsInf(score, 0) || math.IsNaN(score) {
			continue
		}
		out = append(out, CandidateJSON{Value: vocab.Name(graph.AttrID(id)), Score: score})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Value < out[j].Value
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

func (s *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	s.met.modelReqs.Add(1)
	snap := s.snap.Load()
	m := snap.Model
	writeJSON(w, http.StatusOK, ModelResponse{
		Generation:       snap.Generation,
		Vertices:         snap.Graph.NumVertices(),
		Edges:            snap.Graph.NumEdges(),
		AttrValues:       snap.Graph.NumAttrValues(),
		BaselineDL:       m.BaselineDL,
		FinalDL:          m.FinalDL,
		CompressionRatio: m.CompressionRatio(),
		CondEntropy:      m.CondEntropy,
		Patterns:         len(m.Patterns),
		MultiLeaf:        len(snap.MultiLeaf),
		Iterations:       m.Iterations,
		GainEvals:        m.GainEvals,
		CacheHits:        m.CacheHits,
		CacheMisses:      m.CacheMisses,
		CacheEvictions:   m.CacheEvictions,
		RemoteJobs:       m.RemoteJobs,
		RemoteRetries:    m.RemoteRetries,
		LocalFallbacks:   m.LocalFallbacks,
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.met.healthReqs.Add(1)
	// One snapshot load for both fields: generation and age must describe
	// the SAME snapshot even if a re-mine publishes mid-request.
	snap := s.snap.Load()
	writeJSON(w, http.StatusOK, HealthResponse{
		Status:             "ok",
		Generation:         snap.Generation,
		SnapshotAgeSeconds: time.Since(snap.PublishedAt).Seconds(),
		PendingMutations:   s.PendingMutations(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.met.metricsReqs.Add(1)
	writeJSON(w, http.StatusOK, s.Metrics())
}

func (s *Server) handleMutations(w http.ResponseWriter, r *http.Request) {
	s.met.mutationReqs.Add(1)
	var req MutationsRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody)).Decode(&req); err != nil {
		s.badRequest(w, "bad request body: %v", err)
		return
	}
	// Honor the client's request ID so its own logs join the trace; mint
	// one otherwise. Echoed on the 202 either way.
	traceID := r.Header.Get("X-Request-Id")
	if traceID == "" {
		traceID = obs.NewTraceID()
	}
	seq, err := s.submit(req.Mutations, traceID)
	if err != nil {
		if errors.Is(err, ErrUnavailable) {
			// The batch was well-formed but could not be made durable: the
			// client should retry against a recovered server, so this is a
			// 503, not a 400.
			writeUnavailable(w, "%v", err)
			return
		}
		if errors.Is(err, ErrNotLeader) {
			// Followers answer reads; writes belong to the leader the error
			// message names. 409: the request is fine, this server's role is
			// the conflict.
			writeError(w, http.StatusConflict, CodeNotLeader, "%v", err)
			return
		}
		s.badRequest(w, "%v", err)
		return
	}
	w.Header().Set("X-Request-Id", traceID)
	writeJSON(w, http.StatusAccepted, MutationsResponse{
		Accepted:   len(req.Mutations),
		Pending:    s.PendingMutations(),
		Generation: s.snap.Load().Generation,
		Batch:      seq,
		TraceID:    traceID,
	})
}

// attrNames renders interned ids by name, sorted for a stable wire order.
func attrNames(v *graph.Vocab, ids []graph.AttrID) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = v.Name(id)
	}
	sort.Strings(out)
	return out
}
