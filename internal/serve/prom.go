package serve

import (
	"io"
	"sort"

	"cspm/internal/obs"
)

// Prometheus exposition of the host's fleet state (PR 10). The JSON
// /v1/metrics surface stays the pinned wire contract; this file only
// RE-RENDERS those snapshots as text exposition, so the two views can never
// disagree about a counter's value. Family and sample order is fully
// deterministic (fixed family list, tenants sorted by namespace, endpoints
// sorted by label), which is what lets a golden fixture pin the format.

// PromTenant pairs a namespace with the metrics snapshot to expose for it.
type PromTenant struct {
	Namespace string
	Metrics   MetricsSnapshot
}

// WritePrometheus renders the fleet's metrics in Prometheus text format
// (version 0.0.4): per-tenant counters and gauges labelled
// {namespace,role}, per-endpoint request totals and latency histograms
// labelled {namespace,role,endpoint}, and the host-level mine-budget
// gauges. Tenants render sorted by namespace regardless of input order.
func WritePrometheus(w io.Writer, tenants []PromTenant, budget BudgetStats) error {
	ts := make([]PromTenant, len(tenants))
	copy(ts, tenants)
	sort.Slice(ts, func(i, j int) bool { return ts[i].Namespace < ts[j].Namespace })

	perTenant := func(name, typ, help string, v func(MetricsSnapshot) float64) obs.Family {
		f := obs.Family{Name: name, Help: help, Type: typ}
		for _, t := range ts {
			f.Samples = append(f.Samples, obs.Sample{
				Labels: []obs.Label{{Name: "namespace", Value: t.Namespace}, {Name: "role", Value: t.Metrics.Role}},
				Value:  v(t.Metrics),
			})
		}
		return f
	}

	// Per-endpoint request totals and latency histograms come from the same
	// latency map the JSON surface serves (count == requests handled).
	reqs := obs.Family{Name: "cspm_requests_total", Help: "Requests handled, by endpoint.", Type: "counter"}
	durs := obs.Family{Name: "cspm_request_duration_seconds", Help: "Request latency, by endpoint.", Type: "histogram"}
	for _, t := range ts {
		eps := make([]string, 0, len(t.Metrics.Latency))
		for ep := range t.Metrics.Latency {
			eps = append(eps, ep)
		}
		sort.Strings(eps)
		for _, ep := range eps {
			l := t.Metrics.Latency[ep]
			base := []obs.Label{
				{Name: "namespace", Value: t.Namespace},
				{Name: "role", Value: t.Metrics.Role},
				{Name: "endpoint", Value: ep},
			}
			reqs.Samples = append(reqs.Samples, obs.Sample{Labels: base, Value: float64(l.Count)})
			durs.Samples = append(durs.Samples, obs.HistogramSamples(base, l.UpperBounds, l.Buckets, l.SumSeconds)...)
		}
	}

	fams := []obs.Family{
		{Name: "cspm_namespaces", Help: "Live namespaces on this host.", Type: "gauge",
			Samples: []obs.Sample{{Value: float64(len(ts))}}},
		reqs,
		durs,
		perTenant("cspm_bad_requests_total", "counter", "Requests rejected as malformed.",
			func(m MetricsSnapshot) float64 { return float64(m.BadRequests) }),
		perTenant("cspm_vertices_scored_total", "counter", "Vertices scored by completion queries.",
			func(m MetricsSnapshot) float64 { return float64(m.VerticesScored) }),
		perTenant("cspm_mutations_accepted_total", "counter", "Mutation batches accepted.",
			func(m MetricsSnapshot) float64 { return float64(m.MutationsAccepted) }),
		perTenant("cspm_mutations_rejected_total", "counter", "Mutation batches rejected.",
			func(m MetricsSnapshot) float64 { return float64(m.MutationsRejected) }),
		perTenant("cspm_pending_mutations", "gauge", "Mutations accepted but not yet folded.",
			func(m MetricsSnapshot) float64 { return float64(m.PendingMutations) }),
		perTenant("cspm_remines_total", "counter", "Background re-mine passes published.",
			func(m MetricsSnapshot) float64 { return float64(m.Remines) }),
		perTenant("cspm_remine_failures_total", "counter", "Background re-mine passes failed.",
			func(m MetricsSnapshot) float64 { return float64(m.RemineFailures) }),
		perTenant("cspm_remine_seconds_total", "counter", "Total time spent re-mining.",
			func(m MetricsSnapshot) float64 { return m.RemineSecondsTotal }),
		perTenant("cspm_remine_last_seconds", "gauge", "Duration of the most recent re-mine pass.",
			func(m MetricsSnapshot) float64 { return m.RemineSecondsLast }),
		perTenant("cspm_snapshot_generation", "gauge", "Generation of the served snapshot.",
			func(m MetricsSnapshot) float64 { return float64(m.SnapshotGeneration) }),
		perTenant("cspm_snapshot_age_seconds", "gauge", "Age of the served snapshot.",
			func(m MetricsSnapshot) float64 { return m.SnapshotAgeSeconds }),
		perTenant("cspm_wal_appends_total", "counter", "Mutation batches appended to the WAL.",
			func(m MetricsSnapshot) float64 { return float64(m.WALAppends) }),
		perTenant("cspm_wal_append_errors_total", "counter", "WAL appends that failed.",
			func(m MetricsSnapshot) float64 { return float64(m.WALAppendErrors) }),
		perTenant("cspm_persist_errors_total", "counter", "Cache persists and checkpoints that failed.",
			func(m MetricsSnapshot) float64 { return float64(m.PersistErrors) }),
		perTenant("cspm_checkpoints_total", "counter", "Checkpoints committed.",
			func(m MetricsSnapshot) float64 { return float64(m.Checkpoints) }),
		perTenant("cspm_recovered_batches_total", "counter", "WAL batches replayed at startup.",
			func(m MetricsSnapshot) float64 { return float64(m.RecoveredBatches) }),
		perTenant("cspm_quarantined_blobs_total", "counter", "Corrupt cache blobs quarantined.",
			func(m MetricsSnapshot) float64 { return float64(m.QuarantinedBlobs) }),
		perTenant("cspm_checksum_mismatches_total", "counter", "Checksum mismatches detected on read.",
			func(m MetricsSnapshot) float64 { return float64(m.ChecksumMismatches) }),
		perTenant("cspm_replication_syncs_total", "counter", "Generations verified and swapped in by a follower.",
			func(m MetricsSnapshot) float64 { return float64(m.ReplicationSyncs) }),
		perTenant("cspm_replication_verify_failures_total", "counter", "Shipped artifacts that failed verification.",
			func(m MetricsSnapshot) float64 { return float64(m.ReplicationVerifyFailures) }),
		perTenant("cspm_replication_bytes_shipped_total", "counter", "Bytes served to followers.",
			func(m MetricsSnapshot) float64 { return float64(m.ReplicationBytesShipped) }),
		perTenant("cspm_replication_lag", "gauge", "Leader generations published but not yet swapped in.",
			func(m MetricsSnapshot) float64 { return float64(m.ReplicationLag) }),
		perTenant("cspm_replication_wal_position", "gauge", "Last sequence in this server's WAL.",
			func(m MetricsSnapshot) float64 { return float64(m.ReplicationWALPosition) }),
		{Name: "cspm_mine_budget_slots", Help: "Shared mine budget capacity (0 = unbounded).", Type: "gauge",
			Samples: []obs.Sample{{Value: float64(budget.Slots)}}},
		{Name: "cspm_mine_budget_in_use", Help: "Mine budget slots currently held.", Type: "gauge",
			Samples: []obs.Sample{{Value: float64(budget.InUse)}}},
		{Name: "cspm_mine_budget_waiters", Help: "Mining passes blocked waiting for a slot.", Type: "gauge",
			Samples: []obs.Sample{{Value: float64(budget.Waiters)}}},
		{Name: "cspm_mine_budget_acquisitions_total", Help: "Lifetime mine budget acquisitions.", Type: "counter",
			Samples: []obs.Sample{{Value: float64(budget.Acquisitions)}}},
	}
	return obs.WriteFamilies(w, fams)
}
