package serve

import (
	"fmt"

	"cspm/internal/graph"
)

// Mutation ops. Mutations edit vertex attributes, edges, and — since the
// dynamic-vertex extension — the vertex set of the live graph. Because
// vertex ops change |V| mid-batch, validation is batch-level
// (validateBatch) and tracks the running count; the server validates
// against the count implied by everything it has already accepted, not the
// published snapshot, so pending batches compose correctly.
const (
	// OpAddAttr attaches Value to vertex U (no-op if already present).
	OpAddAttr = "add_attr"
	// OpDelAttr detaches Value from vertex U (no-op if absent).
	OpDelAttr = "del_attr"
	// OpAddEdge inserts the undirected edge {U, V} (no-op if present).
	OpAddEdge = "add_edge"
	// OpDelEdge removes the undirected edge {U, V} (no-op if absent).
	OpDelEdge = "del_edge"
	// OpAddVertex appends one attributeless vertex with id = current |V|.
	// It takes no operands; later mutations in the same batch may reference
	// the new vertex.
	OpAddVertex = "add_vertex"
	// OpDelVertex removes vertex U, its attributes and its incident edges.
	// Every vertex with a larger id shifts down by one, so later mutations
	// in the same batch address the shifted ids.
	OpDelVertex = "del_vertex"
)

// Mutation is one edit to the served graph, the unit of the mutation log
// and of the POST /v1/mutations wire format.
type Mutation struct {
	Op string `json:"op"`
	// U is the edited vertex (attribute and vertex ops) or one edge endpoint.
	U graph.VertexID `json:"u"`
	// V is the other edge endpoint (edge ops only).
	V graph.VertexID `json:"v,omitempty"`
	// Value is the attribute value (attribute ops only).
	Value string `json:"value,omitempty"`
}

// validate rejects malformed mutations against a graph that has n vertices
// at the point this mutation applies (vertex ops change the count mid-batch;
// validateBatch tracks it).
func (m Mutation) validate(n int) error {
	switch m.Op {
	case OpAddAttr, OpDelAttr:
		if int(m.U) >= n {
			return fmt.Errorf("vertex %d outside range [0,%d)", m.U, n)
		}
		if m.Value == "" {
			return fmt.Errorf("%s needs a non-empty value", m.Op)
		}
		if m.V != 0 {
			return fmt.Errorf("%s takes no second vertex (got v=%d)", m.Op, m.V)
		}
	case OpAddEdge, OpDelEdge:
		if int(m.U) >= n || int(m.V) >= n {
			return fmt.Errorf("edge {%d,%d} outside vertex range [0,%d)", m.U, m.V, n)
		}
		if m.U == m.V {
			return fmt.Errorf("self-loop {%d,%d} is not allowed", m.U, m.V)
		}
		if m.Value != "" {
			return fmt.Errorf("%s takes no value (got %q)", m.Op, m.Value)
		}
	case OpAddVertex:
		if m.U != 0 || m.V != 0 {
			return fmt.Errorf("add_vertex takes no operands (got u=%d v=%d); the new vertex id is the current vertex count", m.U, m.V)
		}
		if m.Value != "" {
			return fmt.Errorf("add_vertex takes no value (got %q); attach attributes with add_attr", m.Value)
		}
	case OpDelVertex:
		if int(m.U) >= n {
			return fmt.Errorf("vertex %d outside range [0,%d)", m.U, n)
		}
		if m.V != 0 {
			return fmt.Errorf("del_vertex takes no second vertex (got v=%d)", m.V)
		}
		if m.Value != "" {
			return fmt.Errorf("del_vertex takes no value (got %q)", m.Value)
		}
	default:
		return fmt.Errorf("unknown op %q (want %s, %s, %s, %s, %s or %s)",
			m.Op, OpAddAttr, OpDelAttr, OpAddEdge, OpDelEdge, OpAddVertex, OpDelVertex)
	}
	return nil
}

// vertexDelta reports how m changes the vertex count when applied.
func (m Mutation) vertexDelta() int {
	switch m.Op {
	case OpAddVertex:
		return 1
	case OpDelVertex:
		return -1
	}
	return 0
}

// validateBatch validates muts all-or-nothing against a graph of n vertices,
// threading the running vertex count through the batch so a mutation may
// reference a vertex added (or must not reference one removed) earlier in
// the same batch. It returns the batch's net vertex delta.
func validateBatch(muts []Mutation, n int) (delta int, err error) {
	run := n
	for i, m := range muts {
		if err := m.validate(run); err != nil {
			return 0, fmt.Errorf("mutation %d: %w", i, err)
		}
		run += m.vertexDelta()
	}
	return run - n, nil
}

// edits translates wire mutations into graph edits one-to-one.
func edits(muts []Mutation) []graph.Edit {
	out := make([]graph.Edit, len(muts))
	for i, m := range muts {
		e := graph.Edit{U: m.U, V: m.V, Value: m.Value}
		switch m.Op {
		case OpAddAttr:
			e.Op = graph.EditAddAttr
		case OpDelAttr:
			e.Op = graph.EditDelAttr
		case OpAddEdge:
			e.Op = graph.EditAddEdge
		case OpDelEdge:
			e.Op = graph.EditDelEdge
		case OpAddVertex:
			e.Op = graph.EditAddVertex
		case OpDelVertex:
			e.Op = graph.EditDelVertex
		}
		out[i] = e
	}
	return out
}

// Rebuild applies muts to g and freezes the result into a new immutable
// graph. The caller must have validated the batch against g (validateBatch);
// Rebuild panics on an inapplicable mutation.
//
// The heavy lifting — sequential application, vertex-count changes with
// monotone id shifts, and interning-order preservation (the old vocabulary
// stays a stable id prefix so cached shard results replay across rebuilds) —
// lives in graph.Rebuild; see its contract.
func Rebuild(g *graph.Graph, muts []Mutation) *graph.Graph {
	g2, err := graph.Rebuild(g, edits(muts))
	if err != nil {
		panic(fmt.Sprintf("serve: rebuild of validated batch failed: %v", err))
	}
	return g2
}
