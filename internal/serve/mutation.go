package serve

import (
	"fmt"

	"cspm/internal/graph"
)

// Mutation ops. Mutations edit vertex attributes and edges of the live
// graph; the vertex count is fixed at serve time, so vertex-range
// validation against any snapshot stays correct across pending batches.
const (
	// OpAddAttr attaches Value to vertex U (no-op if already present).
	OpAddAttr = "add_attr"
	// OpDelAttr detaches Value from vertex U (no-op if absent).
	OpDelAttr = "del_attr"
	// OpAddEdge inserts the undirected edge {U, V} (no-op if present).
	OpAddEdge = "add_edge"
	// OpDelEdge removes the undirected edge {U, V} (no-op if absent).
	OpDelEdge = "del_edge"
)

// Mutation is one edit to the served graph, the unit of the mutation log
// and of the POST /v1/mutations wire format.
type Mutation struct {
	Op string `json:"op"`
	// U is the edited vertex (attribute ops) or one edge endpoint.
	U graph.VertexID `json:"u"`
	// V is the other edge endpoint (edge ops only).
	V graph.VertexID `json:"v,omitempty"`
	// Value is the attribute value (attribute ops only).
	Value string `json:"value,omitempty"`
}

// validate rejects malformed mutations against a graph of n vertices.
func (m Mutation) validate(n int) error {
	switch m.Op {
	case OpAddAttr, OpDelAttr:
		if int(m.U) >= n {
			return fmt.Errorf("vertex %d outside range [0,%d)", m.U, n)
		}
		if m.Value == "" {
			return fmt.Errorf("%s needs a non-empty value", m.Op)
		}
		if m.V != 0 {
			return fmt.Errorf("%s takes no second vertex (got v=%d)", m.Op, m.V)
		}
	case OpAddEdge, OpDelEdge:
		if int(m.U) >= n || int(m.V) >= n {
			return fmt.Errorf("edge {%d,%d} outside vertex range [0,%d)", m.U, m.V, n)
		}
		if m.U == m.V {
			return fmt.Errorf("self-loop {%d,%d} is not allowed", m.U, m.V)
		}
		if m.Value != "" {
			return fmt.Errorf("%s takes no value (got %q)", m.Op, m.Value)
		}
	default:
		return fmt.Errorf("unknown op %q (want %s, %s, %s or %s)",
			m.Op, OpAddAttr, OpDelAttr, OpAddEdge, OpDelEdge)
	}
	return nil
}

// Rebuild applies muts to g and freezes the result into a new immutable
// graph. The caller must have validated every mutation against g.
//
// The new graph re-interns g's full vocabulary first, in g's id order, and
// only then interns values first seen in muts (in mutation order). Keeping
// the id assignment a stable prefix is what lets the shard cache replay
// entries across rebuilds: cached line stats store interned ids, and the
// name-canonical fingerprints only guarantee a hit when equal ids still
// mean equal names. A value whose last occurrence is deleted keeps its id
// for the same reason.
func Rebuild(g *graph.Graph, muts []Mutation) *graph.Graph {
	n := g.NumVertices()
	b := graph.NewBuilder(n)
	vocab := b.Vocab()
	for _, name := range g.Vocab().Names() {
		vocab.ID(name)
	}

	attrs := make([]map[graph.AttrID]struct{}, n)
	for v := 0; v < n; v++ {
		if lst := g.Attrs(graph.VertexID(v)); len(lst) > 0 {
			set := make(map[graph.AttrID]struct{}, len(lst))
			for _, a := range lst {
				set[a] = struct{}{}
			}
			attrs[v] = set
		}
	}
	edges := make(map[[2]graph.VertexID]struct{}, g.NumEdges())
	for v := 0; v < n; v++ {
		for _, u := range g.Neighbors(graph.VertexID(v)) {
			if graph.VertexID(v) < u {
				edges[[2]graph.VertexID{graph.VertexID(v), u}] = struct{}{}
			}
		}
	}

	for _, m := range muts {
		switch m.Op {
		case OpAddAttr:
			if attrs[m.U] == nil {
				attrs[m.U] = make(map[graph.AttrID]struct{})
			}
			attrs[m.U][vocab.ID(m.Value)] = struct{}{}
		case OpDelAttr:
			// Lookup, not ID: deleting a never-seen value must not intern it.
			if id, ok := vocab.Lookup(m.Value); ok && attrs[m.U] != nil {
				delete(attrs[m.U], id)
			}
		case OpAddEdge:
			edges[edgeKey(m.U, m.V)] = struct{}{}
		case OpDelEdge:
			delete(edges, edgeKey(m.U, m.V))
		}
	}

	for v := 0; v < n; v++ {
		for a := range attrs[v] {
			// Ids and vertices were validated; Builder cannot fail here.
			_ = b.AddAttrID(graph.VertexID(v), a)
		}
	}
	for e := range edges {
		_ = b.AddEdge(e[0], e[1])
	}
	return b.Build()
}

// edgeKey normalises an undirected edge to (min, max).
func edgeKey(u, v graph.VertexID) [2]graph.VertexID {
	if u > v {
		u, v = v, u
	}
	return [2]graph.VertexID{u, v}
}
