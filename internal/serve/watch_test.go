package serve

// GET /v1/watch tests: immediate resolution, publish resolution, clean
// timeout, drain/Close release, parameter validation, and — the load-bearing
// one — no torn generation/model pairing under a few dozen concurrent
// snapshot swaps.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"testing"
	"time"

	icspm "cspm/internal/cspm"
)

// watchGet issues one GET /v1/watch and decodes the response.
func watchGet(t *testing.T, base, query string) (WatchResponse, int) {
	t.Helper()
	resp, err := http.Get(base + "/v1/watch" + query)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out WatchResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return out, resp.StatusCode
}

func TestWatchResolvesImmediatelyAtOrBelowHead(t *testing.T) {
	s := newTestServer(t, testGraph(t), Options{})
	hs := startHTTP(t, s)
	snap := s.Snapshot()
	for _, query := range []string{"", "?generation=0", "?generation=1"} {
		got, code := watchGet(t, hs.URL, query)
		if code != http.StatusOK {
			t.Fatalf("watch %q: status %d", query, code)
		}
		if got.TimedOut {
			t.Fatalf("watch %q timed out with the generation already published", query)
		}
		if got.Generation != snap.Generation || got.ModelSHA256 != snap.ModelSHA256 {
			t.Fatalf("watch %q = {%d %s}, want {%d %s}",
				query, got.Generation, got.ModelSHA256, snap.Generation, snap.ModelSHA256)
		}
	}
}

func TestWatchResolvesOnPublish(t *testing.T) {
	s := newTestServer(t, testGraph(t), Options{})
	hs := startHTTP(t, s)
	ctx := ctxShort(t)

	type result struct {
		resp WatchResponse
		code int
	}
	done := make(chan result, 1)
	go func() {
		got, code := watchGet(t, hs.URL, "?generation=2")
		done <- result{got, code}
	}()
	// Only publishes resolve a poll ahead of head, so wait until the watcher
	// is actually registered before mutating.
	for s.Metrics().RequestsWatch == 0 {
		runtime.Gosched()
	}
	if err := s.SubmitMutations([]Mutation{{Op: OpAddEdge, U: 0, V: 3}}); err != nil {
		t.Fatal(err)
	}
	if err := s.AwaitGeneration(ctx, 2); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-done:
		if r.code != http.StatusOK {
			t.Fatalf("watch status %d", r.code)
		}
		if r.resp.TimedOut {
			t.Fatal("watch reported timed_out after its generation published")
		}
		want := s.Snapshot()
		if r.resp.Generation < 2 {
			t.Fatalf("watch resolved at generation %d, want >= 2", r.resp.Generation)
		}
		if r.resp.Generation == want.Generation && r.resp.ModelSHA256 != want.ModelSHA256 {
			t.Fatalf("watch generation %d carries digest %s, snapshot says %s",
				r.resp.Generation, r.resp.ModelSHA256, want.ModelSHA256)
		}
	case <-ctx.Done():
		t.Fatal("watch did not resolve after its generation published")
	}
}

func TestWatchTimesOutCleanly(t *testing.T) {
	s := newTestServer(t, testGraph(t), Options{})
	hs := startHTTP(t, s)
	start := time.Now()
	got, code := watchGet(t, hs.URL, "?generation=99&timeout_ms=50")
	if code != http.StatusOK {
		t.Fatalf("status %d, want 200 (a timeout is not an error)", code)
	}
	if !got.TimedOut {
		t.Fatal("timed_out = false on a poll for an unpublished generation")
	}
	snap := s.Snapshot()
	if got.Generation != snap.Generation || got.ModelSHA256 != snap.ModelSHA256 {
		t.Fatalf("timeout response = {%d %s}, want current state {%d %s}",
			got.Generation, got.ModelSHA256, snap.Generation, snap.ModelSHA256)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("a 50ms poll took %v; the bound is not being honoured", elapsed)
	}
}

func TestWatchRejectsBadParameters(t *testing.T) {
	s := newTestServer(t, testGraph(t), Options{})
	hs := startHTTP(t, s)
	for _, query := range []string{
		"?generation=-1", "?generation=x", "?timeout_ms=-5", "?timeout_ms=soon",
	} {
		if _, code := watchGet(t, hs.URL, query); code != http.StatusBadRequest {
			t.Errorf("watch %q: status %d, want 400", query, code)
		}
	}
}

// TestWatchDrainReleasesPolls pins the shutdown contract: Drain (and Close,
// which drains first) must release a blocked long-poll immediately with the
// current state instead of holding the connection until its timeout.
func TestWatchDrainReleasesPolls(t *testing.T) {
	s := newTestServer(t, testGraph(t), Options{})
	hs := startHTTP(t, s)

	const watchers = 3
	done := make(chan WatchResponse, watchers)
	for i := 0; i < watchers; i++ {
		go func() {
			got, code := watchGet(t, hs.URL, "?generation=99")
			if code != http.StatusOK {
				t.Errorf("drained watch: status %d", code)
			}
			done <- got
		}()
	}
	for s.Metrics().RequestsWatch < watchers {
		runtime.Gosched()
	}
	s.Drain()
	snap := s.Snapshot()
	deadline := time.After(10 * time.Second)
	for i := 0; i < watchers; i++ {
		select {
		case got := <-done:
			if !got.TimedOut {
				t.Error("drained watch did not report timed_out")
			}
			if got.Generation != snap.Generation || got.ModelSHA256 != snap.ModelSHA256 {
				t.Errorf("drained watch = {%d %s}, want {%d %s}",
					got.Generation, got.ModelSHA256, snap.Generation, snap.ModelSHA256)
			}
		case <-deadline:
			t.Fatal("Drain did not release the watchers (default poll bound is 30s)")
		}
	}

	// Drain is idempotent, and polls arriving AFTER a drain resolve at once.
	s.Drain()
	if got, code := watchGet(t, hs.URL, "?generation=99"); code != http.StatusOK || !got.TimedOut {
		t.Fatalf("post-drain watch = status %d timed_out %v, want 200/true", code, got.TimedOut)
	}
}

// TestWatchNoTornGenerationUnderSwaps hammers /v1/watch while ~48 snapshot
// swaps publish. Every response must pair a generation with EXACTLY the
// model digest published at that generation — a torn read (generation from
// one snapshot, digest from another) fails the lookup.
func TestWatchNoTornGenerationUnderSwaps(t *testing.T) {
	g := testGraph(t)
	s := newTestServer(t, g, Options{})
	hs := startHTTP(t, s)
	ctx := ctxShort(t)

	// The same self-undoing cycle the completion race test uses: 8 rounds of
	// 6 stages = 48 swaps over both islands.
	cycle := [][]Mutation{
		{{Op: OpAddEdge, U: 0, V: 3}},
		{{Op: OpAddAttr, U: 3, Value: "cancer"}},
		{{Op: OpDelEdge, U: 0, V: 3}},
		{{Op: OpDelAttr, U: 3, Value: "cancer"}},
		{{Op: OpAddEdge, U: 4, V: 7}},
		{{Op: OpDelEdge, U: 4, V: 7}},
	}
	var batches [][]Mutation
	for round := 0; round < 8; round++ {
		batches = append(batches, cycle...)
	}

	// Expected digest per generation, derived independently of the server.
	expect := map[uint64]string{1: modelChecksum(icspm.Mine(g))}
	staged := g
	for i, batch := range batches {
		staged = Rebuild(staged, batch)
		expect[uint64(i+2)] = modelChecksum(icspm.Mine(staged))
	}

	const hammers = 4
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		errs []string
		n    int
		stop = make(chan struct{})
	)
	for w := 0; w < hammers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			next := uint64(0)
			for {
				select {
				case <-stop:
					return
				default:
				}
				query := fmt.Sprintf("?generation=%d&timeout_ms=100", next)
				resp, err := http.Get(hs.URL + "/v1/watch" + query)
				if err != nil {
					return // server shutting down under t.Cleanup
				}
				var got WatchResponse
				decErr := json.NewDecoder(resp.Body).Decode(&got)
				resp.Body.Close()
				mu.Lock()
				if resp.StatusCode != http.StatusOK || decErr != nil {
					errs = append(errs, fmt.Sprintf("watch failed: status %d err %v", resp.StatusCode, decErr))
				} else if want, ok := expect[got.Generation]; !ok {
					errs = append(errs, fmt.Sprintf("unknown generation %d", got.Generation))
				} else if got.ModelSHA256 != want {
					errs = append(errs, fmt.Sprintf("TORN: generation %d paired with digest %s, want %s",
						got.Generation, got.ModelSHA256, want))
				}
				n++
				mu.Unlock()
				next = got.Generation + 1
			}
		}()
	}

	responses := func() int {
		mu.Lock()
		defer mu.Unlock()
		return n
	}
	for i, batch := range batches {
		before := responses()
		if err := s.SubmitMutations(batch); err != nil {
			t.Fatal(err)
		}
		if err := s.AwaitGeneration(ctx, uint64(i+2)); err != nil {
			t.Fatal(err)
		}
		for responses() == before {
			select {
			case <-ctx.Done():
				t.Fatal("timed out waiting for a watch response between swaps")
			default:
				runtime.Gosched()
			}
		}
	}
	close(stop)
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	for _, e := range errs {
		t.Error(e)
	}
	if n == 0 {
		t.Fatal("no watch responses observed")
	}
	t.Logf("%d watch responses across %d swaps, all generation/digest pairs intact", n, len(batches))
}

// TestMetricsLatencyHistograms pins the /v1/metrics histogram shape: fixed
// log-spaced bounds, one overflow bucket, bucket counts that sum to the
// request count, and per-endpoint attribution through the timed middleware.
func TestMetricsLatencyHistograms(t *testing.T) {
	s := newTestServer(t, testGraph(t), Options{})
	hs := startHTTP(t, s)
	const polls = 5
	for i := 0; i < polls; i++ {
		if _, code := watchGet(t, hs.URL, ""); code != http.StatusOK {
			t.Fatalf("watch %d: status %d", i, code)
		}
	}
	var m MetricsSnapshot
	getJSON(t, hs.URL+"/v1/metrics", &m)

	for _, ep := range endpointNames {
		h, ok := m.Latency[ep]
		if !ok {
			t.Fatalf("latency map is missing endpoint %q", ep)
		}
		if len(h.UpperBounds) != latencyBuckets || len(h.Buckets) != latencyBuckets+1 {
			t.Fatalf("%s: %d bounds / %d buckets, want %d/%d",
				ep, len(h.UpperBounds), len(h.Buckets), latencyBuckets, latencyBuckets+1)
		}
		if h.UpperBounds[0] != 100e-6 {
			t.Fatalf("%s: first bound %v, want 100µs (fixed bounds are the merge contract)", ep, h.UpperBounds[0])
		}
		for i := 1; i < len(h.UpperBounds); i++ {
			if h.UpperBounds[i] != h.UpperBounds[i-1]*4 {
				t.Fatalf("%s: bounds not log-spaced at %d: %v", ep, i, h.UpperBounds)
			}
		}
		var sum uint64
		for _, b := range h.Buckets {
			sum += b
		}
		if sum != h.Count {
			t.Fatalf("%s: buckets sum to %d, count says %d", ep, sum, h.Count)
		}
	}
	w := m.Latency["watch"]
	if w.Count != polls || m.RequestsWatch != polls {
		t.Fatalf("watch count = %d (histogram) / %d (counter), want %d", w.Count, m.RequestsWatch, polls)
	}
	if w.SumSeconds <= 0 {
		t.Fatal("watch latency sum is zero after real requests")
	}
	// The metrics handler timed ITSELF: its histogram was snapshotted before
	// observe ran, so it may trail by the in-flight request but never lead.
	if mm := m.Latency["metrics"]; mm.Count > m.RequestsMetrics {
		t.Fatalf("metrics histogram count %d exceeds request counter %d", mm.Count, m.RequestsMetrics)
	}
}
