package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"regexp"
	"strings"
	"testing"
	"time"

	"cspm/internal/obs"
)

// --- latencyHist bucket boundaries (PR 10 satellite) ------------------------

// TestLatencyHistBucketBoundaries pins the histogram's boundary semantics:
// the bounds are 100µs·4^k, and observe uses a strict `>` comparison, so a
// value landing EXACTLY on a bound counts in that bound's bucket (le-style,
// matching Prometheus's cumulative le buckets), and anything above the top
// bound lands in the overflow bucket.
func TestLatencyHistBucketBoundaries(t *testing.T) {
	var h latencyHist
	top := time.Duration(latencyBucketBounds[latencyBuckets-1] * float64(time.Second))
	obsv := []struct {
		d    time.Duration
		want int // bucket index
	}{
		{50 * time.Microsecond, 0},
		{100 * time.Microsecond, 0}, // exactly on bounds[0]: in, not above
		{101 * time.Microsecond, 1},
		{400 * time.Microsecond, 1},         // exactly on bounds[1]
		{2 * time.Millisecond, 3},           // between bounds[2]=1.6ms and bounds[3]=6.4ms
		{top, latencyBuckets - 1},           // exactly on the top bound: last finite bucket
		{top + time.Second, latencyBuckets}, // overflow
	}
	for _, o := range obsv {
		h.observe(o.d)
	}
	snap := h.snapshot()
	if snap.Count != uint64(len(obsv)) {
		t.Fatalf("count = %d, want %d", snap.Count, len(obsv))
	}
	wantBuckets := make([]uint64, latencyBuckets+1)
	var wantSum float64
	for _, o := range obsv {
		wantBuckets[o.want]++
		wantSum += o.d.Seconds()
	}
	for i, want := range wantBuckets {
		if snap.Buckets[i] != want {
			t.Fatalf("bucket[%d] = %d, want %d (buckets %v)", i, snap.Buckets[i], want, snap.Buckets)
		}
	}
	if diff := snap.SumSeconds - wantSum; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("sum = %v, want %v", snap.SumSeconds, wantSum)
	}
	if len(snap.UpperBounds) != latencyBuckets || snap.UpperBounds[0] != 100e-6 {
		t.Fatalf("upper bounds = %v", snap.UpperBounds)
	}
}

// --- Budget utilization stats (PR 10 satellite) -----------------------------

func TestBudgetStats(t *testing.T) {
	var nilB *Budget
	if st := nilB.Stats(); st != (BudgetStats{}) {
		t.Fatalf("nil budget stats = %+v, want zero", st)
	}

	unbounded := NewBudget(0)
	unbounded.acquire()
	unbounded.release()
	unbounded.acquire()
	unbounded.release()
	if st := unbounded.Stats(); st.Slots != 0 || st.InUse != 0 || st.Acquisitions != 2 {
		t.Fatalf("unbounded stats = %+v, want 2 acquisitions and no slots", st)
	}

	b := NewBudget(2)
	b.acquire()
	b.acquire()
	st := b.Stats()
	if st.Slots != 2 || st.InUse != 2 || st.Acquisitions != 2 || st.Waiters != 0 {
		t.Fatalf("full budget stats = %+v", st)
	}
	// A third acquire must block and show up as a waiter.
	entered := make(chan struct{})
	done := make(chan struct{})
	go func() {
		close(entered)
		b.acquire()
		close(done)
	}()
	<-entered
	within(t, 5*time.Second, "waiter visible in stats", func() bool {
		return b.Stats().Waiters == 1
	})
	b.release()
	<-done
	st = b.Stats()
	if st.InUse != 2 || st.Acquisitions != 3 || st.Waiters != 0 {
		t.Fatalf("post-handoff stats = %+v", st)
	}
	b.release()
	b.release()
	if st := b.Stats(); st.InUse != 0 {
		t.Fatalf("drained budget InUse = %d", st.InUse)
	}
}

// --- Mutation ack trace IDs -------------------------------------------------

// TestMutationAckTraceID pins the 202 contract: a client X-Request-Id is
// honored and echoed (header + body), a missing one is server-minted, and
// the ack names the batch sequence the trace is queryable under.
func TestMutationAckTraceID(t *testing.T) {
	h := newTestHost(t, HostOptions{RootDir: t.TempDir()})
	if _, err := h.Create("prod", testGraph(t), nil); err != nil {
		t.Fatal(err)
	}
	hs := startHostHTTP(t, h)
	url := hs.URL + "/v2/graphs/prod/mutations"

	post := func(traceID string) (*http.Response, MutationsResponse) {
		t.Helper()
		raw, _ := json.Marshal(MutationsRequest{Mutations: []Mutation{{Op: OpAddAttr, U: 0, Value: "x"}}})
		req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		if traceID != "" {
			req.Header.Set("X-Request-Id", traceID)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var ack MutationsResponse
		if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
			t.Fatal(err)
		}
		return resp, ack
	}

	resp, ack := post("trace-alpha-1")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status = %d, want 202", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-Id"); got != "trace-alpha-1" {
		t.Fatalf("echoed X-Request-Id = %q, want the client's", got)
	}
	if ack.TraceID != "trace-alpha-1" || ack.Batch != 1 {
		t.Fatalf("ack = %+v, want trace_id trace-alpha-1 batch 1", ack)
	}

	resp, ack = post("")
	if ack.TraceID == "" || ack.TraceID != resp.Header.Get("X-Request-Id") {
		t.Fatalf("server-minted trace: body %q, header %q", ack.TraceID, resp.Header.Get("X-Request-Id"))
	}
	if ack.Batch != 2 {
		t.Fatalf("second batch seq = %d, want 2", ack.Batch)
	}

	// The trace is immediately queryable under the acked sequence.
	code, body := getRaw(t, hs.URL+"/v2/graphs/prod/debug/trace/1")
	if code != http.StatusOK {
		t.Fatalf("GET debug/trace/1 = %d: %s", code, body)
	}
	var tr TraceResponse
	if err := json.Unmarshal(body, &tr); err != nil {
		t.Fatal(err)
	}
	if tr.Seq != 1 || tr.TraceID != "trace-alpha-1" || tr.Mutations != 1 {
		t.Fatalf("trace = %+v", tr)
	}
	if len(tr.Events) < 2 || tr.Events[0].Stage != obs.StageSubmitted || tr.Events[1].Stage != obs.StageWALAppended {
		t.Fatalf("trace events = %+v, want submitted then wal_appended", tr.Events)
	}

	// Unknown sequences answer the envelope 404 with the dedicated code.
	code, body = getRaw(t, hs.URL+"/v2/graphs/prod/debug/trace/999")
	var env ErrorJSON
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatal(err)
	}
	if code != http.StatusNotFound || env.Code != CodeTraceNotFound {
		t.Fatalf("missing trace = %d %q, want 404 %s", code, env.Code, CodeTraceNotFound)
	}
}

// --- Prometheus exposition --------------------------------------------------

// promFixture builds a fully deterministic fleet snapshot: every field
// non-zero so the golden pins each family's rendering.
func promFixture() ([]PromTenant, BudgetStats) {
	lat := func(count uint64, sum float64) map[string]LatencyJSON {
		return map[string]LatencyJSON{
			"patterns": {
				Count:       count,
				SumSeconds:  sum,
				UpperBounds: []float64{0.001, 0.01},
				Buckets:     []uint64{count - 3, 2, 1},
			},
		}
	}
	alpha := MetricsSnapshot{
		RequestsPatterns: 6, BadRequests: 1, VerticesScored: 40,
		MutationsAccepted: 9, MutationsRejected: 2, PendingMutations: 3,
		Remines: 4, RemineFailures: 1, RemineSecondsTotal: 1.5, RemineSecondsLast: 0.25,
		SnapshotGeneration: 5, SnapshotAgeSeconds: 12.5,
		WALAppends: 9, WALAppendErrors: 1, PersistErrors: 2,
		RecoveredBatches: 3, QuarantinedBlobs: 1, ChecksumMismatches: 1,
		Checkpoints: 4, Latency: lat(6, 0.75),
		ReplicationSyncs: 0, ReplicationVerifyFailures: 0,
		ReplicationBytesShipped: 2048, ReplicationLag: 0, ReplicationWALPosition: 9,
		Role: RoleLeader,
	}
	beta := MetricsSnapshot{
		RequestsPatterns: 4, BadRequests: 2, VerticesScored: 10,
		MutationsAccepted: 1, MutationsRejected: 1, PendingMutations: 1,
		Remines: 2, RemineFailures: 2, RemineSecondsTotal: 0.5, RemineSecondsLast: 0.125,
		SnapshotGeneration: 4, SnapshotAgeSeconds: 2.25,
		WALAppends: 5, WALAppendErrors: 2, PersistErrors: 1,
		RecoveredBatches: 1, QuarantinedBlobs: 2, ChecksumMismatches: 3,
		Checkpoints: 2, Latency: lat(4, 0.5),
		ReplicationSyncs: 7, ReplicationVerifyFailures: 1,
		ReplicationBytesShipped: 0, ReplicationLag: 1, ReplicationWALPosition: 9,
		Role: RoleFollower,
	}
	// Deliberately unsorted: WritePrometheus must order by namespace.
	tenants := []PromTenant{{Namespace: "beta", Metrics: beta}, {Namespace: "alpha", Metrics: alpha}}
	return tenants, BudgetStats{Slots: 4, InUse: 2, Waiters: 1, Acquisitions: 37}
}

// TestPromExpositionGolden pins the host /metrics text format byte-for-byte:
// family order, label order, escaping, histogram expansion, float rendering.
// Regenerate after an intentional change with
// UPDATE_WIRE_GOLDEN=1 go test ./internal/serve -run PromExposition.
func TestPromExpositionGolden(t *testing.T) {
	const path = "testdata/metrics_prom.golden"
	tenants, budget := promFixture()
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, tenants, budget); err != nil {
		t.Fatal(err)
	}
	if os.Getenv("UPDATE_WIRE_GOLDEN") != "" {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d bytes to %s", buf.Len(), path)
	}
	committed, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read fixture: %v (regenerate with UPDATE_WIRE_GOLDEN=1)", err)
	}
	if !bytes.Equal(committed, buf.Bytes()) {
		t.Errorf("Prometheus exposition diverged from the committed format:\n got:\n%s\nwant:\n%s", buf.Bytes(), committed)
	}
}

// promLine matches one well-formed exposition sample line.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (-?[0-9.e+-]+|\+Inf|NaN)$`)

// TestHostPromMetricsEndpoint scrapes a live host: right Content-Type, every
// line parses, and the scrape covers tenants, budget and histograms.
func TestHostPromMetricsEndpoint(t *testing.T) {
	h := newTestHost(t, HostOptions{MineBudget: 2})
	if _, err := h.Create("prod", testGraph(t), nil); err != nil {
		t.Fatal(err)
	}
	hs := startHostHTTP(t, h)
	// Exercise an endpoint so the histogram families have samples.
	readBytes(t, hs.URL+"/v2/graphs/prod/patterns")

	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.PromContentType {
		t.Fatalf("Content-Type = %q, want %q", ct, obs.PromContentType)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Fatalf("malformed exposition line: %q", line)
		}
	}
	for _, want := range []string{
		"cspm_namespaces 1\n",
		`cspm_requests_total{namespace="prod",role="standalone",endpoint="patterns"} 1` + "\n",
		`cspm_request_duration_seconds_bucket{namespace="prod",role="standalone",endpoint="patterns",le="+Inf"} 1` + "\n",
		"cspm_mine_budget_slots 2\n",
		"cspm_mine_budget_acquisitions_total 1\n", // the initial mine took a slot
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("scrape missing %q:\n%s", want, text)
		}
	}
}

// --- Leader-side follower tracking (PR 10 satellite) ------------------------

func TestLeaderTracksFollowerStatus(t *testing.T) {
	leader := newTestHost(t, HostOptions{RootDir: t.TempDir()})
	if _, err := leader.Create("prod", testGraph(t), nil); err != nil {
		t.Fatal(err)
	}
	lhs := startHostHTTP(t, leader)

	// Before any follower attaches, the leader reports none.
	var st ReplicationStatusResponse
	if err := json.Unmarshal(readBytes(t, lhs.URL+"/v2/graphs/prod/replication/status"), &st); err != nil {
		t.Fatal(err)
	}
	if st.Role != RoleLeader || len(st.Followers) != 0 {
		t.Fatalf("pre-attach status = %+v, want leader with no followers", st)
	}

	replica := newReplicaHost(t, lhs.URL, HostOptions{})
	rs, ok := replica.Tenant("prod")
	if !ok {
		t.Fatal("replica did not mirror prod")
	}
	if err := rs.AwaitGeneration(ctxShort(t), 1); err != nil {
		t.Fatal(err)
	}
	within(t, 15*time.Second, "leader sees the follower", func() bool {
		if err := json.Unmarshal(readBytes(t, lhs.URL+"/v2/graphs/prod/replication/status"), &st); err != nil {
			t.Fatal(err)
		}
		return len(st.Followers) == 1 && st.Followers[0].ShippedGeneration >= 1
	})
	f := st.Followers[0]
	if f.ID == "" {
		t.Fatal("follower status has no ID")
	}
	if f.ManifestFetchAgeSeconds < 0 {
		t.Fatalf("manifest fetch age = %v, want >= 0 (has fetched)", f.ManifestFetchAgeSeconds)
	}
	// WAL fetches only happen once there is a tail to ship; -1 (never) and a
	// recent age are both legal here — the field just must be well-formed.
	if f.WALFetchAgeSeconds < -1 {
		t.Fatalf("wal fetch age = %v", f.WALFetchAgeSeconds)
	}
}

// --- Fleet-joined lifecycle trace (PR 10 acceptance) ------------------------

// stageIndex returns the position of stage in evs, or -1.
func stageIndex(evs []TraceEventJSON, stage string) int {
	for i, ev := range evs {
		if ev.Stage == stage {
			return i
		}
	}
	return -1
}

// TestFleetTraceEndToEnd is the PR 10 acceptance scenario: one mutation
// batch submitted with an X-Request-Id flows submit → wal_append → fold →
// re-mine → checkpoint on the leader and ship → verify → swap on the
// follower, and the two /debug/trace/{seq} views join on the leader's
// sequence number and carry the same trace ID.
func TestFleetTraceEndToEnd(t *testing.T) {
	// The leader's debounce holds the fold open long enough for the
	// follower's fast poll to mirror the WAL record BEFORE the checkpoint
	// prunes the shippable tail; without that ordering the wal_mirrored and
	// replicated_to_follower stages can legitimately be missed.
	tmpl := fastFollower()
	tmpl.Debounce = 750 * time.Millisecond
	leader := newTestHost(t, HostOptions{RootDir: t.TempDir(), Tenant: tmpl})
	if _, err := leader.Create("prod", testGraph(t), nil); err != nil {
		t.Fatal(err)
	}
	lhs := startHostHTTP(t, leader)
	replica := newReplicaHost(t, lhs.URL, HostOptions{})
	rhs := startHostHTTP(t, replica)
	rs, ok := replica.Tenant("prod")
	if !ok {
		t.Fatal("replica did not mirror prod")
	}
	if err := rs.AwaitGeneration(ctxShort(t), 1); err != nil {
		t.Fatal(err)
	}

	const traceID = "fleet-trace-e2e"
	raw, _ := json.Marshal(MutationsRequest{Mutations: []Mutation{
		{Op: OpAddAttr, U: 0, Value: "observed"},
		{Op: OpAddEdge, U: 0, V: 3},
	}})
	req, err := http.NewRequest(http.MethodPost, lhs.URL+"/v2/graphs/prod/mutations", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-Id", traceID)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var ack MutationsResponse
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || ack.Batch == 0 {
		t.Fatalf("submit = %d, ack %+v", resp.StatusCode, ack)
	}

	// Wait for the whole pipeline: leader folds and checkpoints generation 2,
	// follower verifies and swaps it in.
	if err := rs.AwaitGeneration(ctxShort(t), 2); err != nil {
		t.Fatal(err)
	}

	traceURL := func(base string) string {
		return base + "/v2/graphs/prod/debug/trace/" + jsonNumber(ack.Batch)
	}
	var lt TraceResponse
	within(t, 15*time.Second, "leader trace completes", func() bool {
		if err := json.Unmarshal(readBytes(t, traceURL(lhs.URL)), &lt); err != nil {
			t.Fatal(err)
		}
		return stageIndex(lt.Events, obs.StageCheckpointed) >= 0
	})
	if lt.Seq != ack.Batch || lt.TraceID != traceID || lt.Role != RoleLeader || lt.Mutations != 2 {
		t.Fatalf("leader trace header = %+v", lt)
	}
	// The leader half, in pipeline order.
	order := []string{
		obs.StageSubmitted, obs.StageWALAppended, obs.StageRemineStart,
		obs.StageFolded, obs.StagePublished, obs.StageCheckpointed,
	}
	last := -1
	for _, stage := range order {
		i := stageIndex(lt.Events, stage)
		if i < 0 {
			t.Fatalf("leader trace missing stage %q: %+v", stage, lt.Events)
		}
		if i <= last {
			t.Fatalf("leader stage %q out of order: %+v", stage, lt.Events)
		}
		last = i
	}
	ship := stageIndex(lt.Events, obs.StageReplicated)
	if ship < 0 {
		t.Fatalf("leader trace missing %q: %+v", obs.StageReplicated, lt.Events)
	}
	if lt.Events[ship].Note == "" {
		t.Fatal("replicated_to_follower event does not name the follower")
	}
	for _, stage := range []string{obs.StageFolded, obs.StagePublished, obs.StageCheckpointed} {
		if ev := lt.Events[stageIndex(lt.Events, stage)]; ev.Generation != 2 {
			t.Fatalf("leader %s generation = %d, want 2", stage, ev.Generation)
		}
	}

	// The follower half, joined by the SAME leader sequence number, carrying
	// the SAME trace ID (shipped inside the replication WAL records).
	var ft TraceResponse
	within(t, 15*time.Second, "follower trace completes", func() bool {
		if err := json.Unmarshal(readBytes(t, traceURL(rhs.URL)), &ft); err != nil {
			t.Fatal(err)
		}
		return stageIndex(ft.Events, obs.StageSwapped) >= 0
	})
	if ft.Seq != ack.Batch || ft.TraceID != traceID || ft.Role != RoleFollower {
		t.Fatalf("follower trace header = %+v (want seq %d, trace %q)", ft, ack.Batch, traceID)
	}
	last = -1
	for _, stage := range []string{obs.StageWALMirrored, obs.StageVerified, obs.StageSwapped} {
		i := stageIndex(ft.Events, stage)
		if i < 0 {
			t.Fatalf("follower trace missing stage %q: %+v", stage, ft.Events)
		}
		if i <= last {
			t.Fatalf("follower stage %q out of order: %+v", stage, ft.Events)
		}
		last = i
	}
	for _, stage := range []string{obs.StageVerified, obs.StageSwapped} {
		if ev := ft.Events[stageIndex(ft.Events, stage)]; ev.Generation != 2 {
			t.Fatalf("follower %s generation = %d, want 2", stage, ev.Generation)
		}
	}

	// The re-mine that folded the batch left a stage profile behind.
	var rms ReminesResponse
	if err := json.Unmarshal(readBytes(t, lhs.URL+"/v2/graphs/prod/debug/remines"), &rms); err != nil {
		t.Fatal(err)
	}
	if len(rms.Remines) == 0 {
		t.Fatal("leader /debug/remines is empty after a fold")
	}
	prof := rms.Remines[0]
	if prof.Generation != 2 || prof.Batches != 1 || prof.Error != "" {
		t.Fatalf("newest re-mine profile = %+v, want generation 2 covering 1 batch", prof)
	}
	for _, span := range []string{obs.SpanRebuild, obs.SpanPublish, obs.SpanCheckpoint} {
		found := false
		for _, sp := range prof.Spans {
			if sp.Stage == span {
				found = true
			}
		}
		if !found {
			t.Fatalf("re-mine profile missing span %q: %+v", span, prof.Spans)
		}
	}
}

// jsonNumber renders a uint64 for a URL path.
func jsonNumber(v uint64) string {
	b, _ := json.Marshal(v)
	return string(b)
}
