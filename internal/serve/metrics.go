package serve

import (
	"sync/atomic"
	"time"
)

// metrics holds the server's lifetime counters. Everything is atomic so the
// handlers never take a lock on the read path.
type metrics struct {
	patternsReqs   atomic.Uint64
	completeReqs   atomic.Uint64
	modelReqs      atomic.Uint64
	healthReqs     atomic.Uint64
	metricsReqs    atomic.Uint64
	mutationReqs   atomic.Uint64
	badRequests    atomic.Uint64
	verticesScored atomic.Uint64

	mutationsAccepted atomic.Uint64
	mutationsRejected atomic.Uint64

	remines          atomic.Uint64
	remineFailures   atomic.Uint64
	remineNanosTotal atomic.Int64
	remineNanosLast  atomic.Int64

	walAppends         atomic.Uint64
	walAppendErrors    atomic.Uint64
	persistErrors      atomic.Uint64 // failed checkpoints (cache entry failures counted separately)
	recoveredBatches   atomic.Uint64
	quarantinedBlobs   atomic.Uint64
	checksumMismatches atomic.Uint64
}

// MetricsSnapshot is the GET /v1/metrics payload: expvar-style flat
// counters plus the snapshot's identity and age. Field order is part of
// the wire contract (pinned by the golden fixture test).
type MetricsSnapshot struct {
	RequestsPatterns  uint64 `json:"requests_patterns"`
	RequestsComplete  uint64 `json:"requests_complete"`
	RequestsModel     uint64 `json:"requests_model"`
	RequestsHealthz   uint64 `json:"requests_healthz"`
	RequestsMetrics   uint64 `json:"requests_metrics"`
	RequestsMutations uint64 `json:"requests_mutations"`
	BadRequests       uint64 `json:"bad_requests"`
	VerticesScored    uint64 `json:"vertices_scored"`

	MutationsAccepted uint64 `json:"mutations_accepted"`
	MutationsRejected uint64 `json:"mutations_rejected"`
	PendingMutations  int    `json:"pending_mutations"`

	Remines            uint64  `json:"remines"`
	RemineFailures     uint64  `json:"remine_failures"`
	RemineSecondsTotal float64 `json:"remine_seconds_total"`
	RemineSecondsLast  float64 `json:"remine_seconds_last"`

	SnapshotGeneration uint64  `json:"snapshot_generation"`
	SnapshotAgeSeconds float64 `json:"snapshot_age_seconds"`

	// Durability counters (PR 6). PersistErrors sums cache entries that
	// failed to persist and checkpoints that failed to commit.
	WALAppends         uint64 `json:"wal_appends"`
	WALAppendErrors    uint64 `json:"wal_append_errors"`
	PersistErrors      uint64 `json:"persist_errors"`
	RecoveredBatches   uint64 `json:"recovered_batches"`
	QuarantinedBlobs   uint64 `json:"quarantined_blobs"`
	ChecksumMismatches uint64 `json:"checksum_mismatches"`
}

// Metrics snapshots the server's counters and the served snapshot's
// generation and age.
func (s *Server) Metrics() MetricsSnapshot {
	snap := s.snap.Load()
	return MetricsSnapshot{
		RequestsPatterns:  s.met.patternsReqs.Load(),
		RequestsComplete:  s.met.completeReqs.Load(),
		RequestsModel:     s.met.modelReqs.Load(),
		RequestsHealthz:   s.met.healthReqs.Load(),
		RequestsMetrics:   s.met.metricsReqs.Load(),
		RequestsMutations: s.met.mutationReqs.Load(),
		BadRequests:       s.met.badRequests.Load(),
		VerticesScored:    s.met.verticesScored.Load(),

		MutationsAccepted: s.met.mutationsAccepted.Load(),
		MutationsRejected: s.met.mutationsRejected.Load(),
		PendingMutations:  s.PendingMutations(),

		Remines:            s.met.remines.Load(),
		RemineFailures:     s.met.remineFailures.Load(),
		RemineSecondsTotal: time.Duration(s.met.remineNanosTotal.Load()).Seconds(),
		RemineSecondsLast:  time.Duration(s.met.remineNanosLast.Load()).Seconds(),

		SnapshotGeneration: snap.Generation,
		SnapshotAgeSeconds: time.Since(snap.PublishedAt).Seconds(),

		WALAppends:         s.met.walAppends.Load(),
		WALAppendErrors:    s.met.walAppendErrors.Load(),
		PersistErrors:      s.met.persistErrors.Load() + s.cache.Stats().PersistErrors,
		RecoveredBatches:   s.met.recoveredBatches.Load(),
		QuarantinedBlobs:   s.met.quarantinedBlobs.Load(),
		ChecksumMismatches: s.met.checksumMismatches.Load(),
	}
}
