package serve

import (
	"sync/atomic"
	"time"
)

// endpoint indexes the per-endpoint request counters and latency histograms.
type endpoint int

const (
	epPatterns endpoint = iota
	epComplete
	epModel
	epHealthz
	epMetrics
	epMutations
	epWatch
	epReplication
	epDebug
	numEndpoints
)

// endpointNames are the wire labels of the latency map, in endpoint order.
var endpointNames = [numEndpoints]string{
	"patterns", "complete", "model", "healthz", "metrics", "mutations", "watch", "replication", "debug",
}

// latencyBuckets is the number of finite histogram bounds; one overflow
// bucket rides after them.
const latencyBuckets = 10

// latencyBucketBounds are the FIXED log-spaced upper bounds, in seconds, of
// every endpoint latency histogram: 100µs·4^k for k = 0..9 (100µs up to
// ~26s). Fixed bounds make histograms from different processes and
// generations mergeable by bucket index; the top bound comfortably covers a
// full /v1/watch long-poll.
var latencyBucketBounds = func() [latencyBuckets]float64 {
	var b [latencyBuckets]float64
	ub := 100e-6
	for i := range b {
		b[i] = ub
		ub *= 4
	}
	return b
}()

// latencyHist is one endpoint's histogram. Observations are lock-free; a
// snapshot read is not atomic across buckets, which is fine for monitoring
// (each bucket is monotone).
type latencyHist struct {
	count   atomic.Uint64
	sumNs   atomic.Int64
	buckets [latencyBuckets + 1]atomic.Uint64 // last bucket = above the top bound
}

func (h *latencyHist) observe(d time.Duration) {
	h.count.Add(1)
	h.sumNs.Add(d.Nanoseconds())
	sec := d.Seconds()
	i := 0
	for i < latencyBuckets && sec > latencyBucketBounds[i] {
		i++
	}
	h.buckets[i].Add(1)
}

func (h *latencyHist) snapshot() LatencyJSON {
	out := LatencyJSON{
		Count:       h.count.Load(),
		SumSeconds:  time.Duration(h.sumNs.Load()).Seconds(),
		UpperBounds: latencyBucketBounds[:],
		Buckets:     make([]uint64, latencyBuckets+1),
	}
	for i := range h.buckets {
		out.Buckets[i] = h.buckets[i].Load()
	}
	return out
}

// metrics holds the server's lifetime counters. Everything is atomic so the
// handlers never take a lock on the read path.
type metrics struct {
	patternsReqs   atomic.Uint64
	completeReqs   atomic.Uint64
	modelReqs      atomic.Uint64
	healthReqs     atomic.Uint64
	metricsReqs    atomic.Uint64
	mutationReqs   atomic.Uint64
	watchReqs      atomic.Uint64
	badRequests    atomic.Uint64
	verticesScored atomic.Uint64

	latency [numEndpoints]latencyHist

	mutationsAccepted atomic.Uint64
	mutationsRejected atomic.Uint64

	remines          atomic.Uint64
	remineFailures   atomic.Uint64
	remineNanosTotal atomic.Int64
	remineNanosLast  atomic.Int64

	walAppends         atomic.Uint64
	walAppendErrors    atomic.Uint64
	persistErrors      atomic.Uint64 // failed checkpoints (cache entry failures counted separately)
	checkpoints        atomic.Uint64 // checkpoints committed (manifest durable)
	recoveredBatches   atomic.Uint64
	quarantinedBlobs   atomic.Uint64
	checksumMismatches atomic.Uint64

	replicationSyncs          atomic.Uint64 // generations a follower verified and swapped in
	replicationVerifyFailures atomic.Uint64 // shipped artifacts that failed their commitment
	replicationBytesShipped   atomic.Uint64 // leader-side bytes served to followers
}

// LatencyJSON is one endpoint's request-latency histogram on the wire:
// fixed log-spaced upper bounds in seconds, counts per bucket with the last
// entry counting observations above the top bound, plus the running count
// and sum for average latency. Watch latencies include the long-poll wait.
type LatencyJSON struct {
	Count       uint64    `json:"count"`
	SumSeconds  float64   `json:"sum_seconds"`
	UpperBounds []float64 `json:"upper_bounds_seconds"`
	Buckets     []uint64  `json:"buckets"`
}

// MetricsSnapshot is the GET /v1/metrics payload: expvar-style flat
// counters plus the snapshot's identity and age. Field order is part of
// the wire contract (pinned by the golden fixture test); new fields go at
// the end.
type MetricsSnapshot struct {
	RequestsPatterns  uint64 `json:"requests_patterns"`
	RequestsComplete  uint64 `json:"requests_complete"`
	RequestsModel     uint64 `json:"requests_model"`
	RequestsHealthz   uint64 `json:"requests_healthz"`
	RequestsMetrics   uint64 `json:"requests_metrics"`
	RequestsMutations uint64 `json:"requests_mutations"`
	BadRequests       uint64 `json:"bad_requests"`
	VerticesScored    uint64 `json:"vertices_scored"`

	MutationsAccepted uint64 `json:"mutations_accepted"`
	MutationsRejected uint64 `json:"mutations_rejected"`
	PendingMutations  int    `json:"pending_mutations"`

	Remines            uint64  `json:"remines"`
	RemineFailures     uint64  `json:"remine_failures"`
	RemineSecondsTotal float64 `json:"remine_seconds_total"`
	RemineSecondsLast  float64 `json:"remine_seconds_last"`

	SnapshotGeneration uint64  `json:"snapshot_generation"`
	SnapshotAgeSeconds float64 `json:"snapshot_age_seconds"`

	// Durability counters (PR 6). PersistErrors sums cache entries that
	// failed to persist and checkpoints that failed to commit.
	WALAppends         uint64 `json:"wal_appends"`
	WALAppendErrors    uint64 `json:"wal_append_errors"`
	PersistErrors      uint64 `json:"persist_errors"`
	RecoveredBatches   uint64 `json:"recovered_batches"`
	QuarantinedBlobs   uint64 `json:"quarantined_blobs"`
	ChecksumMismatches uint64 `json:"checksum_mismatches"`

	// Dynamic-vertex / watch additions (PR 7).
	RequestsWatch uint64 `json:"requests_watch"`
	Checkpoints   uint64 `json:"checkpoints"`
	// Latency maps endpoint label → histogram (encoding/json emits map keys
	// sorted, so the wire order is deterministic).
	Latency map[string]LatencyJSON `json:"latency"`

	// Replication fleet counters (PR 9). ReplicationLag is leader generations
	// a follower has seen published but not yet verified and swapped in (0 on
	// leaders and standalones); ReplicationWALPosition is the last sequence
	// in this server's log — on a follower, how far the mirror has caught up.
	ReplicationSyncs          uint64 `json:"replication_syncs"`
	ReplicationVerifyFailures uint64 `json:"replication_verify_failures"`
	ReplicationBytesShipped   uint64 `json:"replication_bytes_shipped"`
	ReplicationLag            uint64 `json:"replication_lag"`
	ReplicationWALPosition    uint64 `json:"replication_wal_position"`
	Role                      string `json:"role"`
}

// Metrics snapshots the server's counters and the served snapshot's
// generation and age.
func (s *Server) Metrics() MetricsSnapshot {
	snap := s.snap.Load()
	lat := make(map[string]LatencyJSON, numEndpoints)
	for ep := endpoint(0); ep < numEndpoints; ep++ {
		lat[endpointNames[ep]] = s.met.latency[ep].snapshot()
	}
	return MetricsSnapshot{
		RequestsPatterns:  s.met.patternsReqs.Load(),
		RequestsComplete:  s.met.completeReqs.Load(),
		RequestsModel:     s.met.modelReqs.Load(),
		RequestsHealthz:   s.met.healthReqs.Load(),
		RequestsMetrics:   s.met.metricsReqs.Load(),
		RequestsMutations: s.met.mutationReqs.Load(),
		BadRequests:       s.met.badRequests.Load(),
		VerticesScored:    s.met.verticesScored.Load(),

		MutationsAccepted: s.met.mutationsAccepted.Load(),
		MutationsRejected: s.met.mutationsRejected.Load(),
		PendingMutations:  s.PendingMutations(),

		Remines:            s.met.remines.Load(),
		RemineFailures:     s.met.remineFailures.Load(),
		RemineSecondsTotal: time.Duration(s.met.remineNanosTotal.Load()).Seconds(),
		RemineSecondsLast:  time.Duration(s.met.remineNanosLast.Load()).Seconds(),

		SnapshotGeneration: snap.Generation,
		SnapshotAgeSeconds: time.Since(snap.PublishedAt).Seconds(),

		WALAppends:         s.met.walAppends.Load(),
		WALAppendErrors:    s.met.walAppendErrors.Load(),
		PersistErrors:      s.met.persistErrors.Load() + s.cache.Stats().PersistErrors,
		RecoveredBatches:   s.met.recoveredBatches.Load(),
		QuarantinedBlobs:   s.met.quarantinedBlobs.Load(),
		ChecksumMismatches: s.met.checksumMismatches.Load(),

		RequestsWatch: s.met.watchReqs.Load(),
		Checkpoints:   s.met.checkpoints.Load(),
		Latency:       lat,

		ReplicationSyncs:          s.met.replicationSyncs.Load(),
		ReplicationVerifyFailures: s.met.replicationVerifyFailures.Load(),
		ReplicationBytesShipped:   s.met.replicationBytesShipped.Load(),
		ReplicationLag:            s.replicationLag(snap.Generation),
		ReplicationWALPosition:    s.walPos.Load(),
		Role:                      s.Role(),
	}
}

// replicationLag is how many leader generations a follower trails: the
// newest generation its leader published minus the one it serves.
func (s *Server) replicationLag(served uint64) uint64 {
	if lg := s.lastLeaderGen.Load(); s.opts.Follow != nil && lg > served {
		return lg - served
	}
	return 0
}
