package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	icspm "cspm/internal/cspm"
	"cspm/internal/graph"
	"cspm/internal/shardcache"
	"cspm/internal/wal"
)

// fastFollower is the tenant template replica tests use: tight retry pacing
// so corruption/retry paths resolve in test time instead of the 1s default.
func fastFollower() Options {
	return Options{RetryBackoff: 20 * time.Millisecond, RetryBackoffMax: 100 * time.Millisecond}
}

// newReplicaHost follows leaderURL with fast pacing.
func newReplicaHost(t *testing.T, leaderURL string, opts HostOptions) *Host {
	t.Helper()
	if opts.RootDir == "" {
		opts.RootDir = t.TempDir()
	}
	opts.Follow = leaderURL
	if opts.FollowPoll == 0 {
		opts.FollowPoll = 25 * time.Millisecond
	}
	opts.Tenant = fastFollower()
	return newTestHost(t, opts)
}

// within polls cond until it holds or the deadline passes.
func within(t *testing.T, d time.Duration, desc string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("condition not reached within %v: %s", d, desc)
}

// getRaw fetches url and returns the status code and raw body.
func getRaw(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// postRaw POSTs body as JSON and returns the status code and raw response.
func postRaw(t *testing.T, url string, body any) (int, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

// readBytes fetches url asserting 200 and returns the raw response body.
func readBytes(t *testing.T, url string) []byte {
	t.Helper()
	code, body := getRaw(t, url)
	if code != http.StatusOK {
		t.Fatalf("GET %s = %d: %s", url, code, body)
	}
	return body
}

// requireReplicaInSync asserts the replica serves generation >= gen with a
// model — and read-path bytes — identical to the leader's.
func requireReplicaInSync(t *testing.T, ls, rs *Server, lURL, rURL string, gen uint64) {
	t.Helper()
	if err := rs.AwaitGeneration(ctxShort(t), gen); err != nil {
		t.Fatalf("replica never reached generation %d: %v", gen, err)
	}
	lsum, rsum := modelChecksum(ls.Snapshot().Model), modelChecksum(rs.Snapshot().Model)
	if lsum != rsum {
		t.Fatalf("generation %d model diverged: leader %s, replica %s", gen, lsum, rsum)
	}
	const page = "/patterns?limit=1000"
	if l, r := readBytes(t, lURL+page), readBytes(t, rURL+page); string(l) != string(r) {
		t.Fatalf("generation %d /patterns bytes diverged:\nleader  %s\nreplica %s", gen, l, r)
	}
	req := CompleteRequest{Vertices: []graph.VertexID{0, 1, 3}, TopK: 5}
	lcode, lc := postRaw(t, lURL+"/complete", req)
	rcode, rc := postRaw(t, rURL+"/complete", req)
	if lcode != http.StatusOK || rcode != http.StatusOK {
		t.Fatalf("POST /complete = leader %d, replica %d", lcode, rcode)
	}
	if string(lc) != string(rc) {
		t.Fatalf("generation %d /complete bytes diverged:\nleader  %s\nreplica %s", gen, lc, rc)
	}
}

// TestReplicaFollowsLiveLeader is the headline acceptance check: a replica
// following a live, concurrently mutated leader publishes every generation
// bit-identically — same model commitment, same /patterns and /complete
// bytes — first in lock-step, then through a burst landing mid-pull.
func TestReplicaFollowsLiveLeader(t *testing.T) {
	g := testGraph(t)
	leader := newTestHost(t, HostOptions{RootDir: t.TempDir()})
	if _, err := leader.Create("prod", g, nil); err != nil {
		t.Fatal(err)
	}
	lhs := startHostHTTP(t, leader)
	replica := newReplicaHost(t, lhs.URL, HostOptions{})
	rhs := startHostHTTP(t, replica)

	ls, _ := leader.Tenant("prod")
	rs, ok := replica.Tenant("prod")
	if !ok {
		t.Fatal("replica host did not mirror the prod namespace")
	}
	if got := rs.Role(); got != RoleFollower {
		t.Fatalf("replica tenant role = %q, want %q", got, RoleFollower)
	}
	if got := ls.Role(); got != RoleLeader {
		t.Fatalf("leader tenant role = %q, want %q", got, RoleLeader)
	}
	lURL, rURL := lhs.URL+"/v2/graphs/prod", rhs.URL+"/v2/graphs/prod"
	requireReplicaInSync(t, ls, rs, lURL, rURL, 1)

	ctx := ctxShort(t)
	batches := testBatches()
	// Lock-step: each batch folds into its own generation and must ship
	// bit-identically before the next lands.
	for i, b := range batches[:3] {
		if err := ls.SubmitMutations(b); err != nil {
			t.Fatalf("batch %d: %v", i+1, err)
		}
		if err := ls.Flush(ctx); err != nil {
			t.Fatal(err)
		}
		requireReplicaInSync(t, ls, rs, lURL, rURL, ls.Snapshot().Generation)
	}
	// Burst: the remaining batches land while the replica is mid-pull; the
	// replica converges on whatever generation the leader coalesces them to.
	for _, b := range batches[3:] {
		if err := ls.SubmitMutations(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := ls.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	requireReplicaInSync(t, ls, rs, lURL, rURL, ls.Snapshot().Generation)

	// Ground truth: the replica's converged model is the offline mine of the
	// full workload, not merely whatever the leader happens to serve.
	if want, got := prefixChecksums(t, g, batches)[len(batches)], modelChecksum(rs.Snapshot().Model); got != want {
		t.Fatalf("replica converged on %s, offline mine says %s", got, want)
	}
	m := rs.Metrics()
	if m.Role != RoleFollower || m.ReplicationSyncs == 0 {
		t.Fatalf("replica metrics = role %q, %d syncs; want follower with at least one sync", m.Role, m.ReplicationSyncs)
	}
	if lm := ls.Metrics(); lm.Role != RoleLeader || lm.ReplicationWALPosition != uint64(len(batches)) {
		t.Fatalf("leader metrics = role %q, wal position %d; want leader at position %d",
			lm.Role, lm.ReplicationWALPosition, len(batches))
	}
}

// TestReplicaMirrorsNamespaceSet checks fleet membership: namespaces created
// on the leader appear on the replica as followers, deletes propagate, and
// the replica's own admin surface refuses direct membership edits.
func TestReplicaMirrorsNamespaceSet(t *testing.T) {
	leader := newTestHost(t, HostOptions{RootDir: t.TempDir()})
	if _, err := leader.Create("prod", testGraph(t), nil); err != nil {
		t.Fatal(err)
	}
	lhs := startHostHTTP(t, leader)
	replica := newReplicaHost(t, lhs.URL, HostOptions{})

	// Direct membership edits on the replica must not fork the fleet.
	if _, err := replica.Create("rogue", testGraphB(t), nil); !strings.Contains(err.Error(), "not the leader") {
		t.Fatalf("replica Create = %v, want ErrNotLeader", err)
	}
	if _, err := replica.Delete("prod"); !strings.Contains(err.Error(), "not the leader") {
		t.Fatalf("replica Delete = %v, want ErrNotLeader", err)
	}

	// A namespace born after the replica attached still propagates.
	gb := testGraphB(t)
	if _, err := leader.Create("beta", gb, nil); err != nil {
		t.Fatal(err)
	}
	within(t, 15*time.Second, "beta appears on the replica", func() bool {
		s, ok := replica.Tenant("beta")
		return ok && s.Snapshot().Generation >= 1
	})
	bs, _ := replica.Tenant("beta")
	if got := bs.Role(); got != RoleFollower {
		t.Fatalf("propagated tenant role = %q, want follower", got)
	}
	requireModelEqual(t, bs.Snapshot().Model, icspm.Mine(gb))

	// And a leader-side delete removes the mirror.
	if _, err := leader.Delete("beta"); err != nil {
		t.Fatal(err)
	}
	within(t, 15*time.Second, "beta disappears from the replica", func() bool {
		_, ok := replica.Tenant("beta")
		return !ok
	})
}

// TestFollowerWritePathRejectAndProxy pins the replica write contract: 409
// not_leader naming the leader by default, transparent forwarding with
// ProxyWrites.
func TestFollowerWritePathRejectAndProxy(t *testing.T) {
	leader := newTestHost(t, HostOptions{RootDir: t.TempDir()})
	if _, err := leader.Create("prod", testGraph(t), nil); err != nil {
		t.Fatal(err)
	}
	lhs := startHostHTTP(t, leader)
	ls, _ := leader.Tenant("prod")

	reject := newReplicaHost(t, lhs.URL, HostOptions{})
	rejectHS := startHostHTTP(t, reject)
	rrs, _ := reject.Tenant("prod")
	if err := rrs.SubmitMutations([]Mutation{{Op: OpAddAttr, U: 0, Value: "x"}}); err == nil || !strings.Contains(err.Error(), lhs.URL) {
		t.Fatalf("follower SubmitMutations = %v, want ErrNotLeader naming %s", err, lhs.URL)
	}
	code, body := postRaw(t, rejectHS.URL+"/v2/graphs/prod/mutations",
		MutationsRequest{Mutations: []Mutation{{Op: OpAddAttr, U: 0, Value: "x"}}})
	if code != http.StatusConflict {
		t.Fatalf("follower mutation status = %d, want 409: %s", code, body)
	}
	var env ErrorJSON
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatal(err)
	}
	if env.Code != CodeNotLeader || !strings.Contains(env.Error, lhs.URL) {
		t.Fatalf("follower mutation envelope = %+v, want code %q naming the leader", env, CodeNotLeader)
	}

	proxy := newReplicaHost(t, lhs.URL, HostOptions{ProxyWrites: true})
	proxyHS := startHostHTTP(t, proxy)
	prs, _ := proxy.Tenant("prod")
	var ack MutationsResponse
	if resp := postJSON(t, proxyHS.URL+"/v2/graphs/prod/mutations",
		MutationsRequest{Mutations: []Mutation{{Op: OpAddAttr, U: 0, Value: "cancer"}}}, &ack); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("proxied mutation status = %d, want 202", resp.StatusCode)
	}
	// The write landed on the LEADER: it folds there, then ships back.
	ctx := ctxShort(t)
	if err := ls.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if gen := ls.Snapshot().Generation; gen < 2 {
		t.Fatalf("leader generation after proxied write = %d, want >= 2", gen)
	}
	requireReplicaInSync(t, ls, prs, lhs.URL+"/v2/graphs/prod", proxyHS.URL+"/v2/graphs/prod", ls.Snapshot().Generation)
}

// TestReplicaQuarantinesCorruptShippedGraph corrupts the shipped graph bytes
// in flight: the replica must quarantine the artifact, count the verify
// failure, keep serving its old snapshot, and converge once the corruption
// clears.
func TestReplicaQuarantinesCorruptShippedGraph(t *testing.T) {
	g := testGraph(t)
	leader := newTestHost(t, HostOptions{RootDir: t.TempDir()})
	if _, err := leader.Create("prod", g, nil); err != nil {
		t.Fatal(err)
	}
	lhs := startHostHTTP(t, leader)
	ls, _ := leader.Tenant("prod")

	// A corrupting proxy between replica and leader: pass-through until the
	// flag flips, then flip one byte of every shipped graph artifact.
	var corrupt atomic.Bool
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		resp, err := http.Get(lhs.URL + r.URL.RequestURI())
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		if corrupt.Load() && strings.HasSuffix(r.URL.Path, "/replication/graph") && len(body) > 0 {
			body[len(body)/2] ^= 0xff
		}
		w.Header().Set("Content-Type", resp.Header.Get("Content-Type"))
		w.WriteHeader(resp.StatusCode)
		_, _ = w.Write(body)
	}))
	t.Cleanup(proxy.Close)

	rroot := t.TempDir()
	replica := newReplicaHost(t, proxy.URL, HostOptions{RootDir: rroot})
	rs, ok := replica.Tenant("prod")
	if !ok {
		t.Fatal("replica host did not mirror the prod namespace")
	}
	if err := rs.AwaitGeneration(ctxShort(t), 1); err != nil {
		t.Fatal(err)
	}

	corrupt.Store(true)
	if err := ls.SubmitMutations(testBatches()[0]); err != nil {
		t.Fatal(err)
	}
	if err := ls.Flush(ctxShort(t)); err != nil {
		t.Fatal(err)
	}
	within(t, 15*time.Second, "replica counts a verify failure", func() bool {
		return rs.Metrics().ReplicationVerifyFailures >= 1
	})
	// The old snapshot must survive: corruption degrades to staleness, never
	// to serving unverified bytes.
	if gen := rs.Snapshot().Generation; gen != 1 {
		t.Fatalf("replica swapped to generation %d past a failed verify", gen)
	}
	requireModelEqual(t, rs.Snapshot().Model, icspm.Mine(g))
	qpath := filepath.Join(wal.Layout{Root: rroot}.CheckpointDir("prod"), checkpointGraphName+shardcache.QuarantineSuffix)
	if _, err := os.Stat(qpath); err != nil {
		t.Fatalf("corrupt graph was not quarantined at %s: %v", qpath, err)
	}

	// Clear the fault: the follower's retry loop converges on its own.
	corrupt.Store(false)
	if err := rs.AwaitGeneration(ctxShort(t), 2); err != nil {
		t.Fatalf("replica never recovered after the corruption cleared: %v", err)
	}
	if lsum, rsum := modelChecksum(ls.Snapshot().Model), modelChecksum(rs.Snapshot().Model); lsum != rsum {
		t.Fatalf("post-recovery models diverged: leader %s, replica %s", lsum, rsum)
	}
}

// TestPromoteReplicaLosesNoAckedBatch is the failover acceptance check: the
// leader acknowledges batches it never publishes (debounce pinned to an
// hour), dies abruptly, and the promoted replica must still fold every one
// of them — the mirrored WAL is the only copy that survives.
func TestPromoteReplicaLosesNoAckedBatch(t *testing.T) {
	g := testGraph(t)
	leader := newTestHost(t, HostOptions{RootDir: t.TempDir()})
	if _, err := leader.Create("prod", g, &Options{Debounce: time.Hour}); err != nil {
		t.Fatal(err)
	}
	lhs := startHostHTTP(t, leader)
	ls, _ := leader.Tenant("prod")

	replica := newReplicaHost(t, lhs.URL, HostOptions{})
	rhs := startHostHTTP(t, replica)
	rs, ok := replica.Tenant("prod")
	if !ok {
		t.Fatal("replica host did not mirror the prod namespace")
	}

	batches := testBatches()
	for i, b := range batches {
		if err := ls.SubmitMutations(b); err != nil {
			t.Fatalf("batch %d: %v", i+1, err)
		}
	}
	within(t, 15*time.Second, "mirror WAL catches the acknowledged tail", func() bool {
		return rs.Metrics().ReplicationWALPosition >= uint64(len(batches))
	})
	// Nothing published: the acked batches exist ONLY in the two WALs.
	if gen := rs.Snapshot().Generation; gen != 1 {
		t.Fatalf("replica generation = %d before any leader publish", gen)
	}

	// Kill the leader abruptly — no drain, no final checkpoint ships.
	lhs.CloseClientConnections()
	lhs.Close()

	var pr PromoteResponse
	if resp := postJSON(t, rhs.URL+"/v2/graphs/prod/replication/promote", nil, &pr); resp.StatusCode != http.StatusOK {
		t.Fatalf("promote status = %d", resp.StatusCode)
	}
	if pr.Role != RoleLeader || pr.ReplayedBatches != len(batches) {
		t.Fatalf("promote = %+v, want role leader with %d replayed batches", pr, len(batches))
	}
	ps, ok := replica.Tenant("prod")
	if !ok {
		t.Fatal("promoted tenant vanished")
	}
	if want, got := prefixChecksums(t, g, batches)[len(batches)], modelChecksum(ps.Snapshot().Model); got != want {
		t.Fatalf("promoted model = %s, offline mine of every acked batch = %s — acknowledged data lost", got, want)
	}

	// The promoted tenant takes writes, and the (now dead-lettered) membership
	// sync must not tear it down just because its old leader is unreachable.
	if err := ps.SubmitMutations([]Mutation{{Op: OpAddAttr, U: 0, Value: "promoted"}}); err != nil {
		t.Fatalf("promoted tenant rejected a write: %v", err)
	}
	if err := ps.Flush(ctxShort(t)); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond) // a few sync-loop ticks against the dead leader
	if _, ok := replica.Tenant("prod"); !ok {
		t.Fatal("membership sync removed the promoted tenant")
	}
}

// TestReplicationRouteGating pins who answers what: leaders ship, memory
// tenants and followers answer 409 not_replicable, promote of a non-follower
// answers 409 not_follower, blob names are sanitized, and none of it leaks
// onto the frozen /v1 alias.
func TestReplicationRouteGating(t *testing.T) {
	leader := newTestHost(t, HostOptions{RootDir: t.TempDir()})
	if _, err := leader.Create("default", testGraph(t), nil); err != nil {
		t.Fatal(err)
	}
	lhs := startHostHTTP(t, leader)

	var st ReplicationStatusResponse
	getJSON(t, lhs.URL+"/v2/graphs/default/replication/status", &st)
	if st.Role != RoleLeader || st.Generation != 1 || st.WALPosition != 0 {
		t.Fatalf("leader status = %+v", st)
	}
	if man := readBytes(t, lhs.URL+"/v2/graphs/default/replication/manifest"); !strings.Contains(string(man), "model_sha256") {
		t.Fatalf("shipped manifest carries no model commitment: %s", man)
	}
	for _, bad := range []string{"", "../MANIFEST", "x.txt", "a/b.gob"} {
		resp := getJSON(t, lhs.URL+"/v2/graphs/default/replication/blob?name="+bad, nil)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("blob name %q = %d, want 400", bad, resp.StatusCode)
		}
	}
	if code, body := postRaw(t, lhs.URL+"/v2/graphs/default/replication/promote", nil); code != http.StatusConflict ||
		!strings.Contains(string(body), CodeNotFollower) {
		t.Fatalf("promote of a leader = %d %s, want 409 %s", code, body, CodeNotFollower)
	}
	// The /v1 alias predates replication and must not grow it.
	if resp := getJSON(t, lhs.URL+"/v1/replication/status", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/v1/replication/status = %d, want 404", resp.StatusCode)
	}

	// A memory-only tenant has nothing to ship.
	mem := newTestHost(t, HostOptions{})
	if _, err := mem.Create("mem", testGraph(t), nil); err != nil {
		t.Fatal(err)
	}
	mhs := startHostHTTP(t, mem)
	getJSON(t, mhs.URL+"/v2/graphs/mem/replication/status", &st)
	if st.Role != RoleStandalone {
		t.Fatalf("memory tenant role = %q, want standalone", st.Role)
	}
	code, body := getRaw(t, mhs.URL+"/v2/graphs/mem/replication/manifest")
	var env ErrorJSON
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatal(err)
	}
	if code != http.StatusConflict || env.Code != CodeNotReplicable {
		t.Fatalf("memory manifest = %d %q, want 409 %q", code, env.Code, CodeNotReplicable)
	}
}
