package serve

import (
	"net/http"
	"strconv"
	"time"

	"cspm/internal/obs"
)

// Debug surface (PR 10): mutation lifecycle traces and re-mine stage
// profiles. Mounted ONLY under /v2/graphs/{ns} — like replication, this is
// fleet plumbing, not part of the frozen /v1 contract — and rides the
// shared registrar for envelope misses.

// TraceEventJSON is one lifecycle stage event on the wire.
type TraceEventJSON struct {
	Stage      string    `json:"stage"`
	At         time.Time `json:"at"`
	Generation uint64    `json:"generation,omitempty"`
	Note       string    `json:"note,omitempty"`
}

// TraceResponse is the GET /debug/trace/{seq} payload: one batch's recorded
// lifecycle on THIS server. Role tells a fleet-wide query which half of the
// story it is reading; the seq is the join key across leader and followers.
type TraceResponse struct {
	Seq       uint64           `json:"seq"`
	TraceID   string           `json:"trace_id,omitempty"`
	Role      string           `json:"role"`
	Mutations int              `json:"mutations"`
	Events    []TraceEventJSON `json:"events"`
}

// RemineSpanJSON is one timed phase of a re-mine pass.
type RemineSpanJSON struct {
	Stage   string  `json:"stage"`
	Seconds float64 `json:"seconds"`
}

// RemineProfileJSON is one background pass's stage breakdown.
type RemineProfileJSON struct {
	Generation   uint64           `json:"generation"`
	StartedAt    time.Time        `json:"started_at"`
	TotalSeconds float64          `json:"total_seconds"`
	Batches      int              `json:"batches"`
	Error        string           `json:"error,omitempty"`
	Spans        []RemineSpanJSON `json:"spans"`
}

// ReminesResponse is the GET /debug/remines payload: recent re-mine passes,
// newest first.
type ReminesResponse struct {
	Remines []RemineProfileJSON `json:"remines"`
}

// debugRoutes is the per-tenant debug surface, mounted v2-only.
var debugRoutes = []tenantRoute{
	{"GET", "/debug/trace/{seq}", epDebug, func(s *Server) http.HandlerFunc { return s.handleDebugTrace }},
	{"GET", "/debug/remines", epDebug, func(s *Server) http.HandlerFunc { return s.handleDebugRemines }},
}

func (s *Server) handleDebugTrace(w http.ResponseWriter, r *http.Request) {
	seq, err := strconv.ParseUint(r.PathValue("seq"), 10, 64)
	if err != nil {
		s.badRequest(w, "bad seq %q: want a batch sequence number", r.PathValue("seq"))
		return
	}
	t, ok := s.traces.Get(seq)
	if !ok {
		writeError(w, http.StatusNotFound, CodeTraceNotFound,
			"no trace for batch %d (never submitted here, or evicted from the %d-entry ring)", seq, s.traces.Cap())
		return
	}
	resp := TraceResponse{
		Seq:       t.Seq,
		TraceID:   t.TraceID,
		Role:      s.Role(),
		Mutations: t.Mutations,
		Events:    make([]TraceEventJSON, len(t.Events)),
	}
	for i, ev := range t.Events {
		resp.Events[i] = TraceEventJSON{Stage: ev.Stage, At: ev.At, Generation: ev.Generation, Note: ev.Note}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleDebugRemines(w http.ResponseWriter, r *http.Request) {
	profiles := s.profiles.Recent()
	resp := ReminesResponse{Remines: make([]RemineProfileJSON, len(profiles))}
	for i, p := range profiles {
		pj := RemineProfileJSON{
			Generation:   p.Generation,
			StartedAt:    p.StartedAt,
			TotalSeconds: p.Total.Seconds(),
			Batches:      p.Batches,
			Error:        p.Err,
			Spans:        make([]RemineSpanJSON, len(p.Spans)),
		}
		for j, sp := range p.Spans {
			pj.Spans[j] = RemineSpanJSON{Stage: sp.Stage, Seconds: sp.Duration.Seconds()}
		}
		resp.Remines[i] = pj
	}
	writeJSON(w, http.StatusOK, resp)
}

// Traces exposes the server's trace ring (embedders and tests).
func (s *Server) Traces() *obs.TraceRing { return s.traces }

// Remines exposes the server's re-mine profile ring (embedders and tests).
func (s *Server) Remines() *obs.ProfileRing { return s.profiles }
