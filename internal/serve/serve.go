// Package serve hosts a mined CSPM model behind a long-running HTTP/JSON
// service: the online half of the ROADMAP's production-scale system. A
// Server owns a live attributed graph plus its mined model and answers
// every read from an immutable snapshot published by atomic pointer swap,
// so query latency never blocks on mining. Writes arrive as batched
// mutations (vertex add/remove, attribute and edge edits) appended to a mutation log; a
// background re-mine loop coalesces pending batches, rebuilds the graph,
// re-mines it through the incremental cached miner (only component groups
// whose fingerprint changed are re-mined) or the distributed miner when a
// transport is configured, and publishes the next snapshot. A failed or
// poisoned re-mine keeps the last good snapshot serving and re-queues the
// batch, so the service degrades to staleness, never to unavailability.
// See DESIGN.md "Online serving".
package serve

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"cspm/internal/completion"
	icspm "cspm/internal/cspm"
	"cspm/internal/graph"
	"cspm/internal/obs"
	"cspm/internal/shardcache"
	"cspm/internal/shardrpc"
	"cspm/internal/wal"
)

// Options configures a Server. The zero value serves with the paper's
// parameter-free search, a fresh unbounded in-memory shard cache, local
// re-mining and immediate (uncoalesced) re-mine triggering.
type Options struct {
	// Mining are the search options every re-mine runs with. ShardEdgeCut
	// is rejected: serving re-mines are component-grained (the cache and
	// the distributed fan-out have no stable per-group unit under edge
	// cuts), exactly like MineShardedCached.
	Mining icspm.Options
	// Cache is the shard-result cache consulted by every re-mine, so an
	// edit that dirties one component group re-mines only that group. Nil
	// uses a fresh unbounded in-memory cache owned by the server.
	Cache *shardcache.Cache
	// PersistDir, when non-empty, is where Close flushes the cache's
	// resident entries (one blob per key, the shard-cache disk format), so
	// a restarted server warm-starts from a disk-backed cache opened on
	// the same directory.
	PersistDir string
	// Transport, when non-nil, fans dirty component groups out to remote
	// workers through MineDistributed instead of mining them in-process.
	// The server does not close the transport; the caller owns it.
	Transport shardrpc.Transport
	// RemoteRetries, RemoteTimeout and RemoteNoFallback mirror
	// DistributedOptions when Transport is set.
	RemoteRetries    int
	RemoteTimeout    time.Duration
	RemoteNoFallback bool
	// Debounce is how long the re-mine loop waits after a trigger before
	// collecting the pending batch, so bursts of mutations coalesce into
	// one re-mine. 0 re-mines as soon as the loop is free.
	Debounce time.Duration
	// RetryBackoff is the base delay after a failed re-mine before retrying
	// the re-queued batch, so acknowledged mutations are never stranded
	// waiting for the next external trigger. Consecutive failures back off
	// exponentially (with deterministic jitter) from this base up to
	// RetryBackoffMax, so a persistently dead fleet is not retry-stormed.
	// 0 uses a 1s default.
	RetryBackoff time.Duration
	// RetryBackoffMax caps the exponential retry backoff. 0 uses a 30s
	// default; it is raised to RetryBackoff if set below it.
	RetryBackoffMax time.Duration
	// WALDir, when non-empty, enables the durability contract: a mutation
	// batch is acknowledged only after it is fsync'd into a write-ahead log
	// under this directory, and NewServer replays unfolded batches on
	// startup, so a crash never loses an acknowledged batch (see DESIGN.md
	// "Durability & crash recovery"). With PersistDir also set, every
	// published re-mine checkpoints the folded state there and compacts the
	// log; WAL-only servers keep the full log and replay it all on restart.
	WALDir string
	// WALSegmentBytes is the WAL's segment rotation threshold
	// (0 = wal.DefaultSegmentBytes).
	WALSegmentBytes int64
	// WALFS overrides the filesystem the WAL runs on (nil = the real one).
	// Recovery tests inject a fault-injecting shim here; requires WALDir.
	WALFS wal.FS
	// Standby makes NewServer refuse to cold-start: it must find durable
	// state — a committed checkpoint in PersistDir or acknowledged batches
	// in WALDir — to promote, so a warm spare pointed at a primary's
	// directories can never silently come up empty. With a checkpoint
	// present the base graph argument may be nil. Requires WALDir or
	// PersistDir.
	Standby bool
	// Budget, when non-nil, is the shared re-mine worker budget this server
	// draws every mining pass (initial mine, re-mines, the shutdown drain)
	// from. A multi-tenant Host hands every tenant the same Budget so one
	// namespace's mutation storm queues behind the budget instead of
	// starving the rest; queries never touch it. Nil is unbounded.
	Budget *Budget
	// Follow, when non-nil, makes this server a FOLLOWER: instead of mining
	// mutations it pulls each generation the named leader publishes, verifies
	// every shipped artifact against the MANIFEST's SHA-256 commitments, and
	// mirrors the leader's WAL tail so promotion loses no acknowledged batch.
	// Followers serve all read endpoints locally and reject mutations with
	// ErrNotLeader. Requires both WALDir (the mirror log) and PersistDir (the
	// mirrored checkpoint); incompatible with Standby.
	Follow *FollowOptions
	// Logger receives the server's structured component logs (log/slog). A
	// multi-tenant Host hands every tenant a logger pre-tagged with its
	// namespace. Nil discards — observability is strictly opt-in and the
	// zero Options stays silent.
	Logger *slog.Logger
}

// defaultRetryBackoff and defaultRetryBackoffMax pace automatic retries of
// a failed re-mine: exponential from the base, capped at the max.
const (
	defaultRetryBackoff    = time.Second
	defaultRetryBackoffMax = 30 * time.Second
)

// retryDelay is the wait before retry number `failures` (1-based count of
// consecutive failures): base·2^(failures-1), capped at max, with a
// deterministic ±12.5% jitter derived from the failure count so concurrent
// servers desynchronise without any shared randomness and tests can pin the
// exact schedule.
func retryDelay(base, max time.Duration, failures uint64) time.Duration {
	if base <= 0 {
		base = defaultRetryBackoff
	}
	if max <= 0 {
		max = defaultRetryBackoffMax
	}
	if max < base {
		max = base
	}
	d := base
	for i := uint64(1); i < failures && d < max; i++ {
		// Clamp BEFORE doubling: past max/2 the next doubling would reach or
		// overshoot max — and for a max above MaxInt64/2 it would overflow
		// time.Duration negative, escaping a clamp that only checks d > max.
		if d > max/2 {
			d = max
			break
		}
		d *= 2
	}
	if d > max {
		d = max
	}
	if span := int64(d / 8); span > 0 {
		h := failures * 0x9E3779B97F4A7C15 // splitmix64 increment: cheap avalanche
		j := time.Duration(int64(h%uint64(2*span+1)) - span)
		if j > max-d {
			// A positive jitter may not push past max; adding first and
			// clamping after would overflow when d is already near MaxInt64.
			j = max - d
		}
		d += j
	}
	return d
}

// Validate sanity-checks the options.
func (o Options) Validate() error {
	if err := o.Mining.Validate(); err != nil {
		return err
	}
	if o.Mining.ShardStrategy == icspm.ShardEdgeCut {
		return fmt.Errorf("serve: ShardEdgeCut cannot be served (re-mining is component-grained)")
	}
	if o.RemoteRetries < 0 {
		return fmt.Errorf("serve: RemoteRetries must be >= 0, got %d", o.RemoteRetries)
	}
	if o.RemoteTimeout < 0 {
		return fmt.Errorf("serve: RemoteTimeout must be >= 0, got %v", o.RemoteTimeout)
	}
	if o.Debounce < 0 {
		return fmt.Errorf("serve: Debounce must be >= 0, got %v", o.Debounce)
	}
	if o.RetryBackoff < 0 {
		return fmt.Errorf("serve: RetryBackoff must be >= 0, got %v", o.RetryBackoff)
	}
	if o.RetryBackoffMax < 0 {
		return fmt.Errorf("serve: RetryBackoffMax must be >= 0, got %v", o.RetryBackoffMax)
	}
	if o.WALSegmentBytes < 0 {
		return fmt.Errorf("serve: WALSegmentBytes must be >= 0, got %d", o.WALSegmentBytes)
	}
	if o.WALFS != nil && o.WALDir == "" {
		return fmt.Errorf("serve: WALFS requires WALDir")
	}
	if o.Standby && o.WALDir == "" && o.PersistDir == "" {
		return fmt.Errorf("serve: Standby requires WALDir or PersistDir to promote from")
	}
	if o.Follow != nil {
		if o.Follow.Leader == "" {
			return fmt.Errorf("serve: Follow requires a leader URL")
		}
		if o.WALDir == "" || o.PersistDir == "" {
			return fmt.Errorf("serve: Follow requires WALDir and PersistDir (the mirror log and checkpoint)")
		}
		if o.Standby {
			return fmt.Errorf("serve: Follow and Standby are exclusive (a follower IS a continuously-warmed standby)")
		}
		if o.Follow.Poll < 0 {
			return fmt.Errorf("serve: Follow.Poll must be >= 0, got %v", o.Follow.Poll)
		}
	}
	return nil
}

// Snapshot is one immutable serving state: a graph generation, the model
// mined from it, and the completion scorer built over both. Handlers load
// exactly one snapshot per request, so every response is internally
// consistent — the generation it reports is the generation its patterns
// and scores came from.
type Snapshot struct {
	// Generation counts published snapshots: 1 is the initial mine, and
	// each successful re-mine increments it.
	Generation uint64
	// Graph is the graph this snapshot's model was mined from.
	Graph *graph.Graph
	// Model is the mined model, bit-identical to Mine(Graph).
	Model *icspm.Model
	// Scorer ranks candidate attribute values with Model (Algorithm 5).
	Scorer *completion.Scorer
	// MultiLeaf is Model.MultiLeaf() computed once at publish, so the
	// multileaf pattern page and its count cost the read path nothing.
	MultiLeaf []icspm.AStar
	// PublishedAt is when the snapshot was swapped in.
	PublishedAt time.Time
	// ModelSHA256 is the name-canonical model commitment (the same digest
	// checkpoint manifests record), computed once at publish so /v1/watch
	// can hand clients a generation plus the model bytes it stands for.
	ModelSHA256 string
}

// newSnapshot assembles one immutable serving state.
func newSnapshot(gen uint64, g *graph.Graph, model *icspm.Model) *Snapshot {
	return &Snapshot{
		Generation: gen, Graph: g, Model: model,
		Scorer:      completion.NewScorer(model, g),
		MultiLeaf:   model.MultiLeaf(),
		PublishedAt: time.Now(),
		ModelSHA256: modelChecksum(model),
	}
}

// Server is the long-running pattern-serving host. All exported methods and
// the HTTP handlers are safe for concurrent use.
type Server struct {
	opts  Options
	cache *shardcache.Cache
	mux   *http.ServeMux
	snap  atomic.Pointer[Snapshot]
	met   metrics

	wl           *wal.Log      // nil unless Options.WALDir enabled durability
	subMu        sync.Mutex    // serialises submits so WAL order = log order
	subVerts     int           // vertex count after every accepted batch; guarded by subMu
	rec          RecoveryStats // what NewServer recovered; fixed at startup
	ckptModelSum string        // verified checkpoint's model commitment

	// Observability (PR 10). log never nil (Nop when unconfigured); traces
	// records per-batch lifecycle events keyed by batch sequence; profiles
	// keeps the stage breakdown of recent re-mine passes. followerID is the
	// identity a follower sends on every replication pull so the leader can
	// report per-follower state; lastCkptGen is the generation of the last
	// committed checkpoint (what a replication pull ships).
	log         *slog.Logger
	traces      *obs.TraceRing
	profiles    *obs.ProfileRing
	followerID  string
	lastCkptGen atomic.Uint64
	folMu       sync.Mutex
	followers   map[string]*followerState

	// Replication state. walPos shadows the WAL's last appended sequence in
	// an atomic so metrics and the replication handlers never race the wl
	// pointer (a follower's resetMirrorWAL swaps it). walTail holds the
	// unfolded records a leader ships to followers; lastLeaderGen is the
	// newest generation a follower has seen its leader publish (lag = that
	// minus the served generation). followCtx cancels every in-flight pull
	// when the follower closes.
	tailMu        sync.Mutex
	walTail       []wal.Record
	tailIDs       map[uint64]string // trace IDs of tail records, shipped to followers
	walPos        atomic.Uint64
	lastLeaderGen atomic.Uint64
	followCtx     context.Context
	followCancel  context.CancelFunc

	mu            sync.Mutex
	closed        bool          // set by Close; rejects further mutation submits
	pending       []Mutation    // mutations not yet collected into a re-mine batch
	mutSeq        uint64        // total mutations accepted
	minedSeq      uint64        // mutations covered by the published snapshot
	failSeq       uint64        // mutations covered by the latest failed attempt
	attempts      uint64        // completed re-mine attempts (success or failure)
	consecFails   uint64        // consecutive failed attempts; drives the backoff
	batchSeq      uint64        // last WAL batch sequence appended or replayed
	foldedBatches uint64        // WAL batches covered by the published snapshot
	traceSeq      uint64        // last trace sequence assigned (= batchSeq when a WAL runs)
	foldedTrace   uint64        // trace sequences covered by the published snapshot
	ckptTrace     uint64        // trace sequences covered by the last committed checkpoint
	lastErr       error         // latest re-mine failure, nil after a success
	notify        chan struct{} // closed and replaced on every publish or failure

	wake      chan struct{}
	quit      chan struct{}
	done      chan struct{}
	draining  chan struct{} // closed by Drain; unblocks /v1/watch long-polls
	drainOnce sync.Once
	closeOnce sync.Once
	closeErr  error
}

// NewServer validates opts, recovers any durable state (checkpoint in
// PersistDir, unfolded batches in the WAL — see DESIGN.md "Durability &
// crash recovery"), mines the recovered graph synchronously for the first
// snapshot, and starts the background re-mine loop. Callers must Close the
// server to stop the loop (and flush the cache when PersistDir is set). g
// may be nil only when Standby is set and a committed checkpoint supplies
// the graph.
func NewServer(g *graph.Graph, opts Options) (*Server, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	s := &Server{
		opts:      opts,
		cache:     opts.Cache,
		log:       opts.Logger,
		traces:    obs.NewTraceRing(0),
		profiles:  obs.NewProfileRing(0),
		followers: make(map[string]*followerState),
		notify:    make(chan struct{}),
		wake:      make(chan struct{}, 1),
		quit:      make(chan struct{}),
		done:      make(chan struct{}),
		draining:  make(chan struct{}),
	}
	if s.log == nil {
		s.log = obs.Nop()
	}
	if s.cache == nil {
		s.cache = shardcache.New(0)
	}
	if opts.Follow != nil {
		// The follower's stable identity on every replication pull: lets the
		// leader report per-follower fetch state in /replication/status.
		s.followerID = obs.NewTraceID()
	}
	if opts.Follow != nil {
		// Followers bootstrap from the leader BEFORE recovery: install its
		// current checkpoint (verified in memory first) if the local mirror
		// is missing or older, then recover through the exact same
		// commit-then-verify path a restart of the leader itself would take.
		s.followCtx, s.followCancel = context.WithCancel(context.Background())
		if err := s.followBootstrap(); err != nil {
			return nil, err
		}
	}
	base, gen, err := s.recoverStartup(g)
	if err != nil {
		return nil, err
	}
	// Batches recovered from the WAL fold into the initial snapshot below
	// (and the ring holds no traces for them anyway); start the trace clock
	// past them so new batches line up with WAL sequences.
	s.traceSeq = s.batchSeq
	s.foldedTrace = s.batchSeq
	s.ckptTrace = s.batchSeq
	s.subVerts = base.NumVertices()
	// The initial mine draws from the shared budget too: a fleet recovering
	// (or bulk-creating) many namespaces mines them at the budget's pace,
	// not all at once. The slot is held across the recovery verification,
	// which may re-mine cold on a checksum mismatch.
	opts.Budget.acquire()
	model, err := s.mine(base)
	if err != nil {
		opts.Budget.release()
		return nil, fmt.Errorf("serve: initial mine: %w", err)
	}
	model, err = s.verifyRecoveredModel(base, model)
	opts.Budget.release()
	if err != nil {
		return nil, err
	}
	snap := newSnapshot(gen, base, model)
	s.snap.Store(snap)
	if s.wl != nil && opts.PersistDir != "" && opts.Follow == nil {
		// Commit the recovered state immediately: replayed batches fold into
		// a fresh checkpoint and their segments compact away, so the next
		// restart (or a standby on the same directories) starts clean.
		s.mu.Lock()
		s.foldedBatches = s.batchSeq
		s.mu.Unlock()
		if err := s.checkpoint(snap); err != nil {
			return nil, fmt.Errorf("serve: startup checkpoint: %w", err)
		}
	}
	s.mux = s.routes()
	s.log.Info("serving",
		"role", s.Role(),
		"gen", snap.Generation,
		"vertices", base.NumVertices(),
		"replayed_batches", s.rec.ReplayedBatches,
		"checkpoint", s.rec.Checkpoint)
	if opts.Follow != nil {
		go s.followLoop()
	} else {
		go s.loop()
	}
	return s, nil
}

// Snapshot returns the currently served snapshot. The returned value and
// everything it references are immutable.
func (s *Server) Snapshot() *Snapshot { return s.snap.Load() }

// Cache exposes the server's shard-result cache (for stats and warm-start
// inspection).
func (s *Server) Cache() *shardcache.Cache { return s.cache }

// ServeHTTP serves the /v1 API; a Server plugs directly into http.Server.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// SubmitMutations validates muts and appends them to the mutation log,
// triggering a background re-mine. The batch is all-or-nothing: the first
// invalid mutation rejects the whole slice and nothing is enqueued. Vertex
// ops change |V|, so validation runs against the count implied by every
// previously accepted batch (not the published snapshot, which may lag) and
// threads the running count through the batch — a mutation may reference a
// vertex added earlier in its own batch.
//
// With a WAL configured, a nil return means the batch is DURABLE: it was
// fsync'd into the log before being enqueued, and recovery replays it if
// the process dies before a snapshot folds it in. A failed append returns
// ErrUnavailable (wrapped) and the batch is not accepted.
func (s *Server) SubmitMutations(muts []Mutation) error {
	_, err := s.submit(muts, "")
	return err
}

// submit is SubmitMutations with lifecycle tracing: traceID is the client's
// X-Request-Id (or "" to skip correlation), and the returned sequence is the
// batch's trace key — the WAL sequence on durable servers, a process-local
// counter otherwise — queryable at /debug/trace/{seq}.
func (s *Server) submit(muts []Mutation, traceID string) (uint64, error) {
	if len(muts) == 0 {
		return 0, fmt.Errorf("serve: empty mutation batch")
	}
	if f := s.opts.Follow; f != nil {
		s.met.mutationsRejected.Add(uint64(len(muts)))
		return 0, fmt.Errorf("%w (leader: %s)", ErrNotLeader, f.Leader)
	}
	// subMu serialises validate+append+enqueue so WAL order is exactly
	// mutation-log order — recovery replay then rebuilds the same graph a
	// crash-free run would have — and so the vertex count each batch is
	// validated against is the one it will actually apply to.
	s.subMu.Lock()
	defer s.subMu.Unlock()
	delta, err := validateBatch(muts, s.subVerts)
	if err != nil {
		s.met.mutationsRejected.Add(uint64(len(muts)))
		return 0, fmt.Errorf("serve: %w", err)
	}
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		s.met.mutationsRejected.Add(uint64(len(muts)))
		return 0, fmt.Errorf("serve: server closed, mutations not accepted")
	}
	var seq uint64
	if s.wl != nil {
		payload, err := encodeBatch(muts)
		if err != nil {
			s.met.mutationsRejected.Add(uint64(len(muts)))
			return 0, err
		}
		if seq, err = s.wl.Append(payload); err != nil {
			s.met.walAppendErrors.Add(1)
			s.met.mutationsRejected.Add(uint64(len(muts)))
			return 0, fmt.Errorf("%w: %v", ErrUnavailable, err)
		}
		s.met.walAppends.Add(1)
		s.walPos.Store(seq)
		if s.replicable() {
			// Leaders keep the unfolded tail in memory so followers mirror
			// acknowledged batches without the leader re-reading its own log.
			s.appendTail(seq, payload, traceID)
		}
	}
	s.mu.Lock()
	s.pending = append(s.pending, muts...)
	s.mutSeq += uint64(len(muts))
	if s.wl != nil {
		s.batchSeq = seq
		s.traceSeq = seq
	} else {
		// No WAL: trace keys come off a process-local counter so batchSeq
		// (which checkpoint manifests record as FoldedBatches) stays zero on
		// persist-only servers.
		s.traceSeq++
		seq = s.traceSeq
	}
	s.mu.Unlock()
	s.subVerts += delta
	s.met.mutationsAccepted.Add(uint64(len(muts)))
	s.traces.Start(seq, traceID, len(muts), obs.StageSubmitted, 0, "")
	if s.wl != nil {
		s.traces.Record(seq, obs.StageWALAppended, 0, "")
	}
	s.log.Debug("mutations accepted", "batch", seq, "trace", traceID, "mutations", len(muts))
	s.trigger()
	return seq, nil
}

// PendingMutations reports how many accepted mutations the published
// snapshot does not cover yet (log backlog plus any in-flight batch).
func (s *Server) PendingMutations() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return int(s.mutSeq - s.minedSeq)
}

// Flush triggers a re-mine of everything submitted before the call and
// blocks until a snapshot covering it is published (nil), the attempt
// covering it fails (the re-mine error; the batch stays queued for the
// next trigger), or ctx expires.
func (s *Server) Flush(ctx context.Context) error {
	s.mu.Lock()
	target, before := s.mutSeq, s.attempts
	s.mu.Unlock()
	for {
		s.mu.Lock()
		mined, failed, att, lastErr := s.minedSeq, s.failSeq, s.attempts, s.lastErr
		ch, backlog := s.notify, len(s.pending)
		s.mu.Unlock()
		if mined >= target {
			return nil
		}
		if att > before && failed >= target && lastErr != nil {
			return lastErr
		}
		if backlog > 0 {
			s.trigger()
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("serve: flush of %d mutations interrupted: %w", target, ctx.Err())
		case <-s.done:
			// One final check: a last publish may have landed between the
			// progress check above and the loop shutting down.
			s.mu.Lock()
			mined = s.minedSeq
			s.mu.Unlock()
			if mined >= target {
				return nil
			}
			return fmt.Errorf("serve: server closed before %d mutations were mined", target)
		case <-ch:
		}
	}
}

// AwaitGeneration blocks until the served snapshot's generation reaches gen
// or ctx expires.
func (s *Server) AwaitGeneration(ctx context.Context, gen uint64) error {
	for {
		s.mu.Lock()
		ch := s.notify
		s.mu.Unlock()
		if s.snap.Load().Generation >= gen {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("serve: awaiting generation %d (at %d): %w", gen, s.snap.Load().Generation, ctx.Err())
		case <-s.done:
			if s.snap.Load().Generation >= gen {
				return nil
			}
			return fmt.Errorf("serve: server closed at generation %d awaiting %d", s.snap.Load().Generation, gen)
		case <-ch:
		}
	}
}

// Close stops the re-mine loop (letting an in-flight re-mine finish),
// runs one final re-mine over any still-pending acknowledged mutations so
// a graceful shutdown never silently discards a 202-acked batch, and, when
// PersistDir is set, checkpoints the served state (folded graph, cache
// blobs, MANIFEST) so the next server — or a warm standby — promotes
// without a cold re-mine. With a WAL, folded segments are compacted and the
// log is closed last. Close is idempotent and does not drain HTTP requests
// — the owning http.Server's Shutdown does that first, which is exactly
// what lets mutations accepted mid-drain reach the final re-mine. The one
// exception is /v1/watch long-polls: Close (like Drain) releases them
// immediately, so a shutdown never waits out a 30s poll.
// Drain unblocks every /v1/watch long-poll immediately (each responds with
// the currently served generation). It is idempotent and safe to call at
// any time; wire it into http.Server.RegisterOnShutdown so watchers release
// at the START of a graceful drain instead of holding Shutdown open until
// their timeouts lapse. Close drains too, so embedders without an HTTP host
// need not call it.
func (s *Server) Drain() {
	s.drainOnce.Do(func() { close(s.draining) })
}

func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		s.Drain()
		s.mu.Lock()
		s.closed = true
		s.mu.Unlock()
		close(s.quit)
		if s.followCancel != nil {
			// Abort any in-flight pull so the follow loop notices quit now
			// instead of after a long-poll lapses.
			s.followCancel()
		}
		<-s.done
		// A follower neither mines nor checkpoints at shutdown: the installed
		// leader checkpoint IS its durable commit (re-marshalling one locally
		// would re-stamp the leader's fold bookkeeping), and the mirror WAL
		// already holds every acknowledged batch past it.
		if s.opts.Follow == nil && s.PendingMutations() > 0 && !s.remine() {
			s.mu.Lock()
			s.closeErr = fmt.Errorf("serve: %d acknowledged mutations not mined at shutdown: %w",
				len(s.pending), s.lastErr)
			s.mu.Unlock()
		}
		if s.opts.PersistDir != "" && s.opts.Follow == nil {
			if err := s.checkpoint(s.snap.Load()); err != nil && s.closeErr == nil {
				s.closeErr = err
			}
		}
		if s.wl != nil {
			if err := s.wl.Close(); err != nil && s.closeErr == nil {
				s.closeErr = err
			}
		}
	})
	return s.closeErr
}

// trigger nudges the re-mine loop without blocking (the buffered token
// collapses concurrent triggers into one pass).
func (s *Server) trigger() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// loop is the background re-mine scheduler: wait for a trigger, let the
// debounce window coalesce follow-up mutations, then run one re-mine.
func (s *Server) loop() {
	defer close(s.done)
	for {
		select {
		case <-s.quit:
			return
		case <-s.wake:
		}
		if d := s.opts.Debounce; d > 0 {
			t := time.NewTimer(d)
			select {
			case <-s.quit:
				t.Stop()
				return
			case <-t.C:
			}
		}
		if !s.remine() {
			// The batch was re-queued; retry after a backoff instead of
			// waiting for the next external trigger, so acknowledged
			// mutations are never stranded behind a transient failure.
			// Consecutive failures back off exponentially so a dead fleet
			// is probed, not hammered.
			s.mu.Lock()
			failures := s.consecFails
			s.mu.Unlock()
			t := time.NewTimer(retryDelay(s.opts.RetryBackoff, s.opts.RetryBackoffMax, failures))
			select {
			case <-s.quit:
				t.Stop()
				return
			case <-t.C:
			}
			s.trigger()
		}
	}
}

// remine collects the pending batch, rebuilds the graph, mines it, and
// publishes the next snapshot, reporting whether the pass succeeded (an
// empty batch is a successful no-op). On failure the batch is re-queued at
// the front of the log (order preserved) and the last good snapshot keeps
// serving; the loop retries after a backoff.
func (s *Server) remine() bool {
	// Take a shared-budget slot BEFORE collecting the batch: mutations that
	// land while this tenant queues behind other tenants' mining coalesce
	// into the pass instead of forcing a follow-up one.
	s.opts.Budget.acquire()
	defer s.opts.Budget.release()
	s.mu.Lock()
	batch := s.pending
	s.pending = nil
	covered := s.mutSeq
	coveredBatch := s.batchSeq
	prevTrace := s.foldedTrace
	coveredTrace := s.traceSeq
	s.mu.Unlock()
	if len(batch) == 0 {
		return true
	}
	cur := s.snap.Load()
	s.traces.RecordRange(prevTrace, coveredTrace, obs.StageRemineStart, cur.Generation, "")
	rec := obs.NewRecorder()
	start := time.Now()
	next, model, err := s.rebuildAndMine(cur.Graph, batch, rec)
	if err != nil {
		s.met.remineFailures.Add(1)
		s.profiles.Add(rec.Finish(0, int(coveredTrace-prevTrace), err))
		s.log.Warn("remine failed", "gen", cur.Generation, "mutations", len(batch), "err", err)
		s.mu.Lock()
		s.pending = append(batch, s.pending...)
		s.failSeq = covered
		s.attempts++
		s.consecFails++
		s.lastErr = err
		s.broadcastLocked()
		s.mu.Unlock()
		return false
	}
	elapsed := time.Since(start)
	s.traces.RecordRange(prevTrace, coveredTrace, obs.StageFolded, cur.Generation+1, "")
	var snap *Snapshot
	rec.Time(obs.SpanPublish, func() {
		snap = newSnapshot(cur.Generation+1, next, model)
		s.snap.Store(snap)
	})
	s.met.remines.Add(1)
	s.met.remineNanosTotal.Add(elapsed.Nanoseconds())
	s.met.remineNanosLast.Store(elapsed.Nanoseconds())
	s.mu.Lock()
	s.minedSeq = covered
	s.foldedBatches = coveredBatch
	s.foldedTrace = coveredTrace
	s.attempts++
	s.consecFails = 0
	s.lastErr = nil
	s.broadcastLocked()
	s.mu.Unlock()
	s.traces.RecordRange(prevTrace, coveredTrace, obs.StagePublished, snap.Generation, "")
	if s.wl != nil && s.opts.PersistDir != "" {
		// Checkpoint-then-compact: once the folded state is committed in the
		// persist dir, the WAL segments holding those batches may go. A
		// failed checkpoint is non-fatal — the log simply keeps the batches
		// and the next publish (or Close) tries again.
		var cerr error
		rec.Time(obs.SpanCheckpoint, func() { cerr = s.checkpoint(snap) })
		if cerr != nil {
			s.met.persistErrors.Add(1)
			s.log.Warn("checkpoint failed", "gen", snap.Generation, "err", cerr)
		}
	}
	s.profiles.Add(rec.Finish(snap.Generation, int(coveredTrace-prevTrace), nil))
	s.log.Info("remine published", "gen", snap.Generation, "mutations", len(batch),
		"seconds", elapsed.Seconds())
	return true
}

// broadcastLocked wakes every Flush/AwaitGeneration waiter. Caller holds
// s.mu.
func (s *Server) broadcastLocked() {
	close(s.notify)
	s.notify = make(chan struct{})
}

// rebuildAndMine applies batch and mines the result under one recover, so a
// poisoned batch — whether it breaks the rebuild or the search — degrades to
// staleness (the batch re-queues, the last good snapshot keeps serving)
// instead of killing the re-mine loop.
func (s *Server) rebuildAndMine(g *graph.Graph, batch []Mutation, rec *obs.Recorder) (next *graph.Graph, model *icspm.Model, err error) {
	defer func() {
		if r := recover(); r != nil {
			next, model, err = nil, nil, fmt.Errorf("serve: rebuild panicked: %v", r)
		}
	}()
	rec.Time(obs.SpanRebuild, func() { next = Rebuild(g, batch) })
	model, err = s.mineProfiled(next, rec)
	return next, model, err
}

// mine runs one search over g through the configured path, converting
// panics into errors so a poisoned re-mine degrades to staleness instead of
// killing the serving process.
func (s *Server) mine(g *graph.Graph) (*icspm.Model, error) {
	return s.mineProfiled(g, nil)
}

// mineProfiled is mine with per-stage timing: when rec is non-nil, the
// incremental miner reports its fingerprint/diff/shard_mine/merge phases
// into it (the distributed transport reports its whole remote pass as one
// shard_mine span).
func (s *Server) mineProfiled(g *graph.Graph, rec *obs.Recorder) (model *icspm.Model, err error) {
	defer func() {
		if r := recover(); r != nil {
			model, err = nil, fmt.Errorf("serve: re-mine panicked: %v", r)
		}
	}()
	if s.opts.Transport != nil {
		mine := func() {
			model, err = icspm.MineDistributed(g, icspm.DistributedOptions{
				Options:    s.opts.Mining,
				Transport:  s.opts.Transport,
				Retries:    s.opts.RemoteRetries,
				Timeout:    s.opts.RemoteTimeout,
				NoFallback: s.opts.RemoteNoFallback,
				Cache:      s.cache,
			})
		}
		if rec != nil {
			rec.Time(obs.SpanShardMine, mine)
		} else {
			mine()
		}
		return model, err
	}
	var observe icspm.StageObserver
	if rec != nil {
		observe = rec.Observe
	}
	return icspm.MineShardedCachedObserved(g, s.opts.Mining, s.cache, observe), nil
}
