package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"cspm/internal/graph"
	"cspm/internal/obs"
	"cspm/internal/shardcache"
	"cspm/internal/wal"
)

// Registry errors of the Go-facing Host API; the HTTP layer maps each to
// its envelope code and status.
var (
	// ErrNamespaceExists rejects creating a name that is already live.
	ErrNamespaceExists = errors.New("serve: namespace already exists")
	// ErrNamespaceNotFound names a namespace with no live tenant.
	ErrNamespaceNotFound = errors.New("serve: namespace not found")
	// ErrNamespaceLimit rejects a create past HostOptions.MaxNamespaces.
	ErrNamespaceLimit = errors.New("serve: namespace limit reached")
	// ErrHostClosed rejects registry operations after Close.
	ErrHostClosed = errors.New("serve: host closed")
)

// DefaultNamespace is the tenant the deprecated flat /v1/* surface aliases
// to, and the one a single-graph cspm-serve invocation seeds.
const DefaultNamespace = "default"

// maxGraphUpload bounds a namespace-create body: the uploaded graph text is
// materialised in memory before parsing. Mutation/complete bodies keep the
// tighter maxRequestBody bound.
const maxGraphUpload = 256 << 20

// HostOptions configures a multi-tenant Host.
type HostOptions struct {
	// RootDir, when non-empty, is the fleet's persist root: every namespace
	// owns <root>/<ns>/checkpoint and <root>/<ns>/wal (see wal.Layout), its
	// mutation acks are durable, and NewHost scans the root to restore every
	// namespace found there. "" hosts memory-only tenants.
	RootDir string
	// MaxNamespaces caps live namespaces (0 = unlimited). Creates past the
	// cap are rejected with CodeNamespaceLimit.
	MaxNamespaces int
	// MineBudget bounds how many tenants may run a mining pass (initial
	// mine or re-mine) concurrently across the whole host (0 = unbounded).
	// This is what keeps a mutation storm in one namespace from starving
	// every other tenant's re-mine loop.
	MineBudget int
	// Tenant is the per-namespace Options template: mining options,
	// debounce, retry pacing, transport. The per-tenant fields the host
	// derives itself — Cache, PersistDir, WALDir, WALFS, Standby, Budget —
	// must be zero; Validate rejects the template otherwise.
	Tenant Options
	// Standby refuses a cold start: NewHost must restore at least one
	// namespace from RootDir, so a warm spare pointed at a replicated root
	// can never silently come up empty. Requires RootDir.
	Standby bool
	// Follow, when non-empty, is a LEADER HOST's base URL (e.g.
	// "http://leader:8080") and makes this host a replica fleet member:
	// every tenant runs as a follower of the same namespace on the leader,
	// and a background sync keeps the namespace set aligned — leader creates
	// appear here, leader deletes quarantine the local mirror. Creates,
	// deletes and mutations are rejected (or, for mutations with
	// ProxyWrites, forwarded). Requires RootDir; incompatible with Standby.
	Follow string
	// FollowPoll paces both each tenant's pull loop and the namespace-set
	// sync (0 = the serve-level default).
	FollowPoll time.Duration
	// FollowClient is the HTTP client every leader call uses (nil =
	// http.DefaultClient).
	FollowClient *http.Client
	// ProxyWrites forwards mutations hitting a follower tenant to the
	// leader instead of answering 409 not_leader, so naive clients can
	// point at any fleet member. The response streams back verbatim.
	ProxyWrites bool
	// Logger receives the host's structured lifecycle log (namespace
	// creates, deletes, recoveries, promotions) and, extended with an "ns"
	// attribute, each tenant's log. nil discards everything.
	Logger *slog.Logger
}

// Validate sanity-checks the options.
func (o HostOptions) Validate() error {
	if o.MaxNamespaces < 0 {
		return fmt.Errorf("serve: MaxNamespaces must be >= 0, got %d", o.MaxNamespaces)
	}
	if o.MineBudget < 0 {
		return fmt.Errorf("serve: MineBudget must be >= 0, got %d", o.MineBudget)
	}
	if o.Standby && o.RootDir == "" {
		return fmt.Errorf("serve: host Standby requires RootDir to promote from")
	}
	if o.Follow != "" {
		if o.RootDir == "" {
			return fmt.Errorf("serve: host Follow requires RootDir (the mirror checkpoints and WALs)")
		}
		if o.Standby {
			return fmt.Errorf("serve: host Follow and Standby are exclusive (a replica IS a continuously-warmed standby)")
		}
	} else if o.FollowPoll != 0 || o.FollowClient != nil || o.ProxyWrites {
		return fmt.Errorf("serve: FollowPoll/FollowClient/ProxyWrites require Follow")
	}
	if o.FollowPoll < 0 {
		return fmt.Errorf("serve: FollowPoll must be >= 0, got %v", o.FollowPoll)
	}
	t := o.Tenant
	if t.Cache != nil || t.PersistDir != "" || t.WALDir != "" || t.WALFS != nil || t.Standby || t.Budget != nil || t.Follow != nil {
		return fmt.Errorf("serve: tenant template must leave Cache/PersistDir/WALDir/WALFS/Standby/Budget/Follow zero (the host derives them per namespace)")
	}
	return t.Validate()
}

// NamespaceInfo is one tenant's directory entry on the admin surface
// (GET /v2/graphs, and the create/info responses). Field order is part of
// the wire contract.
type NamespaceInfo struct {
	Name             string `json:"name"`
	Generation       uint64 `json:"generation"`
	Vertices         int    `json:"vertices"`
	Edges            int    `json:"edges"`
	Patterns         int    `json:"patterns"`
	PendingMutations int    `json:"pending_mutations"`
	ModelSHA256      string `json:"model_sha256"`
	// Role is the tenant's replication role (PR 9): leader, follower, or
	// standalone.
	Role string `json:"role"`
}

// NamespacesResponse is the GET /v2/graphs payload.
type NamespacesResponse struct {
	Namespaces []NamespaceInfo `json:"namespaces"`
}

// DeleteNamespaceResponse acknowledges a namespace delete. QuarantinedTo is
// where the tenant's on-disk subtree was renamed ("" for a memory-only
// tenant): deletes quarantine, they never unlink an acknowledged WAL.
type DeleteNamespaceResponse struct {
	Name          string `json:"name"`
	QuarantinedTo string `json:"quarantined_to"`
}

// Host is the multi-tenant serving fleet member: a registry of named
// tenants (each a full Server — immutable snapshot, mutation loop, WAL and
// checkpoint subtree), a shared mine budget, and the HTTP surface that
// routes /v2/graphs/{ns}/... to tenants, admin verbs to the registry, and
// the deprecated flat /v1/* to the default namespace. All methods and the
// handler are safe for concurrent use.
type Host struct {
	opts   HostOptions
	layout wal.Layout
	budget *Budget
	log    *slog.Logger
	mux    *http.ServeMux
	routes []string

	mu       sync.RWMutex
	tenants  map[string]*Server
	creating map[string]bool
	closed   bool

	// Replica-host sync loop (Follow set): quit stops it, syncDone confirms.
	quit     chan struct{}
	syncDone chan struct{}

	closeOnce sync.Once
	closeErr  error
}

// NewHost validates opts and, when RootDir is set, scans it and restores
// every namespace found: each tenant promotes from its own checkpoint + WAL
// exactly like a -standby single server (warm cache, replayed unfolded
// batches, no cold re-mine). A namespace tree with NO durable state — a
// create that died before its first checkpoint committed, so nothing was
// ever acknowledged — is quarantined and skipped; any other recovery
// failure aborts NewHost, because serving would mean lying about
// acknowledged writes. Close the host to stop every tenant.
func NewHost(opts HostOptions) (*Host, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	h := &Host{
		opts:     opts,
		layout:   wal.Layout{Root: opts.RootDir},
		budget:   NewBudget(opts.MineBudget),
		log:      opts.Logger,
		tenants:  make(map[string]*Server),
		creating: make(map[string]bool),
	}
	if h.log == nil {
		h.log = obs.Nop()
	}
	if opts.RootDir != "" {
		names, err := h.layout.Namespaces()
		if err != nil {
			return nil, err
		}
		for _, ns := range names {
			// On a replica host, restored namespaces come back as FOLLOWERS
			// (re-bootstrapping from the leader); elsewhere they promote from
			// their own checkpoint + WAL like a -standby single server.
			s, err := h.startTenant(ns, nil, nil, opts.Follow == "", opts.Follow != "")
			switch {
			case err == nil:
				h.tenants[ns] = s
				h.log.Info("namespace recovered", "ns", ns, "role", s.Role(),
					"gen", s.Snapshot().Generation, "replayed_batches", s.Recovery().ReplayedBatches)
			case errors.Is(err, ErrNoDurableState):
				// Nothing was ever acknowledged under this tree; set it aside
				// (never unlink — an operator can still inspect it) and move on.
				h.log.Warn("quarantining dead namespace", "ns", ns)
				if _, qerr := h.layout.Quarantine(ns); qerr != nil {
					h.closeTenantsLocked()
					return nil, fmt.Errorf("serve: quarantine dead namespace %q: %w", ns, qerr)
				}
			default:
				h.closeTenantsLocked()
				return nil, fmt.Errorf("serve: recover namespace %q: %w", ns, err)
			}
		}
	}
	if opts.Standby && len(h.tenants) == 0 {
		h.closeTenantsLocked()
		return nil, fmt.Errorf("%w: standby host found no namespace under %q", ErrNoDurableState, opts.RootDir)
	}
	h.mux = h.buildRoutes()
	if opts.Follow != "" {
		// The first namespace-set sync is strict — a replica host that cannot
		// reach its leader at start has nothing trustworthy to serve beyond
		// what it restored, and failing loudly beats silently serving an
		// empty fleet. Later sync failures just skip a cycle.
		if err := h.syncFollowers(); err != nil {
			h.closeTenantsLocked()
			return nil, fmt.Errorf("serve: replica host initial sync: %w", err)
		}
		h.quit = make(chan struct{})
		h.syncDone = make(chan struct{})
		go h.followSyncLoop()
	}
	return h, nil
}

// closeTenantsLocked closes every started tenant; used on NewHost failure
// paths before the host is published (no lock contention yet).
func (h *Host) closeTenantsLocked() {
	for _, s := range h.tenants {
		s.Close()
	}
}

// startTenant builds one tenant Server from the template: per-namespace
// dirs when the host persists, a disk-backed cache opened on the checkpoint
// dir, the shared budget. override (nil = template) customises a tenant at
// the Go API. On a host that owns a RootDir the override's per-tenant dir
// fields must be zero (the host derives them); a rootless host accepts
// explicit dirs — that is how a legacy single-tenant cspm-serve invocation
// (-cache-dir/-wal-dir/-standby) becomes the default namespace of a host.
// Budget is always the host's.
func (h *Host) startTenant(ns string, g *graph.Graph, override *Options, standby, follow bool) (*Server, error) {
	opts := h.opts.Tenant
	if override != nil {
		opts = *override
		if opts.Budget != nil {
			return nil, fmt.Errorf("serve: tenant override must leave Budget zero (the host's budget is shared)")
		}
		if opts.Follow != nil {
			return nil, fmt.Errorf("serve: tenant override must leave Follow zero (the host derives it from its own Follow URL)")
		}
		if h.opts.RootDir != "" && (opts.Cache != nil || opts.PersistDir != "" || opts.WALDir != "" || opts.Standby) {
			return nil, fmt.Errorf("serve: tenant override must leave Cache/PersistDir/WALDir/Standby zero when the host owns a root dir")
		}
	}
	opts.Budget = h.budget
	if opts.Logger == nil && h.opts.Logger != nil {
		opts.Logger = h.opts.Logger.With("ns", ns)
	}
	if standby {
		opts.Standby = true
	}
	if follow {
		// Namespace names are ValidNamespace-constrained ([a-z0-9_-]), so
		// splicing one into the leader URL needs no escaping.
		opts.Follow = &FollowOptions{
			Leader: h.opts.Follow + "/v2/graphs/" + ns,
			Poll:   h.opts.FollowPoll,
			Client: h.opts.FollowClient,
		}
	}
	if h.opts.RootDir != "" {
		ckpt, wdir := h.layout.CheckpointDir(ns), h.layout.WALDir(ns)
		if err := os.MkdirAll(ckpt, 0o755); err != nil {
			return nil, err
		}
		if err := os.MkdirAll(wdir, 0o755); err != nil {
			return nil, err
		}
		cache, err := shardcache.Open(0, ckpt)
		if err != nil {
			return nil, err
		}
		opts.Cache = cache
		opts.PersistDir = ckpt
		opts.WALDir = wdir
	} else if opts.WALFS != nil && opts.WALDir == "" {
		// A fault-injecting filesystem needs a WAL to inject into even when
		// the host itself is memory-only; give the tenant a log on the shim.
		opts.WALDir = "wal"
	}
	return NewServer(g, opts)
}

// Create registers a new namespace serving g (nil = an empty graph; attach
// state through mutations) under the template options, or override when
// non-nil. It is the Go-API twin of POST /v2/graphs/{ns}. The host's lock
// is NOT held across the initial mine, so creates never stall queries to
// other tenants; concurrent creates of the same name race to a single
// winner.
func (h *Host) Create(ns string, g *graph.Graph, override *Options) (*Server, error) {
	if err := wal.ValidNamespace(ns); err != nil {
		return nil, err
	}
	if h.opts.Follow != "" {
		// A replica's namespace set mirrors its leader's: direct creates would
		// fork the fleet. Create the namespace on the leader; the sync loop
		// brings it here.
		return nil, fmt.Errorf("%w (leader: %s)", ErrNotLeader, h.opts.Follow)
	}
	return h.create(ns, g, override, false)
}

// create is the registry-side create, shared by the public Create and the
// replica sync loop (which registers followers a direct create must not).
func (h *Host) create(ns string, g *graph.Graph, override *Options, follow bool) (*Server, error) {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return nil, ErrHostClosed
	}
	if _, ok := h.tenants[ns]; ok || h.creating[ns] {
		h.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrNamespaceExists, ns)
	}
	if max := h.opts.MaxNamespaces; max > 0 && len(h.tenants)+len(h.creating) >= max {
		h.mu.Unlock()
		return nil, fmt.Errorf("%w: cap %d", ErrNamespaceLimit, max)
	}
	h.creating[ns] = true
	h.mu.Unlock()
	defer func() {
		h.mu.Lock()
		delete(h.creating, ns)
		h.mu.Unlock()
	}()

	if h.opts.RootDir != "" {
		// A leftover tree under this name was either quarantined by the
		// recovery scan or belongs to a create that never completed; either
		// way it must not leak into the fresh tenant. Set it aside.
		if _, err := os.Stat(h.layout.NamespaceDir(ns)); err == nil {
			if _, qerr := h.layout.Quarantine(ns); qerr != nil {
				return nil, qerr
			}
		}
	}
	// nil graph means "start empty" — except for a standby override (the
	// checkpoint supplies the graph) and a follower (the leader does).
	if g == nil && !follow && (override == nil || !override.Standby) {
		g = graph.NewBuilder(0).Build()
	}
	s, err := h.startTenant(ns, g, override, false, follow)
	if err != nil {
		return nil, err
	}
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		s.Close()
		return nil, ErrHostClosed
	}
	h.tenants[ns] = s
	h.mu.Unlock()
	h.log.Info("namespace created", "ns", ns, "role", s.Role(), "gen", s.Snapshot().Generation)
	return s, nil
}

// Delete unregisters the namespace, closes its server (final re-mine drain,
// checkpoint, WAL close) and QUARANTINES its on-disk subtree — renamed
// under <root>/.quarantine, never unlinked, so acknowledged WAL batches
// survive even an operator's delete. It returns the quarantine destination
// ("" for memory-only tenants).
func (h *Host) Delete(ns string) (string, error) {
	if h.opts.Follow != "" {
		// Mirror deletes follow leader deletes; a direct one would be undone
		// (recreated) by the next sync cycle anyway.
		return "", fmt.Errorf("%w (leader: %s)", ErrNotLeader, h.opts.Follow)
	}
	return h.remove(ns)
}

// remove unregisters and quarantines a namespace; shared by Delete and the
// replica sync loop.
func (h *Host) remove(ns string) (string, error) {
	h.mu.Lock()
	s, ok := h.tenants[ns]
	if !ok {
		h.mu.Unlock()
		return "", fmt.Errorf("%w: %q", ErrNamespaceNotFound, ns)
	}
	delete(h.tenants, ns)
	h.mu.Unlock()
	if err := s.Close(); err != nil {
		// The tenant is already unregistered; report the close failure but
		// still quarantine whatever state is on disk.
		if h.opts.RootDir == "" {
			return "", err
		}
		dst, qerr := h.layout.Quarantine(ns)
		if qerr != nil {
			return "", errors.Join(err, qerr)
		}
		return dst, err
	}
	if h.opts.RootDir == "" {
		h.log.Info("namespace deleted", "ns", ns)
		return "", nil
	}
	dst, qerr := h.layout.Quarantine(ns)
	if qerr == nil {
		h.log.Info("namespace deleted", "ns", ns, "quarantined_to", dst)
	}
	return dst, qerr
}

// Tenant returns the named namespace's server.
func (h *Host) Tenant(ns string) (*Server, bool) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	s, ok := h.tenants[ns]
	return s, ok
}

// Namespaces lists every live tenant, sorted by name.
func (h *Host) Namespaces() []NamespaceInfo {
	h.mu.RLock()
	out := make([]NamespaceInfo, 0, len(h.tenants))
	for ns, s := range h.tenants {
		out = append(out, namespaceInfo(ns, s))
	}
	h.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// namespaceInfo snapshots one tenant's directory entry. One snapshot load:
// every field describes the same generation.
func namespaceInfo(ns string, s *Server) NamespaceInfo {
	snap := s.Snapshot()
	return NamespaceInfo{
		Name:             ns,
		Generation:       snap.Generation,
		Vertices:         snap.Graph.NumVertices(),
		Edges:            snap.Graph.NumEdges(),
		Patterns:         len(snap.Model.Patterns),
		PendingMutations: s.PendingMutations(),
		ModelSHA256:      snap.ModelSHA256,
		Role:             s.Role(),
	}
}

// Budget exposes the host's shared mine budget (monitoring).
func (h *Host) Budget() *Budget { return h.budget }

// Routes returns the host's full route inventory, sorted — one
// "METHOD /pattern" line per registered route. The golden route test pins
// it so additions and renames fail loudly.
func (h *Host) Routes() []string {
	out := make([]string, len(h.routes))
	copy(out, h.routes)
	return out
}

// Drain releases every tenant's /v1/watch-style long-polls immediately;
// wire it into http.Server.RegisterOnShutdown exactly like Server.Drain.
func (h *Host) Drain() {
	h.mu.RLock()
	defer h.mu.RUnlock()
	for _, s := range h.tenants {
		s.Drain()
	}
}

// Close stops every tenant (each runs its shutdown drain and checkpoint)
// and rejects further creates. Idempotent; returns the first tenant close
// error.
func (h *Host) Close() error {
	h.closeOnce.Do(func() {
		if h.quit != nil {
			close(h.quit)
			<-h.syncDone
		}
		h.mu.Lock()
		h.closed = true
		tenants := make([]*Server, 0, len(h.tenants))
		for _, s := range h.tenants {
			tenants = append(tenants, s)
		}
		h.mu.Unlock()
		for _, s := range tenants {
			if err := s.Close(); err != nil && h.closeErr == nil {
				h.closeErr = err
			}
		}
	})
	return h.closeErr
}

// ServeHTTP serves the v2 (and aliased v1) API; a Host plugs directly into
// http.Server.
func (h *Host) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.mux.ServeHTTP(w, r)
}

// buildRoutes assembles the host mux: admin verbs, the per-namespace v2
// surface (one route per tenantRoutes entry), and the deprecated /v1 alias
// onto the default namespace.
func (h *Host) buildRoutes() *http.ServeMux {
	rg := newRegistrar()
	rg.handle("GET /v2/graphs", h.handleListNamespaces)
	rg.handle("POST /v2/graphs/{ns}", h.handleCreateNamespace)
	rg.handle("GET /v2/graphs/{ns}", h.handleNamespaceInfo)
	rg.handle("DELETE /v2/graphs/{ns}", h.handleDeleteNamespace)
	for _, rt := range tenantRoutes {
		rg.handle(rt.pattern("/v2/graphs/{ns}"), h.forNamespace(rt))
		rg.handle(rt.pattern("/v1"), h.v1Alias(rt))
	}
	// Replication and debug are fleet plumbing: v2-only, never aliased onto
	// the frozen /v1 surface. Promote is host-level — it restarts the tenant,
	// which only the registry can do.
	for _, rt := range replicationRoutes {
		rg.handle(rt.pattern("/v2/graphs/{ns}"), h.forNamespace(rt))
	}
	for _, rt := range debugRoutes {
		rg.handle(rt.pattern("/v2/graphs/{ns}"), h.forNamespace(rt))
	}
	rg.handle("POST /v2/graphs/{ns}/replication/promote", h.handlePromote)
	// Host-level Prometheus exposition: one scrape covers every tenant.
	rg.handle("GET /metrics", h.handlePromMetrics)
	mux := rg.finish()
	h.routes = rg.routes
	return mux
}

// forNamespace resolves {ns} to its tenant and dispatches to the tenant's
// own handler under its latency histogram, so per-namespace metrics come
// for free. An unknown namespace answers 404 with the envelope.
func (h *Host) forNamespace(rt tenantRoute) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		ns := r.PathValue("ns")
		s, ok := h.Tenant(ns)
		if !ok {
			writeError(w, http.StatusNotFound, CodeNamespaceNotFound, "namespace %q not found", ns)
			return
		}
		if rt.ep == epMutations && h.opts.ProxyWrites && s.Role() == RoleFollower {
			h.proxyMutations(w, r, ns)
			return
		}
		s.timed(rt.ep, rt.handler(s))(w, r)
	}
}

// v1AliasSunset is the RFC 8594 Sunset date on every /v1 alias response:
// the instant after which the alias may stop answering. A fixed date (not
// now()+offset) keeps the header byte-stable across responses so clients
// and caches see one consistent deadline.
const v1AliasSunset = "Sun, 01 Aug 2027 00:00:00 GMT"

// v1Alias serves the flat pre-tenancy surface against the default
// namespace, marked deprecated per RFC 9745 with an RFC 8594 Sunset date:
// same handlers, same bytes, so a v1 client observes zero change beyond
// the headers steering it to v2.
func (h *Host) v1Alias(rt tenantRoute) http.HandlerFunc {
	successor := `</v2/graphs/` + DefaultNamespace + rt.suffix + `>; rel="successor-version"`
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Sunset", v1AliasSunset)
		w.Header().Set("Link", successor)
		s, ok := h.Tenant(DefaultNamespace)
		if !ok {
			writeError(w, http.StatusNotFound, CodeNamespaceNotFound,
				"namespace %q not found (the /v1 alias serves it; create it or use /v2)", DefaultNamespace)
			return
		}
		if rt.ep == epMutations && h.opts.ProxyWrites && s.Role() == RoleFollower {
			h.proxyMutations(w, r, DefaultNamespace)
			return
		}
		s.timed(rt.ep, rt.handler(s))(w, r)
	}
}

func (h *Host) handleListNamespaces(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, NamespacesResponse{Namespaces: h.Namespaces()})
}

// handlePromMetrics is GET /metrics: the whole fleet member in one
// Prometheus text-format scrape — every tenant's counters under
// {namespace,role} labels plus the shared mine budget.
func (h *Host) handlePromMetrics(w http.ResponseWriter, r *http.Request) {
	h.mu.RLock()
	names := make([]string, 0, len(h.tenants))
	servers := make([]*Server, 0, len(h.tenants))
	for ns, s := range h.tenants {
		names = append(names, ns)
		servers = append(servers, s)
	}
	h.mu.RUnlock()
	// Snapshot outside the registry lock: Metrics() walks atomic counters
	// but must never hold up creates and deletes.
	tenants := make([]PromTenant, len(names))
	for i := range names {
		tenants[i] = PromTenant{Namespace: names[i], Metrics: servers[i].Metrics()}
	}
	w.Header().Set("Content-Type", obs.PromContentType)
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, tenants, h.budget.Stats()); err != nil {
		writeError(w, http.StatusInternalServerError, CodeInternal, "render metrics: %v", err)
		return
	}
	_, _ = w.Write(buf.Bytes())
}

func (h *Host) handleNamespaceInfo(w http.ResponseWriter, r *http.Request) {
	ns := r.PathValue("ns")
	s, ok := h.Tenant(ns)
	if !ok {
		writeError(w, http.StatusNotFound, CodeNamespaceNotFound, "namespace %q not found", ns)
		return
	}
	writeJSON(w, http.StatusOK, namespaceInfo(ns, s))
}

// handleCreateNamespace is POST /v2/graphs/{ns}: the body is the initial
// graph in the text format (empty body = empty graph). 201 on success with
// the namespace's directory entry; the initial mine runs synchronously
// under the shared budget, so the entry already names generation 1.
func (h *Host) handleCreateNamespace(w http.ResponseWriter, r *http.Request) {
	ns := r.PathValue("ns")
	if err := wal.ValidNamespace(ns); err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "%v", err)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxGraphUpload))
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "read graph upload: %v", err)
		return
	}
	var g *graph.Graph
	if len(body) > 0 {
		if g, err = graph.Load(bytes.NewReader(body)); err != nil {
			writeError(w, http.StatusBadRequest, CodeBadRequest, "parse graph upload: %v", err)
			return
		}
	}
	s, err := h.Create(ns, g, nil)
	if err != nil {
		switch {
		case errors.Is(err, ErrNamespaceExists):
			writeError(w, http.StatusConflict, CodeNamespaceExists, "%v", err)
		case errors.Is(err, ErrNamespaceLimit):
			writeError(w, http.StatusTooManyRequests, CodeNamespaceLimit, "%v", err)
		case errors.Is(err, ErrHostClosed):
			writeUnavailable(w, "%v", err)
		default:
			writeError(w, http.StatusInternalServerError, CodeInternal, "create namespace: %v", err)
		}
		return
	}
	writeJSON(w, http.StatusCreated, namespaceInfo(ns, s))
}

func (h *Host) handleDeleteNamespace(w http.ResponseWriter, r *http.Request) {
	ns := r.PathValue("ns")
	dst, err := h.Delete(ns)
	if err != nil {
		switch {
		case errors.Is(err, ErrNamespaceNotFound):
			writeError(w, http.StatusNotFound, CodeNamespaceNotFound, "%v", err)
		case errors.Is(err, ErrNotLeader):
			writeError(w, http.StatusConflict, CodeNotLeader, "%v", err)
		default:
			writeError(w, http.StatusInternalServerError, CodeInternal, "delete namespace: %v", err)
		}
		return
	}
	writeJSON(w, http.StatusOK, DeleteNamespaceResponse{Name: ns, QuarantinedTo: dst})
}

// ---------------------------------------------------------------------------
// Replica-host fleet membership.

func (h *Host) followClient() *http.Client {
	if h.opts.FollowClient != nil {
		return h.opts.FollowClient
	}
	return http.DefaultClient
}

func (h *Host) followPoll() time.Duration {
	if h.opts.FollowPoll > 0 {
		return h.opts.FollowPoll
	}
	return defaultFollowPoll
}

// followSyncLoop keeps the replica's namespace SET aligned with the
// leader's. Individual tenants pull their own data; this loop only handles
// membership — leader creates appear as local followers, leader deletes
// quarantine the local mirror. A failed cycle (leader unreachable) is
// skipped wholesale: an empty list that is really an error must never read
// as "delete everything".
func (h *Host) followSyncLoop() {
	defer close(h.syncDone)
	t := time.NewTicker(h.followPoll())
	defer t.Stop()
	for {
		select {
		case <-h.quit:
			return
		case <-t.C:
		}
		_ = h.syncFollowers() // transient; retried next tick
	}
}

// syncFollowers runs one membership sync against the leader's namespace
// list.
func (h *Host) syncFollowers() error {
	resp, err := h.followClient().Get(h.opts.Follow + "/v2/graphs")
	if err != nil {
		return err
	}
	body, rerr := io.ReadAll(io.LimitReader(resp.Body, maxRequestBody))
	resp.Body.Close()
	if rerr != nil {
		return rerr
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("serve: leader namespace list: status %d", resp.StatusCode)
	}
	var list NamespacesResponse
	if err := json.Unmarshal(body, &list); err != nil {
		return fmt.Errorf("serve: leader namespace list: %w", err)
	}
	want := make(map[string]bool, len(list.Namespaces))
	for _, info := range list.Namespaces {
		want[info.Name] = true
	}
	var firstErr error
	for _, info := range list.Namespaces {
		h.mu.RLock()
		_, live := h.tenants[info.Name]
		h.mu.RUnlock()
		if live {
			continue
		}
		if _, err := h.create(info.Name, nil, nil, true); err != nil && !errors.Is(err, ErrNamespaceExists) && firstErr == nil {
			firstErr = fmt.Errorf("serve: follow namespace %q: %w", info.Name, err)
		}
	}
	// Only FOLLOWER tenants absent from the leader are removed: a tenant
	// promoted out of follower role is an operator decision this loop must
	// never undo.
	h.mu.RLock()
	var gone []string
	for ns, s := range h.tenants {
		if !want[ns] && s.Role() == RoleFollower {
			gone = append(gone, ns)
		}
	}
	h.mu.RUnlock()
	for _, ns := range gone {
		if _, err := h.remove(ns); err != nil && !errors.Is(err, ErrNamespaceNotFound) && firstErr == nil {
			firstErr = fmt.Errorf("serve: drop namespace %q: %w", ns, err)
		}
	}
	return firstErr
}

// proxyMutations forwards a mutation POST hitting a follower tenant to the
// same namespace on the leader and streams the answer back verbatim, so a
// naive client pointed at any fleet member still lands its writes.
func (h *Host) proxyMutations(w http.ResponseWriter, r *http.Request, ns string) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRequestBody))
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "read mutation body: %v", err)
		return
	}
	url := h.opts.Follow + "/v2/graphs/" + ns + "/mutations"
	req, err := http.NewRequestWithContext(r.Context(), http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		writeError(w, http.StatusInternalServerError, CodeInternal, "proxy mutations: %v", err)
		return
	}
	req.Header.Set("Content-Type", "application/json")
	// The trace ID rides the proxy hop both ways, so the client's
	// X-Request-Id names the same trace on the leader.
	if id := r.Header.Get("X-Request-Id"); id != "" {
		req.Header.Set("X-Request-Id", id)
	}
	resp, err := h.followClient().Do(req)
	if err != nil {
		writeUnavailable(w, "leader %s unreachable: %v", h.opts.Follow, err)
		return
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	if id := resp.Header.Get("X-Request-Id"); id != "" {
		w.Header().Set("X-Request-Id", id)
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, io.LimitReader(resp.Body, maxRequestBody))
}

// Promote turns the named FOLLOWER tenant into a leader: the follower is
// closed and restarted in standby mode on its own mirrored directories, so
// the restart replays every mirrored-but-unfolded WAL batch on top of the
// installed checkpoint — promotion loses no batch the old leader
// acknowledged and shipped. The promoted tenant keeps serving (and now
// accepts writes) under the same namespace.
func (h *Host) Promote(ns string) (*Server, error) {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return nil, ErrHostClosed
	}
	s, ok := h.tenants[ns]
	if !ok || h.creating[ns] {
		h.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrNamespaceNotFound, ns)
	}
	if s.Role() != RoleFollower {
		h.mu.Unlock()
		return nil, fmt.Errorf("%w: %q has role %s", ErrNotFollower, ns, s.Role())
	}
	// The creating flag keeps a concurrent promote (or create race) out of
	// this namespace while its server is down.
	h.creating[ns] = true
	h.mu.Unlock()
	defer func() {
		h.mu.Lock()
		delete(h.creating, ns)
		h.mu.Unlock()
	}()
	if err := s.Close(); err != nil {
		return nil, fmt.Errorf("serve: promote %q: close follower: %w", ns, err)
	}
	promoted, err := h.startTenant(ns, nil, nil, true, false)
	if err != nil {
		// The follower is gone and the promotion failed: unregister so the
		// namespace reads as down rather than serving a closed tenant.
		h.mu.Lock()
		delete(h.tenants, ns)
		h.mu.Unlock()
		return nil, fmt.Errorf("serve: promote %q: %w", ns, err)
	}
	h.mu.Lock()
	h.tenants[ns] = promoted
	h.mu.Unlock()
	h.log.Info("namespace promoted", "ns", ns, "gen", promoted.Snapshot().Generation,
		"replayed_batches", promoted.Recovery().ReplayedBatches)
	return promoted, nil
}

// handlePromote is POST /v2/graphs/{ns}/replication/promote.
func (h *Host) handlePromote(w http.ResponseWriter, r *http.Request) {
	ns := r.PathValue("ns")
	s, err := h.Promote(ns)
	if err != nil {
		switch {
		case errors.Is(err, ErrNamespaceNotFound):
			writeError(w, http.StatusNotFound, CodeNamespaceNotFound, "%v", err)
		case errors.Is(err, ErrNotFollower):
			writeError(w, http.StatusConflict, CodeNotFollower, "%v", err)
		case errors.Is(err, ErrHostClosed):
			writeUnavailable(w, "%v", err)
		default:
			writeError(w, http.StatusInternalServerError, CodeInternal, "promote: %v", err)
		}
		return
	}
	writeJSON(w, http.StatusOK, PromoteResponse{
		Name:            ns,
		Role:            s.Role(),
		Generation:      s.Snapshot().Generation,
		ReplayedBatches: s.Recovery().ReplayedBatches,
	})
}
