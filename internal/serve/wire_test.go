package serve

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	icspm "cspm/internal/cspm"
	"cspm/internal/wal"
)

// Canonical fixture values: every field non-zero (encoding/json emits all
// exported fields, but a zero value would leave that field's FORMAT — float
// rendering, array-vs-null — unpinned) and floats that exercise shortest
// round-trip rendering.

func goldenModelResponse() ModelResponse {
	return ModelResponse{
		Generation:       7,
		Vertices:         1200,
		Edges:            5400,
		AttrValues:       37,
		BaselineDL:       10240.5,
		FinalDL:          8191.25,
		CompressionRatio: 0.7999267578125,
		CondEntropy:      0.4375,
		Patterns:         96,
		MultiLeaf:        23,
		Iterations:       73,
		GainEvals:        15321,
		CacheHits:        11,
		CacheMisses:      1,
		CacheEvictions:   2,
		RemoteJobs:       12,
		RemoteRetries:    3,
		LocalFallbacks:   1,
	}
}

func goldenPatternsResponse() PatternsResponse {
	return PatternsResponse{
		Generation: 7,
		Total:      96,
		Offset:     10,
		Limit:      2,
		Patterns: []PatternJSON{
			{Core: []string{"ICDM"}, Leaf: []string{"EDBT", "PODS"}, FL: 41, FC: 52,
				Confidence: 0.7884615384615384, CodeLen: 9.53125},
			{Core: []string{"smoker"}, Leaf: []string{"cancer"}, FL: 7, FC: 21,
				Confidence: 0.3333333333333333, CodeLen: 12.125},
		},
	}
}

func goldenWatchResponse() WatchResponse {
	return WatchResponse{
		Generation:  42,
		ModelSHA256: "9f2c5e1a7b3d4086c1d2e3f405162738495a6b7c8d9e0f1a2b3c4d5e6f708192",
		// TimedOut true: the zero value would leave the field's rendering
		// unpinned, and the timed-out shape is the one retrying clients parse.
		TimedOut: true,
	}
}

// TestResponseWireFormatGolden pins the JSON bytes of the /v1/model,
// /v1/patterns and /v1/watch responses: the committed fixtures must decode into exactly
// the canonical values, and re-encoding those values through the same
// encoder the handlers use must reproduce the committed bytes byte for
// byte. A renamed/reordered/retyped field breaks every deployed client, so
// it must arrive as a NEW endpoint version with new fixtures — never by
// mutating these. Regenerate deliberately with
// UPDATE_WIRE_GOLDEN=1 go test ./internal/serve -run WireFormat.
func TestResponseWireFormatGolden(t *testing.T) {
	cases := []struct {
		name string
		path string
		val  any
		dest func() any
	}{
		{"model", "testdata/model_v1.json", goldenModelResponse(),
			func() any { return &ModelResponse{} }},
		{"patterns", "testdata/patterns_v1.json", goldenPatternsResponse(),
			func() any { return &PatternsResponse{} }},
		{"watch", "testdata/watch_v1.json", goldenWatchResponse(),
			func() any { return &WatchResponse{} }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// The handlers stream through json.NewEncoder, which appends a
			// trailing newline; the fixture pins those exact bytes.
			var buf bytes.Buffer
			if err := json.NewEncoder(&buf).Encode(tc.val); err != nil {
				t.Fatal(err)
			}
			if os.Getenv("UPDATE_WIRE_GOLDEN") != "" {
				if err := os.MkdirAll(filepath.Dir(tc.path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(tc.path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %d bytes to %s", buf.Len(), tc.path)
			}
			committed, err := os.ReadFile(tc.path)
			if err != nil {
				t.Fatalf("read fixture: %v (regenerate with UPDATE_WIRE_GOLDEN=1)", err)
			}
			if !bytes.Equal(committed, buf.Bytes()) {
				t.Errorf("encoding %s diverged from the committed wire format:\n got: %s\nwant: %s",
					tc.name, buf.Bytes(), committed)
			}
			dest := tc.dest()
			if err := json.Unmarshal(committed, dest); err != nil {
				t.Fatalf("decode fixture: %v", err)
			}
			got := reflect.ValueOf(dest).Elem().Interface()
			if !reflect.DeepEqual(got, tc.val) {
				t.Errorf("fixture decoded to\n%+v\nwant\n%+v", got, tc.val)
			}
		})
	}
}

// goldenWALBatchV1 is a fixed-|V|-era batch: attribute and edge ops only,
// the only ops a version-1 (PR 6) binary could ever have appended.
func goldenWALBatchV1() []Mutation {
	return []Mutation{
		{Op: OpAddAttr, U: 0, Value: "cancer"},
		{Op: OpDelAttr, U: 1, Value: "smoker"},
		{Op: OpAddEdge, U: 0, V: 3},
		{Op: OpDelEdge, U: 1, V: 2},
	}
}

// goldenWALBatchV2 exercises every op, including the vertex add/remove ops
// only the version-2 framing may carry.
func goldenWALBatchV2() []Mutation {
	return append(goldenWALBatchV1(),
		Mutation{Op: OpAddVertex},
		Mutation{Op: OpAddEdge, U: 8, V: 4},
		Mutation{Op: OpAddAttr, U: 8, Value: "vldb"},
		Mutation{Op: OpDelVertex, U: 2},
	)
}

// TestWALBatchWireFormatGolden pins the WAL payload bytes the way the JSON
// test pins the HTTP bytes: the committed v2 fixture must be byte-identical
// to what encodeBatch writes today, and the committed v1 fixture (a bare gob
// stream, byte-identical to what a PR 6 binary wrote) must still DECODE into
// exactly the canonical batch — old segments on disk outlive the binaries
// that wrote them. Regenerate deliberately with
// UPDATE_WIRE_GOLDEN=1 go test ./internal/serve -run WireFormat.
func TestWALBatchWireFormatGolden(t *testing.T) {
	const (
		v1Path = "testdata/wal_batch_v1.bin"
		v2Path = "testdata/wal_batch_v2.bin"
	)
	var v1 bytes.Buffer
	if err := gob.NewEncoder(&v1).Encode(goldenWALBatchV1()); err != nil {
		t.Fatal(err)
	}
	v2, err := encodeBatch(goldenWALBatchV2())
	if err != nil {
		t.Fatal(err)
	}
	if os.Getenv("UPDATE_WIRE_GOLDEN") != "" {
		for path, data := range map[string][]byte{v1Path: v1.Bytes(), v2Path: v2} {
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
			t.Logf("wrote %d bytes to %s", len(data), path)
		}
	}

	// v2: byte-identical encode, exact decode.
	committed2, err := os.ReadFile(v2Path)
	if err != nil {
		t.Fatalf("read fixture: %v (regenerate with UPDATE_WIRE_GOLDEN=1)", err)
	}
	if !bytes.Equal(committed2, v2) {
		t.Errorf("encodeBatch diverged from the committed v2 payload bytes")
	}
	dec2, err := decodeBatch(committed2)
	if err != nil {
		t.Fatalf("decode committed v2 payload: %v", err)
	}
	if !reflect.DeepEqual(dec2, goldenWALBatchV2()) {
		t.Errorf("v2 fixture decoded to %+v, want %+v", dec2, goldenWALBatchV2())
	}

	// v1: the committed bytes ARE the legacy format (pin them so the fixture
	// cannot silently drift into something no old binary ever wrote), and the
	// current reader must accept them unframed.
	committed1, err := os.ReadFile(v1Path)
	if err != nil {
		t.Fatalf("read fixture: %v (regenerate with UPDATE_WIRE_GOLDEN=1)", err)
	}
	if !bytes.Equal(committed1, v1.Bytes()) {
		t.Errorf("the v1 fixture no longer matches a bare gob of the canonical batch")
	}
	dec1, err := decodeBatch(committed1)
	if err != nil {
		t.Fatalf("decode committed v1 payload: %v", err)
	}
	if !reflect.DeepEqual(dec1, goldenWALBatchV1()) {
		t.Errorf("v1 fixture decoded to %+v, want %+v", dec1, goldenWALBatchV1())
	}
	// The encode direction never resurrects v1: a re-encoded legacy batch
	// comes back framed as the current version.
	re, err := encodeBatch(dec1)
	if err != nil {
		t.Fatal(err)
	}
	if ver, _, err := wal.DecodePayload(re); err != nil || ver != walBatchVersion {
		t.Errorf("re-encoded legacy batch framed as v%d (err=%v), want v%d", ver, err, walBatchVersion)
	}
}

// TestV1WALSegmentRecoversUnderV2Reader writes the committed v1 payload into
// a real WAL segment — exactly what a dead PR 6 server would leave on disk —
// and recovers a current server over it: the batch must replay and the
// recovered model must equal mining the mutated graph offline.
func TestV1WALSegmentRecoversUnderV2Reader(t *testing.T) {
	committed, err := os.ReadFile("testdata/wal_batch_v1.bin")
	if err != nil {
		t.Fatalf("read fixture: %v (regenerate with UPDATE_WIRE_GOLDEN=1)", err)
	}
	dir := t.TempDir()
	wl, _, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wl.Append(committed); err != nil {
		t.Fatal(err)
	}
	if err := wl.Close(); err != nil {
		t.Fatal(err)
	}

	g := testGraph(t)
	s := newTestServer(t, g, Options{WALDir: dir})
	rec := s.Recovery()
	if rec.ReplayedBatches != 1 || rec.ReplayedMutations != len(goldenWALBatchV1()) {
		t.Fatalf("v1 segment recovery replayed %d batches / %d mutations, want 1/%d",
			rec.ReplayedBatches, rec.ReplayedMutations, len(goldenWALBatchV1()))
	}
	requireModelEqual(t, s.Snapshot().Model, icspm.Mine(Rebuild(g, goldenWALBatchV1())))
}
