package serve

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// Canonical fixture values: every field non-zero (encoding/json emits all
// exported fields, but a zero value would leave that field's FORMAT — float
// rendering, array-vs-null — unpinned) and floats that exercise shortest
// round-trip rendering.

func goldenModelResponse() ModelResponse {
	return ModelResponse{
		Generation:       7,
		Vertices:         1200,
		Edges:            5400,
		AttrValues:       37,
		BaselineDL:       10240.5,
		FinalDL:          8191.25,
		CompressionRatio: 0.7999267578125,
		CondEntropy:      0.4375,
		Patterns:         96,
		MultiLeaf:        23,
		Iterations:       73,
		GainEvals:        15321,
		CacheHits:        11,
		CacheMisses:      1,
		CacheEvictions:   2,
		RemoteJobs:       12,
		RemoteRetries:    3,
		LocalFallbacks:   1,
	}
}

func goldenPatternsResponse() PatternsResponse {
	return PatternsResponse{
		Generation: 7,
		Total:      96,
		Offset:     10,
		Limit:      2,
		Patterns: []PatternJSON{
			{Core: []string{"ICDM"}, Leaf: []string{"EDBT", "PODS"}, FL: 41, FC: 52,
				Confidence: 0.7884615384615384, CodeLen: 9.53125},
			{Core: []string{"smoker"}, Leaf: []string{"cancer"}, FL: 7, FC: 21,
				Confidence: 0.3333333333333333, CodeLen: 12.125},
		},
	}
}

// TestResponseWireFormatGolden pins the JSON bytes of the /v1/model and
// /v1/patterns responses: the committed fixtures must decode into exactly
// the canonical values, and re-encoding those values through the same
// encoder the handlers use must reproduce the committed bytes byte for
// byte. A renamed/reordered/retyped field breaks every deployed client, so
// it must arrive as a NEW endpoint version with new fixtures — never by
// mutating these. Regenerate deliberately with
// UPDATE_WIRE_GOLDEN=1 go test ./internal/serve -run WireFormat.
func TestResponseWireFormatGolden(t *testing.T) {
	cases := []struct {
		name string
		path string
		val  any
		dest func() any
	}{
		{"model", "testdata/model_v1.json", goldenModelResponse(),
			func() any { return &ModelResponse{} }},
		{"patterns", "testdata/patterns_v1.json", goldenPatternsResponse(),
			func() any { return &PatternsResponse{} }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// The handlers stream through json.NewEncoder, which appends a
			// trailing newline; the fixture pins those exact bytes.
			var buf bytes.Buffer
			if err := json.NewEncoder(&buf).Encode(tc.val); err != nil {
				t.Fatal(err)
			}
			if os.Getenv("UPDATE_WIRE_GOLDEN") != "" {
				if err := os.MkdirAll(filepath.Dir(tc.path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(tc.path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %d bytes to %s", buf.Len(), tc.path)
			}
			committed, err := os.ReadFile(tc.path)
			if err != nil {
				t.Fatalf("read fixture: %v (regenerate with UPDATE_WIRE_GOLDEN=1)", err)
			}
			if !bytes.Equal(committed, buf.Bytes()) {
				t.Errorf("encoding %s diverged from the committed wire format:\n got: %s\nwant: %s",
					tc.name, buf.Bytes(), committed)
			}
			dest := tc.dest()
			if err := json.Unmarshal(committed, dest); err != nil {
				t.Fatalf("decode fixture: %v", err)
			}
			got := reflect.ValueOf(dest).Elem().Interface()
			if !reflect.DeepEqual(got, tc.val) {
				t.Errorf("fixture decoded to\n%+v\nwant\n%+v", got, tc.val)
			}
		})
	}
}
