package serve

import (
	"net/http"
	"strconv"
	"time"
)

// WatchResponse is the GET /v1/watch payload. Generation and ModelSHA256
// describe ONE snapshot load, so a client can never observe a generation
// paired with another generation's model commitment, no matter how many
// swaps raced the poll. TimedOut marks a poll that returned at its bound
// (or at server drain) without the requested generation having published;
// the client long-polls again from the generation it now holds.
type WatchResponse struct {
	Generation  uint64 `json:"generation"`
	ModelSHA256 string `json:"model_sha256"`
	TimedOut    bool   `json:"timed_out"`
}

const (
	// defaultWatchTimeout bounds a poll that names no timeout_ms.
	defaultWatchTimeout = 30 * time.Second
	// maxWatchTimeout caps client-requested waits: a long-poll holds a
	// connection, and re-polling is cheap.
	maxWatchTimeout = 120 * time.Second
)

// handleWatch is GET /v1/watch?generation=G&timeout_ms=T: a long-poll that
// resolves as soon as a snapshot with Generation >= G is published (G
// defaults to 0, so a bare watch resolves immediately with the current
// state — the idiom for learning the head generation before polling for the
// next one). The wait is bounded by timeout_ms and by the server's drain:
// both resolve the poll with the CURRENT state and timed_out=true rather
// than an error, so clients treat every 200 the same way. Failed re-mines
// do not resolve a poll — the generation a watcher waits for only ever
// arrives via a publish.
func (s *Server) handleWatch(w http.ResponseWriter, r *http.Request) {
	s.met.watchReqs.Add(1)
	gen, err := queryUint64(r, "generation", 0)
	if err != nil {
		s.badRequest(w, "bad generation: want a non-negative integer")
		return
	}
	timeoutMS, err := queryInt(r, "timeout_ms", int(defaultWatchTimeout/time.Millisecond))
	if err != nil || timeoutMS < 0 {
		s.badRequest(w, "bad timeout_ms: want a non-negative integer")
		return
	}
	timeout := time.Duration(timeoutMS) * time.Millisecond
	if timeout > maxWatchTimeout {
		timeout = maxWatchTimeout
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	for {
		// Grab the notify channel BEFORE checking the snapshot: a publish
		// between the check and the select then still wakes this poll.
		s.mu.Lock()
		ch := s.notify
		s.mu.Unlock()
		if snap := s.snap.Load(); snap.Generation >= gen {
			writeJSON(w, http.StatusOK, WatchResponse{
				Generation: snap.Generation, ModelSHA256: snap.ModelSHA256,
			})
			return
		}
		select {
		case <-ch:
			// Publish or failure broadcast; loop to re-check the snapshot.
		case <-timer.C:
			snap := s.snap.Load()
			writeJSON(w, http.StatusOK, WatchResponse{
				Generation: snap.Generation, ModelSHA256: snap.ModelSHA256, TimedOut: true,
			})
			return
		case <-s.draining:
			// Shutdown drain: release the watcher immediately with whatever is
			// being served, so graceful shutdown never waits out a poll.
			snap := s.snap.Load()
			writeJSON(w, http.StatusOK, WatchResponse{
				Generation: snap.Generation, ModelSHA256: snap.ModelSHA256, TimedOut: true,
			})
			return
		case <-r.Context().Done():
			// Client went away; nothing useful to write.
			return
		}
	}
}

// queryUint64 parses an unsigned integer query parameter with a default.
func queryUint64(r *http.Request, name string, def uint64) (uint64, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, nil
	}
	return strconv.ParseUint(raw, 10, 64)
}
