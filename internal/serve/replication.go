package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"cspm/internal/graph"
	"cspm/internal/obs"
	"cspm/internal/shardcache"
	"cspm/internal/wal"
)

// Replication layer: a leader exposes its checkpoint state — MANIFEST,
// folded GRAPH bytes, cache blobs, and the WAL tail past the fold — over
// /replication/* read endpoints, and a follower pulls each published
// generation, verifies EVERY artifact against the MANIFEST's SHA-256
// commitments before swapping its served snapshot, and mirrors the leader's
// WAL tail under the leader's own sequence numbers so promoting the
// follower loses no acknowledged batch. The MANIFEST is shipped as raw
// bytes and installed last, so a follower's checkpoint directory is
// bit-identical to the leader's and recovers through the exact same
// commit-then-verify path. See DESIGN.md "Replication & fleet roles".

// Server roles on the replication fleet.
const (
	// RoleStandalone serves without durable state to ship (no WAL or no
	// checkpoint dir): it can neither lead nor follow.
	RoleStandalone = "standalone"
	// RoleLeader mines, publishes, and ships checkpoints. Every durable
	// (WAL + checkpoint) server that is not following is a leader — having
	// zero followers is just a fleet of one.
	RoleLeader = "leader"
	// RoleFollower pulls, verifies, and serves the leader's generations;
	// mutations are rejected (or proxied by the host) with not_leader.
	RoleFollower = "follower"
)

// ErrNotLeader rejects a mutation submitted to a follower: writes go to the
// leader (the error message names it).
var ErrNotLeader = errors.New("serve: not the leader")

// ErrNotFollower rejects promoting a tenant that is not following anyone.
var ErrNotFollower = errors.New("serve: not a follower")

// FollowOptions configures a follower Server.
type FollowOptions struct {
	// Leader is the leader tenant's base URL — the mount the replication
	// endpoints live under, e.g. "http://leader:8080/v2/graphs/prod".
	Leader string
	// Poll bounds the watch long-poll driving the pull loop and paces the
	// WAL-tail mirror (0 = 500ms). Smaller = lower replication lag, more
	// leader round-trips.
	Poll time.Duration
	// Client is the HTTP client of every pull (nil = http.DefaultClient).
	Client *http.Client
}

// defaultFollowPoll bounds a follower's watch long-poll when FollowOptions
// names none.
const defaultFollowPoll = 500 * time.Millisecond

func (f *FollowOptions) poll() time.Duration {
	if f.Poll > 0 {
		return f.Poll
	}
	return defaultFollowPoll
}

// Role reports which side of the replication protocol this server is on.
func (s *Server) Role() string {
	switch {
	case s.opts.Follow != nil:
		return RoleFollower
	case s.wl != nil && s.opts.PersistDir != "":
		return RoleLeader
	default:
		return RoleStandalone
	}
}

// replicable reports whether this server ships checkpoint state: a leader
// with both a WAL and a checkpoint dir.
func (s *Server) replicable() bool {
	return s.wl != nil && s.opts.PersistDir != "" && s.opts.Follow == nil
}

// ReplicationStatusResponse is the GET /replication/status payload.
type ReplicationStatusResponse struct {
	Role          string `json:"role"`
	Generation    uint64 `json:"generation"`
	FoldedBatches uint64 `json:"folded_batches"`
	WALPosition   uint64 `json:"wal_position"`
	// Leader names the upstream a follower pulls from ("" elsewhere).
	Leader string `json:"leader,omitempty"`
	// Followers is the leader's view of every replica that has pulled from
	// it (PR 10): replication lag becomes observable from the leader side,
	// not just by asking each follower. Absent on followers/standalones.
	Followers []FollowerStatusJSON `json:"followers,omitempty"`
}

// FollowerStatusJSON is one replica's fetch state as the leader saw it.
type FollowerStatusJSON struct {
	// ID is the follower's self-assigned identity (stable for its lifetime).
	ID string `json:"id"`
	// ShippedGeneration is the checkpoint generation committed at the
	// follower's last manifest fetch — what the follower is syncing toward.
	ShippedGeneration uint64 `json:"shipped_generation"`
	// ShippedWALPosition is the highest WAL sequence shipped to this
	// follower's mirror.
	ShippedWALPosition uint64 `json:"shipped_wal_position"`
	// ManifestFetchAgeSeconds / WALFetchAgeSeconds are how long ago the
	// follower last pulled each surface (-1 = never).
	ManifestFetchAgeSeconds float64 `json:"manifest_fetch_age_seconds"`
	WALFetchAgeSeconds      float64 `json:"wal_fetch_age_seconds"`
}

// ReplicationWALRecord is one shipped WAL record: the leader's sequence
// number and the framed batch payload, verbatim. TraceID carries the
// batch's request ID so the follower's mirror trace joins the leader's.
type ReplicationWALRecord struct {
	Seq     uint64 `json:"seq"`
	Payload []byte `json:"payload"`
	TraceID string `json:"trace_id,omitempty"`
}

// ReplicationWALResponse is the GET /replication/wal?after=N payload: every
// unfolded record with Seq > N, plus the leader's current WAL position so a
// caught-up mirror can tell.
type ReplicationWALResponse struct {
	Position uint64                 `json:"position"`
	Records  []ReplicationWALRecord `json:"records"`
}

// PromoteResponse is the POST /replication/promote payload: the promoted
// tenant's new role and generation, and how many mirrored batches the
// promotion replayed on top of the last shipped checkpoint.
type PromoteResponse struct {
	Name            string `json:"name"`
	Role            string `json:"role"`
	Generation      uint64 `json:"generation"`
	ReplayedBatches int    `json:"replayed_batches"`
}

// replicationRoutes is the leader-side replication surface. It is mounted
// ONLY under /v2/graphs/{ns} — replication is fleet plumbing, not part of
// the frozen /v1 contract — and rides the shared registrar so misses and
// method mismatches answer the unified envelope. The promote verb is
// host-level (it restarts the tenant) and registered separately.
var replicationRoutes = []tenantRoute{
	{"GET", "/replication/status", epReplication, func(s *Server) http.HandlerFunc { return s.handleReplStatus }},
	{"GET", "/replication/manifest", epReplication, func(s *Server) http.HandlerFunc { return s.handleReplManifest }},
	{"GET", "/replication/graph", epReplication, func(s *Server) http.HandlerFunc { return s.handleReplGraph }},
	{"GET", "/replication/blob", epReplication, func(s *Server) http.HandlerFunc { return s.handleReplBlob }},
	{"GET", "/replication/wal", epReplication, func(s *Server) http.HandlerFunc { return s.handleReplWAL }},
}

// followerIDHeader carries a follower's self-assigned identity on every
// replication pull, so the leader can account per-follower fetch state.
const followerIDHeader = "X-CSPM-Follower"

// maxTrackedFollowers bounds the leader's per-follower state map: past the
// cap the stalest entry is evicted, so a churn of short-lived follower IDs
// (restarts mint new ones) cannot grow leader memory without bound.
const maxTrackedFollowers = 64

// followerState is the leader's record of one replica's pulls.
type followerState struct {
	lastManifest time.Time
	lastWAL      time.Time
	shippedGen   uint64
	shippedWAL   uint64
}

// noteFollower updates (creating if needed) the state for the follower named
// by the request's ID header and returns it still under folMu via the update
// callback. Requests without the header are anonymous pulls (curl, tests)
// and are not tracked.
func (s *Server) noteFollower(r *http.Request, update func(*followerState)) string {
	id := r.Header.Get(followerIDHeader)
	if id == "" {
		return ""
	}
	s.folMu.Lock()
	defer s.folMu.Unlock()
	fs, ok := s.followers[id]
	if !ok {
		if len(s.followers) >= maxTrackedFollowers {
			stalest, when := "", time.Time{}
			for fid, f := range s.followers {
				last := f.lastManifest
				if f.lastWAL.After(last) {
					last = f.lastWAL
				}
				if stalest == "" || last.Before(when) {
					stalest, when = fid, last
				}
			}
			delete(s.followers, stalest)
		}
		fs = &followerState{}
		s.followers[id] = fs
	}
	update(fs)
	return id
}

// followerStatuses snapshots the tracked followers, sorted by ID for a
// deterministic wire order.
func (s *Server) followerStatuses() []FollowerStatusJSON {
	age := func(t time.Time) float64 {
		if t.IsZero() {
			return -1
		}
		return time.Since(t).Seconds()
	}
	s.folMu.Lock()
	out := make([]FollowerStatusJSON, 0, len(s.followers))
	for id, f := range s.followers {
		out = append(out, FollowerStatusJSON{
			ID:                      id,
			ShippedGeneration:       f.shippedGen,
			ShippedWALPosition:      f.shippedWAL,
			ManifestFetchAgeSeconds: age(f.lastManifest),
			WALFetchAgeSeconds:      age(f.lastWAL),
		})
	}
	s.folMu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func (s *Server) handleReplStatus(w http.ResponseWriter, r *http.Request) {
	snap := s.snap.Load()
	s.mu.Lock()
	folded := s.foldedBatches
	s.mu.Unlock()
	st := ReplicationStatusResponse{
		Role:          s.Role(),
		Generation:    snap.Generation,
		FoldedBatches: folded,
		WALPosition:   s.walPos.Load(),
	}
	if f := s.opts.Follow; f != nil {
		st.Leader = f.Leader
	}
	if s.replicable() {
		st.Followers = s.followerStatuses()
	}
	writeJSON(w, http.StatusOK, st)
}

// requireShippable gates the artifact endpoints: only a leader with a
// committed checkpoint has state to ship. Followers refuse too — chained
// replication would serve a mirror as an origin.
func (s *Server) requireShippable(w http.ResponseWriter) bool {
	if !s.replicable() {
		writeError(w, http.StatusConflict, CodeNotReplicable,
			"replication source must be a leader with a WAL and checkpoint dir (role %s)", s.Role())
		return false
	}
	return true
}

// shipFile serves one checkpoint artifact's raw bytes.
func (s *Server) shipFile(w http.ResponseWriter, name string) {
	data, err := os.ReadFile(filepath.Join(s.opts.PersistDir, name))
	if err != nil {
		if os.IsNotExist(err) {
			writeError(w, http.StatusConflict, CodeNotReplicable, "no committed %s yet", name)
			return
		}
		writeError(w, http.StatusInternalServerError, CodeInternal, "read %s: %v", name, err)
		return
	}
	s.met.replicationBytesShipped.Add(uint64(len(data)))
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data)
}

func (s *Server) handleReplManifest(w http.ResponseWriter, r *http.Request) {
	if !s.requireShippable(w) {
		return
	}
	shipped := s.lastCkptGen.Load()
	s.noteFollower(r, func(f *followerState) {
		f.lastManifest = time.Now()
		f.shippedGen = shipped
	})
	s.shipFile(w, shardcache.ManifestName)
}

func (s *Server) handleReplGraph(w http.ResponseWriter, r *http.Request) {
	if !s.requireShippable(w) {
		return
	}
	s.shipFile(w, checkpointGraphName)
}

func (s *Server) handleReplBlob(w http.ResponseWriter, r *http.Request) {
	if !s.requireShippable(w) {
		return
	}
	name := r.URL.Query().Get("name")
	// Blob names come from a MANIFEST the caller fetched here; anything with
	// a path separator or the wrong extension is an attack, not a typo.
	if name == "" || name != filepath.Base(name) || !strings.HasSuffix(name, ".gob") {
		s.badRequest(w, "bad blob name %q", name)
		return
	}
	s.shipFile(w, name)
}

func (s *Server) handleReplWAL(w http.ResponseWriter, r *http.Request) {
	if !s.requireShippable(w) {
		return
	}
	after, err := queryUint64(r, "after", 0)
	if err != nil {
		s.badRequest(w, "bad after: want a non-negative integer")
		return
	}
	resp := ReplicationWALResponse{Position: s.walPos.Load()}
	s.tailMu.Lock()
	for _, rec := range s.walTail {
		if rec.Seq > after {
			resp.Records = append(resp.Records, ReplicationWALRecord{
				Seq: rec.Seq, Payload: rec.Payload, TraceID: s.tailIDs[rec.Seq],
			})
			s.met.replicationBytesShipped.Add(uint64(len(rec.Payload)))
		}
	}
	s.tailMu.Unlock()
	var hi uint64
	if n := len(resp.Records); n > 0 {
		hi = resp.Records[n-1].Seq
	}
	fid := s.noteFollower(r, func(f *followerState) {
		f.lastWAL = time.Now()
		if hi > f.shippedWAL {
			f.shippedWAL = hi
		}
	})
	for _, rec := range resp.Records {
		s.traces.Record(rec.Seq, obs.StageReplicated, 0, fid)
	}
	writeJSON(w, http.StatusOK, resp)
}

// appendTail records a shipped-able WAL record on the in-memory tail,
// remembering its trace ID so the ship to a follower carries it.
// checkpoint() prunes everything a committed manifest folds, so the tail is
// bounded by the same backlog the WAL's unfolded segments are.
func (s *Server) appendTail(seq uint64, payload []byte, traceID string) {
	s.tailMu.Lock()
	s.walTail = append(s.walTail, wal.Record{Seq: seq, Payload: payload})
	if traceID != "" {
		if s.tailIDs == nil {
			s.tailIDs = make(map[uint64]string)
		}
		s.tailIDs[seq] = traceID
	}
	s.tailMu.Unlock()
}

// pruneTail drops tail records a committed checkpoint covers.
func (s *Server) pruneTail(folded uint64) {
	s.tailMu.Lock()
	i := 0
	for i < len(s.walTail) && s.walTail[i].Seq <= folded {
		i++
	}
	for seq := range s.tailIDs {
		if seq <= folded {
			delete(s.tailIDs, seq)
		}
	}
	s.walTail = append([]wal.Record(nil), s.walTail[i:]...)
	s.tailMu.Unlock()
}

// ---------------------------------------------------------------------------
// Follower pull loop.

// errStaleSync marks a verification mismatch explained by the leader
// checkpointing mid-fetch (the re-fetched manifest differs): not corruption,
// just retry against the new manifest.
var errStaleSync = errors.New("serve: replication fetch raced a leader checkpoint")

// errWALGap marks a tail sync the leader can no longer serve contiguously
// (it compacted past the mirror's position): the mirror must re-install the
// leader's checkpoint and restart its log from the new fold.
var errWALGap = errors.New("serve: leader compacted past the mirror position")

// replGet fetches path (relative to the leader mount) with the follower's
// client, bounded by one poll interval plus slack so a dead leader never
// wedges the loop.
func (s *Server) replGet(path string) ([]byte, error) {
	f := s.opts.Follow
	ctx, cancel := context.WithTimeout(s.followCtx, f.poll()+10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, f.Leader+path, nil)
	if err != nil {
		return nil, err
	}
	if s.followerID != "" {
		req.Header.Set(followerIDHeader, s.followerID)
	}
	hc := f.Client
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxGraphUpload))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		var env ErrorJSON
		if json.Unmarshal(body, &env) == nil && env.Code != "" {
			return nil, fmt.Errorf("serve: leader %s: %d %s: %s", path, resp.StatusCode, env.Code, env.Error)
		}
		return nil, fmt.Errorf("serve: leader %s: status %d", path, resp.StatusCode)
	}
	return body, nil
}

// fetchLeaderManifest pulls and decodes the leader's MANIFEST, returning
// both the raw bytes (installed verbatim) and the parsed form (verified
// against).
func (s *Server) fetchLeaderManifest() ([]byte, *shardcache.Manifest, error) {
	raw, err := s.replGet("/replication/manifest")
	if err != nil {
		return nil, nil, err
	}
	man := &shardcache.Manifest{}
	if err := json.Unmarshal(raw, man); err != nil {
		return nil, nil, fmt.Errorf("serve: leader manifest: %w", err)
	}
	if man.Version > shardcache.ManifestVersion {
		return nil, nil, fmt.Errorf("serve: leader manifest v%d is newer than this binary (reads up to v%d)",
			man.Version, shardcache.ManifestVersion)
	}
	return raw, man, nil
}

// fetchVerified pulls one artifact and checks it against its manifest
// commitment IN MEMORY — nothing unverified ever lands under a durable
// name. On mismatch it re-fetches the manifest: if the manifest moved the
// fetch merely raced a leader checkpoint (errStaleSync, retry); if not, the
// artifact really is corrupt — its bytes are set aside as <name>.quarantined
// for the operator and the sync fails without touching the served snapshot.
func (s *Server) fetchVerified(path, name, wantSHA string, manRaw []byte) ([]byte, error) {
	var data []byte
	for attempt := 0; ; attempt++ {
		var err error
		data, err = s.replGet(path)
		if err != nil {
			return nil, err
		}
		if sha256Hex(data) == wantSHA {
			return data, nil
		}
		if raw2, _, err2 := s.fetchLeaderManifest(); err2 == nil && !bytes.Equal(raw2, manRaw) {
			return nil, errStaleSync
		}
		// An unchanged manifest does not yet prove corruption: the leader
		// renames GRAPH and blobs BEFORE the manifest that commits them, so
		// a fetch can land in the window where an artifact is already new
		// while the manifest is still old. Give the in-flight checkpoint a
		// beat to commit and re-pull before condemning the bytes.
		if attempt >= 2 {
			break
		}
		t := time.NewTimer(time.Duration(attempt+1) * 10 * time.Millisecond)
		select {
		case <-s.followCtx.Done():
			t.Stop()
			return nil, s.followCtx.Err()
		case <-t.C:
		}
	}
	s.met.replicationVerifyFailures.Add(1)
	qname := name + shardcache.QuarantineSuffix
	if werr := writeFileAtomicSync(s.opts.PersistDir, qname, data); werr != nil {
		return nil, fmt.Errorf("serve: shipped %s failed verification (got %s, manifest %s); quarantine also failed: %v",
			name, sha256Hex(data)[:12], wantSHA[:12], werr)
	}
	return nil, fmt.Errorf("serve: shipped %s failed verification (got %s, manifest %s); bytes quarantined as %s",
		name, sha256Hex(data)[:12], wantSHA[:12], qname)
}

// fetchAndInstall pulls the generation the leader's manifest commits to —
// graph bytes and every cache blob — verifies each against the manifest in
// memory, and only then installs: blobs first, GRAPH next, raw MANIFEST
// last. The manifest write is the commit point exactly as on the leader, so
// a crash mid-install leaves the previous checkpoint fully intact.
func (s *Server) fetchAndInstall(manRaw []byte, man *shardcache.Manifest) error {
	gb, err := s.fetchVerified("/replication/graph", checkpointGraphName, man.GraphSHA256, manRaw)
	if err != nil {
		return err
	}
	blobs := make(map[string][]byte, len(man.Blobs))
	for name, sum := range man.Blobs {
		b, err := s.fetchVerified("/replication/blob?name="+name, name, sum, manRaw)
		if err != nil {
			return err
		}
		blobs[name] = b
	}
	dir := s.opts.PersistDir
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for name, b := range blobs {
		if err := writeFileAtomicSync(dir, name, b); err != nil {
			return err
		}
	}
	if err := writeFileAtomicSync(dir, checkpointGraphName, gb); err != nil {
		return err
	}
	return writeFileAtomicSync(dir, shardcache.ManifestName, manRaw)
}

// followBootstrap runs before recoverStartup on a follower: it checks the
// upstream really is a leader and installs its current checkpoint if the
// local one is missing or older, so recovery then promotes from leader
// state exactly like a warm standby would from its own.
func (s *Server) followBootstrap() error {
	raw, err := s.replGet("/replication/status")
	if err != nil {
		return fmt.Errorf("serve: follow bootstrap: %w", err)
	}
	var st ReplicationStatusResponse
	if err := json.Unmarshal(raw, &st); err != nil {
		return fmt.Errorf("serve: follow bootstrap: %w", err)
	}
	if st.Role != RoleLeader {
		return fmt.Errorf("serve: follow bootstrap: upstream %s has role %s, want %s (chained replication is not supported)",
			s.opts.Follow.Leader, st.Role, RoleLeader)
	}
	manRaw, man, err := s.fetchLeaderManifest()
	if err != nil {
		return fmt.Errorf("serve: follow bootstrap: %w", err)
	}
	local, err := shardcache.LoadManifest(s.opts.PersistDir)
	if err != nil {
		return err
	}
	if local != nil && local.Generation >= man.Generation {
		return nil // restart with a current mirror: nothing to ship
	}
	for {
		err := s.fetchAndInstall(manRaw, man)
		if err == nil {
			return nil
		}
		if !errors.Is(err, errStaleSync) {
			return fmt.Errorf("serve: follow bootstrap: %w", err)
		}
		if manRaw, man, err = s.fetchLeaderManifest(); err != nil {
			return fmt.Errorf("serve: follow bootstrap: %w", err)
		}
	}
}

// followLoop is the follower's twin of loop(): long-poll the leader's watch
// for a generation beyond ours, mirror the WAL tail, and sync any new
// generation. Errors back off on the server's retry schedule and keep the
// last verified snapshot serving — a follower degrades to staleness exactly
// like a failed re-mine does.
func (s *Server) followLoop() {
	defer close(s.done)
	var fails uint64
	for {
		select {
		case <-s.quit:
			return
		default:
		}
		err := s.followOnce()
		if err == nil || errors.Is(err, errStaleSync) {
			fails = 0
			continue
		}
		if errors.Is(err, context.Canceled) {
			return // Close cancelled the pull context
		}
		fails++
		s.mu.Lock()
		s.lastErr = err
		s.mu.Unlock()
		t := time.NewTimer(retryDelay(s.opts.RetryBackoff, s.opts.RetryBackoffMax, fails))
		select {
		case <-s.quit:
			t.Stop()
			return
		case <-t.C:
		}
	}
}

// followOnce runs one pull cycle: watch, mirror the WAL tail, sync the
// generation if the leader moved on.
func (s *Server) followOnce() error {
	cur := s.snap.Load().Generation
	pollMS := int(s.opts.Follow.poll() / time.Millisecond)
	raw, err := s.replGet(fmt.Sprintf("/watch?generation=%d&timeout_ms=%d", cur+1, pollMS))
	if err != nil {
		return err
	}
	var wr WatchResponse
	if err := json.Unmarshal(raw, &wr); err != nil {
		return fmt.Errorf("serve: leader watch: %w", err)
	}
	if wr.Generation > s.lastLeaderGen.Load() {
		s.lastLeaderGen.Store(wr.Generation)
	}
	if err := s.syncWALTail(); err != nil && !errors.Is(err, errWALGap) {
		return err
	} else if errors.Is(err, errWALGap) {
		// The leader compacted past the mirror: everything missing is covered
		// by a checkpoint the leader committed since, so install that first,
		// then restart the mirror log from the new fold.
		if serr := s.syncGeneration(); serr != nil {
			return serr
		}
		if rerr := s.resetMirrorWAL(); rerr != nil {
			return rerr
		}
		return s.syncWALTail()
	}
	if wr.Generation > cur {
		if err := s.syncGeneration(); err != nil {
			return err
		}
		if s.snap.Load().Generation == cur {
			// The leader published but its checkpoint has not committed yet
			// (the manifest still names the old generation), so the next
			// watch would resolve instantly — wait a beat instead of
			// spinning on the leader until the checkpoint lands.
			t := time.NewTimer(s.opts.Follow.poll() / 4)
			select {
			case <-s.quit:
				t.Stop()
			case <-t.C:
			}
		}
	}
	return nil
}

// syncWALTail mirrors the leader's unfolded WAL records under their leader
// sequence numbers. Already-held records ship as no-ops; a gap reports
// errWALGap for followOnce to resolve via a checkpoint re-install.
func (s *Server) syncWALTail() error {
	after := s.wl.NextSeq() - 1
	raw, err := s.replGet(fmt.Sprintf("/replication/wal?after=%d", after))
	if err != nil {
		return err
	}
	var resp ReplicationWALResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		return fmt.Errorf("serve: leader wal: %w", err)
	}
	for _, rec := range resp.Records {
		wrote, err := s.wl.AppendAt(rec.Seq, rec.Payload)
		if err != nil {
			if strings.Contains(err.Error(), "gap") && rec.Seq > s.wl.NextSeq() {
				return fmt.Errorf("%w: mirror at %d, leader ships from %d", errWALGap, s.wl.NextSeq()-1, rec.Seq)
			}
			return err
		}
		if wrote {
			s.walPos.Store(rec.Seq)
			// The mirror trace lives under the LEADER's sequence number —
			// that is the join key a fleet-wide trace query uses.
			s.traces.Start(rec.Seq, rec.TraceID, 0, obs.StageWALMirrored, 0, "")
			s.log.Debug("wal record mirrored", "batch", rec.Seq, "trace", rec.TraceID)
		}
	}
	return nil
}

// resetMirrorWAL wipes and reopens the mirror log. Only called once the
// records being dropped are covered by a newer INSTALLED checkpoint, so no
// acknowledged batch loses its last durable copy.
func (s *Server) resetMirrorWAL() error {
	if err := s.wl.Close(); err != nil {
		return err
	}
	entries, err := os.ReadDir(s.opts.WALDir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".wal") {
			if err := os.Remove(filepath.Join(s.opts.WALDir, e.Name())); err != nil {
				return err
			}
		}
	}
	l, _, err := wal.Open(s.opts.WALDir, wal.Options{FS: s.opts.WALFS, SegmentBytes: s.opts.WALSegmentBytes})
	if err != nil {
		return err
	}
	s.wl = l
	s.walPos.Store(0)
	return nil
}

// syncGeneration pulls the leader's latest committed checkpoint, verifies
// every artifact against its manifest, installs it, re-mines the warm cache
// over the verified graph, checks the mined model against the manifest's
// commitment, and ONLY THEN swaps the served snapshot — at the leader's own
// generation number, so the fleet's generations are comparable.
func (s *Server) syncGeneration() error {
	manRaw, man, err := s.fetchLeaderManifest()
	if err != nil {
		return err
	}
	cur := s.snap.Load()
	if man.Generation <= cur.Generation {
		return nil // the publish we watched has not checkpointed yet; next cycle
	}
	if err := s.fetchAndInstall(manRaw, man); err != nil {
		return err
	}
	gb, err := os.ReadFile(filepath.Join(s.opts.PersistDir, checkpointGraphName))
	if err != nil {
		return err
	}
	g, err := graph.Load(bytes.NewReader(gb))
	if err != nil {
		return fmt.Errorf("serve: shipped graph: %w", err)
	}
	g = reintern(g, man.Vocab)
	// Drop resident entries so the mine reads the freshly installed blobs:
	// fingerprints of unchanged components still hit, now from verified disk.
	s.cache.Purge()
	s.opts.Budget.acquire()
	model, err := s.mine(g)
	if err == nil && modelChecksum(model) != man.ModelSHA256 {
		// The verified graph + shipped blobs mined to something else: a blob
		// replayed stale state that still fingerprint-matched. Same degrade
		// path as local recovery — quarantine every blob, re-mine cold.
		s.met.replicationVerifyFailures.Add(1)
		s.met.checksumMismatches.Add(1)
		n, qerr := shardcache.QuarantineDir(s.opts.PersistDir)
		s.met.quarantinedBlobs.Add(uint64(n))
		if qerr == nil {
			s.cache.Purge()
			model, err = s.mine(g)
			if err == nil && modelChecksum(model) != man.ModelSHA256 {
				err = fmt.Errorf("serve: cold re-mine of shipped generation %d still diverges from the manifest commitment", man.Generation)
			}
		} else {
			err = qerr
		}
	}
	s.opts.Budget.release()
	if err != nil {
		return err
	}
	s.mu.Lock()
	prevFolded := s.foldedBatches
	s.mu.Unlock()
	// Everything between the previous fold and the manifest's is now
	// verified against the leader's commitments; the swap below starts
	// serving it.
	s.traces.RecordRange(prevFolded, man.FoldedBatches, obs.StageVerified, man.Generation, "")
	snap := newSnapshot(man.Generation, g, model)
	s.snap.Store(snap)
	s.met.replicationSyncs.Add(1)
	s.mu.Lock()
	s.foldedBatches = man.FoldedBatches
	s.minedSeq = man.FoldedMutations
	s.mutSeq = man.FoldedMutations
	s.broadcastLocked()
	s.mu.Unlock()
	s.traces.RecordRange(prevFolded, man.FoldedBatches, obs.StageSwapped, man.Generation, "")
	s.log.Info("generation synced", "gen", man.Generation, "folded_batches", man.FoldedBatches)
	// Mirror segments the installed checkpoint covers are garbage now.
	return s.wl.Compact(man.FoldedBatches)
}
