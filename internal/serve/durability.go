package serve

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"

	icspm "cspm/internal/cspm"
	"cspm/internal/graph"
	"cspm/internal/obs"
	"cspm/internal/shardcache"
	"cspm/internal/wal"
)

// ErrUnavailable reports that a mutation batch could not be made durable:
// the WAL append failed, so the batch was NOT accepted and the client must
// retry against a recovered server. Handlers map it to 503, not 400 — the
// request was fine, the durability layer is not.
var ErrUnavailable = errors.New("serve: durability unavailable")

// ErrNoDurableState reports that a Standby start found NOTHING to promote:
// no committed checkpoint and no acknowledged WAL batches. For a warm spare
// that is fatal (the whole point is refusing an empty cold start); for a
// multi-tenant recovery scan it marks a namespace whose create never
// completed — its directory tree is quarantined, never trusted, and the
// scan moves on.
var ErrNoDurableState = errors.New("serve: no durable state to promote")

// checkpointGraphName is the folded-graph file a checkpoint writes next to
// the cache blobs and MANIFEST in PersistDir.
const checkpointGraphName = "GRAPH"

// RecoveryStats describes what NewServer found and did while recovering
// durable state, for operators deciding whether a standby promoted warm.
type RecoveryStats struct {
	// Checkpoint reports that a committed MANIFEST was found in PersistDir.
	Checkpoint bool
	// CheckpointGeneration is the generation the manifest committed to.
	CheckpointGeneration uint64
	// CheckpointDamaged reports that the checkpoint failed verification
	// (unreadable or checksum-mismatched graph) and was distrusted wholesale.
	CheckpointDamaged bool
	// ModelMismatch reports that the model mined over the recovered cache did
	// not match the manifest's commitment: every blob was quarantined and the
	// model re-mined cold.
	ModelMismatch bool
	// ReplayedBatches / ReplayedMutations count WAL records folded in on top
	// of the checkpoint (or the base graph) during recovery.
	ReplayedBatches   int
	ReplayedMutations int
	// QuarantinedBlobs counts cache blobs renamed aside because their bytes
	// no longer matched the manifest.
	QuarantinedBlobs int
	// TornWALTail reports that the WAL truncated a partially written record
	// (a crash mid-append; the record was never acknowledged).
	TornWALTail bool
}

// Recovery returns what NewServer recovered. The value is fixed at startup.
func (s *Server) Recovery() RecoveryStats { return s.rec }

// walBatchVersion is the payload format this binary writes. Version 1 (the
// PR 6 format) is a bare gob-encoded []Mutation from the fixed-|V| era;
// version 2 wraps the same gob stream in wal.EncodePayload framing, marking
// batches that may contain vertex add/remove ops so a v1-era binary fails
// loudly on them instead of replaying ops it does not understand.
const walBatchVersion = 2

// encodeBatch serialises one acknowledged mutation batch as a WAL payload.
func encodeBatch(muts []Mutation) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(muts); err != nil {
		return nil, fmt.Errorf("serve: encode batch: %w", err)
	}
	return wal.EncodePayload(walBatchVersion, buf.Bytes()), nil
}

// decodeBatch is the inverse of encodeBatch, and still decodes version-1
// payloads (segments written by older binaries recover cleanly; the
// fixture-pinned compatibility test holds us to it).
func decodeBatch(payload []byte) ([]Mutation, error) {
	ver, body, err := wal.DecodePayload(payload)
	if err != nil {
		return nil, fmt.Errorf("serve: decode batch: %w", err)
	}
	if ver > walBatchVersion {
		return nil, fmt.Errorf("serve: WAL batch format v%d is newer than this binary (reads up to v%d)", ver, walBatchVersion)
	}
	var muts []Mutation
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&muts); err != nil {
		return nil, fmt.Errorf("serve: decode batch: %w", err)
	}
	return muts, nil
}

// modelChecksum commits to a mined model: summary statistics plus every
// pattern, with attribute ids spelled by NAME so the digest is invariant
// under re-interning (the same logical model hashes identically no matter
// what order a recovered graph assigned its ids in).
func modelChecksum(m *icspm.Model) string {
	h := sha256.New()
	var b [8]byte
	writeF := func(x float64) { binary.LittleEndian.PutUint64(b[:], math.Float64bits(x)); h.Write(b[:]) }
	writeU := func(x uint64) { binary.LittleEndian.PutUint64(b[:], x); h.Write(b[:]) }
	writeAttrs := func(ids []graph.AttrID) {
		writeU(uint64(len(ids)))
		for _, a := range ids {
			io.WriteString(h, m.Vocab.Name(a))
			h.Write([]byte{0})
		}
	}
	writeF(m.BaselineDL)
	writeF(m.FinalDL)
	writeF(m.CondEntropy)
	writeU(uint64(len(m.Patterns)))
	for _, p := range m.Patterns {
		writeAttrs(p.CoreValues)
		writeAttrs(p.LeafValues)
		writeU(uint64(p.FL))
		writeU(uint64(p.FC))
		writeF(p.CodeLen)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// graphBytes serialises g in the graph text format (deterministic output).
func graphBytes(g *graph.Graph) ([]byte, error) {
	var buf bytes.Buffer
	if err := graph.Write(&buf, g); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func sha256Hex(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// reintern rebuilds g so its vocabulary is interned in exactly the given
// name order (then any value of g missing from order, which a consistent
// checkpoint never has). Cache keys are content fingerprints over interned
// ids, so recovering the checkpoint graph in its original interning order is
// what makes the persisted blobs hit instead of silently going cold.
func reintern(g *graph.Graph, order []string) *graph.Graph {
	b := graph.NewBuilder(g.NumVertices())
	vocab := b.Vocab()
	for _, name := range order {
		vocab.ID(name)
	}
	for v := 0; v < g.NumVertices(); v++ {
		for _, a := range g.Attrs(graph.VertexID(v)) {
			// Vertices are in range by construction; AddAttr cannot fail.
			_ = b.AddAttr(graph.VertexID(v), g.Vocab().Name(a))
		}
	}
	for v := 0; v < g.NumVertices(); v++ {
		for _, u := range g.Neighbors(graph.VertexID(v)) {
			if graph.VertexID(v) < u {
				_ = b.AddEdge(graph.VertexID(v), u)
			}
		}
	}
	return b.Build()
}

// loadCheckpointGraph reads and VERIFIES the checkpointed graph: its bytes
// must hash to the manifest's commitment before they are parsed or trusted,
// and the parsed graph is re-interned in the manifest's recorded vocabulary
// order so cache fingerprints line up.
func loadCheckpointGraph(dir string, man *shardcache.Manifest) (*graph.Graph, error) {
	data, err := os.ReadFile(filepath.Join(dir, checkpointGraphName))
	if err != nil {
		return nil, fmt.Errorf("serve: checkpoint graph: %w", err)
	}
	if got := sha256Hex(data); got != man.GraphSHA256 {
		return nil, fmt.Errorf("serve: checkpoint graph checksum %s does not match manifest %s",
			got[:12], man.GraphSHA256[:12])
	}
	g, err := graph.Load(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("serve: checkpoint graph: %w", err)
	}
	return reintern(g, man.Vocab), nil
}

// writeFileAtomicSync writes data as dir/name via fsync'd temp file + rename
// + directory fsync, so the rename is a durable commit point.
func writeFileAtomicSync(dir, name string, data []byte) error {
	tmp, err := os.CreateTemp(dir, "ckpt-*.tmp")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(data)
	if werr == nil {
		werr = tmp.Sync()
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp.Name(), filepath.Join(dir, name))
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return werr
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// recoverStartup is NewServer's durability pass, run before the initial
// mine. It loads and verifies any checkpoint in PersistDir, opens the WAL
// and replays unfolded batches, and returns the graph the generation-0 state
// should be mined from plus the generation to publish it as. On return
// s.wl/s.batchSeq/s.foldedBatches/s.rec are populated.
//
// Failure policy: damage that loses NO acknowledged data degrades (distrust
// the checkpoint, quarantine blobs, fall back to g0 + full replay); damage
// that would silently drop an acknowledged batch — a WAL gap, a compacted
// WAL whose covering checkpoint is unusable — is a hard error, because
// serving would mean lying about writes the server acknowledged.
func (s *Server) recoverStartup(g0 *graph.Graph) (*graph.Graph, uint64, error) {
	opts := s.opts
	base := g0
	gen := uint64(1)
	var man *shardcache.Manifest
	var err error
	if opts.PersistDir != "" {
		if man, err = shardcache.LoadManifest(opts.PersistDir); err != nil {
			return nil, 0, err
		}
	}
	if man != nil {
		s.rec.Checkpoint = true
		s.rec.CheckpointGeneration = man.Generation
		gen = man.Generation
		ckpt, cerr := loadCheckpointGraph(opts.PersistDir, man)
		switch {
		case cerr == nil:
			// No |V| cross-check against g0: vertex mutations legitimately
			// drift the checkpoint's count away from the base graph's, and the
			// manifest's graph checksum already authenticates the checkpoint.
			base = ckpt
			s.ckptModelSum = man.ModelSHA256
			// Per-blob verification: a blob whose bytes drifted from the
			// manifest is quarantined so it can never poison a re-mine.
			q, verr := shardcache.VerifyBlobs(opts.PersistDir, man)
			s.rec.QuarantinedBlobs += len(q)
			s.met.quarantinedBlobs.Add(uint64(len(q)))
			if verr != nil {
				return nil, 0, verr
			}
		default:
			// The checkpoint as a whole is untrustworthy. Nothing acknowledged
			// is lost yet — the WAL may still hold every batch — so degrade:
			// distrust every blob and rebuild from g0 + full replay. Whether
			// that replay actually covers the folded batches is checked below.
			s.rec.CheckpointDamaged = true
			s.met.checksumMismatches.Add(1)
			n, qerr := shardcache.QuarantineDir(opts.PersistDir)
			s.rec.QuarantinedBlobs += n
			s.met.quarantinedBlobs.Add(uint64(n))
			if qerr != nil {
				return nil, 0, qerr
			}
			s.cache.Purge()
			man = nil // fall through as if no checkpoint existed
			if g0 == nil {
				return nil, 0, fmt.Errorf("serve: checkpoint unusable and no base graph given: %w", cerr)
			}
		}
	}
	if base == nil {
		if opts.Standby {
			return nil, 0, fmt.Errorf("%w: standby found no checkpoint in %q", ErrNoDurableState, opts.PersistDir)
		}
		return nil, 0, fmt.Errorf("serve: nil graph and no checkpoint to recover")
	}

	var replayed []Mutation
	if opts.WALDir != "" {
		wfs := opts.WALFS
		l, recs, werr := wal.Open(opts.WALDir, wal.Options{FS: wfs, SegmentBytes: opts.WALSegmentBytes})
		if werr != nil {
			return nil, 0, werr
		}
		s.wl = l
		s.rec.TornWALTail = l.TornTail()
		// Batches the checkpoint already folded replay as no-ops; skip them.
		var folded uint64
		if man != nil {
			folded = man.FoldedBatches
		}
		i := 0
		for i < len(recs) && recs[i].Seq <= folded {
			i++
		}
		recs = recs[i:]
		if len(recs) > 0 && recs[0].Seq != folded+1 {
			// Records between the checkpoint and the log's first survivor were
			// compacted away, but the checkpoint supposed to cover them is not
			// the one we recovered: acknowledged batches are gone.
			return nil, 0, fmt.Errorf("serve: WAL resumes at batch %d but recovered state folds only %d — acknowledged batches lost",
				recs[0].Seq, folded)
		}
		if len(recs) == 0 && l.NextSeq()-1 > folded {
			return nil, 0, fmt.Errorf("serve: WAL was compacted through batch %d but recovered state folds only %d — acknowledged batches lost",
				l.NextSeq()-1, folded)
		}
		if opts.Follow != nil {
			// Mirror mode: the surviving records are the LEADER's unfolded
			// batches. They stay in the log so a promotion can replay them,
			// but a follower serves exactly the installed checkpoint
			// generation — replaying here would publish state the leader
			// never committed to a manifest. The gap checks above still ran:
			// a mirror that lost acknowledged records refuses to start too.
			s.foldedBatches = folded
			s.batchSeq = l.NextSeq() - 1
		} else {
			// Replay validation threads the running vertex count batch to batch,
			// exactly as the submit path did when the batches were acknowledged.
			n := base.NumVertices()
			for _, r := range recs {
				batch, derr := decodeBatch(r.Payload)
				if derr != nil {
					return nil, 0, fmt.Errorf("serve: WAL batch %d: %w", r.Seq, derr)
				}
				delta, verr := validateBatch(batch, n)
				if verr != nil {
					return nil, 0, fmt.Errorf("serve: WAL batch %d replays invalid mutation: %w", r.Seq, verr)
				}
				n += delta
				replayed = append(replayed, batch...)
			}
			s.rec.ReplayedBatches = len(recs)
			s.rec.ReplayedMutations = len(replayed)
			s.met.recoveredBatches.Add(uint64(len(recs)))
			// Sequence bookkeeping lives in the WAL's own domain: batchSeq is the
			// last record on disk, foldedBatches what the recovered base covers.
			s.batchSeq = l.NextSeq() - 1
			s.foldedBatches = s.batchSeq - uint64(len(recs))
			if opts.PersistDir != "" {
				// A restarted leader re-seeds its in-memory ship tail from the
				// same unfolded records it is about to replay.
				s.walTail = recs
			}
		}
		s.walPos.Store(s.batchSeq)
	}
	if opts.Standby && man == nil && s.rec.ReplayedBatches == 0 {
		return nil, 0, fmt.Errorf("%w: no checkpoint, empty WAL", ErrNoDurableState)
	}
	if len(replayed) > 0 {
		base = Rebuild(base, replayed)
		gen++
	}
	return base, gen, nil
}

// verifyRecoveredModel checks the freshly mined recovery model against the
// manifest's commitment (captured as s.ckptModelSum while recovering; empty
// when there is nothing to verify against). Only meaningful when the mined
// graph IS the checkpoint graph (no WAL replay on top): mining is
// deterministic, so any difference means the recovered cache replayed stale
// or tampered entries that still fingerprint-matched. The degrade path
// quarantines every blob, purges memory, and re-mines cold — correctness
// over warmth.
func (s *Server) verifyRecoveredModel(base *graph.Graph, model *icspm.Model) (*icspm.Model, error) {
	if s.ckptModelSum == "" || s.rec.ReplayedBatches > 0 {
		return model, nil
	}
	if modelChecksum(model) == s.ckptModelSum {
		return model, nil
	}
	s.rec.ModelMismatch = true
	s.met.checksumMismatches.Add(1)
	n, qerr := shardcache.QuarantineDir(s.opts.PersistDir)
	s.rec.QuarantinedBlobs += n
	s.met.quarantinedBlobs.Add(uint64(n))
	if qerr != nil {
		return nil, qerr
	}
	s.cache.Purge()
	remodel, merr := s.mine(base)
	if merr != nil {
		return nil, fmt.Errorf("serve: re-mine after checksum mismatch: %w", merr)
	}
	return remodel, nil
}

// checkpoint commits the served state to PersistDir — folded graph, cache
// blobs, then the MANIFEST as the atomic commit point — and only then
// compacts WAL segments the checkpoint covers. Called from the re-mine loop
// and Close, never concurrently.
func (s *Server) checkpoint(snap *Snapshot) error {
	dir := s.opts.PersistDir
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	gb, err := graphBytes(snap.Graph)
	if err != nil {
		return err
	}
	if err := writeFileAtomicSync(dir, checkpointGraphName, gb); err != nil {
		return err
	}
	s.mu.Lock()
	folded, foldedMuts := s.foldedBatches, s.minedSeq
	ckptLo, ckptHi := s.ckptTrace, s.foldedTrace
	s.mu.Unlock()
	man := &shardcache.Manifest{
		Generation:      snap.Generation,
		FoldedBatches:   folded,
		FoldedMutations: foldedMuts,
		ModelSHA256:     modelChecksum(snap.Model),
		GraphSHA256:     sha256Hex(gb),
		Vocab:           snap.Graph.Vocab().Names(),
	}
	if err := s.cache.PersistManifest(dir, man); err != nil {
		return err
	}
	if s.wl != nil {
		// The manifest above is durable: every batch ≤ folded is recoverable
		// without the log, so the segments holding them may go.
		if err := s.wl.Compact(folded); err != nil {
			return err
		}
	}
	// Followers can re-fetch anything ≤ folded from the checkpoint just
	// shipped, so the in-memory tail sheds it too.
	s.pruneTail(folded)
	s.met.checkpoints.Add(1)
	s.lastCkptGen.Store(man.Generation)
	s.mu.Lock()
	if ckptHi > s.ckptTrace {
		s.ckptTrace = ckptHi
	}
	s.mu.Unlock()
	s.traces.RecordRange(ckptLo, ckptHi, obs.StageCheckpointed, man.Generation, "")
	s.log.Debug("checkpoint committed", "gen", man.Generation, "folded_batches", folded)
	return nil
}
