package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	icspm "cspm/internal/cspm"
)

// infRow is a fusion row poisoned with one non-finite score.
func infRow(nA int) []float64 {
	row := make([]float64, nA)
	row[0] = math.Inf(1)
	return row
}

// startHTTP wraps a test server in a real HTTP stack.
func startHTTP(t *testing.T, s *Server) *httptest.Server {
	t.Helper()
	hs := httptest.NewServer(s)
	t.Cleanup(hs.Close)
	return hs
}

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp
}

func postJSON(t *testing.T, url string, body any, out any) *http.Response {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s response: %v", url, err)
		}
	}
	return resp
}

func TestHTTPPatternsPagination(t *testing.T) {
	g := testGraph(t)
	s := newTestServer(t, g, Options{})
	hs := startHTTP(t, s)

	var full PatternsResponse
	if resp := getJSON(t, hs.URL+"/v1/patterns?limit=1000", &full); resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	want := icspm.Mine(g)
	if full.Total != len(want.Patterns) || len(full.Patterns) != len(want.Patterns) {
		t.Fatalf("total=%d patterns=%d, want %d", full.Total, len(full.Patterns), len(want.Patterns))
	}
	if full.Generation != 1 {
		t.Errorf("generation = %d, want 1", full.Generation)
	}
	// The page walk must reassemble the full ranked list.
	var walked []PatternJSON
	for off := 0; off < full.Total; off += 2 {
		var page PatternsResponse
		getJSON(t, fmt.Sprintf("%s/v1/patterns?offset=%d&limit=2", hs.URL, off), &page)
		if page.Offset != off || page.Limit != 2 {
			t.Fatalf("page echoes offset=%d limit=%d", page.Offset, page.Limit)
		}
		walked = append(walked, page.Patterns...)
	}
	if len(walked) != full.Total {
		t.Fatalf("page walk got %d patterns, want %d", len(walked), full.Total)
	}
	for i := range walked {
		if walked[i].CodeLen != full.Patterns[i].CodeLen || walked[i].FL != full.Patterns[i].FL {
			t.Fatalf("page walk diverged at %d", i)
		}
	}

	var multi PatternsResponse
	getJSON(t, hs.URL+"/v1/patterns?multileaf=1&limit=1000", &multi)
	if multi.Total != len(want.MultiLeaf()) {
		t.Errorf("multileaf total = %d, want %d", multi.Total, len(want.MultiLeaf()))
	}
	for _, p := range multi.Patterns {
		if len(p.Leaf) < 2 {
			t.Errorf("multileaf page contains single-leaf pattern %v", p)
		}
	}

	for _, q := range []string{"offset=-1", "limit=0", "limit=9999", "offset=x"} {
		if resp := getJSON(t, hs.URL+"/v1/patterns?"+q, nil); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", q, resp.StatusCode)
		}
	}
}

func TestHTTPComplete(t *testing.T) {
	g := testGraph(t)
	s := newTestServer(t, g, Options{})
	hs := startHTTP(t, s)

	var resp CompleteResponse
	if r := postJSON(t, hs.URL+"/v1/complete", CompleteRequest{Vertices: []uint32{0, 4}}, &resp); r.StatusCode != http.StatusOK {
		t.Fatalf("status %d", r.StatusCode)
	}
	if resp.Generation != 1 || len(resp.Results) != 2 {
		t.Fatalf("generation=%d results=%d", resp.Generation, len(resp.Results))
	}
	// Vertex 0 sits among smoker/cancer vertices: every core value in the
	// model is scored, but island 1's values must outrank island 2's (their
	// a-star leafsets overlap the neighbourhood, so the weight penalty is
	// smaller).
	if len(resp.Results[0].Values) == 0 {
		t.Fatal("vertex 0 got no candidates")
	}
	if top := resp.Results[0].Values[0].Value; top != "smoker" && top != "cancer" {
		t.Errorf("vertex 0 top candidate = %q, want an island-1 value", top)
	}

	var one CompleteResponse
	postJSON(t, hs.URL+"/v1/complete", CompleteRequest{Vertices: []uint32{0}, TopK: 1}, &one)
	if len(one.Results[0].Values) != 1 {
		t.Errorf("top_k=1 returned %d values", len(one.Results[0].Values))
	}

	// Fusion: a flat external model row keeps the CSPM ranking; the fused
	// request must succeed and score the same vertex.
	nA := g.NumAttrValues()
	row := make([]float64, nA)
	for i := range row {
		row[i] = 0.5
	}
	var fused CompleteResponse
	if r := postJSON(t, hs.URL+"/v1/complete", CompleteRequest{
		Vertices: []uint32{0}, ModelScores: map[string][]float64{"0": row},
	}, &fused); r.StatusCode != http.StatusOK {
		t.Fatalf("fused status %d", r.StatusCode)
	}
	if len(fused.Results) != 1 || len(fused.Results[0].Values) == 0 {
		t.Fatal("fused request returned no candidates")
	}

	// A duplicated vertex must fuse ONCE: both result entries carry the
	// same scores as the single-vertex request (double fusion would square
	// the CSPM weighting).
	var dup CompleteResponse
	if r := postJSON(t, hs.URL+"/v1/complete", CompleteRequest{
		Vertices: []uint32{0, 0}, ModelScores: map[string][]float64{"0": row},
	}, &dup); r.StatusCode != http.StatusOK {
		t.Fatalf("duplicate-vertex status %d", r.StatusCode)
	}
	if len(dup.Results) != 2 ||
		!reflect.DeepEqual(dup.Results[0].Values, fused.Results[0].Values) ||
		!reflect.DeepEqual(dup.Results[1].Values, fused.Results[0].Values) {
		t.Errorf("duplicated vertex fused differently:\n one %+v\n dup %+v", fused.Results[0], dup.Results)
	}

	bad := []CompleteRequest{
		{},                       // no vertices
		{Vertices: []uint32{99}}, // out of range
		{Vertices: []uint32{0}, TopK: -1},
		{Vertices: []uint32{0}, ModelScores: map[string][]float64{"0": {1}}},  // short row
		{Vertices: []uint32{0}, ModelScores: map[string][]float64{"99": row}}, // bad key
		{Vertices: []uint32{0}, ModelScores: map[string][]float64{"x": row}},  // non-numeric key
	}
	for i, req := range bad {
		if r := postJSON(t, hs.URL+"/v1/complete", req, nil); r.StatusCode != http.StatusBadRequest {
			t.Errorf("bad request %d: status %d, want 400", i, r.StatusCode)
		}
	}
	// Bodies encoding/json cannot even produce: malformed JSON, and an
	// out-of-range literal (the decoder rejects 1e999 before our finiteness
	// check — parseModelScores is the second line of defence for non-HTTP
	// callers, exercised below).
	for _, body := range []string{"{not json", `{"vertices":[0],"model_scores":{"0":[1e999]}}`} {
		if r, err := http.Post(hs.URL+"/v1/complete", "application/json", strings.NewReader(body)); err != nil {
			t.Fatal(err)
		} else if r.Body.Close(); r.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400", body, r.StatusCode)
		}
	}
	if _, err := parseModelScores(map[string][]float64{"0": infRow(nA)}, g.NumVertices(), nA); err == nil {
		t.Error("parseModelScores accepted a non-finite score")
	}
}

func TestHTTPModelAndHealthz(t *testing.T) {
	g := testGraph(t)
	s := newTestServer(t, g, Options{})
	hs := startHTTP(t, s)

	var model ModelResponse
	getJSON(t, hs.URL+"/v1/model", &model)
	want := icspm.Mine(g)
	if model.Generation != 1 || model.FinalDL != want.FinalDL || model.BaselineDL != want.BaselineDL {
		t.Errorf("model stats diverge: %+v", model)
	}
	if model.Vertices != g.NumVertices() || model.Edges != g.NumEdges() || model.AttrValues != g.NumAttrValues() {
		t.Errorf("graph stats diverge: %+v", model)
	}
	if model.Patterns != len(want.Patterns) || model.MultiLeaf != len(want.MultiLeaf()) {
		t.Errorf("pattern counts diverge: %+v", model)
	}

	var health HealthResponse
	getJSON(t, hs.URL+"/v1/healthz", &health)
	if health.Status != "ok" || health.Generation != 1 || health.PendingMutations != 0 {
		t.Errorf("healthz = %+v", health)
	}
	if health.SnapshotAgeSeconds < 0 {
		t.Errorf("negative snapshot age %v", health.SnapshotAgeSeconds)
	}
}

func TestHTTPMutationsAndMetrics(t *testing.T) {
	g := testGraph(t)
	s := newTestServer(t, g, Options{})
	hs := startHTTP(t, s)

	var ack MutationsResponse
	r := postJSON(t, hs.URL+"/v1/mutations", MutationsRequest{Mutations: []Mutation{
		{Op: OpAddEdge, U: 0, V: 3},
		{Op: OpAddAttr, U: 3, Value: "cancer"},
	}}, &ack)
	if r.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d, want 202", r.StatusCode)
	}
	if ack.Accepted != 2 {
		t.Errorf("accepted = %d, want 2", ack.Accepted)
	}
	if err := s.Flush(ctxShort(t)); err != nil {
		t.Fatal(err)
	}
	if gen := s.Snapshot().Generation; gen != 2 {
		t.Fatalf("generation = %d after mutation flush", gen)
	}

	if r := postJSON(t, hs.URL+"/v1/mutations", MutationsRequest{Mutations: []Mutation{
		{Op: OpAddEdge, U: 1, V: 1},
	}}, nil); r.StatusCode != http.StatusBadRequest {
		t.Errorf("self-loop mutation: status %d, want 400", r.StatusCode)
	}

	var met MetricsSnapshot
	getJSON(t, hs.URL+"/v1/metrics", &met)
	if met.RequestsMutations != 2 || met.MutationsAccepted != 2 || met.MutationsRejected != 1 {
		t.Errorf("mutation counters = %+v", met)
	}
	if met.Remines != 1 || met.SnapshotGeneration != 2 {
		t.Errorf("remine counters = %+v", met)
	}
	if met.BadRequests == 0 {
		t.Error("rejected mutation did not count as a bad request")
	}
	if met.RemineSecondsTotal <= 0 || met.RemineSecondsLast <= 0 {
		t.Errorf("re-mine durations not recorded: %+v", met)
	}
}

func TestHTTPMethodAndRouteErrors(t *testing.T) {
	s := newTestServer(t, testGraph(t), Options{})
	hs := startHTTP(t, s)
	cases := []struct {
		method, path string
		want         int
	}{
		{http.MethodGet, "/v1/mutations", http.StatusMethodNotAllowed},
		{http.MethodGet, "/v1/complete", http.StatusMethodNotAllowed},
		{http.MethodPost, "/v1/patterns", http.StatusMethodNotAllowed},
		{http.MethodPost, "/v1/model", http.StatusMethodNotAllowed},
		{http.MethodGet, "/v1/nope", http.StatusNotFound},
	}
	for _, tc := range cases {
		req, err := http.NewRequest(tc.method, hs.URL+tc.path, strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s %s: status %d, want %d", tc.method, tc.path, resp.StatusCode, tc.want)
		}
	}
}

func TestHTTPCompleteDuplicateAndCaps(t *testing.T) {
	s := newTestServer(t, testGraph(t), Options{})
	hs := startHTTP(t, s)

	// Unfused duplicates share one scoring pass and identical results.
	var dup CompleteResponse
	if r := postJSON(t, hs.URL+"/v1/complete", CompleteRequest{Vertices: []uint32{0, 0, 0}}, &dup); r.StatusCode != http.StatusOK {
		t.Fatalf("status %d", r.StatusCode)
	}
	if len(dup.Results) != 3 ||
		!reflect.DeepEqual(dup.Results[1].Values, dup.Results[0].Values) ||
		!reflect.DeepEqual(dup.Results[2].Values, dup.Results[0].Values) {
		t.Errorf("duplicated vertices ranked differently: %+v", dup.Results)
	}

	// Requests past the per-request scoring bound are rejected.
	big := make([]uint32, maxCompleteVertices+1)
	if r := postJSON(t, hs.URL+"/v1/complete", CompleteRequest{Vertices: big}, nil); r.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized vertex list: status %d, want 400", r.StatusCode)
	}

	// Bodies past the byte bound are rejected, on both POST endpoints.
	huge := strings.NewReader(`{"vertices":[0],"pad":"` + strings.Repeat("x", maxRequestBody) + `"}`)
	if r, err := http.Post(hs.URL+"/v1/complete", "application/json", huge); err != nil {
		t.Fatal(err)
	} else if r.Body.Close(); r.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized complete body: status %d, want 400", r.StatusCode)
	}
	huge = strings.NewReader(`{"mutations":[],"pad":"` + strings.Repeat("x", maxRequestBody) + `"}`)
	if r, err := http.Post(hs.URL+"/v1/mutations", "application/json", huge); err != nil {
		t.Fatal(err)
	} else if r.Body.Close(); r.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized mutations body: status %d, want 400", r.StatusCode)
	}
}
