package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	icspm "cspm/internal/cspm"
	"cspm/internal/graph"
	"cspm/internal/shardcache"
	"cspm/internal/wal/crashfs"
)

// testBatches is the mutation workload the durability tests drive: five
// acknowledged batches whose prefixes all mine to distinct models. The last
// two grow and shrink the vertex set, so every recovery test also proves
// vertex ops survive the WAL — and, because replaying add_vertex twice
// changes |V| where re-adding an attribute is silently idempotent, vertex
// batches make double-application after a partial recovery DETECTABLE in
// the model commitment.
func testBatches() [][]Mutation {
	return [][]Mutation{
		{{Op: OpAddAttr, U: 0, Value: "cancer"}},
		{{Op: OpAddEdge, U: 0, V: 3}, {Op: OpDelAttr, U: 1, Value: "smoker"}},
		{{Op: OpAddAttr, U: 5, Value: "vldb"}},
		// Grow: a new vertex (id 8) wired into island 2 and attributed in the
		// same batch.
		{{Op: OpAddVertex}, {Op: OpAddEdge, U: 8, V: 4}, {Op: OpAddAttr, U: 8, Value: "vldb"}},
		// Shrink: delete an attributed vertex; every larger id shifts down.
		{{Op: OpDelVertex, U: 2}},
	}
}

// flatten concatenates the first n batches into one mutation slice.
func flatten(batches [][]Mutation, n int) []Mutation {
	var all []Mutation
	for _, b := range batches[:n] {
		all = append(all, b...)
	}
	return all
}

// prefixChecksums mines every prefix of the batch workload offline and
// returns the model commitment for each: prefix j is the state a recovered
// server must serve when exactly j batches survived.
func prefixChecksums(t *testing.T, g *graph.Graph, batches [][]Mutation) []string {
	t.Helper()
	sums := make([]string, len(batches)+1)
	for j := 0; j <= len(batches); j++ {
		sums[j] = modelChecksum(icspm.Mine(Rebuild(g, flatten(batches, j))))
	}
	return sums
}

// TestRetryDelaySchedule pins the exact backoff schedule: exponential from
// the base, capped at the max, with the deterministic jitter folded in.
func TestRetryDelaySchedule(t *testing.T) {
	defaults := []time.Duration{
		1095339391, 1977474242, 4004643471, 8519005146, 17071502109,
		30000000000, 30000000000, // capped: the jittered value may not exceed max
	}
	for i, want := range defaults {
		if got := retryDelay(0, 0, uint64(i+1)); got != want {
			t.Errorf("retryDelay(defaults, %d) = %d, want %d", i+1, got, want)
		}
	}
	custom := []time.Duration{107123954, 218135798, 356041572, 400000000, 400000000}
	for i, want := range custom {
		if got := retryDelay(100*time.Millisecond, 400*time.Millisecond, uint64(i+1)); got != want {
			t.Errorf("retryDelay(100ms, 400ms, %d) = %d, want %d", i+1, got, want)
		}
	}
	// A max below the base is raised to it, never truncating the first delay.
	if got := retryDelay(time.Second, time.Millisecond, 1); got < 875*time.Millisecond {
		t.Errorf("retryDelay with max<base = %v, want ~1s", got)
	}

	// Long failure runs: the schedule stays pinned at the (jittered) cap no
	// matter how many consecutive failures accumulate. Before the exponent
	// clamp, the doubling loop overflowed time.Duration once the failure
	// count crossed the word size, so a long-dead fleet was suddenly retried
	// with a zero (or negative) delay — a retry storm exactly when backoff
	// mattered most.
	longRun := map[uint64]time.Duration{
		8: 30000000000, 16: 27349779157, 32: 27199572574,
		64: 26899159408, 128: 26298333076, 1 << 20: 30000000000,
	}
	for f, want := range longRun {
		if got := retryDelay(0, 0, f); got != want {
			t.Errorf("retryDelay(defaults, %d) = %d, want %d", f, got, want)
		}
	}
	// The overflow regression itself: a cap in the top half of the duration
	// range (here the maximum representable one) used to wrap the doubled
	// delay negative past ~63 failures. Pin the exact saturated schedule and
	// that every delay in a long run stays positive and capped.
	unbounded := time.Duration(math.MaxInt64)
	saturated := map[uint64]time.Duration{
		61: 9223372036854775807, 62: 9223372036854775807, 63: 9198308284150614322,
		64: 9069808057405343044, 65: 8941307830660071766, 128: 9223372036854775807,
	}
	for f, want := range saturated {
		if got := retryDelay(time.Second, unbounded, f); got != want {
			t.Errorf("retryDelay(1s, MaxInt64, %d) = %d, want %d", f, got, want)
		}
	}
	for f := uint64(1); f <= 256; f++ {
		if got := retryDelay(time.Second, unbounded, f); got <= 0 || got > unbounded {
			t.Fatalf("retryDelay(1s, MaxInt64, %d) = %d: escaped (0, max]", f, got)
		}
	}
}

// TestWALAckDurabilityAcrossRestart pins the core contract: a batch whose
// SubmitMutations returned nil survives an abrupt process death (the first
// server is simply abandoned, never Closed) and is replayed on restart.
func TestWALAckDurabilityAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	g := testGraph(t)
	batches := testBatches()
	s1, err := NewServer(g, Options{WALDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	// Deliberately no Close: s1 "crashes" with batches acknowledged but
	// (possibly) not yet folded into any published snapshot.
	for _, b := range batches {
		if err := s1.SubmitMutations(b); err != nil {
			t.Fatal(err)
		}
	}

	s2 := newTestServer(t, g, Options{WALDir: dir})
	rec := s2.Recovery()
	if rec.ReplayedBatches != len(batches) {
		t.Fatalf("replayed %d batches, want %d", rec.ReplayedBatches, len(batches))
	}
	if rec.ReplayedMutations != len(flatten(batches, len(batches))) {
		t.Fatalf("replayed %d mutations, want %d", rec.ReplayedMutations, len(flatten(batches, len(batches))))
	}
	if rec.Checkpoint || rec.TornWALTail {
		t.Fatalf("WAL-only recovery reported checkpoint=%v torn=%v", rec.Checkpoint, rec.TornWALTail)
	}
	snap := s2.Snapshot()
	if snap.Generation != 2 {
		t.Fatalf("recovered generation = %d, want 2 (replay advances the base)", snap.Generation)
	}
	requireModelEqual(t, snap.Model, icspm.Mine(Rebuild(g, flatten(batches, len(batches)))))
	if got := s2.Metrics().RecoveredBatches; got != uint64(len(batches)) {
		t.Fatalf("recovered_batches metric = %d, want %d", got, len(batches))
	}
}

// TestRecoverEmptyWALDir: enabling the WAL on a fresh directory is a plain
// cold start that still acknowledges durably from the first batch.
func TestRecoverEmptyWALDir(t *testing.T) {
	dir := t.TempDir()
	g := testGraph(t)
	s := newTestServer(t, g, Options{WALDir: dir})
	if rec := s.Recovery(); rec != (RecoveryStats{}) {
		t.Fatalf("fresh WAL dir recovered state: %+v", rec)
	}
	if s.Snapshot().Generation != 1 {
		t.Fatalf("generation = %d, want 1", s.Snapshot().Generation)
	}
	muts := testBatches()[0]
	if err := s.SubmitMutations(muts); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(ctxShort(t)); err != nil {
		t.Fatal(err)
	}
	requireModelEqual(t, s.Snapshot().Model, icspm.Mine(Rebuild(g, muts)))
	if got := s.Metrics().WALAppends; got != 1 {
		t.Fatalf("wal_appends = %d, want 1", got)
	}
}

// TestCheckpointRestartIsWarm: with PersistDir but no WAL, Close commits a
// checkpoint (graph + blobs + MANIFEST) and a restart over it promotes at
// the committed generation with a fully warm cache — no replay, no misses.
func TestCheckpointRestartIsWarm(t *testing.T) {
	dir := t.TempDir()
	g := testGraph(t)
	muts := testBatches()[0]
	s1, err := NewServer(g, Options{PersistDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.SubmitMutations(muts); err != nil {
		t.Fatal(err)
	}
	if err := s1.Flush(ctxShort(t)); err != nil {
		t.Fatal(err)
	}
	gen := s1.Snapshot().Generation
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	warm, err := shardcache.Open(0, dir)
	if err != nil {
		t.Fatal(err)
	}
	s2 := newTestServer(t, nil, Options{PersistDir: dir, Cache: warm})
	rec := s2.Recovery()
	if !rec.Checkpoint || rec.CheckpointGeneration != gen || rec.CheckpointDamaged || rec.ModelMismatch {
		t.Fatalf("checkpoint recovery stats: %+v (want clean checkpoint at generation %d)", rec, gen)
	}
	snap := s2.Snapshot()
	if snap.Generation != gen {
		t.Fatalf("promoted at generation %d, want the checkpointed %d", snap.Generation, gen)
	}
	requireModelEqual(t, snap.Model, icspm.Mine(Rebuild(g, muts)))
	if m := snap.Model; m.CacheMisses != 0 || m.CacheHits == 0 {
		t.Fatalf("checkpoint promote mined cold: hits=%d misses=%d", m.CacheHits, m.CacheMisses)
	}
}

// TestManifestModelChecksumMismatch: a MANIFEST whose model commitment does
// not match what the recovered cache mines means the blobs are stale or
// tampered. Recovery must quarantine every blob, re-mine cold, and still
// come up serving the correct model.
func TestManifestModelChecksumMismatch(t *testing.T) {
	dir := t.TempDir()
	g := testGraph(t)
	s1, err := NewServer(g, Options{PersistDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	// Tamper with the manifest's model commitment only: graph and blobs
	// still verify, so recovery reaches the model check and must trip there.
	manPath := filepath.Join(dir, shardcache.ManifestName)
	raw, err := os.ReadFile(manPath)
	if err != nil {
		t.Fatal(err)
	}
	var man shardcache.Manifest
	if err := json.Unmarshal(raw, &man); err != nil {
		t.Fatal(err)
	}
	man.ModelSHA256 = strings.Repeat("0", 64)
	tampered, err := json.Marshal(&man)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(manPath, tampered, 0o644); err != nil {
		t.Fatal(err)
	}

	warm, err := shardcache.Open(0, dir)
	if err != nil {
		t.Fatal(err)
	}
	s2 := newTestServer(t, g, Options{PersistDir: dir, Cache: warm})
	rec := s2.Recovery()
	if !rec.ModelMismatch {
		t.Fatalf("tampered model commitment not detected: %+v", rec)
	}
	if rec.QuarantinedBlobs == 0 {
		t.Fatal("mismatch must quarantine the cache blobs")
	}
	requireModelEqual(t, s2.Snapshot().Model, icspm.Mine(g))
	if got := s2.Metrics().ChecksumMismatches; got == 0 {
		t.Fatal("checksum_mismatches metric not incremented")
	}
	quarantined, err := filepath.Glob(filepath.Join(dir, "*"+shardcache.QuarantineSuffix))
	if err != nil || len(quarantined) == 0 {
		t.Fatalf("no quarantined blob files on disk (%v, err=%v)", quarantined, err)
	}
}

// TestDamagedCheckpointGraphDegrades: a checkpoint whose graph bytes no
// longer hash to the manifest commitment is distrusted wholesale — recovery
// quarantines the blobs and rebuilds from the base graph instead of parsing
// unverified bytes.
func TestDamagedCheckpointGraphDegrades(t *testing.T) {
	dir := t.TempDir()
	g := testGraph(t)
	s1, err := NewServer(g, Options{PersistDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	gpath := filepath.Join(dir, checkpointGraphName)
	data, err := os.ReadFile(gpath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(gpath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := newTestServer(t, g, Options{PersistDir: dir})
	rec := s2.Recovery()
	if !rec.CheckpointDamaged || rec.QuarantinedBlobs == 0 {
		t.Fatalf("damaged checkpoint stats: %+v (want CheckpointDamaged + quarantined blobs)", rec)
	}
	requireModelEqual(t, s2.Snapshot().Model, icspm.Mine(g))

	// Without a base graph there is nothing to degrade to: hard error.
	if _, err := NewServer(nil, Options{PersistDir: dir, Standby: true}); err == nil {
		t.Fatal("damaged checkpoint with no base graph must fail, not serve garbage")
	}
}

// TestStandby pins both halves of the warm-spare contract: refusal to come
// up with no durable state, and promotion — graphless — from a checkpoint.
func TestStandby(t *testing.T) {
	g := testGraph(t)
	if _, err := NewServer(g, Options{Standby: true}); err == nil {
		t.Fatal("Standby without WALDir or PersistDir must fail validation")
	}
	if _, err := NewServer(g, Options{Standby: true, PersistDir: t.TempDir()}); err == nil {
		t.Fatal("standby over an empty persist dir cold-started")
	}
	if _, err := NewServer(nil, Options{Standby: true, WALDir: t.TempDir()}); err == nil {
		t.Fatal("graphless standby over an empty WAL dir cold-started")
	}

	// Promote from a checkpoint with no graph argument at all.
	dir := t.TempDir()
	muts := testBatches()[0]
	s1, err := NewServer(g, Options{PersistDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.SubmitMutations(muts); err != nil {
		t.Fatal(err)
	}
	if err := s1.Flush(ctxShort(t)); err != nil {
		t.Fatal(err)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := newTestServer(t, nil, Options{PersistDir: dir, Standby: true})
	if !s2.Recovery().Checkpoint {
		t.Fatal("standby promote did not report the checkpoint")
	}
	requireModelEqual(t, s2.Snapshot().Model, icspm.Mine(Rebuild(g, muts)))

	// Promote from a WAL alone (the base graph supplied, batches replayed).
	wdir := t.TempDir()
	s3, err := NewServer(g, Options{WALDir: wdir})
	if err != nil {
		t.Fatal(err)
	}
	if err := s3.SubmitMutations(muts); err != nil {
		t.Fatal(err)
	}
	// Abandoned, not closed: the standby takes over from the log.
	s4 := newTestServer(t, g, Options{WALDir: wdir, Standby: true})
	if s4.Recovery().ReplayedBatches != 1 {
		t.Fatalf("WAL standby replayed %d batches, want 1", s4.Recovery().ReplayedBatches)
	}
	requireModelEqual(t, s4.Snapshot().Model, icspm.Mine(Rebuild(g, muts)))
}

// TestWALUnavailable503: when the WAL cannot make a batch durable the batch
// is refused — SubmitMutations wraps ErrUnavailable and the HTTP surface
// maps it to 503 (retry against a recovered server), never 400.
func TestWALUnavailable503(t *testing.T) {
	g := testGraph(t)
	// Crash the filesystem on the very first mutating operation: the first
	// append cannot create its segment, so durability is gone from the start.
	d := crashfs.New(crashfs.Config{CrashAtOp: 1})
	s := newTestServer(t, g, Options{WALDir: "/wal", WALFS: d})
	err := s.SubmitMutations(testBatches()[0])
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("submit over a crashed WAL = %v, want ErrUnavailable", err)
	}
	body, _ := json.Marshal(MutationsRequest{Mutations: testBatches()[0]})
	req := httptest.NewRequest("POST", "/v1/mutations", bytes.NewReader(body))
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("POST /v1/mutations over a crashed WAL = %d, want 503", w.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("503 unavailable envelope without a Retry-After header")
	}
	if got := s.Metrics(); got.WALAppendErrors == 0 {
		t.Fatal("wal_append_errors not incremented")
	}
	// The served snapshot is untouched: unavailability never corrupts reads.
	requireModelEqual(t, s.Snapshot().Model, icspm.Mine(g))
}

// TestCheckpointCompactsWAL: once a re-mine's checkpoint commits, the WAL
// segments holding the folded batches are garbage and must be compacted; a
// restart then promotes from the checkpoint with nothing to replay.
func TestCheckpointCompactsWAL(t *testing.T) {
	wdir, pdir := t.TempDir(), t.TempDir()
	g := testGraph(t)
	batches := testBatches()
	// 1-byte segments: every batch gets its own segment, so compaction is
	// observable as a shrinking file count.
	s1, err := NewServer(g, Options{WALDir: wdir, PersistDir: pdir, WALSegmentBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range batches {
		if err := s1.SubmitMutations(b); err != nil {
			t.Fatal(err)
		}
		if err := s1.Flush(ctxShort(t)); err != nil {
			t.Fatal(err)
		}
	}
	if n := s1.wl.Segments(); n != 1 {
		t.Fatalf("after checkpointed flushes the WAL spans %d segments, want 1 (active only)", n)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	warm, err := shardcache.Open(0, pdir)
	if err != nil {
		t.Fatal(err)
	}
	s2 := newTestServer(t, g, Options{WALDir: wdir, PersistDir: pdir, WALSegmentBytes: 1, Cache: warm})
	rec := s2.Recovery()
	if !rec.Checkpoint || rec.ReplayedBatches != 0 {
		t.Fatalf("restart over checkpoint+compacted WAL: %+v (want checkpoint, 0 replayed)", rec)
	}
	requireModelEqual(t, s2.Snapshot().Model, icspm.Mine(Rebuild(g, flatten(batches, len(batches)))))
	// And the durable ack sequence resumes where the dead server left off.
	if err := s2.SubmitMutations(batches[0]); err != nil {
		t.Fatal(err)
	}
}

// TestCrashMatrix is the recovery-equivalence suite the WAL exists for: the
// serving workload runs on a fault-injecting filesystem that kills the
// process at EVERY mutating filesystem operation (optionally tearing the
// final write), and after each crash a restarted server must recover a model
// bit-identical to mining some prefix of the submitted batches that includes
// every acknowledged one — then keep serving new writes correctly.
func TestCrashMatrix(t *testing.T) {
	g := testGraph(t)
	batches := testBatches()
	sums := prefixChecksums(t, g, batches)
	const walDir = "/wal"
	// Tiny segments force a rotation per batch, so crash points cover
	// segment creation and directory syncs, not just record writes.
	opts := func(fs *crashfs.Dir) Options {
		return Options{WALDir: walDir, WALFS: fs, WALSegmentBytes: 64}
	}
	// workload acknowledges batches in order until the crash bites; the
	// return is how many were DURABLY acknowledged (submit returned nil).
	workload := func(t *testing.T, d *crashfs.Dir) int {
		s, err := NewServer(g, opts(d))
		if err != nil {
			t.Fatalf("NewServer on a clean crashfs: %v", err)
		}
		acked := 0
		for _, b := range batches {
			if err := s.SubmitMutations(b); err != nil {
				break
			}
			acked++
		}
		s.Close() // the real process just died; Close only reaps the goroutine
		return acked
	}

	// Dry run: count the workload's mutating filesystem operations.
	dry := crashfs.New(crashfs.Config{})
	if got := workload(t, dry); got != len(batches) {
		t.Fatalf("fault-free workload acked %d/%d batches", got, len(batches))
	}
	total := dry.Ops()
	if total == 0 {
		t.Fatal("workload performed no mutating filesystem operations")
	}

	extra := []Mutation{{Op: OpAddAttr, U: 7, Value: "kdd"}}
	for _, torn := range []int{0, 3, 1 << 20} {
		for k := 1; k <= total; k++ {
			d := crashfs.New(crashfs.Config{CrashAtOp: k, TornBytes: torn})
			acked := workload(t, d)
			if !d.Crashed() {
				t.Fatalf("torn=%d: crash at op %d/%d never fired", torn, k, total)
			}

			s2, err := NewServer(g, opts(d.Recover()))
			if err != nil {
				t.Fatalf("torn=%d crash@%d: recovery failed: %v", torn, k, err)
			}
			r := s2.Recovery().ReplayedBatches
			// No acknowledged batch may be lost; at most the one in-flight
			// batch may additionally have become durable before the crash
			// (a torn write that flushed the entire record).
			if r < acked || r > acked+1 || r > len(batches) {
				s2.Close()
				t.Fatalf("torn=%d crash@%d: recovered %d batches, acked %d", torn, k, r, acked)
			}
			if got := modelChecksum(s2.Snapshot().Model); got != sums[r] {
				s2.Close()
				t.Fatalf("torn=%d crash@%d: recovered model is not Mine(prefix %d)", torn, k, r)
			}
			// Recovery is not just a read-only salvage: the server must keep
			// acknowledging and folding new batches on the recovered log.
			if err := s2.SubmitMutations(extra); err != nil {
				s2.Close()
				t.Fatalf("torn=%d crash@%d: recovered server refused writes: %v", torn, k, err)
			}
			if err := s2.Flush(ctxShort(t)); err != nil {
				s2.Close()
				t.Fatalf("torn=%d crash@%d: flush on recovered server: %v", torn, k, err)
			}
			want := icspm.Mine(Rebuild(g, append(flatten(batches, r), extra...)))
			if got := modelChecksum(s2.Snapshot().Model); got != modelChecksum(want) {
				s2.Close()
				t.Fatalf("torn=%d crash@%d: post-recovery mutation diverged from offline mine", torn, k)
			}
			s2.Close()
		}
	}
}

// checkpointAttempts counts completed checkpoint attempts, committed or
// failed — the signal the checkpointed crash matrix uses to know that the
// asynchronous checkpoint-then-compact following a publish has finished.
func checkpointAttempts(s *Server) uint64 {
	m := s.Metrics()
	return m.Checkpoints + m.PersistErrors
}

// reap simulates process death: it stops the re-mine loop without Close's
// graceful-shutdown work (final re-mine, checkpoint, WAL close). A crashed
// process does not get to write a fresh checkpoint on its way down.
func reap(s *Server) {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	close(s.quit)
	<-s.done
}

// TestCrashMatrixCheckpointed runs the crash matrix over the FULL durability
// pipeline — WAL append, publish, checkpoint commit, WAL compaction — with
// the WAL filesystem killed at every mutating operation (the checkpoint
// directory is a real filesystem, as in production). The crash points
// between a checkpoint's commit and its segment compaction are the
// interesting ones: the folded batches then exist in BOTH the checkpoint
// and the log, and recovery must fold them exactly once — which the
// workload's vertex batches make checkable by model commitment.
func TestCrashMatrixCheckpointed(t *testing.T) {
	g := testGraph(t)
	batches := testBatches()
	sums := prefixChecksums(t, g, batches)
	const walDir = "/wal"
	opts := func(fs *crashfs.Dir, pdir string) Options {
		return Options{WALDir: walDir, WALFS: fs, WALSegmentBytes: 64, PersistDir: pdir}
	}
	// workload acknowledges batches in order, waiting out each publish's
	// checkpoint+compact so the filesystem operation sequence is
	// deterministic; the return is how many batches were durably acked.
	workload := func(t *testing.T, d *crashfs.Dir, pdir string) int {
		s, err := NewServer(g, opts(d, pdir))
		if err != nil {
			return 0 // crashed inside the startup checkpoint
		}
		acked := 0
		for _, b := range batches {
			before := checkpointAttempts(s)
			if err := s.SubmitMutations(b); err != nil {
				break
			}
			acked++
			if err := s.Flush(ctxShort(t)); err != nil {
				break
			}
			// A flushed publish always attempts a checkpoint (success or
			// persist error), so this settles even after the crash fired.
			for checkpointAttempts(s) == before {
				runtime.Gosched()
			}
		}
		reap(s)
		return acked
	}

	// Dry run: count the workload's mutating WAL filesystem operations.
	dry := crashfs.New(crashfs.Config{})
	if got := workload(t, dry, t.TempDir()); got != len(batches) {
		t.Fatalf("fault-free workload acked %d/%d batches", got, len(batches))
	}
	total := dry.Ops()
	if total == 0 {
		t.Fatal("workload performed no mutating WAL operations")
	}

	extra := []Mutation{{Op: OpAddAttr, U: 0, Value: "kdd"}}
	for _, torn := range []int{0, 3, 1 << 20} {
		for k := 1; k <= total; k++ {
			pdir := t.TempDir()
			d := crashfs.New(crashfs.Config{CrashAtOp: k, TornBytes: torn})
			acked := workload(t, d, pdir)
			if !d.Crashed() {
				t.Fatalf("torn=%d: crash at op %d/%d never fired", torn, k, total)
			}

			s2, err := NewServer(g, opts(d.Recover(), pdir))
			if err != nil {
				t.Fatalf("torn=%d crash@%d: recovery failed: %v", torn, k, err)
			}
			// The recovered model must be Mine of SOME batch prefix that
			// includes every acknowledged batch — never a double-fold (which
			// the vertex batches would surface as a prefix-less commitment).
			got := modelChecksum(s2.Snapshot().Model)
			j := -1
			for idx, sum := range sums {
				if sum == got {
					j = idx
					break
				}
			}
			if j < acked {
				s2.Close()
				t.Fatalf("torn=%d crash@%d: recovered model matches batch prefix %d, acked %d",
					torn, k, j, acked)
			}
			// Recovery must keep serving writes on the recovered log+checkpoint.
			if err := s2.SubmitMutations(extra); err != nil {
				s2.Close()
				t.Fatalf("torn=%d crash@%d: recovered server refused writes: %v", torn, k, err)
			}
			if err := s2.Flush(ctxShort(t)); err != nil {
				s2.Close()
				t.Fatalf("torn=%d crash@%d: flush on recovered server: %v", torn, k, err)
			}
			want := icspm.Mine(Rebuild(g, append(flatten(batches, j), extra...)))
			if modelChecksum(s2.Snapshot().Model) != modelChecksum(want) {
				s2.Close()
				t.Fatalf("torn=%d crash@%d: post-recovery mutation diverged from offline mine", torn, k)
			}
			s2.Close()
		}
	}
}

// TestCheckpointGraphRoundtripDeterministic pins the property the model
// verification depends on: a graph serialised to checkpoint bytes, parsed
// back, and re-interned in the recorded vocabulary order mines a model with
// the exact same commitment as the original. If this drifted, every clean
// restart would false-positive as a checksum mismatch and re-mine cold.
func TestCheckpointGraphRoundtripDeterministic(t *testing.T) {
	g := testGraph(t)
	gb, err := graphBytes(g)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := graph.Load(bytes.NewReader(gb))
	if err != nil {
		t.Fatal(err)
	}
	g2 = reintern(g2, g.Vocab().Names())
	a, b := icspm.Mine(g), icspm.Mine(g2)
	if modelChecksum(a) != modelChecksum(b) {
		t.Fatal("checkpoint graph roundtrip changed the model commitment")
	}
	requireModelEqual(t, a, b)
}
