package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	icspm "cspm/internal/cspm"
	"cspm/internal/graph"
	"cspm/internal/shardrpc"
	"cspm/internal/wal"
	"cspm/internal/wal/crashfs"
)

// testGraphB is a second reference graph, disjoint in vocabulary from
// testGraph, so cross-tenant contamination of any kind (vocab interning,
// cache keys, WAL replay) would show up as a model diff.
func testGraphB(t testing.TB) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(6)
	addAttr := func(v graph.VertexID, vals ...string) {
		for _, val := range vals {
			if err := b.AddAttr(v, val); err != nil {
				t.Fatal(err)
			}
		}
	}
	addEdge := func(u, v graph.VertexID) {
		if err := b.AddEdge(u, v); err != nil {
			t.Fatal(err)
		}
	}
	addAttr(0, "gpu")
	addAttr(1, "gpu", "cuda")
	addAttr(2, "cuda")
	addAttr(3, "gpu")
	addAttr(4, "cuda", "rocm")
	addAttr(5, "rocm")
	addEdge(0, 1)
	addEdge(1, 2)
	addEdge(2, 3)
	addEdge(3, 4)
	addEdge(4, 5)
	addEdge(0, 3)
	return b.Build()
}

func newTestHost(t *testing.T, opts HostOptions) *Host {
	t.Helper()
	h, err := NewHost(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { h.Close() })
	return h
}

func startHostHTTP(t *testing.T, h *Host) *httptest.Server {
	t.Helper()
	hs := httptest.NewServer(h)
	t.Cleanup(hs.Close)
	return hs
}

func TestHostRegistryLifecycle(t *testing.T) {
	h := newTestHost(t, HostOptions{MaxNamespaces: 2})

	if _, err := h.Create("alpha", testGraph(t), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Create("alpha", testGraphB(t), nil); !errors.Is(err, ErrNamespaceExists) {
		t.Fatalf("duplicate create = %v, want ErrNamespaceExists", err)
	}
	if _, err := h.Create("Bad Name", nil, nil); err == nil {
		t.Fatal("create accepted an invalid namespace name")
	}
	if _, err := h.Create("beta", testGraphB(t), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Create("gamma", nil, nil); !errors.Is(err, ErrNamespaceLimit) {
		t.Fatalf("create past the cap = %v, want ErrNamespaceLimit", err)
	}

	infos := h.Namespaces()
	if len(infos) != 2 || infos[0].Name != "alpha" || infos[1].Name != "beta" {
		t.Fatalf("Namespaces() = %+v, want sorted [alpha beta]", infos)
	}
	if infos[0].Generation != 1 || infos[0].Vertices != 8 {
		t.Fatalf("alpha info = %+v, want generation 1, 8 vertices", infos[0])
	}

	if _, err := h.Delete("gamma"); !errors.Is(err, ErrNamespaceNotFound) {
		t.Fatalf("delete unknown = %v, want ErrNamespaceNotFound", err)
	}
	if _, err := h.Delete("beta"); err != nil {
		t.Fatal(err)
	}
	if _, ok := h.Tenant("beta"); ok {
		t.Fatal("deleted namespace still resolves")
	}
	// The cap counts live tenants: deleting freed a slot.
	if _, err := h.Create("gamma", nil, nil); err != nil {
		t.Fatalf("create after delete = %v, want slot freed", err)
	}

	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Create("delta", nil, nil); !errors.Is(err, ErrHostClosed) {
		t.Fatalf("create after Close = %v, want ErrHostClosed", err)
	}
}

// TestHostTwoTenantIsolation is the acceptance invariant: two namespaces
// mutated concurrently through the HTTP surface publish models
// bit-identical to mining each tenant's mutated reference graph offline —
// tenancy adds routing, never model drift — with fully disjoint on-disk
// trees.
func TestHostTwoTenantIsolation(t *testing.T) {
	root := t.TempDir()
	h := newTestHost(t, HostOptions{RootDir: root})
	gA, gB := testGraph(t), testGraphB(t)
	if _, err := h.Create("alpha", gA, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Create("beta", gB, nil); err != nil {
		t.Fatal(err)
	}
	hs := startHostHTTP(t, h)

	mutsA := []Mutation{
		{Op: OpAddEdge, U: 0, V: 3},
		{Op: OpAddAttr, U: 2, Value: "smoker"},
		{Op: OpDelEdge, U: 4, V: 6},
	}
	mutsB := []Mutation{
		{Op: OpAddAttr, U: 5, Value: "cuda"},
		{Op: OpDelAttr, U: 1, Value: "gpu"},
		{Op: OpAddEdge, U: 1, V: 5},
	}
	done := make(chan error, 2)
	submit := func(ns string, muts []Mutation) {
		var ack MutationsResponse
		resp := postJSON(t, hs.URL+"/v2/graphs/"+ns+"/mutations", MutationsRequest{Mutations: muts}, &ack)
		if resp.StatusCode != http.StatusAccepted {
			done <- fmt.Errorf("%s mutations status %d", ns, resp.StatusCode)
			return
		}
		done <- nil
	}
	go submit("alpha", mutsA)
	go submit("beta", mutsB)
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}

	ctx := ctxShort(t)
	sA, _ := h.Tenant("alpha")
	sB, _ := h.Tenant("beta")
	if err := sA.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if err := sB.Flush(ctx); err != nil {
		t.Fatal(err)
	}

	// Bit-identical to each tenant's single-tenant baseline.
	requireModelEqual(t, sA.Snapshot().Model, icspm.Mine(Rebuild(gA, mutsA)))
	requireModelEqual(t, sB.Snapshot().Model, icspm.Mine(Rebuild(gB, mutsB)))

	// Disjoint durable trees, one per namespace.
	for _, ns := range []string{"alpha", "beta"} {
		lay := wal.Layout{Root: root}
		for _, dir := range []string{lay.WALDir(ns), lay.CheckpointDir(ns)} {
			if fi, err := os.Stat(dir); err != nil || !fi.IsDir() {
				t.Errorf("namespace %s missing durable dir %s: %v", ns, dir, err)
			}
		}
	}

	// The directory entries report what each tenant is actually serving.
	var list NamespacesResponse
	getJSON(t, hs.URL+"/v2/graphs", &list)
	if len(list.Namespaces) != 2 {
		t.Fatalf("list = %+v, want 2 namespaces", list.Namespaces)
	}
	for _, info := range list.Namespaces {
		s, _ := h.Tenant(info.Name)
		snap := s.Snapshot()
		if info.ModelSHA256 != snap.ModelSHA256 || info.Generation != snap.Generation {
			t.Errorf("%s directory entry %+v diverges from served snapshot gen %d %s",
				info.Name, info, snap.Generation, snap.ModelSHA256)
		}
	}
}

// TestHostWedgedWALIsolatesTenant: a tenant whose WAL cannot make batches
// durable 503s ITS mutations only — its queries and every other tenant's
// full surface stay healthy.
func TestHostWedgedWALIsolatesTenant(t *testing.T) {
	h := newTestHost(t, HostOptions{})
	if _, err := h.Create("good", testGraph(t), nil); err != nil {
		t.Fatal(err)
	}
	// Every fsync fails from the first one: the WAL wedges on the first
	// append and the tenant refuses all mutations from then on.
	if _, err := h.Create("bad", testGraphB(t), &Options{WALFS: crashfs.New(crashfs.Config{FailSyncAt: 1})}); err != nil {
		t.Fatal(err)
	}
	hs := startHostHTTP(t, h)

	body, err := json.Marshal(MutationsRequest{Mutations: []Mutation{{Op: OpAddAttr, U: 0, Value: "x"}}})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(hs.URL+"/v2/graphs/bad/mutations", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var env ErrorJSON
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable || env.Code != CodeUnavailable {
		t.Fatalf("wedged tenant mutation = %d %+v, want 503 %s", resp.StatusCode, env, CodeUnavailable)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 unavailable envelope without a Retry-After header")
	}

	// The wedged tenant still answers queries from its last good snapshot.
	var pats PatternsResponse
	if resp := getJSON(t, hs.URL+"/v2/graphs/bad/patterns", &pats); resp.StatusCode != http.StatusOK {
		t.Fatalf("wedged tenant query status %d, want 200", resp.StatusCode)
	}
	if pats.Generation != 1 {
		t.Fatalf("wedged tenant serves generation %d, want 1", pats.Generation)
	}

	// The healthy tenant accepts and folds mutations as if nothing happened.
	var ack MutationsResponse
	if resp := postJSON(t, hs.URL+"/v2/graphs/good/mutations",
		MutationsRequest{Mutations: []Mutation{{Op: OpAddEdge, U: 0, V: 3}}}, &ack); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("healthy tenant mutation status %d, want 202", resp.StatusCode)
	}
	sGood, _ := h.Tenant("good")
	if err := sGood.Flush(ctxShort(t)); err != nil {
		t.Fatal(err)
	}
	if gen := sGood.Snapshot().Generation; gen < 2 {
		t.Fatalf("healthy tenant stuck at generation %d", gen)
	}
}

// gatedTransport blocks every Submit while a gate channel is installed —
// from the serving side this is a re-mine that takes arbitrarily long, which
// is exactly what the shared budget must contain.
type gatedTransport struct {
	inner shardrpc.Transport
	gate  atomic.Pointer[chan struct{}]
}

func (g *gatedTransport) Submit(job shardrpc.Job) error {
	if ch := g.gate.Load(); ch != nil {
		<-*ch
	}
	return g.inner.Submit(job)
}
func (g *gatedTransport) Results() <-chan shardrpc.Result { return g.inner.Results() }
func (g *gatedTransport) Close() error                    { return g.inner.Close() }

// TestHostSharedBudgetScheduling pins the scheduling contract with budget 1:
// a long re-mine in tenant A delays tenant B's re-mine (B keeps serving its
// old snapshot) but never blocks B's queries, and B's re-mine runs to
// completion once A's finishes.
func TestHostSharedBudgetScheduling(t *testing.T) {
	gt := &gatedTransport{inner: shardrpc.NewLoopback(icspm.ExecuteShardJob, 2)}
	defer gt.Close()
	h := newTestHost(t, HostOptions{MineBudget: 1})
	gA, gB := testGraph(t), testGraphB(t)
	// Gate open during creates: the initial mines draw from the budget too.
	sA, err := h.Create("alpha", gA, &Options{Transport: gt})
	if err != nil {
		t.Fatal(err)
	}
	sB, err := h.Create("beta", gB, nil)
	if err != nil {
		t.Fatal(err)
	}
	hs := startHostHTTP(t, h)

	// Close the gate and wedge tenant A mid-re-mine, holding the only slot.
	gate := make(chan struct{})
	gt.gate.Store(&gate)
	mutsA := []Mutation{{Op: OpAddEdge, U: 0, V: 3}}
	if err := sA.SubmitMutations(mutsA); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for h.Budget().InUse() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("tenant A never took the budget slot")
		}
		time.Sleep(time.Millisecond)
	}

	// Queries to B are never gated.
	var pats PatternsResponse
	if resp := getJSON(t, hs.URL+"/v2/graphs/beta/patterns", &pats); resp.StatusCode != http.StatusOK {
		t.Fatalf("query while budget exhausted: status %d", resp.StatusCode)
	}

	// B's re-mine queues behind the budget: the mutation is acknowledged but
	// the fold cannot start while A holds the slot.
	mutsB := []Mutation{{Op: OpAddAttr, U: 5, Value: "cuda"}}
	if err := sB.SubmitMutations(mutsB); err != nil {
		t.Fatal(err)
	}
	time.Sleep(150 * time.Millisecond)
	if gen := sB.Snapshot().Generation; gen != 1 {
		t.Fatalf("tenant B folded at generation %d while A held the only budget slot", gen)
	}
	if got := h.Budget().InUse(); got != 1 {
		t.Fatalf("budget in use = %d, want 1 (A mid-re-mine)", got)
	}

	// Release A: both re-mines complete, in budget order, to the exact
	// single-tenant models.
	close(gate)
	gt.gate.Store(nil)
	ctx := ctxShort(t)
	if err := sA.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if err := sB.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	requireModelEqual(t, sA.Snapshot().Model, icspm.Mine(Rebuild(gA, mutsA)))
	requireModelEqual(t, sB.Snapshot().Model, icspm.Mine(Rebuild(gB, mutsB)))
}

// TestHostRecoveryScan: a restarted host restores EVERY namespace from the
// root dir — same generation, same model commitment — promotes them
// standby-style (no cold re-mine of clean state), and quarantines a tree
// with no durable state instead of serving garbage or dying.
func TestHostRecoveryScan(t *testing.T) {
	root := t.TempDir()
	gA, gB := testGraph(t), testGraphB(t)
	mutsA := []Mutation{{Op: OpAddEdge, U: 0, V: 3}, {Op: OpAddAttr, U: 2, Value: "smoker"}}

	h1 := newTestHost(t, HostOptions{RootDir: root})
	sA, err := h1.Create("alpha", gA, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h1.Create("beta", gB, nil); err != nil {
		t.Fatal(err)
	}
	if err := sA.SubmitMutations(mutsA); err != nil {
		t.Fatal(err)
	}
	if err := sA.Flush(ctxShort(t)); err != nil {
		t.Fatal(err)
	}
	wantA := sA.Snapshot()
	sB, _ := h1.Tenant("beta")
	wantB := sB.Snapshot()
	if err := h1.Close(); err != nil {
		t.Fatal(err)
	}

	// A namespace directory with nothing durable in it — a create that died
	// before its first checkpoint — must be quarantined, not promoted.
	if err := os.MkdirAll(filepath.Join(root, "stillborn"), 0o755); err != nil {
		t.Fatal(err)
	}

	h2 := newTestHost(t, HostOptions{RootDir: root, Standby: true})
	infos := h2.Namespaces()
	if len(infos) != 2 {
		t.Fatalf("recovered %d namespaces (%+v), want 2", len(infos), infos)
	}
	rA, ok := h2.Tenant("alpha")
	if !ok {
		t.Fatal("alpha not recovered")
	}
	if got := rA.Snapshot(); got.Generation != wantA.Generation || got.ModelSHA256 != wantA.ModelSHA256 {
		t.Fatalf("alpha recovered gen %d sha %s, want gen %d sha %s",
			got.Generation, got.ModelSHA256, wantA.Generation, wantA.ModelSHA256)
	}
	requireModelEqual(t, rA.Snapshot().Model, icspm.Mine(Rebuild(gA, mutsA)))
	rB, ok := h2.Tenant("beta")
	if !ok {
		t.Fatal("beta not recovered")
	}
	if got := rB.Snapshot(); got.ModelSHA256 != wantB.ModelSHA256 {
		t.Fatalf("beta recovered sha %s, want %s", got.ModelSHA256, wantB.ModelSHA256)
	}
	if _, ok := h2.Tenant("stillborn"); ok {
		t.Fatal("a namespace with no durable state was promoted")
	}
	if _, err := os.Stat(filepath.Join(root, wal.QuarantineDir, "stillborn.1")); err != nil {
		t.Fatalf("stillborn tree was not quarantined: %v", err)
	}
	if err := h2.Close(); err != nil {
		t.Fatal(err)
	}

	// Standby over an empty root refuses to come up.
	if _, err := NewHost(HostOptions{RootDir: t.TempDir(), Standby: true}); !errors.Is(err, ErrNoDurableState) {
		t.Fatalf("standby over empty root = %v, want ErrNoDurableState", err)
	}
}

// TestHostDeleteQuarantines: deleting a namespace renames its subtree under
// .quarantine (acked WAL data is never unlinked) and frees the name for a
// fresh create that starts from the new graph, not the old state.
func TestHostDeleteQuarantines(t *testing.T) {
	root := t.TempDir()
	h := newTestHost(t, HostOptions{RootDir: root})
	sA, err := h.Create("alpha", testGraph(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := sA.SubmitMutations([]Mutation{{Op: OpAddEdge, U: 0, V: 3}}); err != nil {
		t.Fatal(err)
	}
	if err := sA.Flush(ctxShort(t)); err != nil {
		t.Fatal(err)
	}
	dst, err := h.Delete("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if want := filepath.Join(root, wal.QuarantineDir, "alpha.1"); dst != want {
		t.Fatalf("quarantined to %s, want %s", dst, want)
	}
	if fi, err := os.Stat(dst); err != nil || !fi.IsDir() {
		t.Fatalf("quarantine dir missing: %v", err)
	}
	if _, err := os.Stat(filepath.Join(root, "alpha")); !os.IsNotExist(err) {
		t.Fatalf("namespace dir still present after delete: %v", err)
	}

	// Recreating the name starts fresh: generation 1, the new graph's model.
	gB := testGraphB(t)
	s2, err := h.Create("alpha", gB, nil)
	if err != nil {
		t.Fatal(err)
	}
	snap := s2.Snapshot()
	if snap.Generation != 1 {
		t.Fatalf("recreated namespace at generation %d, want 1", snap.Generation)
	}
	requireModelEqual(t, snap.Model, icspm.Mine(gB))
}

// TestHostRoutesGolden pins the full route inventory: any added, renamed or
// re-methoded route diffs against the committed file and must be a
// deliberate commit. Regenerate with
// UPDATE_WIRE_GOLDEN=1 go test ./internal/serve -run HostRoutesGolden.
func TestHostRoutesGolden(t *testing.T) {
	h := newTestHost(t, HostOptions{})
	got := strings.Join(h.Routes(), "\n") + "\n"
	const path = "testdata/routes_v2.golden"
	if os.Getenv("UPDATE_WIRE_GOLDEN") != "" {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", path)
	}
	committed, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read fixture: %v (regenerate with UPDATE_WIRE_GOLDEN=1)", err)
	}
	if got != string(committed) {
		t.Errorf("route inventory diverged from %s:\n got:\n%s\nwant:\n%s", path, got, committed)
	}
}

// TestV1AliasServesDefaultByteForByte: the deprecated flat /v1 surface on a
// host answers byte-identically to a pre-tenancy single-tenant server over
// the same graph — plus the Deprecation/Link headers steering clients to
// v2 — so a v1 client observes zero change beyond the headers.
func TestV1AliasServesDefaultByteForByte(t *testing.T) {
	g := testGraph(t)
	standalone := newTestServer(t, g, Options{})
	legacy := startHTTP(t, standalone)

	h := newTestHost(t, HostOptions{})
	if _, err := h.Create(DefaultNamespace, g, nil); err != nil {
		t.Fatal(err)
	}
	hs := startHostHTTP(t, h)

	fetch := func(base, path string) ([]byte, http.Header) {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return body, resp.Header
	}
	paths := []string{
		"/v1/patterns?limit=1000",
		"/v1/patterns?limit=2&offset=1",
		"/v1/model",
		"/v1/watch", // generation 0 resolves immediately with current state
	}
	for _, p := range paths {
		wantBody, _ := fetch(legacy.URL, p)
		gotBody, hdr := fetch(hs.URL, p)
		if !bytes.Equal(gotBody, wantBody) {
			t.Errorf("GET %s over the alias diverged:\n got: %s\nwant: %s", p, gotBody, wantBody)
		}
		if hdr.Get("Deprecation") != "true" {
			t.Errorf("GET %s over the alias: no Deprecation header", p)
		}
		// RFC 8594: the Sunset date must parse as an HTTP date and agree with
		// the pinned retirement instant.
		if sunset := hdr.Get("Sunset"); sunset != v1AliasSunset {
			t.Errorf("GET %s over the alias: Sunset = %q, want %q", p, sunset, v1AliasSunset)
		} else if _, err := http.ParseTime(sunset); err != nil {
			t.Errorf("GET %s over the alias: Sunset %q is not an HTTP date: %v", p, sunset, err)
		}
		if link := hdr.Get("Link"); !strings.Contains(link, "/v2/graphs/default") ||
			!strings.Contains(link, `rel="successor-version"`) {
			t.Errorf("GET %s over the alias: Link = %q, want a /v2/graphs/default successor-version", p, link)
		}
		// The same route under /v2 serves the same bytes (no headers).
		v2Body, v2hdr := fetch(hs.URL, "/v2/graphs/default"+strings.TrimPrefix(p, "/v1"))
		if !bytes.Equal(v2Body, wantBody) {
			t.Errorf("GET %s under /v2 diverged from the single-tenant bytes", p)
		}
		if v2hdr.Get("Deprecation") != "" {
			t.Errorf("/v2 route carries a Deprecation header")
		}
		if v2hdr.Get("Sunset") != "" {
			t.Errorf("/v2 route carries a Sunset header")
		}
	}
}

// TestV1AliasGoldenFixtures pins the alias against the committed v1 wire
// fixtures: the alias's responses must decode into the SAME wire structs
// the fixtures pin and re-encode through the handlers' encoder to the same
// shape, so the alias cannot drift from what v1 clients were built against.
func TestV1AliasGoldenFixtures(t *testing.T) {
	h := newTestHost(t, HostOptions{})
	if _, err := h.Create(DefaultNamespace, testGraph(t), nil); err != nil {
		t.Fatal(err)
	}
	hs := startHostHTTP(t, h)

	// patterns_v1.json: the fixture's field set and order is what the alias
	// must emit. Decode the live response losslessly (DisallowUnknownFields
	// both ways catches added or dropped fields).
	var live PatternsResponse
	resp, err := http.Get(hs.URL + "/v1/patterns")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&live); err != nil {
		t.Fatalf("alias /v1/patterns carries fields outside the v1 contract: %v", err)
	}
	var reenc bytes.Buffer
	if err := json.NewEncoder(&reenc).Encode(live); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reenc.Bytes(), raw) {
		t.Errorf("alias /v1/patterns is not a canonical PatternsResponse encoding:\n got: %s\nre-encoded: %s", raw, reenc.Bytes())
	}

	// And the committed fixture still decodes under the same struct the
	// alias serves — the live surface and the fixture share one contract.
	fixture, err := os.ReadFile("testdata/patterns_v1.json")
	if err != nil {
		t.Fatal(err)
	}
	var fromFixture PatternsResponse
	fdec := json.NewDecoder(bytes.NewReader(fixture))
	fdec.DisallowUnknownFields()
	if err := fdec.Decode(&fromFixture); err != nil {
		t.Fatalf("committed v1 patterns fixture no longer matches the alias's wire struct: %v", err)
	}

	var watch WatchResponse
	if resp := getJSON(t, hs.URL+"/v1/watch", &watch); resp.StatusCode != http.StatusOK {
		t.Fatalf("alias watch status %d", resp.StatusCode)
	}
	wfix, err := os.ReadFile("testdata/watch_v1.json")
	if err != nil {
		t.Fatal(err)
	}
	var fromWatchFixture WatchResponse
	wdec := json.NewDecoder(bytes.NewReader(wfix))
	wdec.DisallowUnknownFields()
	if err := wdec.Decode(&fromWatchFixture); err != nil {
		t.Fatalf("committed v1 watch fixture no longer matches the alias's wire struct: %v", err)
	}
	if watch.Generation != 1 || watch.ModelSHA256 == "" {
		t.Fatalf("alias watch = %+v, want generation 1 with a model commitment", watch)
	}
}

// TestHostErrorEnvelopes table-tests every 4xx/5xx the host surface can
// produce: each must carry the unified envelope with its stable code.
func TestHostErrorEnvelopes(t *testing.T) {
	h := newTestHost(t, HostOptions{MaxNamespaces: 2})
	if _, err := h.Create("alpha", testGraph(t), nil); err != nil {
		t.Fatal(err)
	}
	hs := startHostHTTP(t, h)

	req := func(method, path, body string) *http.Response {
		t.Helper()
		var rd io.Reader
		if body != "" {
			rd = strings.NewReader(body)
		}
		r, err := http.NewRequest(method, hs.URL+path, rd)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(r)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	cases := []struct {
		name       string
		method     string
		path       string
		body       string
		wantStatus int
		wantCode   string
		wantAllow  bool
	}{
		{"unknown path", "GET", "/v2/nope", "", http.StatusNotFound, CodeNotFound, false},
		{"unknown namespace query", "GET", "/v2/graphs/ghost/patterns", "", http.StatusNotFound, CodeNamespaceNotFound, false},
		{"unknown namespace info", "GET", "/v2/graphs/ghost", "", http.StatusNotFound, CodeNamespaceNotFound, false},
		{"unknown namespace delete", "DELETE", "/v2/graphs/ghost", "", http.StatusNotFound, CodeNamespaceNotFound, false},
		{"invalid namespace name", "POST", "/v2/graphs/UPPER", "", http.StatusBadRequest, CodeBadRequest, false},
		{"unparseable graph upload", "POST", "/v2/graphs/fresh", "not a graph", http.StatusBadRequest, CodeBadRequest, false},
		{"duplicate namespace", "POST", "/v2/graphs/alpha", "", http.StatusConflict, CodeNamespaceExists, false},
		{"method miss on admin", "PUT", "/v2/graphs/alpha", "", http.StatusMethodNotAllowed, CodeMethodNotAllowed, true},
		{"method miss on tenant route", "POST", "/v2/graphs/alpha/patterns", "", http.StatusMethodNotAllowed, CodeMethodNotAllowed, true},
		{"method miss on v1 alias", "POST", "/v1/patterns", "", http.StatusMethodNotAllowed, CodeMethodNotAllowed, true},
		{"bad query param", "GET", "/v2/graphs/alpha/patterns?offset=-1", "", http.StatusBadRequest, CodeBadRequest, false},
		{"bad limit", "GET", "/v2/graphs/alpha/patterns?limit=9999", "", http.StatusBadRequest, CodeBadRequest, false},
		{"bad mutation body", "POST", "/v2/graphs/alpha/mutations", "{", http.StatusBadRequest, CodeBadRequest, false},
		{"invalid mutation", "POST", "/v2/graphs/alpha/mutations",
			`{"mutations":[{"op":"add_edge","u":0,"v":999}]}`, http.StatusBadRequest, CodeBadRequest, false},
		{"bad complete body", "POST", "/v2/graphs/alpha/complete", `{"vertices":[]}`, http.StatusBadRequest, CodeBadRequest, false},
		{"bad watch generation", "GET", "/v2/graphs/alpha/watch?timeout_ms=-5", "", http.StatusBadRequest, CodeBadRequest, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := req(tc.method, tc.path, tc.body)
			defer resp.Body.Close()
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status %d, want %d", resp.StatusCode, tc.wantStatus)
			}
			var env ErrorJSON
			if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
				t.Fatalf("response is not the unified envelope: %v", err)
			}
			if env.Code != tc.wantCode {
				t.Errorf("code %q, want %q", env.Code, tc.wantCode)
			}
			if env.Error == "" {
				t.Error("envelope has an empty error message")
			}
			if tc.wantAllow && resp.Header.Get("Allow") == "" {
				t.Error("405 without an Allow header")
			}
		})
	}

	// Namespace cap → 429 with its own code.
	if _, err := h.Create("beta", nil, nil); err != nil {
		t.Fatal(err)
	}
	resp := req("POST", "/v2/graphs/gamma", "")
	defer resp.Body.Close()
	var env ErrorJSON
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusTooManyRequests || env.Code != CodeNamespaceLimit {
		t.Fatalf("create past cap = %d %+v, want 429 %s", resp.StatusCode, env, CodeNamespaceLimit)
	}

	// The v1 alias with no default tenant: namespace_not_found, because the
	// alias resolves to the default namespace.
	h2 := newTestHost(t, HostOptions{})
	hs2 := startHostHTTP(t, h2)
	resp2, err := http.Get(hs2.URL + "/v1/patterns")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var env2 ErrorJSON
	if err := json.NewDecoder(resp2.Body).Decode(&env2); err != nil {
		t.Fatal(err)
	}
	if resp2.StatusCode != http.StatusNotFound || env2.Code != CodeNamespaceNotFound {
		t.Fatalf("alias without default = %d %+v, want 404 %s", resp2.StatusCode, env2, CodeNamespaceNotFound)
	}

	// Create against a closed host: 503 unavailable, and — like every 503
	// envelope — with a Retry-After hint.
	if err := h2.Close(); err != nil {
		t.Fatal(err)
	}
	resp3 := func() *http.Response {
		r, err := http.Post(hs2.URL+"/v2/graphs/late", "text/plain", nil)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}()
	defer resp3.Body.Close()
	var env3 ErrorJSON
	if err := json.NewDecoder(resp3.Body).Decode(&env3); err != nil {
		t.Fatal(err)
	}
	if resp3.StatusCode != http.StatusServiceUnavailable || env3.Code != CodeUnavailable {
		t.Fatalf("create on a closed host = %d %+v, want 503 %s", resp3.StatusCode, env3, CodeUnavailable)
	}
	if resp3.Header.Get("Retry-After") == "" {
		t.Fatal("503 unavailable envelope without a Retry-After header")
	}
}

// TestHostCreateViaHTTP exercises the admin surface end to end: upload a
// graph in the text format, get a 201 directory entry naming generation 1,
// query it, delete it.
func TestHostCreateViaHTTP(t *testing.T) {
	h := newTestHost(t, HostOptions{RootDir: t.TempDir()})
	hs := startHostHTTP(t, h)

	var buf bytes.Buffer
	if err := graph.Write(&buf, testGraph(t)); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(hs.URL+"/v2/graphs/uploaded", "text/plain", bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var info NamespaceInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status %d, want 201", resp.StatusCode)
	}
	if info.Name != "uploaded" || info.Generation != 1 || info.Vertices != 8 {
		t.Fatalf("created info = %+v, want uploaded/gen 1/8 vertices", info)
	}
	s, _ := h.Tenant("uploaded")
	requireModelEqual(t, s.Snapshot().Model, icspm.Mine(testGraph(t)))

	// Empty body → empty graph, still a live, queryable namespace.
	resp2, err := http.Post(hs.URL+"/v2/graphs/empty", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusCreated {
		t.Fatalf("empty create status %d, want 201", resp2.StatusCode)
	}
	var m ModelResponse
	if r := getJSON(t, hs.URL+"/v2/graphs/empty/model", &m); r.StatusCode != http.StatusOK {
		t.Fatalf("empty namespace model status %d", r.StatusCode)
	}
	if m.Vertices != 0 {
		t.Fatalf("empty namespace has %d vertices", m.Vertices)
	}

	var del DeleteNamespaceResponse
	reqDel, _ := http.NewRequest(http.MethodDelete, hs.URL+"/v2/graphs/uploaded", nil)
	respDel, err := http.DefaultClient.Do(reqDel)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(respDel.Body).Decode(&del); err != nil {
		t.Fatal(err)
	}
	respDel.Body.Close()
	if respDel.StatusCode != http.StatusOK || del.QuarantinedTo == "" {
		t.Fatalf("delete = %d %+v, want 200 with a quarantine path", respDel.StatusCode, del)
	}
}

// TestQuarantineDeleteRestartRecreateDelete: the quarantine destination is
// probed on DISK, not derived from in-memory state — so a namespace deleted,
// re-created after a host restart (which forgets the first quarantine), and
// deleted again lands in a fresh <ns>.<n> slot instead of colliding with the
// first tree's rename target.
func TestQuarantineDeleteRestartRecreateDelete(t *testing.T) {
	root := t.TempDir()
	h := newTestHost(t, HostOptions{RootDir: root})
	if _, err := h.Create("cycle", testGraph(t), nil); err != nil {
		t.Fatal(err)
	}
	dst1, err := h.Delete("cycle")
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: the fresh host has no memory of dst1; only the disk does.
	h2 := newTestHost(t, HostOptions{RootDir: root})
	if _, err := h2.Create("cycle", testGraphB(t), nil); err != nil {
		t.Fatalf("re-create after restart: %v", err)
	}
	dst2, err := h2.Delete("cycle")
	if err != nil {
		t.Fatalf("second delete collided with the restart-forgotten quarantine: %v", err)
	}
	if dst2 == dst1 {
		t.Fatalf("both deletes quarantined to %s — the second clobbered the first", dst1)
	}
	// A third cycle on the same (unrestarted) host also finds a free slot.
	if _, err := h2.Create("cycle", nil, nil); err != nil {
		t.Fatal(err)
	}
	dst3, err := h2.Delete("cycle")
	if err != nil {
		t.Fatal(err)
	}
	// All three trees are intact: quarantine never unlinks, never overwrites.
	for _, dst := range []string{dst1, dst2, dst3} {
		fi, err := os.Stat(dst)
		if err != nil || !fi.IsDir() {
			t.Fatalf("quarantined tree %s missing after later cycles: %v", dst, err)
		}
	}
	// The first two cycles had durable WALs; their quarantined trees must
	// still hold them (the whole point of quarantine over unlink).
	for _, dst := range []string{dst1, dst2} {
		if _, err := os.Stat(filepath.Join(dst, "wal")); err != nil {
			t.Fatalf("quarantined tree %s lost its WAL subtree: %v", dst, err)
		}
	}
}
