package serve

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
)

// ErrorJSON is the single error envelope EVERY endpoint (v1 and v2, handler
// rejections and router misses alike) returns for a 4xx/5xx: a
// human-readable message plus a stable machine code, so clients branch on
// Code and log Error. Field order is part of the wire contract.
type ErrorJSON struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

// Stable error codes of the ErrorJSON envelope.
const (
	// CodeBadRequest rejects malformed parameters, bodies, or mutations (400).
	CodeBadRequest = "bad_request"
	// CodeNotFound marks a path no route matches (404).
	CodeNotFound = "not_found"
	// CodeNamespaceNotFound marks a route whose {ns} names no live tenant (404).
	CodeNamespaceNotFound = "namespace_not_found"
	// CodeMethodNotAllowed marks a known path hit with the wrong method (405).
	CodeMethodNotAllowed = "method_not_allowed"
	// CodeNamespaceExists rejects creating a namespace that is already live (409).
	CodeNamespaceExists = "namespace_exists"
	// CodeNamespaceLimit rejects a create past the host's tenant cap (429).
	CodeNamespaceLimit = "namespace_limit"
	// CodeUnavailable marks a well-formed request the durability layer could
	// not honour — a wedged WAL, a closed server (503). Retry later.
	CodeUnavailable = "unavailable"
	// CodeInternal marks a server-side failure applying a valid request (500).
	CodeInternal = "internal"
	// CodeNotLeader rejects a mutation sent to a replica (409). The message
	// names the leader URL so the client can redirect the write.
	CodeNotLeader = "not_leader"
	// CodeNotFollower rejects a promote sent to a tenant that is not
	// following a leader (409).
	CodeNotFollower = "not_follower"
	// CodeNotReplicable rejects a replication pull from a server without
	// durable state to ship — no checkpoint dir, or still mid-startup (409).
	CodeNotReplicable = "not_replicable"
	// CodeTraceNotFound marks a /debug/trace/{seq} whose batch was never
	// submitted here or has been evicted from the bounded trace ring (404).
	CodeTraceNotFound = "trace_not_found"
)

// unavailableRetryAfter is the Retry-After hint on every 503 envelope: long
// enough for a standby promotion or WAL recovery to land, short enough that
// polling clients converge quickly once the server is back.
const unavailableRetryAfter = "5"

// writeUnavailable emits the 503 envelope with the Retry-After header the
// status demands (RFC 9110 §10.2.3): a 503 is by definition temporary, so
// every one of them tells the client when to come back.
func writeUnavailable(w http.ResponseWriter, format string, args ...any) {
	w.Header().Set("Retry-After", unavailableRetryAfter)
	writeError(w, http.StatusServiceUnavailable, CodeUnavailable, format, args...)
}

// writeError emits the unified error envelope.
func writeError(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeJSON(w, status, ErrorJSON{Error: fmt.Sprintf(format, args...), Code: code})
}

// registrar accumulates a mux's routes so (a) every path gets a method-miss
// fallback answering 405 with the envelope and an Allow header instead of
// net/http's plain text, (b) unmatched paths get an envelope 404, and (c)
// the full method+pattern inventory is dumpable for the golden route test.
type registrar struct {
	mux    *http.ServeMux
	routes []string
	allow  map[string][]string // path -> methods registered on it
}

func newRegistrar() *registrar {
	return &registrar{mux: http.NewServeMux(), allow: make(map[string][]string)}
}

// handle registers pattern ("METHOD /path") and records it in the
// inventory.
func (rg *registrar) handle(pattern string, h http.HandlerFunc) {
	method, path, ok := strings.Cut(pattern, " ")
	if !ok {
		panic(fmt.Sprintf("serve: route %q must spell METHOD /path", pattern))
	}
	rg.mux.HandleFunc(pattern, h)
	rg.routes = append(rg.routes, pattern)
	rg.allow[path] = append(rg.allow[path], method)
}

// finish installs the envelope fallbacks: one method-less handler per known
// path (405 + Allow) and the catch-all 404. Call once, after every handle.
func (rg *registrar) finish() *http.ServeMux {
	for path, methods := range rg.allow {
		sort.Strings(methods)
		allow := strings.Join(methods, ", ")
		rg.mux.HandleFunc(path, func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Allow", allow)
			writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed,
				"method %s not allowed (allow: %s)", r.Method, allow)
		})
	}
	rg.mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, http.StatusNotFound, CodeNotFound, "no route for %s", r.URL.Path)
	})
	sort.Strings(rg.routes)
	return rg.mux
}
