package serve

import "sync/atomic"

// Budget is the shared re-mine worker budget of a multi-tenant host: a
// counting semaphore every tenant's mining passes acquire a slot from, so a
// mutation storm in one namespace queues behind the budget instead of
// starving every other tenant's re-mine loop of CPU. Queries never touch
// the budget — reads come off the published snapshot — so a tenant whose
// re-mine is waiting keeps serving its last good generation at full speed.
//
// A nil *Budget (or one built with slots <= 0) is unbounded: every acquire
// succeeds immediately. That makes the zero Options behave exactly as the
// single-tenant server always has.
type Budget struct {
	sem chan struct{}

	// Utilization counters for host metrics: without them the shared
	// semaphore is invisible and a starved tenant can't be diagnosed.
	acquired atomic.Uint64 // lifetime successful acquisitions
	waiting  atomic.Int64  // goroutines currently blocked in acquire
}

// BudgetStats is a point-in-time view of the budget for monitoring.
type BudgetStats struct {
	Slots        int    // capacity (0 = unbounded)
	InUse        int    // slots currently held
	Waiters      int    // mining passes blocked waiting for a slot
	Acquisitions uint64 // lifetime successful acquisitions
}

// Stats snapshots the budget's utilization. Values are independently
// loaded, so the snapshot is approximate under concurrency — fine for
// monitoring.
func (b *Budget) Stats() BudgetStats {
	if b == nil {
		return BudgetStats{}
	}
	st := BudgetStats{
		Slots:        b.Slots(),
		InUse:        b.InUse(),
		Acquisitions: b.acquired.Load(),
	}
	if w := b.waiting.Load(); w > 0 {
		st.Waiters = int(w)
	}
	return st
}

// NewBudget returns a budget of the given number of concurrent re-mine
// slots. slots <= 0 returns an unbounded budget.
func NewBudget(slots int) *Budget {
	if slots <= 0 {
		return &Budget{}
	}
	return &Budget{sem: make(chan struct{}, slots)}
}

// InUse reports how many slots are currently held (0 for an unbounded
// budget). Monitoring only; the value is stale the moment it returns.
func (b *Budget) InUse() int {
	if b == nil || b.sem == nil {
		return 0
	}
	return len(b.sem)
}

// Slots reports the budget's capacity (0 = unbounded).
func (b *Budget) Slots() int {
	if b == nil || b.sem == nil {
		return 0
	}
	return cap(b.sem)
}

// acquire blocks until a slot is free. Every acquire must be paired with a
// release; holders never acquire a second slot, so the budget cannot
// deadlock — the longest wait is the sum of the other tenants' in-flight
// mining passes.
func (b *Budget) acquire() {
	if b == nil {
		return
	}
	if b.sem == nil {
		b.acquired.Add(1)
		return
	}
	b.waiting.Add(1)
	b.sem <- struct{}{}
	b.waiting.Add(-1)
	b.acquired.Add(1)
}

// release frees the slot taken by acquire.
func (b *Budget) release() {
	if b == nil || b.sem == nil {
		return
	}
	<-b.sem
}
