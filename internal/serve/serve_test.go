package serve

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	icspm "cspm/internal/cspm"
	"cspm/internal/graph"
	"cspm/internal/shardcache"
	"cspm/internal/shardrpc"
)

// testGraph builds a small two-island graph, so edge edits inside one
// island leave the other island's shard-cache entry warm.
func testGraph(t testing.TB) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(8)
	addAttr := func(v graph.VertexID, vals ...string) {
		for _, val := range vals {
			if err := b.AddAttr(v, val); err != nil {
				t.Fatal(err)
			}
		}
	}
	addEdge := func(u, v graph.VertexID) {
		if err := b.AddEdge(u, v); err != nil {
			t.Fatal(err)
		}
	}
	// Island 1: vertices 0-3.
	addAttr(0, "smoker")
	addAttr(1, "smoker", "cancer")
	addAttr(2, "cancer")
	addAttr(3, "smoker")
	addEdge(0, 1)
	addEdge(1, 2)
	addEdge(2, 3)
	addEdge(0, 2)
	// Island 2: vertices 4-7.
	addAttr(4, "icde")
	addAttr(5, "icde", "sigmod")
	addAttr(6, "sigmod")
	addAttr(7, "icde")
	addEdge(4, 5)
	addEdge(5, 6)
	addEdge(6, 7)
	addEdge(4, 6)
	return b.Build()
}

func newTestServer(t *testing.T, g *graph.Graph, opts Options) *Server {
	t.Helper()
	s, err := NewServer(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// ctxShort is a generous bound for waits that should complete quickly.
func ctxShort(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	t.Cleanup(cancel)
	return ctx
}

// requireModelEqual asserts that the served model is bit-identical to want
// in everything the merge contract pins: patterns and canonical DLs.
func requireModelEqual(t *testing.T, got, want *icspm.Model) {
	t.Helper()
	if got.BaselineDL != want.BaselineDL {
		t.Errorf("BaselineDL = %v, want %v", got.BaselineDL, want.BaselineDL)
	}
	if got.FinalDL != want.FinalDL {
		t.Errorf("FinalDL = %v, want %v", got.FinalDL, want.FinalDL)
	}
	if got.CondEntropy != want.CondEntropy {
		t.Errorf("CondEntropy = %v, want %v", got.CondEntropy, want.CondEntropy)
	}
	if !reflect.DeepEqual(got.Patterns, want.Patterns) {
		t.Errorf("patterns diverge: got %d, want %d", len(got.Patterns), len(want.Patterns))
	}
}

func TestServerInitialSnapshotMatchesMine(t *testing.T) {
	g := testGraph(t)
	s := newTestServer(t, g, Options{})
	snap := s.Snapshot()
	if snap.Generation != 1 {
		t.Fatalf("initial generation = %d, want 1", snap.Generation)
	}
	requireModelEqual(t, snap.Model, icspm.Mine(g))
	if snap.Scorer == nil {
		t.Fatal("initial snapshot has no scorer")
	}
}

func TestRebuildAppliesEveryOp(t *testing.T) {
	g := testGraph(t)
	muts := []Mutation{
		{Op: OpAddAttr, U: 0, Value: "cancer"},
		{Op: OpDelAttr, U: 1, Value: "smoker"},
		{Op: OpAddEdge, U: 0, V: 3},
		{Op: OpDelEdge, U: 1, V: 2},
		{Op: OpAddAttr, U: 4, Value: "vldb"}, // brand-new value
		{Op: OpDelAttr, U: 2, Value: "never-seen"},
	}
	g2 := Rebuild(g, muts)
	if !g2.HasAttr(0, mustID(t, g2, "cancer")) {
		t.Error("add_attr did not attach cancer to vertex 0")
	}
	if g2.HasAttr(1, mustID(t, g2, "smoker")) {
		t.Error("del_attr did not detach smoker from vertex 1")
	}
	if !g2.HasEdge(0, 3) {
		t.Error("add_edge did not insert {0,3}")
	}
	if g2.HasEdge(1, 2) {
		t.Error("del_edge did not remove {1,2}")
	}
	if !g2.HasAttr(4, mustID(t, g2, "vldb")) {
		t.Error("add_attr did not attach the new value vldb")
	}
	if _, ok := g2.Vocab().Lookup("never-seen"); ok {
		t.Error("del_attr of a never-seen value interned it")
	}
	// Interning order: the old vocabulary must be a prefix of the new one,
	// so cached line stats (which store interned ids) stay id-stable.
	oldNames := g.Vocab().Names()
	newNames := g2.Vocab().Names()
	if len(newNames) < len(oldNames) {
		t.Fatalf("new vocab has %d names, old had %d", len(newNames), len(oldNames))
	}
	for i, name := range oldNames {
		if newNames[i] != name {
			t.Fatalf("vocab id %d renamed %q -> %q; cache replay would corrupt", i, name, newNames[i])
		}
	}
}

func TestRebuildWithoutMutationsIsIdentical(t *testing.T) {
	g := testGraph(t)
	g2 := Rebuild(g, nil)
	var a, b strings.Builder
	if err := graph.Write(&a, g); err != nil {
		t.Fatal(err)
	}
	if err := graph.Write(&b, g2); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("Rebuild with no mutations changed the graph's canonical serialization")
	}
}

func TestSubmitMutationsValidation(t *testing.T) {
	s := newTestServer(t, testGraph(t), Options{})
	cases := []struct {
		name string
		muts []Mutation
	}{
		{"empty batch", nil},
		{"unknown op", []Mutation{{Op: "rename", U: 0, Value: "x"}}},
		{"attr out of range", []Mutation{{Op: OpAddAttr, U: 99, Value: "x"}}},
		{"attr without value", []Mutation{{Op: OpAddAttr, U: 0}}},
		{"attr with second vertex", []Mutation{{Op: OpDelAttr, U: 0, V: 1, Value: "x"}}},
		{"edge out of range", []Mutation{{Op: OpAddEdge, U: 0, V: 99}}},
		{"self loop", []Mutation{{Op: OpAddEdge, U: 2, V: 2}}},
		{"edge with value", []Mutation{{Op: OpDelEdge, U: 0, V: 1, Value: "x"}}},
		{"valid then invalid rejects whole batch", []Mutation{
			{Op: OpAddAttr, U: 0, Value: "x"},
			{Op: OpAddEdge, U: 5, V: 5},
		}},
	}
	for _, tc := range cases {
		if err := s.SubmitMutations(tc.muts); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	if n := s.PendingMutations(); n != 0 {
		t.Fatalf("rejected batches left %d pending mutations", n)
	}
}

// TestMutateFlushEquivalence is the end-to-end exactness pin: after every
// flush the served model must be bit-identical to Mine on the mutated
// graph, and edits confined to one island must replay the other island
// from cache.
func TestMutateFlushEquivalence(t *testing.T) {
	g := testGraph(t)
	s := newTestServer(t, g, Options{})
	ctx := ctxShort(t)

	batches := [][]Mutation{
		{{Op: OpAddEdge, U: 0, V: 3}, {Op: OpAddAttr, U: 3, Value: "cancer"}},
		{{Op: OpDelEdge, U: 0, V: 1}},
		{{Op: OpAddAttr, U: 6, Value: "icde"}, {Op: OpDelAttr, U: 7, Value: "icde"}},
	}
	want := g
	for i, batch := range batches {
		if err := s.SubmitMutations(batch); err != nil {
			t.Fatal(err)
		}
		if err := s.Flush(ctx); err != nil {
			t.Fatal(err)
		}
		want = Rebuild(want, batch)
		snap := s.Snapshot()
		if snap.Generation != uint64(2+i) {
			t.Fatalf("after batch %d: generation = %d, want %d", i, snap.Generation, 2+i)
		}
		requireModelEqual(t, snap.Model, icspm.Mine(want))
	}
	if n := s.PendingMutations(); n != 0 {
		t.Fatalf("flushed server reports %d pending mutations", n)
	}

	// Batch 2 touched only island 1's edges (no attribute-frequency change),
	// so island 2's entry must have replayed from cache at least once.
	if hits := s.Cache().Stats().Hits; hits == 0 {
		t.Error("no cache hits across island-local edits; incremental re-mine is not incremental")
	}
}

func TestDebounceCoalescesBatches(t *testing.T) {
	s := newTestServer(t, testGraph(t), Options{Debounce: 300 * time.Millisecond})
	ctx := ctxShort(t)
	if err := s.SubmitMutations([]Mutation{{Op: OpAddEdge, U: 0, V: 3}}); err != nil {
		t.Fatal(err)
	}
	if err := s.SubmitMutations([]Mutation{{Op: OpAddAttr, U: 3, Value: "cancer"}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if gen := s.Snapshot().Generation; gen != 2 {
		t.Errorf("generation = %d, want 2 (both batches in one re-mine)", gen)
	}
	if m := s.Metrics(); m.Remines != 1 {
		t.Errorf("remines = %d, want 1 (debounce window should coalesce)", m.Remines)
	}
}

// flakyTransport delegates to a loopback worker pool but rejects every
// submit while failing is set — the serving-side view of a dead fleet.
type flakyTransport struct {
	inner   shardrpc.Transport
	failing atomic.Bool
}

func (f *flakyTransport) Submit(job shardrpc.Job) error {
	if f.failing.Load() {
		return errors.New("flaky: fleet unreachable")
	}
	return f.inner.Submit(job)
}
func (f *flakyTransport) Results() <-chan shardrpc.Result { return f.inner.Results() }
func (f *flakyTransport) Close() error                    { return f.inner.Close() }

// TestFailedRemineKeepsLastGood pins the fallback-to-last-good-model rule: a
// re-mine that cannot complete leaves the previous snapshot serving and the
// batch queued, and a later healthy re-mine folds it in exactly.
func TestFailedRemineKeepsLastGood(t *testing.T) {
	g := testGraph(t)
	ft := &flakyTransport{inner: shardrpc.NewLoopback(icspm.ExecuteShardJob, 2)}
	s := newTestServer(t, g, Options{Transport: ft, RemoteNoFallback: true})
	ctx := ctxShort(t)

	ft.failing.Store(true)
	muts := []Mutation{{Op: OpAddEdge, U: 0, V: 3}}
	if err := s.SubmitMutations(muts); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(ctx); err == nil {
		t.Fatal("flush succeeded through a dead fleet with fallback disabled")
	}
	snap := s.Snapshot()
	if snap.Generation != 1 {
		t.Fatalf("failed re-mine advanced generation to %d", snap.Generation)
	}
	requireModelEqual(t, snap.Model, icspm.Mine(g))
	if n := s.PendingMutations(); n != len(muts) {
		t.Fatalf("failed batch left %d pending, want %d (re-queued for retry)", n, len(muts))
	}
	if m := s.Metrics(); m.RemineFailures == 0 {
		t.Error("remine_failures not counted")
	}

	ft.failing.Store(false)
	if err := s.Flush(ctx); err != nil {
		t.Fatalf("flush after heal: %v", err)
	}
	snap = s.Snapshot()
	if snap.Generation != 2 {
		t.Fatalf("healed re-mine published generation %d, want 2", snap.Generation)
	}
	requireModelEqual(t, snap.Model, icspm.Mine(Rebuild(g, muts)))
}

// TestPersistOnClose pins the shutdown contract: a memory-only cache with
// PersistDir set flushes its entries on Close, and a server restarted over
// a disk cache on that directory warm-starts with zero misses.
func TestPersistOnClose(t *testing.T) {
	dir := t.TempDir()
	g := testGraph(t)
	s, err := NewServer(g, Options{PersistDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	muts := []Mutation{{Op: OpAddEdge, U: 0, V: 3}}
	if err := s.SubmitMutations(muts); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(ctxShort(t)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	warm, err := shardcache.Open(0, dir)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewServer(Rebuild(g, muts), Options{Cache: warm})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	m := s2.Snapshot().Model
	if m.CacheMisses != 0 || m.CacheHits == 0 {
		t.Fatalf("restarted server mined cold: hits=%d misses=%d (persist or warm start broken)",
			m.CacheHits, m.CacheMisses)
	}
}

func TestCloseIsIdempotent(t *testing.T) {
	s, err := NewServer(testGraph(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestAwaitGenerationHonorsContext(t *testing.T) {
	s := newTestServer(t, testGraph(t), Options{})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := s.AwaitGeneration(ctx, 99); err == nil {
		t.Fatal("AwaitGeneration returned before an unreachable generation")
	}
}

func TestOptionsValidate(t *testing.T) {
	cases := []struct {
		name string
		opts Options
	}{
		{"edgecut strategy", Options{Mining: icspm.Options{ShardStrategy: icspm.ShardEdgeCut}}},
		{"negative retries", Options{RemoteRetries: -1}},
		{"negative timeout", Options{RemoteTimeout: -time.Second}},
		{"negative debounce", Options{Debounce: -time.Second}},
		{"invalid mining options", Options{Mining: icspm.Options{Workers: -1}}},
	}
	for _, tc := range cases {
		if err := tc.opts.Validate(); err == nil {
			t.Errorf("%s: validated", tc.name)
		}
		if _, err := NewServer(testGraph(t), tc.opts); err == nil {
			t.Errorf("%s: NewServer accepted", tc.name)
		}
	}
}

func mustID(t *testing.T, g *graph.Graph, name string) graph.AttrID {
	t.Helper()
	id, ok := g.Vocab().Lookup(name)
	if !ok {
		t.Fatalf("value %q not interned", name)
	}
	return id
}

// TestCloseUnblocksWaiters pins the shutdown liveness contract: Flush and
// AwaitGeneration waiters must return (with an error) when the server
// closes, not hang on a notify channel nobody will ever broadcast.
func TestCloseUnblocksWaiters(t *testing.T) {
	ft := &flakyTransport{inner: shardrpc.NewLoopback(icspm.ExecuteShardJob, 2)}
	s, err := NewServer(testGraph(t), Options{Transport: ft, RemoteNoFallback: true, RetryBackoff: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	ft.failing.Store(true)
	if err := s.SubmitMutations([]Mutation{{Op: OpAddEdge, U: 0, V: 3}}); err != nil {
		t.Fatal(err)
	}
	// Wait for the failed attempt so both waiters block on notify, not on
	// a condition that is about to flip.
	if err := s.Flush(ctxShort(t)); err == nil {
		t.Fatal("flush succeeded through a dead fleet")
	}
	errs := make(chan error, 2)
	go func() { errs <- s.AwaitGeneration(context.Background(), 99) }()
	go func() { errs <- s.Flush(context.Background()) }()
	time.Sleep(10 * time.Millisecond) // let both reach their select
	// Close's final drain also fails through the dead fleet; it must say
	// so rather than silently discarding the acknowledged batch.
	if err := s.Close(); err == nil || !strings.Contains(err.Error(), "not mined at shutdown") {
		t.Fatalf("Close() = %v, want an unmined-mutations error", err)
	}
	for i := 0; i < 2; i++ {
		select {
		case err := <-errs:
			if err == nil {
				t.Error("waiter returned nil from a closed server that never served its target")
			}
		case <-time.After(10 * time.Second):
			t.Fatal("waiter still blocked after Close")
		}
	}
}

// TestFailedRemineAutoRetries pins the stranded-mutation fix: after the
// fleet heals, the backoff retry must fold the re-queued batch in WITHOUT
// any further SubmitMutations/Flush nudge.
func TestFailedRemineAutoRetries(t *testing.T) {
	g := testGraph(t)
	ft := &flakyTransport{inner: shardrpc.NewLoopback(icspm.ExecuteShardJob, 2)}
	s := newTestServer(t, g, Options{Transport: ft, RemoteNoFallback: true, RetryBackoff: 20 * time.Millisecond})
	ctx := ctxShort(t)

	ft.failing.Store(true)
	muts := []Mutation{{Op: OpAddEdge, U: 0, V: 3}}
	if err := s.SubmitMutations(muts); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(ctx); err == nil {
		t.Fatal("flush succeeded through a dead fleet")
	}
	ft.failing.Store(false)
	// No nudge: only the retry backoff can publish generation 2.
	if err := s.AwaitGeneration(ctx, 2); err != nil {
		t.Fatalf("backoff retry never published: %v", err)
	}
	requireModelEqual(t, s.Snapshot().Model, icspm.Mine(Rebuild(g, muts)))
	if n := s.PendingMutations(); n != 0 {
		t.Fatalf("auto-retried server reports %d pending mutations", n)
	}
}

// TestCloseDrainsPendingMutations pins the graceful-shutdown contract for
// the mutation log: a batch acknowledged but not yet re-mined when Close
// runs (parked behind a long debounce here) is folded in by one final
// re-mine, never silently discarded — and nothing is accepted afterwards.
func TestCloseDrainsPendingMutations(t *testing.T) {
	g := testGraph(t)
	s, err := NewServer(g, Options{Debounce: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	muts := []Mutation{{Op: OpAddEdge, U: 0, V: 3}}
	if err := s.SubmitMutations(muts); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot()
	if snap.Generation != 2 {
		t.Fatalf("shutdown discarded an acknowledged batch: generation = %d, want 2", snap.Generation)
	}
	requireModelEqual(t, snap.Model, icspm.Mine(Rebuild(g, muts)))
	if n := s.PendingMutations(); n != 0 {
		t.Fatalf("%d mutations pending after the shutdown drain", n)
	}
	if err := s.SubmitMutations(muts); err == nil {
		t.Fatal("closed server accepted a mutation batch")
	}
}
