package gnn

import (
	"math"
	"math/rand"

	"cspm/internal/completion"
	"cspm/internal/graph"
	"cspm/internal/tensor"
)

// gatModel is a two-layer graph attention network [13] with single-head
// additive attention. The per-edge attention softmax is implemented as a
// fused custom autograd primitive over the edge list (gatAggregate), keeping
// memory linear in |E| instead of densifying the n×n attention matrix.
type gatModel struct{ cfg Config }

// NewGAT returns the GAT baseline.
func NewGAT(cfg Config) Model { return &gatModel{cfg: cfg.withDefaults()} }

func (m *gatModel) Name() string { return "GAT" }

const leakySlope = 0.2

// neighborLists precomputes each vertex's neighbour list with a self-loop
// appended (GAT attends over N(i) ∪ {i}).
func neighborLists(g *graph.Graph) [][]int {
	out := make([][]int, g.NumVertices())
	for v := 0; v < g.NumVertices(); v++ {
		nbrs := g.Neighbors(graph.VertexID(v))
		lst := make([]int, 0, len(nbrs)+1)
		for _, u := range nbrs {
			lst = append(lst, int(u))
		}
		lst = append(lst, v)
		out[v] = lst
	}
	return out
}

// gatAggregate computes out_i = Σ_{j∈N(i)} α_ij·z_j with
// α_ij = softmax_j(LeakyReLU(s_i + d_j)) as one fused tape operation.
func gatAggregate(t *tensor.Tape, z, s, d *tensor.Node, nbrs [][]int) *tensor.Node {
	n := z.Value.Rows
	h := z.Value.Cols
	out := tensor.NewMatrix(n, h)
	// Forward: keep α and pre-activations for the backward pass.
	alpha := make([][]float64, n)
	pre := make([][]float64, n)
	for i := 0; i < n; i++ {
		lst := nbrs[i]
		a := make([]float64, len(lst))
		p := make([]float64, len(lst))
		maxE := math.Inf(-1)
		for k, j := range lst {
			e := s.Value.Data[i] + d.Value.Data[j]
			p[k] = e
			if e < 0 {
				e *= leakySlope
			}
			a[k] = e
			if e > maxE {
				maxE = e
			}
		}
		sum := 0.0
		for k := range a {
			a[k] = math.Exp(a[k] - maxE)
			sum += a[k]
		}
		orow := out.Row(i)
		for k, j := range lst {
			a[k] /= sum
			zrow := z.Value.Row(j)
			for c := 0; c < h; c++ {
				orow[c] += a[k] * zrow[c]
			}
		}
		alpha[i] = a
		pre[i] = p
	}
	return t.Custom(out, []*tensor.Node{z, s, d}, func(outNode *tensor.Node) {
		g := outNode.Grad
		for i := 0; i < n; i++ {
			lst := nbrs[i]
			a := alpha[i]
			grow := g.Row(i)
			// u_k = g_i · z_{j_k}; dot = Σ_k α_k u_k.
			u := make([]float64, len(lst))
			dot := 0.0
			for k, j := range lst {
				zrow := z.Value.Row(j)
				for c := 0; c < h; c++ {
					u[k] += grow[c] * zrow[c]
				}
				dot += a[k] * u[k]
			}
			for k, j := range lst {
				// Aggregation path: grad z_j += α·g_i.
				zg := z.Grad.Row(j)
				for c := 0; c < h; c++ {
					zg[c] += a[k] * grow[c]
				}
				// Attention path through softmax and LeakyReLU.
				delta := a[k] * (u[k] - dot)
				if pre[i][k] < 0 {
					delta *= leakySlope
				}
				s.Grad.Data[i] += delta
				d.Grad.Data[j] += delta
			}
		}
	})
}

type gatLayer struct {
	w    *tensor.Parameter
	aSrc *tensor.Parameter
	aDst *tensor.Parameter
}

func newGATLayer(in, out int, rng *rand.Rand) *gatLayer {
	return &gatLayer{
		w:    glorotParam(in, out, rng),
		aSrc: glorotParam(out, 1, rng),
		aDst: glorotParam(out, 1, rng),
	}
}

func (l *gatLayer) apply(t *tensor.Tape, x *tensor.Node, nbrs [][]int) *tensor.Node {
	z := t.MatMul(x, t.Param(l.w))
	s := t.MatMul(z, t.Param(l.aSrc))
	d := t.MatMul(z, t.Param(l.aDst))
	return gatAggregate(t, z, s, d, nbrs)
}

func (m *gatModel) FitPredict(task *completion.Task) *tensor.Matrix {
	cfg := m.cfg
	rng := rand.New(rand.NewSource(cfg.Seed))
	nbrs := neighborLists(task.G)
	l0 := newGATLayer(task.NumAttr, cfg.Hidden, rng)
	l1 := newGATLayer(cfg.Hidden, task.NumAttr, rng)
	opt := tensor.NewAdam(cfg.LR)
	opt.Register(l0.w, l0.aSrc, l0.aDst, l1.w, l1.aSrc, l1.aDst)
	x := task.Masked
	forward := func(t *tensor.Tape, train bool) *tensor.Node {
		h := t.ReLU(l0.apply(t, t.Const(x), nbrs))
		if train {
			h = t.Dropout(h, cfg.Dropout, rng)
		}
		return l1.apply(t, h, nbrs)
	}
	for e := 0; e < cfg.Epochs; e++ {
		t := tensor.NewTape()
		loss := t.MaskedBCE(forward(t, true), task.Attr, task.TrainMask)
		t.Backward(loss)
		opt.Step()
	}
	t := tensor.NewTape()
	return forward(t, false).Value
}
