package gnn

import (
	"math/rand"

	"cspm/internal/completion"
	"cspm/internal/tensor"
)

// satModel is a simplified SAT [8] (structure-attribute transformer): a
// structure encoder (free node embeddings propagated through the normalised
// adjacency) and an attribute encoder are trained to meet in a shared latent
// space — both decode to attributes through the same decoder, and their
// latents are aligned with an MSE term on observed rows. Test nodes, which
// have no attributes, are completed by decoding their structure latent.
type satModel struct{ cfg Config }

// NewSAT returns the (simplified) SAT baseline.
func NewSAT(cfg Config) Model { return &satModel{cfg: cfg.withDefaults()} }

func (m *satModel) Name() string { return "SAT" }

func (m *satModel) FitPredict(task *completion.Task) *tensor.Matrix {
	cfg := m.cfg
	rng := rand.New(rand.NewSource(cfg.Seed))
	adj := task.NormalizedAdjacency()
	n := task.G.NumVertices()
	nA := task.NumAttr

	embed := glorotParam(n, cfg.Hidden, rng) // free structure embeddings
	wS := glorotParam(cfg.Hidden, cfg.Hidden, rng)
	wA := glorotParam(nA, cfg.Hidden, rng)
	wDec := glorotParam(cfg.Hidden, nA, rng)
	opt := tensor.NewAdam(cfg.LR)
	opt.Register(embed, wS, wA, wDec)

	x := task.Masked
	rowMaskMat := tensor.NewMatrix(n, cfg.Hidden)
	for v := 0; v < n; v++ {
		if task.TrainMask[v] {
			row := rowMaskMat.Row(v)
			for j := range row {
				row[j] = 1
			}
		}
	}
	trainRows := 0
	for _, m := range task.TrainMask {
		if m {
			trainRows++
		}
	}

	structLatent := func(t *tensor.Tape) *tensor.Node {
		return t.Tanh(t.MatMul(t.SpMM(adj, t.Param(embed)), t.Param(wS)))
	}
	for e := 0; e < cfg.Epochs; e++ {
		t := tensor.NewTape()
		zs := structLatent(t)
		za := t.Tanh(t.MatMul(t.Const(x), t.Param(wA)))
		// Both views decode through the shared decoder.
		lossS := t.MaskedBCE(t.MatMul(zs, t.Param(wDec)), task.Attr, task.TrainMask)
		lossA := t.MaskedBCE(t.MatMul(za, t.Param(wDec)), task.Attr, task.TrainMask)
		// Latent alignment on observed rows.
		diff := t.Mul(t.Sub(zs, za), t.Const(rowMaskMat))
		align := t.Scale(t.Sum(t.Mul(diff, diff)), 1/float64(trainRows*cfg.Hidden))
		loss := t.Add(t.Add(lossS, lossA), t.Scale(align, 0.5))
		t.Backward(loss)
		opt.Step()
	}
	t := tensor.NewTape()
	return tensor.MatMul(structLatent(t).Value, wDec.Value)
}
