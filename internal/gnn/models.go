// Package gnn implements the node-attribute-completion baselines of
// Table IV on the tensor substrate: NeighAggre, VAE, GCN, GAT, GraphSage and
// SAT. Each model consumes a completion.Task (attributes hidden on test
// rows) and produces an n×|A| score matrix ranking candidate attribute
// values per node.
//
// Architectures follow the cited papers at small hidden sizes; SAT is
// implemented as its core idea — a shared latent space aligning a structure
// encoder with an attribute autoencoder — rather than the released code (see
// DESIGN.md, substitution 2).
package gnn

import (
	"math/rand"

	"cspm/internal/completion"
	"cspm/internal/tensor"
)

// Model is an attribute-completion model.
type Model interface {
	Name() string
	// FitPredict trains on the task's observed rows and returns an n×|A|
	// score matrix (higher = more likely attribute value).
	FitPredict(task *completion.Task) *tensor.Matrix
}

// Config bundles the shared training hyper-parameters. Zero values fall
// back to defaults; the experiments use one Config for all models.
type Config struct {
	Hidden  int
	Epochs  int
	LR      float64
	Dropout float64
	Seed    int64
}

func (c Config) withDefaults() Config {
	if c.Hidden == 0 {
		c.Hidden = 32
	}
	if c.Epochs == 0 {
		c.Epochs = 120
	}
	if c.LR == 0 {
		c.LR = 0.01
	}
	return c
}

// NeighAggre is the non-parametric baseline [39]: a node's attribute scores
// are the mean of its (observed) neighbours' attribute vectors.
type NeighAggre struct{}

// Name implements Model.
func (NeighAggre) Name() string { return "NeighAggre" }

// FitPredict implements Model.
func (NeighAggre) FitPredict(task *completion.Task) *tensor.Matrix {
	n := task.G.NumVertices()
	out := tensor.NewMatrix(n, task.NumAttr)
	for v := 0; v < n; v++ {
		row := out.Row(v)
		cnt := 0
		for _, u := range task.G.Neighbors(uint32(v)) {
			if !task.TrainMask[u] {
				continue // hidden neighbours contribute nothing
			}
			cnt++
			urow := task.Masked.Row(int(u))
			for j, x := range urow {
				row[j] += x
			}
		}
		if cnt > 0 {
			for j := range row {
				row[j] /= float64(cnt)
			}
		}
	}
	return out
}

// gcnModel is a two-layer GCN [12]: Â·ReLU(Â·X·W₀)·W₁ trained with masked
// BCE against the observed attribute rows.
type gcnModel struct{ cfg Config }

// NewGCN returns the GCN baseline.
func NewGCN(cfg Config) Model { return &gcnModel{cfg: cfg.withDefaults()} }

func (m *gcnModel) Name() string { return "GCN" }

func (m *gcnModel) FitPredict(task *completion.Task) *tensor.Matrix {
	cfg := m.cfg
	rng := rand.New(rand.NewSource(cfg.Seed))
	adj := task.NormalizedAdjacency()
	nA := task.NumAttr
	w0 := glorotParam(nA, cfg.Hidden, rng)
	w1 := glorotParam(cfg.Hidden, nA, rng)
	opt := tensor.NewAdam(cfg.LR)
	opt.Register(w0, w1)
	x := task.Masked
	forward := func(t *tensor.Tape, train bool) *tensor.Node {
		h := t.SpMM(adj, t.MatMul(t.Const(x), t.Param(w0)))
		h = t.ReLU(h)
		if train {
			h = t.Dropout(h, cfg.Dropout, rng)
		}
		return t.SpMM(adj, t.MatMul(h, t.Param(w1)))
	}
	for e := 0; e < cfg.Epochs; e++ {
		t := tensor.NewTape()
		loss := t.MaskedBCE(forward(t, true), task.Attr, task.TrainMask)
		t.Backward(loss)
		opt.Step()
	}
	t := tensor.NewTape()
	return forward(t, false).Value
}

// sageModel is a two-layer GraphSage [44] with mean aggregation: each layer
// concatenates self and neighbour-mean features through separate weights.
type sageModel struct{ cfg Config }

// NewGraphSage returns the GraphSage baseline.
func NewGraphSage(cfg Config) Model { return &sageModel{cfg: cfg.withDefaults()} }

func (m *sageModel) Name() string { return "GraphSage" }

func (m *sageModel) FitPredict(task *completion.Task) *tensor.Matrix {
	cfg := m.cfg
	rng := rand.New(rand.NewSource(cfg.Seed))
	mean := task.MeanAdjacency()
	nA := task.NumAttr
	wSelf0 := glorotParam(nA, cfg.Hidden, rng)
	wNbr0 := glorotParam(nA, cfg.Hidden, rng)
	wSelf1 := glorotParam(cfg.Hidden, nA, rng)
	wNbr1 := glorotParam(cfg.Hidden, nA, rng)
	opt := tensor.NewAdam(cfg.LR)
	opt.Register(wSelf0, wNbr0, wSelf1, wNbr1)
	x := task.Masked
	layer := func(t *tensor.Tape, h *tensor.Node, ws, wn *tensor.Parameter) *tensor.Node {
		self := t.MatMul(h, t.Param(ws))
		nbr := t.MatMul(t.SpMM(mean, h), t.Param(wn))
		return t.Add(self, nbr)
	}
	forward := func(t *tensor.Tape, train bool) *tensor.Node {
		h := t.ReLU(layer(t, t.Const(x), wSelf0, wNbr0))
		if train {
			h = t.Dropout(h, cfg.Dropout, rng)
		}
		return layer(t, h, wSelf1, wNbr1)
	}
	for e := 0; e < cfg.Epochs; e++ {
		t := tensor.NewTape()
		loss := t.MaskedBCE(forward(t, true), task.Attr, task.TrainMask)
		t.Backward(loss)
		opt.Step()
	}
	t := tensor.NewTape()
	return forward(t, false).Value
}

// vaeModel is a variational autoencoder [43] over attribute rows: encoder
// MLP → (μ, logσ²), reparameterised sample, decoder MLP → attribute logits.
// Hidden test rows are reconstructed through neighbour-mean latent codes.
type vaeModel struct{ cfg Config }

// NewVAE returns the VAE baseline.
func NewVAE(cfg Config) Model { return &vaeModel{cfg: cfg.withDefaults()} }

func (m *vaeModel) Name() string { return "VAE" }

func (m *vaeModel) FitPredict(task *completion.Task) *tensor.Matrix {
	cfg := m.cfg
	rng := rand.New(rand.NewSource(cfg.Seed))
	nA := task.NumAttr
	wEnc := glorotParam(nA, cfg.Hidden, rng)
	wMu := glorotParam(cfg.Hidden, cfg.Hidden, rng)
	wLog := glorotParam(cfg.Hidden, cfg.Hidden, rng)
	wDec := glorotParam(cfg.Hidden, nA, rng)
	opt := tensor.NewAdam(cfg.LR)
	opt.Register(wEnc, wMu, wLog, wDec)
	x := task.Masked
	n := task.G.NumVertices()
	for e := 0; e < cfg.Epochs; e++ {
		t := tensor.NewTape()
		h := t.ReLU(t.MatMul(t.Const(x), t.Param(wEnc)))
		mu := t.MatMul(h, t.Param(wMu))
		logvar := t.MatMul(h, t.Param(wLog))
		// Reparameterisation: z = μ + ε·exp(logvar/2).
		eps := tensor.NewMatrix(n, cfg.Hidden)
		for i := range eps.Data {
			eps.Data[i] = rng.NormFloat64()
		}
		std := t.Exp(t.Scale(logvar, 0.5))
		z := t.Add(mu, t.Mul(std, t.Const(eps)))
		logits := t.MatMul(z, t.Param(wDec))
		recon := t.MaskedBCE(logits, task.Attr, task.TrainMask)
		// KL(q||N(0,I)) = −½ Σ (1 + logvar − μ² − e^logvar), averaged.
		kl := t.Scale(
			t.Sum(t.Sub(t.Add(t.Mul(mu, mu), t.Exp(logvar)), t.Add(t.Const(ones(n, cfg.Hidden)), logvar))),
			0.5/float64(n*cfg.Hidden))
		loss := t.Add(recon, t.Scale(kl, 0.1))
		t.Backward(loss)
		opt.Step()
	}
	// Inference: encode observed rows; hidden rows borrow the mean latent of
	// their observed neighbours, then decode.
	t := tensor.NewTape()
	h := t.ReLU(t.MatMul(t.Const(x), t.Param(wEnc)))
	mu := t.MatMul(h, t.Param(wMu)).Value
	for _, v := range task.TestNodes {
		row := mu.Row(int(v))
		for j := range row {
			row[j] = 0
		}
		cnt := 0
		for _, u := range task.G.Neighbors(v) {
			if !task.TrainMask[u] {
				continue
			}
			cnt++
			urow := mu.Row(int(u))
			for j := range row {
				row[j] += urow[j]
			}
		}
		if cnt > 0 {
			for j := range row {
				row[j] /= float64(cnt)
			}
		}
	}
	return tensor.MatMul(mu, wDec.Value)
}

func glorotParam(rows, cols int, rng *rand.Rand) *tensor.Parameter {
	m := tensor.NewMatrix(rows, cols)
	tensor.Glorot(m, rng)
	return tensor.NewParameter(m)
}

func ones(r, c int) *tensor.Matrix {
	m := tensor.NewMatrix(r, c)
	m.Fill(1)
	return m
}
