package gnn

import (
	"math"
	"math/rand"
	"testing"

	"cspm/internal/completion"
	"cspm/internal/dataset"
	"cspm/internal/graph"
	"cspm/internal/tensor"
)

func tinyTask(t *testing.T, seed int64) *completion.Task {
	t.Helper()
	g, _ := dataset.Citation(dataset.CitationConfig{
		Name: "tiny", Nodes: 250, Classes: 5, Attrs: 50, AttrsPerNode: 6, Homophily: 0.9, Seed: seed,
	})
	task, err := completion.NewTask(g, 0.1, seed)
	if err != nil {
		t.Fatal(err)
	}
	return task
}

func quickCfg(seed int64) Config {
	return Config{Hidden: 16, Epochs: 60, LR: 0.02, Seed: seed}
}

// randomScores is the floor every trained model must clear.
func randomScores(task *completion.Task, seed int64) *tensor.Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := tensor.NewMatrix(task.G.NumVertices(), task.NumAttr)
	for i := range m.Data {
		m.Data[i] = rng.Float64()
	}
	return m
}

func TestAllModelsBeatRandom(t *testing.T) {
	task := tinyTask(t, 11)
	ks := []int{10}
	base := completion.Evaluate(task, randomScores(task, 1), ks).RecallAtK[10]
	models := []Model{
		NeighAggre{},
		NewGCN(quickCfg(2)),
		NewGraphSage(quickCfg(3)),
		NewGAT(quickCfg(4)),
		NewVAE(quickCfg(5)),
		NewSAT(quickCfg(6)),
	}
	for _, m := range models {
		scores := m.FitPredict(task)
		got := completion.Evaluate(task, scores, ks).RecallAtK[10]
		t.Logf("%s recall@10 = %.4f (random %.4f)", m.Name(), got, base)
		if got <= base {
			t.Errorf("%s did not beat random: %.4f <= %.4f", m.Name(), got, base)
		}
		for _, v := range scores.Data {
			if math.IsNaN(v) {
				t.Fatalf("%s produced NaN scores", m.Name())
			}
		}
	}
}

func TestModelsDeterministic(t *testing.T) {
	task := tinyTask(t, 13)
	a := NewGCN(quickCfg(7)).FitPredict(task)
	b := NewGCN(quickCfg(7)).FitPredict(task)
	if tensor.MaxAbsDiff(a, b) != 0 {
		t.Fatal("GCN training is not deterministic under a fixed seed")
	}
}

func TestNeighAggreIgnoresHiddenNeighbors(t *testing.T) {
	// Two nodes, both attributed, one hidden: the hidden node's prediction
	// must come only from its observed neighbour.
	b := graph.NewBuilder(3)
	_ = b.AddAttr(0, "a")
	_ = b.AddAttr(1, "b")
	_ = b.AddAttr(2, "c")
	_ = b.AddEdge(0, 1)
	_ = b.AddEdge(1, 2)
	g := b.Build()
	task, err := completion.NewTask(g, 0.34, 5)
	if err != nil {
		t.Fatal(err)
	}
	scores := NeighAggre{}.FitPredict(task)
	for _, v := range task.TestNodes {
		row := scores.Row(int(v))
		sum := 0.0
		for _, x := range row {
			sum += x
		}
		// Neighbour averages of binary vectors stay within [0,1].
		for _, x := range row {
			if x < 0 || x > 1 {
				t.Fatalf("NeighAggre score %v outside [0,1]", x)
			}
		}
		_ = sum
	}
}

// TestGATAggregateGradient numerically validates the fused attention
// primitive, the only hand-derived backward pass in the package.
func TestGATAggregateGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	// Small graph: 4 nodes in a path.
	b := graph.NewBuilder(4)
	_ = b.AddEdge(0, 1)
	_ = b.AddEdge(1, 2)
	_ = b.AddEdge(2, 3)
	for v := 0; v < 4; v++ {
		_ = b.AddAttr(graph.VertexID(v), "x")
	}
	g := b.Build()
	nbrs := neighborLists(g)

	zm := tensor.NewMatrix(4, 3)
	for i := range zm.Data {
		zm.Data[i] = rng.NormFloat64()
	}
	z := tensor.NewParameter(zm)
	sm := tensor.NewMatrix(4, 1)
	dm := tensor.NewMatrix(4, 1)
	for i := 0; i < 4; i++ {
		sm.Data[i] = rng.NormFloat64()
		dm.Data[i] = rng.NormFloat64()
	}
	s := tensor.NewParameter(sm)
	d := tensor.NewParameter(dm)

	loss := func(tape *tensor.Tape) *tensor.Node {
		out := gatAggregate(tape, tape.Param(z), tape.Param(s), tape.Param(d), nbrs)
		return tape.Mean(tape.Mul(out, out))
	}
	for name, p := range map[string]*tensor.Parameter{"z": z, "s": s, "d": d} {
		p.Grad.Zero()
		z.Grad.Zero()
		s.Grad.Zero()
		d.Grad.Zero()
		tape := tensor.NewTape()
		l := loss(tape)
		tape.Backward(l)
		analytic := p.Grad.Clone()
		const h = 1e-6
		numeric := tensor.NewMatrix(p.Value.Rows, p.Value.Cols)
		for k := range p.Value.Data {
			orig := p.Value.Data[k]
			p.Value.Data[k] = orig + h
			up := loss(tensor.NewTape()).Value.Data[0]
			p.Value.Data[k] = orig - h
			down := loss(tensor.NewTape()).Value.Data[0]
			p.Value.Data[k] = orig
			numeric.Data[k] = (up - down) / (2 * h)
		}
		if diff := tensor.MaxAbsDiff(analytic, numeric); diff > 1e-5 {
			t.Fatalf("GAT gradient wrt %s off by %v\nanalytic %v\nnumeric %v",
				name, diff, analytic.Data, numeric.Data)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Hidden == 0 || c.Epochs == 0 || c.LR == 0 {
		t.Fatalf("defaults not applied: %+v", c)
	}
	// Explicit values survive.
	c2 := Config{Hidden: 7, Epochs: 3, LR: 0.5}.withDefaults()
	if c2.Hidden != 7 || c2.Epochs != 3 || c2.LR != 0.5 {
		t.Fatalf("explicit config overridden: %+v", c2)
	}
}

func TestDropoutTrainingPath(t *testing.T) {
	task := tinyTask(t, 29)
	cfg := quickCfg(8)
	cfg.Dropout = 0.3
	scores := NewGCN(cfg).FitPredict(task)
	for _, v := range scores.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("dropout training produced non-finite scores")
		}
	}
}

func TestModelsDisjointSeedsDiffer(t *testing.T) {
	task := tinyTask(t, 31)
	a := NewGCN(quickCfg(1)).FitPredict(task)
	b := NewGCN(quickCfg(2)).FitPredict(task)
	if tensor.MaxAbsDiff(a, b) == 0 {
		t.Fatal("different seeds produced identical models (RNG not threaded)")
	}
}
