// Package slim implements the SLIM algorithm (Smets & Vreeken, paper [25]):
// compression-based itemset mining with on-the-fly candidate generation.
// Instead of a pre-mined candidate set (Krimp), SLIM repeatedly considers
// unions of pairs of code-table entries, ranked by their estimated gain, and
// accepts a union when it genuinely shrinks the total description length.
//
// SLIM is the runtime baseline in Table III: applied to an attributed graph
// by treating the coresets of each adjacency-list tuple — the vertex's own
// attribute values — as a transaction (paper §VI-A), it mines co-occurring
// value sets without the topology or the core/leaf distinction CSPM adds.
package slim

import (
	"math"
	"sort"

	"cspm/internal/fim"
	"cspm/internal/graph"
	"cspm/internal/intset"
	"cspm/internal/krimp"
)

// Options bounds a SLIM run. The zero value is the parameter-free default.
type Options struct {
	MaxMerges     int // cap on accepted unions (0 = unbounded)
	MaxCandidates int // per-round cap on evaluated pair unions (0 = all)
	// RejectCooldown skips a union for this many rounds after it failed to
	// compress (its actual gain rarely flips sign between adjacent rounds).
	// 0 means the default of 10; negative disables the cache.
	RejectCooldown int
}

// Result is the mined code table plus diagnostics.
type Result struct {
	CT         *krimp.CodeTable
	BaselineDL float64
	FinalDL    float64
	Accepted   int
	Evaluated  int
}

// Mine runs SLIM on the transaction database.
func Mine(db *fim.DB, opts Options) *Result {
	cooldown := opts.RejectCooldown
	switch {
	case cooldown == 0:
		cooldown = 10
	case cooldown < 0:
		cooldown = 0
	}
	ct := krimp.NewCodeTable(db)
	res := &Result{CT: ct, BaselineDL: ct.TotalDL()}
	best := res.BaselineDL
	rejected := make(map[string]int) // union key → round it failed
	round := 0
	for opts.MaxMerges == 0 || res.Accepted < opts.MaxMerges {
		round++
		cands := pairCandidates(ct, opts.MaxCandidates)
		accepted := false
		for _, cand := range cands {
			if ct.Has(cand.items) {
				continue // union already in the table; nothing to add
			}
			key := itemsKey(cand.items)
			if r, ok := rejected[key]; ok && round-r <= cooldown {
				continue
			}
			res.Evaluated++
			_, rollback := ct.TryItemset(cand.items)
			if dl := ct.TotalDL(); dl < best-1e-9 {
				best = dl
				res.Accepted++
				accepted = true
				break // greedy: rebuild candidates around the new table
			}
			if rollback != nil {
				rollback()
			}
			rejected[key] = round
		}
		if !accepted {
			break
		}
	}
	res.FinalDL = best
	return res
}

func itemsKey(items []fim.Item) string {
	buf := make([]byte, 0, 4*len(items))
	for _, it := range items {
		buf = append(buf, byte(it), byte(it>>8), byte(it>>16), byte(it>>24))
	}
	return string(buf)
}

type pairCand struct {
	items []fim.Item
	est   float64
}

// pairCandidates ranks unions of in-use entry pairs by estimated gain. The
// estimate follows SLIM's usage heuristic: coding the co-usage with one code
// instead of two saves roughly xy·(L(x)+L(y)−L(xy)) bits, with L from
// current usages. Only co-occurring pairs (shared cover transactions) are
// considered.
func pairCandidates(ct *krimp.CodeTable, limit int) []pairCand {
	entries := ct.Entries()
	total := ct.TotalUsage()
	var out []pairCand
	for i := 0; i < len(entries); i++ {
		for j := i + 1; j < len(entries); j++ {
			a, b := entries[i], entries[j]
			xy := a.Tids.IntersectCount(b.Tids)
			if xy < 2 {
				continue // a one-off co-usage can never pay its table cost
			}
			union := mergeItems(a.Items, b.Items)
			if len(union) == len(a.Items) || len(union) == len(b.Items) {
				continue // one contains the other; the union adds nothing
			}
			if ct.Has(union) {
				continue
			}
			est := float64(xy) * (a.CodeLen(total) + b.CodeLen(total) - estCodeLen(xy, total))
			out = append(out, pairCand{items: union, est: est})
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].est != out[j].est {
			return out[i].est > out[j].est
		}
		return lessItems(out[i].items, out[j].items)
	})
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

func estCodeLen(usage, total int) float64 {
	if usage <= 0 || total <= 0 {
		return math.Inf(1)
	}
	return -math.Log2(float64(usage) / float64(total))
}

func mergeItems(a, b []fim.Item) []fim.Item {
	out := make([]fim.Item, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

func lessItems(a, b []fim.Item) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// GraphTransactions flattens an attributed graph into one transaction per
// vertex holding the attribute values of the vertex and of all its
// neighbours (the full star content, with core/leaf roles erased). This is
// a denser alternative input to Mine for star-content analysis; the
// Table III baseline uses VertexTransactions instead.
func GraphTransactions(g *graph.Graph) *fim.DB {
	raw := make([][]fim.Item, g.NumVertices())
	for v := 0; v < g.NumVertices(); v++ {
		var tx []fim.Item
		for _, a := range g.Attrs(graph.VertexID(v)) {
			tx = append(tx, fim.Item(a))
		}
		for _, u := range g.Neighbors(graph.VertexID(v)) {
			for _, a := range g.Attrs(u) {
				tx = append(tx, fim.Item(a))
			}
		}
		raw[v] = tx
	}
	return fim.NewDB(raw)
}

// MineGraph is the Table III baseline entry point: SLIM over the
// vertex-attribute transactions.
func MineGraph(g *graph.Graph, opts Options) *Result {
	return Mine(VertexTransactions(g), opts)
}

// VertexTransactions builds the §IV-F step-1 database: one transaction per
// vertex holding just that vertex's attribute values. Mining it yields the
// multi-value coresets of CSPM's general mode.
func VertexTransactions(g *graph.Graph) *fim.DB {
	raw := make([][]fim.Item, g.NumVertices())
	for v := 0; v < g.NumVertices(); v++ {
		attrs := g.Attrs(graph.VertexID(v))
		tx := make([]fim.Item, len(attrs))
		for i, a := range attrs {
			tx[i] = fim.Item(a)
		}
		raw[v] = tx
	}
	return fim.NewDB(raw)
}

// ItemsetsAsCoresets converts the in-use entries of a result mined on
// VertexTransactions into the (coresets, positions) form expected by
// invdb.FromGraphWithCoresets — the §IV-F step-1 bridge. Entry tid lists
// are vertex positions because VertexTransactions emits one transaction per
// vertex, and the Krimp cover is disjoint, so every vertex attribute is
// claimed by exactly one coreset.
func ItemsetsAsCoresets(res *Result) (coresets [][]graph.AttrID, positions []intset.Set) {
	return CodeTableAsCoresets(res.CT)
}

// CodeTableAsCoresets converts any code table covering VertexTransactions
// (SLIM's or Krimp's) into the (coresets, positions) form of §IV-F step 1.
func CodeTableAsCoresets(ct *krimp.CodeTable) (coresets [][]graph.AttrID, positions []intset.Set) {
	for _, e := range ct.Entries() {
		items := make([]graph.AttrID, len(e.Items))
		for i, it := range e.Items {
			items[i] = graph.AttrID(it)
		}
		coresets = append(coresets, items)
		positions = append(positions, e.Tids)
	}
	return coresets, positions
}
