package slim

import (
	"math/rand"
	"testing"

	"cspm/internal/fim"
	"cspm/internal/graph"
	"cspm/internal/invdb"
)

func patternedDB(seed int64, n int) *fim.DB {
	rng := rand.New(rand.NewSource(seed))
	raw := make([][]fim.Item, n)
	for i := range raw {
		if rng.Float64() < 0.6 {
			raw[i] = append(raw[i], 0, 1, 2)
		}
		if rng.Float64() < 0.4 {
			raw[i] = append(raw[i], 3, 4)
		}
		for it := 5; it < 12; it++ {
			if rng.Float64() < 0.15 {
				raw[i] = append(raw[i], fim.Item(it))
			}
		}
		if len(raw[i]) == 0 {
			raw[i] = append(raw[i], fim.Item(5+rng.Intn(7)))
		}
	}
	return fim.NewDB(raw)
}

func TestSlimCompressesPlantedDB(t *testing.T) {
	db := patternedDB(1, 120)
	res := Mine(db, Options{})
	if res.FinalDL >= res.BaselineDL {
		t.Fatalf("SLIM failed to compress: %v >= %v", res.FinalDL, res.BaselineDL)
	}
	if res.Accepted == 0 {
		t.Fatal("no merges accepted")
	}
	if err := res.CT.Decode(); err != nil {
		t.Fatal(err)
	}
	// Both planted itemsets should emerge (possibly as supersets).
	has012, has34 := false, false
	for _, e := range res.CT.NonSingletons() {
		if fim.Contains(fim.Transaction(e.Items), []fim.Item{0, 1, 2}) {
			has012 = true
		}
		if fim.Contains(fim.Transaction(e.Items), []fim.Item{3, 4}) {
			has34 = true
		}
	}
	if !has012 || !has34 {
		t.Errorf("planted itemsets not recovered: {0,1,2}=%v {3,4}=%v", has012, has34)
	}
}

func TestSlimMaxMerges(t *testing.T) {
	db := patternedDB(2, 100)
	res := Mine(db, Options{MaxMerges: 1})
	if res.Accepted > 1 {
		t.Fatalf("MaxMerges=1 accepted %d", res.Accepted)
	}
}

func TestSlimDeterministic(t *testing.T) {
	db := patternedDB(3, 80)
	a := Mine(db, Options{})
	db2 := patternedDB(3, 80)
	b := Mine(db2, Options{})
	if a.FinalDL != b.FinalDL || a.Accepted != b.Accepted {
		t.Fatalf("nondeterministic: (%v,%d) vs (%v,%d)", a.FinalDL, a.Accepted, b.FinalDL, b.Accepted)
	}
}

func buildGraph(t *testing.T) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(6)
	for v, vals := range map[graph.VertexID][]string{
		0: {"x", "y"}, 1: {"x", "y"}, 2: {"z"}, 3: {"x", "y"}, 4: {"z"}, 5: {"x"},
	} {
		for _, val := range vals {
			if err := b.AddAttr(v, val); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, e := range [][2]graph.VertexID{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}} {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func TestGraphTransactionsShape(t *testing.T) {
	g := buildGraph(t)
	db := GraphTransactions(g)
	if len(db.Txs) != 6 {
		t.Fatalf("%d transactions, want 6", len(db.Txs))
	}
	// Vertex 1 star: own {x,y} + neighbours 0:{x,y}, 2:{z} → {x,y,z}.
	if len(db.Txs[1]) != 3 {
		t.Fatalf("tx[1] = %v, want 3 distinct values", db.Txs[1])
	}
}

func TestVertexTransactionsShape(t *testing.T) {
	g := buildGraph(t)
	db := VertexTransactions(g)
	if len(db.Txs) != 6 {
		t.Fatalf("%d transactions, want 6", len(db.Txs))
	}
	if len(db.Txs[2]) != 1 {
		t.Fatalf("tx[2] = %v, want single value", db.Txs[2])
	}
}

func TestItemsetsAsCoresetsBridge(t *testing.T) {
	g := buildGraph(t)
	res := Mine(VertexTransactions(g), Options{})
	coresets, positions := ItemsetsAsCoresets(res)
	if len(coresets) == 0 {
		t.Fatal("no coresets produced")
	}
	db, err := invdb.FromGraphWithCoresets(g, coresets, positions)
	if err != nil {
		t.Fatal(err)
	}
	if db.NumCoresets() != len(coresets) {
		t.Fatalf("NumCoresets = %d, want %d", db.NumCoresets(), len(coresets))
	}
	// The multi-value coreset {x,y} should exist: vertices 0,1,3 carry both.
	foundMulti := false
	for i, cs := range coresets {
		if len(cs) == 2 {
			foundMulti = true
			if positions[i].Len() == 0 {
				t.Error("multi-value coreset has no positions")
			}
		}
	}
	if !foundMulti {
		t.Error("SLIM missed the {x,y} coreset")
	}
}

func TestMineGraphRuns(t *testing.T) {
	g := buildGraph(t)
	res := MineGraph(g, Options{})
	if res.FinalDL > res.BaselineDL {
		t.Fatalf("MineGraph expanded DL")
	}
}
