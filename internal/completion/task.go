// Package completion implements the node-attribute-completion study of
// paper §VI-C: the task definition (attribute-missing graphs), the CSPM
// scoring module (Algorithm 5), the fusion of CSPM scores with model
// probabilities (Fig. 7), and the Recall@K / NDCG@K metrics of Table IV.
package completion

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"cspm/internal/graph"
	"cspm/internal/tensor"
)

// Task is an attribute-completion instance: a graph whose test vertices have
// their attributes hidden. Models see Attr zeroed on test rows and must rank
// the true attribute values highly.
type Task struct {
	G       *graph.Graph
	NumAttr int

	// Attr is the full n×|A| binary attribute matrix (ground truth).
	Attr *tensor.Matrix
	// Masked is Attr with test rows zeroed (the models' input/targets).
	Masked *tensor.Matrix

	TrainMask []bool
	TestNodes []graph.VertexID
}

// NewTask hides the attributes of a testFraction of vertices, selected
// deterministically from seed. Vertices without attributes are never chosen.
func NewTask(g *graph.Graph, testFraction float64, seed int64) (*Task, error) {
	if testFraction <= 0 || testFraction >= 1 {
		return nil, fmt.Errorf("completion: testFraction must be in (0,1), got %v", testFraction)
	}
	n := g.NumVertices()
	nA := g.NumAttrValues()
	task := &Task{
		G:         g,
		NumAttr:   nA,
		Attr:      tensor.NewMatrix(n, nA),
		TrainMask: make([]bool, n),
	}
	var candidates []graph.VertexID
	for v := 0; v < n; v++ {
		for _, a := range g.Attrs(graph.VertexID(v)) {
			task.Attr.Set(v, int(a), 1)
		}
		task.TrainMask[v] = true
		if len(g.Attrs(graph.VertexID(v))) > 0 {
			candidates = append(candidates, graph.VertexID(v))
		}
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(candidates), func(i, j int) {
		candidates[i], candidates[j] = candidates[j], candidates[i]
	})
	k := int(testFraction * float64(len(candidates)))
	if k == 0 {
		k = 1
	}
	task.TestNodes = append([]graph.VertexID(nil), candidates[:k]...)
	sort.Slice(task.TestNodes, func(i, j int) bool { return task.TestNodes[i] < task.TestNodes[j] })
	task.Masked = task.Attr.Clone()
	for _, v := range task.TestNodes {
		task.TrainMask[v] = false
		row := task.Masked.Row(int(v))
		for j := range row {
			row[j] = 0
		}
	}
	return task, nil
}

// TrainGraph returns a copy of the underlying graph with the test vertices'
// attributes removed — the view CSPM is allowed to mine (no test leakage).
func (t *Task) TrainGraph() *graph.Graph {
	b := graph.NewBuilder(t.G.NumVertices())
	// Intern the full vocabulary first so AttrIDs coincide with t.G's.
	for _, name := range t.G.Vocab().Names() {
		b.Vocab().ID(name)
	}
	hidden := make(map[graph.VertexID]bool, len(t.TestNodes))
	for _, v := range t.TestNodes {
		hidden[v] = true
	}
	for v := 0; v < t.G.NumVertices(); v++ {
		if hidden[graph.VertexID(v)] {
			continue
		}
		for _, a := range t.G.Attrs(graph.VertexID(v)) {
			_ = b.AddAttrID(graph.VertexID(v), a)
		}
	}
	for u := 0; u < t.G.NumVertices(); u++ {
		for _, v := range t.G.Neighbors(graph.VertexID(u)) {
			if graph.VertexID(u) < v {
				_ = b.AddEdge(graph.VertexID(u), v)
			}
		}
	}
	return b.Build()
}

// NormalizedAdjacency returns the GCN propagation matrix
// D̂^(−1/2)(A+I)D̂^(−1/2) as CSR.
func (t *Task) NormalizedAdjacency() *tensor.CSR {
	n := t.G.NumVertices()
	deg := make([]float64, n)
	for v := 0; v < n; v++ {
		deg[v] = float64(t.G.Degree(graph.VertexID(v)) + 1) // self-loop
	}
	entries := make([][]tensor.SparseEntry, n)
	for v := 0; v < n; v++ {
		row := make([]tensor.SparseEntry, 0, t.G.Degree(graph.VertexID(v))+1)
		row = append(row, tensor.SparseEntry{Col: v, Val: 1 / deg[v]}) // normalised self-loop
		for _, u := range t.G.Neighbors(graph.VertexID(v)) {
			row = append(row, tensor.SparseEntry{
				Col: int(u),
				Val: 1 / (sqrt(deg[v]) * sqrt(deg[u])),
			})
		}
		entries[v] = row
	}
	return tensor.NewCSR(n, n, entries)
}

// MeanAdjacency returns the row-normalised neighbour-mean propagation matrix
// (GraphSage mean aggregator), without self-loops.
func (t *Task) MeanAdjacency() *tensor.CSR {
	n := t.G.NumVertices()
	entries := make([][]tensor.SparseEntry, n)
	for v := 0; v < n; v++ {
		d := t.G.Degree(graph.VertexID(v))
		if d == 0 {
			continue
		}
		row := make([]tensor.SparseEntry, 0, d)
		for _, u := range t.G.Neighbors(graph.VertexID(v)) {
			row = append(row, tensor.SparseEntry{Col: int(u), Val: 1 / float64(d)})
		}
		entries[v] = row
	}
	return tensor.NewCSR(n, n, entries)
}

func sqrt(x float64) float64 { return math.Sqrt(x) }
