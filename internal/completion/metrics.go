package completion

import (
	"math"
	"sort"

	"cspm/internal/tensor"
)

// Metrics aggregates Recall@K and NDCG@K over the test nodes (Table IV's
// columns): Recall measures how many true attribute values surface in the
// top K, NDCG how well they are ranked within it.
type Metrics struct {
	RecallAtK map[int]float64
	NDCGAtK   map[int]float64
}

// Evaluate computes the metrics of a score matrix against the task's ground
// truth for the given cut-offs.
func Evaluate(task *Task, scores *tensor.Matrix, ks []int) Metrics {
	m := Metrics{RecallAtK: make(map[int]float64), NDCGAtK: make(map[int]float64)}
	if len(task.TestNodes) == 0 {
		return m
	}
	for _, k := range ks {
		recall, ndcg := 0.0, 0.0
		for _, v := range task.TestNodes {
			r, n := rankMetrics(scores.Row(int(v)), task.Attr.Row(int(v)), k)
			recall += r
			ndcg += n
		}
		cnt := float64(len(task.TestNodes))
		m.RecallAtK[k] = recall / cnt
		m.NDCGAtK[k] = ndcg / cnt
	}
	return m
}

// rankMetrics computes recall@k and NDCG@k for one node. Ties are broken by
// attribute index for determinism.
func rankMetrics(scores, truth []float64, k int) (recall, ndcg float64) {
	nTrue := 0
	for _, t := range truth {
		if t > 0 {
			nTrue++
		}
	}
	if nTrue == 0 {
		return 0, 0
	}
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		sa, sb := scores[idx[a]], scores[idx[b]]
		if sa != sb {
			// NaN and -Inf sink to the bottom.
			if math.IsNaN(sa) {
				return false
			}
			if math.IsNaN(sb) {
				return true
			}
			return sa > sb
		}
		return idx[a] < idx[b]
	})
	if k > len(idx) {
		k = len(idx)
	}
	hits := 0
	dcg := 0.0
	for rank := 0; rank < k; rank++ {
		if truth[idx[rank]] > 0 {
			hits++
			dcg += 1 / math.Log2(float64(rank)+2)
		}
	}
	ideal := 0.0
	for rank := 0; rank < k && rank < nTrue; rank++ {
		ideal += 1 / math.Log2(float64(rank)+2)
	}
	recall = float64(hits) / float64(nTrue)
	if ideal > 0 {
		ndcg = dcg / ideal
	}
	return recall, ndcg
}
