package completion

import (
	"math"
	"testing"

	"cspm/internal/cspm"
	"cspm/internal/dataset"
	"cspm/internal/graph"
	"cspm/internal/tensor"
)

func smallTask(t *testing.T) *Task {
	t.Helper()
	g, _ := dataset.Citation(dataset.CitationConfig{
		Name: "tiny", Nodes: 200, Classes: 4, Attrs: 40, AttrsPerNode: 5, Homophily: 0.9, Seed: 3,
	})
	task, err := NewTask(g, 0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	return task
}

func TestNewTaskSplit(t *testing.T) {
	task := smallTask(t)
	if len(task.TestNodes) == 0 {
		t.Fatal("no test nodes selected")
	}
	for _, v := range task.TestNodes {
		if task.TrainMask[v] {
			t.Fatalf("test node %d still in train mask", v)
		}
		row := task.Masked.Row(int(v))
		for j, x := range row {
			if x != 0 {
				t.Fatalf("test node %d kept attribute %d", v, j)
			}
		}
		// Ground truth must still be present.
		sum := 0.0
		for _, x := range task.Attr.Row(int(v)) {
			sum += x
		}
		if sum == 0 {
			t.Fatalf("test node %d has empty ground truth", v)
		}
	}
}

func TestNewTaskValidation(t *testing.T) {
	g, _ := dataset.Citation(dataset.CitationConfig{
		Name: "tiny", Nodes: 50, Classes: 2, Attrs: 10, AttrsPerNode: 3, Homophily: 0.5, Seed: 1,
	})
	for _, frac := range []float64{0, 1, -0.5, 1.5} {
		if _, err := NewTask(g, frac, 1); err == nil {
			t.Errorf("testFraction %v accepted", frac)
		}
	}
}

func TestTrainGraphHidesTestAttributes(t *testing.T) {
	task := smallTask(t)
	tg := task.TrainGraph()
	if tg.NumVertices() != task.G.NumVertices() || tg.NumEdges() != task.G.NumEdges() {
		t.Fatal("TrainGraph changed topology")
	}
	if tg.NumAttrValues() != task.G.NumAttrValues() {
		t.Fatal("TrainGraph must keep the full vocabulary for id stability")
	}
	for _, v := range task.TestNodes {
		if len(tg.Attrs(v)) != 0 {
			t.Fatalf("test node %d leaked attributes into the train graph", v)
		}
	}
	for v := 0; v < tg.NumVertices(); v++ {
		if task.TrainMask[v] && len(tg.Attrs(graph.VertexID(v))) != len(task.G.Attrs(graph.VertexID(v))) {
			t.Fatalf("train node %d lost attributes", v)
		}
	}
}

func TestNormalizedAdjacencyRowsFinite(t *testing.T) {
	task := smallTask(t)
	adj := task.NormalizedAdjacency()
	for _, v := range adj.Val {
		if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
			t.Fatalf("bad adjacency weight %v", v)
		}
	}
	mean := task.MeanAdjacency()
	// Mean rows must sum to 1 (or 0 for isolated vertices).
	for i := 0; i < mean.Rows; i++ {
		sum := 0.0
		for p := mean.RowPtr[i]; p < mean.RowPtr[i+1]; p++ {
			sum += mean.Val[p]
		}
		if sum != 0 && math.Abs(sum-1) > 1e-9 {
			t.Fatalf("mean adjacency row %d sums to %v", i, sum)
		}
	}
}

func TestRankMetricsHandComputed(t *testing.T) {
	scores := []float64{0.9, 0.1, 0.8, 0.2}
	truth := []float64{1, 0, 0, 1}
	// Ranking: 0 (hit), 2, 1, 3. Top-2: one hit of two truths.
	r, n := rankMetrics(scores, truth, 2)
	if math.Abs(r-0.5) > 1e-12 {
		t.Fatalf("recall@2 = %v, want 0.5", r)
	}
	wantNDCG := 1.0 / (1.0/math.Log2(2) + 1.0/math.Log2(3)) // dcg=1 at rank 0
	if math.Abs(n-wantNDCG) > 1e-12 {
		t.Fatalf("ndcg@2 = %v, want %v", n, wantNDCG)
	}
	// Perfect ranking at k=4.
	r, n = rankMetrics([]float64{1, 0, 0, 0.9}, truth, 4)
	if r != 1 || math.Abs(n-1) > 1e-12 {
		t.Fatalf("perfect ranking gave recall=%v ndcg=%v", r, n)
	}
}

func TestRankMetricsEmptyTruth(t *testing.T) {
	r, n := rankMetrics([]float64{1, 2}, []float64{0, 0}, 2)
	if r != 0 || n != 0 {
		t.Fatal("empty truth should give zeros")
	}
}

func TestMetricsMonotoneInK(t *testing.T) {
	task := smallTask(t)
	// Score with the ground truth perturbed — recall@K must not decrease in K.
	scores := task.Attr.Clone()
	m := Evaluate(task, scores, []int{1, 5, 10, 20})
	prev := -1.0
	for _, k := range []int{1, 5, 10, 20} {
		if m.RecallAtK[k] < prev-1e-12 {
			t.Fatalf("recall@%d = %v decreased", k, m.RecallAtK[k])
		}
		prev = m.RecallAtK[k]
		if m.RecallAtK[k] < 0 || m.RecallAtK[k] > 1 || m.NDCGAtK[k] < 0 || m.NDCGAtK[k] > 1 {
			t.Fatalf("metric out of range at k=%d", k)
		}
	}
	// Oracle scores achieve perfect recall once K ≥ max true attrs.
	if m.RecallAtK[20] < 0.999 {
		t.Fatalf("oracle recall@20 = %v", m.RecallAtK[20])
	}
}

func TestScorerRanksPlantedValue(t *testing.T) {
	// Star graph: cores carry "target", leaves carry "ind". The scorer must
	// rank "target" first for a hidden core whose neighbours carry "ind".
	b := graph.NewBuilder(13)
	for i := 0; i < 4; i++ {
		core := graph.VertexID(i * 3)
		_ = b.AddAttr(core, "target")
		for j := 1; j <= 2; j++ {
			leaf := core + graph.VertexID(j)
			_ = b.AddAttr(leaf, "ind")
			_ = b.AddEdge(core, leaf)
		}
		if i > 0 {
			_ = b.AddEdge(core-1, core+1)
		}
	}
	_ = b.AddAttr(12, "other")
	_ = b.AddEdge(11, 12)
	g := b.Build()
	model := cspm.Mine(g)
	sc := NewScorer(model, g)
	scores := sc.ScoreNode(0)
	target, _ := g.Vocab().Lookup("target")
	other, _ := g.Vocab().Lookup("other")
	if scores[target] <= scores[other] {
		t.Fatalf("target %v not ranked above other %v", scores[target], scores[other])
	}
}

func TestNormalizeRow(t *testing.T) {
	out := normalizeRow([]float64{math.Inf(-1), 2, 4})
	if out == nil {
		t.Fatal("finite values present but nil returned")
	}
	if out[2] != 1 {
		t.Fatalf("max should normalise to 1, got %v", out[2])
	}
	if out[0] >= out[1] {
		t.Fatal("silent value should rank below scored values")
	}
	if normalizeRow([]float64{math.Inf(-1), math.Inf(-1)}) != nil {
		t.Fatal("all-silent row should return nil")
	}
}

func TestFuseFallsBackWhenCSPMSilent(t *testing.T) {
	model := tensor.FromRows([][]float64{{0.2, 0.8}})
	silent := tensor.FromRows([][]float64{{math.Inf(-1), math.Inf(-1)}})
	fused := Fuse(model, silent, []graph.VertexID{0})
	if fused.At(0, 1) <= fused.At(0, 0) {
		t.Fatal("fusion with silent CSPM should preserve the model ranking")
	}
}

func TestFuseCombinesSignals(t *testing.T) {
	// Model is indifferent; CSPM prefers attribute 0 — fusion must too.
	model := tensor.FromRows([][]float64{{0.5, 0.5}})
	cspmScores := tensor.FromRows([][]float64{{-1.0, -5.0}})
	fused := Fuse(model, cspmScores, []graph.VertexID{0})
	if fused.At(0, 0) <= fused.At(0, 1) {
		t.Fatal("fusion ignored the CSPM preference")
	}
}
