package completion

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Property battery for the ranking metrics: bounds, monotonicity in K, and
// invariance under positive affine score transformations (ranking metrics
// must only depend on the order).
func TestRankMetricsProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(20)
		scores := make([]float64, n)
		truth := make([]float64, n)
		anyTrue := false
		for i := range scores {
			scores[i] = rng.NormFloat64()
			if rng.Float64() < 0.4 {
				truth[i] = 1
				anyTrue = true
			}
		}
		if !anyTrue {
			truth[rng.Intn(n)] = 1
		}
		prevR := -1.0
		for k := 1; k <= n; k++ {
			r, nd := rankMetrics(scores, truth, k)
			if r < 0 || r > 1 || nd < 0 || nd > 1 {
				return false
			}
			if r < prevR-1e-12 {
				return false // recall must grow with K
			}
			prevR = r
		}
		// Affine transform invariance.
		shifted := make([]float64, n)
		for i, s := range scores {
			shifted[i] = 3*s + 11
		}
		for _, k := range []int{1, n / 2, n} {
			if k == 0 {
				continue
			}
			r1, n1 := rankMetrics(scores, truth, k)
			r2, n2 := rankMetrics(shifted, truth, k)
			if r1 != r2 || n1 != n2 {
				return false
			}
		}
		// Oracle scores (the truth itself) maximise both metrics at k = n.
		r, nd := rankMetrics(truth, truth, n)
		return r == 1 && nd == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: fusing a score row with itself preserves its ranking.
func TestFuseSelfPreservesRankingProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(10)
		row := make([]float64, n)
		for i := range row {
			row[i] = rng.Float64()
		}
		norm := normalizeRow(row)
		if norm == nil {
			return true
		}
		// The row is min-max normalised; pairwise order must be unchanged.
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if (row[i] < row[j]) != (norm[i] < norm[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
