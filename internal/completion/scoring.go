package completion

import (
	"math"

	"cspm/internal/cspm"
	"cspm/internal/graph"
	"cspm/internal/tensor"
)

// Scorer ranks candidate attribute values for attribute-missing vertices
// using a mined a-star model (paper Algorithm 5): a core value whose a-star
// leafset resembles the vertex's neighbour attributes — and whose code is
// short — is a likely missing value.
type Scorer struct {
	model *cspm.Model
	g     *graph.Graph
}

// NewScorer builds a scorer from a model mined on (a training view of) g.
func NewScorer(model *cspm.Model, g *graph.Graph) *Scorer {
	return &Scorer{model: model, g: g}
}

// neighborAttrs collects the attribute-value set visible around v.
func (s *Scorer) neighborAttrs(v graph.VertexID) map[graph.AttrID]struct{} {
	out := make(map[graph.AttrID]struct{})
	for _, u := range s.g.Neighbors(v) {
		for _, a := range s.g.Attrs(u) {
			out[a] = struct{}{}
		}
	}
	return out
}

// similarity is the weight w of Algorithm 5: how well the a-star's leafset
// matches the neighbours' values. We use the Jaccard-style overlap
// |SL ∩ N| / |SL|, inverted into a weight where a worse match means a larger
// w and hence a smaller (more negative) score.
func similarity(leaf []graph.AttrID, neighbors map[graph.AttrID]struct{}) float64 {
	if len(leaf) == 0 {
		return 0
	}
	hit := 0
	for _, a := range leaf {
		if _, ok := neighbors[a]; ok {
			hit++
		}
	}
	return float64(hit) / float64(len(leaf))
}

// ScoreNode returns a score per attribute value for vertex v: higher is more
// likely. Values never seen in any a-star keep −Inf (Algorithm 5 line 1).
func (s *Scorer) ScoreNode(v graph.VertexID) []float64 {
	nA := s.g.NumAttrValues()
	scores := make([]float64, nA)
	for i := range scores {
		scores[i] = math.Inf(-1)
	}
	neighbors := s.neighborAttrs(v)
	for _, p := range s.model.Patterns {
		match := similarity(p.LeafValues, neighbors)
		// Algorithm 5 line 5–6: w grows as similarity falls; cl = −w·L(S).
		w := 2 - match
		cl := -w * p.CodeLen
		for _, cv := range p.CoreValues {
			if cl > scores[cv] {
				scores[cv] = cl
			}
		}
	}
	return scores
}

// ScoreMatrix scores every test node of the task, returning an n×|A| matrix
// with zero rows for non-test vertices.
func (s *Scorer) ScoreMatrix(task *Task) *tensor.Matrix {
	out := tensor.NewMatrix(task.G.NumVertices(), task.NumAttr)
	for _, v := range task.TestNodes {
		row := out.Row(int(v))
		copy(row, s.ScoreNode(v))
	}
	return out
}

// Fuse combines model probabilities with CSPM scores as in Fig. 7: both
// score vectors are min-max normalised per row and multiplied. Rows where
// CSPM is silent (all −Inf) fall back to the model alone.
func Fuse(modelScores, cspmScores *tensor.Matrix, testNodes []graph.VertexID) *tensor.Matrix {
	out := modelScores.Clone()
	for _, v := range testNodes {
		mrow := out.Row(int(v))
		if fused := FuseRows(mrow, cspmScores.Row(int(v))); fused != nil {
			copy(mrow, fused)
		}
	}
	return out
}

// FuseRows fuses one vertex's model and CSPM score rows with Fuse's exact
// per-row rule, without requiring whole-graph matrices — the row-granular
// entry point the serving layer scores requests through. It returns nil
// when the model row carries no finite signal (nothing to fuse onto).
func FuseRows(modelRow, cspmRow []float64) []float64 {
	mn := normalizeRow(modelRow)
	if mn == nil {
		return nil
	}
	cn := normalizeRow(cspmRow)
	if cn == nil {
		return mn
	}
	for j := range mn {
		mn[j] *= cn[j]
	}
	return mn
}

// normalizeRow min-max normalises a copy of row into [ε, 1]; returns nil if
// the row carries no finite signal. The ε floor keeps the multiplication
// from zeroing a value that one source is merely lukewarm about.
func normalizeRow(row []float64) []float64 {
	const eps = 1e-3
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range row {
		if math.IsInf(v, 0) || math.IsNaN(v) {
			continue
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if math.IsInf(lo, 1) {
		return nil // nothing finite
	}
	out := make([]float64, len(row))
	span := hi - lo
	for j, v := range row {
		switch {
		case math.IsInf(v, -1) || math.IsNaN(v):
			out[j] = eps / 2 // silent values rank below every scored value
		case span == 0:
			out[j] = 1
		default:
			out[j] = eps + (1-eps)*(v-lo)/span
		}
	}
	return out
}
