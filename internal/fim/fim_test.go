package fim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func smallDB() *DB {
	// Classic toy database.
	return NewDB([][]Item{
		{0, 1, 2},
		{0, 1},
		{0, 2},
		{1, 2},
		{0, 1, 2, 3},
	})
}

func TestNewDBNormalises(t *testing.T) {
	db := NewDB([][]Item{{2, 0, 2, 1}})
	want := Transaction{0, 1, 2}
	got := db.Txs[0]
	if len(got) != len(want) {
		t.Fatalf("tx = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("tx = %v, want %v", got, want)
		}
	}
	if db.NumItems != 3 {
		t.Fatalf("NumItems = %d, want 3", db.NumItems)
	}
}

func TestItemFreqs(t *testing.T) {
	db := smallDB()
	f := db.ItemFreqs()
	want := []int{4, 4, 4, 1}
	for i := range want {
		if f[i] != want[i] {
			t.Fatalf("freq[%d] = %d, want %d", i, f[i], want[i])
		}
	}
}

func TestEclatSupports(t *testing.T) {
	db := smallDB()
	sets, err := Eclat(db, EclatOptions{MinSupport: 2})
	if err != nil {
		t.Fatal(err)
	}
	bySig := map[string]int{}
	for _, s := range sets {
		sig := ""
		for _, it := range s.Items {
			sig += string(rune('a' + it))
		}
		bySig[sig] = s.Support
	}
	want := map[string]int{
		"a": 4, "b": 4, "c": 4,
		"ab": 3, "ac": 3, "bc": 3, "abc": 2,
	}
	if len(bySig) != len(want) {
		t.Fatalf("mined %v, want %v", bySig, want)
	}
	for sig, sup := range want {
		if bySig[sig] != sup {
			t.Errorf("support(%s) = %d, want %d", sig, bySig[sig], sup)
		}
	}
}

func TestEclatMinSupportValidation(t *testing.T) {
	if _, err := Eclat(smallDB(), EclatOptions{MinSupport: 0}); err == nil {
		t.Fatal("MinSupport 0 accepted")
	}
}

func TestEclatMaxLen(t *testing.T) {
	sets, err := Eclat(smallDB(), EclatOptions{MinSupport: 1, MaxLen: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range sets {
		if len(s.Items) > 1 {
			t.Fatalf("MaxLen=1 produced %v", s.Items)
		}
	}
	if len(sets) != 4 {
		t.Fatalf("%d singletons, want 4", len(sets))
	}
}

func TestEclatMaxResults(t *testing.T) {
	sets, err := Eclat(smallDB(), EclatOptions{MinSupport: 1, MaxResults: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) != 3 {
		t.Fatalf("%d results, want 3", len(sets))
	}
}

func TestContains(t *testing.T) {
	tx := Transaction{1, 3, 5, 9}
	if !Contains(tx, []Item{1, 5}) || !Contains(tx, []Item{9}) || !Contains(tx, nil) {
		t.Fatal("Contains false negative")
	}
	if Contains(tx, []Item{2}) || Contains(tx, []Item{5, 10}) {
		t.Fatal("Contains false positive")
	}
}

// Property: every itemset Eclat reports has support equal to a brute-force
// scan, and every frequent pair a brute-force scan finds is reported.
func TestEclatMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nTx := 5 + rng.Intn(20)
		nItems := 3 + rng.Intn(5)
		raw := make([][]Item, nTx)
		for i := range raw {
			for it := 0; it < nItems; it++ {
				if rng.Float64() < 0.4 {
					raw[i] = append(raw[i], Item(it))
				}
			}
		}
		db := NewDB(raw)
		minSup := 1 + rng.Intn(3)
		sets, err := Eclat(db, EclatOptions{MinSupport: minSup})
		if err != nil {
			return false
		}
		for _, s := range sets {
			n := 0
			for _, tx := range db.Txs {
				if Contains(tx, s.Items) {
					n++
				}
			}
			if n != s.Support || n < minSup {
				return false
			}
		}
		// Brute-force all pairs.
		reported := map[[2]Item]bool{}
		for _, s := range sets {
			if len(s.Items) == 2 {
				reported[[2]Item{s.Items[0], s.Items[1]}] = true
			}
		}
		for a := 0; a < nItems; a++ {
			for b := a + 1; b < nItems; b++ {
				n := 0
				for _, tx := range db.Txs {
					if Contains(tx, []Item{Item(a), Item(b)}) {
						n++
					}
				}
				if n >= minSup && !reported[[2]Item{Item(a), Item(b)}] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
