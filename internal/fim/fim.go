// Package fim implements frequent-itemset mining over transaction databases
// with the Eclat algorithm (vertical tid-list intersection). It is the
// substrate Krimp draws its candidate sets from (paper §II and §IV-F step 1:
// "a traditional compressing pattern mining algorithm can be applied on a
// transaction database composed of the attribute values of vertices").
package fim

import (
	"fmt"
	"sort"

	"cspm/internal/intset"
)

// Item is an item identifier; attribute values map 1:1 onto items.
type Item = int32

// Transaction is a sorted, duplicate-free set of items.
type Transaction []Item

// DB is a transaction database.
type DB struct {
	Txs      []Transaction
	NumItems int
}

// NewDB normalises raw transactions (sorting, deduplicating) and infers the
// item universe.
func NewDB(raw [][]Item) *DB {
	db := &DB{Txs: make([]Transaction, len(raw))}
	for i, tx := range raw {
		t := append(Transaction(nil), tx...)
		sort.Slice(t, func(a, b int) bool { return t[a] < t[b] })
		out := t[:0]
		var last Item = -1
		for _, it := range t {
			if it != last {
				out = append(out, it)
				last = it
			}
			if int(it) >= db.NumItems {
				db.NumItems = int(it) + 1
			}
		}
		db.Txs[i] = out
	}
	return db
}

// ItemFreqs counts per-item supports, indexed by item.
func (db *DB) ItemFreqs() []int {
	freq := make([]int, db.NumItems)
	for _, tx := range db.Txs {
		for _, it := range tx {
			freq[it]++
		}
	}
	return freq
}

// Itemset is a mined frequent itemset with its support.
type Itemset struct {
	Items   []Item // sorted
	Support int
}

// EclatOptions bounds the search.
type EclatOptions struct {
	MinSupport int // absolute support threshold (≥ 1)
	MaxLen     int // maximum itemset size (0 = unbounded)
	MaxResults int // stop after this many itemsets (0 = unbounded)
}

// Eclat mines all frequent itemsets of db (including singletons) using
// depth-first tid-list intersection. Results are deterministic: depth-first
// over ascending item order.
func Eclat(db *DB, opts EclatOptions) ([]Itemset, error) {
	if opts.MinSupport < 1 {
		return nil, fmt.Errorf("fim: MinSupport must be >= 1, got %d", opts.MinSupport)
	}
	// Vertical layout.
	tids := make([]intset.Set, db.NumItems)
	{
		buf := make([][]uint32, db.NumItems)
		for t, tx := range db.Txs {
			for _, it := range tx {
				buf[it] = append(buf[it], uint32(t))
			}
		}
		for i := range tids {
			tids[i] = intset.FromSorted(buf[i])
		}
	}
	type node struct {
		item Item
		tids intset.Set
	}
	var frontier []node
	for i := 0; i < db.NumItems; i++ {
		if tids[i].Len() >= opts.MinSupport {
			frontier = append(frontier, node{Item(i), tids[i]})
		}
	}
	var out []Itemset
	full := func() bool { return opts.MaxResults > 0 && len(out) >= opts.MaxResults }
	var dfs func(prefix []Item, ext []node)
	dfs = func(prefix []Item, ext []node) {
		for i, n := range ext {
			if full() {
				return
			}
			items := append(append([]Item(nil), prefix...), n.item)
			out = append(out, Itemset{Items: items, Support: n.tids.Len()})
			if opts.MaxLen > 0 && len(items) >= opts.MaxLen {
				continue
			}
			var next []node
			for _, m := range ext[i+1:] {
				inter := n.tids.Intersect(m.tids)
				if inter.Len() >= opts.MinSupport {
					next = append(next, node{m.item, inter})
				}
			}
			if len(next) > 0 {
				dfs(items, next)
			}
		}
	}
	dfs(nil, frontier)
	if opts.MaxResults > 0 && len(out) > opts.MaxResults {
		out = out[:opts.MaxResults]
	}
	return out, nil
}

// Contains reports whether tx (sorted) contains all items of set (sorted).
func Contains(tx Transaction, set []Item) bool {
	i := 0
	for _, want := range set {
		for i < len(tx) && tx[i] < want {
			i++
		}
		if i >= len(tx) || tx[i] != want {
			return false
		}
		i++
	}
	return true
}
