// Package epoch provides a generation-stamped visited set over dense
// integer keys. Bump invalidates every mark in O(1) — no clearing between
// uses — which makes it the allocation-free replacement for the per-call
// dedup maps on the mining hot paths (invdb's union spell-out, cspm's
// co-occurring pair enumeration; see DESIGN.md "scratch arenas").
package epoch

// Set is a visited set keyed by small non-negative integers. The zero value
// is ready to use; storage grows on demand and is never shrunk. Not safe
// for concurrent use.
type Set struct {
	stamp []uint32
	cur   uint32
}

// Grow pre-sizes the stamp array for keys < n, preserving current marks.
// Mark grows automatically; Grow just hoists the allocation out of loops.
func (s *Set) Grow(n int) {
	if n > len(s.stamp) {
		grown := make([]uint32, n+n/2)
		copy(grown, s.stamp)
		s.stamp = grown
	}
}

// Bump starts a fresh generation, invalidating all marks. On the
// (astronomically rare) uint32 wraparound the stamps are cleared so stale
// marks from 2^32 generations ago cannot collide.
func (s *Set) Bump() {
	s.cur++
	if s.cur == 0 {
		clear(s.stamp)
		s.cur = 1
	}
}

// Mark stamps key k in the current generation and reports whether it was
// unseen, growing the stamp array as needed. The zero value starts in a
// valid first generation (lazily, since zero stamps must not read as seen).
func (s *Set) Mark(k int) bool {
	if s.cur == 0 {
		s.cur = 1
	}
	if k >= len(s.stamp) {
		s.Grow(k + 1)
	}
	if s.stamp[k] == s.cur {
		return false
	}
	s.stamp[k] = s.cur
	return true
}

// Generation exposes the current generation counter (diagnostics/tests).
func (s *Set) Generation() uint32 { return s.cur }

// SetGeneration forces the generation counter (tests exercising wraparound).
func (s *Set) SetGeneration(g uint32) { s.cur = g }
