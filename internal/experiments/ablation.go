package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"cspm/internal/cspm"
	"cspm/internal/dataset"
	"cspm/internal/graph"
)

// AblationArm summarises one configuration of the model-cost ablation
// (DESIGN.md experiment A1) on the planted-pattern recovery task.
type AblationArm struct {
	Name        string
	Iterations  int
	Patterns    int
	FinalDL     float64
	Recovered   int // planted patterns mined exactly
	TopPolluted int // noise-bearing patterns ranked above the worst planted one
}

// AblationModelCost mines the planted-pattern graph with and without the
// L(M) term in the merge gain, measuring recovery quality. The model cost
// is this implementation's reconstruction of the paper's "cost increase of
// the new pattern's leafset" (§IV-E); the ablation quantifies what it buys.
func AblationModelCost(seed int64) []AblationArm {
	cfg := dataset.DefaultPlanted()
	cfg.Seed = seed
	arms := []struct {
		name    string
		disable bool
	}{
		{"with-model-cost", false},
		{"data-gain-only", true},
	}
	var out []AblationArm
	for _, a := range arms {
		g, truth := dataset.Planted(cfg)
		m := cspm.MineWithOptions(g, cspm.Options{CollectStats: true, DisableModelCost: a.disable})
		arm := AblationArm{
			Name:       a.name,
			Iterations: m.Iterations,
			Patterns:   len(m.Patterns),
			FinalDL:    m.FinalDL,
		}
		vocab := g.Vocab()
		worstPlanted := 0.0
		for _, tp := range truth {
			if codeLen, ok := findPattern(m, vocab, tp); ok {
				arm.Recovered++
				if codeLen > worstPlanted {
					worstPlanted = codeLen
				}
			}
		}
		for _, p := range m.Patterns {
			if p.CodeLen >= worstPlanted {
				break
			}
			if hasNoise(vocab, p.CoreValues) || hasNoise(vocab, p.LeafValues) {
				arm.TopPolluted++
			}
		}
		out = append(out, arm)
	}
	return out
}

func findPattern(m *cspm.Model, vocab *graph.Vocab, tp dataset.TruePattern) (float64, bool) {
	want := patternKey(tp.Core, tp.Leaf)
	for _, p := range m.Patterns {
		core := make([]string, len(p.CoreValues))
		for i, a := range p.CoreValues {
			core[i] = vocab.Name(a)
		}
		leaf := make([]string, len(p.LeafValues))
		for i, a := range p.LeafValues {
			leaf[i] = vocab.Name(a)
		}
		if patternKey(core, leaf) == want {
			return p.CodeLen, true
		}
	}
	return 0, false
}

func patternKey(core, leaf []string) string {
	c := append([]string(nil), core...)
	l := append([]string(nil), leaf...)
	sort.Strings(c)
	sort.Strings(l)
	return strings.Join(c, ",") + "|" + strings.Join(l, ",")
}

func hasNoise(vocab *graph.Vocab, ids []graph.AttrID) bool {
	for _, id := range ids {
		if strings.HasPrefix(vocab.Name(id), "noise") {
			return true
		}
	}
	return false
}

// PrintAblation renders the ablation arms.
func PrintAblation(w io.Writer, arms []AblationArm) {
	fmt.Fprintf(w, "%-18s %10s %9s %12s %10s %12s\n",
		"Config", "iters", "patterns", "finalDL", "recovered", "topPolluted")
	for _, a := range arms {
		fmt.Fprintf(w, "%-18s %10d %9d %12.1f %10d %12d\n",
			a.Name, a.Iterations, a.Patterns, a.FinalDL, a.Recovered, a.TopPolluted)
	}
}
