package experiments

import (
	"bytes"
	"strings"
	"testing"

	"cspm/internal/cspm"
)

func TestTable2Shape(t *testing.T) {
	rows := Table2(Small, 1)
	if len(rows) != 4 {
		t.Fatalf("%d rows, want 4", len(rows))
	}
	want := map[string]int{DBLPName: 2723, DBLPTrendName: 2723, USFlightName: 280}
	for _, r := range rows {
		if n, ok := want[r.Name]; ok && r.Nodes != n {
			t.Errorf("%s nodes = %d, want %d", r.Name, r.Nodes, n)
		}
		if r.Coresets == 0 || r.Edges == 0 {
			t.Errorf("%s has empty stats: %+v", r.Name, r)
		}
	}
	var buf bytes.Buffer
	PrintTable2(&buf, rows)
	if !strings.Contains(buf.String(), "DBLP-Trend") {
		t.Error("render missing dataset name")
	}
}

func TestTable3SmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("runtime experiment")
	}
	rows := Table3(Table3Options{Scale: Small, Seed: 1, SkipBasicOverNodes: 1})
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.CSPMPartial <= 0 || r.SLIM <= 0 {
			t.Errorf("%s: missing timings %+v", r.Name, r)
		}
		if r.PartialDL > r.BaselineDL {
			t.Errorf("%s: Partial expanded DL", r.Name)
		}
		if r.BasicRan {
			t.Errorf("%s: Basic should be skipped under cap 1", r.Name)
		}
	}
	var buf bytes.Buffer
	PrintTable3(&buf, rows)
	if !strings.Contains(buf.String(), "-") {
		t.Error("skipped Basic should render as '-'")
	}
}

func TestFig5RatiosAndShape(t *testing.T) {
	if testing.Short() {
		t.Skip("mining sweep")
	}
	series := Fig5(Small, 1, 1)
	if len(series) == 0 {
		t.Fatal("no series")
	}
	means := make(map[string]map[cspm.Variant]float64)
	for _, s := range series {
		for _, r := range s.Ratios {
			if r < 0 || r > 1+1e-9 {
				t.Fatalf("%s/%v ratio %v outside [0,1]", s.Dataset, s.Variant, r)
			}
		}
		if means[s.Dataset] == nil {
			means[s.Dataset] = make(map[cspm.Variant]float64)
		}
		means[s.Dataset][s.Variant] = s.Mean()
	}
	// Where both variants ran, Partial must update fewer gains per
	// iteration on average (the Fig. 5 claim).
	for ds, m := range means {
		basic, okB := m[cspm.Basic]
		partial, okP := m[cspm.Partial]
		if okB && okP && basic > 0 && partial >= basic {
			t.Errorf("%s: Partial mean ratio %.4f >= Basic %.4f", ds, partial, basic)
		}
	}
	var buf bytes.Buffer
	PrintFig5(&buf, series)
	if buf.Len() == 0 {
		t.Error("empty render")
	}
}

func TestFig6PatternsReadable(t *testing.T) {
	if testing.Short() {
		t.Skip("mining sweep")
	}
	pats := Fig6Patterns(Small, 1, 5)
	if len(pats[DBLPName]) == 0 {
		t.Fatal("no DBLP patterns")
	}
	// USFlight must surface the §VI-B(2) flight pattern ingredients.
	joined := strings.Join(pats[USFlightName], "\n")
	if !strings.Contains(joined, "NbDepart") {
		t.Errorf("USFlight patterns lack flight trends:\n%s", joined)
	}
	var buf bytes.Buffer
	PrintFig6(&buf, pats)
	if !strings.Contains(buf.String(), "Pokec") {
		t.Error("render missing Pokec section")
	}
}

func TestTable4FusionHelps(t *testing.T) {
	if testing.Short() {
		t.Skip("model training")
	}
	rows := Table4(Table4Options{Scale: Small, Seed: 2, Datasets: []string{"Cora"}, Epochs: 40})
	if len(rows) != 6 {
		t.Fatalf("%d rows, want 6 models", len(rows))
	}
	improved := 0
	for _, r := range rows {
		k := r.Ks[0]
		t.Logf("%-10s recall@%d base=%.4f fused=%.4f", r.Model, k,
			r.Base.RecallAtK[k], r.Fused.RecallAtK[k])
		if r.Fused.RecallAtK[k] >= r.Base.RecallAtK[k]-1e-9 {
			improved++
		}
	}
	// The paper's claim: fusion improves (or at least does not degrade)
	// every baseline. Allow one regression at toy scale.
	if improved < len(rows)-1 {
		t.Fatalf("fusion helped only %d/%d models", improved, len(rows))
	}
	var buf bytes.Buffer
	PrintTable4(&buf, rows)
	if !strings.Contains(buf.String(), "Avg.improvement") {
		t.Error("render missing improvement row")
	}
}

func TestFig8CSPMDominates(t *testing.T) {
	if testing.Short() {
		t.Skip("alarm simulation")
	}
	res := Fig8(Small, 3)
	if res.ValidRules == 0 {
		t.Fatal("no valid rules")
	}
	wins := 0
	for i := range res.Ks {
		if res.CSPM[i] >= res.ACOR[i] {
			wins++
		}
	}
	if wins < len(res.Ks)*3/4 {
		t.Fatalf("CSPM dominated at only %d/%d cutoffs (CSPM %v, ACOR %v)",
			wins, len(res.Ks), res.CSPM, res.ACOR)
	}
	// Both curves must be monotone and reach full coverage eventually.
	last := len(res.Ks) - 1
	if res.CSPM[last] < 0.99 || res.ACOR[last] < 0.99 {
		t.Fatalf("curves did not converge: CSPM %v ACOR %v", res.CSPM[last], res.ACOR[last])
	}
	for i := 1; i <= last; i++ {
		if res.CSPM[i] < res.CSPM[i-1] || res.ACOR[i] < res.ACOR[i-1] {
			t.Fatal("coverage curves must be monotone in K")
		}
	}
	var buf bytes.Buffer
	PrintFig8(&buf, res)
	if !strings.Contains(buf.String(), "topK") {
		t.Error("render missing header")
	}
}

func TestAblationModelCost(t *testing.T) {
	if testing.Short() {
		t.Skip("mining sweep")
	}
	arms := AblationModelCost(7)
	if len(arms) != 2 {
		t.Fatalf("%d arms", len(arms))
	}
	with, without := arms[0], arms[1]
	if with.Recovered < without.Recovered {
		t.Errorf("model cost hurt recovery: %d < %d", with.Recovered, without.Recovered)
	}
	// Without the MDL guard the miner merges at least as much.
	if without.Iterations < with.Iterations {
		t.Errorf("data-gain-only merged less: %d < %d", without.Iterations, with.Iterations)
	}
	var buf bytes.Buffer
	PrintAblation(&buf, arms)
	if !strings.Contains(buf.String(), "with-model-cost") {
		t.Error("render missing arm name")
	}
}

func TestTable1Matrix(t *testing.T) {
	rows := Table1()
	if len(rows) != 4 {
		t.Fatalf("%d capability rows, want 4", len(rows))
	}
	for _, r := range rows {
		if !r.Support["CSPM"] {
			t.Errorf("CSPM should support %q", r.Capability)
		}
		for _, alg := range Table1Algorithms {
			if _, ok := r.Support[alg]; !ok {
				t.Errorf("row %q missing column %s", r.Capability, alg)
			}
		}
	}
	var buf bytes.Buffer
	PrintTable1(&buf, rows)
	out := buf.String()
	for _, alg := range Table1Algorithms {
		if !strings.Contains(out, alg) {
			t.Errorf("render missing %s", alg)
		}
	}
}

func TestMiniGraphShape(t *testing.T) {
	g := MiniGraph(1)
	if g.NumVertices() != 600 {
		t.Fatalf("MiniGraph vertices = %d", g.NumVertices())
	}
	if !g.ComputeStats().IsConnected {
		t.Fatal("MiniGraph should be connected")
	}
}
