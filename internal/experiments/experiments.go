// Package experiments regenerates every table and figure of the paper's
// evaluation (§VI) on the synthetic dataset substitutes: Table II (dataset
// statistics), Table III (runtime comparison), Fig. 5 (gain-update ratio),
// Fig. 6 (example patterns), Table IV (node attribute completion) and
// Fig. 8 (alarm-rule coverage). Each experiment returns a structured result
// and can render itself as the text rows the paper reports.
package experiments

import (
	"fmt"
	"io"
	"time"

	"cspm/internal/cspm"
	"cspm/internal/dataset"
	"cspm/internal/graph"
	"cspm/internal/slim"
)

// Scale selects dataset sizes: Small keeps every experiment in CI seconds,
// Full approaches the paper's scale where laptop-feasible.
type Scale int

const (
	// Small is the test/CI scale.
	Small Scale = iota
	// Full is the benchmark scale.
	Full
)

// Dataset names used across experiments.
const (
	DBLPName      = "DBLP"
	DBLPTrendName = "DBLP-Trend"
	USFlightName  = "USFlight"
	PokecName     = "Pokec"
)

// BenchmarkGraphs instantiates the four Table II datasets at the given
// scale. Pokec is the only one that scales (the others have fixed paper
// sizes that are already laptop-friendly).
func BenchmarkGraphs(scale Scale, seed int64) map[string]*graph.Graph {
	pokec := dataset.PokecConfig{Nodes: 4000, Seed: seed, Genres: 914}
	if scale == Full {
		pokec.Nodes = 60000
	}
	return map[string]*graph.Graph{
		DBLPName:      dataset.DBLP(seed),
		DBLPTrendName: dataset.DBLPTrend(seed),
		USFlightName:  dataset.USFlight(seed),
		PokecName:     dataset.Pokec(pokec),
	}
}

// DatasetOrder is the presentation order used by all tables.
var DatasetOrder = []string{DBLPName, DBLPTrendName, USFlightName, PokecName}

// MiniGraph is a small attributed graph (a scaled-down Pokec) used by the
// Basic-vs-Partial ratio benchmarks, where a full CSPM-Basic run on the
// Table II datasets would take minutes per iteration.
func MiniGraph(seed int64) *graph.Graph {
	return dataset.Pokec(dataset.PokecConfig{Nodes: 600, Seed: seed, Genres: 120})
}

// Table2Row is one dataset-statistics row (paper Table II).
type Table2Row struct {
	Name     string
	Nodes    int
	Edges    int
	Coresets int // |S_c^M|: attribute values usable as coresets
}

// Table2 computes the dataset statistics.
func Table2(scale Scale, seed int64) []Table2Row {
	graphs := BenchmarkGraphs(scale, seed)
	rows := make([]Table2Row, 0, len(DatasetOrder))
	for _, name := range DatasetOrder {
		g := graphs[name]
		st := g.ComputeStats()
		rows = append(rows, Table2Row{
			Name:     name,
			Nodes:    st.Vertices,
			Edges:    st.Edges,
			Coresets: st.UsedCoresets,
		})
	}
	return rows
}

// PrintTable2 renders the rows like the paper's Table II.
func PrintTable2(w io.Writer, rows []Table2Row) {
	fmt.Fprintf(w, "%-12s %10s %12s %8s\n", "Dataset", "#Nodes", "#Edges", "|Sc|")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %10d %12d %8d\n", r.Name, r.Nodes, r.Edges, r.Coresets)
	}
}

// Table3Row is one runtime-comparison row (paper Table III).
type Table3Row struct {
	Name        string
	SLIM        time.Duration
	CSPMBasic   time.Duration
	BasicRan    bool // Basic is skipped on datasets above the cap (paper: "-" for Pokec)
	CSPMPartial time.Duration
	PartialDL   float64
	BaselineDL  float64
}

// Table3Options bounds the runtime experiment.
type Table3Options struct {
	Scale Scale
	Seed  int64
	// SkipBasicOverNodes mirrors the paper's "CSPM-Basic did not terminate
	// on Pokec within 48h": Basic is skipped on graphs above this size.
	// Defaults: 300 at Small scale (Basic costs minutes already on the
	// 280-airport USFlight), 5000 at Full (paper Table III runs Basic on
	// everything but Pokec).
	SkipBasicOverNodes int
	// Workers is passed through to cspm.Options.Workers: 0 (default) lets
	// gain evaluation use every core, 1 forces the serial baseline the
	// paper's single-threaded numbers correspond to. Timings change, mined
	// models do not (gain evaluation is deterministic across worker
	// counts).
	Workers int
}

// Table3 measures SLIM, CSPM-Basic and CSPM-Partial wall times per dataset.
func Table3(opts Table3Options) []Table3Row {
	if opts.SkipBasicOverNodes == 0 {
		if opts.Scale == Full {
			opts.SkipBasicOverNodes = 5000
		} else {
			opts.SkipBasicOverNodes = 300
		}
	}
	graphs := BenchmarkGraphs(opts.Scale, opts.Seed)
	rows := make([]Table3Row, 0, len(DatasetOrder))
	for _, name := range DatasetOrder {
		g := graphs[name]
		row := Table3Row{Name: name}

		start := time.Now()
		slim.MineGraph(g, slim.Options{})
		row.SLIM = time.Since(start)

		if g.NumVertices() <= opts.SkipBasicOverNodes {
			start = time.Now()
			cspm.MineWithOptions(g, cspm.Options{Variant: cspm.Basic, Workers: opts.Workers})
			row.CSPMBasic = time.Since(start)
			row.BasicRan = true
		}

		start = time.Now()
		m := cspm.MineWithOptions(g, cspm.Options{Variant: cspm.Partial, CollectStats: true, Workers: opts.Workers})
		row.CSPMPartial = time.Since(start)
		row.PartialDL = m.FinalDL
		row.BaselineDL = m.BaselineDL
		rows = append(rows, row)
	}
	return rows
}

// PrintTable3 renders the runtime comparison.
func PrintTable3(w io.Writer, rows []Table3Row) {
	fmt.Fprintf(w, "%-12s %14s %14s %14s\n", "Dataset", "SLIM", "CSPM-Basic", "CSPM-Partial")
	for _, r := range rows {
		basic := "-"
		if r.BasicRan {
			basic = r.CSPMBasic.Round(time.Millisecond).String()
		}
		fmt.Fprintf(w, "%-12s %14s %14s %14s\n", r.Name,
			r.SLIM.Round(time.Millisecond), basic, r.CSPMPartial.Round(time.Millisecond))
	}
}

// Fig5Series is the gain-update-ratio series of one (dataset, variant) pair.
type Fig5Series struct {
	Dataset string
	Variant cspm.Variant
	Ratios  []float64 // per iteration
}

// Fig5 runs both variants per dataset and collects the per-iteration
// gain-update ratios. Datasets above skipBasicOverNodes only get Partial
// (defaults mirror Table3: 300 at Small scale, 5000 at Full).
func Fig5(scale Scale, seed int64, skipBasicOverNodes int) []Fig5Series {
	if skipBasicOverNodes == 0 {
		if scale == Full {
			skipBasicOverNodes = 5000
		} else {
			skipBasicOverNodes = 300
		}
	}
	graphs := BenchmarkGraphs(scale, seed)
	var out []Fig5Series
	for _, name := range DatasetOrder {
		g := graphs[name]
		variants := []cspm.Variant{cspm.Partial}
		if g.NumVertices() <= skipBasicOverNodes {
			variants = append(variants, cspm.Basic)
		}
		for _, v := range variants {
			m := cspm.MineWithOptions(g, cspm.Options{Variant: v, CollectStats: true})
			s := Fig5Series{Dataset: name, Variant: v}
			for _, it := range m.PerIter {
				s.Ratios = append(s.Ratios, it.UpdateRatio)
			}
			out = append(out, s)
		}
	}
	return out
}

// Mean returns the average update ratio of the series.
func (s Fig5Series) Mean() float64 {
	if len(s.Ratios) == 0 {
		return 0
	}
	sum := 0.0
	for _, r := range s.Ratios {
		sum += r
	}
	return sum / float64(len(s.Ratios))
}

// PrintFig5 renders each series as sampled points plus its mean.
func PrintFig5(w io.Writer, series []Fig5Series) {
	for _, s := range series {
		fmt.Fprintf(w, "%s / %v: iterations=%d mean-update-ratio=%.4f\n",
			s.Dataset, s.Variant, len(s.Ratios), s.Mean())
		step := len(s.Ratios) / 10
		if step == 0 {
			step = 1
		}
		for i := 0; i < len(s.Ratios); i += step {
			fmt.Fprintf(w, "  iter %4d: %.4f\n", i+1, s.Ratios[i])
		}
	}
}

// Fig6Patterns returns the top multi-leaf patterns per dataset, rendered
// with attribute names (the paper's Fig. 6 / §VI-B examples).
func Fig6Patterns(scale Scale, seed int64, topK int) map[string][]string {
	graphs := BenchmarkGraphs(scale, seed)
	out := make(map[string][]string)
	for _, name := range DatasetOrder {
		g := graphs[name]
		m := cspm.Mine(g)
		multi := m.MultiLeaf()
		if topK > len(multi) {
			topK = len(multi)
		}
		for _, p := range multi[:topK] {
			out[name] = append(out[name],
				fmt.Sprintf("%s  fL=%d fc=%d len=%.2f", p.Format(g.Vocab()), p.FL, p.FC, p.CodeLen))
		}
	}
	return out
}

// PrintFig6 renders the example patterns.
func PrintFig6(w io.Writer, patterns map[string][]string) {
	for _, name := range DatasetOrder {
		fmt.Fprintf(w, "%s:\n", name)
		for _, p := range patterns[name] {
			fmt.Fprintf(w, "  %s\n", p)
		}
	}
}
