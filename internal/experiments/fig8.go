package experiments

import (
	"fmt"
	"io"

	"cspm/internal/alarm"
)

// Fig8Result holds the coverage curves of CSPM and ACOR (paper Fig. 8).
type Fig8Result struct {
	Ks         []int
	CSPM       []float64
	ACOR       []float64
	ValidRules int
}

// Fig8 simulates the alarm log, mines rules with both algorithms, and
// evaluates coverage over a K sweep.
func Fig8(scale Scale, seed int64) Fig8Result {
	cfg := alarm.DefaultSim()
	cfg.Seed = seed
	if scale == Small {
		cfg.Devices = 120
		cfg.Types = 1200
		cfg.Rules = 6
		cfg.DerivedPerRule = 6
		cfg.RootEvents = 900
		cfg.NoiseEvents = 500
		cfg.ChattyEvents = 1200
		cfg.RareEvents = 150
		cfg.Bursts = 150
	}
	log, lib, err := alarm.Simulate(cfg)
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err)) // config bug
	}
	valid := lib.PairRules()
	ks := []int{25, 50, 100, 150, 250, 400, 600, 1000, 1500, 2000}
	res := Fig8Result{Ks: ks, ValidRules: len(valid)}
	res.CSPM = alarm.CoverageCurve(alarm.CSPMRules(log, cfg.WindowSec), valid, ks)
	res.ACOR = alarm.CoverageCurve(alarm.ACORRules(log, cfg.WindowSec), valid, ks)
	return res
}

// PrintFig8 renders the two coverage curves.
func PrintFig8(w io.Writer, r Fig8Result) {
	fmt.Fprintf(w, "valid pair rules: %d\n", r.ValidRules)
	fmt.Fprintf(w, "%8s %10s %10s\n", "topK", "CSPM", "ACOR")
	for i, k := range r.Ks {
		fmt.Fprintf(w, "%8d %10.3f %10.3f\n", k, r.CSPM[i], r.ACOR[i])
	}
}
