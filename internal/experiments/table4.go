package experiments

import (
	"fmt"
	"io"
	"sort"

	"cspm/internal/completion"
	"cspm/internal/cspm"
	"cspm/internal/dataset"
	"cspm/internal/gnn"
)

// Table4Row is one (dataset, model) pair with and without the CSPM scoring
// module (paper Table IV).
type Table4Row struct {
	Dataset string
	Model   string
	Ks      []int
	Base    completion.Metrics // model alone
	Fused   completion.Metrics // CSPM ⊗ model
}

// Improvement returns the relative Recall@K gain of fusion at the smallest K.
func (r Table4Row) Improvement() float64 {
	k := r.Ks[0]
	if r.Base.RecallAtK[k] == 0 {
		return 0
	}
	return (r.Fused.RecallAtK[k] - r.Base.RecallAtK[k]) / r.Base.RecallAtK[k]
}

// Table4Options configures the completion experiment.
type Table4Options struct {
	Scale        Scale
	Seed         int64
	TestFraction float64
	Epochs       int // training epochs per model (0 = scale default)
	Datasets     []string
}

// Table4Datasets is the paper's dataset order.
var Table4Datasets = []string{"Cora", "Citeseer", "DBLP"}

// table4KSet mirrors the paper: DBLP uses smaller K (fewer values per node).
func table4KSet(name string) []int {
	if name == "DBLP" {
		return []int{3, 5, 10}
	}
	return []int{10, 20, 50}
}

// Table4 runs every model with and without CSPM fusion on the citation
// datasets and reports Recall@K / NDCG@K.
func Table4(opts Table4Options) []Table4Row {
	if opts.TestFraction == 0 {
		opts.TestFraction = 0.1
	}
	if len(opts.Datasets) == 0 {
		opts.Datasets = Table4Datasets
	}
	epochs := opts.Epochs
	if epochs == 0 {
		if opts.Scale == Full {
			epochs = 150
		} else {
			epochs = 60
		}
	}
	var rows []Table4Row
	for _, name := range opts.Datasets {
		cfg := citationConfig(name, opts.Seed, opts.Scale)
		g, _ := dataset.Citation(cfg)
		task, err := completion.NewTask(g, opts.TestFraction, opts.Seed)
		if err != nil {
			panic(fmt.Sprintf("experiments: %v", err)) // config bug, not runtime input
		}
		ks := table4KSet(name)
		// CSPM mines the training view only (no test-attribute leakage).
		model := cspm.Mine(task.TrainGraph())
		scorer := completion.NewScorer(model, task.TrainGraph())
		cspmScores := scorer.ScoreMatrix(task)

		mcfg := gnn.Config{Hidden: 32, Epochs: epochs, LR: 0.02, Seed: opts.Seed}
		models := []gnn.Model{
			gnn.NeighAggre{},
			gnn.NewVAE(mcfg),
			gnn.NewGCN(mcfg),
			gnn.NewGAT(mcfg),
			gnn.NewGraphSage(mcfg),
			gnn.NewSAT(mcfg),
		}
		for _, m := range models {
			scores := m.FitPredict(task)
			base := completion.Evaluate(task, scores, ks)
			fused := completion.Evaluate(task, completion.Fuse(scores, cspmScores, task.TestNodes), ks)
			rows = append(rows, Table4Row{
				Dataset: name, Model: m.Name(), Ks: ks, Base: base, Fused: fused,
			})
		}
	}
	return rows
}

// citationConfig scales the citation datasets: Small shrinks node counts so
// the dense models train in seconds.
func citationConfig(name string, seed int64, scale Scale) dataset.CitationConfig {
	var cfg dataset.CitationConfig
	switch name {
	case "Citeseer":
		cfg = dataset.Citeseer(seed)
	case "DBLP":
		cfg = dataset.DBLPCitation(seed)
	default:
		cfg = dataset.Cora(seed)
	}
	if scale == Small {
		cfg.Nodes /= 4
		cfg.Attrs /= 2
	}
	return cfg
}

// PrintTable4 renders the completion table with per-dataset average
// improvements, like the paper's "Avg.improvement" rows.
func PrintTable4(w io.Writer, rows []Table4Row) {
	byDataset := make(map[string][]Table4Row)
	var order []string
	for _, r := range rows {
		if _, ok := byDataset[r.Dataset]; !ok {
			order = append(order, r.Dataset)
		}
		byDataset[r.Dataset] = append(byDataset[r.Dataset], r)
	}
	for _, name := range order {
		group := byDataset[name]
		ks := group[0].Ks
		fmt.Fprintf(w, "== %s (K = %v)\n", name, ks)
		fmt.Fprintf(w, "%-18s", "Method")
		for _, k := range ks {
			fmt.Fprintf(w, " Recall@%-3d", k)
		}
		for _, k := range ks {
			fmt.Fprintf(w, " NDCG@%-5d", k)
		}
		fmt.Fprintln(w)
		sumImpr := make(map[int]float64)
		for _, r := range group {
			printMetricRow(w, r.Model, r.Base, ks)
			printMetricRow(w, "CSPM+"+r.Model, r.Fused, ks)
			for _, k := range ks {
				if r.Base.RecallAtK[k] > 0 {
					sumImpr[k] += (r.Fused.RecallAtK[k] - r.Base.RecallAtK[k]) / r.Base.RecallAtK[k]
				}
			}
		}
		fmt.Fprintf(w, "%-18s", "Avg.improvement%")
		keys := append([]int(nil), ks...)
		sort.Ints(keys)
		for _, k := range keys {
			fmt.Fprintf(w, " %+9.2f%%", 100*sumImpr[k]/float64(len(group)))
		}
		fmt.Fprintln(w)
	}
}

func printMetricRow(w io.Writer, name string, m completion.Metrics, ks []int) {
	fmt.Fprintf(w, "%-18s", name)
	for _, k := range ks {
		fmt.Fprintf(w, " %10.4f", m.RecallAtK[k])
	}
	for _, k := range ks {
		fmt.Fprintf(w, " %10.4f", m.NDCGAtK[k])
	}
	fmt.Fprintln(w)
}
