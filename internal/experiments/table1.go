package experiments

import (
	"fmt"
	"io"
)

// Table1Row is one row of the paper's capability matrix (Table I).
type Table1Row struct {
	Capability string
	Support    map[string]bool // per algorithm
}

// Table1Algorithms is the paper's column order. All five are implemented in
// this repository (CSPM in internal/cspm, Krimp/SLIM in internal/krimp and
// internal/slim, VOG in internal/vog; GraphMDL's niche — compressing
// subgraphs in labelled graph collections — is the one external system not
// rebuilt, and its column reflects the published description).
var Table1Algorithms = []string{"CSPM", "Krimp", "SLIM", "GraphMDL", "VOG"}

// Table1 returns the capability matrix. Unlike the other experiments this
// is definitional — the test suite backs each "yes" for the implemented
// systems (e.g. attribute-pattern mining is exercised by the cspm tests,
// compression by the krimp/slim decode round-trips).
func Table1() []Table1Row {
	mk := func(cspm, krimp, slim, graphmdl, vog bool) map[string]bool {
		return map[string]bool{
			"CSPM": cspm, "Krimp": krimp, "SLIM": slim, "GraphMDL": graphmdl, "VOG": vog,
		}
	}
	return []Table1Row{
		{Capability: "Attributed graph?", Support: mk(true, false, false, false, false)},
		{Capability: "Attribute patterns?", Support: mk(true, false, false, false, false)},
		{Capability: "Compressing patterns?", Support: mk(true, true, true, true, false)},
		{Capability: "On-the-fly candidates?", Support: mk(true, false, true, false, false)},
	}
}

// PrintTable1 renders the matrix like the paper.
func PrintTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintf(w, "%-24s", "")
	for _, alg := range Table1Algorithms {
		fmt.Fprintf(w, " %-9s", alg)
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		fmt.Fprintf(w, "%-24s", r.Capability)
		for _, alg := range Table1Algorithms {
			mark := "no"
			if r.Support[alg] {
				mark = "yes"
			}
			fmt.Fprintf(w, " %-9s", mark)
		}
		fmt.Fprintln(w)
	}
}
