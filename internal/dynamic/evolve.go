// Online evolution support: the bridge from this package's offline snapshot
// sequences to the serving subsystem's mutation log. Materialize renders one
// snapshot as a static graph, DiffSnapshots turns consecutive snapshots into
// the edit batches that evolve one into the next, and RandomEvolution
// generates seeded grow/shrink edit sequences (vertex adds and deletes
// included) with a materialized reference graph per step — the ground truth
// the serve-level equivalence suite mines against.
package dynamic

import (
	"fmt"
	"math/rand"
	"sort"

	"cspm/internal/graph"
)

// Materialize renders snapshot t as a static attributed graph over the full
// fixed vertex set (attributes and edges of that snapshot only, no temporal
// encoding). Attribute interning order is per-call (ascending vertex, then
// the snapshot's value order); compare materialized models by name-canonical
// digest, not by interned id.
func (d *Graph) Materialize(t int) (*graph.Graph, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if t < 0 || t >= len(d.Snapshots) {
		return nil, fmt.Errorf("dynamic: snapshot %d out of range [0,%d)", t, len(d.Snapshots))
	}
	s := d.Snapshots[t]
	b := graph.NewBuilder(d.NumVertices)
	for v := 0; v < d.NumVertices; v++ {
		for _, val := range s.Attrs[graph.VertexID(v)] {
			if err := b.AddAttr(graph.VertexID(v), val); err != nil {
				return nil, err
			}
		}
	}
	for _, e := range s.Edges {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			return nil, err
		}
	}
	return b.Build(), nil
}

// DiffSnapshots expresses the snapshot sequence as edit batches: batch t-1
// of the result transforms Materialize(t-1) into Materialize(t) when applied
// through graph.Rebuild (attribute deletes and adds, then edge deletes and
// adds; all deterministic, ascending order). Feeding the batches to a
// serving mutation log replays the offline dynamic graph as a live workload.
func DiffSnapshots(d *Graph) ([][]graph.Edit, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	out := make([][]graph.Edit, 0, max(0, len(d.Snapshots)-1))
	for t := 1; t < len(d.Snapshots); t++ {
		prev, cur := d.Snapshots[t-1], d.Snapshots[t]
		var batch []graph.Edit
		for v := 0; v < d.NumVertices; v++ {
			pv := stringSet(prev.Attrs[graph.VertexID(v)])
			cv := stringSet(cur.Attrs[graph.VertexID(v)])
			for _, val := range sortedKeys(pv) {
				if !cv[val] {
					batch = append(batch, graph.Edit{Op: graph.EditDelAttr, U: graph.VertexID(v), Value: val})
				}
			}
			for _, val := range sortedKeys(cv) {
				if !pv[val] {
					batch = append(batch, graph.Edit{Op: graph.EditAddAttr, U: graph.VertexID(v), Value: val})
				}
			}
		}
		pe := edgeSet(prev.Edges)
		ce := edgeSet(cur.Edges)
		for _, e := range sortedEdges(pe) {
			if !ce[e] {
				batch = append(batch, graph.Edit{Op: graph.EditDelEdge, U: e[0], V: e[1]})
			}
		}
		for _, e := range sortedEdges(ce) {
			if !pe[e] {
				batch = append(batch, graph.Edit{Op: graph.EditAddEdge, U: e[0], V: e[1]})
			}
		}
		out = append(out, batch)
	}
	return out, nil
}

// EvolutionOptions sizes a RandomEvolution run. The zero value gets small
// non-zero defaults.
type EvolutionOptions struct {
	// InitialVertices is |V| of the starting graph (default 8).
	InitialVertices int
	// Steps is the number of edit batches to generate (default 6).
	Steps int
	// OpsPerStep is the number of edits per batch (default 4).
	OpsPerStep int
	// Values is the attribute palette (default a six-value palette).
	Values []string
}

// Evolution is one generated grow/shrink history: a starting graph, one
// edit batch per step, and the materialized reference graph AFTER each step
// (States[i] is Start with Batches[..i] applied — what an online server
// publishing after batch i must be bit-equivalent to mining).
type Evolution struct {
	Start   *graph.Graph
	Batches [][]graph.Edit
	States  []*graph.Graph
}

// RandomEvolution generates a seeded, deterministic evolving-graph history
// whose batches interleave vertex adds and deletes with attribute and edge
// edits. Every batch is valid at its application point: the generator
// applies each batch through graph.Rebuild as it goes and draws the next
// batch against the current state, exactly like an online client that reads
// its own writes.
func RandomEvolution(seed int64, opts EvolutionOptions) (*Evolution, error) {
	if opts.InitialVertices <= 0 {
		opts.InitialVertices = 8
	}
	if opts.Steps <= 0 {
		opts.Steps = 6
	}
	if opts.OpsPerStep <= 0 {
		opts.OpsPerStep = 4
	}
	if len(opts.Values) == 0 {
		opts.Values = []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta"}
	}
	rng := rand.New(rand.NewSource(seed))

	b := graph.NewBuilder(opts.InitialVertices)
	for v := 0; v < opts.InitialVertices; v++ {
		_ = b.AddAttr(graph.VertexID(v), opts.Values[rng.Intn(len(opts.Values))])
		if v > 0 && rng.Intn(2) == 0 {
			_ = b.AddEdge(graph.VertexID(v), graph.VertexID(rng.Intn(v)))
		}
	}
	ev := &Evolution{Start: b.Build()}

	cur := ev.Start
	for step := 0; step < opts.Steps; step++ {
		batch := make([]graph.Edit, 0, opts.OpsPerStep)
		n := cur.NumVertices() // running count while drawing this batch
		for len(batch) < opts.OpsPerStep {
			e, ok := drawEdit(rng, n, opts.Values)
			if !ok {
				continue
			}
			batch = append(batch, e)
			if e.Op == graph.EditAddVertex {
				n++
			} else if e.Op == graph.EditDelVertex {
				n--
			}
		}
		next, err := graph.Rebuild(cur, batch)
		if err != nil {
			return nil, fmt.Errorf("dynamic: generated invalid batch at step %d: %w", step, err)
		}
		ev.Batches = append(ev.Batches, batch)
		ev.States = append(ev.States, next)
		cur = next
	}
	return ev, nil
}

// drawEdit proposes one edit valid against a graph of n vertices, where n
// already reflects earlier edits of the same in-progress batch — vertex ids
// are drawn against the running count, which keeps every draw in range no
// matter how earlier deletes shifted the id frame. ok=false asks the caller
// to redraw.
func drawEdit(rng *rand.Rand, n int, palette []string) (graph.Edit, bool) {
	switch rng.Intn(10) {
	case 0, 1: // add_vertex, sometimes immediately wired in
		return graph.Edit{Op: graph.EditAddVertex}, true
	case 2: // del_vertex (keep the graph non-trivial)
		if n <= 2 {
			return graph.Edit{}, false
		}
		return graph.Edit{Op: graph.EditDelVertex, U: graph.VertexID(rng.Intn(n))}, true
	case 3, 4, 5: // add_attr
		return graph.Edit{Op: graph.EditAddAttr, U: graph.VertexID(rng.Intn(n)),
			Value: palette[rng.Intn(len(palette))]}, true
	case 6: // del_attr (may be a no-op; still a legal edit)
		return graph.Edit{Op: graph.EditDelAttr, U: graph.VertexID(rng.Intn(n)),
			Value: palette[rng.Intn(len(palette))]}, true
	case 7, 8: // add_edge
		if n < 2 {
			return graph.Edit{}, false
		}
		u := rng.Intn(n)
		v := rng.Intn(n - 1)
		if v >= u {
			v++
		}
		return graph.Edit{Op: graph.EditAddEdge, U: graph.VertexID(u), V: graph.VertexID(v)}, true
	default: // del_edge (may be a no-op)
		if n < 2 {
			return graph.Edit{}, false
		}
		u := rng.Intn(n)
		v := rng.Intn(n - 1)
		if v >= u {
			v++
		}
		return graph.Edit{Op: graph.EditDelEdge, U: graph.VertexID(u), V: graph.VertexID(v)}, true
	}
}

func stringSet(vals []string) map[string]bool {
	out := make(map[string]bool, len(vals))
	for _, v := range vals {
		out[v] = true
	}
	return out
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func edgeSet(edges [][2]graph.VertexID) map[[2]graph.VertexID]bool {
	out := make(map[[2]graph.VertexID]bool, len(edges))
	for _, e := range edges {
		u, v := e[0], e[1]
		if u > v {
			u, v = v, u
		}
		out[[2]graph.VertexID{u, v}] = true
	}
	return out
}

func sortedEdges(m map[[2]graph.VertexID]bool) [][2]graph.VertexID {
	out := make([][2]graph.VertexID, 0, len(m))
	for e := range m {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}
