package dynamic

import (
	"testing"

	"cspm/internal/cspm"
	"cspm/internal/graph"
)

func twoStep() *Graph {
	// Three vertices in a path; "hot" on v0 at t0 is followed by "warm" on
	// its neighbour v1 at t1 in both transitions.
	return &Graph{
		NumVertices: 3,
		Snapshots: []Snapshot{
			{
				Attrs: map[graph.VertexID][]string{0: {"hot"}, 2: {"idle"}},
				Edges: [][2]graph.VertexID{{0, 1}, {1, 2}},
			},
			{
				Attrs: map[graph.VertexID][]string{0: {"hot"}, 1: {"warm"}},
				Edges: [][2]graph.VertexID{{0, 1}, {1, 2}},
			},
			{
				Attrs: map[graph.VertexID][]string{1: {"warm"}, 2: {"idle"}},
				Edges: [][2]graph.VertexID{{0, 1}, {1, 2}},
			},
		},
	}
}

func TestValidate(t *testing.T) {
	if err := twoStep().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &Graph{NumVertices: 0}
	if err := bad.Validate(); err == nil {
		t.Error("zero vertices accepted")
	}
	oob := &Graph{NumVertices: 1, Snapshots: []Snapshot{{Attrs: map[graph.VertexID][]string{5: {"x"}}}}}
	if err := oob.Validate(); err == nil {
		t.Error("out-of-range vertex accepted")
	}
	loop := &Graph{NumVertices: 2, Snapshots: []Snapshot{{Edges: [][2]graph.VertexID{{1, 1}}}}}
	if err := loop.Validate(); err == nil {
		t.Error("self-loop accepted")
	}
}

func TestFlattenShape(t *testing.T) {
	d := twoStep()
	g, slices, err := Flatten(d, DefaultFlatten())
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != len(slices) {
		t.Fatalf("vertices %d != slices %d", g.NumVertices(), len(slices))
	}
	// DropEmptySlices keeps edge-referenced slices: v1 at t0 has no attrs
	// but carries edges — it must exist.
	found := false
	for _, s := range slices {
		if s.Vertex == 1 && s.Time == 0 {
			found = true
		}
	}
	if !found {
		t.Error("edge-referenced empty slice dropped")
	}
}

func TestFlattenTemporalEdges(t *testing.T) {
	d := twoStep()
	g, slices, err := Flatten(d, FlattenOptions{TemporalEdges: true, DropEmptySlices: true})
	if err != nil {
		t.Fatal(err)
	}
	at := func(v graph.VertexID, time int) graph.VertexID {
		for i, s := range slices {
			if s.Vertex == v && s.Time == time {
				return graph.VertexID(i)
			}
		}
		t.Fatalf("slice (%d,%d) missing", v, time)
		return 0
	}
	if !g.HasEdge(at(0, 0), at(0, 1)) {
		t.Error("temporal edge (v0,t0)-(v0,t1) missing")
	}
	g2, _, err := Flatten(d, FlattenOptions{TemporalEdges: false, DropEmptySlices: true})
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() >= g.NumEdges() {
		t.Error("disabling temporal edges should reduce the edge count")
	}
}

func TestFlattenKeepAllSlices(t *testing.T) {
	d := twoStep()
	g, slices, err := Flatten(d, FlattenOptions{TemporalEdges: true, DropEmptySlices: false})
	if err != nil {
		t.Fatal(err)
	}
	if len(slices) != 9 || g.NumVertices() != 9 {
		t.Fatalf("expected 3 vertices × 3 snapshots = 9 slices, got %d", len(slices))
	}
}

// TestMineTemporalPattern checks the end-to-end claim: mining the flattened
// product graph surfaces the planted temporal correlation hot→warm.
func TestMineTemporalPattern(t *testing.T) {
	// Repeat the hot→warm propagation many times for a strong signal.
	d := &Graph{NumVertices: 40}
	topo := make([][2]graph.VertexID, 0, 39)
	for v := graph.VertexID(1); v < 40; v++ {
		topo = append(topo, [2]graph.VertexID{v - 1, v})
	}
	for step := 0; step < 12; step++ {
		s := Snapshot{Attrs: make(map[graph.VertexID][]string), Edges: topo}
		for v := graph.VertexID(0); v < 40; v += 4 {
			if (step+int(v))%2 == 0 {
				s.Attrs[v] = []string{"hot"}
				if v+1 < 40 {
					s.Attrs[v+1] = []string{"warm"}
				}
			}
		}
		d.Snapshots = append(d.Snapshots, s)
	}
	g, _, err := Flatten(d, DefaultFlatten())
	if err != nil {
		t.Fatal(err)
	}
	m := cspm.Mine(g)
	hot, ok := g.Vocab().Lookup("hot")
	if !ok {
		t.Fatal("hot missing from vocab")
	}
	warm, _ := g.Vocab().Lookup("warm")
	found := false
	for _, p := range m.Patterns {
		if len(p.CoreValues) == 1 && p.CoreValues[0] == hot {
			for _, lv := range p.LeafValues {
				if lv == warm {
					found = true
				}
			}
		}
	}
	if !found {
		t.Fatal("temporal pattern ({hot},{...warm...}) not mined")
	}
}

func TestFromEventStream(t *testing.T) {
	topo := [][2]graph.VertexID{{0, 1}}
	events := []Event{
		{Vertex: 0, Value: "a", Time: 5},
		{Vertex: 0, Value: "a", Time: 7}, // duplicate in same window
		{Vertex: 1, Value: "b", Time: 65},
	}
	d, err := FromEventStream(2, topo, events, 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Snapshots) != 2 {
		t.Fatalf("%d snapshots, want 2", len(d.Snapshots))
	}
	if got := d.Snapshots[0].Attrs[0]; len(got) != 1 || got[0] != "a" {
		t.Fatalf("window 0 attrs = %v", got)
	}
	if got := d.Snapshots[1].Attrs[1]; len(got) != 1 || got[0] != "b" {
		t.Fatalf("window 1 attrs = %v", got)
	}
}

func TestFromEventStreamValidation(t *testing.T) {
	if _, err := FromEventStream(2, nil, nil, 0); err == nil {
		t.Error("zero window accepted")
	}
	if _, err := FromEventStream(2, nil, []Event{{Time: -1}}, 60); err == nil {
		t.Error("negative time accepted")
	}
}
