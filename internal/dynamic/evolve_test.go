package dynamic

import (
	"reflect"
	"testing"

	"cspm/internal/graph"
)

// evolveTestGraph is a 3-vertex, 3-snapshot dynamic graph with attribute
// and edge churn between every pair of consecutive snapshots.
func evolveTestGraph() *Graph {
	return &Graph{
		NumVertices: 3,
		Snapshots: []Snapshot{
			{
				Attrs: map[graph.VertexID][]string{0: {"up"}, 1: {"up", "hot"}},
				Edges: [][2]graph.VertexID{{0, 1}},
			},
			{
				Attrs: map[graph.VertexID][]string{0: {"up"}, 1: {"hot"}, 2: {"up"}},
				Edges: [][2]graph.VertexID{{0, 1}, {1, 2}},
			},
			{
				Attrs: map[graph.VertexID][]string{1: {"hot", "down"}, 2: {"up"}},
				Edges: [][2]graph.VertexID{{2, 1}},
			},
		},
	}
}

func sameStatic(t *testing.T, got, want *graph.Graph) {
	t.Helper()
	if got.NumVertices() != want.NumVertices() {
		t.Fatalf("|V| = %d, want %d", got.NumVertices(), want.NumVertices())
	}
	for v := 0; v < want.NumVertices(); v++ {
		gset := map[string]bool{}
		for _, a := range got.Attrs(graph.VertexID(v)) {
			gset[got.Vocab().Name(a)] = true
		}
		wset := map[string]bool{}
		for _, a := range want.Attrs(graph.VertexID(v)) {
			wset[want.Vocab().Name(a)] = true
		}
		if !reflect.DeepEqual(gset, wset) {
			t.Fatalf("vertex %d attrs = %v, want %v", v, gset, wset)
		}
		if !reflect.DeepEqual(got.Neighbors(graph.VertexID(v)), want.Neighbors(graph.VertexID(v))) {
			t.Fatalf("vertex %d neighbours = %v, want %v",
				v, got.Neighbors(graph.VertexID(v)), want.Neighbors(graph.VertexID(v)))
		}
	}
}

func TestMaterialize(t *testing.T) {
	d := evolveTestGraph()
	g1, err := d.Materialize(1)
	if err != nil {
		t.Fatal(err)
	}
	if g1.NumVertices() != 3 || g1.NumEdges() != 2 {
		t.Fatalf("got |V|=%d |E|=%d, want 3/2", g1.NumVertices(), g1.NumEdges())
	}
	if !g1.HasAttr(2, g1.Vocab().ID("up")) {
		t.Fatal("vertex 2 lost its attribute")
	}
	for _, bad := range []int{-1, 3} {
		if _, err := d.Materialize(bad); err == nil {
			t.Fatalf("Materialize(%d) accepted an out-of-range snapshot", bad)
		}
	}
	if _, err := (&Graph{NumVertices: 0}).Materialize(0); err == nil {
		t.Fatal("Materialize accepted an invalid dynamic graph")
	}
}

// TestDiffSnapshotsReplays pins the bridge contract: applying batch t-1
// through graph.Rebuild transforms Materialize(t-1) into Materialize(t).
func TestDiffSnapshotsReplays(t *testing.T) {
	d := evolveTestGraph()
	batches, err := DiffSnapshots(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(batches) != len(d.Snapshots)-1 {
		t.Fatalf("got %d batches, want %d", len(batches), len(d.Snapshots)-1)
	}
	cur, err := d.Materialize(0)
	if err != nil {
		t.Fatal(err)
	}
	for i, batch := range batches {
		if len(batch) == 0 {
			t.Fatalf("batch %d is empty despite churn between snapshots", i)
		}
		next, err := graph.Rebuild(cur, batch)
		if err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		want, err := d.Materialize(i + 1)
		if err != nil {
			t.Fatal(err)
		}
		sameStatic(t, next, want)
		cur = next
	}
	if _, err := DiffSnapshots(&Graph{NumVertices: 0}); err == nil {
		t.Fatal("DiffSnapshots accepted an invalid dynamic graph")
	}
}

func TestRandomEvolutionDeterministicAndValid(t *testing.T) {
	opts := EvolutionOptions{InitialVertices: 6, Steps: 8, OpsPerStep: 5}
	ev, err := RandomEvolution(42, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(ev.Batches) != 8 || len(ev.States) != 8 {
		t.Fatalf("got %d batches / %d states, want 8/8", len(ev.Batches), len(ev.States))
	}

	// States are exactly the chained rebuilds of the batches.
	cur := ev.Start
	sawVertexOp := false
	for i, batch := range ev.Batches {
		for _, e := range batch {
			if e.Op == graph.EditAddVertex || e.Op == graph.EditDelVertex {
				sawVertexOp = true
			}
		}
		next, err := graph.Rebuild(cur, batch)
		if err != nil {
			t.Fatalf("batch %d does not apply: %v", i, err)
		}
		sameStatic(t, ev.States[i], next)
		cur = next
	}
	if !sawVertexOp {
		t.Fatal("an 8x5 evolution drew no vertex add/delete; generator weights are off")
	}

	// Same seed, same history; different seed, different history.
	again, err := RandomEvolution(42, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again.Batches, ev.Batches) {
		t.Fatal("same seed produced a different evolution")
	}
	other, err := RandomEvolution(43, opts)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(other.Batches, ev.Batches) {
		t.Fatal("different seeds produced identical evolutions")
	}

	// Defaults fill in.
	small, err := RandomEvolution(1, EvolutionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if small.Start.NumVertices() != 8 || len(small.Batches) != 6 {
		t.Fatalf("zero-value options gave |V|=%d steps=%d", small.Start.NumVertices(), len(small.Batches))
	}
}
