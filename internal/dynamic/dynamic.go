// Package dynamic extends CSPM to dynamic attributed graphs — the paper's
// future-work item (2). A dynamic attributed graph is a sequence of
// snapshots over a fixed vertex set whose attributes (and optionally edges)
// change over time. The package encodes the sequence as a static "temporal
// product" graph — one vertex per (vertex, time) slice, intra-snapshot
// edges, plus temporal edges linking consecutive slices of the same vertex —
// so the standard miner discovers temporal a-stars: correlations between a
// vertex's values at time t and its neighbourhood's values at t and t+1.
// The telecom alarm study (§VI-D) is exactly this construction with
// windows as time steps.
package dynamic

import (
	"fmt"

	"cspm/internal/graph"
)

// Snapshot is one time step: per-vertex attribute values, plus the edges
// active at that step.
type Snapshot struct {
	Attrs map[graph.VertexID][]string
	Edges [][2]graph.VertexID
}

// Graph is a dynamic attributed graph over vertices 0..N-1.
type Graph struct {
	NumVertices int
	Snapshots   []Snapshot
}

// Validate checks vertex ranges across all snapshots.
func (d *Graph) Validate() error {
	if d.NumVertices <= 0 {
		return fmt.Errorf("dynamic: NumVertices must be positive, got %d", d.NumVertices)
	}
	for t, s := range d.Snapshots {
		for v := range s.Attrs {
			if int(v) >= d.NumVertices {
				return fmt.Errorf("dynamic: snapshot %d: vertex %d out of range", t, v)
			}
		}
		for _, e := range s.Edges {
			if int(e[0]) >= d.NumVertices || int(e[1]) >= d.NumVertices {
				return fmt.Errorf("dynamic: snapshot %d: edge %v out of range", t, e)
			}
			if e[0] == e[1] {
				return fmt.Errorf("dynamic: snapshot %d: self-loop on %d", t, e[0])
			}
		}
	}
	return nil
}

// FlattenOptions controls the product-graph encoding.
type FlattenOptions struct {
	// TemporalEdges links (v, t) to (v, t+1), letting a-stars span
	// consecutive steps (cause-precedes-effect patterns). Default true via
	// DefaultFlatten.
	TemporalEdges bool
	// DropEmptySlices omits (vertex, time) slices with no attributes, which
	// keeps alarm-style sparse activity graphs small. Slices referenced by
	// an active edge are kept regardless, so topology is preserved.
	DropEmptySlices bool
}

// DefaultFlatten is the recommended encoding.
func DefaultFlatten() FlattenOptions {
	return FlattenOptions{TemporalEdges: true, DropEmptySlices: true}
}

// Flatten encodes the dynamic graph as a static attributed graph plus the
// mapping from product vertices back to (vertex, time) slices.
func Flatten(d *Graph, opts FlattenOptions) (*graph.Graph, []SliceID, error) {
	if err := d.Validate(); err != nil {
		return nil, nil, err
	}
	type key struct {
		v graph.VertexID
		t int
	}
	index := make(map[key]graph.VertexID)
	var slices []SliceID
	alloc := func(k key) graph.VertexID {
		if id, ok := index[k]; ok {
			return id
		}
		id := graph.VertexID(len(slices))
		index[k] = id
		slices = append(slices, SliceID{Vertex: k.v, Time: k.t})
		return id
	}
	// First pass: decide which slices exist.
	for t, s := range d.Snapshots {
		for v, vals := range s.Attrs {
			if len(vals) > 0 || !opts.DropEmptySlices {
				alloc(key{v, t})
			}
		}
		if !opts.DropEmptySlices {
			for v := 0; v < d.NumVertices; v++ {
				alloc(key{graph.VertexID(v), t})
			}
		}
		for _, e := range s.Edges {
			alloc(key{e[0], t})
			alloc(key{e[1], t})
		}
	}
	b := graph.NewBuilder(len(slices))
	for t, s := range d.Snapshots {
		for v, vals := range s.Attrs {
			id, ok := index[key{v, t}]
			if !ok {
				continue
			}
			for _, val := range vals {
				if err := b.AddAttr(id, val); err != nil {
					return nil, nil, err
				}
			}
		}
		for _, e := range s.Edges {
			if err := b.AddEdge(index[key{e[0], t}], index[key{e[1], t}]); err != nil {
				return nil, nil, err
			}
		}
	}
	if opts.TemporalEdges {
		for t := range d.Snapshots {
			if t == 0 {
				continue
			}
			for v := 0; v < d.NumVertices; v++ {
				prev, okPrev := index[key{graph.VertexID(v), t - 1}]
				cur, okCur := index[key{graph.VertexID(v), t}]
				if okPrev && okCur {
					if err := b.AddEdge(prev, cur); err != nil {
						return nil, nil, err
					}
				}
			}
		}
	}
	return b.Build(), slices, nil
}

// SliceID maps a product vertex back to its (vertex, time) origin.
type SliceID struct {
	Vertex graph.VertexID
	Time   int
}

// FromEventStream builds a dynamic graph from timestamped attribute events
// over a static topology — the alarm-log shape. Events at time ts land in
// snapshot ts/windowSize; the topology repeats in every snapshot.
func FromEventStream(numVertices int, topology [][2]graph.VertexID, events []Event, windowSize int64) (*Graph, error) {
	if windowSize <= 0 {
		return nil, fmt.Errorf("dynamic: windowSize must be positive, got %d", windowSize)
	}
	maxWin := 0
	for _, e := range events {
		if e.Time < 0 {
			return nil, fmt.Errorf("dynamic: negative event time %d", e.Time)
		}
		if w := int(e.Time / windowSize); w > maxWin {
			maxWin = w
		}
	}
	d := &Graph{NumVertices: numVertices, Snapshots: make([]Snapshot, maxWin+1)}
	for t := range d.Snapshots {
		d.Snapshots[t] = Snapshot{Attrs: make(map[graph.VertexID][]string), Edges: topology}
	}
	for _, e := range events {
		w := int(e.Time / windowSize)
		s := d.Snapshots[w]
		s.Attrs[e.Vertex] = appendUnique(s.Attrs[e.Vertex], e.Value)
	}
	return d, d.Validate()
}

// Event is one timestamped attribute observation.
type Event struct {
	Vertex graph.VertexID
	Value  string
	Time   int64
}

func appendUnique(vals []string, v string) []string {
	for _, x := range vals {
		if x == v {
			return vals
		}
	}
	return append(vals, v)
}
