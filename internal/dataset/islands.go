package dataset

import (
	"fmt"
	"math/rand"

	"cspm/internal/graph"
)

// IslandsConfig shapes the multi-component benchmark generator behind the
// sharded-mining tests and benchmarks.
type IslandsConfig struct {
	Seed    int64
	Islands int // number of connected components
	// MinNodes/MaxNodes bound each island's vertex count (uniform draw);
	// uneven sizes exercise the shard bin-packer.
	MinNodes, MaxNodes int
	// AttrsPerIsland is the size of each island's private attribute
	// alphabet. Alphabets are disjoint across islands, which keeps the
	// attribute-closed component groups apart — the precondition for
	// bit-exact component sharding.
	AttrsPerIsland int
	// ExtraEdges is the number of extra random intra-island edges per
	// vertex, on top of the spanning tree (drives leafset co-occurrence).
	ExtraEdges float64
	// AttrsPerNode is the mean number of attribute values per vertex.
	AttrsPerNode int
}

// DefaultIslands returns a small multi-component configuration suitable for
// tests: uneven island sizes, enough co-occurrence for real merge work.
func DefaultIslands() IslandsConfig {
	return IslandsConfig{
		Seed: 1, Islands: 6, MinNodes: 40, MaxNodes: 120,
		AttrsPerIsland: 12, ExtraEdges: 1.2, AttrsPerNode: 3,
	}
}

// BenchIslands returns the larger configuration used by the sharded-mining
// benchmarks: twelve DBLP-community-sized islands (~13k vertices total).
func BenchIslands() IslandsConfig {
	return IslandsConfig{
		Seed: 1, Islands: 12, MinNodes: 700, MaxNodes: 1400,
		AttrsPerIsland: 30, ExtraEdges: 1.8, AttrsPerNode: 4,
	}
}

// IslandsWithEdgeSeeds generates an archipelago in the Islands mould but
// from fully independent per-island random streams: island i's attributes
// come from one stream derived from (cfg.Seed, i), its edges from another,
// and the island sizes from cfg.Seed alone. Overriding island i's edge seed
// (edgeSeeds[i] non-zero, missing/zero entries keep the default) therefore
// regenerates only that island's edge set — every other island, and the
// attribute assignment of every island (hence the vocabulary, the occurrence
// counts and the global standard table), stays byte-identical. This is the
// mutation model of the incremental-mining benchmarks and tests: rewiring
// inside k of n components dirties exactly k component fingerprints.
func IslandsWithEdgeSeeds(cfg IslandsConfig, edgeSeeds []int64) *graph.Graph {
	cfg = clampIslands(cfg)
	sizeRNG := rand.New(rand.NewSource(cfg.Seed))
	sizes := make([]int, cfg.Islands)
	total := 0
	for i := range sizes {
		sizes[i] = cfg.MinNodes + sizeRNG.Intn(cfg.MaxNodes-cfg.MinNodes+1)
		total += sizes[i]
	}
	b := graph.NewBuilder(total)
	base := 0
	for i, n := range sizes {
		attrRNG := rand.New(rand.NewSource(cfg.Seed + 1_000_003*int64(i+1)))
		edgeSeed := cfg.Seed + 2_000_003*int64(i+1)
		if i < len(edgeSeeds) && edgeSeeds[i] != 0 {
			edgeSeed = edgeSeeds[i]
		}
		buildIsland(b, cfg, i, base, n, attrRNG, rand.New(rand.NewSource(edgeSeed)))
		base += n
	}
	return b.Build()
}

// buildIsland adds island i's attributes and edges to b at vertex offset
// base. attrRNG and edgeRNG may be the same stream (Islands' single
// interleaved stream — attributes draw first, then edges, so the draw order
// is unchanged) or two independent per-island streams (IslandsWithEdgeSeeds).
func buildIsland(b *graph.Builder, cfg IslandsConfig, i, base, n int, attrRNG, edgeRNG *rand.Rand) {
	names := make([]string, cfg.AttrsPerIsland)
	for j := range names {
		names[j] = fmt.Sprintf("i%d_v%d", i, j)
	}
	// Attributes: Zipf-ish skew towards low indexes plants the frequent
	// co-occurring values CSPM compresses.
	for v := 0; v < n; v++ {
		gv := graph.VertexID(base + v)
		k := 1 + attrRNG.Intn(2*cfg.AttrsPerNode-1)
		for j := 0; j < k; j++ {
			idx := attrRNG.Intn(cfg.AttrsPerIsland)
			if attrRNG.Float64() < 0.6 {
				idx = attrRNG.Intn(1 + cfg.AttrsPerIsland/3)
			}
			_ = b.AddAttr(gv, names[idx])
		}
	}
	// Spanning tree keeps the island connected; extra edges add the star
	// overlap.
	for v := 1; v < n; v++ {
		_ = b.AddEdge(graph.VertexID(base+v), graph.VertexID(base+edgeRNG.Intn(v)))
	}
	for e := 0; e < int(cfg.ExtraEdges*float64(n)); e++ {
		u := graph.VertexID(base + edgeRNG.Intn(n))
		v := graph.VertexID(base + edgeRNG.Intn(n))
		if u != v {
			_ = b.AddEdge(u, v)
		}
	}
}

// clampIslands applies Islands' parameter floors.
func clampIslands(cfg IslandsConfig) IslandsConfig {
	if cfg.Islands < 1 {
		cfg.Islands = 1
	}
	if cfg.MinNodes < 2 {
		cfg.MinNodes = 2
	}
	if cfg.MaxNodes < cfg.MinNodes {
		cfg.MaxNodes = cfg.MinNodes
	}
	if cfg.AttrsPerIsland < 2 {
		cfg.AttrsPerIsland = 2
	}
	if cfg.AttrsPerNode < 1 {
		cfg.AttrsPerNode = 1
	}
	return cfg
}

// Islands generates a deterministic archipelago: cfg.Islands connected
// components in the DBLP mould (community structure, venue-like attribute
// values skewed towards each island's own alphabet slice), with component
// alphabets fully disjoint — island i's values are named "i<i>_v<j>". The
// graph as a whole is disconnected by construction, standing in for the
// multi-tenant / multi-snapshot workloads sharded mining targets.
func Islands(cfg IslandsConfig) *graph.Graph {
	cfg = clampIslands(cfg)
	rng := rand.New(rand.NewSource(cfg.Seed))
	sizes := make([]int, cfg.Islands)
	total := 0
	for i := range sizes {
		sizes[i] = cfg.MinNodes + rng.Intn(cfg.MaxNodes-cfg.MinNodes+1)
		total += sizes[i]
	}
	b := graph.NewBuilder(total)
	base := 0
	for i, n := range sizes {
		buildIsland(b, cfg, i, base, n, rng, rng)
		base += n
	}
	return b.Build()
}
