package dataset

import (
	"testing"

	"cspm/internal/cspm"
	"cspm/internal/graph"
)

func TestDBLPShape(t *testing.T) {
	g := DBLP(1)
	st := g.ComputeStats()
	if st.Vertices != 2723 {
		t.Errorf("Vertices = %d, want 2723", st.Vertices)
	}
	// Edge count is stochastic; Table II reports 3,464 — accept a band.
	if st.Edges < 2700 || st.Edges > 4800 {
		t.Errorf("Edges = %d, outside DBLP-like band", st.Edges)
	}
	if st.AttrValues < 100 || st.AttrValues > 140 {
		t.Errorf("AttrValues = %d, want ≈127", st.AttrValues)
	}
	if !st.IsConnected {
		t.Error("DBLP graph should be connected")
	}
}

func TestDBLPTrendShape(t *testing.T) {
	g := DBLPTrend(1)
	st := g.ComputeStats()
	if st.Vertices != 2723 {
		t.Errorf("Vertices = %d, want 2723", st.Vertices)
	}
	// Trend alphabet: up to 8 areas × 12 venues × 3 trends = 288; Table II
	// reports 271 (not all combinations occur).
	if st.AttrValues < 200 || st.AttrValues > 288 {
		t.Errorf("AttrValues = %d, want ≈271", st.AttrValues)
	}
	if st.AttrValues <= DBLP(1).ComputeStats().AttrValues {
		t.Error("trend alphabet should exceed the plain venue alphabet")
	}
}

func TestUSFlightShape(t *testing.T) {
	g := USFlight(1)
	st := g.ComputeStats()
	if st.Vertices != 280 {
		t.Errorf("Vertices = %d, want 280", st.Vertices)
	}
	if st.Edges < 3000 || st.Edges > 4600 {
		t.Errorf("Edges = %d, want ≈4030", st.Edges)
	}
	if st.AttrValues < 55 || st.AttrValues > 85 {
		t.Errorf("AttrValues = %d, want ≈70", st.AttrValues)
	}
	if !st.IsConnected {
		t.Error("USFlight graph should be connected")
	}
}

func TestPokecShape(t *testing.T) {
	cfg := PokecConfig{Nodes: 3000, Seed: 2, Genres: 914}
	g := Pokec(cfg)
	st := g.ComputeStats()
	if st.Vertices != 3000 {
		t.Errorf("Vertices = %d", st.Vertices)
	}
	if !st.IsConnected {
		t.Error("Pokec graph should be connected")
	}
	if st.AvgDegree < 2 {
		t.Errorf("AvgDegree = %v, too sparse for a social network", st.AvgDegree)
	}
}

func TestPokecDefaultsApplied(t *testing.T) {
	g := Pokec(PokecConfig{Seed: 3})
	if g.NumVertices() != DefaultPokec().Nodes {
		t.Fatalf("zero config should use defaults, got %d nodes", g.NumVertices())
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a, b := DBLP(5), DBLP(5)
	sa, sb := a.ComputeStats(), b.ComputeStats()
	if sa != sb {
		t.Fatalf("same seed, different stats: %+v vs %+v", sa, sb)
	}
	c := DBLP(6)
	if sc := c.ComputeStats(); sc.Edges == sa.Edges && sc.Occurrences == sa.Occurrences {
		t.Error("different seeds produced identical graphs (suspicious)")
	}
}

func TestUSFlightPlantsHubSpokeCorrelation(t *testing.T) {
	g := USFlight(3)
	// Count core NbDepart- vertices whose neighbours include NbDepart+ and
	// DelayArriv-: the §VI-B(2) pattern should be frequent.
	down, _ := g.Vocab().Lookup("NbDepart-")
	up, _ := g.Vocab().Lookup("NbDepart+")
	lessDelay, _ := g.Vocab().Lookup("DelayArriv-")
	matches := 0
	for v := 0; v < g.NumVertices(); v++ {
		if !g.HasAttr(graph.VertexID(v), down) {
			continue
		}
		hasUp, hasLess := false, false
		for _, u := range g.Neighbors(graph.VertexID(v)) {
			if g.HasAttr(u, up) {
				hasUp = true
			}
			if g.HasAttr(u, lessDelay) {
				hasLess = true
			}
		}
		if hasUp && hasLess {
			matches++
		}
	}
	if matches < 10 {
		t.Fatalf("planted flight correlation too weak: %d matching cores", matches)
	}
}

func TestPlantedRecovery(t *testing.T) {
	cfg := DefaultPlanted()
	g, truth := Planted(cfg)
	if !g.Connected() {
		t.Fatal("planted graph should be connected")
	}
	m := cspm.Mine(g)
	// Every planted (core, full leafset) a-star must be mined with a code
	// length ranking it ahead of noise-only patterns.
	vocab := g.Vocab()
	found := make(map[string]bool)
	var worstPlanted float64
	for _, p := range m.Patterns {
		key := p.Format(vocab)
		found[key] = true
		_ = key
	}
	for _, tp := range truth {
		want := cspm.AStar{}
		_ = want
		core := make([]graph.AttrID, len(tp.Core))
		for i, n := range tp.Core {
			id, ok := vocab.Lookup(n)
			if !ok {
				t.Fatalf("core value %s missing from vocab", n)
			}
			core[i] = id
		}
		leaf := make([]graph.AttrID, len(tp.Leaf))
		for i, n := range tp.Leaf {
			id, ok := vocab.Lookup(n)
			if !ok {
				t.Fatalf("leaf value %s missing from vocab", n)
			}
			leaf[i] = id
		}
		s := cspm.AStar{CoreValues: core, LeafValues: leaf}
		if !found[s.Format(vocab)] {
			t.Errorf("planted pattern %s not recovered", s.Format(vocab))
			continue
		}
		for _, p := range m.Patterns {
			if p.Format(vocab) == s.Format(vocab) && p.CodeLen > worstPlanted {
				worstPlanted = p.CodeLen
			}
		}
	}
	if t.Failed() {
		return
	}
	// Ranking check: every planted pattern must be coded shorter than every
	// pattern that involves a noise value (shorter code = higher rank).
	bestNoise := 0.0
	haveNoise := false
	isNoise := func(ids []graph.AttrID) bool {
		for _, id := range ids {
			if len(vocab.Name(id)) >= 5 && vocab.Name(id)[:5] == "noise" {
				return true
			}
		}
		return false
	}
	for _, p := range m.Patterns {
		if isNoise(p.CoreValues) || isNoise(p.LeafValues) {
			if !haveNoise || p.CodeLen < bestNoise {
				bestNoise, haveNoise = p.CodeLen, true
			}
		}
	}
	if haveNoise && worstPlanted >= bestNoise {
		t.Errorf("a planted pattern (len %.3f) ranks below a noise pattern (len %.3f)",
			worstPlanted, bestNoise)
	}
}

func TestIslandsShape(t *testing.T) {
	cfg := DefaultIslands()
	g := Islands(cfg)
	p := graph.AttrClosedComponents(g)
	if p.Count != cfg.Islands {
		t.Fatalf("attr-closed groups = %d, want %d islands", p.Count, cfg.Islands)
	}
	if g.Connected() {
		t.Fatal("islands graph should be disconnected")
	}
	// Disjoint alphabets: every value must occur in exactly one island.
	vocab := g.Vocab()
	ownerOf := make(map[graph.AttrID]int32)
	for v := 0; v < g.NumVertices(); v++ {
		for _, a := range g.Attrs(graph.VertexID(v)) {
			if gid, ok := ownerOf[a]; ok && gid != p.Group[v] {
				t.Fatalf("value %s spans islands %d and %d", vocab.Name(a), gid, p.Group[v])
			}
			ownerOf[a] = p.Group[v]
		}
	}
	// Determinism and seed sensitivity.
	if a, b := Islands(cfg).ComputeStats(), Islands(cfg).ComputeStats(); a != b {
		t.Fatalf("same seed, different stats: %+v vs %+v", a, b)
	}
	other := cfg
	other.Seed = 99
	if a, b := Islands(cfg).ComputeStats(), Islands(other).ComputeStats(); a == b {
		t.Fatal("different seeds produced identical stats")
	}
}

func TestCitationShapes(t *testing.T) {
	for _, cfg := range []CitationConfig{Cora(1), Citeseer(1), DBLPCitation(1)} {
		g, class := Citation(cfg)
		if g.NumVertices() != cfg.Nodes {
			t.Errorf("%s: nodes = %d, want %d", cfg.Name, g.NumVertices(), cfg.Nodes)
		}
		if len(class) != cfg.Nodes {
			t.Errorf("%s: class labels missing", cfg.Name)
		}
		if !g.Connected() {
			t.Errorf("%s: graph should be connected", cfg.Name)
		}
		if g.NumAttrValues() > cfg.Attrs {
			t.Errorf("%s: alphabet %d exceeds config %d", cfg.Name, g.NumAttrValues(), cfg.Attrs)
		}
	}
}

func TestCitationHomophily(t *testing.T) {
	g, class := Citation(Cora(2))
	same, total := 0, 0
	for v := 0; v < g.NumVertices(); v++ {
		for _, u := range g.Neighbors(graph.VertexID(v)) {
			if graph.VertexID(v) < u {
				total++
				if class[v] == class[u] {
					same++
				}
			}
		}
	}
	if frac := float64(same) / float64(total); frac < 0.5 {
		t.Fatalf("homophily fraction %.2f too low", frac)
	}
}
