package dataset

import (
	"fmt"
	"math/rand"

	"cspm/internal/graph"
)

// TruePattern is a planted a-star ground truth: vertices carrying all of
// Core were wired to neighbours that jointly carry Leaf.
type TruePattern struct {
	Core []string
	Leaf []string
}

// PlantedConfig controls the recovery benchmark generator.
type PlantedConfig struct {
	Seed        int64
	Patterns    int     // number of planted a-stars
	Occurrences int     // star occurrences per pattern
	LeafSize    int     // leaf values per pattern
	NoiseNodes  int     // extra vertices with random attributes
	NoiseAttrs  int     // size of the noise alphabet
	NoiseProb   float64 // probability of a noise attribute on pattern vertices
}

// DefaultPlanted returns a configuration that yields an unambiguous
// recovery signal while still containing distractors.
func DefaultPlanted() PlantedConfig {
	return PlantedConfig{
		Seed: 7, Patterns: 6, Occurrences: 40, LeafSize: 3,
		NoiseNodes: 300, NoiseAttrs: 30, NoiseProb: 0.15,
	}
}

// Planted generates a graph with cfg.Patterns planted a-stars plus noise and
// returns the ground truth. Each occurrence of pattern i is a fresh star:
// one core vertex carrying core_i, with LeafSize leaves each carrying one of
// the pattern's leaf values (so the a-star, not the exact extended star, is
// the repeated unit).
func Planted(cfg PlantedConfig) (*graph.Graph, []TruePattern) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	truth := make([]TruePattern, cfg.Patterns)
	for i := range truth {
		leaf := make([]string, cfg.LeafSize)
		for j := range leaf {
			leaf[j] = fmt.Sprintf("leaf_%d_%d", i, j)
		}
		truth[i] = TruePattern{Core: []string{fmt.Sprintf("core_%d", i)}, Leaf: leaf}
	}
	starVerts := cfg.Patterns * cfg.Occurrences * (1 + cfg.LeafSize)
	total := starVerts + cfg.NoiseNodes
	b := graph.NewBuilder(total)
	noise := make([]string, cfg.NoiseAttrs)
	for i := range noise {
		noise[i] = fmt.Sprintf("noise_%d", i)
	}
	next := 0
	alloc := func() graph.VertexID { v := graph.VertexID(next); next++; return v }
	// prev is the last leaf allocated; occurrences chain leaf-to-leaf so the
	// graph stays connected without giving core vertices extra neighbours
	// (which would contaminate the planted leafsets).
	var prev graph.VertexID
	havePrev := false
	for _, tp := range truth {
		for o := 0; o < cfg.Occurrences; o++ {
			core := alloc()
			_ = b.AddAttr(core, tp.Core[0])
			if rng.Float64() < cfg.NoiseProb {
				_ = b.AddAttr(core, noise[rng.Intn(len(noise))])
			}
			for _, lv := range tp.Leaf {
				leaf := alloc()
				_ = b.AddAttr(leaf, lv)
				if rng.Float64() < cfg.NoiseProb {
					_ = b.AddAttr(leaf, noise[rng.Intn(len(noise))])
				}
				_ = b.AddEdge(core, leaf)
				if havePrev {
					_ = b.AddEdge(leaf, prev)
					havePrev = false
				}
				prev = leaf
			}
			havePrev = true
		}
	}
	for n := 0; n < cfg.NoiseNodes; n++ {
		v := alloc()
		_ = b.AddAttr(v, noise[rng.Intn(len(noise))])
		if rng.Float64() < 0.5 {
			_ = b.AddAttr(v, noise[rng.Intn(len(noise))])
		}
		_ = b.AddEdge(v, graph.VertexID(rng.Intn(int(v))))
	}
	return b.Build(), truth
}

// CitationConfig shapes the citation networks used for the node-attribute
// completion experiments (Table IV): Cora, Citeseer and DBLP-citation.
type CitationConfig struct {
	Name         string
	Nodes        int
	Classes      int
	Attrs        int // attribute alphabet (bag-of-words terms / venues)
	AttrsPerNode int // average values per node
	Homophily    float64
	Seed         int64
}

// Cora mirrors the shape of the Cora citation network (2,708 nodes, 7
// classes) at a reduced attribute alphabet for tractable dense models.
func Cora(seed int64) CitationConfig {
	return CitationConfig{Name: "Cora", Nodes: 2708, Classes: 7, Attrs: 300, AttrsPerNode: 12, Homophily: 0.85, Seed: seed}
}

// Citeseer mirrors Citeseer (3,327 nodes, 6 classes).
func Citeseer(seed int64) CitationConfig {
	return CitationConfig{Name: "Citeseer", Nodes: 3327, Classes: 6, Attrs: 360, AttrsPerNode: 10, Homophily: 0.8, Seed: seed}
}

// DBLPCitation mirrors the DBLP completion dataset: few attribute values per
// node (venues), hence the paper evaluates it at smaller K.
func DBLPCitation(seed int64) CitationConfig {
	return CitationConfig{Name: "DBLP", Nodes: 2723, Classes: 8, Attrs: 128, AttrsPerNode: 4, Homophily: 0.85, Seed: seed}
}

// Citation generates a homophilous citation graph: each class owns a topic
// distribution over the attribute alphabet; nodes draw attributes from their
// class topics; edges prefer same-class endpoints. Returns the graph and
// each node's class (handy for diagnostics).
func Citation(cfg CitationConfig) (*graph.Graph, []int) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := graph.NewBuilder(cfg.Nodes)
	class := make([]int, cfg.Nodes)
	members := make([][]graph.VertexID, cfg.Classes)
	for v := 0; v < cfg.Nodes; v++ {
		c := rng.Intn(cfg.Classes)
		class[v] = c
		members[c] = append(members[c], graph.VertexID(v))
	}
	// Topic model: each class concentrates on a slice of the alphabet with
	// some global overlap.
	names := make([]string, cfg.Attrs)
	for i := range names {
		names[i] = fmt.Sprintf("w%04d", i)
	}
	slice := cfg.Attrs / cfg.Classes
	for v := 0; v < cfg.Nodes; v++ {
		c := class[v]
		lo := c * slice
		k := 1 + rng.Intn(2*cfg.AttrsPerNode-1)
		for j := 0; j < k; j++ {
			if rng.Float64() < 0.8 {
				_ = b.AddAttr(graph.VertexID(v), names[lo+rng.Intn(slice)])
			} else {
				_ = b.AddAttr(graph.VertexID(v), names[rng.Intn(cfg.Attrs)])
			}
		}
	}
	// Spanning structure then homophilous extra edges (≈2 per node).
	for v := 1; v < cfg.Nodes; v++ {
		_ = b.AddEdge(graph.VertexID(v), graph.VertexID(rng.Intn(v)))
	}
	for e := 0; e < 2*cfg.Nodes; e++ {
		u := graph.VertexID(rng.Intn(cfg.Nodes))
		var v graph.VertexID
		if rng.Float64() < cfg.Homophily {
			peers := members[class[u]]
			v = peers[rng.Intn(len(peers))]
		} else {
			v = graph.VertexID(rng.Intn(cfg.Nodes))
		}
		if u != v {
			_ = b.AddEdge(u, v)
		}
	}
	return b.Build(), class
}
