// Package dataset provides deterministic synthetic generators standing in
// for the paper's benchmark datasets (Table II). The originals (DBLP,
// DBLP-Trend, USFlight, Pokec) are not redistributable, so each generator
// reproduces the statistics that drive CSPM's behaviour — vertex/edge
// counts, attribute-alphabet size, attributes per vertex — and plants the
// attribute-correlation structure the paper's example patterns describe
// (co-authors publishing in the same venues, hub/spoke flight trends, music
// taste clusters). All generators are pure functions of their seed.
package dataset

import (
	"fmt"
	"math/rand"

	"cspm/internal/graph"
)

// communityGraph is the shared topology engine: n vertices split into
// communities, each community wired as a random connected subtree plus extra
// intra-community edges, with a sprinkling of inter-community bridges. This
// mirrors the modular structure of co-authorship and social networks.
type communityGraph struct {
	builder    *graph.Builder
	rng        *rand.Rand
	community  []int
	numComm    int
	vertexOf   [][]graph.VertexID // community → members
	extraIntra float64            // extra intra edges per vertex
	bridges    int                // total inter-community edges
}

func newCommunityGraph(rng *rand.Rand, n, numComm int, extraIntra float64, bridges int) *communityGraph {
	cg := &communityGraph{
		builder:    graph.NewBuilder(n),
		rng:        rng,
		community:  make([]int, n),
		numComm:    numComm,
		vertexOf:   make([][]graph.VertexID, numComm),
		extraIntra: extraIntra,
		bridges:    bridges,
	}
	for v := 0; v < n; v++ {
		c := rng.Intn(numComm)
		cg.community[v] = c
		cg.vertexOf[c] = append(cg.vertexOf[c], graph.VertexID(v))
	}
	cg.wire()
	return cg
}

func (cg *communityGraph) wire() {
	// Spanning tree per community keeps every community connected.
	for _, members := range cg.vertexOf {
		for i := 1; i < len(members); i++ {
			parent := members[cg.rng.Intn(i)]
			_ = cg.builder.AddEdge(members[i], parent)
		}
	}
	// Extra intra-community edges create the star overlap CSPM feeds on.
	for _, members := range cg.vertexOf {
		extra := int(cg.extraIntra * float64(len(members)))
		for e := 0; e < extra && len(members) > 2; e++ {
			u := members[cg.rng.Intn(len(members))]
			v := members[cg.rng.Intn(len(members))]
			if u != v {
				_ = cg.builder.AddEdge(u, v)
			}
		}
	}
	// Bridges connect the communities into one component.
	for c := 1; c < cg.numComm; c++ {
		if len(cg.vertexOf[c]) == 0 || len(cg.vertexOf[c-1]) == 0 {
			continue
		}
		u := cg.vertexOf[c-1][cg.rng.Intn(len(cg.vertexOf[c-1]))]
		v := cg.vertexOf[c][cg.rng.Intn(len(cg.vertexOf[c]))]
		_ = cg.builder.AddEdge(u, v)
	}
	for e := 0; e < cg.bridges; e++ {
		c1 := cg.rng.Intn(cg.numComm)
		c2 := cg.rng.Intn(cg.numComm)
		if c1 == c2 || len(cg.vertexOf[c1]) == 0 || len(cg.vertexOf[c2]) == 0 {
			continue
		}
		u := cg.vertexOf[c1][cg.rng.Intn(len(cg.vertexOf[c1]))]
		v := cg.vertexOf[c2][cg.rng.Intn(len(cg.vertexOf[c2]))]
		if u != v {
			_ = cg.builder.AddEdge(u, v)
		}
	}
}

// pick samples k distinct ints in [0, n) (k ≤ n).
func pick(rng *rand.Rand, n, k int) []int {
	if k > n {
		k = n
	}
	perm := rng.Perm(n)
	return perm[:k]
}

// DBLP generates a DBLP-like co-authorship graph (paper Table II: 2,723
// nodes, 3,464 edges, 127 coresets). Vertices are researchers grouped into
// research areas; attribute values are venues. Authors publish mostly in
// their area's venues, and co-authors share areas, which plants the
// ({ICDM}, {PODS ICDM EDBT})-style a-stars of Fig. 6.
func DBLP(seed int64) *graph.Graph {
	const (
		nodes      = 2723
		areas      = 8
		venuesArea = 16 // 8 × 16 = 128 venues ≈ the paper's 127 coresets
	)
	rng := rand.New(rand.NewSource(seed))
	cg := newCommunityGraph(rng, nodes, areas, 0.28, 40)
	venues := make([][]string, areas)
	names := venueNames()
	for a := 0; a < areas; a++ {
		venues[a] = names[a*venuesArea : (a+1)*venuesArea]
	}
	for v := 0; v < nodes; v++ {
		area := cg.community[v]
		// 1–4 venues, mostly from the author's area; occasionally one from a
		// neighbouring area to create realistic noise.
		k := 1 + rng.Intn(4)
		for _, vi := range pick(rng, venuesArea, k) {
			_ = cg.builder.AddAttr(graph.VertexID(v), venues[area][vi])
		}
		if rng.Float64() < 0.15 {
			other := rng.Intn(areas)
			_ = cg.builder.AddAttr(graph.VertexID(v), venues[other][rng.Intn(venuesArea)])
		}
	}
	return cg.builder.Build()
}

// DBLPTrend generates the DBLP-Trend variant: same scale and topology style,
// but attribute values are venue trends (VENUE+, VENUE-, VENUE=), giving the
// larger alphabet of Table II (271 coresets). Trends co-move within a
// community: each community has a per-venue trend bias that most members
// follow.
func DBLPTrend(seed int64) *graph.Graph {
	const (
		nodes      = 2723
		areas      = 8
		venuesArea = 12
	)
	rng := rand.New(rand.NewSource(seed))
	cg := newCommunityGraph(rng, nodes, areas, 0.28, 40)
	names := venueNames()
	trends := []string{"+", "-", "="}
	// Per (area, venue) dominant trend.
	bias := make([][]int, areas)
	for a := range bias {
		bias[a] = make([]int, venuesArea)
		for v := range bias[a] {
			bias[a][v] = rng.Intn(3)
		}
	}
	for v := 0; v < nodes; v++ {
		area := cg.community[v]
		k := 1 + rng.Intn(4)
		for _, vi := range pick(rng, venuesArea, k) {
			tr := bias[area][vi]
			if rng.Float64() < 0.2 {
				tr = rng.Intn(3)
			}
			name := names[area*venuesArea+vi] + trends[tr]
			_ = cg.builder.AddAttr(graph.VertexID(v), name)
		}
	}
	return cg.builder.Build()
}

// USFlight generates a US-flight-network-like graph (Table II: 280 airports,
// 4,030 edges, 70 coresets). Topology is hub-and-spoke: a few hubs connect
// to most airports plus hub–hub links. Attributes are trend indicators over
// flight statistics (NbDepart±/=, DelayArriv±/=, …). The planted correlation
// follows §VI-B(2): when a hub's departures drop, connected airports tend to
// see more departures and fewer delays.
func USFlight(seed int64) *graph.Graph {
	const (
		airports = 280
		hubs     = 14
	)
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(airports)
	// Every spoke connects to 1–3 hubs; hubs interconnect densely.
	hubsOf := make([][]int, airports)
	for v := hubs; v < airports; v++ {
		k := 1 + rng.Intn(3)
		for _, h := range pick(rng, hubs, k) {
			_ = b.AddEdge(graph.VertexID(v), graph.VertexID(h))
			hubsOf[v] = append(hubsOf[v], h)
		}
	}
	for i := 0; i < hubs; i++ {
		for j := i + 1; j < hubs; j++ {
			if rng.Float64() < 0.6 {
				_ = b.AddEdge(graph.VertexID(i), graph.VertexID(j))
			}
		}
	}
	// Extra spoke–spoke edges to reach ≈4,030 edges.
	for e := 0; e < 3500; e++ {
		u := graph.VertexID(hubs + rng.Intn(airports-hubs))
		v := graph.VertexID(hubs + rng.Intn(airports-hubs))
		if u != v {
			_ = b.AddEdge(u, v)
		}
	}
	metrics := []string{
		"NbDepart", "NbArriv", "DelayDep", "DelayArriv", "NbCancel",
		"NbDivert", "TaxiOut", "TaxiIn", "LoadFactor", "NbIntl",
		// 10 metrics × 3 trends + 2×20 categorical levels ≈ 70 values.
	}
	trends := []string{"+", "-", "="}
	sizes := make([]string, 20)
	regions := make([]string, 20)
	for i := range sizes {
		sizes[i] = fmt.Sprintf("Size%02d", i)
		regions[i] = fmt.Sprintf("Region%02d", i)
	}
	// Hub state drives spokes: hubDown[h] is true for hubs whose departures
	// fell this year.
	hubDown := make([]bool, hubs)
	for h := range hubDown {
		hubDown[h] = rng.Float64() < 0.5
	}
	g := b // attrs added below; build afterwards
	for v := 0; v < airports; v++ {
		if v < hubs {
			if hubDown[v] {
				_ = g.AddAttr(graph.VertexID(v), "NbDepart-")
			} else {
				_ = g.AddAttr(graph.VertexID(v), "NbDepart+")
			}
		} else {
			// Spokes follow the planted correlation with noise: a spoke
			// whose connected hubs mostly lost departures gains departures
			// and loses delays — exactly the §VI-B(2) example pattern.
			downVotes := 0
			for _, h := range hubsOf[v] {
				if hubDown[h] {
					downVotes++
				}
			}
			down := 2*downVotes > len(hubsOf[v])
			noise := rng.Float64()
			switch {
			case down && noise < 0.8:
				_ = g.AddAttr(graph.VertexID(v), "NbDepart+")
				_ = g.AddAttr(graph.VertexID(v), "DelayArriv-")
			case !down && noise < 0.8:
				_ = g.AddAttr(graph.VertexID(v), "NbDepart-")
				_ = g.AddAttr(graph.VertexID(v), "DelayArriv+")
			default:
				_ = g.AddAttr(graph.VertexID(v), metrics[rng.Intn(len(metrics))]+trends[rng.Intn(3)])
			}
		}
		// Ambient attributes shared by all airports.
		_ = g.AddAttr(graph.VertexID(v), metrics[rng.Intn(len(metrics))]+trends[rng.Intn(3)])
		_ = g.AddAttr(graph.VertexID(v), sizes[rng.Intn(len(sizes))])
		_ = g.AddAttr(graph.VertexID(v), regions[rng.Intn(len(regions))])
	}
	return b.Build()
}

// PokecConfig scales the Pokec-like social network. The paper's Pokec has
// 1.6M nodes and 30M edges; the default here is laptop-scale while the
// benchmark harness can raise it.
type PokecConfig struct {
	Nodes  int
	Seed   int64
	Genres int // distinct music-taste values (paper: 914 coresets)
}

// DefaultPokec returns the configuration used by tests and examples.
func DefaultPokec() PokecConfig { return PokecConfig{Nodes: 20000, Seed: 1, Genres: 914} }

// Pokec generates a Pokec-like friendship network whose attribute values are
// music tastes. Tastes cluster: each community prefers a small genre pool
// (rap/rock/metal/pop vs oldies/disko, §VI-B(3)), and friends share pools.
func Pokec(cfg PokecConfig) *graph.Graph {
	if cfg.Nodes <= 0 {
		cfg.Nodes = DefaultPokec().Nodes
	}
	if cfg.Genres <= 0 {
		cfg.Genres = DefaultPokec().Genres
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	numComm := cfg.Nodes / 250
	if numComm < 4 {
		numComm = 4
	}
	cg := newCommunityGraph(rng, cfg.Nodes, numComm, 1.2, cfg.Nodes/100)
	// Genre pools: the first few named pools reproduce the paper's example
	// patterns; the rest fill the alphabet to cfg.Genres values.
	pools := [][]string{
		{"rap", "rock", "metal", "pop", "sladaky"},
		{"disko", "oldies"},
		{"folk", "country", "blues"},
		{"techno", "house", "trance", "dnb"},
	}
	named := 0
	for _, p := range pools {
		named += len(p)
	}
	filler := make([]string, 0, cfg.Genres-named)
	for i := named; i < cfg.Genres; i++ {
		filler = append(filler, fmt.Sprintf("genre%03d", i))
	}
	// Assign each community a primary pool and some filler genres.
	commPool := make([][]string, numComm)
	for c := 0; c < numComm; c++ {
		base := pools[c%len(pools)]
		p := append([]string(nil), base...)
		for k := 0; k < 6 && len(filler) > 0; k++ {
			p = append(p, filler[rng.Intn(len(filler))])
		}
		commPool[c] = p
	}
	for v := 0; v < cfg.Nodes; v++ {
		pool := commPool[cg.community[v]]
		k := 1 + rng.Intn(4)
		for _, i := range pick(rng, len(pool), k) {
			_ = cg.builder.AddAttr(graph.VertexID(v), pool[i])
		}
		if rng.Float64() < 0.1 && len(filler) > 0 {
			_ = cg.builder.AddAttr(graph.VertexID(v), filler[rng.Intn(len(filler))])
		}
	}
	return cg.builder.Build()
}

// venueNames returns 128 synthetic venue names, the first of which mirror
// the paper's examples so mined patterns read like Fig. 6.
func venueNames() []string {
	base := []string{
		"ICDM", "EDBT", "PODS", "KDD", "ICDE", "PAKDD", "SAC", "DMKD",
		"SIGMOD", "VLDB", "CIKM", "WSDM", "WWW", "SDM", "ECMLPKDD", "DASFAA",
	}
	out := make([]string, 0, 128)
	out = append(out, base...)
	for i := len(base); i < 128; i++ {
		out = append(out, fmt.Sprintf("VENUE%03d", i))
	}
	return out
}
