package graph

import (
	"bytes"
	"strings"
	"testing"
)

// fig1 builds the paper's running example (Fig. 1a): five vertices,
// attributes a, b, c; v1..v5 map to ids 0..4.
func fig1(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder(5)
	attrs := map[VertexID][]string{
		0: {"a"},
		1: {"a", "c"},
		2: {"c"},
		3: {"b"},
		4: {"a", "b"},
	}
	for v, vals := range attrs {
		for _, val := range vals {
			if err := b.AddAttr(v, val); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, e := range [][2]VertexID{{0, 1}, {0, 2}, {0, 3}, {2, 4}, {3, 4}} {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func TestFig1Shape(t *testing.T) {
	g := fig1(t)
	if g.NumVertices() != 5 {
		t.Errorf("NumVertices = %d, want 5", g.NumVertices())
	}
	if g.NumEdges() != 5 {
		t.Errorf("NumEdges = %d, want 5", g.NumEdges())
	}
	if g.NumAttrValues() != 3 {
		t.Errorf("NumAttrValues = %d, want 3", g.NumAttrValues())
	}
	if g.AttrOccurrences() != 7 {
		t.Errorf("AttrOccurrences = %d, want 7", g.AttrOccurrences())
	}
	if !g.Connected() {
		t.Error("Connected = false, want true")
	}
	// Adjacency list from §III: v1 adjacent to v2, v3, v4.
	if got := g.Neighbors(0); len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("Neighbors(v1) = %v", got)
	}
	if g.Degree(1) != 1 {
		t.Errorf("Degree(v2) = %d, want 1", g.Degree(1))
	}
}

func TestHasEdgeSymmetric(t *testing.T) {
	g := fig1(t)
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("edge {v1,v2} missing in some direction")
	}
	if g.HasEdge(1, 2) {
		t.Error("unexpected edge {v2,v3}")
	}
}

func TestHasAttr(t *testing.T) {
	g := fig1(t)
	a, _ := g.Vocab().Lookup("a")
	c, _ := g.Vocab().Lookup("c")
	if !g.HasAttr(1, a) || !g.HasAttr(1, c) {
		t.Error("v2 should have a and c")
	}
	b, _ := g.Vocab().Lookup("b")
	if g.HasAttr(1, b) {
		t.Error("v2 should not have b")
	}
}

func TestSelfLoopRejected(t *testing.T) {
	b := NewBuilder(2)
	if err := b.AddEdge(1, 1); err == nil {
		t.Fatal("AddEdge(1,1) accepted a self-loop")
	}
}

func TestOutOfRangeRejected(t *testing.T) {
	b := NewBuilder(2)
	if err := b.AddEdge(0, 5); err == nil {
		t.Fatal("AddEdge accepted out-of-range vertex")
	}
	if err := b.AddAttr(7, "x"); err == nil {
		t.Fatal("AddAttr accepted out-of-range vertex")
	}
}

func TestParallelEdgesCollapse(t *testing.T) {
	b := NewBuilder(2)
	if err := b.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(1, 0); err != nil {
		t.Fatal(err)
	}
	g := b.Build()
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
}

func TestDuplicateAttrCollapse(t *testing.T) {
	b := NewBuilder(1)
	_ = b.AddAttr(0, "x")
	_ = b.AddAttr(0, "x")
	g := b.Build()
	if len(g.Attrs(0)) != 1 {
		t.Fatalf("Attrs = %v, want single x", g.Attrs(0))
	}
}

func TestDisconnected(t *testing.T) {
	b := NewBuilder(4)
	_ = b.AddEdge(0, 1)
	_ = b.AddEdge(2, 3)
	if b.Build().Connected() {
		t.Error("two components reported connected")
	}
}

func TestVocabRoundTrip(t *testing.T) {
	v := NewVocab()
	ids := map[string]AttrID{}
	for _, name := range []string{"alpha", "beta", "gamma", "alpha"} {
		ids[name] = v.ID(name)
	}
	if v.Size() != 3 {
		t.Fatalf("Size = %d, want 3", v.Size())
	}
	for name, id := range ids {
		if v.Name(id) != name {
			t.Errorf("Name(%d) = %q, want %q", id, v.Name(id), name)
		}
	}
	if _, ok := v.Lookup("delta"); ok {
		t.Error("Lookup(delta) found a missing value")
	}
}

func TestVocabPanicsOnBadID(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Name on out-of-range id did not panic")
		}
	}()
	NewVocab().Name(3)
}

func TestStats(t *testing.T) {
	g := fig1(t)
	st := g.ComputeStats()
	if st.Vertices != 5 || st.Edges != 5 || st.AttrValues != 3 {
		t.Errorf("Stats = %+v", st)
	}
	if st.MaxDegree != 3 {
		t.Errorf("MaxDegree = %d, want 3", st.MaxDegree)
	}
	if st.AvgDegree != 2.0 {
		t.Errorf("AvgDegree = %v, want 2", st.AvgDegree)
	}
	if !strings.Contains(st.String(), "|V|=5") {
		t.Errorf("String() = %q", st.String())
	}
}

func TestLoadWriteRoundTrip(t *testing.T) {
	g := fig1(t)
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip changed shape: %d/%d vs %d/%d",
			g2.NumVertices(), g2.NumEdges(), g.NumVertices(), g.NumEdges())
	}
	for v := 0; v < g.NumVertices(); v++ {
		want := make(map[string]bool)
		for _, a := range g.Attrs(VertexID(v)) {
			want[g.Vocab().Name(a)] = true
		}
		got := make(map[string]bool)
		for _, a := range g2.Attrs(VertexID(v)) {
			got[g2.Vocab().Name(a)] = true
		}
		if len(want) != len(got) {
			t.Fatalf("vertex %d attrs differ: %v vs %v", v, got, want)
		}
		for name := range want {
			if !got[name] {
				t.Fatalf("vertex %d lost attribute %s", v, name)
			}
		}
		for _, u := range g.Neighbors(VertexID(v)) {
			if !g2.HasEdge(VertexID(v), u) {
				t.Fatalf("round trip lost edge {%d,%d}", v, u)
			}
		}
	}
}

func TestLoadErrors(t *testing.T) {
	cases := map[string]string{
		"unknown record": "x 1 2\n",
		"bad vertex id":  "v abc foo\n",
		"e arity":        "e 1\n",
		"e bad id":       "e 1 zz\n",
		"self loop":      "e 3 3\n",
	}
	for name, input := range cases {
		if _, err := Load(strings.NewReader(input)); err == nil {
			t.Errorf("%s: Load accepted %q", name, input)
		}
	}
}

func TestLoadEmptyAndComments(t *testing.T) {
	g, err := Load(strings.NewReader("# just a comment\n\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 0 {
		t.Fatalf("NumVertices = %d, want 0", g.NumVertices())
	}
}
