package graph

import "sort"

// Partitioning support for sharded mining (see DESIGN.md "Sharded mining").
// The miner shards an attributed graph by grouping vertices into units whose
// searches are provably independent, then bin-packing the units onto K
// shards. Two grain sizes are provided: plain connected components, and
// attribute-closed component groups — components additionally merged when
// they share any attribute value. Only the latter guarantees bit-exact
// sharded mining: a value occurring in two components couples their coreset
// frequencies f_c, leafset spell-out charges, and pair gains, so such
// components must land on the same shard.

// UnionFind is a classic disjoint-set forest with union by size and path
// halving. It is the substrate of the component partitioners and is exported
// for reuse by other grouping passes.
type UnionFind struct {
	parent []int32
	size   []int32
}

// NewUnionFind returns n singleton sets {0}..{n-1}.
func NewUnionFind(n int) *UnionFind {
	uf := &UnionFind{parent: make([]int32, n), size: make([]int32, n)}
	for i := range uf.parent {
		uf.parent[i] = int32(i)
		uf.size[i] = 1
	}
	return uf
}

// Find returns the representative of x's set, halving the path on the way.
func (uf *UnionFind) Find(x int) int {
	p := uf.parent
	for p[x] != int32(x) {
		p[x] = p[p[x]] // path halving
		x = int(p[x])
	}
	return x
}

// Union merges the sets of a and b, reporting whether they were distinct.
func (uf *UnionFind) Union(a, b int) bool {
	ra, rb := uf.Find(a), uf.Find(b)
	if ra == rb {
		return false
	}
	if uf.size[ra] < uf.size[rb] {
		ra, rb = rb, ra
	}
	uf.parent[rb] = int32(ra)
	uf.size[ra] += uf.size[rb]
	return true
}

// Partition assigns every vertex to a group. Group ids are dense 0..Count-1,
// numbered in ascending order of each group's smallest vertex id, so the
// assignment is a pure function of the graph.
type Partition struct {
	Group []int32 // vertex → group id
	Count int
}

// finish renumbers union-find roots into the canonical dense group ids.
func finish(uf *UnionFind, n int) Partition {
	p := Partition{Group: make([]int32, n)}
	remap := make(map[int]int32, 16)
	for v := 0; v < n; v++ {
		r := uf.Find(v)
		id, ok := remap[r]
		if !ok {
			id = int32(p.Count)
			remap[r] = id
			p.Count++
		}
		p.Group[v] = id
	}
	return p
}

// Components partitions g into connected components.
func Components(g *Graph) Partition {
	n := g.NumVertices()
	uf := NewUnionFind(n)
	for v := 0; v < n; v++ {
		for _, u := range g.adj[v] {
			uf.Union(v, int(u))
		}
	}
	return finish(uf, n)
}

// AttrClosedComponents partitions g into attribute-closed component groups:
// connected components, additionally merged whenever two components share an
// attribute value. Mining such groups independently is exact — no coreset
// line, leafset occurrence, or co-occurring candidate pair can span two
// groups (see DESIGN.md "Sharded mining" for the argument).
func AttrClosedComponents(g *Graph) Partition {
	n := g.NumVertices()
	uf := NewUnionFind(n)
	for v := 0; v < n; v++ {
		for _, u := range g.adj[v] {
			uf.Union(v, int(u))
		}
	}
	owner := make([]int32, g.NumAttrValues())
	for i := range owner {
		owner[i] = -1
	}
	for v := 0; v < n; v++ {
		for _, a := range g.attrs[v] {
			if owner[a] < 0 {
				owner[a] = int32(v)
			} else {
				uf.Union(v, int(owner[a]))
			}
		}
	}
	return finish(uf, n)
}

// Members expands the partition into per-group sorted vertex lists.
func (p Partition) Members() [][]VertexID {
	out := make([][]VertexID, p.Count)
	for v, gid := range p.Group { // ascending v keeps each list sorted
		out[gid] = append(out[gid], VertexID(v))
	}
	return out
}

// Sizes reports the vertex count of each group.
func (p Partition) Sizes() []int {
	out := make([]int, p.Count)
	for _, gid := range p.Group {
		out[gid]++
	}
	return out
}

// PackBins distributes items with the given sizes into at most k bins,
// balancing bin loads with the longest-processing-time greedy: items are
// placed largest-first into the currently lightest bin. Ties are broken
// deterministically (larger items first, then lower item index; lighter bin
// first, then lower bin index), so the packing is a pure function of the
// input. Each returned bin holds ascending item indices; bins can be empty
// when k exceeds the item count.
func PackBins(sizes []int, k int) [][]int {
	if k < 1 {
		k = 1
	}
	order := make([]int, len(sizes))
	for i := range order {
		order[i] = i
	}
	// (size desc, index asc) is a total order, so the sort is deterministic.
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if sizes[a] != sizes[b] {
			return sizes[a] > sizes[b]
		}
		return a < b
	})
	bins := make([][]int, k)
	loads := make([]int, k)
	for _, item := range order {
		best := 0
		for b := 1; b < k; b++ {
			if loads[b] < loads[best] {
				best = b
			}
		}
		bins[best] = append(bins[best], item)
		loads[best] += sizes[item]
	}
	for _, bin := range bins {
		sort.Ints(bin) // items arrived in size order; restore index order
	}
	return bins
}
