package graph

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// rebuildTestGraph builds two 3-vertex islands: {0,1,2} carrying "a"/"b" and
// {3,4,5} carrying "x"/"y".
func rebuildTestGraph(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder(6)
	for _, e := range [][2]VertexID{{0, 1}, {1, 2}, {3, 4}, {4, 5}} {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	for v := VertexID(0); v < 3; v++ {
		_ = b.AddAttr(v, "a")
	}
	_ = b.AddAttr(1, "b")
	for v := VertexID(3); v < 6; v++ {
		_ = b.AddAttr(v, "x")
	}
	_ = b.AddAttr(4, "y")
	return b.Build()
}

// graphEqual compares two graphs structurally, by attribute NAME (interning
// order is checked separately where it matters).
func graphEqual(t *testing.T, got, want *Graph) {
	t.Helper()
	if got.NumVertices() != want.NumVertices() {
		t.Fatalf("|V| = %d, want %d", got.NumVertices(), want.NumVertices())
	}
	for v := 0; v < want.NumVertices(); v++ {
		gn := attrNameSet(got, VertexID(v))
		wn := attrNameSet(want, VertexID(v))
		if !reflect.DeepEqual(gn, wn) {
			t.Fatalf("vertex %d attrs = %v, want %v", v, gn, wn)
		}
		if !reflect.DeepEqual(got.Neighbors(VertexID(v)), want.Neighbors(VertexID(v))) {
			t.Fatalf("vertex %d neighbours = %v, want %v",
				v, got.Neighbors(VertexID(v)), want.Neighbors(VertexID(v)))
		}
	}
}

func attrNameSet(g *Graph, v VertexID) map[string]bool {
	out := map[string]bool{}
	for _, a := range g.Attrs(v) {
		out[g.Vocab().Name(a)] = true
	}
	return out
}

func TestRebuildGrowShrink(t *testing.T) {
	g := rebuildTestGraph(t)
	g2, err := Rebuild(g, []Edit{
		{Op: EditAddVertex},                 // id 6
		{Op: EditAddEdge, U: 6, V: 0},       // attach to island 1
		{Op: EditAddAttr, U: 6, Value: "z"}, // new value, interned last
		{Op: EditDelVertex, U: 1},           // island 1 shifts: {0, 1(was 2), 5(was 6)}
		{Op: EditAddEdge, U: 0, V: 1},       // reconnect using POST-shift ids
		{Op: EditDelAttr, U: 3, Value: "y"}, // was vertex 4
		{Op: EditDelEdge, U: 2, V: 3},       // was edge {3,4}
	})
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != 6 {
		t.Fatalf("|V| = %d, want 6", g2.NumVertices())
	}

	// The source graph is untouched.
	graphEqual(t, g, rebuildTestGraph(t))

	// Expected result built from scratch.
	wb := NewBuilder(6)
	_ = wb.AddAttr(0, "a")
	_ = wb.AddAttr(1, "a")
	_ = wb.AddEdge(0, 1)
	_ = wb.AddAttr(2, "x")
	_ = wb.AddAttr(3, "x")
	_ = wb.AddAttr(4, "x")
	_ = wb.AddEdge(3, 4)
	_ = wb.AddAttr(5, "z")
	_ = wb.AddEdge(5, 0)
	graphEqual(t, g2, wb.Build())

	// Interning order: the old vocabulary is a stable prefix, new values after.
	if want := []string{"a", "b", "x", "y", "z"}; !reflect.DeepEqual(g2.Vocab().Names(), want) {
		t.Fatalf("vocab = %v, want %v", g2.Vocab().Names(), want)
	}
}

func TestRebuildEmptyAndNoop(t *testing.T) {
	g := rebuildTestGraph(t)
	g2, err := Rebuild(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	graphEqual(t, g2, g)
	if !reflect.DeepEqual(g2.Vocab().Names(), g.Vocab().Names()) {
		t.Fatalf("no-op rebuild changed vocab: %v vs %v", g2.Vocab().Names(), g.Vocab().Names())
	}

	// Deleting every vertex is legal and yields the empty graph.
	edits := make([]Edit, 6)
	for i := range edits {
		edits[i] = Edit{Op: EditDelVertex, U: 0}
	}
	empty, err := Rebuild(g, edits)
	if err != nil {
		t.Fatal(err)
	}
	if empty.NumVertices() != 0 || empty.NumEdges() != 0 {
		t.Fatalf("got |V|=%d |E|=%d, want empty", empty.NumVertices(), empty.NumEdges())
	}
}

func TestRebuildErrors(t *testing.T) {
	g := rebuildTestGraph(t)
	cases := []struct {
		name string
		edit Edit
		want string
	}{
		{"attr out of range", Edit{Op: EditAddAttr, U: 6, Value: "a"}, "outside range"},
		{"del attr out of range", Edit{Op: EditDelAttr, U: 99, Value: "a"}, "outside range"},
		{"edge out of range", Edit{Op: EditAddEdge, U: 0, V: 6}, "outside vertex range"},
		{"self loop", Edit{Op: EditAddEdge, U: 2, V: 2}, "self-loop"},
		{"del vertex out of range", Edit{Op: EditDelVertex, U: 6}, "outside range"},
		{"unknown op", Edit{Op: EditOp(99)}, "unknown op"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Rebuild(g, []Edit{tc.edit}); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want mention of %q", err, tc.want)
			}
		})
	}
	// Sequential semantics: an edit can be invalidated by a preceding delete.
	_, err := Rebuild(g, []Edit{{Op: EditDelVertex, U: 5}, {Op: EditAddEdge, U: 0, V: 5}})
	if err == nil || !strings.Contains(err.Error(), "edit 1") {
		t.Fatalf("err = %v, want failure at edit 1", err)
	}
}

// TestRebuildFingerprintWarmness pins the cache-friendliness contract: edits
// confined to one island — including vertex adds and deletes that shift every
// global id behind them — leave the other island's component fingerprint and
// the global attribute fingerprint unchanged, as long as no attribute
// occurrence count moves.
func TestRebuildFingerprintWarmness(t *testing.T) {
	// Island 1 = {0,1,2} with vertex 2 attributeless, island 2 = {3,4,5}.
	b := NewBuilder(6)
	for _, e := range [][2]VertexID{{0, 1}, {1, 2}, {3, 4}, {4, 5}} {
		_ = b.AddEdge(e[0], e[1])
	}
	_ = b.AddAttr(0, "a")
	_ = b.AddAttr(1, "a")
	_ = b.AddAttr(3, "x")
	_ = b.AddAttr(4, "x")
	_ = b.AddAttr(5, "y")
	g := b.Build()
	fpOf := func(g *Graph, member VertexID) Fingerprint {
		p := Components(g)
		return p.Fingerprints(g)[p.Group[member]]
	}
	island2 := fpOf(g, 3)
	global := GlobalFingerprint(g)

	// Grow island 1 by an attributeless vertex wired in, then delete another
	// island-1 vertex: island 2's ids shift from {3,4,5} to {2,3,4} and back.
	g2, err := Rebuild(g, []Edit{
		{Op: EditAddVertex},
		{Op: EditAddEdge, U: 6, V: 0},
		{Op: EditDelVertex, U: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := fpOf(g2, 2); got != island2 {
		t.Fatalf("island 2 fingerprint changed under island-1-only edits:\n got %s\nwant %s", got, island2)
	}
	if got := GlobalFingerprint(g2); got != global {
		t.Fatalf("global fingerprint changed without attribute changes:\n got %s\nwant %s", got, global)
	}

	// Control: deleting an attribute-carrying vertex must change the global
	// fingerprint (its occurrence counts fund the standard table).
	g3, err := Rebuild(g, []Edit{{Op: EditDelVertex, U: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if got := GlobalFingerprint(g3); got == global {
		t.Fatal("global fingerprint unchanged after deleting an attributed vertex")
	}
}

// TestWriteLoadIsolatedVertices pins the io fix Rebuild depends on: isolated
// attributeless vertices (routinely produced by add_vertex) survive a
// Write/Load roundtrip instead of silently shrinking |V|.
func TestWriteLoadIsolatedVertices(t *testing.T) {
	g, err := Rebuild(rebuildTestGraph(t), []Edit{
		{Op: EditAddVertex}, // trailing isolated vertex 6
		{Op: EditAddVertex}, // trailing isolated vertex 7
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "v 7\n") {
		t.Fatalf("Write emitted no bare v line for the trailing isolated vertex:\n%s", buf.String())
	}
	back, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	graphEqual(t, back, g)

	// Second roundtrip is byte-stable.
	var buf2 bytes.Buffer
	if err := Write(&buf2, back); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("Write/Load/Write is not byte-stable")
	}
}
