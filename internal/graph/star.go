package graph

import (
	"fmt"
	"sort"
)

// This file implements the star-shaped structural notions of paper §III:
// stars, extended stars, their appearances in an attributed graph, and the
// matching relation between attribute-stars and stars. The miner itself
// never materialises stars (the inverted database encodes them implicitly);
// these operations serve validation, pattern explanation, and downstream
// consumers that need concrete occurrences.

// Star is an undirected star graph: a core adjacent to every leaf, with no
// leaf-leaf edges (paper §III).
type Star struct {
	Core   VertexID
	Leaves []VertexID
}

// StarAt returns the star centred at v in g, using all neighbours as leaves.
// Any vertex of a graph is the core of such a star (§IV-B).
func StarAt(g *Graph, v VertexID) Star {
	return Star{Core: v, Leaves: append([]VertexID(nil), g.Neighbors(v)...)}
}

// ExtendedStar is a star with attribute values attached to its vertices
// (paper §III): a concrete pattern with both structure and labels.
type ExtendedStar struct {
	CoreAttrs []AttrID   // attribute values of the core
	LeafAttrs [][]AttrID // attribute values of each leaf, by leaf position
}

// Validate checks structural sanity: at least one leaf, sorted value sets.
func (x ExtendedStar) Validate() error {
	if len(x.LeafAttrs) == 0 {
		return fmt.Errorf("graph: extended star needs at least one leaf")
	}
	check := func(vals []AttrID, what string) error {
		for i := 1; i < len(vals); i++ {
			if vals[i] <= vals[i-1] {
				return fmt.Errorf("graph: %s attribute values must be sorted and distinct", what)
			}
		}
		return nil
	}
	if err := check(x.CoreAttrs, "core"); err != nil {
		return err
	}
	for _, leaf := range x.LeafAttrs {
		if err := check(leaf, "leaf"); err != nil {
			return err
		}
	}
	return nil
}

// subset reports whether every value of want appears in the sorted have.
func subset(want, have []AttrID) bool {
	i := 0
	for _, w := range want {
		for i < len(have) && have[i] < w {
			i++
		}
		if i >= len(have) || have[i] != w {
			return false
		}
		i++
	}
	return true
}

// AppearsAt reports whether the extended star appears in g with its core
// mapped to vertex v (paper §III's appearance: an injective mapping of
// leaves to distinct neighbours, each carrying the leaf's attribute values;
// the core must carry the core values).
func (x ExtendedStar) AppearsAt(g *Graph, v VertexID) bool {
	if !subset(x.CoreAttrs, g.Attrs(v)) {
		return false
	}
	nbrs := g.Neighbors(v)
	if len(nbrs) < len(x.LeafAttrs) {
		return false
	}
	// Bipartite matching between pattern leaves and neighbours. Leaf counts
	// are tiny (pattern-sized), so the classic augmenting-path matcher is
	// plenty.
	candidates := make([][]int, len(x.LeafAttrs))
	for li, want := range x.LeafAttrs {
		for ni, u := range nbrs {
			if subset(want, g.Attrs(u)) {
				candidates[li] = append(candidates[li], ni)
			}
		}
		if len(candidates[li]) == 0 {
			return false
		}
	}
	matchOfNbr := make([]int, len(nbrs))
	for i := range matchOfNbr {
		matchOfNbr[i] = -1
	}
	var try func(li int, seen []bool) bool
	try = func(li int, seen []bool) bool {
		for _, ni := range candidates[li] {
			if seen[ni] {
				continue
			}
			seen[ni] = true
			if matchOfNbr[ni] == -1 || try(matchOfNbr[ni], seen) {
				matchOfNbr[ni] = li
				return true
			}
		}
		return false
	}
	for li := range x.LeafAttrs {
		if !try(li, make([]bool, len(nbrs))) {
			return false
		}
	}
	return true
}

// Appearances returns all core vertices where the extended star appears.
func (x ExtendedStar) Appearances(g *Graph) []VertexID {
	var out []VertexID
	for v := 0; v < g.NumVertices(); v++ {
		if x.AppearsAt(g, VertexID(v)) {
			out = append(out, VertexID(v))
		}
	}
	return out
}

// AStarShape is the (coreset, leafset) shape of an attribute-star, used for
// matching against concrete stars (paper §IV-A). It deliberately mirrors the
// miner's pattern type without importing it: graph stays dependency-free.
type AStarShape struct {
	Core []AttrID // sorted
	Leaf []AttrID // sorted
}

// MatchesAt reports whether the a-star matches the star centred at v
// (paper §IV-A): (1) the core vertex carries every core value, and (2) for
// every leaf value some neighbour carries it. Unlike extended stars, leaf
// values may share a neighbour and need no injective mapping.
func (s AStarShape) MatchesAt(g *Graph, v VertexID) bool {
	if !subset(s.Core, g.Attrs(v)) {
		return false
	}
	for _, lv := range s.Leaf {
		found := false
		for _, u := range g.Neighbors(v) {
			if g.HasAttr(u, lv) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// Matches returns all core vertices whose stars the a-star matches — by
// construction of the inverted database, exactly the positions the miner
// records for the corresponding line.
func (s AStarShape) Matches(g *Graph) []VertexID {
	var out []VertexID
	for v := 0; v < g.NumVertices(); v++ {
		if s.MatchesAt(g, VertexID(v)) {
			out = append(out, VertexID(v))
		}
	}
	return out
}

// NewAStarShape sorts and validates the value sets.
func NewAStarShape(core, leaf []AttrID) (AStarShape, error) {
	s := AStarShape{
		Core: append([]AttrID(nil), core...),
		Leaf: append([]AttrID(nil), leaf...),
	}
	sort.Slice(s.Core, func(i, j int) bool { return s.Core[i] < s.Core[j] })
	sort.Slice(s.Leaf, func(i, j int) bool { return s.Leaf[i] < s.Leaf[j] })
	if len(s.Leaf) == 0 {
		return s, fmt.Errorf("graph: a-star needs at least one leaf value")
	}
	for i := 1; i < len(s.Core); i++ {
		if s.Core[i] == s.Core[i-1] {
			return s, fmt.Errorf("graph: duplicate core value %d", s.Core[i])
		}
	}
	for i := 1; i < len(s.Leaf); i++ {
		if s.Leaf[i] == s.Leaf[i-1] {
			return s, fmt.Errorf("graph: duplicate leaf value %d", s.Leaf[i])
		}
	}
	return s, nil
}
