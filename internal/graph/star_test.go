package graph

import (
	"math/rand"
	"testing"
)

func TestStarAt(t *testing.T) {
	g := fig1(t)
	s := StarAt(g, 0)
	if s.Core != 0 || len(s.Leaves) != 3 {
		t.Fatalf("StarAt(v1) = %+v", s)
	}
}

func ids(t *testing.T, g *Graph, names ...string) []AttrID {
	t.Helper()
	out := make([]AttrID, len(names))
	for i, n := range names {
		id, ok := g.Vocab().Lookup(n)
		if !ok {
			t.Fatalf("value %q missing", n)
		}
		out[i] = id
	}
	return out
}

// TestExtendedStarFig1 reproduces the paper's Fig. 1(b)/(c): the extended
// star with core {a} and leaves {b}, {c} appears at v1 (leaves v4, v3) and
// at v5 (leaves v4, v3).
func TestExtendedStarFig1(t *testing.T) {
	g := fig1(t)
	x := ExtendedStar{
		CoreAttrs: ids(t, g, "a"),
		LeafAttrs: [][]AttrID{ids(t, g, "b"), ids(t, g, "c")},
	}
	if err := x.Validate(); err != nil {
		t.Fatal(err)
	}
	got := x.Appearances(g)
	want := []VertexID{0, 4} // v1 and v5
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("Appearances = %v, want %v", got, want)
	}
}

func TestExtendedStarInjectiveMapping(t *testing.T) {
	// Core with ONE neighbour carrying x: the pattern wanting two x-leaves
	// must not appear (leaves map to distinct vertices).
	b := NewBuilder(3)
	_ = b.AddAttr(0, "c")
	_ = b.AddAttr(1, "x")
	_ = b.AddAttr(2, "y")
	_ = b.AddEdge(0, 1)
	_ = b.AddEdge(0, 2)
	g := b.Build()
	x := ExtendedStar{
		CoreAttrs: ids(t, g, "c"),
		LeafAttrs: [][]AttrID{ids(t, g, "x"), ids(t, g, "x")},
	}
	if x.AppearsAt(g, 0) {
		t.Fatal("two leaves matched the same neighbour")
	}
	ok := ExtendedStar{
		CoreAttrs: ids(t, g, "c"),
		LeafAttrs: [][]AttrID{ids(t, g, "x"), ids(t, g, "y")},
	}
	if !ok.AppearsAt(g, 0) {
		t.Fatal("valid extended star not found")
	}
}

func TestExtendedStarMatchingNeedsAugmentingPaths(t *testing.T) {
	// Leaf patterns {x} and {x,y}; neighbours u1={x}, u2={x,y}. A greedy
	// matcher that assigns {x}→u2 first must backtrack.
	b := NewBuilder(3)
	_ = b.AddAttr(0, "c")
	_ = b.AddAttr(1, "x")
	_ = b.AddAttr(2, "x")
	_ = b.AddAttr(2, "y")
	_ = b.AddEdge(0, 1)
	_ = b.AddEdge(0, 2)
	g := b.Build()
	x := ExtendedStar{
		CoreAttrs: ids(t, g, "c"),
		LeafAttrs: [][]AttrID{ids(t, g, "x", "y"), ids(t, g, "x")},
	}
	if !x.AppearsAt(g, 0) {
		t.Fatal("matcher failed to find the assignment {x,y}->v2, {x}->v1")
	}
}

func TestExtendedStarValidate(t *testing.T) {
	if err := (ExtendedStar{}).Validate(); err == nil {
		t.Error("leafless star accepted")
	}
	bad := ExtendedStar{CoreAttrs: []AttrID{2, 1}, LeafAttrs: [][]AttrID{{0}}}
	if err := bad.Validate(); err == nil {
		t.Error("unsorted core accepted")
	}
}

// TestAStarMatchesEqualInvertedDBSemantics checks §IV-A matching: the a-star
// ({a},{b,c}) matches stars at v1 and v5 of Fig. 1 — the same positions the
// paper's Fig. 4 merged line records.
func TestAStarMatchesFig1(t *testing.T) {
	g := fig1(t)
	s, err := NewAStarShape(ids(t, g, "a"), ids(t, g, "b", "c"))
	if err != nil {
		t.Fatal(err)
	}
	got := s.Matches(g)
	if len(got) != 2 || got[0] != 0 || got[1] != 4 {
		t.Fatalf("Matches = %v, want [v1 v5]", got)
	}
}

func TestAStarLeafValuesMayShareNeighbour(t *testing.T) {
	// Unlike extended stars, a-star matching allows one neighbour to carry
	// several leaf values.
	b := NewBuilder(2)
	_ = b.AddAttr(0, "c")
	_ = b.AddAttr(1, "x")
	_ = b.AddAttr(1, "y")
	_ = b.AddEdge(0, 1)
	g := b.Build()
	s, err := NewAStarShape(ids(t, g, "c"), ids(t, g, "x", "y"))
	if err != nil {
		t.Fatal(err)
	}
	if !s.MatchesAt(g, 0) {
		t.Fatal("a-star should match through a single neighbour")
	}
}

func TestNewAStarShapeValidation(t *testing.T) {
	if _, err := NewAStarShape([]AttrID{1}, nil); err == nil {
		t.Error("empty leafset accepted")
	}
	if _, err := NewAStarShape([]AttrID{1, 1}, []AttrID{2}); err == nil {
		t.Error("duplicate core accepted")
	}
	if _, err := NewAStarShape([]AttrID{1}, []AttrID{2, 2}); err == nil {
		t.Error("duplicate leaf accepted")
	}
	s, err := NewAStarShape([]AttrID{3, 1}, []AttrID{5, 2})
	if err != nil {
		t.Fatal(err)
	}
	if s.Core[0] != 1 || s.Leaf[0] != 2 {
		t.Error("values not sorted")
	}
}

// Property: a-star matching is monotone — removing a leaf value never
// removes positions.
func TestAStarMatchMonotoneProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		b := NewBuilder(15)
		names := []string{"p", "q", "r", "s"}
		for v := 0; v < 15; v++ {
			for _, n := range names {
				if rng.Float64() < 0.4 {
					_ = b.AddAttr(VertexID(v), n)
				}
			}
			if v > 0 {
				_ = b.AddEdge(VertexID(v), VertexID(rng.Intn(v)))
			}
		}
		g := b.Build()
		p, _ := g.Vocab().Lookup("p")
		q, _ := g.Vocab().Lookup("q")
		r, _ := g.Vocab().Lookup("r")
		big, err := NewAStarShape([]AttrID{p}, []AttrID{q, r})
		if err != nil {
			t.Fatal(err)
		}
		small, err := NewAStarShape([]AttrID{p}, []AttrID{q})
		if err != nil {
			t.Fatal(err)
		}
		bigSet := map[VertexID]bool{}
		for _, v := range big.Matches(g) {
			bigSet[v] = true
		}
		smallSet := map[VertexID]bool{}
		for _, v := range small.Matches(g) {
			smallSet[v] = true
		}
		for v := range bigSet {
			if !smallSet[v] {
				t.Fatalf("trial %d: match set not monotone at vertex %d", trial, v)
			}
		}
	}
}
