// Package graph implements the attributed-graph substrate for CSPM: an
// undirected graph whose vertices carry sets of nominal attribute values
// (paper §III). It provides construction, validation, adjacency access,
// attribute interning, statistics (Table II columns) and text-format I/O.
package graph

import (
	"errors"
	"fmt"
	"sort"
)

// VertexID identifies a vertex; vertices are dense 0..N-1.
type VertexID = uint32

// Graph is an undirected attributed graph G = (A, λ, V, E). Self-loops are
// rejected (paper §III); parallel edges collapse to one.
//
// A Graph is built through Builder or the loaders and is immutable
// afterwards, which makes it safe for concurrent readers.
type Graph struct {
	adj   [][]VertexID // sorted neighbour lists
	attrs [][]AttrID   // sorted attribute values per vertex
	vocab *Vocab
	edges int
}

// Builder accumulates vertices, edges and attribute values and produces an
// immutable Graph.
type Builder struct {
	n     int
	adj   []map[VertexID]struct{}
	attrs []map[AttrID]struct{}
	vocab *Vocab
}

// NewBuilder returns a Builder for a graph with n vertices.
func NewBuilder(n int) *Builder {
	return &Builder{
		n:     n,
		adj:   make([]map[VertexID]struct{}, n),
		attrs: make([]map[AttrID]struct{}, n),
		vocab: NewVocab(),
	}
}

// Vocab exposes the builder's vocabulary so callers can pre-intern values.
func (b *Builder) Vocab() *Vocab { return b.vocab }

// ErrSelfLoop is returned when an edge connects a vertex to itself.
var ErrSelfLoop = errors.New("graph: self-loops are not allowed")

// AddEdge inserts the undirected edge {u, v}. Adding an existing edge is a
// no-op. It returns ErrSelfLoop for u == v and an error for out-of-range ids.
func (b *Builder) AddEdge(u, v VertexID) error {
	if u == v {
		return fmt.Errorf("%w: vertex %d", ErrSelfLoop, u)
	}
	if int(u) >= b.n || int(v) >= b.n {
		return fmt.Errorf("graph: edge {%d,%d} outside vertex range [0,%d)", u, v, b.n)
	}
	if b.adj[u] == nil {
		b.adj[u] = make(map[VertexID]struct{})
	}
	if b.adj[v] == nil {
		b.adj[v] = make(map[VertexID]struct{})
	}
	b.adj[u][v] = struct{}{}
	b.adj[v][u] = struct{}{}
	return nil
}

// AddAttr attaches the attribute value named val to vertex v, interning it.
func (b *Builder) AddAttr(v VertexID, val string) error {
	return b.AddAttrID(v, b.vocab.ID(val))
}

// AddAttrID attaches an already interned attribute value to vertex v.
func (b *Builder) AddAttrID(v VertexID, id AttrID) error {
	if int(v) >= b.n {
		return fmt.Errorf("graph: vertex %d outside range [0,%d)", v, b.n)
	}
	if b.attrs[v] == nil {
		b.attrs[v] = make(map[AttrID]struct{})
	}
	b.attrs[v][id] = struct{}{}
	return nil
}

// Build freezes the builder into an immutable Graph.
func (b *Builder) Build() *Graph {
	g := &Graph{
		adj:   make([][]VertexID, b.n),
		attrs: make([][]AttrID, b.n),
		vocab: b.vocab,
	}
	for v := 0; v < b.n; v++ {
		if m := b.adj[v]; len(m) > 0 {
			lst := make([]VertexID, 0, len(m))
			for u := range m {
				lst = append(lst, u)
			}
			sort.Slice(lst, func(i, j int) bool { return lst[i] < lst[j] })
			g.adj[v] = lst
			g.edges += len(lst)
		}
		if m := b.attrs[v]; len(m) > 0 {
			lst := make([]AttrID, 0, len(m))
			for a := range m {
				lst = append(lst, a)
			}
			sort.Slice(lst, func(i, j int) bool { return lst[i] < lst[j] })
			g.attrs[v] = lst
		}
	}
	g.edges /= 2
	return g
}

// NumVertices reports |V|.
func (g *Graph) NumVertices() int { return len(g.adj) }

// NumEdges reports |E| (each undirected edge counted once).
func (g *Graph) NumEdges() int { return g.edges }

// Neighbors returns the sorted neighbour list of v. Callers must not modify
// the returned slice.
func (g *Graph) Neighbors(v VertexID) []VertexID { return g.adj[v] }

// Degree reports the number of neighbours of v.
func (g *Graph) Degree(v VertexID) int { return len(g.adj[v]) }

// Attrs returns the sorted attribute values of v. Callers must not modify
// the returned slice.
func (g *Graph) Attrs(v VertexID) []AttrID { return g.attrs[v] }

// HasAttr reports whether vertex v carries attribute value a.
func (g *Graph) HasAttr(v VertexID, a AttrID) bool {
	lst := g.attrs[v]
	i := sort.Search(len(lst), func(i int) bool { return lst[i] >= a })
	return i < len(lst) && lst[i] == a
}

// HasEdge reports whether the undirected edge {u, v} exists.
func (g *Graph) HasEdge(u, v VertexID) bool {
	lst := g.adj[u]
	i := sort.Search(len(lst), func(i int) bool { return lst[i] >= v })
	return i < len(lst) && lst[i] == v
}

// Vocab returns the attribute vocabulary shared by all vertices.
func (g *Graph) Vocab() *Vocab { return g.vocab }

// NumAttrValues reports |A|, the number of distinct attribute values.
func (g *Graph) NumAttrValues() int { return g.vocab.Size() }

// AttrOccurrences counts (vertex, value) pairs, i.e. Σ_v |λ(v)|.
func (g *Graph) AttrOccurrences() int {
	n := 0
	for _, lst := range g.attrs {
		n += len(lst)
	}
	return n
}

// Connected reports whether the graph is connected (isolated-vertex-free
// inputs only; an empty graph counts as connected).
func (g *Graph) Connected() bool {
	n := len(g.adj)
	if n == 0 {
		return true
	}
	seen := make([]bool, n)
	stack := []VertexID{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, u := range g.adj[v] {
			if !seen[u] {
				seen[u] = true
				count++
				stack = append(stack, u)
			}
		}
	}
	return count == n
}

// Stats summarises a graph for Table II-style reporting.
type Stats struct {
	Vertices     int
	Edges        int
	AttrValues   int // |A|
	Occurrences  int // Σ_v |λ(v)|
	AvgDegree    float64
	AvgAttrs     float64
	MaxDegree    int
	IsConnected  bool
	UsedCoresets int // attribute values occurring on ≥1 vertex with ≥1 neighbour
}

// ComputeStats derives summary statistics in one pass.
func (g *Graph) ComputeStats() Stats {
	st := Stats{
		Vertices:    g.NumVertices(),
		Edges:       g.NumEdges(),
		AttrValues:  g.NumAttrValues(),
		Occurrences: g.AttrOccurrences(),
		IsConnected: g.Connected(),
	}
	used := make(map[AttrID]struct{})
	for v := range g.adj {
		if d := len(g.adj[v]); d > st.MaxDegree {
			st.MaxDegree = d
		}
		if len(g.adj[v]) > 0 {
			for _, a := range g.attrs[v] {
				used[a] = struct{}{}
			}
		}
	}
	st.UsedCoresets = len(used)
	if st.Vertices > 0 {
		st.AvgDegree = 2 * float64(st.Edges) / float64(st.Vertices)
		st.AvgAttrs = float64(st.Occurrences) / float64(st.Vertices)
	}
	return st
}

// String renders the stats as a single human-readable line.
func (s Stats) String() string {
	return fmt.Sprintf("|V|=%d |E|=%d |A|=%d occ=%d avgDeg=%.2f avgAttrs=%.2f connected=%v",
		s.Vertices, s.Edges, s.AttrValues, s.Occurrences, s.AvgDegree, s.AvgAttrs, s.IsConnected)
}
