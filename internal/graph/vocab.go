package graph

import "fmt"

// CompareAttrs orders attribute-id slices lexicographically (shorter prefix
// first). It is the single ordering shared by pattern ranking tie-breaks and
// the canonical description-length summation, which must never diverge.
func CompareAttrs(a, b []AttrID) int {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

// AttrID is the interned identifier of a nominal attribute value. CSPM
// manipulates attribute values heavily (set intersections, map keys), so the
// whole pipeline works on dense int32 ids and only translates back to strings
// at the reporting boundary.
type AttrID int32

// Vocab interns attribute-value strings to dense AttrIDs and back. It is not
// safe for concurrent mutation; build it up front, then share it read-only.
type Vocab struct {
	byName map[string]AttrID
	names  []string
}

// NewVocab returns an empty vocabulary.
func NewVocab() *Vocab {
	return &Vocab{byName: make(map[string]AttrID)}
}

// ID interns name, assigning a fresh id on first sight.
func (v *Vocab) ID(name string) AttrID {
	if id, ok := v.byName[name]; ok {
		return id
	}
	id := AttrID(len(v.names))
	v.byName[name] = id
	v.names = append(v.names, name)
	return id
}

// Lookup returns the id of name without interning it.
func (v *Vocab) Lookup(name string) (AttrID, bool) {
	id, ok := v.byName[name]
	return id, ok
}

// Name translates an id back to its string. It panics on out-of-range ids,
// which always indicates a vocabulary mix-up between graphs.
func (v *Vocab) Name(id AttrID) string {
	if int(id) < 0 || int(id) >= len(v.names) {
		panic(fmt.Sprintf("graph: AttrID %d outside vocabulary of size %d", id, len(v.names)))
	}
	return v.names[id]
}

// Size reports the number of distinct attribute values interned so far.
func (v *Vocab) Size() int { return len(v.names) }

// Names returns all interned names indexed by AttrID. Callers must not
// modify the returned slice.
func (v *Vocab) Names() []string { return v.names }
