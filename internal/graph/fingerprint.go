// Canonical content fingerprints for incremental mining (see DESIGN.md
// "Shard-result cache"). A fingerprint summarises everything a shard search
// reads from its vertex group — remapped vertex ids, edges, and attribute
// content — so equal fingerprints mean the group would mine to the same
// result under the same global attribute context. Fingerprints are content
// hashes, not isomorphism certificates: a group keeps its fingerprint when
// it is translated to a different global id range or when attribute values
// are interned in a different order, but relabeling vertices *within* the
// group is a different content and hashes differently.
package graph

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"sort"
)

// Fingerprint is a 256-bit canonical content hash, usable as a map key.
type Fingerprint [32]byte

// String renders the fingerprint as lowercase hex.
func (f Fingerprint) String() string { return hex.EncodeToString(f[:]) }

// fpHasher accumulates the length-prefixed canonical byte stream of one
// fingerprint. All integers are uvarint-encoded and every variable-length
// field is count-prefixed, so the stream is prefix-free and two different
// canonical forms can never collide byte-wise.
type fpHasher struct {
	buf  []byte
	name []string // scratch for per-vertex sorted attribute names
}

func (h *fpHasher) uvarint(x uint64) { h.buf = binary.AppendUvarint(h.buf, x) }
func (h *fpHasher) str(s string) {
	h.uvarint(uint64(len(s)))
	h.buf = append(h.buf, s...)
}
func (h *fpHasher) sum() Fingerprint { return sha256.Sum256(h.buf) }

// Fingerprints computes the canonical fingerprint of every group of p, in
// group-id order. The canonical form remaps each group's vertices to local
// ids 0..n-1 in ascending global-id order — the same remapping the shard
// database construction uses — and spells attribute values by NAME in
// lexicographic order, so the hash is independent of where the group sits in
// the global vertex-id space and of the order attribute values were interned.
// Neighbours of a group vertex always belong to the group (groups are unions
// of connected components), so the group's edge set is self-contained.
func (p Partition) Fingerprints(g *Graph) []Fingerprint {
	members := p.Members()
	local := make([]uint32, g.NumVertices())
	for _, verts := range members {
		for li, v := range verts {
			local[v] = uint32(li)
		}
	}
	out := make([]Fingerprint, p.Count)
	h := &fpHasher{}
	for gi, verts := range members {
		h.buf = h.buf[:0]
		h.uvarint(uint64(len(verts)))
		// Attribute section: per vertex in local order, the sorted value names.
		for _, v := range verts {
			attrs := g.attrs[v]
			names := h.name[:0]
			for _, a := range attrs {
				names = append(names, g.vocab.Name(a))
			}
			h.name = names
			sort.Strings(names)
			h.uvarint(uint64(len(names)))
			for _, nm := range names {
				h.str(nm)
			}
		}
		// Edge section: per vertex in local order, the forward neighbours as
		// local ids. Adjacency lists are sorted by global id and the remap is
		// monotone, so the local ids stream out ascending deterministically.
		for _, v := range verts {
			adj := g.adj[v]
			fwd := 0
			for _, u := range adj {
				if u > v {
					fwd++
				}
			}
			h.uvarint(uint64(fwd))
			for _, u := range adj {
				if u > v {
					h.uvarint(uint64(local[u]))
				}
			}
		}
		out[gi] = h.sum()
	}
	return out
}

// GlobalFingerprint hashes the graph-global attribute context a cached shard
// result is priced under: the interned vocabulary in id order and each
// value's total occurrence count. The standard table — and with it every gain
// and code length — is a pure function of these counts, and cached line
// stats store interned AttrIDs, so a cache entry is valid exactly when this
// fingerprint matches: any new value, renamed value, changed interning order
// or shifted occurrence count invalidates every entry, which is the sound
// default for a content-addressed cache.
func GlobalFingerprint(g *Graph) Fingerprint {
	nA := g.NumAttrValues()
	freq := make([]uint64, nA)
	for v := range g.attrs {
		for _, a := range g.attrs[v] {
			freq[a]++
		}
	}
	h := &fpHasher{}
	h.uvarint(uint64(nA))
	for id := 0; id < nA; id++ {
		h.str(g.vocab.Name(AttrID(id)))
		h.uvarint(freq[id])
	}
	return h.sum()
}
