package graph

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// The text format mirrors the paper's two-part input (§IV-F): an adjacency
// part and a vertex→attribute mapping part. One file, line-oriented:
//
//	# comments and blank lines are ignored
//	v <id> [<value> ...]           vertex attributes (id in 0..N-1)
//	e <u> <v>                      undirected edge
//
// Vertex count is inferred as max id + 1; a v line with no values just
// declares the vertex. Values may not contain whitespace.

// Load parses the text format from r.
func Load(r io.Reader) (*Graph, error) {
	type edge struct{ u, v uint64 }
	type vattr struct {
		v    uint64
		vals []string
	}
	var (
		edges  []edge
		vattrs []vattr
		maxID  uint64
		anyRow bool
	)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "v":
			if len(fields) < 2 {
				return nil, fmt.Errorf("graph: line %d: v needs a vertex id", lineNo)
			}
			id, err := strconv.ParseUint(fields[1], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad vertex id %q", lineNo, fields[1])
			}
			vattrs = append(vattrs, vattr{v: id, vals: fields[2:]})
			if id > maxID {
				maxID = id
			}
			anyRow = true
		case "e":
			if len(fields) != 3 {
				return nil, fmt.Errorf("graph: line %d: e needs exactly two vertex ids", lineNo)
			}
			u, err := strconv.ParseUint(fields[1], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad vertex id %q", lineNo, fields[1])
			}
			v, err := strconv.ParseUint(fields[2], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad vertex id %q", lineNo, fields[2])
			}
			edges = append(edges, edge{u, v})
			if u > maxID {
				maxID = u
			}
			if v > maxID {
				maxID = v
			}
			anyRow = true
		default:
			return nil, fmt.Errorf("graph: line %d: unknown record type %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: reading input: %w", err)
	}
	if !anyRow {
		return NewBuilder(0).Build(), nil
	}
	b := NewBuilder(int(maxID) + 1)
	for _, va := range vattrs {
		for _, val := range va.vals {
			if err := b.AddAttr(VertexID(va.v), val); err != nil {
				return nil, err
			}
		}
	}
	for _, e := range edges {
		if err := b.AddEdge(VertexID(e.u), VertexID(e.v)); err != nil {
			return nil, err
		}
	}
	return b.Build(), nil
}

// Write serialises g in the text format accepted by Load. Output is
// deterministic: vertices ascending, then edges with u < v ascending.
func Write(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	for v := 0; v < g.NumVertices(); v++ {
		attrs := g.Attrs(VertexID(v))
		if len(attrs) == 0 {
			// A vertex with no attributes and no edges would leave no trace in
			// the output, and Load infers |V| as max id + 1 — so a bare v line
			// keeps isolated attributeless vertices (which dynamic add_vertex
			// creates routinely) from vanishing on a Write/Load roundtrip.
			if g.Degree(VertexID(v)) == 0 {
				if _, err := fmt.Fprintf(bw, "v %d\n", v); err != nil {
					return err
				}
			}
			continue
		}
		names := make([]string, len(attrs))
		for i, a := range attrs {
			names[i] = g.Vocab().Name(a)
		}
		sort.Strings(names)
		if _, err := fmt.Fprintf(bw, "v %d %s\n", v, strings.Join(names, " ")); err != nil {
			return err
		}
	}
	for u := 0; u < g.NumVertices(); u++ {
		for _, v := range g.Neighbors(VertexID(u)) {
			if VertexID(u) < v {
				if _, err := fmt.Fprintf(bw, "e %d %d\n", u, v); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}
