package graph

import "fmt"

// EditOp enumerates the graph edit operations understood by Rebuild.
type EditOp uint8

const (
	// EditAddAttr attaches Value to vertex U (no-op if already present).
	EditAddAttr EditOp = iota + 1
	// EditDelAttr detaches Value from vertex U (no-op if absent or never
	// interned; a deleted value keeps its interned id, see Rebuild).
	EditDelAttr
	// EditAddEdge inserts the undirected edge {U, V} (no-op if present).
	EditAddEdge
	// EditDelEdge removes the undirected edge {U, V} (no-op if absent).
	EditDelEdge
	// EditAddVertex appends one attributeless vertex with id = current |V|.
	// Later edits in the same batch may reference it.
	EditAddVertex
	// EditDelVertex removes vertex U with its attributes and incident edges;
	// every vertex with a larger id shifts down by one. Later edits in the
	// same batch address the shifted ids.
	EditDelVertex
)

// String names the op for error messages.
func (op EditOp) String() string {
	switch op {
	case EditAddAttr:
		return "add_attr"
	case EditDelAttr:
		return "del_attr"
	case EditAddEdge:
		return "add_edge"
	case EditDelEdge:
		return "del_edge"
	case EditAddVertex:
		return "add_vertex"
	case EditDelVertex:
		return "del_vertex"
	}
	return fmt.Sprintf("EditOp(%d)", uint8(op))
}

// Edit is one edit to an attributed graph: the unit Rebuild applies. U is
// the edited vertex (attribute and vertex ops) or one edge endpoint, V the
// other endpoint (edge ops only), Value the attribute value (attribute ops
// only). Unused fields are ignored.
type Edit struct {
	Op    EditOp
	U, V  VertexID
	Value string
}

// editVtx is Rebuild's working representation of one vertex. Identity is the
// pointer, not the id: deleting a vertex splices it out of the slice without
// renumbering anything, and the final dense ids are simply the surviving
// slice positions.
type editVtx struct {
	attrs map[AttrID]struct{}
	adj   map[*editVtx]struct{}
}

// Rebuild applies edits to g in order — each edit sees the state produced by
// the ones before it, including mid-batch vertex-count changes — and freezes
// the result into a new immutable Graph. It fails on the first inapplicable
// edit (out-of-range vertex, self-loop, unknown op) without partial effect
// on g, which is never modified.
//
// Two invariants make rebuilt graphs cache-friendly across generations
// (DESIGN.md "Dynamic vertices & generation watch"):
//
//   - Interning order is preserved: the new graph re-interns g's full
//     vocabulary first, in g's id order, then values first seen in edits (in
//     edit order). Cached shard results store interned ids, so a cache hit
//     is only sound while equal ids mean equal names; a value whose last
//     occurrence is deleted keeps its id for the same reason.
//
//   - Vertex deletion shifts ids monotonically: the survivors keep their
//     relative order, so a connected component that lost no vertex maps to
//     the same canonical local form and its content fingerprint stays warm.
func Rebuild(g *Graph, edits []Edit) (*Graph, error) {
	n := g.NumVertices()
	verts := make([]*editVtx, n)
	for v := 0; v < n; v++ {
		verts[v] = &editVtx{}
	}
	for v := 0; v < n; v++ {
		if lst := g.Attrs(VertexID(v)); len(lst) > 0 {
			set := make(map[AttrID]struct{}, len(lst))
			for _, a := range lst {
				set[a] = struct{}{}
			}
			verts[v].attrs = set
		}
		if lst := g.Neighbors(VertexID(v)); len(lst) > 0 {
			adj := make(map[*editVtx]struct{}, len(lst))
			for _, u := range lst {
				adj[verts[u]] = struct{}{}
			}
			verts[v].adj = adj
		}
	}

	// The working vocabulary is seeded exactly like the final one below, so
	// ids assigned while applying edits are already the final ids.
	vocab := NewVocab()
	for _, name := range g.Vocab().Names() {
		vocab.ID(name)
	}

	for i, e := range edits {
		switch e.Op {
		case EditAddAttr:
			if int(e.U) >= len(verts) {
				return nil, rebuildErr(i, e, "vertex %d outside range [0,%d)", e.U, len(verts))
			}
			p := verts[e.U]
			if p.attrs == nil {
				p.attrs = make(map[AttrID]struct{})
			}
			p.attrs[vocab.ID(e.Value)] = struct{}{}
		case EditDelAttr:
			if int(e.U) >= len(verts) {
				return nil, rebuildErr(i, e, "vertex %d outside range [0,%d)", e.U, len(verts))
			}
			// Lookup, not ID: deleting a never-seen value must not intern it.
			if id, ok := vocab.Lookup(e.Value); ok && verts[e.U].attrs != nil {
				delete(verts[e.U].attrs, id)
			}
		case EditAddEdge, EditDelEdge:
			if int(e.U) >= len(verts) || int(e.V) >= len(verts) {
				return nil, rebuildErr(i, e, "edge {%d,%d} outside vertex range [0,%d)", e.U, e.V, len(verts))
			}
			if e.U == e.V {
				return nil, rebuildErr(i, e, "self-loop {%d,%d} is not allowed", e.U, e.V)
			}
			p, q := verts[e.U], verts[e.V]
			if e.Op == EditAddEdge {
				if p.adj == nil {
					p.adj = make(map[*editVtx]struct{})
				}
				if q.adj == nil {
					q.adj = make(map[*editVtx]struct{})
				}
				p.adj[q] = struct{}{}
				q.adj[p] = struct{}{}
			} else {
				delete(p.adj, q)
				delete(q.adj, p)
			}
		case EditAddVertex:
			verts = append(verts, &editVtx{})
		case EditDelVertex:
			if int(e.U) >= len(verts) {
				return nil, rebuildErr(i, e, "vertex %d outside range [0,%d)", e.U, len(verts))
			}
			victim := verts[e.U]
			for nb := range victim.adj {
				delete(nb.adj, victim)
			}
			verts = append(verts[:e.U], verts[e.U+1:]...)
		default:
			return nil, rebuildErr(i, e, "unknown op")
		}
	}

	b := NewBuilder(len(verts))
	bv := b.Vocab()
	for _, name := range vocab.Names() {
		bv.ID(name)
	}
	index := make(map[*editVtx]VertexID, len(verts))
	for i, p := range verts {
		index[p] = VertexID(i)
	}
	for i, p := range verts {
		for a := range p.attrs {
			// Ids and vertices are in range by construction; Builder cannot fail.
			_ = b.AddAttrID(VertexID(i), a)
		}
		for nb := range p.adj {
			if j := index[nb]; VertexID(i) < j {
				_ = b.AddEdge(VertexID(i), j)
			}
		}
	}
	return b.Build(), nil
}

func rebuildErr(i int, e Edit, format string, args ...any) error {
	return fmt.Errorf("graph: edit %d (%s): %s", i, e.Op, fmt.Sprintf(format, args...))
}
