package graph

import "testing"

// fpIslands builds a graph with two structurally fixed components. The
// transform hooks permute construction order without changing content:
// swapIslands chooses which island occupies the low vertex-id range,
// swapInterning interns one island's values before the other's.
func fpIslands(t *testing.T, swapIslands, swapInterning bool) *Graph {
	t.Helper()
	b := NewBuilder(7)
	// Island A: triangle 0-1-2 with values x,y. Island B: path 3-4-5-6 with
	// values p,q,r. Offsets move when swapIslands is set.
	offA, offB := VertexID(0), VertexID(3)
	if swapIslands {
		offA, offB = 4, 0
	}
	addA := func() {
		for _, e := range [][2]VertexID{{0, 1}, {1, 2}, {0, 2}} {
			if err := b.AddEdge(offA+e[0], offA+e[1]); err != nil {
				t.Fatal(err)
			}
		}
		b.AddAttr(offA+0, "x")
		b.AddAttr(offA+1, "y")
		b.AddAttr(offA+2, "x")
		b.AddAttr(offA+2, "y")
	}
	addB := func() {
		for _, e := range [][2]VertexID{{0, 1}, {1, 2}, {2, 3}} {
			if err := b.AddEdge(offB+e[0], offB+e[1]); err != nil {
				t.Fatal(err)
			}
		}
		b.AddAttr(offB+0, "p")
		b.AddAttr(offB+1, "q")
		b.AddAttr(offB+2, "r")
		b.AddAttr(offB+3, "q")
	}
	if swapInterning {
		addB()
		addA()
	} else {
		addA()
		addB()
	}
	return b.Build()
}

// fingerprintSet collects the component-group fingerprints of g as a set.
func fingerprintSet(g *Graph) map[Fingerprint]bool {
	p := AttrClosedComponents(g)
	out := make(map[Fingerprint]bool)
	for _, f := range p.Fingerprints(g) {
		out[f] = true
	}
	return out
}

func sameSet(a, b map[Fingerprint]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for f := range a {
		if !b[f] {
			return false
		}
	}
	return true
}

// TestFingerprintStability pins the canonicalisation: moving a component to
// a different global vertex-id range and interning attribute values in a
// different order must not change its fingerprint.
func TestFingerprintStability(t *testing.T) {
	base := fingerprintSet(fpIslands(t, false, false))
	if len(base) != 2 {
		t.Fatalf("expected 2 distinct group fingerprints, got %d", len(base))
	}
	for _, tc := range []struct {
		name                string
		swapIslands, swapIn bool
	}{
		{"islands permuted", true, false},
		{"interning permuted", false, true},
		{"both permuted", true, true},
	} {
		if got := fingerprintSet(fpIslands(t, tc.swapIslands, tc.swapIn)); !sameSet(got, base) {
			t.Errorf("%s: fingerprints changed", tc.name)
		}
	}
}

// TestFingerprintAttrOrderWithinVertex pins that the order attribute values
// are attached to one vertex is canonicalised away (values hash sorted by
// name, not by interned id).
func TestFingerprintAttrOrderWithinVertex(t *testing.T) {
	build := func(reversed bool) *Graph {
		b := NewBuilder(2)
		b.AddEdge(0, 1)
		vals := []string{"alpha", "beta", "gamma"}
		if reversed {
			vals = []string{"gamma", "beta", "alpha"}
		}
		for _, v := range vals {
			b.AddAttr(0, v)
		}
		b.AddAttr(1, "alpha")
		return b.Build()
	}
	a, bg := build(false), build(true)
	fa := AttrClosedComponents(a).Fingerprints(a)
	fb := AttrClosedComponents(bg).Fingerprints(bg)
	if fa[0] != fb[0] {
		t.Fatal("attribute insertion order changed the fingerprint")
	}
}

// TestFingerprintCollisions pins that every content dimension the shard
// search reads feeds the hash: edges, attribute values, attribute
// placement, and vertex count.
func TestFingerprintCollisions(t *testing.T) {
	base := func() *Builder {
		b := NewBuilder(3)
		b.AddEdge(0, 1)
		b.AddEdge(1, 2)
		b.AddAttr(0, "x")
		b.AddAttr(1, "y")
		b.AddAttr(2, "x")
		return b
	}
	fp := func(g *Graph) Fingerprint {
		p := AttrClosedComponents(g)
		fps := p.Fingerprints(g)
		if len(fps) != 1 {
			t.Fatalf("want one group, got %d", len(fps))
		}
		return fps[0]
	}
	ref := fp(base().Build())

	edge := base()
	edge.AddEdge(0, 2)
	if fp(edge.Build()) == ref {
		t.Error("extra edge did not change the fingerprint")
	}

	attr := base()
	attr.AddAttr(2, "y")
	if fp(attr.Build()) == ref {
		t.Error("extra attribute value did not change the fingerprint")
	}

	moved := NewBuilder(3) // same values, different placement
	moved.AddEdge(0, 1)
	moved.AddEdge(1, 2)
	moved.AddAttr(0, "x")
	moved.AddAttr(1, "x")
	moved.AddAttr(2, "y")
	if fp(moved.Build()) == ref {
		t.Error("moving attribute values between vertices did not change the fingerprint")
	}
}

// TestGlobalFingerprint pins the invalidation contract of the global half of
// the cache key: interning order, occurrence counts, value names and value
// set all feed it — exactly the inputs the standard table and the interned
// line stats depend on.
func TestGlobalFingerprint(t *testing.T) {
	build := func(mutate func(*Builder)) Fingerprint {
		b := NewBuilder(3)
		b.AddEdge(0, 1)
		b.AddEdge(1, 2)
		b.AddAttr(0, "x")
		b.AddAttr(1, "y")
		b.AddAttr(2, "x")
		if mutate != nil {
			mutate(b)
		}
		return GlobalFingerprint(b.Build())
	}
	ref := build(nil)
	if build(nil) != ref {
		t.Fatal("global fingerprint is not deterministic")
	}
	if build(func(b *Builder) { b.AddAttr(2, "y") }) == ref {
		t.Error("changed occurrence counts kept the global fingerprint")
	}
	if build(func(b *Builder) { b.AddAttr(2, "z") }) == ref {
		t.Error("a new value kept the global fingerprint")
	}

	// Different interning order must invalidate: cached line stats store
	// interned ids, which a permuted vocabulary would misread.
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddAttr(1, "y") // interns y before x
	b.AddAttr(0, "x")
	b.AddAttr(2, "x")
	if GlobalFingerprint(b.Build()) == ref {
		t.Error("permuted interning order kept the global fingerprint")
	}
}
