package graph

import (
	"reflect"
	"testing"
)

// twoIslands builds two components: {0,1,2} sharing values a/b and {3,4}
// sharing value c (disjoint alphabets).
func twoIslands(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder(5)
	_ = b.AddAttr(0, "a")
	_ = b.AddAttr(1, "b")
	_ = b.AddAttr(2, "a")
	_ = b.AddAttr(3, "c")
	_ = b.AddAttr(4, "c")
	for _, e := range [][2]VertexID{{0, 1}, {1, 2}, {3, 4}} {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func TestComponents(t *testing.T) {
	g := twoIslands(t)
	p := Components(g)
	if p.Count != 2 {
		t.Fatalf("Count = %d, want 2", p.Count)
	}
	want := []int32{0, 0, 0, 1, 1}
	if !reflect.DeepEqual(p.Group, want) {
		t.Fatalf("Group = %v, want %v", p.Group, want)
	}
	members := p.Members()
	if !reflect.DeepEqual(members[0], []VertexID{0, 1, 2}) || !reflect.DeepEqual(members[1], []VertexID{3, 4}) {
		t.Fatalf("Members = %v", members)
	}
	if sz := p.Sizes(); sz[0] != 3 || sz[1] != 2 {
		t.Fatalf("Sizes = %v", sz)
	}
}

func TestAttrClosedComponentsMergesSharedValues(t *testing.T) {
	// Same topology as twoIslands but the second component reuses value "a":
	// attribute closure must fold both components into one group.
	b := NewBuilder(5)
	_ = b.AddAttr(0, "a")
	_ = b.AddAttr(1, "b")
	_ = b.AddAttr(2, "a")
	_ = b.AddAttr(3, "a")
	_ = b.AddAttr(4, "c")
	for _, e := range [][2]VertexID{{0, 1}, {1, 2}, {3, 4}} {
		_ = b.AddEdge(e[0], e[1])
	}
	g := b.Build()
	if p := Components(g); p.Count != 2 {
		t.Fatalf("connectivity components = %d, want 2", p.Count)
	}
	if p := AttrClosedComponents(g); p.Count != 1 {
		t.Fatalf("attr-closed groups = %d, want 1", p.Count)
	}
	// Disjoint alphabets keep the groups apart.
	if p := AttrClosedComponents(twoIslands(t)); p.Count != 2 {
		t.Fatalf("disjoint alphabets merged: %d groups", p.Count)
	}
}

func TestUnionFind(t *testing.T) {
	uf := NewUnionFind(4)
	if !uf.Union(0, 1) || !uf.Union(2, 3) {
		t.Fatal("fresh unions reported no-op")
	}
	if uf.Union(1, 0) {
		t.Fatal("repeated union reported a merge")
	}
	if uf.Find(0) != uf.Find(1) || uf.Find(2) != uf.Find(3) {
		t.Fatal("united elements have different roots")
	}
	if uf.Find(0) == uf.Find(2) {
		t.Fatal("separate sets share a root")
	}
}

func TestPackBinsBalancesAndIsDeterministic(t *testing.T) {
	sizes := []int{7, 3, 3, 2, 9, 1}
	bins := PackBins(sizes, 3)
	if len(bins) != 3 {
		t.Fatalf("got %d bins", len(bins))
	}
	seen := make(map[int]bool)
	loads := make([]int, 3)
	for bi, bin := range bins {
		for i := 1; i < len(bin); i++ {
			if bin[i] <= bin[i-1] {
				t.Fatalf("bin %d not ascending: %v", bi, bin)
			}
		}
		for _, item := range bin {
			if seen[item] {
				t.Fatalf("item %d packed twice", item)
			}
			seen[item] = true
			loads[bi] += sizes[item]
		}
	}
	if len(seen) != len(sizes) {
		t.Fatalf("packed %d of %d items", len(seen), len(sizes))
	}
	// LPT on {9,7,3,3,2,1} into 3 bins: loads {9, 8, 8} — max bin 9.
	max := 0
	for _, l := range loads {
		if l > max {
			max = l
		}
	}
	if max != 9 {
		t.Fatalf("max load = %d (loads %v), want 9", max, loads)
	}
	if !reflect.DeepEqual(bins, PackBins(sizes, 3)) {
		t.Fatal("packing is not deterministic")
	}
	// More bins than items: extras stay empty, nothing is lost.
	wide := PackBins([]int{5, 4}, 4)
	n := 0
	for _, bin := range wide {
		n += len(bin)
	}
	if n != 2 {
		t.Fatalf("wide packing holds %d items", n)
	}
}
