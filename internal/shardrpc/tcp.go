package shardrpc

import (
	"encoding/gob"
	"fmt"
	"net"
	"runtime"
	"sync"
	"time"
)

// Server turns a Handler into a TCP worker service: each connection carries
// a gob stream of Jobs inbound and Results outbound. Jobs from one
// connection execute concurrently up to the server's budget; results are
// written in completion order (the coordinator matches by JobID, so order
// is free to vary).
type Server struct {
	h           Handler
	maxInFlight int

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	conns     map[net.Conn]struct{}
	closed    bool
}

// NewServer returns a worker server executing at most maxInFlight jobs
// concurrently (0 = GOMAXPROCS).
func NewServer(h Handler, maxInFlight int) *Server {
	if maxInFlight <= 0 {
		maxInFlight = runtime.GOMAXPROCS(0)
	}
	return &Server{
		h:           h,
		maxInFlight: maxInFlight,
		listeners:   make(map[net.Listener]struct{}),
		conns:       make(map[net.Conn]struct{}),
	}
}

// Serve accepts connections on l until Close (or a listener error) and
// serves shard jobs on each.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		l.Close()
		return ErrClosed
	}
	s.listeners[l] = struct{}{}
	s.mu.Unlock()
	sem := make(chan struct{}, s.maxInFlight)
	for {
		conn, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			delete(s.listeners, l)
			s.mu.Unlock()
			if closed {
				return nil
			}
			return fmt.Errorf("shardrpc: accept: %w", err)
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		go s.serveConn(conn, sem)
	}
}

// serveConn decodes jobs off one connection and streams results back. A
// decode error (peer gone, stream garbled) ends the connection; in-flight
// jobs finish and their writes fail silently — the coordinator's timeout
// and retry own that loss.
func (s *Server) serveConn(conn net.Conn, sem chan struct{}) {
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	var encMu sync.Mutex
	var wg sync.WaitGroup
	for {
		var job Job
		if err := dec.Decode(&job); err != nil {
			break
		}
		wg.Add(1)
		// The semaphore is acquired inside the goroutine so a saturated
		// worker keeps READING: a read loop blocked on the mining budget
		// would stop draining the socket, back-pressure the coordinator's
		// Submit into its write deadline, and get a healthy-but-busy
		// connection declared dead. Queued jobs cost one parked goroutine
		// each — bounded by the coordinator's component count.
		go func(job Job) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			res := execute(s.h, job)
			encMu.Lock()
			// A write failure means the coordinator hung up; nothing to do
			// but stop — its retry path re-dispatches the job elsewhere.
			_ = enc.Encode(res)
			encMu.Unlock()
		}(job)
	}
	wg.Wait()
}

// Close stops all listeners and connections. In-flight handlers finish but
// their results may not reach the peer.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	for l := range s.listeners {
		l.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	return nil
}

// ListenAndServe binds addr and serves shard jobs on it, returning the
// bound listener address through ready (useful for ":0") before blocking in
// Serve. Pass nil to skip the notification.
func (s *Server) ListenAndServe(addr string, ready chan<- net.Addr) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("shardrpc: listen %s: %w", addr, err)
	}
	if ready != nil {
		ready <- l.Addr()
	}
	return s.Serve(l)
}

// Client is the coordinator side of the TCP transport: it keeps one
// connection per worker address, round-robins jobs across the live ones,
// and funnels every connection's results into one channel. A connection
// that fails is marked dead and skipped; Submit fails only when every
// worker is unreachable (the coordinator then falls back to local mining).
type Client struct {
	out   chan Result
	conns []*clientConn

	mu     sync.Mutex
	next   int
	closed bool
	wg     sync.WaitGroup
}

type clientConn struct {
	conn net.Conn
	enc  *gob.Encoder

	mu   sync.Mutex
	dead bool
}

// submitWriteTimeout bounds one job's write to a worker connection. A
// stalled-but-connected peer (suspended process, blackholed route) fills
// the socket buffer and would otherwise block Submit forever — before the
// coordinator's own result timeout can even start counting. Jobs are at
// most a component's vertex slice, so a healthy link finishes in far less.
const submitWriteTimeout = 10 * time.Second

// Dial connects to every worker address and returns the client transport.
// It fails if ANY address is unreachable: a mistyped worker list should
// surface at startup, not as silently reduced capacity.
func Dial(addrs []string) (*Client, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("shardrpc: no worker addresses")
	}
	c := &Client{out: make(chan Result, resultBuffer)}
	for _, addr := range addrs {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("shardrpc: dial %s: %w", addr, err)
		}
		cc := &clientConn{conn: conn, enc: gob.NewEncoder(conn)}
		c.conns = append(c.conns, cc)
		c.wg.Add(1)
		go c.readLoop(cc)
	}
	go func() {
		c.wg.Wait()
		close(c.out)
	}()
	return c, nil
}

// readLoop pumps one connection's results into the shared channel until the
// stream breaks.
func (c *Client) readLoop(cc *clientConn) {
	defer c.wg.Done()
	dec := gob.NewDecoder(cc.conn)
	for {
		var res Result
		if err := dec.Decode(&res); err != nil {
			cc.mu.Lock()
			cc.dead = true
			cc.mu.Unlock()
			return
		}
		select {
		case c.out <- res:
		default:
			// Buffer full with no reader (abandoned run): drop rather than
			// wedge the read loop — the coordinator's retry owns the loss.
		}
	}
}

// Submit sends job to the next live worker connection.
func (c *Client) Submit(job Job) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	start := c.next
	c.next++
	c.mu.Unlock()
	for i := 0; i < len(c.conns); i++ {
		cc := c.conns[(start+i)%len(c.conns)]
		cc.mu.Lock()
		if cc.dead {
			cc.mu.Unlock()
			continue
		}
		cc.conn.SetWriteDeadline(time.Now().Add(submitWriteTimeout))
		err := cc.enc.Encode(job)
		cc.conn.SetWriteDeadline(time.Time{})
		if err != nil {
			// A timed-out write leaves a partial job on the wire; the gob
			// stream is unrecoverable either way, so the connection dies.
			cc.dead = true
			cc.conn.Close()
		}
		cc.mu.Unlock()
		if err == nil {
			return nil
		}
	}
	return fmt.Errorf("shardrpc: job %d: every worker connection is down", job.ID)
}

// Results delivers results from all worker connections.
func (c *Client) Results() <-chan Result { return c.out }

// Close tears down every connection; the results channel closes once the
// readers drain.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	for _, cc := range c.conns {
		cc.conn.Close()
	}
	return nil
}
