// Package shardrpc ships shard mining jobs to workers and collects their
// results, turning MineSharded's component-parallel search into a
// multi-machine fan-out (see DESIGN.md "Distributed shard exchange").
//
// The package is transport and policy only: a Job carries everything a
// worker needs to mine one attribute-closed component group without ever
// seeing the graph — the remapped vertex slice (per-local-vertex attribute
// lists and local adjacency), the global attribute context (standard-table
// frequencies), and the search options — and a Result carries back a
// checksummed gob blob of the shardcache.Entry the group mined to. What to
// do with entries (merge, cache, fall back) is the coordinator's business
// (cspm.MineDistributed); how to mine a job is the injected Handler's
// (cspm.ExecuteShardJob).
//
// Three Transport implementations cover the deployment spectrum: Loopback
// runs jobs on an in-process worker pool (the zero-config default and the
// bench scenario), Client speaks length-delimited gob over TCP to one or
// more Server processes (cmd/cspm-worker), and Chaos wraps any of them with
// a deterministic fault plan — drop, delay, duplicate, corrupt, truncate,
// error, disconnect — for the equivalence-under-failure test suite.
package shardrpc

import (
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"errors"
	"fmt"

	"cspm/internal/graph"
	"cspm/internal/shardcache"
)

// Job is one shard mining job: a self-contained description of an
// attribute-closed component group plus the global context its gains must be
// priced against. Local vertex ids are 0..len(Attrs)-1; attribute ids are
// GLOBAL (the coordinator's interning), which is what keeps a remote
// worker's entry bit-identical to a local shard run.
type Job struct {
	// ID identifies the job within one mining run; workers echo it in the
	// Result so the coordinator can match (and deduplicate) responses.
	ID uint64
	// NumAttrValues is the size of the global attribute-id space (coreset
	// arrays are indexed by attribute id, so the shard DB must span all of
	// it even when the group uses a few values).
	NumAttrValues int
	// Attrs[li] lists the sorted global attribute ids of local vertex li.
	Attrs [][]graph.AttrID
	// Adj[li] lists the sorted local ids of li's neighbours. Component
	// groups are edge-closed, so the rows describe the complete stars.
	Adj [][]graph.VertexID
	// STFreqs are the GLOBAL standard-table frequencies indexed by
	// attribute id (mdl.NewStandardTableFromFreqs reconstructs the table).
	STFreqs []int
	// Variant, MaxIterations, DisableModelCost mirror the cspm.Options
	// fields that shape the search result; Workers is the worker's local
	// evaluator budget (0 = all of its cores) and never changes the result.
	Variant          int
	MaxIterations    int
	DisableModelCost bool
	Workers          int
}

// Validate sanity-checks the job's shape so a malformed or truncated job
// fails cleanly on the worker instead of panicking mid-mine.
func (j Job) Validate() error {
	if j.NumAttrValues < 0 {
		return fmt.Errorf("shardrpc: job %d: negative attribute space %d", j.ID, j.NumAttrValues)
	}
	if len(j.STFreqs) != j.NumAttrValues {
		return fmt.Errorf("shardrpc: job %d: %d ST frequencies for %d attribute values", j.ID, len(j.STFreqs), j.NumAttrValues)
	}
	if len(j.Adj) != len(j.Attrs) {
		return fmt.Errorf("shardrpc: job %d: %d adjacency rows for %d vertices", j.ID, len(j.Adj), len(j.Attrs))
	}
	n := len(j.Attrs)
	for li, as := range j.Attrs {
		for _, a := range as {
			if a < 0 || int(a) >= j.NumAttrValues {
				return fmt.Errorf("shardrpc: job %d: vertex %d carries attribute %d outside [0,%d)", j.ID, li, a, j.NumAttrValues)
			}
		}
	}
	for li, row := range j.Adj {
		for _, u := range row {
			if int(u) >= n {
				return fmt.Errorf("shardrpc: job %d: vertex %d links to %d outside [0,%d)", j.ID, li, u, n)
			}
		}
	}
	return nil
}

// Result is a worker's response to one Job. Exactly one of Blob or Err is
// meaningful: a successful mine carries the entry blob and its checksum, a
// worker-side failure carries the error text.
type Result struct {
	JobID uint64
	// JobSum is the checksum of the job AS THE WORKER RECEIVED it
	// (JobChecksum). The coordinator compares it against the checksum of
	// the job it sent: a transport that mutated the job in flight — in a
	// way that still decodes and validates — mined the wrong shard, and the
	// mismatch rejects the result before it can poison the merge.
	JobSum [sha256.Size]byte
	// Blob is the gob-encoded shardcache.Entry — the same bytes the shard
	// cache's disk layer stores, so a remote result and a cache hit are
	// interchangeable downstream.
	Blob []byte
	// Sum is the SHA-256 of Blob, computed by the worker before the bytes
	// travel; the coordinator rejects results whose blob no longer matches.
	Sum [sha256.Size]byte
	// Err is the worker-side failure, "" on success.
	Err string
}

// JobChecksum digests a job's full content (gob encoding is deterministic
// for equal values, and a decoded job re-encodes to the sender's bytes).
// Sender and worker compute it independently on their own copy.
func JobChecksum(j Job) ([sha256.Size]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(j); err != nil {
		return [sha256.Size]byte{}, fmt.Errorf("shardrpc: encode job: %w", err)
	}
	return sha256.Sum256(buf.Bytes()), nil
}

// ErrCorruptResult tags results whose blob failed its checksum or did not
// decode — the transport delivered bytes the worker never produced (or a
// truncated prefix of them).
var ErrCorruptResult = errors.New("shardrpc: result blob corrupt")

// ErrClosed is returned by Submit after the transport closed.
var ErrClosed = errors.New("shardrpc: transport closed")

// JobError is a clean worker-side failure (the worker ran, and said no).
type JobError struct {
	JobID uint64
	Msg   string
}

func (e *JobError) Error() string {
	return fmt.Sprintf("shardrpc: job %d failed on worker: %s", e.JobID, e.Msg)
}

// EncodeEntry serialises e into the wire blob and its checksum.
func EncodeEntry(e *shardcache.Entry) ([]byte, [sha256.Size]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(e); err != nil {
		return nil, [sha256.Size]byte{}, fmt.Errorf("shardrpc: encode entry: %w", err)
	}
	return buf.Bytes(), sha256.Sum256(buf.Bytes()), nil
}

// DecodeEntry verifies blob against sum and decodes it. Any mismatch or
// decode failure reports ErrCorruptResult: a flipped or missing byte must
// surface as a retryable transport fault, never as a silently wrong model.
func DecodeEntry(blob []byte, sum [sha256.Size]byte) (*shardcache.Entry, error) {
	if sha256.Sum256(blob) != sum {
		return nil, fmt.Errorf("%w: checksum mismatch over %d bytes", ErrCorruptResult, len(blob))
	}
	e := &shardcache.Entry{}
	if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(e); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorruptResult, err)
	}
	return e, nil
}

// Handler mines one job into an entry — the worker-side search, injected by
// the cspm package so this package stays mining-agnostic.
type Handler func(Job) (*shardcache.Entry, error)

// Transport moves jobs to workers and results back. Results may arrive out
// of order, duplicated, late, or — on faulty transports — never; consumers
// own matching, deduplication, timeouts and retries. Implementations must
// accept concurrent Submit calls.
type Transport interface {
	// Submit enqueues one job for execution. An error means the transport
	// could not accept the job at all (closed, all workers unreachable); an
	// accepted job may still never produce a result.
	Submit(job Job) error
	// Results delivers worker responses. The channel is closed when the
	// transport shuts down; a nil receive loop must treat that as "no
	// further results will ever arrive".
	Results() <-chan Result
	// Close releases the transport's resources and eventually closes the
	// results channel. Close is idempotent.
	Close() error
}

// execute runs h over job, recovering panics into errors (one poisoned job
// must not take down a worker serving other shards), and wraps the outcome
// in a Result stamped with the received job's checksum.
func execute(h Handler, job Job) Result {
	jobSum, sumErr := JobChecksum(job)
	if sumErr != nil {
		return Result{JobID: job.ID, Err: sumErr.Error()}
	}
	e, err := func() (e *shardcache.Entry, err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("handler panic: %v", r)
			}
		}()
		return h(job)
	}()
	if err != nil {
		return Result{JobID: job.ID, JobSum: jobSum, Err: err.Error()}
	}
	blob, sum, err := EncodeEntry(e)
	if err != nil {
		return Result{JobID: job.ID, JobSum: jobSum, Err: err.Error()}
	}
	return Result{JobID: job.ID, JobSum: jobSum, Blob: blob, Sum: sum}
}
