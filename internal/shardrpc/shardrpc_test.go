package shardrpc

import (
	"errors"
	"fmt"
	"net"
	"reflect"
	"testing"
	"time"

	"cspm/internal/graph"
	"cspm/internal/invdb"
	"cspm/internal/shardcache"
)

// fakeEntry derives a deterministic entry from a job so tests can verify
// results round-tripped intact without pulling in the real miner.
func fakeEntry(job Job) *shardcache.Entry {
	return &shardcache.Entry{
		Init: []invdb.LineStat{
			{Core: invdb.CoresetID(job.ID), Leaf: []graph.AttrID{1, 2}, FL: len(job.Attrs) + 1},
		},
		Final: []invdb.LineStat{
			{Core: invdb.CoresetID(job.ID), Leaf: []graph.AttrID{1}, FL: 1},
		},
		Iterations: int(job.ID) + 1,
		GainEvals:  7,
	}
}

func fakeHandler(job Job) (*shardcache.Entry, error) {
	return fakeEntry(job), nil
}

func testJob(id uint64) Job {
	return Job{
		ID:            id,
		NumAttrValues: 3,
		Attrs:         [][]graph.AttrID{{0, 1}, {2}},
		Adj:           [][]graph.VertexID{{1}, {0}},
		STFreqs:       []int{1, 1, 1},
	}
}

// collect reads n results or fails after a timeout.
func collect(t *testing.T, tr Transport, n int) map[uint64]Result {
	t.Helper()
	got := make(map[uint64]Result)
	deadline := time.After(5 * time.Second)
	for len(got) < n {
		select {
		case res, ok := <-tr.Results():
			if !ok {
				t.Fatalf("results channel closed after %d of %d results", len(got), n)
			}
			got[res.JobID] = res
		case <-deadline:
			t.Fatalf("timed out after %d of %d results", len(got), n)
		}
	}
	return got
}

func TestJobValidate(t *testing.T) {
	if err := testJob(1).Validate(); err != nil {
		t.Fatalf("valid job rejected: %v", err)
	}
	for name, mut := range map[string]func(*Job){
		"negative attr space": func(j *Job) { j.NumAttrValues = -1 },
		"freqs length":        func(j *Job) { j.STFreqs = []int{1} },
		"adj rows":            func(j *Job) { j.Adj = j.Adj[:1] },
		"attr out of range":   func(j *Job) { j.Attrs[0][0] = 99 },
		"attr negative":       func(j *Job) { j.Attrs[0][0] = -4 },
		"neighbour of range":  func(j *Job) { j.Adj[1][0] = 17 },
	} {
		j := testJob(1)
		mut(&j)
		if err := j.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestEntryCodecRoundTrip(t *testing.T) {
	e := fakeEntry(testJob(3))
	blob, sum, err := EncodeEntry(e)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeEntry(blob, sum)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, e) {
		t.Fatalf("round trip mutated entry: %+v vs %+v", back, e)
	}
	// A flipped byte, a truncated blob, and a forged length must all report
	// ErrCorruptResult — never decode into a silently different entry.
	flipped := append([]byte(nil), blob...)
	flipped[len(flipped)/2] ^= 0xFF
	if _, err := DecodeEntry(flipped, sum); !errors.Is(err, ErrCorruptResult) {
		t.Fatalf("flipped byte: got %v", err)
	}
	if _, err := DecodeEntry(blob[:len(blob)/2], sum); !errors.Is(err, ErrCorruptResult) {
		t.Fatalf("truncated blob: got %v", err)
	}
	if _, err := DecodeEntry(nil, sum); !errors.Is(err, ErrCorruptResult) {
		t.Fatalf("empty blob: got %v", err)
	}
}

func TestLoopbackDeliversAll(t *testing.T) {
	lb := NewLoopback(fakeHandler, 3)
	const n = 20
	for i := 0; i < n; i++ {
		if err := lb.Submit(testJob(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	got := collect(t, lb, n)
	for i := 0; i < n; i++ {
		res, ok := got[uint64(i)]
		if !ok {
			t.Fatalf("job %d: no result", i)
		}
		if res.Err != "" {
			t.Fatalf("job %d: %s", i, res.Err)
		}
		e, err := DecodeEntry(res.Blob, res.Sum)
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		if !reflect.DeepEqual(e, fakeEntry(testJob(uint64(i)))) {
			t.Fatalf("job %d: entry mutated in transit", i)
		}
	}
	if err := lb.Close(); err != nil {
		t.Fatal(err)
	}
	if err := lb.Submit(testJob(99)); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close: %v", err)
	}
	if _, ok := <-lb.Results(); ok {
		t.Fatal("results channel still open after Close")
	}
}

func TestLoopbackHandlerErrorAndPanic(t *testing.T) {
	h := func(job Job) (*shardcache.Entry, error) {
		switch job.ID {
		case 1:
			return nil, fmt.Errorf("no such shard")
		case 2:
			panic("poisoned job")
		}
		return fakeEntry(job), nil
	}
	lb := NewLoopback(h, 1)
	defer lb.Close()
	for _, id := range []uint64{1, 2, 3} {
		if err := lb.Submit(testJob(id)); err != nil {
			t.Fatal(err)
		}
	}
	got := collect(t, lb, 3)
	if got[1].Err == "" || got[2].Err == "" {
		t.Fatalf("worker failures not reported: %+v", got)
	}
	if got[3].Err != "" {
		t.Fatalf("healthy job failed after a poisoned one: %s", got[3].Err)
	}
}

func TestTCPRoundTrip(t *testing.T) {
	srv := NewServer(fakeHandler, 2)
	ready := make(chan net.Addr, 1)
	go srv.ListenAndServe("127.0.0.1:0", ready)
	addr := (<-ready).String()
	defer srv.Close()

	cl, err := Dial([]string{addr, addr}) // two conns to one worker: round-robin path
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	const n = 10
	for i := 0; i < n; i++ {
		if err := cl.Submit(testJob(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	got := collect(t, cl, n)
	for i := 0; i < n; i++ {
		e, err := DecodeEntry(got[uint64(i)].Blob, got[uint64(i)].Sum)
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		if !reflect.DeepEqual(e, fakeEntry(testJob(uint64(i)))) {
			t.Fatalf("job %d: entry mutated over TCP", i)
		}
	}
	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}
	if err := cl.Submit(testJob(99)); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close: %v", err)
	}
}

func TestDialFailsFast(t *testing.T) {
	if _, err := Dial(nil); err == nil {
		t.Fatal("empty address list accepted")
	}
	// A dead address must fail Dial even when another address is healthy.
	srv := NewServer(fakeHandler, 1)
	ready := make(chan net.Addr, 1)
	go srv.ListenAndServe("127.0.0.1:0", ready)
	addr := (<-ready).String()
	defer srv.Close()
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := dead.Addr().String()
	dead.Close()
	if _, err := Dial([]string{addr, deadAddr}); err == nil {
		t.Fatal("unreachable worker accepted")
	}
}

func TestSubmitFailsWhenAllWorkersDown(t *testing.T) {
	srv := NewServer(fakeHandler, 1)
	ready := make(chan net.Addr, 1)
	go srv.ListenAndServe("127.0.0.1:0", ready)
	addr := (<-ready).String()
	cl, err := Dial([]string{addr})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	srv.Close()
	// The first submits may still land in OS buffers; eventually the dead
	// connection is noticed and Submit reports it.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := cl.Submit(testJob(1)); err != nil {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("Submit kept succeeding against a closed worker")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// chaosPlan builds a FaultPlan from an explicit (jobID, attempt) table;
// unlisted pairs pass through.
func chaosPlan(table map[[2]uint64]Fault) FaultPlan {
	return func(jobID uint64, attempt int) Fault {
		return table[[2]uint64{jobID, uint64(attempt)}]
	}
}

func TestChaosFaults(t *testing.T) {
	plan := chaosPlan(map[[2]uint64]Fault{
		{0, 0}: FaultNone,
		{1, 0}: FaultDrop,
		{2, 0}: FaultDuplicate,
		{3, 0}: FaultCorrupt,
		{4, 0}: FaultTruncate,
		{5, 0}: FaultError,
	})
	ch := NewChaos(NewLoopback(fakeHandler, 2), plan, 0)
	defer ch.Close()
	for id := uint64(0); id < 6; id++ {
		if err := ch.Submit(testJob(id)); err != nil {
			t.Fatal(err)
		}
	}
	// 6 jobs: one dropped, one duplicated → 6 deliveries expected.
	var results []Result
	deadline := time.After(5 * time.Second)
	for len(results) < 6 {
		select {
		case res := <-ch.Results():
			results = append(results, res)
		case <-deadline:
			t.Fatalf("got %d of 6 deliveries", len(results))
		}
	}
	byJob := make(map[uint64][]Result)
	for _, r := range results {
		byJob[r.JobID] = append(byJob[r.JobID], r)
	}
	if len(byJob[1]) != 0 {
		t.Fatal("dropped job delivered a result")
	}
	if len(byJob[2]) != 2 {
		t.Fatalf("duplicated job delivered %d results", len(byJob[2]))
	}
	if !reflect.DeepEqual(byJob[2][0], byJob[2][1]) {
		t.Fatal("duplicate deliveries differ")
	}
	if _, err := DecodeEntry(byJob[0][0].Blob, byJob[0][0].Sum); err != nil {
		t.Fatalf("clean job corrupt: %v", err)
	}
	if _, err := DecodeEntry(byJob[3][0].Blob, byJob[3][0].Sum); !errors.Is(err, ErrCorruptResult) {
		t.Fatalf("corrupt fault undetected: %v", err)
	}
	if _, err := DecodeEntry(byJob[4][0].Blob, byJob[4][0].Sum); !errors.Is(err, ErrCorruptResult) {
		t.Fatalf("truncate fault undetected: %v", err)
	}
	if byJob[5][0].Err == "" {
		t.Fatal("error fault delivered a healthy result")
	}
}

func TestChaosDelayArrivesLate(t *testing.T) {
	plan := chaosPlan(map[[2]uint64]Fault{{1, 0}: FaultDelay})
	ch := NewChaos(NewLoopback(fakeHandler, 1), plan, 80*time.Millisecond)
	defer ch.Close()
	start := time.Now()
	if err := ch.Submit(testJob(1)); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ch.Results():
		if elapsed := time.Since(start); elapsed < 60*time.Millisecond {
			t.Fatalf("delayed result arrived after only %v", elapsed)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("delayed result never arrived")
	}
}

func TestChaosDisconnectKillsTheStream(t *testing.T) {
	plan := chaosPlan(map[[2]uint64]Fault{{1, 0}: FaultDisconnect})
	ch := NewChaos(NewLoopback(fakeHandler, 1), plan, 0)
	if err := ch.Submit(testJob(0)); err != nil { // healthy, may or may not land before the cut
		t.Fatal(err)
	}
	if err := ch.Submit(testJob(1)); err != nil { // trips the disconnect
		t.Fatal(err)
	}
	if err := ch.Submit(testJob(2)); err != nil { // after the cut: must vanish
		t.Fatal(err)
	}
	// Job 2 was accepted but the worker is "gone": nothing may arrive for
	// it. Give the pump a moment, then close and drain what survived.
	time.Sleep(50 * time.Millisecond)
	ch.Close()
	for res := range ch.Results() {
		if res.JobID == 2 {
			t.Fatal("result delivered after mid-stream disconnect")
		}
	}
}
