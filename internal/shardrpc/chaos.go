package shardrpc

import (
	"sync"
	"time"
)

// Fault is one injected transport failure mode.
type Fault int

const (
	// FaultNone passes the job and its result through untouched.
	FaultNone Fault = iota
	// FaultDrop swallows the job: no result ever arrives.
	FaultDrop
	// FaultDelay delivers the result only after the chaos delay — late
	// enough to look dead to a coordinator with a shorter timeout, so the
	// retried copy and the late original race into the collector.
	FaultDelay
	// FaultDuplicate delivers the result twice.
	FaultDuplicate
	// FaultCorrupt flips a byte in the result blob, leaving the checksum
	// describing the original bytes (wire corruption, detectable).
	FaultCorrupt
	// FaultTruncate delivers only a prefix of the blob (partial response).
	FaultTruncate
	// FaultError replaces the result with a worker-side failure report.
	FaultError
	// FaultDisconnect kills the transport mid-stream: this job and every
	// result not yet delivered — including other jobs' — vanish, as when a
	// worker process dies with responses still buffered.
	FaultDisconnect
)

// FaultPlan decides the fault for a given (job, attempt) pair; attempt
// counts that job's Submit calls from 0. Plans are pure functions in tests,
// which is what makes every chaos scenario reproducible.
type FaultPlan func(jobID uint64, attempt int) Fault

// Chaos wraps an inner transport with deterministic fault injection. Faults
// are chosen at Submit time (keyed by per-job attempt count) and applied to
// the matching result on the way back.
type Chaos struct {
	inner Transport
	plan  FaultPlan
	delay time.Duration
	out   chan Result

	mu       sync.Mutex
	attempts map[uint64]int
	pending  map[uint64][]Fault // faults awaiting that job's next result
	dead     bool               // FaultDisconnect tripped: deliver nothing more
	closed   bool
	senders  sync.WaitGroup // delayed deliveries in flight
}

// NewChaos wraps inner with plan; delay is the extra latency FaultDelay
// applies (choose it longer than the coordinator's per-attempt timeout to
// force a retry race).
func NewChaos(inner Transport, plan FaultPlan, delay time.Duration) *Chaos {
	c := &Chaos{
		inner:    inner,
		plan:     plan,
		delay:    delay,
		out:      make(chan Result, resultBuffer),
		attempts: make(map[uint64]int),
		pending:  make(map[uint64][]Fault),
	}
	go c.pump()
	return c
}

// Submit consults the plan and either swallows the job (drop, disconnect)
// or forwards it with the chosen fault armed for its result.
func (c *Chaos) Submit(job Job) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	attempt := c.attempts[job.ID]
	c.attempts[job.ID]++
	fault := FaultNone
	if c.plan != nil {
		fault = c.plan(job.ID, attempt)
	}
	switch fault {
	case FaultDrop:
		c.mu.Unlock()
		return nil
	case FaultDisconnect:
		c.dead = true
		c.mu.Unlock()
		return nil
	}
	c.pending[job.ID] = append(c.pending[job.ID], fault)
	c.mu.Unlock()
	return c.inner.Submit(job)
}

// pump forwards inner results, applying the fault armed for each.
func (c *Chaos) pump() {
	for res := range c.inner.Results() {
		c.mu.Lock()
		if c.dead {
			c.mu.Unlock()
			continue
		}
		fault := FaultNone
		if q := c.pending[res.JobID]; len(q) > 0 {
			fault = q[0]
			c.pending[res.JobID] = q[1:]
		}
		c.mu.Unlock()
		switch fault {
		case FaultDelay:
			c.senders.Add(1)
			go func(res Result) {
				defer c.senders.Done()
				time.Sleep(c.delay)
				c.deliver(res)
			}(res)
		case FaultDuplicate:
			c.deliver(res)
			c.deliver(res)
		case FaultCorrupt:
			res.Blob = append([]byte(nil), res.Blob...)
			if len(res.Blob) > 0 {
				res.Blob[len(res.Blob)/2] ^= 0xFF
			}
			c.deliver(res)
		case FaultTruncate:
			res.Blob = append([]byte(nil), res.Blob[:len(res.Blob)/2]...)
			c.deliver(res)
		case FaultError:
			c.deliver(Result{JobID: res.JobID, Err: "chaos: injected worker failure"})
		default:
			c.deliver(res)
		}
	}
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	c.senders.Wait()
	close(c.out)
}

// deliver sends one result unless the transport died or closed; a full
// buffer drops the result (chaos semantics make that legitimate).
func (c *Chaos) deliver(res Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dead || c.closed {
		return
	}
	select {
	case c.out <- res:
	default:
	}
}

// Results delivers the surviving (and possibly mutated) results.
func (c *Chaos) Results() <-chan Result { return c.out }

// Close closes the inner transport; the chaos channel closes once the pump
// and any delayed deliveries finish.
func (c *Chaos) Close() error { return c.inner.Close() }
