package shardrpc

import (
	"runtime"
	"sync"
)

// resultBuffer bounds the results channel of every transport. Generous so
// producers never deadlock against a coordinator that stopped reading (it
// finishes a run as soon as every job is satisfied; late duplicates park in
// the buffer until Close).
const resultBuffer = 1024

// Loopback executes jobs on an in-process worker pool — the transport
// behind MineDistributed's nil-transport default, the loopback-distributed
// bench scenario, and the inner layer of most chaos tests. It exercises the
// full job/entry codec, so a loopback run covers everything but the socket.
type Loopback struct {
	h    Handler
	jobs chan Job
	out  chan Result

	mu     sync.Mutex
	closed bool
	done   chan struct{} // closed once all workers exited and out is closed
}

// NewLoopback starts a loopback transport with the given worker-pool size
// (0 = GOMAXPROCS).
func NewLoopback(h Handler, workers int) *Loopback {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	lb := &Loopback{
		h:    h,
		jobs: make(chan Job, resultBuffer),
		out:  make(chan Result, resultBuffer),
		done: make(chan struct{}),
	}
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for job := range lb.jobs {
				res := execute(lb.h, job)
				select {
				case lb.out <- res:
				default:
					// The coordinator stopped reading with the buffer full
					// (an abandoned run); dropping beats deadlocking Close —
					// an undelivered result is a documented transport mode.
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(lb.out)
		close(lb.done)
	}()
	return lb
}

// Submit enqueues job on the pool.
func (lb *Loopback) Submit(job Job) error {
	lb.mu.Lock()
	defer lb.mu.Unlock()
	if lb.closed {
		return ErrClosed
	}
	lb.jobs <- job
	return nil
}

// Results delivers completed jobs in completion order.
func (lb *Loopback) Results() <-chan Result { return lb.out }

// Close drains the pool: queued jobs still execute, then the results
// channel closes.
func (lb *Loopback) Close() error {
	lb.mu.Lock()
	if !lb.closed {
		lb.closed = true
		close(lb.jobs)
	}
	lb.mu.Unlock()
	<-lb.done
	return nil
}
