// Package mdl implements the description-length machinery CSPM is built on
// (paper §III and §IV-C/D): Shannon optimal code lengths, the standard code
// table ST over attribute values, and conditional-entropy code lengths for
// inverted-database lines.
//
// All code lengths are in bits (logs base 2) and follow the Krimp convention
// that only lengths matter — no actual codes are materialised. The
// convention 0·log 0 = 0 is applied throughout.
package mdl

import (
	"math"

	"cspm/internal/graph"
)

// Log2 returns log2(x) with Log2(0) = 0, matching the 0·log 0 = 0 convention
// used by every entropy formula in the paper.
func Log2(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Log2(x)
}

// XLogX returns x·log2(x) with 0·log 0 = 0. The description length of the
// inverted database (Eq. 8) is a signed sum of these terms.
func XLogX(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return x * math.Log2(x)
}

// CodeLen returns the Shannon code length −log2(p) in bits for an event of
// probability p. Probabilities outside (0, 1] yield +Inf, signalling an
// unencodable event; callers treat that as "pattern cannot occur".
func CodeLen(p float64) float64 {
	if p <= 0 {
		return math.Inf(1)
	}
	return -math.Log2(p)
}

// StandardTable is the standard code table ST (paper §III): the optimal
// per-value encoding of attribute values from their global frequencies in
// the vertex→attribute mapping, ignoring labels and structure.
type StandardTable struct {
	freq  []int // indexed by AttrID
	total int
}

// NewStandardTable counts attribute-value occurrences over all vertices of g.
func NewStandardTable(g *graph.Graph) *StandardTable {
	st := &StandardTable{freq: make([]int, g.NumAttrValues())}
	for v := 0; v < g.NumVertices(); v++ {
		for _, a := range g.Attrs(graph.VertexID(v)) {
			st.freq[a]++
			st.total++
		}
	}
	return st
}

// NewStandardTableFromFreqs builds an ST from precomputed frequencies,
// indexed by AttrID. Used by the transaction-database miners (Krimp/SLIM).
func NewStandardTableFromFreqs(freq []int) *StandardTable {
	st := &StandardTable{freq: append([]int(nil), freq...)}
	for _, f := range freq {
		st.total += f
	}
	return st
}

// Freqs returns a copy of the per-value occurrence counts, indexed by
// AttrID — the table's complete state, so NewStandardTableFromFreqs(Freqs())
// reconstructs an identical table (the global attribute context shipped to
// remote shard workers).
func (st *StandardTable) Freqs() []int {
	return append([]int(nil), st.freq...)
}

// Freq reports the global occurrence count of value a.
func (st *StandardTable) Freq(a graph.AttrID) int {
	if int(a) >= len(st.freq) {
		return 0
	}
	return st.freq[a]
}

// Total reports the total number of attribute occurrences.
func (st *StandardTable) Total() int { return st.total }

// Len returns L_ST(a) = −log2(freq(a)/total) in bits (Eq. 5 applied to the
// mapping-table frequencies). Values never seen get +Inf.
func (st *StandardTable) Len(a graph.AttrID) float64 {
	if int(a) >= len(st.freq) || st.freq[a] == 0 || st.total == 0 {
		return math.Inf(1)
	}
	return -math.Log2(float64(st.freq[a]) / float64(st.total))
}

// SetLen returns Σ_{a∈set} L_ST(a), the cost of spelling out a value set
// with standard codes — the model-cost currency for new leafsets (§IV-E).
func (st *StandardTable) SetLen(set []graph.AttrID) float64 {
	sum := 0.0
	for _, a := range set {
		sum += st.Len(a)
	}
	return sum
}

// BaselineDL is L(D|ST): the cost of the raw mapping encoded with standard
// codes only, i.e. Σ_a freq(a)·L_ST(a). It is the compression baseline that
// mined models are measured against.
func (st *StandardTable) BaselineDL() float64 {
	sum := 0.0
	tot := float64(st.total)
	for _, f := range st.freq {
		if f > 0 {
			sum += float64(f) * -math.Log2(float64(f)/tot)
		}
	}
	return sum
}

// CondCodeLen returns the conditional-entropy code length of an
// inverted-database line (Eq. 6): L(SL | Sc) = −log2(fL/fc).
// fL must satisfy 0 < fL ≤ fc; violations return +Inf.
func CondCodeLen(fL, fc int) float64 {
	if fL <= 0 || fc <= 0 || fL > fc {
		return math.Inf(1)
	}
	return -math.Log2(float64(fL) / float64(fc))
}

// DataDL computes L(I|M) from Eq. (8): Σ_j c_j·log c_j − Σ_ij l_ij·log l_ij,
// where coreFreq holds each coreset's frequency c_j and lineFreqs the fL of
// every line grouped in any order (grouping is irrelevant to the sum).
func DataDL(coreFreq []int, lineFreqs []int) float64 {
	sum := 0.0
	for _, c := range coreFreq {
		sum += XLogX(float64(c))
	}
	for _, l := range lineFreqs {
		sum -= XLogX(float64(l))
	}
	return sum
}

// CondEntropy computes H(Y|X) from Eq. (7) given each line's (fL, fc) and
// the total frequency s = Σ fL. It is the average per-line encoding cost,
// reported by the miner for diagnostics.
func CondEntropy(lines [][2]int) float64 {
	s := 0
	for _, ln := range lines {
		s += ln[0]
	}
	if s == 0 {
		return 0
	}
	h := 0.0
	for _, ln := range lines {
		fL, fc := float64(ln[0]), float64(ln[1])
		if fL <= 0 || fc <= 0 {
			continue
		}
		h -= (fL / float64(s)) * math.Log2(fL/fc)
	}
	return h
}
