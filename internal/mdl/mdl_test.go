package mdl

import (
	"math"
	"testing"
	"testing/quick"

	"cspm/internal/graph"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestLog2Conventions(t *testing.T) {
	if Log2(0) != 0 {
		t.Errorf("Log2(0) = %v, want 0", Log2(0))
	}
	if Log2(-3) != 0 {
		t.Errorf("Log2(-3) = %v, want 0", Log2(-3))
	}
	if !almost(Log2(8), 3) {
		t.Errorf("Log2(8) = %v, want 3", Log2(8))
	}
}

func TestXLogX(t *testing.T) {
	if XLogX(0) != 0 {
		t.Errorf("XLogX(0) = %v, want 0", XLogX(0))
	}
	if !almost(XLogX(4), 8) {
		t.Errorf("XLogX(4) = %v, want 8", XLogX(4))
	}
	if !almost(XLogX(1), 0) {
		t.Errorf("XLogX(1) = %v, want 0", XLogX(1))
	}
}

func TestCodeLen(t *testing.T) {
	if !almost(CodeLen(0.5), 1) {
		t.Errorf("CodeLen(0.5) = %v, want 1", CodeLen(0.5))
	}
	if !almost(CodeLen(1), 0) {
		t.Errorf("CodeLen(1) = %v, want 0", CodeLen(1))
	}
	if !math.IsInf(CodeLen(0), 1) {
		t.Errorf("CodeLen(0) = %v, want +Inf", CodeLen(0))
	}
}

func TestCondCodeLen(t *testing.T) {
	// Eq. 6: −log(fL/fc).
	if !almost(CondCodeLen(1, 2), 1) {
		t.Errorf("CondCodeLen(1,2) = %v, want 1", CondCodeLen(1, 2))
	}
	if !almost(CondCodeLen(4, 4), 0) {
		t.Errorf("CondCodeLen(4,4) = %v, want 0", CondCodeLen(4, 4))
	}
	for _, bad := range [][2]int{{0, 3}, {3, 0}, {5, 4}, {-1, 2}} {
		if !math.IsInf(CondCodeLen(bad[0], bad[1]), 1) {
			t.Errorf("CondCodeLen(%d,%d) should be +Inf", bad[0], bad[1])
		}
	}
}

// fig1ST builds the standard table for the paper's running example; the
// mapping has a:3, b:2, c:2 over 7 occurrences.
func fig1ST(t *testing.T) (*StandardTable, *graph.Vocab) {
	t.Helper()
	b := graph.NewBuilder(5)
	for v, vals := range map[graph.VertexID][]string{
		0: {"a"}, 1: {"a", "c"}, 2: {"c"}, 3: {"b"}, 4: {"a", "b"},
	} {
		for _, val := range vals {
			if err := b.AddAttr(v, val); err != nil {
				t.Fatal(err)
			}
		}
	}
	g := b.Build()
	return NewStandardTable(g), g.Vocab()
}

func TestStandardTableFig1(t *testing.T) {
	st, vocab := fig1ST(t)
	if st.Total() != 7 {
		t.Fatalf("Total = %d, want 7", st.Total())
	}
	a, _ := vocab.Lookup("a")
	bID, _ := vocab.Lookup("b")
	if st.Freq(a) != 3 || st.Freq(bID) != 2 {
		t.Fatalf("Freq(a)=%d Freq(b)=%d, want 3 and 2", st.Freq(a), st.Freq(bID))
	}
	if !almost(st.Len(a), -math.Log2(3.0/7.0)) {
		t.Errorf("Len(a) = %v", st.Len(a))
	}
	if !almost(st.SetLen([]graph.AttrID{a, bID}), st.Len(a)+st.Len(bID)) {
		t.Error("SetLen is not additive")
	}
	if !math.IsInf(st.Len(graph.AttrID(99)), 1) {
		t.Error("unknown value should cost +Inf")
	}
}

func TestBaselineDLMatchesDirectSum(t *testing.T) {
	st, _ := fig1ST(t)
	want := 3*-math.Log2(3.0/7.0) + 2*-math.Log2(2.0/7.0) + 2*-math.Log2(2.0/7.0)
	if !almost(st.BaselineDL(), want) {
		t.Fatalf("BaselineDL = %v, want %v", st.BaselineDL(), want)
	}
}

func TestStandardTableFromFreqs(t *testing.T) {
	st := NewStandardTableFromFreqs([]int{4, 4})
	if !almost(st.Len(0), 1) {
		t.Errorf("Len = %v, want 1 bit for p=1/2", st.Len(0))
	}
}

func TestDataDLEq8(t *testing.T) {
	// Two coresets with frequencies 6 and 4; lines 2,2,2 and 1,2,1.
	got := DataDL([]int{6, 4}, []int{2, 2, 2, 1, 2, 1})
	want := XLogX(6) + XLogX(4) - (3*XLogX(2) + XLogX(2))
	if !almost(got, want) {
		t.Fatalf("DataDL = %v, want %v", got, want)
	}
}

func TestCondEntropyUniform(t *testing.T) {
	// Two lines each with fL=1 under a coreset with fc=2: H = 1 bit.
	h := CondEntropy([][2]int{{1, 2}, {1, 2}})
	if !almost(h, 1) {
		t.Fatalf("CondEntropy = %v, want 1", h)
	}
	// Deterministic: single line with fL = fc.
	if !almost(CondEntropy([][2]int{{5, 5}}), 0) {
		t.Fatal("deterministic conditional entropy should be 0")
	}
	if CondEntropy(nil) != 0 {
		t.Fatal("empty input should give 0")
	}
}

func TestCondEntropyNonNegativeProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		lines := make([][2]int, 0, len(raw))
		for _, r := range raw {
			fL := int(r%8) + 1
			fc := fL + int(r/8)%8
			lines = append(lines, [2]int{fL, fc})
		}
		return CondEntropy(lines) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// DataDL relates to CondEntropy as Eq. 8: L(I|M) = −s·H only when every
// line's fc equals the sum of fL under its coreset; verify on a consistent
// configuration.
func TestDataDLMatchesEntropyForm(t *testing.T) {
	coreFreq := []int{6, 4}
	lines := [][2]int{{2, 6}, {2, 6}, {2, 6}, {1, 4}, {2, 4}, {1, 4}}
	s := 0
	lineFreqs := make([]int, len(lines))
	for i, ln := range lines {
		s += ln[0]
		lineFreqs[i] = ln[0]
	}
	direct := DataDL(coreFreq, lineFreqs)
	viaEntropy := float64(s) * CondEntropy(lines)
	if !almost(direct, viaEntropy) {
		t.Fatalf("Eq.8 mismatch: direct=%v entropy=%v", direct, viaEntropy)
	}
}
