package obs

import (
	"sync"
	"time"
)

// Re-mine stage names recorded in profiles. rebuild/publish/checkpoint are
// measured by the serve loop; fingerprint/diff/shard_mine/merge come from
// inside the incremental miner when the sharded-cached path runs (the
// distributed transport reports its whole remote pass as shard_mine).
const (
	SpanRebuild     = "rebuild"     // fold pending batches into a new graph
	SpanFingerprint = "fingerprint" // canonical component fingerprints
	SpanDiff        = "diff"        // cache lookup: split clean vs dirty groups
	SpanShardMine   = "shard_mine"  // mine the dirty shards
	SpanMerge       = "merge"       // merge shard models + DL accounting
	SpanPublish     = "publish"     // snapshot swap
	SpanCheckpoint  = "checkpoint"  // durable checkpoint write
)

// Span is one timed phase of a re-mine pass.
type Span struct {
	Stage    string        `json:"stage"`
	Duration time.Duration `json:"duration_ns"`
}

// Profile is the stage breakdown of one background re-mine pass.
type Profile struct {
	// Generation is the model generation the pass published (0 if the
	// pass failed before publishing).
	Generation uint64    `json:"generation"`
	StartedAt  time.Time `json:"started_at"`
	// Total is wall-clock for the whole pass, which can exceed the sum of
	// spans (budget wait, bookkeeping between stages).
	Total   time.Duration `json:"total_ns"`
	Batches int           `json:"batches"`
	Spans   []Span        `json:"spans"`
	// Err is the failure that aborted the pass, if any.
	Err string `json:"error,omitempty"`
}

// ProfileRing keeps the most recent re-mine profiles, newest first.
// Safe for concurrent use.
type ProfileRing struct {
	mu    sync.Mutex
	ring  []Profile
	next  int
	count int
}

// DefaultProfileCap is how many recent re-mines serve retains per tenant.
const DefaultProfileCap = 32

// NewProfileRing returns a ring holding the most recent capacity profiles.
// capacity <= 0 is normalised to DefaultProfileCap.
func NewProfileRing(capacity int) *ProfileRing {
	if capacity <= 0 {
		capacity = DefaultProfileCap
	}
	return &ProfileRing{ring: make([]Profile, capacity)}
}

// Add records a completed pass, evicting the oldest if full.
func (r *ProfileRing) Add(p Profile) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ring[r.next] = p
	r.next = (r.next + 1) % len(r.ring)
	if r.count < len(r.ring) {
		r.count++
	}
}

// Recent returns the retained profiles, newest first.
func (r *ProfileRing) Recent() []Profile {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Profile, 0, r.count)
	for k := 1; k <= r.count; k++ {
		i := (r.next - k + len(r.ring)) % len(r.ring)
		p := r.ring[i]
		p.Spans = append([]Span(nil), p.Spans...)
		out = append(out, p)
	}
	return out
}

// Recorder accumulates spans for one pass with a simple start/stop API.
// Zero value is not usable; create with NewRecorder. Not safe for
// concurrent use — one pass records from one goroutine.
type Recorder struct {
	prof  Profile
	start time.Time
	t0    time.Time
}

// NewRecorder starts timing a pass.
func NewRecorder() *Recorder {
	now := time.Now()
	return &Recorder{prof: Profile{StartedAt: now.UTC()}, t0: now}
}

// Observe records a span measured externally.
func (rec *Recorder) Observe(stage string, d time.Duration) {
	rec.prof.Spans = append(rec.prof.Spans, Span{Stage: stage, Duration: d})
}

// Time runs fn and records its duration under stage.
func (rec *Recorder) Time(stage string, fn func()) {
	t := time.Now()
	fn()
	rec.Observe(stage, time.Since(t))
}

// Finish stamps totals and returns the completed profile.
func (rec *Recorder) Finish(gen uint64, batches int, err error) Profile {
	rec.prof.Total = time.Since(rec.t0)
	rec.prof.Generation = gen
	rec.prof.Batches = batches
	if err != nil {
		rec.prof.Err = err.Error()
	}
	return rec.prof
}
