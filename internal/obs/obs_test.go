package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"regexp"
	"strings"
	"testing"
	"time"
)

// --- TraceRing -------------------------------------------------------------

func TestTraceRingLifecycle(t *testing.T) {
	r := NewTraceRing(8)
	r.Start(1, "abc", 3, StageSubmitted, 0, "")
	r.Record(1, StageWALAppended, 0, "")
	r.Record(1, StageFolded, 2, "")

	tr, ok := r.Get(1)
	if !ok {
		t.Fatal("Get(1) missed a live trace")
	}
	if tr.Seq != 1 || tr.TraceID != "abc" || tr.Mutations != 3 {
		t.Fatalf("trace header = %+v", tr)
	}
	stages := make([]string, len(tr.Events))
	for i, ev := range tr.Events {
		stages[i] = ev.Stage
		if ev.At.IsZero() {
			t.Fatalf("event %d has zero timestamp", i)
		}
	}
	if want := []string{StageSubmitted, StageWALAppended, StageFolded}; strings.Join(stages, ",") != strings.Join(want, ",") {
		t.Fatalf("stages = %v, want %v", stages, want)
	}
	if tr.Events[2].Generation != 2 {
		t.Fatalf("folded generation = %d, want 2", tr.Events[2].Generation)
	}

	// Get returns a copy: mutating it must not corrupt the ring.
	tr.Events[0].Stage = "clobbered"
	if again, _ := r.Get(1); again.Events[0].Stage != StageSubmitted {
		t.Fatal("Get returned a view into ring memory, not a copy")
	}
}

// TestTraceRingEvictionUnderWrap drives sequences past the capacity so every
// slot is reused, and checks the direct-mapped eviction contract: only the
// newest cap sequences are retrievable, Records for evicted sequences are
// dropped rather than corrupting the newer occupant, and a stale Start
// cannot clobber a newer trace in the same slot.
func TestTraceRingEvictionUnderWrap(t *testing.T) {
	const cap = 8
	r := NewTraceRing(cap)
	if r.Cap() != cap {
		t.Fatalf("Cap() = %d, want %d", r.Cap(), cap)
	}
	const total = 3*cap + 5
	for seq := uint64(1); seq <= total; seq++ {
		r.Start(seq, "", 1, StageSubmitted, 0, "")
	}
	// Only the newest cap sequences survive.
	for seq := uint64(1); seq <= total; seq++ {
		_, ok := r.Get(seq)
		if want := seq > total-cap; ok != want {
			t.Fatalf("Get(%d) = %v, want %v (total %d, cap %d)", seq, ok, want, total, cap)
		}
	}
	// A Record for an evicted sequence must not touch the slot's new owner.
	victim, occupant := uint64(total-cap), uint64(total)
	if victim%cap != occupant%cap {
		t.Fatalf("test bug: %d and %d do not share a slot", victim, occupant)
	}
	r.Record(victim, StageFolded, 9, "")
	if tr, _ := r.Get(occupant); len(tr.Events) != 1 {
		t.Fatalf("evicted-seq Record leaked into the occupant: %+v", tr.Events)
	}
	// A stale Start (replay of an old sequence) must not evict a newer trace.
	r.Start(victim, "stale", 1, StageSubmitted, 0, "")
	tr, ok := r.Get(occupant)
	if !ok || tr.TraceID == "stale" {
		t.Fatalf("stale Start clobbered the newer occupant: ok=%v trace=%+v", ok, tr)
	}
	if _, ok := r.Get(victim); ok {
		t.Fatal("stale Start resurrected an evicted sequence")
	}
}

func TestTraceRingRecordRange(t *testing.T) {
	r := NewTraceRing(8)
	for seq := uint64(1); seq <= 5; seq++ {
		r.Start(seq, "", 1, StageSubmitted, 0, "")
	}
	// (2, 5] — half-open: 2 excluded, 3..5 stamped.
	r.RecordRange(2, 5, StageFolded, 7, "")
	for seq := uint64(1); seq <= 5; seq++ {
		tr, _ := r.Get(seq)
		want := 1
		if seq > 2 {
			want = 2
		}
		if len(tr.Events) != want {
			t.Fatalf("seq %d has %d events, want %d", seq, len(tr.Events), want)
		}
	}
	// Empty and inverted ranges are no-ops.
	r.RecordRange(5, 5, StageCheckpointed, 0, "")
	r.RecordRange(5, 2, StageCheckpointed, 0, "")
	if tr, _ := r.Get(5); len(tr.Events) != 2 {
		t.Fatalf("degenerate RecordRange mutated seq 5: %+v", tr.Events)
	}
}

// --- ProfileRing / Recorder ------------------------------------------------

func TestProfileRingNewestFirstAndEviction(t *testing.T) {
	r := NewProfileRing(3)
	for gen := uint64(1); gen <= 5; gen++ {
		r.Add(Profile{Generation: gen})
	}
	got := r.Recent()
	if len(got) != 3 {
		t.Fatalf("Recent() returned %d profiles, want 3", len(got))
	}
	for i, want := range []uint64{5, 4, 3} {
		if got[i].Generation != want {
			t.Fatalf("Recent()[%d].Generation = %d, want %d (newest first)", i, got[i].Generation, want)
		}
	}
}

func TestRecorder(t *testing.T) {
	rec := NewRecorder()
	rec.Observe(SpanFingerprint, 5*time.Millisecond)
	ran := false
	rec.Time(SpanPublish, func() { ran = true })
	p := rec.Finish(4, 2, errors.New("boom"))
	if !ran {
		t.Fatal("Time did not run its fn")
	}
	if p.Generation != 4 || p.Batches != 2 || p.Err != "boom" {
		t.Fatalf("profile = %+v", p)
	}
	if len(p.Spans) != 2 || p.Spans[0].Stage != SpanFingerprint || p.Spans[1].Stage != SpanPublish {
		t.Fatalf("spans = %+v", p.Spans)
	}
	if p.Spans[0].Duration != 5*time.Millisecond {
		t.Fatalf("observed duration = %v", p.Spans[0].Duration)
	}
	if p.Total <= 0 || p.StartedAt.IsZero() {
		t.Fatalf("totals not stamped: %+v", p)
	}
}

// --- Logger ----------------------------------------------------------------

func TestParseLevel(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want string
	}{
		{"", "INFO"}, {"debug", "DEBUG"}, {"info", "INFO"},
		{"warn", "WARN"}, {"warning", "WARN"}, {"ERROR", "ERROR"},
	} {
		lv, err := ParseLevel(tc.in)
		if err != nil {
			t.Fatalf("ParseLevel(%q): %v", tc.in, err)
		}
		if lv.String() != tc.want {
			t.Fatalf("ParseLevel(%q) = %v, want %s", tc.in, lv, tc.want)
		}
	}
	if _, err := ParseLevel("verbose"); err == nil {
		t.Fatal("ParseLevel accepted an unknown level")
	}
}

func TestNewLoggerFormatsAndLevels(t *testing.T) {
	var buf bytes.Buffer
	lg, err := NewLogger(&buf, "warn", LogJSON)
	if err != nil {
		t.Fatal(err)
	}
	lg.Info("dropped")
	lg.Warn("kept", "ns", "prod")
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("json log line undecodable: %v (%q)", err, buf.String())
	}
	if rec["msg"] != "kept" || rec["ns"] != "prod" {
		t.Fatalf("json record = %v", rec)
	}
	if strings.Contains(buf.String(), "dropped") {
		t.Fatal("level filter let an info record through at warn")
	}

	buf.Reset()
	lg, err = NewLogger(&buf, "", "")
	if err != nil {
		t.Fatal(err)
	}
	lg.Debug("hidden")
	lg.Info("shown")
	if out := buf.String(); strings.Contains(out, "hidden") || !strings.Contains(out, "msg=shown") {
		t.Fatalf("default text logger output = %q", out)
	}

	if _, err := NewLogger(&buf, "", "xml"); err == nil {
		t.Fatal("NewLogger accepted an unknown format")
	}
	if _, err := NewLogger(&buf, "loud", ""); err == nil {
		t.Fatal("NewLogger accepted an unknown level")
	}
}

func TestNopLoggerDiscards(t *testing.T) {
	// Must not panic, allocate handlers per call, or write anywhere.
	lg := Nop()
	lg.Info("into the void", "k", "v")
	lg.With("ns", "x").Error("still nothing")
}

// --- Trace IDs -------------------------------------------------------------

func TestNewTraceID(t *testing.T) {
	hex := regexp.MustCompile(`^[0-9a-f]{16}$`)
	seen := map[string]bool{}
	for i := 0; i < 64; i++ {
		id := NewTraceID()
		if !hex.MatchString(id) {
			t.Fatalf("NewTraceID() = %q, want 16 hex chars", id)
		}
		if seen[id] {
			t.Fatalf("NewTraceID() repeated %q", id)
		}
		seen[id] = true
	}
}

// --- Prometheus writer -----------------------------------------------------

func TestWriteFamilies(t *testing.T) {
	var buf bytes.Buffer
	err := WriteFamilies(&buf, []Family{
		{Name: "empty_family", Help: "skipped entirely", Type: "counter"},
		{Name: "cspm_up", Help: `has "quotes" and \slashes` + "\nand newline", Type: "gauge",
			Samples: []Sample{{Value: 1}}},
		{Name: "cspm_reqs_total", Help: "requests", Type: "counter", Samples: []Sample{
			{Labels: []Label{{Name: "ns", Value: `we"ird\va` + "\nlue"}, {Name: "role", Value: "leader"}}, Value: 42},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	want := "# HELP cspm_up has \"quotes\" and \\\\slashes\\nand newline\n" +
		"# TYPE cspm_up gauge\n" +
		"cspm_up 1\n" +
		"# HELP cspm_reqs_total requests\n" +
		"# TYPE cspm_reqs_total counter\n" +
		`cspm_reqs_total{ns="we\"ird\\va\nlue",role="leader"} 42` + "\n"
	if got != want {
		t.Fatalf("exposition:\n got: %q\nwant: %q", got, want)
	}
}

func TestHistogramSamples(t *testing.T) {
	base := []Label{{Name: "endpoint", Value: "patterns"}}
	bounds := []float64{0.001, 0.01, 0.1}
	counts := []uint64{2, 3, 0, 1} // last = overflow
	samples := HistogramSamples(base, bounds, counts, 0.25)
	var buf bytes.Buffer
	if err := WriteFamilies(&buf, []Family{{Name: "lat", Help: "h", Type: "histogram", Samples: samples}}); err != nil {
		t.Fatal(err)
	}
	want := "# HELP lat h\n# TYPE lat histogram\n" +
		`lat_bucket{endpoint="patterns",le="0.001"} 2` + "\n" +
		`lat_bucket{endpoint="patterns",le="0.01"} 5` + "\n" +
		`lat_bucket{endpoint="patterns",le="0.1"} 5` + "\n" +
		`lat_bucket{endpoint="patterns",le="+Inf"} 6` + "\n" +
		`lat_sum{endpoint="patterns"} 0.25` + "\n" +
		`lat_count{endpoint="patterns"} 6` + "\n"
	if got := buf.String(); got != want {
		t.Fatalf("histogram exposition:\n got: %q\nwant: %q", got, want)
	}
	// The shared base labels must not be aliased across samples.
	samples[0].Labels[0].Value = "clobbered"
	if samples[1].Labels[0].Value != "patterns" {
		t.Fatal("HistogramSamples aliased base labels across samples")
	}
}
