// Package obs is the serving stack's observability layer: structured
// component logging (log/slog), mutation lifecycle tracing (bounded
// per-namespace trace rings keyed by batch sequence), background-pass stage
// profiling (recent re-mine rings), and Prometheus text exposition for the
// host-level /metrics endpoint. Everything here is deliberately dependency-
// free — the serve layer feeds it data and owns the wire formats; obs owns
// the bounded data structures and the exposition grammar. See DESIGN.md
// "Observability".
package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// Log formats accepted by NewLogger.
const (
	// LogText renders one human-readable key=value line per record
	// (slog.TextHandler).
	LogText = "text"
	// LogJSON renders one JSON object per record (slog.JSONHandler), for
	// log shippers that want machine-parseable fleet logs.
	LogJSON = "json"
)

// ParseLevel maps a -log-level flag spelling to its slog level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	default:
		return 0, fmt.Errorf("obs: unknown log level %q (want debug, info, warn or error)", s)
	}
}

// NewLogger builds the component logger behind every -log-level/-log-format
// flag pair: records at or above level render to w in the given format.
// Both arguments accept "" for their defaults (info, text). All validation
// happens here so a typo'd flag fails at startup, not at the first log call.
func NewLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	lv, err := ParseLevel(level)
	if err != nil {
		return nil, err
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch strings.ToLower(format) {
	case "", LogText:
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case LogJSON:
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (want %s or %s)", format, LogText, LogJSON)
	}
}

// discardHandler drops every record. slog.DiscardHandler exists from Go
// 1.24, but a local handler keeps obs's floor at the module's own go
// directive rather than the newest stdlib.
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool { return false }
func (discardHandler) Handle(context.Context, slog.Record) error {
	return nil
}
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler { return d }
func (d discardHandler) WithGroup(string) slog.Handler      { return d }

// Nop returns a logger that drops everything: the default wherever an
// Options.Logger is nil, so call sites never nil-check.
func Nop() *slog.Logger { return slog.New(discardHandler{}) }
