package obs

import (
	"io"
	"math"
	"strconv"
	"strings"
)

// Minimal Prometheus text-format (version 0.0.4) writer. Only the subset
// the host /metrics endpoint needs: counter, gauge, and histogram families
// with pre-computed samples. The caller is responsible for ordering —
// families and samples render exactly in the order given, which is what
// makes the exposition golden-testable.

// PromContentType is the Content-Type for text-format exposition.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// Label is one name="value" pair on a sample.
type Label struct {
	Name  string
	Value string
}

// Sample is one exposition line within a family.
type Sample struct {
	// Suffix is appended to the family name — "" for plain counters and
	// gauges, "_bucket"/"_sum"/"_count" for histogram series.
	Suffix string
	Labels []Label
	Value  float64
}

// Family is one metric family: a # HELP line, a # TYPE line, then samples.
type Family struct {
	Name    string
	Help    string
	Type    string // "counter", "gauge" or "histogram"
	Samples []Sample
}

// WriteFamilies renders families in order to w.
func WriteFamilies(w io.Writer, fams []Family) error {
	var b strings.Builder
	for _, f := range fams {
		if len(f.Samples) == 0 {
			continue
		}
		b.Reset()
		b.WriteString("# HELP ")
		b.WriteString(f.Name)
		b.WriteByte(' ')
		b.WriteString(escapeHelp(f.Help))
		b.WriteString("\n# TYPE ")
		b.WriteString(f.Name)
		b.WriteByte(' ')
		b.WriteString(f.Type)
		b.WriteByte('\n')
		for _, s := range f.Samples {
			b.WriteString(f.Name)
			b.WriteString(s.Suffix)
			if len(s.Labels) > 0 {
				b.WriteByte('{')
				for j, l := range s.Labels {
					if j > 0 {
						b.WriteByte(',')
					}
					b.WriteString(l.Name)
					b.WriteString(`="`)
					b.WriteString(escapeLabel(l.Value))
					b.WriteByte('"')
				}
				b.WriteByte('}')
			}
			b.WriteByte(' ')
			b.WriteString(formatValue(s.Value))
			b.WriteByte('\n')
		}
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// HistogramSamples expands cumulative bucket counts into the _bucket/_sum/
// _count series Prometheus expects. bounds are the upper bounds (seconds)
// for each finite bucket; counts must have len(bounds)+1 entries, the last
// being the overflow bucket. base labels appear on every series, before le.
func HistogramSamples(base []Label, bounds []float64, counts []uint64, sumSeconds float64) []Sample {
	out := make([]Sample, 0, len(bounds)+3)
	var cum uint64
	for i, ub := range bounds {
		cum += counts[i]
		out = append(out, Sample{
			Suffix: "_bucket",
			Labels: append(append([]Label(nil), base...), Label{"le", formatValue(ub)}),
			Value:  float64(cum),
		})
	}
	cum += counts[len(bounds)]
	out = append(out,
		Sample{Suffix: "_bucket", Labels: append(append([]Label(nil), base...), Label{"le", "+Inf"}), Value: float64(cum)},
		Sample{Suffix: "_sum", Labels: append([]Label(nil), base...), Value: sumSeconds},
		Sample{Suffix: "_count", Labels: append([]Label(nil), base...), Value: float64(cum)},
	)
	return out
}

func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}
