package obs

import (
	"sync"
	"time"
)

// Mutation lifecycle stage names. Leader-side stages follow a batch from the
// HTTP submit through durability; follower-side stages describe the same
// batch (joined by the shared leader sequence number) as it is mirrored and
// folded into the replica's served model. The vocabulary is part of the
// debug-trace wire contract — see DESIGN.md "Observability".
const (
	StageSubmitted    = "submitted"              // batch validated and accepted (202 path)
	StageWALAppended  = "wal_appended"           // fsync'd into the mutation WAL
	StageRemineStart  = "remine_started"         // background pass picked the batch up
	StageFolded       = "folded"                 // batch applied to the working graph
	StagePublished    = "remine_published"       // generation covering the batch swapped in
	StageCheckpointed = "checkpointed"           // durable checkpoint covers the batch
	StageReplicated   = "replicated_to_follower" // leader shipped the batch to a follower
	StageWALMirrored  = "wal_mirrored"           // follower fsync'd the mirrored record
	StageVerified     = "verified"               // follower verified a covering generation
	StageSwapped      = "swapped"                // follower began serving the covering generation
)

// TraceEvent is one timestamped stage transition in a batch's lifecycle.
type TraceEvent struct {
	Stage string    `json:"stage"`
	At    time.Time `json:"at"`
	// Generation is the model generation associated with the stage, when
	// one exists (0 for pre-mining stages such as submitted/wal_appended).
	Generation uint64 `json:"generation,omitempty"`
	// Note carries stage-specific detail: the follower ID for
	// replicated_to_follower, the checkpoint path, an error string, …
	Note string `json:"note,omitempty"`
}

// Trace is the recorded lifecycle of one accepted mutation batch.
type Trace struct {
	// Seq is the batch sequence number — the WAL sequence on durable
	// servers, a process-local counter otherwise. Followers index mirrored
	// batches under the leader's sequence, which is what joins the two
	// halves of a fleet trace.
	Seq uint64 `json:"seq"`
	// TraceID is the client-visible request ID (X-Request-Id honored or
	// server-generated, echoed on the 202). May be empty for batches
	// re-seeded from the WAL after a restart.
	TraceID string `json:"trace_id,omitempty"`
	// Mutations is the number of operations in the batch.
	Mutations int          `json:"mutations"`
	Events    []TraceEvent `json:"events"`
}

// TraceRing records the lifecycle of the last N accepted batches, keyed by
// sequence number. It is a fixed-size direct-mapped ring: seq s lives in
// slot s%cap, so a new batch evicts exactly the batch cap sequences older,
// and Record calls for an evicted sequence are dropped rather than
// corrupting the newer occupant. All methods are safe for concurrent use.
type TraceRing struct {
	mu    sync.Mutex
	slots []Trace // slot i holds the live trace with Seq%len == i, if any
	used  []bool
}

// DefaultTraceCap is the per-namespace ring size serve uses: enough to hold
// every in-flight batch plus a debugging window of recent history, small
// enough that a thousand namespaces cost megabytes, not gigabytes.
const DefaultTraceCap = 256

// NewTraceRing returns a ring holding the most recent capacity batches.
// capacity <= 0 is normalised to DefaultTraceCap.
func NewTraceRing(capacity int) *TraceRing {
	if capacity <= 0 {
		capacity = DefaultTraceCap
	}
	return &TraceRing{
		slots: make([]Trace, capacity),
		used:  make([]bool, capacity),
	}
}

// Start registers a new batch and records its first event. If the slot
// holds an older trace it is evicted; a Start for a sequence older than the
// current occupant is ignored (stale replays must not clobber live traces).
func (r *TraceRing) Start(seq uint64, traceID string, mutations int, stage string, gen uint64, note string) {
	ev := TraceEvent{Stage: stage, At: time.Now().UTC(), Generation: gen, Note: note}
	r.mu.Lock()
	defer r.mu.Unlock()
	i := int(seq % uint64(len(r.slots)))
	if r.used[i] && r.slots[i].Seq > seq {
		return
	}
	r.used[i] = true
	r.slots[i] = Trace{
		Seq:       seq,
		TraceID:   traceID,
		Mutations: mutations,
		Events:    append(make([]TraceEvent, 0, 8), ev),
	}
}

// Record appends a stage event to the trace for seq. Events for sequences
// that were never started or have been evicted are dropped silently — the
// ring is a bounded debugging aid, not an audit log.
func (r *TraceRing) Record(seq uint64, stage string, gen uint64, note string) {
	ev := TraceEvent{Stage: stage, At: time.Now().UTC(), Generation: gen, Note: note}
	r.mu.Lock()
	defer r.mu.Unlock()
	i := int(seq % uint64(len(r.slots)))
	if !r.used[i] || r.slots[i].Seq != seq {
		return
	}
	r.slots[i].Events = append(r.slots[i].Events, ev)
}

// RecordRange appends a stage event to every live trace with lo < seq <= hi.
// The half-open interval matches how serve tracks coverage: a re-mine pass
// covers every batch after the previously covered sequence up to and
// including the new high-water mark.
func (r *TraceRing) RecordRange(lo, hi uint64, stage string, gen uint64, note string) {
	if hi <= lo {
		return
	}
	ev := TraceEvent{Stage: stage, At: time.Now().UTC(), Generation: gen, Note: note}
	r.mu.Lock()
	defer r.mu.Unlock()
	for seq := lo + 1; seq <= hi; seq++ {
		i := int(seq % uint64(len(r.slots)))
		if !r.used[i] || r.slots[i].Seq != seq {
			continue
		}
		r.slots[i].Events = append(r.slots[i].Events, ev)
	}
}

// Get returns a copy of the trace for seq, or ok=false if it was never
// recorded or has been evicted by a newer batch.
func (r *TraceRing) Get(seq uint64) (Trace, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	i := int(seq % uint64(len(r.slots)))
	if !r.used[i] || r.slots[i].Seq != seq {
		return Trace{}, false
	}
	t := r.slots[i]
	t.Events = append([]TraceEvent(nil), t.Events...)
	return t, true
}

// Cap returns the ring capacity.
func (r *TraceRing) Cap() int { return len(r.slots) }
