package obs

import (
	"crypto/rand"
	"encoding/hex"
)

// NewTraceID mints a 16-hex-char random identifier: the server-generated
// fallback when a mutation submit carries no X-Request-Id, and a follower's
// stable identity on replication pulls. 64 random bits is comfortably
// collision-free within a trace ring's retention window.
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on the platforms we run on; a zero ID
		// still traces, it just won't correlate across retries.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}
