// Package tensor provides the dense linear-algebra and reverse-mode
// automatic-differentiation substrate for the graph neural models used in
// the paper's node-attribute-completion study (Table IV). It is a minimal,
// stdlib-only stand-in for the frameworks the original baselines were built
// on: float64 matrices, a gradient tape with the operations two-layer
// GCN/GAT/GraphSage/VAE models need, CSR sparse-dense products for
// adjacency propagation, and an Adam optimizer.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Matrix is a dense row-major float64 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix allocates a zeroed Rows×Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices (all equal length).
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic(fmt.Sprintf("tensor: ragged rows: %d vs %d", len(r), m.Cols))
		}
		copy(m.Data[i*m.Cols:], r)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view of row i (no copy).
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns an independent copy.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Zero clears all elements in place.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Fill sets all elements to v.
func (m *Matrix) Fill(v float64) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

func (m *Matrix) sameShape(o *Matrix) bool { return m.Rows == o.Rows && m.Cols == o.Cols }

func assertShape(a, b *Matrix, op string) {
	if !a.sameShape(b) {
		panic(fmt.Sprintf("tensor: %s shape mismatch: %dx%d vs %dx%d", op, a.Rows, a.Cols, b.Rows, b.Cols))
	}
}

// MatMulInto computes dst = a·b. dst must be preallocated a.Rows×b.Cols and
// distinct from a and b.
func MatMulInto(dst, a, b *Matrix) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: matmul shapes %dx%d · %dx%d -> %dx%d", a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	dst.Zero()
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// MatMul returns a·b.
func MatMul(a, b *Matrix) *Matrix {
	out := NewMatrix(a.Rows, b.Cols)
	MatMulInto(out, a, b)
	return out
}

// Transpose returns aᵀ.
func Transpose(a *Matrix) *Matrix {
	out := NewMatrix(a.Cols, a.Rows)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			out.Data[j*out.Cols+i] = a.Data[i*a.Cols+j]
		}
	}
	return out
}

// AddInPlace accumulates src into dst.
func AddInPlace(dst, src *Matrix) {
	assertShape(dst, src, "add")
	for i, v := range src.Data {
		dst.Data[i] += v
	}
}

// ScaleInPlace multiplies every element by s.
func ScaleInPlace(m *Matrix, s float64) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// Glorot fills m with Xavier/Glorot-uniform values from rng.
func Glorot(m *Matrix, rng *rand.Rand) {
	limit := math.Sqrt(6.0 / float64(m.Rows+m.Cols))
	for i := range m.Data {
		m.Data[i] = (rng.Float64()*2 - 1) * limit
	}
}

// RowNormalize scales each row to sum 1 (rows of zeros stay zero).
func RowNormalize(m *Matrix) *Matrix {
	out := m.Clone()
	for i := 0; i < m.Rows; i++ {
		row := out.Row(i)
		sum := 0.0
		for _, v := range row {
			sum += v
		}
		if sum != 0 {
			for j := range row {
				row[j] /= sum
			}
		}
	}
	return out
}

// MaxAbsDiff reports the largest absolute element difference (for tests).
func MaxAbsDiff(a, b *Matrix) float64 {
	assertShape(a, b, "diff")
	max := 0.0
	for i := range a.Data {
		if d := math.Abs(a.Data[i] - b.Data[i]); d > max {
			max = d
		}
	}
	return max
}
