package tensor

import (
	"math"
	"math/rand"
	"testing"
)

func randMatrix(rng *rand.Rand, r, c int) *Matrix {
	m := NewMatrix(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

// numericalGrad estimates d loss/d p[k] by central differences, where loss
// is rebuilt from scratch by f.
func numericalGrad(p *Parameter, f func() float64) *Matrix {
	const h = 1e-5
	g := NewMatrix(p.Value.Rows, p.Value.Cols)
	for k := range p.Value.Data {
		orig := p.Value.Data[k]
		p.Value.Data[k] = orig + h
		up := f()
		p.Value.Data[k] = orig - h
		down := f()
		p.Value.Data[k] = orig
		g.Data[k] = (up - down) / (2 * h)
	}
	return g
}

func checkGrad(t *testing.T, name string, p *Parameter, f func(tape *Tape) *Node) {
	t.Helper()
	p.Grad.Zero()
	tape := NewTape()
	loss := f(tape)
	tape.Backward(loss)
	analytic := p.Grad.Clone()
	numeric := numericalGrad(p, func() float64 {
		return f(NewTape()).Value.Data[0]
	})
	if d := MaxAbsDiff(analytic, numeric); d > 1e-6 {
		t.Fatalf("%s: gradient mismatch %v\nanalytic=%v\nnumeric=%v", name, d, analytic.Data, numeric.Data)
	}
}

func TestMatMulShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randMatrix(rng, 3, 4)
	b := randMatrix(rng, 4, 2)
	c := MatMul(a, b)
	if c.Rows != 3 || c.Cols != 2 {
		t.Fatalf("shape %dx%d", c.Rows, c.Cols)
	}
	// Spot check one entry.
	want := 0.0
	for k := 0; k < 4; k++ {
		want += a.At(1, k) * b.At(k, 0)
	}
	if math.Abs(c.At(1, 0)-want) > 1e-12 {
		t.Fatalf("c[1,0] = %v, want %v", c.At(1, 0), want)
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randMatrix(rng, 3, 5)
	if MaxAbsDiff(Transpose(Transpose(a)), a) != 0 {
		t.Fatal("transpose twice is not identity")
	}
}

func TestGradMatMul(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	w := NewParameter(randMatrix(rng, 4, 3))
	x := randMatrix(rng, 2, 4)
	checkGrad(t, "matmul", w, func(tape *Tape) *Node {
		return tape.Mean(tape.MatMul(tape.Const(x), tape.Param(w)))
	})
}

func TestGradChainedOps(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	w := NewParameter(randMatrix(rng, 3, 3))
	b := NewParameter(randMatrix(rng, 1, 3))
	x := randMatrix(rng, 5, 3)
	for name, f := range map[string]func(*Tape) *Node{
		"relu": func(tape *Tape) *Node {
			return tape.Mean(tape.ReLU(tape.MatMul(tape.Const(x), tape.Param(w))))
		},
		"sigmoid": func(tape *Tape) *Node {
			return tape.Mean(tape.Sigmoid(tape.MatMul(tape.Const(x), tape.Param(w))))
		},
		"tanh": func(tape *Tape) *Node {
			return tape.Mean(tape.Tanh(tape.MatMul(tape.Const(x), tape.Param(w))))
		},
		"exp": func(tape *Tape) *Node {
			return tape.Mean(tape.Exp(tape.Scale(tape.MatMul(tape.Const(x), tape.Param(w)), 0.1)))
		},
		"bias": func(tape *Tape) *Node {
			return tape.Mean(tape.AddRowVec(tape.MatMul(tape.Const(x), tape.Param(w)), tape.Param(b)))
		},
	} {
		checkGrad(t, name, w, f)
	}
	checkGrad(t, "bias-b", b, func(tape *Tape) *Node {
		return tape.Mean(tape.AddRowVec(tape.MatMul(tape.Const(x), tape.Param(w)), tape.Param(b)))
	})
}

func TestGradElementwisePair(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := NewParameter(randMatrix(rng, 2, 3))
	other := randMatrix(rng, 2, 3)
	checkGrad(t, "mul", a, func(tape *Tape) *Node {
		return tape.Mean(tape.Mul(tape.Param(a), tape.Const(other)))
	})
	checkGrad(t, "sub", a, func(tape *Tape) *Node {
		return tape.Mean(tape.Mul(tape.Sub(tape.Param(a), tape.Const(other)), tape.Sub(tape.Param(a), tape.Const(other))))
	})
	checkGrad(t, "add", a, func(tape *Tape) *Node {
		return tape.Mean(tape.Mul(tape.Add(tape.Param(a), tape.Const(other)), tape.Const(other)))
	})
}

func TestGradMaskedBCE(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	w := NewParameter(randMatrix(rng, 3, 4))
	x := randMatrix(rng, 5, 3)
	targets := NewMatrix(5, 4)
	for i := range targets.Data {
		if rng.Float64() < 0.3 {
			targets.Data[i] = 1
		}
	}
	mask := []bool{true, false, true, true, false}
	checkGrad(t, "maskedBCE", w, func(tape *Tape) *Node {
		logits := tape.MatMul(tape.Const(x), tape.Param(w))
		return tape.MaskedBCE(logits, targets, mask)
	})
}

func TestGradSpMM(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	adj := NewCSR(3, 3, [][]SparseEntry{
		{{Col: 1, Val: 0.5}, {Col: 2, Val: 0.5}},
		{{Col: 0, Val: 1}},
		{{Col: 0, Val: 0.3}, {Col: 1, Val: 0.7}},
	})
	w := NewParameter(randMatrix(rng, 2, 2))
	x := randMatrix(rng, 3, 2)
	checkGrad(t, "spmm", w, func(tape *Tape) *Node {
		h := tape.MatMul(tape.Const(x), tape.Param(w))
		return tape.Mean(tape.SpMM(adj, h))
	})
}

func TestCSRMulMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	dense := NewMatrix(4, 5)
	var entries [][]SparseEntry
	for i := 0; i < 4; i++ {
		var row []SparseEntry
		for j := 0; j < 5; j++ {
			if rng.Float64() < 0.4 {
				v := rng.NormFloat64()
				dense.Set(i, j, v)
				row = append(row, SparseEntry{Col: j, Val: v})
			}
		}
		entries = append(entries, row)
	}
	csr := NewCSR(4, 5, entries)
	d := randMatrix(rng, 5, 3)
	if diff := MaxAbsDiff(csr.MulDense(d), MatMul(dense, d)); diff > 1e-12 {
		t.Fatalf("SpMM differs from dense by %v", diff)
	}
	// Transpose consistency.
	dt := Transpose(dense)
	d2 := randMatrix(rng, 4, 2)
	if diff := MaxAbsDiff(csr.Transpose().MulDense(d2), MatMul(dt, d2)); diff > 1e-12 {
		t.Fatalf("CSR transpose differs from dense by %v", diff)
	}
}

func TestDropoutTrainAndIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	x := randMatrix(rng, 10, 10)
	tape := NewTape()
	id := tape.Dropout(tape.Const(x), 0, rng)
	if MaxAbsDiff(id.Value, x) != 0 {
		t.Fatal("p=0 dropout is not identity")
	}
	dropped := tape.Dropout(tape.Const(x), 0.5, rng)
	zeros := 0
	for i := range dropped.Value.Data {
		if dropped.Value.Data[i] == 0 {
			zeros++
		}
	}
	if zeros == 0 || zeros == len(dropped.Value.Data) {
		t.Fatalf("dropout zeroed %d of %d elements", zeros, len(dropped.Value.Data))
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	// Minimise ||w - target||² — Adam should get close quickly.
	rng := rand.New(rand.NewSource(10))
	w := NewParameter(randMatrix(rng, 2, 2))
	target := randMatrix(rng, 2, 2)
	opt := NewAdam(0.1)
	opt.Register(w)
	for step := 0; step < 300; step++ {
		tape := NewTape()
		diff := tape.Sub(tape.Param(w), tape.Const(target))
		loss := tape.Mean(tape.Mul(diff, diff))
		tape.Backward(loss)
		opt.Step()
	}
	if d := MaxAbsDiff(w.Value, target); d > 1e-2 {
		t.Fatalf("Adam failed to converge: diff %v", d)
	}
}

func TestCustomOpGrad(t *testing.T) {
	// Custom square op: out = a², backward 2·a·grad.
	rng := rand.New(rand.NewSource(11))
	a := NewParameter(randMatrix(rng, 2, 3))
	checkGrad(t, "custom-square", a, func(tape *Tape) *Node {
		an := tape.Param(a)
		v := an.Value.Clone()
		for i := range v.Data {
			v.Data[i] *= v.Data[i]
		}
		sq := tape.Custom(v, []*Node{an}, func(out *Node) {
			for i, g := range out.Grad.Data {
				an.Grad.Data[i] += 2 * an.Value.Data[i] * g
			}
		})
		return tape.Mean(sq)
	})
}

func TestRowNormalize(t *testing.T) {
	m := FromRows([][]float64{{1, 3}, {0, 0}, {2, 2}})
	n := RowNormalize(m)
	if math.Abs(n.At(0, 0)-0.25) > 1e-12 || math.Abs(n.At(0, 1)-0.75) > 1e-12 {
		t.Fatalf("row 0 = %v", n.Row(0))
	}
	if n.At(1, 0) != 0 || n.At(1, 1) != 0 {
		t.Fatal("zero row changed")
	}
}

func TestBackwardWithoutParamsIsNoop(t *testing.T) {
	tape := NewTape()
	x := tape.Const(FromRows([][]float64{{1}}))
	loss := tape.Mean(x)
	tape.Backward(loss) // must not panic
}

func TestGlorotRange(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	m := NewMatrix(10, 10)
	Glorot(m, rng)
	limit := math.Sqrt(6.0 / 20.0)
	for _, v := range m.Data {
		if v < -limit || v > limit {
			t.Fatalf("Glorot value %v outside ±%v", v, limit)
		}
	}
}

func BenchmarkMatMul128(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := randMatrix(rng, 128, 128)
	y := randMatrix(rng, 128, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(x, y)
	}
}

func BenchmarkSpMMCitation(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	const n, h = 2000, 32
	entries := make([][]SparseEntry, n)
	for i := 0; i < n; i++ {
		for k := 0; k < 4; k++ {
			entries[i] = append(entries[i], SparseEntry{Col: rng.Intn(n), Val: 0.25})
		}
	}
	csr := NewCSR(n, n, entries)
	d := randMatrix(rng, n, h)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		csr.MulDense(d)
	}
}
