package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Node is a tape-recorded value: the forward result and, after Backward, its
// gradient. Parameters are Nodes with requiresGrad set.
type Node struct {
	Value        *Matrix
	Grad         *Matrix
	requiresGrad bool
	back         func()
	inputs       []*Node
}

// Tape records operations for reverse-mode differentiation. Create a fresh
// tape per training step; parameters live outside the tape and are attached
// through Param.
type Tape struct {
	nodes []*Node
}

// NewTape returns an empty tape.
func NewTape() *Tape { return &Tape{} }

func (t *Tape) node(v *Matrix, grad bool, back func(), inputs ...*Node) *Node {
	n := &Node{Value: v, requiresGrad: grad, back: back, inputs: inputs}
	if grad {
		n.Grad = NewMatrix(v.Rows, v.Cols)
	}
	t.nodes = append(t.nodes, n)
	return n
}

func anyGrad(ns ...*Node) bool {
	for _, n := range ns {
		if n.requiresGrad {
			return true
		}
	}
	return false
}

// Parameter is a trainable matrix with persistent gradient storage, shared
// across tapes: each training step records a new tape whose Param nodes
// accumulate into the same Grad, which the optimizer consumes and clears.
type Parameter struct {
	Value *Matrix
	Grad  *Matrix
}

// NewParameter wraps m as a trainable parameter.
func NewParameter(m *Matrix) *Parameter {
	return &Parameter{Value: m, Grad: NewMatrix(m.Rows, m.Cols)}
}

// Param attaches a parameter to the tape.
func (t *Tape) Param(p *Parameter) *Node {
	n := &Node{Value: p.Value, Grad: p.Grad, requiresGrad: true}
	t.nodes = append(t.nodes, n)
	return n
}

// Const wraps a constant (no gradient) matrix.
func (t *Tape) Const(m *Matrix) *Node {
	return t.node(m, false, nil)
}

// Backward runs reverse-mode accumulation from loss, which must be 1×1.
func (t *Tape) Backward(loss *Node) {
	if loss.Value.Rows != 1 || loss.Value.Cols != 1 {
		panic(fmt.Sprintf("tensor: Backward needs scalar loss, got %dx%d", loss.Value.Rows, loss.Value.Cols))
	}
	if !loss.requiresGrad {
		return // nothing trainable contributed
	}
	loss.Grad.Data[0] = 1
	for i := len(t.nodes) - 1; i >= 0; i-- {
		n := t.nodes[i]
		if n.back != nil && n.requiresGrad {
			n.back()
		}
	}
}

// MatMul returns a·b.
func (t *Tape) MatMul(a, b *Node) *Node {
	v := MatMul(a.Value, b.Value)
	out := t.node(v, anyGrad(a, b), nil, a, b)
	if out.requiresGrad {
		out.back = func() {
			if a.requiresGrad {
				AddInPlace(a.Grad, MatMul(out.Grad, Transpose(b.Value)))
			}
			if b.requiresGrad {
				AddInPlace(b.Grad, MatMul(Transpose(a.Value), out.Grad))
			}
		}
	}
	return out
}

// Add returns a + b (same shape).
func (t *Tape) Add(a, b *Node) *Node {
	assertShape(a.Value, b.Value, "Add")
	v := a.Value.Clone()
	AddInPlace(v, b.Value)
	out := t.node(v, anyGrad(a, b), nil, a, b)
	if out.requiresGrad {
		out.back = func() {
			if a.requiresGrad {
				AddInPlace(a.Grad, out.Grad)
			}
			if b.requiresGrad {
				AddInPlace(b.Grad, out.Grad)
			}
		}
	}
	return out
}

// Sub returns a − b.
func (t *Tape) Sub(a, b *Node) *Node {
	assertShape(a.Value, b.Value, "Sub")
	v := a.Value.Clone()
	for i, x := range b.Value.Data {
		v.Data[i] -= x
	}
	out := t.node(v, anyGrad(a, b), nil, a, b)
	if out.requiresGrad {
		out.back = func() {
			if a.requiresGrad {
				AddInPlace(a.Grad, out.Grad)
			}
			if b.requiresGrad {
				for i, g := range out.Grad.Data {
					b.Grad.Data[i] -= g
				}
			}
		}
	}
	return out
}

// Mul returns the elementwise product a ⊙ b.
func (t *Tape) Mul(a, b *Node) *Node {
	assertShape(a.Value, b.Value, "Mul")
	v := a.Value.Clone()
	for i, x := range b.Value.Data {
		v.Data[i] *= x
	}
	out := t.node(v, anyGrad(a, b), nil, a, b)
	if out.requiresGrad {
		out.back = func() {
			if a.requiresGrad {
				for i, g := range out.Grad.Data {
					a.Grad.Data[i] += g * b.Value.Data[i]
				}
			}
			if b.requiresGrad {
				for i, g := range out.Grad.Data {
					b.Grad.Data[i] += g * a.Value.Data[i]
				}
			}
		}
	}
	return out
}

// Scale returns s·a for a constant scalar s.
func (t *Tape) Scale(a *Node, s float64) *Node {
	v := a.Value.Clone()
	ScaleInPlace(v, s)
	out := t.node(v, a.requiresGrad, nil, a)
	if out.requiresGrad {
		out.back = func() {
			for i, g := range out.Grad.Data {
				a.Grad.Data[i] += g * s
			}
		}
	}
	return out
}

// AddRowVec adds a 1×C bias row to every row of a (R×C).
func (t *Tape) AddRowVec(a, bias *Node) *Node {
	if bias.Value.Rows != 1 || bias.Value.Cols != a.Value.Cols {
		panic("tensor: AddRowVec needs 1xC bias")
	}
	v := a.Value.Clone()
	for i := 0; i < v.Rows; i++ {
		row := v.Row(i)
		for j := range row {
			row[j] += bias.Value.Data[j]
		}
	}
	out := t.node(v, anyGrad(a, bias), nil, a, bias)
	if out.requiresGrad {
		out.back = func() {
			if a.requiresGrad {
				AddInPlace(a.Grad, out.Grad)
			}
			if bias.requiresGrad {
				for i := 0; i < out.Grad.Rows; i++ {
					row := out.Grad.Row(i)
					for j, g := range row {
						bias.Grad.Data[j] += g
					}
				}
			}
		}
	}
	return out
}

// ReLU returns max(a, 0) elementwise.
func (t *Tape) ReLU(a *Node) *Node {
	v := a.Value.Clone()
	for i, x := range v.Data {
		if x < 0 {
			v.Data[i] = 0
		}
	}
	out := t.node(v, a.requiresGrad, nil, a)
	if out.requiresGrad {
		out.back = func() {
			for i, g := range out.Grad.Data {
				if a.Value.Data[i] > 0 {
					a.Grad.Data[i] += g
				}
			}
		}
	}
	return out
}

// Sigmoid returns 1/(1+e^(−a)) elementwise.
func (t *Tape) Sigmoid(a *Node) *Node {
	v := a.Value.Clone()
	for i, x := range v.Data {
		v.Data[i] = 1 / (1 + math.Exp(-x))
	}
	out := t.node(v, a.requiresGrad, nil, a)
	if out.requiresGrad {
		out.back = func() {
			for i, g := range out.Grad.Data {
				s := out.Value.Data[i]
				a.Grad.Data[i] += g * s * (1 - s)
			}
		}
	}
	return out
}

// Tanh returns tanh(a) elementwise.
func (t *Tape) Tanh(a *Node) *Node {
	v := a.Value.Clone()
	for i, x := range v.Data {
		v.Data[i] = math.Tanh(x)
	}
	out := t.node(v, a.requiresGrad, nil, a)
	if out.requiresGrad {
		out.back = func() {
			for i, g := range out.Grad.Data {
				y := out.Value.Data[i]
				a.Grad.Data[i] += g * (1 - y*y)
			}
		}
	}
	return out
}

// Exp returns e^a elementwise.
func (t *Tape) Exp(a *Node) *Node {
	v := a.Value.Clone()
	for i, x := range v.Data {
		v.Data[i] = math.Exp(x)
	}
	out := t.node(v, a.requiresGrad, nil, a)
	if out.requiresGrad {
		out.back = func() {
			for i, g := range out.Grad.Data {
				a.Grad.Data[i] += g * out.Value.Data[i]
			}
		}
	}
	return out
}

// Dropout zeroes elements with probability p during training, scaling the
// survivors by 1/(1−p) (inverted dropout). With p ≤ 0 it is the identity.
func (t *Tape) Dropout(a *Node, p float64, rng *rand.Rand) *Node {
	if p <= 0 {
		return a
	}
	mask := NewMatrix(a.Value.Rows, a.Value.Cols)
	keep := 1 - p
	for i := range mask.Data {
		if rng.Float64() < keep {
			mask.Data[i] = 1 / keep
		}
	}
	v := a.Value.Clone()
	for i := range v.Data {
		v.Data[i] *= mask.Data[i]
	}
	out := t.node(v, a.requiresGrad, nil, a)
	if out.requiresGrad {
		out.back = func() {
			for i, g := range out.Grad.Data {
				a.Grad.Data[i] += g * mask.Data[i]
			}
		}
	}
	return out
}

// Sum reduces a to a 1×1 scalar.
func (t *Tape) Sum(a *Node) *Node {
	s := 0.0
	for _, x := range a.Value.Data {
		s += x
	}
	v := NewMatrix(1, 1)
	v.Data[0] = s
	out := t.node(v, a.requiresGrad, nil, a)
	if out.requiresGrad {
		out.back = func() {
			g := out.Grad.Data[0]
			for i := range a.Grad.Data {
				a.Grad.Data[i] += g
			}
		}
	}
	return out
}

// Mean reduces a to its scalar mean.
func (t *Tape) Mean(a *Node) *Node {
	n := float64(len(a.Value.Data))
	return t.Scale(t.Sum(a), 1/n)
}

// MaskedBCE computes the mean binary cross-entropy between sigmoid logits
// and targets over the rows selected by rowMask (1 = include). It fuses the
// sigmoid for numerical stability (logits in, probabilities never clipped).
func (t *Tape) MaskedBCE(logits *Node, targets *Matrix, rowMask []bool) *Node {
	assertShape(logits.Value, targets, "MaskedBCE")
	rows := 0
	for _, m := range rowMask {
		if m {
			rows++
		}
	}
	if rows == 0 {
		panic("tensor: MaskedBCE with empty mask")
	}
	count := float64(rows * logits.Value.Cols)
	v := NewMatrix(1, 1)
	for i := 0; i < logits.Value.Rows; i++ {
		if !rowMask[i] {
			continue
		}
		lr := logits.Value.Row(i)
		tr := targets.Row(i)
		for j, x := range lr {
			// log(1+e^x) computed stably.
			var softplus float64
			if x > 0 {
				softplus = x + math.Log1p(math.Exp(-x))
			} else {
				softplus = math.Log1p(math.Exp(x))
			}
			v.Data[0] += softplus - tr[j]*x
		}
	}
	v.Data[0] /= count
	out := t.node(v, logits.requiresGrad, nil, logits)
	if out.requiresGrad {
		out.back = func() {
			g := out.Grad.Data[0] / count
			for i := 0; i < logits.Value.Rows; i++ {
				if !rowMask[i] {
					continue
				}
				lr := logits.Value.Row(i)
				tr := targets.Row(i)
				gr := logits.Grad.Row(i)
				for j, x := range lr {
					sig := 1 / (1 + math.Exp(-x))
					gr[j] += g * (sig - tr[j])
				}
			}
		}
	}
	return out
}

// Custom creates a node with caller-provided forward value and backward
// function; backward receives the node so it can read Grad and push into the
// inputs' Grad matrices. Used for fused primitives like GAT attention.
func (t *Tape) Custom(value *Matrix, inputs []*Node, backward func(out *Node)) *Node {
	out := t.node(value, anyGrad(inputs...), nil, inputs...)
	if out.requiresGrad {
		out.back = func() { backward(out) }
	}
	return out
}
