package tensor

import "fmt"

// CSR is a compressed-sparse-row matrix used for adjacency propagation. It
// is constant with respect to differentiation: gradients flow through the
// dense operand of SpMM only.
type CSR struct {
	Rows, Cols int
	RowPtr     []int
	ColIdx     []int
	Val        []float64
}

// NewCSR builds a CSR from per-row (column, value) pairs.
func NewCSR(rows, cols int, entries [][]SparseEntry) *CSR {
	m := &CSR{Rows: rows, Cols: cols, RowPtr: make([]int, rows+1)}
	for i, row := range entries {
		m.RowPtr[i+1] = m.RowPtr[i] + len(row)
		for _, e := range row {
			if e.Col < 0 || e.Col >= cols {
				panic(fmt.Sprintf("tensor: CSR column %d out of range", e.Col))
			}
			m.ColIdx = append(m.ColIdx, e.Col)
			m.Val = append(m.Val, e.Val)
		}
	}
	return m
}

// SparseEntry is one stored element of a CSR row.
type SparseEntry struct {
	Col int
	Val float64
}

// MulDense computes s·d for dense d.
func (s *CSR) MulDense(d *Matrix) *Matrix {
	if s.Cols != d.Rows {
		panic(fmt.Sprintf("tensor: SpMM shapes %dx%d · %dx%d", s.Rows, s.Cols, d.Rows, d.Cols))
	}
	out := NewMatrix(s.Rows, d.Cols)
	for i := 0; i < s.Rows; i++ {
		orow := out.Row(i)
		for p := s.RowPtr[i]; p < s.RowPtr[i+1]; p++ {
			v := s.Val[p]
			drow := d.Row(s.ColIdx[p])
			for j, dv := range drow {
				orow[j] += v * dv
			}
		}
	}
	return out
}

// Transpose returns sᵀ as a new CSR.
func (s *CSR) Transpose() *CSR {
	counts := make([]int, s.Cols+1)
	for _, c := range s.ColIdx {
		counts[c+1]++
	}
	out := &CSR{Rows: s.Cols, Cols: s.Rows, RowPtr: make([]int, s.Cols+1)}
	for i := 0; i < s.Cols; i++ {
		out.RowPtr[i+1] = out.RowPtr[i] + counts[i+1]
	}
	out.ColIdx = make([]int, len(s.ColIdx))
	out.Val = make([]float64, len(s.Val))
	next := append([]int(nil), out.RowPtr[:s.Cols]...)
	for r := 0; r < s.Rows; r++ {
		for p := s.RowPtr[r]; p < s.RowPtr[r+1]; p++ {
			c := s.ColIdx[p]
			out.ColIdx[next[c]] = r
			out.Val[next[c]] = s.Val[p]
			next[c]++
		}
	}
	return out
}

// SpMM multiplies the constant sparse matrix s with dense node d on the
// tape: out = s·d, with grad_d = sᵀ·grad_out.
func (t *Tape) SpMM(s *CSR, d *Node) *Node {
	v := s.MulDense(d.Value)
	out := t.node(v, d.requiresGrad, nil, d)
	if out.requiresGrad {
		out.back = func() {
			AddInPlace(d.Grad, s.Transpose().MulDense(out.Grad))
		}
	}
	return out
}
