package tensor

import "math"

// Adam implements the Adam optimizer over a fixed set of parameter matrices.
// Gradients are read from the paired grad matrices and cleared after each
// step.
type Adam struct {
	LR      float64
	Beta1   float64
	Beta2   float64
	Epsilon float64

	params []*Matrix
	grads  []*Matrix
	m, v   []*Matrix
	step   int
}

// NewAdam creates an optimizer with the conventional defaults.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Epsilon: 1e-8}
}

// Register adds parameters to the optimizer.
func (a *Adam) Register(ps ...*Parameter) {
	for _, p := range ps {
		a.params = append(a.params, p.Value)
		a.grads = append(a.grads, p.Grad)
		a.m = append(a.m, NewMatrix(p.Value.Rows, p.Value.Cols))
		a.v = append(a.v, NewMatrix(p.Value.Rows, p.Value.Cols))
	}
}

// Step applies one Adam update and zeroes the gradients.
func (a *Adam) Step() {
	a.step++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.step))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.step))
	for i, p := range a.params {
		g := a.grads[i]
		m, v := a.m[i], a.v[i]
		for k := range p.Data {
			gk := g.Data[k]
			m.Data[k] = a.Beta1*m.Data[k] + (1-a.Beta1)*gk
			v.Data[k] = a.Beta2*v.Data[k] + (1-a.Beta2)*gk*gk
			mh := m.Data[k] / bc1
			vh := v.Data[k] / bc2
			p.Data[k] -= a.LR * mh / (math.Sqrt(vh) + a.Epsilon)
		}
		g.Zero()
	}
}

// Params returns the registered parameter matrices (for tests/inspection).
func (a *Adam) Params() []*Matrix { return a.params }
